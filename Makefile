GO ?= go

.PHONY: build test vet race chaos-smoke chaos bench ci

build:
	$(GO) build ./...

# Tier 1: must always pass.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Fault-injection smoke: a small certified chaos campaign over every
# target (substrates, hybrid, scheduler).
chaos-smoke:
	$(GO) test ./internal/bench/ -run TestChaosSmoke -v

# The full campaign: 50 plan seeds per target, non-zero exit on any
# serializability/invariant/leak violation.
chaos:
	$(GO) run ./cmd/pushpull-chaos

bench:
	$(GO) test -bench=. -benchmem ./...

ci: test vet race chaos-smoke
