GO ?= go

.PHONY: build test vet fmt-check race chaos-smoke chaos crash-smoke crash bench ci

build:
	$(GO) build ./...

# Tier 1: must always pass.
test: build
	$(GO) test ./...

vet: fmt-check
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# Fault-injection smoke: a small certified chaos campaign over every
# target (substrates, hybrid, scheduler).
chaos-smoke:
	$(GO) test ./internal/bench/ -run TestChaosSmoke -v

# The full campaign: 50 plan seeds per target, non-zero exit on any
# serializability/invariant/leak violation.
chaos:
	$(GO) run ./cmd/pushpull-chaos

# Crash-recovery smoke: every target runs with the WAL attached and a
# scheduled process death; the durable prefix must recover and
# re-certify.
crash-smoke:
	$(GO) test ./internal/bench/ -run TestCrashSmoke -v

# The full crash campaign: 50 crash plans per target, non-zero exit on
# any recovery certification failure (prints the failing plan seed).
crash:
	$(GO) run ./cmd/pushpull-crash

bench:
	$(GO) test -bench=. -benchmem ./...

ci: test vet race chaos-smoke crash-smoke
