GO ?= go

.PHONY: build test vet fmt-check race chaos-smoke chaos crash-smoke crash obs-smoke obs serve-smoke serve-campaign shard-smoke repl-smoke repl failover-smoke failover mvcc-smoke seq-smoke ops-smoke bench bench-repl bench-mvcc bench-seq bench-ops ci

build:
	$(GO) build ./...

# Tier 1: must always pass.
test: build
	$(GO) test ./...

vet: fmt-check
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# Fault-injection smoke: a small certified chaos campaign over every
# target (substrates, hybrid, scheduler).
chaos-smoke:
	$(GO) test ./internal/bench/ -run TestChaosSmoke -v

# The full campaign: 50 plan seeds per target, non-zero exit on any
# serializability/invariant/leak violation.
chaos:
	$(GO) run ./cmd/pushpull-chaos

# Crash-recovery smoke: every target runs with the WAL attached and a
# scheduled process death; the durable prefix must recover and
# re-certify.
crash-smoke:
	$(GO) test ./internal/bench/ -run TestCrashSmoke -v

# The full crash campaign: 50 crash plans per target, non-zero exit on
# any recovery certification failure (prints the failing plan seed).
crash:
	$(GO) run ./cmd/pushpull-crash

# Observability smoke: an instrumented bench run plus a certified
# chaos run with the metrics/span suite attached; fails on any leaked
# span, unbalanced timeline, or empty Prometheus exposition.
obs-smoke:
	$(GO) test ./internal/bench/ -run 'TestObsSmoke|TestObsSnapshotConsistency' -v

# The full instrumented sweep: 50 plan seeds per target, writes a
# Prometheus metrics dump and a chrome://tracing timeline, non-zero
# exit on any violation or leaked span.
obs:
	$(GO) run ./cmd/pushpull-obs -metrics metrics.prom -trace timeline.json

# Server smoke: boot the durable KV server on tl2 and hybrid, run a
# short wire-protocol load campaign (one-shot + interactive) against
# it, and demand zero leaked sessions/spans, certified commit-order
# serializability, and substrate conservation on shutdown.
serve-smoke:
	$(GO) test ./internal/server/ -run TestServeSmoke -v

# The full acceptance campaign: 30s, 8 clients, tl2 + hybrid, with a
# certified crash-restart leg mid-campaign.
serve-campaign:
	PUSHPULL_SERVE_CAMPAIGN=1 $(GO) test ./internal/server/ -run TestServeCampaign -v -timeout 300s

# Sharded smoke: boot a 4-shard durable server, run a mixed load with
# 10% cross-shard transactions over the wire, crash-restart from the
# multi-log image, and demand the full sharded certificate (per-shard
# replay, merged cross-shard commit order, zero in-doubt).
shard-smoke:
	$(GO) test ./internal/server/ -run TestShardSmoke -v

# Replication smoke: the in-process three-node campaign (real TCP,
# redirect-following writes, one forced failover with a certified
# promotion), then the same shape as a live primary + 2-follower
# cluster through the pushpull-repl binary.
repl-smoke:
	$(GO) test ./internal/server/ -run TestReplSmoke -v
	$(GO) run ./cmd/pushpull-repl -replicas 2 -threads 3 -ops 40 -keys 12 -seed 5

# The full failover sweep: 50 chaos plans (coordinator death, WAL
# crash, lossy replication links), every promotion re-certified,
# non-zero exit if any acknowledged transaction is lost.
repl:
	$(GO) run ./cmd/pushpull-repl

# Self-healing smoke: an in-process three-node cluster under sessioned
# load; the supervisor detects the killed primary over the wire, waits
# out its lease, certifies and auto-promotes the most-advanced
# follower, and the exactly-once ledger (dedup on blind retry, zero
# acked loss, one acking primary per lease epoch) must hold. Also pins
# the deposed-primary fence and follower redirect-loop termination.
failover-smoke:
	$(GO) test ./internal/server/ -run 'TestFailoverSmoke|TestDeposedPrimaryFenced|TestFollowerRedirectLoopTerminates' -v

# The full partitioned failover sweep: 50 seeds of crashes plus
# full/asymmetric link partitions, lease-fenced zombie deposal,
# sessioned retries cross-checked through the history checker.
failover:
	$(GO) run ./cmd/pushpull-repl -seeds 50

# MVCC snapshot-read smoke: a replicated sharded primary + follower
# under a 90%-read-only skewed wire campaign (the read-only class must
# show zero aborts while writers churn), follower snapshot reads from
# the replica's pinned cut, the GSN-consistent-cut torn-read hammer,
# and a certified shutdown.
mvcc-smoke:
	$(GO) test ./internal/server/ -run TestMVCCSmoke -v
	$(GO) test ./internal/shard/ -run 'TestSnapshotCutNeverTorn|TestDoReadOnlyRejectsWrites' -v

# Deterministic ordered-commit smoke: the sequenced cross-shard path's
# own certificates — per-shard cross-commit order equals the GSN order,
# recovery idempotence over forced batch records, the epoch murder
# windows, and the wire-level campaign with a batch-crash restart.
seq-smoke:
	$(GO) test ./internal/shard/ -run 'TestSeqCrossShardDo|TestSeqHammerGSNOrder|TestSeqRecoveryIdempotentBatches|TestSeqCrashBeforeBatchForce' -v
	$(GO) test ./internal/server/ -run TestSeqSmoke -v

# Typed-operations smoke: the commutativity-aware ops surface end to
# end — wire/engine/registry kind parity, the Limits-of-boosting
# boundary table (partial ops abort, total ops commit concurrently
# with commute hits), a typed wire campaign recovered byte-identically
# from its logical-op WAL, the follower fold reaching the same bytes
# through promotion, and the typed metrics counters under -race.
ops-smoke:
	$(GO) test ./internal/ops/ -v
	$(GO) test ./internal/stm/boost/ -run 'TestLimitsBoundary|TestTotalOpsCommitConcurrently|TestEscrowGuardSpansHolders' -v
	$(GO) test ./internal/server/ -run 'TestShardKindsMatchWire|TestOpsSmoke|TestOpsFollowerFold' -v
	$(GO) test -race ./internal/obs/metrics/ -run TestTypedCountersSnapshotConsistency -v
	$(GO) test ./internal/bench/ -run 'TestOpsBenchSmoke|TestParseOpMixRejectsUnknown' -v

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the committed replication benchmark numbers.
bench-repl:
	$(GO) run ./cmd/pushpull-repl -bench -duration 2s > BENCH_repl.json
	@cat BENCH_repl.json

# Regenerate the committed read-only snapshot benchmark: 90% declared
# read-only traffic at skew 1.2 against a live server; ro_aborts must
# read 0. (Boot a server with `go run ./cmd/pushpull-server` first, or
# use the defaults against 127.0.0.1:7070.)
bench-mvcc:
	$(GO) run ./cmd/pushpull-load -clients 32 -duration 10s -skew 1.2 -readonly-pct 90 -json > BENCH_mvcc.json
	@cat BENCH_mvcc.json

# Regenerate the committed sequencer benchmark: interleaved
# mutex-coordinator vs sequencer rounds, both sides certified.
bench-seq:
	$(GO) run ./cmd/pushpull-seq -duration 6s -rounds 6 -batch-interval 1ms > BENCH_seq.json
	@cat BENCH_seq.json

# Regenerate the committed hot-counter benchmark: the same skewed
# increment-heavy load through typed commuting ops vs the blind
# GET-then-PUT read-modify-write, both legs certified at shutdown.
bench-ops:
	$(GO) run ./cmd/pushpull-hot -json > BENCH_ops.json
	@cat BENCH_ops.json

ci: test vet race chaos-smoke crash-smoke obs-smoke serve-smoke shard-smoke repl-smoke failover-smoke mvcc-smoke seq-smoke ops-smoke
