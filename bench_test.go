package pushpull_test

// One benchmark per paper artifact / experiment (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md). The E1–E9 benches measure
// the model machinery on the figure workloads; the E10 family measures
// the real substrates' contention shapes.

import (
	"fmt"
	"testing"

	"pushpull"
	"pushpull/internal/adt"
	"pushpull/internal/bench"
	"pushpull/internal/spec"
	"pushpull/internal/stm/boost"
	"pushpull/internal/stm/htmsim"
	"pushpull/internal/stm/hybrid"
)

// BenchmarkE1_Fig2_Boosting runs the Figure 2 boosted-put decomposition
// (PULL; APP; PUSH; CMT) once per iteration on the machine.
func BenchmarkE1_Fig2_Boosting(b *testing.B) {
	reg := pushpull.StandardRegistry()
	m := pushpull.NewMachine(reg, pushpull.Options{Mode: pushpull.MoverHybrid, EnforceGray: true})
	th := m.Spawn("booster")
	txn := pushpull.MustParseTxn(`tx put { ht.put(1, 2); }`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Begin(th, txn, nil); err != nil {
			b.Fatal(err)
		}
		// The implicit boosted PULL of the committed view (Figure 2).
		local := m.LocalLog(th)
		for gi, e := range m.GlobalEntries() {
			if e.Committed && !local.Contains(e.Op) {
				if err := m.Pull(th, gi); err != nil {
					b.Fatal(err)
				}
			}
		}
		steps := m.Steps(th)
		if _, err := m.App(th, steps[0]); err != nil {
			b.Fatal(err)
		}
		if err := m.Push(th, len(th.Local)-1); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Commit(th); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			if err := m.Compact(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE2_Fig7_Hybrid runs the Section 7 mixed transaction on the
// real hybrid substrate (boosted skiplist+hashtable, HTM words).
func BenchmarkE2_Fig7_Hybrid(b *testing.B) {
	brt := boost.NewRuntime()
	h := htmsim.New(8)
	rt := hybrid.New(brt, h)
	sl := boost.NewSet(brt, "skiplist", 1)
	ht := boost.NewMap(brt, "hashT", 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		foo := int64(i % 4096)
		err := rt.Atomic("s7", func(tx *hybrid.Tx) error {
			if _, err := sl.Add(tx.Boosted(), foo); err != nil {
				return err
			}
			tx.HTMSection(func(htx *htmsim.Tx) error {
				v, err := htx.Read(0)
				if err != nil {
					return err
				}
				return htx.Write(0, v+1)
			})
			_, _, err := ht.Put(tx.Boosted(), foo, foo)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_Opacity measures the opacity checkers over a recorded
// mixed trace.
func BenchmarkE3_Opacity(b *testing.B) {
	reg := pushpull.StandardRegistry()
	m := pushpull.NewMachine(reg, pushpull.DefaultOptions())
	env := pushpull.NewEnv()
	t1 := m.Spawn("d1")
	t2 := m.Spawn("d2")
	txns := []pushpull.Txn{pushpull.MustParseTxn(`tx a { set.add(1); v := set.contains(2); }`)}
	ds := []pushpull.Driver{
		pushpull.NewDependent("d1", t1, txns, pushpull.DriverConfig{}, env),
		pushpull.NewDependent("d2", t2, txns, pushpull.DriverConfig{}, env),
	}
	if err := pushpull.RunRandom(m, ds, 1, 50000); err != nil {
		b.Fatal(err)
	}
	events := m.Events()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pushpull.CheckOpacity(events)
		_ = pushpull.CheckOpacityRelaxed(reg, pushpull.MoverHybrid, events)
	}
}

// benchStrategy drives one full certified model workload per iteration.
func benchStrategy(b *testing.B, name string, keys int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunModel(bench.ModelParams{
			Strategy: name, Threads: 3, TxnsEach: 3, Keys: keys, ReadPct: 20,
			Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Serializable {
			b.Fatalf("iteration %d not serializable", i)
		}
	}
}

// BenchmarkE4_Optimistic: §6.2 optimistic pattern, certified per run.
func BenchmarkE4_Optimistic(b *testing.B) { benchStrategy(b, "optimistic", 8) }

// BenchmarkE4_Checkpoints: §6.2 with checkpoint partial aborts [19].
func BenchmarkE4_Checkpoints(b *testing.B) { benchStrategy(b, "partialabort", 8) }

// BenchmarkE5_Boosting: §6.3 eager pessimistic (Figure 2) pattern.
func BenchmarkE5_Boosting(b *testing.B) { benchStrategy(b, "boosting", 8) }

// BenchmarkE5_MatveevShavit: §6.3 lazy pessimistic pattern.
func BenchmarkE5_MatveevShavit(b *testing.B) { benchStrategy(b, "matveev", 8) }

// BenchmarkE6_Irrevocable: §6.4 mixed irrevocable/optimistic pattern.
func BenchmarkE6_Irrevocable(b *testing.B) { benchStrategy(b, "irrevocable-mix", 8) }

// BenchmarkE7_Dependent: §6.5 dependent transactions with early release.
func BenchmarkE7_Dependent(b *testing.B) { benchStrategy(b, "dependent", 8) }

// BenchmarkE8_Explorer measures exhaustive interleaving exploration of
// a two-transaction program (the Theorem 5.17 model check).
func BenchmarkE8_Explorer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reg := pushpull.StandardRegistry()
		m := pushpull.NewMachine(reg, pushpull.Options{Mode: pushpull.MoverHybrid, EnforceGray: true})
		env := pushpull.NewEnv()
		cfg := pushpull.DriverConfig{Deterministic: true, RetryLimit: 2}
		t1, t2 := m.Spawn("t1"), m.Spawn("t2")
		ds := []pushpull.Driver{
			pushpull.NewOptimistic("t1", t1, []pushpull.Txn{pushpull.MustParseTxn(`tx a { ctr.inc(); }`)}, cfg, env),
			pushpull.NewOptimistic("t2", t2, []pushpull.Txn{pushpull.MustParseTxn(`tx b { set.add(1); }`)}, cfg, env),
		}
		res, err := pushpull.Explore(m, env, ds, 60, func(fm *pushpull.Machine) error {
			if rep := pushpull.CheckCommitOrder(fm); !rep.Serializable {
				return fmt.Errorf("unserializable: %v", rep)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Terminals == 0 {
			b.Fatal("no terminals")
		}
	}
}

// BenchmarkE9_MoverCheck measures the three left-mover deciders on the
// Section 2 put/put judgment.
func BenchmarkE9_MoverCheck(b *testing.B) {
	reg := pushpull.StandardRegistry()
	op1 := spec.Op{ID: 1, Obj: "ht", Method: adt.MMapPut, Args: []int64{1, 10}, Ret: spec.Absent}
	op2 := spec.Op{ID: 2, Obj: "ht", Method: adt.MMapPut, Args: []int64{2, 20}, Ret: spec.Absent}
	ctx := spec.Log{
		{ID: 3, Obj: "ht", Method: adt.MMapPut, Args: []int64{3, 30}, Ret: spec.Absent},
		{ID: 4, Obj: "ht", Method: adt.MMapPut, Args: []int64{4, 40}, Ret: spec.Absent},
	}
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !spec.LeftMover(reg, spec.MoverStatic, ctx, op1, op2) {
				b.Fatal("static mover must hold")
			}
		}
	})
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !spec.LeftMover(reg, spec.MoverDynamic, ctx, op1, op2) {
				b.Fatal("dynamic mover must hold")
			}
		}
	})
}

// benchSubstrate drives the common workload on a real substrate.
func benchSubstrate(b *testing.B, name string, keys, yield int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSubstrate(bench.SubstrateParams{
			Substrate: name, Threads: 4, OpsEach: 100, Keys: keys, ReadPct: 20,
			Seed: int64(i + 1), Yield: yield,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AbortRatio(), "aborts/commit")
	}
}

// The E10 family: substrate contention shapes (who wins where).
func BenchmarkE10_TL2_LowContention(b *testing.B)    { benchSubstrate(b, "tl2", 1024, 2) }
func BenchmarkE10_TL2_HighContention(b *testing.B)   { benchSubstrate(b, "tl2", 2, 2) }
func BenchmarkE10_Pess_LowContention(b *testing.B)   { benchSubstrate(b, "pess", 1024, 2) }
func BenchmarkE10_Pess_HighContention(b *testing.B)  { benchSubstrate(b, "pess", 2, 2) }
func BenchmarkE10_Boost_LowContention(b *testing.B)  { benchSubstrate(b, "boost", 1024, 2) }
func BenchmarkE10_Boost_HighContention(b *testing.B) { benchSubstrate(b, "boost", 2, 2) }
func BenchmarkE10_HTM_LowContention(b *testing.B)    { benchSubstrate(b, "htmsim", 1024, 2) }
func BenchmarkE10_HTM_HighContention(b *testing.B)   { benchSubstrate(b, "htmsim", 2, 2) }
func BenchmarkE10_Dep_LowContention(b *testing.B)    { benchSubstrate(b, "dep", 1024, 2) }
func BenchmarkE10_Dep_HighContention(b *testing.B)   { benchSubstrate(b, "dep", 2, 2) }

// BenchmarkE10_HTMCapacity measures the capacity-overflow fallback.
func BenchmarkE10_HTMCapacity(b *testing.B) {
	h := htmsim.New(4096)
	h.Capacity = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i * 37) % 2048
		err := h.Atomic("cap", func(tx *htmsim.Tx) error {
			for k := 0; k < 16; k++ {
				v, err := tx.Read(base + k)
				if err != nil {
					return err
				}
				if err := tx.Write(base+k, v+1); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	st := h.Stats()
	b.ReportMetric(float64(st.Fallbacks)/float64(b.N), "fallbacks/txn")
}
