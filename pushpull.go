// Package pushpull is an executable reproduction of "The Push/Pull
// Model of Transactions" (Koskinen & Parkinson, PLDI 2015): a semantic
// model in which concurrent transactions PUSH their effects into a
// shared operation log, PULL the effects of other (possibly
// uncommitted) transactions into their local view, and rewind with
// UNPUSH/UNPULL/UNAPP — each rule guarded by commutativity (left-mover)
// and sequential-specification side conditions that together guarantee
// serializability (the paper's Theorem 5.17).
//
// The package is a facade over the implementation layers:
//
//   - the machine: Push/Pull threads, logs and the seven rules with all
//     criteria checked (internal/core over internal/spec and
//     internal/lang);
//   - reference semantics and checkers: the atomic machine (Figure 3),
//     commit-order serializability, serial-witness search, opacity
//     (internal/atomicsem, internal/serial);
//   - drivers: the Section 6 rule-usage patterns — optimistic,
//     boosting, lazy-pessimistic, irrevocable, dependent — runnable
//     under random, round-robin, or exhaustive schedulers
//     (internal/strategy, internal/sched);
//   - substrates: real goroutine-concurrent TMs (TL2, 2PL, boosting
//     over a lazy concurrent skiplist, simulated HTM, irrevocability,
//     dependent transactions, the Section 7 boosting+HTM hybrid), each
//     instrumentable with a shadow-machine certifier (internal/stm/...,
//     internal/trace).
//
// Quickstart:
//
//	reg := pushpull.StandardRegistry()
//	m := pushpull.NewMachine(reg, pushpull.DefaultOptions())
//	t := m.Spawn("t1")
//	txn := pushpull.MustParseTxn(`tx hello { ht.put(1, 10); v := ht.get(1); }`)
//	_ = m.Begin(t, txn, nil)
//	for _, s := range m.Steps(t) { _, _ = m.App(t, s); break }
//	...
//	rep := pushpull.CheckCommitOrder(m)
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// paper-artifact index.
package pushpull

import (
	"pushpull/internal/adt"
	"pushpull/internal/atomicsem"
	"pushpull/internal/core"
	"pushpull/internal/lang"
	"pushpull/internal/sched"
	"pushpull/internal/serial"
	"pushpull/internal/spec"
	"pushpull/internal/strategy"
	"pushpull/internal/trace"
)

// Core semantic types.
type (
	// Registry binds object instance names to sequential specifications.
	Registry = spec.Registry
	// Op is an operation record ⟨m, σ1, σ2, id⟩.
	Op = spec.Op
	// Log is an ordered operation list.
	Log = spec.Log
	// MoverMode selects static/hybrid/dynamic left-mover checking.
	MoverMode = spec.MoverMode
	// Composite is a product state over all registered instances.
	Composite = spec.Composite
)

// Machine types.
type (
	// Machine is the Push/Pull machine (T, G) with the Figure 5 rules.
	Machine = core.Machine
	// Thread is one machine thread {c, σ, L}.
	Thread = core.Thread
	// Options configures a machine.
	Options = core.Options
	// CriterionError names a violated rule side-condition.
	CriterionError = core.CriterionError
	// CommitRecord summarizes one committed transaction.
	CommitRecord = core.CommitRecord
	// Event is one recorded rule application.
	Event = core.Event
	// Rule names the Push/Pull reductions.
	Rule = core.Rule
	// SinkEvent is one rule transition delivered to an EventSink.
	SinkEvent = core.SinkEvent
	// EventSink observes every rule transition (the telemetry seam).
	EventSink = core.EventSink
)

// Language types.
type (
	// Txn is a named transaction tx c.
	Txn = lang.Txn
	// Code is the command language of Section 3.
	Code = lang.Code
	// Stack is the thread-local stack σ.
	Stack = lang.Stack
	// Step is one element of step(c).
	Step = lang.Step
)

// Checker and driver types.
type (
	// Report is a serializability verdict with diagnostics.
	Report = serial.Report
	// OpacityViolation is one break of the opaque fragment (§6.1).
	OpacityViolation = serial.OpacityViolation
	// Driver is a cooperative §6 transaction executor.
	Driver = strategy.Driver
	// DriverConfig tunes drivers.
	DriverConfig = strategy.Config
	// Env is the coordination state drivers share.
	Env = strategy.Env
	// Recorder certifies real TM substrates on a shadow machine.
	Recorder = trace.Recorder
	// OpRecord is one logical operation observed in a substrate.
	OpRecord = trace.OpRecord
	// AtomicResult is a big-step outcome of the Figure 3 machine.
	AtomicResult = atomicsem.Result
)

// Mover modes.
const (
	MoverStatic  = spec.MoverStatic
	MoverHybrid  = spec.MoverHybrid
	MoverDynamic = spec.MoverDynamic
)

// Rules, as recorded in event traces.
const (
	RApp    = core.RApp
	RUnapp  = core.RUnapp
	RPush   = core.RPush
	RUnpush = core.RUnpush
	RPull   = core.RPull
	RUnpull = core.RUnpull
	RCmt    = core.RCmt
	RBegin  = core.RBegin
	REnd    = core.REnd
	RAbort  = core.RAbort
)

// Local-log flags.
const (
	Npshd = core.Npshd
	Pshd  = core.Pshd
	Pld   = core.Pld
)

// Absent is the sentinel "no value" result used by map/queue
// specifications (the surface syntax literal `absent`).
const Absent = spec.Absent

// NewRegistry returns an empty specification registry.
func NewRegistry() *Registry { return spec.NewRegistry() }

// StandardRegistry returns a registry with the object set used across
// the paper's examples: a word memory "mem" (register), a set "set", a
// hashtable "ht" (map), a counter "ctr", and a queue "q".
func StandardRegistry() *Registry {
	r := spec.NewRegistry()
	r.Register("mem", adt.Register{})
	r.Register("set", adt.Set{})
	r.Register("ht", adt.Map{})
	r.Register("ctr", adt.Counter{})
	r.Register("q", adt.Queue{})
	return r
}

// NewMachine builds a Push/Pull machine over the registry.
func NewMachine(reg *Registry, opts Options) *Machine { return core.NewMachine(reg, opts) }

// DefaultOptions enables gray criteria and event recording in hybrid
// mover mode.
func DefaultOptions() Options { return core.DefaultOptions() }

// ParseTxn parses one transaction in the surface syntax.
func ParseTxn(src string) (Txn, error) { return lang.ParseTxn(src) }

// MustParseTxn is ParseTxn for trusted literals; it panics on error.
func MustParseTxn(src string) Txn { return lang.MustParseTxn(src) }

// ParseProgram parses a sequence of transactions.
func ParseProgram(src string) ([]Txn, error) { return lang.ParseProgram(src) }

// Validate statically checks a transaction against a registry:
// object/method existence, arities, and definitely-unbound variable
// reads.
func Validate(reg *Registry, txn Txn) []lang.ValidationError { return lang.Validate(reg, txn) }

// ValidateProgram validates every transaction in a program.
func ValidateProgram(reg *Registry, txns []Txn) []lang.ValidationError {
	return lang.ValidateProgram(reg, txns)
}

// CheckCommitOrder verifies Theorem 5.17's simulation instance for a
// finished run: ⌊G⌋gCmt ≼ the commit-order serial log.
func CheckCommitOrder(m *Machine) Report { return serial.CheckCommitOrder(m) }

// FindSerialWitness searches all serial orders of the committed
// transactions for one explaining the run (bounded by maxTxns).
func FindSerialWitness(m *Machine, maxTxns int) (order []string, ok, exhausted bool) {
	return serial.FindSerialWitness(m, maxTxns)
}

// CheckOpacity returns the strict opaque-fragment violations of a rule
// trace (§6.1): every PULL of a then-uncommitted operation.
func CheckOpacity(events []Event) []OpacityViolation { return serial.CheckOpacity(events) }

// CheckOpacityRelaxed applies §6.1's commutative-pull relaxation.
func CheckOpacityRelaxed(reg *Registry, mode MoverMode, events []Event) []OpacityViolation {
	return serial.CheckOpacityRelaxed(reg, mode, events)
}

// RunAtomic executes a transaction on the Figure 3 atomic machine.
func RunAtomic(reg *Registry, txn Txn, sigma Stack, l Log) (AtomicResult, bool) {
	return atomicsem.RunTxn(reg, txn, sigma, l)
}

// NewEnv returns fresh driver coordination state (lock table, tokens).
func NewEnv() *Env { return strategy.NewEnv() }

// NewOptimistic builds a §6.2 optimistic driver (TL2 pattern).
func NewOptimistic(name string, t *Thread, txns []Txn, cfg DriverConfig, env *Env) Driver {
	return strategy.NewOptimistic(name, t, txns, cfg, env)
}

// NewBoosting builds a §6.3 boosting driver (Figure 2 pattern).
func NewBoosting(name string, t *Thread, txns []Txn, cfg DriverConfig, env *Env) Driver {
	return strategy.NewBoosting(name, t, txns, cfg, env)
}

// NewMatveevShavit builds a §6.3 lazy-pessimistic driver.
func NewMatveevShavit(name string, t *Thread, txns []Txn, cfg DriverConfig, env *Env) Driver {
	return strategy.NewMatveevShavit(name, t, txns, cfg, env)
}

// NewIrrevocable builds a §6.4 irrevocable driver.
func NewIrrevocable(name string, t *Thread, txns []Txn, cfg DriverConfig, env *Env) Driver {
	return strategy.NewIrrevocable(name, t, txns, cfg, env)
}

// NewDependent builds a §6.5 dependent-transactions driver.
func NewDependent(name string, t *Thread, txns []Txn, cfg DriverConfig, env *Env) Driver {
	return strategy.NewDependent(name, t, txns, cfg, env)
}

// RunRandom interleaves drivers by seeded random selection.
func RunRandom(m *Machine, drivers []Driver, seed int64, maxSteps int) error {
	return sched.RunRandom(m, drivers, seed, maxSteps)
}

// RunRoundRobin interleaves drivers cyclically.
func RunRoundRobin(m *Machine, drivers []Driver, seed int64, maxSteps int) error {
	return sched.RunRoundRobin(m, drivers, seed, maxSteps)
}

// Explore enumerates all scheduler interleavings (drivers must be
// Deterministic), invoking check at every terminal state.
func Explore(m *Machine, env *Env, drivers []Driver, maxDepth int, check func(*Machine) error) (sched.ExploreResult, error) {
	return sched.Explore(m, env, drivers, maxDepth, check)
}

// NewRecorder builds a shadow-machine certifier for real TM substrates.
func NewRecorder(reg *Registry) *Recorder { return trace.NewRecorder(reg) }
