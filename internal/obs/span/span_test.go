package span_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pushpull/internal/core"
	"pushpull/internal/obs/span"
)

// chromeDoc mirrors the exported shape for test-side decoding.
type chromeDoc struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Tid  uint64            `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

func export(t *testing.T, tr *span.Tracker) chromeDoc {
	t.Helper()
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	return doc
}

func balance(doc chromeDoc) (b, e int) {
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			b++
		case "E":
			e++
		}
	}
	return
}

func TestSpanPairing(t *testing.T) {
	tr := span.NewTracker()
	tr.Emit(core.SinkEvent{Rule: core.RBegin, Site: "tl2", Tx: 1, TxName: "a"})
	tr.Emit(core.SinkEvent{Rule: core.RPush, Site: "tl2", Tx: 1})
	tr.Emit(core.SinkEvent{Rule: core.RCmt, Site: "tl2", Tx: 1, TxName: "a"})
	tr.Emit(core.SinkEvent{Rule: core.RBegin, Site: "tl2", Tx: 2, TxName: "b"})
	tr.Emit(core.SinkEvent{Rule: core.RAbort, Site: "tl2", Tx: 2, TxName: "b"})

	if err := tr.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	if tr.Completed() != 2 || tr.OpenCount() != 0 {
		t.Fatalf("completed=%d open=%d", tr.Completed(), tr.OpenCount())
	}
	doc := export(t, tr)
	b, e := balance(doc)
	if b != 2 || e != 2 {
		t.Fatalf("B=%d E=%d, want 2/2", b, e)
	}
	outcomes := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "E" {
			outcomes[ev.Args["outcome"]]++
		}
	}
	if outcomes["commit"] != 1 || outcomes["abort"] != 1 {
		t.Fatalf("outcomes: %v", outcomes)
	}
}

func TestSpanLeak(t *testing.T) {
	tr := span.NewTracker()
	tr.Emit(core.SinkEvent{Rule: core.RBegin, Site: "pess", Tx: 9, TxName: "stuck"})
	err := tr.LeakCheck()
	if err == nil {
		t.Fatal("leak check passed with an open span")
	}
	if !strings.Contains(err.Error(), "stuck") || !strings.Contains(err.Error(), "tx=9") {
		t.Fatalf("leak error does not name the span: %v", err)
	}
}

func TestSpanPopWithoutPush(t *testing.T) {
	tr := span.NewTracker()
	tr.Emit(core.SinkEvent{Rule: core.RCmt, Site: "dep", Tx: 3, TxName: "ghost"})
	if err := tr.LeakCheck(); err == nil {
		t.Fatal("pairing violation not reported by LeakCheck")
	}
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err == nil {
		t.Fatal("export succeeded despite pairing violation")
	}
}

func TestSpanDoubleBegin(t *testing.T) {
	tr := span.NewTracker()
	tr.Emit(core.SinkEvent{Rule: core.RBegin, Site: "s", Tx: 1, TxName: "a"})
	tr.Emit(core.SinkEvent{Rule: core.RBegin, Site: "s", Tx: 1, TxName: "b"})
	if err := tr.LeakCheck(); err == nil {
		t.Fatal("double BEGIN not reported")
	}
}

func TestSpanBoundedBalanced(t *testing.T) {
	tr := span.NewTracker()
	tr.MaxEvents = 6 // room for 3 spans
	for tx := uint64(1); tx <= 5; tx++ {
		tr.Emit(core.SinkEvent{Rule: core.RBegin, Site: "s", Tx: tx, TxName: "t"})
		tr.Emit(core.SinkEvent{Rule: core.RCmt, Site: "s", Tx: tx, TxName: "t"})
	}
	if err := tr.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 4 {
		t.Fatalf("dropped = %d rows, want 4 (two whole spans)", tr.Dropped())
	}
	doc := export(t, tr)
	b, e := balance(doc)
	if b != e || b != 3 {
		t.Fatalf("B=%d E=%d, want balanced 3/3", b, e)
	}
}

func TestSpanInstants(t *testing.T) {
	tr := span.NewTracker()
	tr.Instants = true
	tr.Emit(core.SinkEvent{Rule: core.RBegin, Site: "s", Tx: 1, TxName: "t"})
	tr.Emit(core.SinkEvent{Rule: core.RApp, Site: "s", Tx: 1})
	tr.Emit(core.SinkEvent{Rule: core.RPush, Site: "s", Tx: 1})
	tr.Emit(core.SinkEvent{Rule: core.RCmt, Site: "s", Tx: 1, TxName: "t"})
	// An instant outside any span (REnd after retire) is not content.
	tr.Emit(core.SinkEvent{Rule: core.REnd, Site: "s", Tx: 1})

	doc := export(t, tr)
	inst := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "i" {
			inst++
		}
	}
	if inst != 2 {
		t.Fatalf("instants = %d, want 2 (APP, PUSH)", inst)
	}
}

func TestProcessMetadataPerSite(t *testing.T) {
	tr := span.NewTracker()
	for i, site := range []string{"tl2", "boost"} {
		tx := uint64(i + 1)
		tr.Emit(core.SinkEvent{Rule: core.RBegin, Site: site, Tx: tx, TxName: "t"})
		tr.Emit(core.SinkEvent{Rule: core.RCmt, Site: site, Tx: tx, TxName: "t"})
	}
	doc := export(t, tr)
	names := map[string]bool{}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			names[ev.Args["name"]] = true
			pids[ev.Pid] = true
		}
	}
	if !names["tl2"] || !names["boost"] || len(pids) != 2 {
		t.Fatalf("metadata: names=%v pids=%v", names, pids)
	}
}
