// Package span tracks per-transaction-attempt spans from the machine's
// EventSink seam and exports them as Chrome trace_event JSON
// (chrome://tracing / Perfetto "JSON Array Format").
//
// A span is one attempt: pushed by BEGIN, popped by CMT or ABORT.
// Pairing is asserted — a BEGIN over an already-open attempt, or a
// CMT/ABORT with no open attempt, is a recorded violation, and
// LeakCheck (the span analogue of strategy.Env.LeakCheck) fails a run
// that finishes with attempts still open. Rules between the brackets
// become instant events inside the span.
//
// The exported stream is balanced by construction: the B/E pair for an
// attempt is appended atomically at pop time, and the bounded buffer
// drops whole pairs, never one half.
package span

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pushpull/internal/core"
)

// DefaultMaxEvents bounds the trace buffer (B+E+instant events). A
// 50-seed campaign at default sizes stays well under it; past the
// bound whole spans and instants are counted as dropped, never half
// a pair.
const DefaultMaxEvents = 200_000

// key identifies one attempt: the machine's thread id qualified by the
// substrate site (campaigns run many machines into one tracker).
type key struct {
	site string
	tx   uint64
}

type openSpan struct {
	name  string
	begun time.Time
}

// event is one Chrome trace_event row.
type event struct {
	Name string            `json:"name,omitempty"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // µs since tracker start
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
	S    string            `json:"s,omitempty"` // instant scope
}

// Tracker consumes SinkEvents and accumulates the span timeline.
type Tracker struct {
	// MaxEvents bounds the buffered trace rows; <=0 means
	// DefaultMaxEvents. Set before the first Emit.
	MaxEvents int
	// Instants records non-bracket rules (APP, PUSH, PULL, ...) as
	// instant events inside their span. Off by default: bracket-only
	// timelines stay small and are what the leak check needs.
	Instants bool

	mu         sync.Mutex
	start      time.Time
	events     []event
	dropped    uint64
	open       map[key]openSpan
	completed  uint64
	violations []string
	pids       map[string]int // site → synthetic pid
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		start: time.Now(),
		open:  make(map[key]openSpan),
		pids:  make(map[string]int),
	}
}

func (t *Tracker) max() int {
	if t.MaxEvents > 0 {
		return t.MaxEvents
	}
	return DefaultMaxEvents
}

// pid assigns (lazily) a stable synthetic process id per site, so each
// substrate renders as its own process row. Called with mu held.
func (t *Tracker) pid(site string) int {
	if p, ok := t.pids[site]; ok {
		return p
	}
	p := len(t.pids) + 1
	t.pids[site] = p
	return p
}

func (t *Tracker) ts(at time.Time) float64 {
	return float64(at.Sub(t.start).Nanoseconds()) / 1e3
}

// Emit implements core.EventSink.
func (t *Tracker) Emit(e core.SinkEvent) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	k := key{site: e.Site, tx: e.Tx}
	switch e.Rule {
	case core.RBegin:
		if sp, ok := t.open[k]; ok {
			t.violations = append(t.violations, fmt.Sprintf(
				"span: BEGIN %q over still-open %q (site=%q tx=%d)", e.TxName, sp.name, e.Site, e.Tx))
			return
		}
		t.open[k] = openSpan{name: e.TxName, begun: now}
	case core.RCmt, core.RAbort:
		sp, ok := t.open[k]
		if !ok {
			t.violations = append(t.violations, fmt.Sprintf(
				"span: %v %q without open span (site=%q tx=%d)", e.Rule, e.TxName, e.Site, e.Tx))
			return
		}
		delete(t.open, k)
		t.completed++
		if len(t.events)+2 > t.max() {
			t.dropped += 2
			return
		}
		outcome := "commit"
		if e.Rule == core.RAbort {
			outcome = "abort"
		}
		pid := t.pid(e.Site)
		t.events = append(t.events,
			event{Name: sp.name, Cat: e.Site, Ph: "B", Ts: t.ts(sp.begun), Pid: pid, Tid: e.Tx},
			event{Ph: "E", Ts: t.ts(now), Pid: pid, Tid: e.Tx,
				Args: map[string]string{"outcome": outcome}})
	default:
		if !t.Instants {
			return
		}
		if _, ok := t.open[k]; !ok {
			return // REnd after abort, retire marks, ... — not span content
		}
		if len(t.events)+1 > t.max() {
			t.dropped++
			return
		}
		t.events = append(t.events, event{
			Name: e.Rule.String(), Cat: e.Site, Ph: "i", Ts: t.ts(now),
			Pid: t.pid(e.Site), Tid: e.Tx, S: "t",
		})
	}
}

// OpenCount returns the number of attempts currently between BEGIN and
// CMT/ABORT.
func (t *Tracker) OpenCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.open)
}

// Completed returns the number of popped (finished) spans.
func (t *Tracker) Completed() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.completed
}

// Dropped returns how many trace rows the bound discarded.
func (t *Tracker) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// LeakCheck fails if any span is still open (a BEGIN with no matching
// CMT/ABORT pop) or any push/pop pairing violation was recorded — the
// per-attempt analogue of the Env lock/token leak check.
func (t *Tracker) LeakCheck() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var probs []string
	if len(t.open) > 0 {
		keys := make([]key, 0, len(t.open))
		for k := range t.open {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].site != keys[j].site {
				return keys[i].site < keys[j].site
			}
			return keys[i].tx < keys[j].tx
		})
		for _, k := range keys {
			probs = append(probs, fmt.Sprintf("span leaked: %q (site=%q tx=%d)",
				t.open[k].name, k.site, k.tx))
		}
	}
	probs = append(probs, t.violations...)
	if len(probs) == 0 {
		return nil
	}
	return fmt.Errorf("span: %d problems:\n  %s", len(probs), strings.Join(probs, "\n  "))
}
