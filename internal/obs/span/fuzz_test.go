package span_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"pushpull/internal/core"
	"pushpull/internal/obs/span"
)

// FuzzSpanExport drives the tracker with arbitrary rule interleavings —
// including ill-bracketed ones no real machine produces — and asserts
// the export invariant: WriteChromeTrace yields valid JSON with
// balanced B/E events, or refuses with an explicit error. There is no
// third state where a corrupt interleaving exports a plausible-looking
// but unbalanced timeline.
func FuzzSpanExport(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x07, 0x02, 0x06})       // BEGIN APP CMT, one tx
	f.Add([]byte{0x07, 0x17, 0x06, 0x16}) // interleaved txs
	f.Add([]byte{0x06, 0x09, 0x07, 0x07}) // pop-first, abort, double begin
	f.Add([]byte{0x07, 0x08, 0x09, 0x37, 0x39})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := span.NewTracker()
		tr.MaxEvents = 64 // exercise the bound too
		tr.Instants = len(data) > 0 && data[0]&1 == 1
		sites := []string{"tl2", "model"}
		for i, b := range data {
			tr.Emit(core.SinkEvent{
				Seq:    uint64(i + 1),
				Rule:   core.Rule(b % 10),
				Tx:     uint64(b >> 4 & 0x3),
				Site:   sites[int(b>>6)%len(sites)],
				TxName: "f",
			})
		}

		var out bytes.Buffer
		err := tr.WriteChromeTrace(&out)
		if err != nil {
			return // explicit refusal is a legal outcome
		}
		if !json.Valid(out.Bytes()) {
			t.Fatalf("export is not valid JSON: %s", out.String())
		}
		var doc struct {
			TraceEvents []struct {
				Ph string `json:"ph"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		begins, ends := 0, 0
		for _, ev := range doc.TraceEvents {
			switch ev.Ph {
			case "B":
				begins++
			case "E":
				ends++
			}
		}
		if begins != ends {
			t.Fatalf("unbalanced export: B=%d E=%d", begins, ends)
		}
		// The leak check must agree with the bracket structure: spans
		// left open are leaks, never silently exported.
		if tr.OpenCount() == 0 && tr.LeakCheck() != nil {
			t.Fatalf("leak check failed with no open spans and no export error: %v", tr.LeakCheck())
		}
	})
}
