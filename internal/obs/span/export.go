package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeTrace is the JSON Object Format wrapper chrome://tracing and
// Perfetto load directly.
type chromeTrace struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the finished spans as a Chrome trace_event
// file. The stream is balanced (every B has its E — pairs are appended
// atomically) and prefixed with process_name metadata naming each
// substrate site. It returns an explicit error if any pairing
// violation was recorded: a corrupt interleaving must not export as a
// plausible-looking timeline.
func (t *Tracker) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	if len(t.violations) > 0 {
		n, first := len(t.violations), t.violations[0]
		t.mu.Unlock()
		return fmt.Errorf("span: refusing export with %d pairing violations; first: %s", n, first)
	}
	rows := make([]event, 0, len(t.pids)+len(t.events))
	sites := make([]string, 0, len(t.pids))
	for site := range t.pids {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		rows = append(rows, event{
			Name: "process_name", Ph: "M", Pid: t.pids[site],
			Args: map[string]string{"name": site},
		})
	}
	rows = append(rows, t.events...)
	t.mu.Unlock()

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: rows, DisplayTimeUnit: "ms"})
}
