package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestObserved(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.RequestObserved("txn", "ok", 5*time.Microsecond)
			}
			m.RequestObserved("begin", "busy", time.Microsecond)
			m.RequestObserved("commit", "aborted", time.Microsecond)
			m.RequestObserved("get", "error", time.Microsecond)
		}()
	}
	wg.Wait()

	s := m.Snapshot()
	if got := s.Requests["txn"]; got.OK != 200 || got.LatencyNs.Count != 200 {
		t.Fatalf("txn = %+v, want 200 ok / 200 observations", got)
	}
	if s.Requests["begin"].Busy != 4 || s.Requests["commit"].Aborted != 4 || s.Requests["get"].Errors != 4 {
		t.Fatalf("outcome routing wrong: %+v", s.Requests)
	}

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pushpull_requests_total{endpoint="txn",outcome="ok"} 200`,
		`pushpull_requests_total{endpoint="begin",outcome="busy"} 4`,
		`pushpull_request_seconds_bucket{endpoint="txn",le="+Inf"} 200`,
		`pushpull_request_seconds_count{endpoint="txn"} 200`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Zero-count outcomes are suppressed, not exported as 0.
	if strings.Contains(out, `endpoint="begin",outcome="ok"`) {
		t.Fatal("zero-count outcome exported")
	}
}
