package metrics_test

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pushpull/internal/core"
	"pushpull/internal/obs/metrics"
)

// emitTxn streams one whole attempt (BEGIN..CMT/ABORT) into m.
func emitTxn(m *metrics.Metrics, site string, tx uint64, pulls int, commit bool) {
	m.Emit(core.SinkEvent{Rule: core.RBegin, Site: site, Tx: tx})
	for i := 0; i < pulls; i++ {
		m.Emit(core.SinkEvent{Rule: core.RPull, Site: site, Tx: tx})
	}
	m.Emit(core.SinkEvent{Rule: core.RApp, Site: site, Tx: tx})
	m.Emit(core.SinkEvent{Rule: core.RPush, Site: site, Tx: tx})
	end := core.RCmt
	if !commit {
		end = core.RAbort
	}
	m.Emit(core.SinkEvent{Rule: end, Site: site, Tx: tx})
}

func TestCountersAndSnapshot(t *testing.T) {
	m := metrics.New()
	emitTxn(m, "tl2", 1, 2, true)
	emitTxn(m, "tl2", 2, 0, false)
	emitTxn(m, "boost", 3, 1, true)

	s := m.Snapshot()
	if s.Commits != 2 || s.Aborts != 1 {
		t.Fatalf("commits=%d aborts=%d, want 2/1", s.Commits, s.Aborts)
	}
	if s.Rules["BEGIN"] != 3 || s.Rules["PULL"] != 3 || s.Rules["PUSH"] != 3 {
		t.Fatalf("rule counts: %v", s.Rules)
	}
	if s.Sites["tl2"].Commits != 1 || s.Sites["tl2"].Aborts != 1 || s.Sites["tl2"].Begins != 2 {
		t.Fatalf("tl2 site: %+v", s.Sites["tl2"])
	}
	if s.Sites["boost"].Commits != 1 {
		t.Fatalf("boost site: %+v", s.Sites["boost"])
	}
	if s.LiveTxns != 0 {
		t.Fatalf("live txns = %d after all attempts finished", s.LiveTxns)
	}
	// Fan-in histogram saw one observation per finished attempt.
	if s.PullFanIn.Count != 3 || s.PullFanIn.Sum != 3 {
		t.Fatalf("fan-in: count=%d sum=%d", s.PullFanIn.Count, s.PullFanIn.Sum)
	}
	// PUSH→CMT latency observed only for the two commits.
	if s.PushToCmtNs.Count != 2 {
		t.Fatalf("push→cmt count = %d, want 2", s.PushToCmtNs.Count)
	}
}

func TestLiveTxnsGauge(t *testing.T) {
	m := metrics.New()
	m.Emit(core.SinkEvent{Rule: core.RBegin, Site: "s", Tx: 7})
	m.Emit(core.SinkEvent{Rule: core.RPush, Site: "s", Tx: 7})
	if got := m.Snapshot().LiveTxns; got != 1 {
		t.Fatalf("live = %d mid-attempt, want 1", got)
	}
	m.Emit(core.SinkEvent{Rule: core.RCmt, Site: "s", Tx: 7})
	if got := m.Snapshot().LiveTxns; got != 0 {
		t.Fatalf("live = %d after commit, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := metrics.NewHistogram([]int64{1, 2, 4, 8})
	for _, v := range []int64{0, 1, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// ≤1: {0,1}; ≤2: {2}; ≤4: {3}; ≤8: {5}; overflow: {9,100}.
	want := []uint64{2, 1, 1, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 || s.Sum != 120 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
}

func TestObserverCallbacks(t *testing.T) {
	m := metrics.New()
	m.SchedStall()
	m.SchedStall()
	m.SchedKill("boosting0")
	m.FaultFired("tl2/commit")
	m.FaultFired("tl2/commit")
	m.RetryObserved(1, true)
	m.RetryObserved(65, false)
	m.WALSyncObserved(3 * time.Millisecond)

	s := m.Snapshot()
	if s.SchedStalls != 2 || s.SchedKills != 1 {
		t.Fatalf("stalls=%d kills=%d", s.SchedStalls, s.SchedKills)
	}
	if s.Faults["tl2/commit"] != 2 {
		t.Fatalf("faults: %v", s.Faults)
	}
	if s.GaveUp != 1 || s.RetryDepth.Count != 2 {
		t.Fatalf("gaveup=%d retries=%d", s.GaveUp, s.RetryDepth.Count)
	}
	if s.WALSyncNs.Count != 1 || s.WALSyncNs.Sum != (3*time.Millisecond).Nanoseconds() {
		t.Fatalf("wal sync: %+v", s.WALSyncNs)
	}
}

// TestSnapshotUnderConcurrency is the unit-level snapshot consistency
// check: writers hammer every seam while a reader snapshots; per-counter
// totals must be monotonic across snapshots and exact at the end. Run
// with -race this also proves the striped design is data-race-free.
func TestSnapshotUnderConcurrency(t *testing.T) {
	m := metrics.New()
	const writers = 8
	const txnsEach = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var lastCommits, lastRules uint64
		for {
			s := m.Snapshot()
			if s.Commits < lastCommits {
				snapErr = &monotonicErr{"commits", s.Commits, lastCommits}
				return
			}
			if s.Rules["BEGIN"] < lastRules {
				snapErr = &monotonicErr{"BEGIN", s.Rules["BEGIN"], lastRules}
				return
			}
			lastCommits, lastRules = s.Commits, s.Rules["BEGIN"]
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsEach; i++ {
				tx := uint64(w*txnsEach + i)
				emitTxn(m, "race", tx, i%3, i%4 != 0)
				m.RetryObserved(i%5+1, true)
				m.FaultFired("race/site")
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	s := m.Snapshot()
	total := uint64(writers * txnsEach)
	if s.Commits+s.Aborts != total {
		t.Fatalf("commits+aborts = %d, want %d", s.Commits+s.Aborts, total)
	}
	if s.Rules["BEGIN"] != total {
		t.Fatalf("BEGIN = %d, want %d", s.Rules["BEGIN"], total)
	}
	if s.Faults["race/site"] != total {
		t.Fatalf("faults = %d, want %d", s.Faults["race/site"], total)
	}
	if s.LiveTxns != 0 {
		t.Fatalf("live = %d at quiescence", s.LiveTxns)
	}
}

// TestShardInflightSnapshotConsistency hammers the per-shard in-flight
// gauge from concurrent enter/exit writers while a reader snapshots and
// exports continuously. Each observed gauge value must stay within the
// physically possible band [0, writers-per-shard], and at quiescence
// every shard must read exactly zero — in snapshot, point read, and
// Prometheus exposition. Under -race this also proves the lazily
// registered gauge map is data-race-free.
func TestShardInflightSnapshotConsistency(t *testing.T) {
	m := metrics.New()
	shards := []string{"0", "1", "2", "3"}
	const writersPerShard = 4
	const roundsEach = 300
	stop := make(chan struct{})
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			s := m.Snapshot()
			for sh, v := range s.ShardInflight {
				if v < 0 || v > writersPerShard {
					snapErr = &gaugeBandErr{sh, v}
					return
				}
			}
			var b strings.Builder
			if err := m.WritePrometheus(&b); err != nil {
				snapErr = err
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var wg sync.WaitGroup
	for _, sh := range shards {
		for w := 0; w < writersPerShard; w++ {
			wg.Add(1)
			go func(sh string) {
				defer wg.Done()
				for i := 0; i < roundsEach; i++ {
					m.ShardInflightAdd(sh, 1)
					m.ShardInflightAdd(sh, -1)
				}
			}(sh)
		}
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	s := m.Snapshot()
	for _, sh := range shards {
		if v := s.ShardInflight[sh]; v != 0 {
			t.Fatalf("shard %s inflight = %d at quiescence", sh, v)
		}
		if v := m.ShardInflight(sh); v != 0 {
			t.Fatalf("shard %s point read = %d at quiescence", sh, v)
		}
	}
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		want := `pushpull_shard_inflight{shard="` + sh + `"} 0`
		if !strings.Contains(b.String(), want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, b.String())
		}
	}
}

type gaugeBandErr struct {
	shard string
	got   int64
}

func (e *gaugeBandErr) Error() string {
	return "shard " + e.shard + " gauge outside possible band"
}

type monotonicErr struct {
	what      string
	got, last uint64
}

func (e *monotonicErr) Error() string {
	return e.what + " went backwards across snapshots"
}

func TestWritePrometheus(t *testing.T) {
	m := metrics.New()
	emitTxn(m, "tl2", 1, 1, true)
	m.WALSyncObserved(time.Millisecond)
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pushpull_commits_total{site="tl2"} 1`,
		`pushpull_rule_transitions_total{rule="PUSH"} 1`,
		"# TYPE pushpull_push_to_commit_seconds histogram",
		`pushpull_wal_sync_seconds_count 1`,
		`pushpull_wal_sync_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line is "name value" or "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
}

// TestReplMetricsSnapshotConsistency hammers the replication gauges
// from writers while snapshotting and rendering concurrently; under
// -race this proves the replMu discipline, and every snapshot must be
// internally coherent (a role is always one of the values written, lag
// entries are always values some writer produced).
func TestReplMetricsSnapshotConsistency(t *testing.T) {
	m := metrics.New()
	roles := []string{"primary", "follower", "promoting"}
	// Prime both gauges so the final-state assertion is deterministic
	// even if the scheduler starves the writer goroutines entirely.
	m.ReplRoleSet(roles[0])
	m.ReplLagSet("shard-0", 0)
	m.ReplLagSet("coord", 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.ReplRoleSet(roles[(w+i)%len(roles)])
				m.ReplLagSet("shard-0", uint64(i%7))
				m.ReplLagSet("coord", uint64(i%3))
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		s := m.Snapshot()
		if s.ReplRole != "" {
			ok := false
			for _, r := range roles {
				ok = ok || s.ReplRole == r
			}
			if !ok {
				t.Fatalf("snapshot saw impossible role %q", s.ReplRole)
			}
		}
		if lag, present := s.ReplLag["shard-0"]; present && lag > 6 {
			t.Fatalf("snapshot saw impossible lag %d", lag)
		}
		var b strings.Builder
		if err := m.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	s := m.Snapshot()
	if s.ReplRole == "" || len(s.ReplLag) != 2 {
		t.Fatalf("final snapshot lost repl state: role %q, lag %v", s.ReplRole, s.ReplLag)
	}
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"pushpull_repl_role{role=", `pushpull_repl_lag_records{stream="coord"}`, `pushpull_repl_lag_records{stream="shard-0"}`} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestFailoverMetricsSnapshotConsistency hammers the exactly-once and
// failover telemetry (dedup-hit counter, lease-epoch gauge, failover
// counter) from writers while snapshotting and rendering concurrently;
// under -race this proves the counters' atomics discipline, and every
// snapshot must be internally coherent (counters monotone, the lease
// epoch always a value some writer published).
func TestFailoverMetricsSnapshotConsistency(t *testing.T) {
	m := metrics.New()
	m.DedupHit(1)
	m.FailoverObserved()
	m.LeaseEpochSet(1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.DedupHit(uint64(w*31 + i))
				m.LeaseEpochSet(uint64(1 + i%5))
				if i%16 == 0 {
					m.FailoverObserved()
				}
			}
		}(w)
	}
	var lastHits, lastFailovers uint64
	for i := 0; i < 200; i++ {
		s := m.Snapshot()
		if s.DedupHits < lastHits {
			t.Fatalf("dedup hits regressed: %d after %d", s.DedupHits, lastHits)
		}
		if s.FailoverTotal < lastFailovers {
			t.Fatalf("failover total regressed: %d after %d", s.FailoverTotal, lastFailovers)
		}
		lastHits, lastFailovers = s.DedupHits, s.FailoverTotal
		if s.LeaseEpoch > 5 {
			t.Fatalf("snapshot saw impossible lease epoch %d", s.LeaseEpoch)
		}
		var b strings.Builder
		if err := m.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	s := m.Snapshot()
	if s.DedupHits == 0 || s.FailoverTotal == 0 || s.LeaseEpoch == 0 {
		t.Fatalf("final snapshot lost failover state: %+v", s)
	}
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"pushpull_dedup_hits ", "pushpull_failover_total ", "pushpull_lease_epoch "} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestMVCCMetricsSnapshotConsistency hammers the snapshot-store
// telemetry (version/open-snapshot gauges, read-only commit/abort
// counters) from writers while snapshotting and rendering
// concurrently; under -race this proves the atomics discipline, and
// every snapshot must be internally coherent (counters monotone, the
// version gauge never below the floor the writers maintain).
func TestMVCCMetricsSnapshotConsistency(t *testing.T) {
	m := metrics.New()
	m.MVCCVersionsAdd(1)
	m.MVCCSnapshotsAdd(1)
	m.ROCommit()
	m.ROAbort()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Version churn: add two, GC one — the gauge only grows
				// or holds, never dips below the primed floor.
				m.MVCCVersionsAdd(2)
				m.MVCCVersionsAdd(-1)
				m.MVCCSnapshotsAdd(1)
				m.MVCCSnapshotsAdd(-1)
				m.ROCommit()
				if i%16 == 0 {
					m.ROAbort()
				}
			}
		}(w)
	}
	var lastCommits, lastAborts uint64
	for i := 0; i < 200; i++ {
		s := m.Snapshot()
		if s.ROCommits < lastCommits {
			t.Fatalf("ro commits regressed: %d after %d", s.ROCommits, lastCommits)
		}
		if s.ROAborts < lastAborts {
			t.Fatalf("ro aborts regressed: %d after %d", s.ROAborts, lastAborts)
		}
		lastCommits, lastAborts = s.ROCommits, s.ROAborts
		if s.MVCCVersions < 1 {
			t.Fatalf("version gauge dipped below its floor: %d", s.MVCCVersions)
		}
		if s.MVCCSnapshotsOpen < 1 || s.MVCCSnapshotsOpen > 4 {
			t.Fatalf("snapshot gauge saw impossible value %d", s.MVCCSnapshotsOpen)
		}
		var b strings.Builder
		if err := m.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	s := m.Snapshot()
	if s.MVCCVersions == 0 || s.MVCCSnapshotsOpen == 0 || s.ROCommits == 0 || s.ROAborts == 0 {
		t.Fatalf("final snapshot lost mvcc state: %+v", s)
	}
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"pushpull_mvcc_versions ", "pushpull_mvcc_snapshots_open ", "pushpull_ro_commits_total ", "pushpull_ro_aborts_total "} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestSeqMetricsSnapshotConsistency hammers the sequencer telemetry
// (batch-size histogram, epoch gauge, queue-depth gauge) from writers
// while snapshotting and rendering concurrently; under -race this
// proves the atomics discipline, and every snapshot must be internally
// coherent: the epoch gauge never regresses, the queue gauge stays in
// the writers' invariant band, and the histogram count is monotone.
func TestSeqMetricsSnapshotConsistency(t *testing.T) {
	m := metrics.New()
	m.SeqQueueAdd(1) // primed floor so the gauge never dips to zero
	var epoch atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// One admitted transaction per sealed singleton epoch.
				m.SeqQueueAdd(1)
				m.SeqBatchSealed(1+i%8, epoch.Add(1))
				m.SeqQueueAdd(-1)
			}
		}(w)
	}
	// On a single-CPU box the snapshot loop below can finish before the
	// writers are ever scheduled; wait for the first sealed epoch so the
	// final-state assertions have something to see.
	for epoch.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	var lastEpoch, lastCount uint64
	for i := 0; i < 200; i++ {
		s := m.Snapshot()
		if s.SeqEpoch < lastEpoch {
			t.Fatalf("epoch gauge regressed: %d after %d", s.SeqEpoch, lastEpoch)
		}
		lastEpoch = s.SeqEpoch
		if s.SeqBatchSize.Count < lastCount {
			t.Fatalf("batch histogram count regressed: %d after %d", s.SeqBatchSize.Count, lastCount)
		}
		lastCount = s.SeqBatchSize.Count
		if s.SeqQueueDepth < 1 || s.SeqQueueDepth > 4 {
			t.Fatalf("queue gauge saw impossible value %d", s.SeqQueueDepth)
		}
		var b strings.Builder
		if err := m.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	s := m.Snapshot()
	if s.SeqEpoch == 0 || s.SeqBatchSize.Count == 0 || s.SeqQueueDepth != 1 {
		t.Fatalf("final snapshot lost sequencer state: %+v", s)
	}
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"pushpull_seq_epoch ", "pushpull_seq_queue_depth ", "pushpull_seq_batch_size_bucket"} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
