package metrics

import (
	"expvar"
	"fmt"
	"io"
	"sort"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (v0.0.4): counters for totals, classic cumulative
// histograms for the latency/depth distributions. Only the standard
// library is involved — the format is plain text.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	return writeProm(w, m.Snapshot())
}

func writeProm(w io.Writer, s Snapshot) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP pushpull_uptime_seconds Seconds since the metrics suite was created.\n")
	p("# TYPE pushpull_uptime_seconds gauge\n")
	p("pushpull_uptime_seconds %g\n", s.UptimeSeconds)

	p("# HELP pushpull_rule_transitions_total Push/Pull rule applications by rule.\n")
	p("# TYPE pushpull_rule_transitions_total counter\n")
	for _, rule := range sortedKeys(s.Rules) {
		p("pushpull_rule_transitions_total{rule=%q} %d\n", rule, s.Rules[rule])
	}

	p("# HELP pushpull_commits_total Committed transaction attempts by substrate site.\n")
	p("# TYPE pushpull_commits_total counter\n")
	for _, site := range sortedSiteKeys(s.Sites) {
		p("pushpull_commits_total{site=%q} %d\n", site, s.Sites[site].Commits)
	}
	p("# HELP pushpull_aborts_total Aborted transaction attempts by substrate site.\n")
	p("# TYPE pushpull_aborts_total counter\n")
	for _, site := range sortedSiteKeys(s.Sites) {
		p("pushpull_aborts_total{site=%q} %d\n", site, s.Sites[site].Aborts)
	}
	p("# HELP pushpull_begins_total Transaction attempts begun by substrate site.\n")
	p("# TYPE pushpull_begins_total counter\n")
	for _, site := range sortedSiteKeys(s.Sites) {
		p("pushpull_begins_total{site=%q} %d\n", site, s.Sites[site].Begins)
	}

	p("# HELP pushpull_faults_injected_total Chaos injections by fault site (the abort-cause taxonomy).\n")
	p("# TYPE pushpull_faults_injected_total counter\n")
	for _, site := range sortedKeys(s.Faults) {
		p("pushpull_faults_injected_total{site=%q} %d\n", site, s.Faults[site])
	}

	p("# HELP pushpull_retries_exhausted_total Retry-budget exhaustions (controlled give-ups).\n")
	p("# TYPE pushpull_retries_exhausted_total counter\n")
	p("pushpull_retries_exhausted_total %d\n", s.GaveUp)
	p("# HELP pushpull_sched_stalls_total Injected scheduler stalls.\n")
	p("# TYPE pushpull_sched_stalls_total counter\n")
	p("pushpull_sched_stalls_total %d\n", s.SchedStalls)
	p("# HELP pushpull_sched_kills_total Injected mid-transaction driver kills.\n")
	p("# TYPE pushpull_sched_kills_total counter\n")
	p("pushpull_sched_kills_total %d\n", s.SchedKills)
	p("# HELP pushpull_live_txns Transaction attempts currently between BEGIN and CMT/ABORT.\n")
	p("# TYPE pushpull_live_txns gauge\n")
	p("pushpull_live_txns %d\n", s.LiveTxns)

	if len(s.ShardInflight) > 0 {
		p("# HELP pushpull_shard_inflight Transactions (and cross-shard branches) currently running per shard.\n")
		p("# TYPE pushpull_shard_inflight gauge\n")
		for _, sh := range sortedInt64Keys(s.ShardInflight) {
			p("pushpull_shard_inflight{shard=%q} %d\n", sh, s.ShardInflight[sh])
		}
	}

	if s.ReplRole != "" {
		p("# HELP pushpull_repl_role Replication role of this node (primary, follower, promoting).\n")
		p("# TYPE pushpull_repl_role gauge\n")
		p("pushpull_repl_role{role=%q} 1\n", s.ReplRole)
	}
	if len(s.ReplLag) > 0 {
		p("# HELP pushpull_repl_lag_records Durable records this replica trails the primary by, per stream.\n")
		p("# TYPE pushpull_repl_lag_records gauge\n")
		for _, st := range sortedKeys(s.ReplLag) {
			p("pushpull_repl_lag_records{stream=%q} %d\n", st, s.ReplLag[st])
		}
	}
	if s.DedupHits > 0 {
		p("# HELP pushpull_dedup_hits Exactly-once retries answered from the session dedup table.\n")
		p("# TYPE pushpull_dedup_hits counter\n")
		p("pushpull_dedup_hits %d\n", s.DedupHits)
	}
	if s.FailoverTotal > 0 {
		p("# HELP pushpull_failover_total Automatic promotions the supervisor drove to completion.\n")
		p("# TYPE pushpull_failover_total counter\n")
		p("pushpull_failover_total %d\n", s.FailoverTotal)
	}
	if s.LeaseEpoch > 0 {
		p("# HELP pushpull_lease_epoch Lease epoch this node currently holds (0 = no lease).\n")
		p("# TYPE pushpull_lease_epoch gauge\n")
		p("pushpull_lease_epoch %d\n", s.LeaseEpoch)
	}
	if s.MVCCVersions > 0 {
		p("# HELP pushpull_mvcc_versions Live versions held across MVCC chains (post-GC).\n")
		p("# TYPE pushpull_mvcc_versions gauge\n")
		p("pushpull_mvcc_versions %d\n", s.MVCCVersions)
	}
	if s.MVCCSnapshotsOpen > 0 {
		p("# HELP pushpull_mvcc_snapshots_open Snapshots currently pinning a watermark against GC.\n")
		p("# TYPE pushpull_mvcc_snapshots_open gauge\n")
		p("pushpull_mvcc_snapshots_open %d\n", s.MVCCSnapshotsOpen)
	}
	if s.SeqEpoch > 0 {
		p("# HELP pushpull_seq_epoch Latest sequencer epoch sealed (0 = sequencer idle or disabled).\n")
		p("# TYPE pushpull_seq_epoch gauge\n")
		p("pushpull_seq_epoch %d\n", s.SeqEpoch)
	}
	if s.SeqQueueDepth > 0 {
		p("# HELP pushpull_seq_queue_depth Admitted-but-unsettled transactions in the sequencer.\n")
		p("# TYPE pushpull_seq_queue_depth gauge\n")
		p("pushpull_seq_queue_depth %d\n", s.SeqQueueDepth)
	}
	if s.TypedOps > 0 || s.CommuteHits > 0 {
		p("# HELP pushpull_ops_typed_total Typed (commutativity-aware) operations executed.\n")
		p("# TYPE pushpull_ops_typed_total counter\n")
		p("pushpull_ops_typed_total %d\n", s.TypedOps)
		p("# HELP pushpull_ops_commute_hits_total Typed operations that shared an abstract lock with a commuting peer.\n")
		p("# TYPE pushpull_ops_commute_hits_total counter\n")
		p("pushpull_ops_commute_hits_total %d\n", s.CommuteHits)
	}
	if s.ROCommits > 0 || s.ROAborts > 0 {
		p("# HELP pushpull_ro_commits_total Read-only snapshot transactions served and certified.\n")
		p("# TYPE pushpull_ro_commits_total counter\n")
		p("pushpull_ro_commits_total %d\n", s.ROCommits)
		p("# HELP pushpull_ro_aborts_total Read-only transactions rejected (certification or protocol errors).\n")
		p("# TYPE pushpull_ro_aborts_total counter\n")
		p("pushpull_ro_aborts_total %d\n", s.ROAborts)
	}

	if len(s.Requests) > 0 {
		p("# HELP pushpull_requests_total KV server requests by endpoint and outcome.\n")
		p("# TYPE pushpull_requests_total counter\n")
		for _, ep := range sortedReqKeys(s.Requests) {
			r := s.Requests[ep]
			for _, oc := range [...]struct {
				name string
				n    uint64
			}{{"ok", r.OK}, {"aborted", r.Aborted}, {"busy", r.Busy}, {"error", r.Errors}} {
				if oc.n > 0 {
					p("pushpull_requests_total{endpoint=%q,outcome=%q} %d\n", ep, oc.name, oc.n)
				}
			}
		}
		for _, ep := range sortedReqKeys(s.Requests) {
			promHistLabeled(p, "pushpull_request_seconds",
				"KV server request latency by endpoint.",
				fmt.Sprintf("endpoint=%q", ep), s.Requests[ep].LatencyNs, 1e9)
		}
	}

	promHist(p, "pushpull_retry_depth", "Retry attempt number per retry-policy draw.", s.RetryDepth, 1)
	promHist(p, "pushpull_push_to_commit_seconds", "Latency from an attempt's first PUSH to its CMT.", s.PushToCmtNs, 1e9)
	promHist(p, "pushpull_pull_fanin", "PULLed foreign operations per finished attempt.", s.PullFanIn, 1)
	promHist(p, "pushpull_wal_sync_seconds", "Write-ahead log sync latency.", s.WALSyncNs, 1e9)
	if s.SeqBatchSize.Count > 0 {
		promHist(p, "pushpull_seq_batch_size", "Transactions per sealed sequencer epoch.", s.SeqBatchSize, 1)
	}
	return err
}

// promHist renders one classic cumulative histogram; scale divides the
// raw int64 observations into the exported unit (1e9 for ns→s).
func promHist(p func(string, ...any), name, help string, h HistogramSnapshot, scale float64) {
	p("# HELP %s %s\n", name, help)
	p("# TYPE %s histogram\n", name)
	var cum uint64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		p("%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", float64(b)/scale), cum)
	}
	cum += h.Counts[len(h.Bounds)]
	p("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	p("%s_sum %g\n", name, float64(h.Sum)/scale)
	p("%s_count %d\n", name, h.Count)
}

// promHistLabeled is promHist with a fixed extra label on every series
// (HELP/TYPE are emitted per call; Prometheus tolerates repeats of the
// same metadata, and endpoints are few).
func promHistLabeled(p func(string, ...any), name, help, label string, h HistogramSnapshot, scale float64) {
	p("# HELP %s %s\n", name, help)
	p("# TYPE %s histogram\n", name)
	var cum uint64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		p("%s_bucket{%s,le=%q} %d\n", name, label, fmt.Sprintf("%g", float64(b)/scale), cum)
	}
	cum += h.Counts[len(h.Bounds)]
	p("%s_bucket{%s,le=\"+Inf\"} %d\n", name, label, cum)
	p("%s_sum{%s} %g\n", name, label, float64(h.Sum)/scale)
	p("%s_count{%s} %d\n", name, label, h.Count)
}

func sortedReqKeys(m map[string]RequestSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedInt64Keys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedSiteKeys(m map[string]SiteSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PublishExpvar registers the live snapshot under the given expvar name
// (default "pushpull" when empty), so the stock /debug/vars endpoint
// carries it. Re-publishing an already-taken name is a no-op — expvar
// panics on duplicates, and campaign code may build several suites.
func (m *Metrics) PublishExpvar(name string) {
	if name == "" {
		name = "pushpull"
	}
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
