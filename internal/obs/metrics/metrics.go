// Package metrics aggregates rule-level telemetry from the Push/Pull
// machine's EventSink seam into lock-striped counters and bounded
// histograms, with an atomic snapshot API and Prometheus-text/expvar
// exporters.
//
// One Metrics instance serves a whole campaign: every substrate's
// shadow machine (and the cooperative model machine) emits SinkEvents
// tagged with its site name, so per-substrate counts fall out of the
// same stream. The non-machine seams — scheduler stalls/kills, chaos
// injections, retry policy draws, WAL sync latency — feed in through
// small structural callbacks (SchedStall/SchedKill, FaultFired,
// RetryObserved, WALSyncObserved), keeping this package free of
// dependencies on sched/chaos/wal.
//
// Hot-path discipline: rule counters are striped across cache-line
// padded atomics indexed by transaction id, so concurrent emitters
// (different recorders, or the goroutine substrates behind one
// recorder mutex) do not contend on one line. Histograms are fixed
// arrays of atomics. The only locks are per-stripe maps for live
// per-transaction state (PUSH→CMT latency, PULL fan-in) and the lazy
// per-site registry.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pushpull/internal/core"
)

// nRules covers RApp..RAbort.
const nRules = int(core.RAbort) + 1

// stripes is the counter fan-out; power of two so the index is a mask.
const stripes = 16

// padded keeps each stripe on its own cache line.
type padded struct {
	n atomic.Uint64
	_ [56]byte
}

// counter is a lock-striped monotonic counter.
type counter struct {
	v [stripes]padded
}

func (c *counter) add(stripe uint64) { c.v[stripe&(stripes-1)].n.Add(1) }

// Add increments the counter on the stripe derived from key.
func (c *counter) Add(key uint64) { c.add(key) }

// Load sums the stripes. Concurrent adds may or may not be included —
// the snapshot guarantee is per-counter monotonicity, not cross-counter
// simultaneity.
func (c *counter) Load() uint64 {
	var s uint64
	for i := range c.v {
		s += c.v[i].n.Load()
	}
	return s
}

// Histogram is a bounded histogram: fixed ascending upper bounds plus
// an overflow bucket, all atomics.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Int64
}

// NewHistogram builds a histogram over ascending upper bounds.
func NewHistogram(bounds []int64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// ExpBounds returns n doubling bounds starting at lo: lo, 2lo, 4lo, ...
func ExpBounds(lo int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = lo
		lo *= 2
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a plain-value copy of a histogram.
type HistogramSnapshot struct {
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"` // len(Bounds)+1; last is overflow
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// siteCounters is the per-substrate tally.
type siteCounters struct {
	begins  atomic.Uint64
	commits atomic.Uint64
	aborts  atomic.Uint64
}

// txKey identifies one live transaction attempt.
type txKey struct {
	site string
	tx   uint64
}

// txState is the live per-attempt telemetry (reset by CMT/ABORT).
type txState struct {
	firstPush time.Time
	pulls     int64
}

// txShard is one stripe of the live-transaction map.
type txShard struct {
	mu sync.Mutex
	m  map[txKey]*txState
}

// Metrics is the campaign-wide aggregate. The zero value is not usable;
// call New.
type Metrics struct {
	start time.Time

	rules   [nRules]counter
	commits counter
	aborts  counter

	retryDepth *Histogram // retry attempt number per draw
	gaveUp     counter    // retry-budget exhaustions
	pushToCmt  *Histogram // first-PUSH→CMT latency, ns
	pullFanIn  *Histogram // PULLs per committed/aborted attempt
	walSync    *Histogram // WAL sync latency, ns
	stalls     counter    // injected scheduler stalls
	kills      counter    // injected scheduler kills

	txs [stripes]txShard

	sitesMu sync.RWMutex
	sites   map[string]*siteCounters

	faultsMu sync.Mutex
	faults   map[string]uint64 // chaos site → injections observed

	reqsMu sync.RWMutex
	reqs   map[string]*endpointStats // server endpoint → request tally

	shardsMu sync.RWMutex
	shards   map[string]*atomic.Int64 // shard label → in-flight gauge

	replMu   sync.RWMutex
	replRole string            // primary | follower | promoting ("" = not replicated)
	replLag  map[string]uint64 // stream label → record lag behind the primary

	dedupHits  counter       // exactly-once retries answered from the session table
	failovers  counter       // automatic promotions driven to completion
	leaseEpoch atomic.Uint64 // current lease epoch held (0 = no lease)

	mvccVersions  atomic.Int64 // live version-chain links across MVCC stores
	mvccSnapshots atomic.Int64 // pinned snapshots currently open
	roCommits     counter      // read-only snapshot txns certified and committed
	roAborts      counter      // read-only txns refused (certification/misuse)

	seqBatch *Histogram    // transactions per sealed sequencer epoch
	seqEpoch atomic.Uint64 // latest sealed epoch number (0 = none yet)
	seqQueue atomic.Int64  // admitted-but-unsettled sequencer queue depth

	typedOps    counter // typed (commutativity-aware) operations executed
	commuteHits counter // typed ops that shared an abstract lock with a peer
}

// New returns an empty Metrics with the default bucket layouts:
// latencies 1µs..~8s doubling, retry depth 1..64, fan-in 1..256.
func New() *Metrics {
	return &Metrics{
		start:      time.Now(),
		retryDepth: NewHistogram(ExpBounds(1, 7)),
		pushToCmt:  NewHistogram(ExpBounds(1000, 24)),
		pullFanIn:  NewHistogram(ExpBounds(1, 9)),
		walSync:    NewHistogram(ExpBounds(1000, 24)),
		seqBatch:   NewHistogram(ExpBounds(1, 9)),
		sites:      make(map[string]*siteCounters),
		faults:     make(map[string]uint64),
		reqs:       make(map[string]*endpointStats),
		shards:     make(map[string]*atomic.Int64),
		replLag:    make(map[string]uint64),
	}
}

func (m *Metrics) site(name string) *siteCounters {
	m.sitesMu.RLock()
	s := m.sites[name]
	m.sitesMu.RUnlock()
	if s != nil {
		return s
	}
	m.sitesMu.Lock()
	defer m.sitesMu.Unlock()
	if s = m.sites[name]; s == nil {
		s = &siteCounters{}
		m.sites[name] = s
	}
	return s
}

func (m *Metrics) shard(k txKey) *txShard {
	return &m.txs[k.tx&(stripes-1)]
}

// Emit implements core.EventSink: one rule transition.
func (m *Metrics) Emit(e core.SinkEvent) {
	r := int(e.Rule)
	if r < 0 || r >= nRules {
		return
	}
	m.rules[r].add(e.Tx)
	k := txKey{site: e.Site, tx: e.Tx}
	switch e.Rule {
	case core.RBegin:
		m.site(e.Site).begins.Add(1)
	case core.RPull:
		sh := m.shard(k)
		sh.mu.Lock()
		if sh.m == nil {
			sh.m = make(map[txKey]*txState)
		}
		st := sh.m[k]
		if st == nil {
			st = &txState{}
			sh.m[k] = st
		}
		st.pulls++
		sh.mu.Unlock()
	case core.RPush:
		sh := m.shard(k)
		sh.mu.Lock()
		if sh.m == nil {
			sh.m = make(map[txKey]*txState)
		}
		st := sh.m[k]
		if st == nil {
			st = &txState{}
			sh.m[k] = st
		}
		if st.firstPush.IsZero() {
			st.firstPush = time.Now()
		}
		sh.mu.Unlock()
	case core.RCmt:
		m.commits.add(e.Tx)
		m.site(e.Site).commits.Add(1)
		m.finish(k, true)
	case core.RAbort:
		m.aborts.add(e.Tx)
		m.site(e.Site).aborts.Add(1)
		m.finish(k, false)
	}
}

// finish closes the live state for one attempt, observing its latency
// and fan-in.
func (m *Metrics) finish(k txKey, committed bool) {
	sh := m.shard(k)
	sh.mu.Lock()
	st := sh.m[k]
	delete(sh.m, k)
	sh.mu.Unlock()
	if st == nil {
		return
	}
	if committed && !st.firstPush.IsZero() {
		m.pushToCmt.Observe(time.Since(st.firstPush).Nanoseconds())
	}
	m.pullFanIn.Observe(st.pulls)
}

// SchedStall observes one injected scheduler stall (sched.Observer).
func (m *Metrics) SchedStall() { m.stalls.add(0) }

// SchedKill observes one injected mid-transaction driver kill
// (sched.Observer).
func (m *Metrics) SchedKill(driver string) { m.kills.add(0) }

// FaultFired observes one chaos injection at the named fault site — the
// abort-cause taxonomy (chaos.Faults observer, via a string adapter).
func (m *Metrics) FaultFired(site string) {
	m.faultsMu.Lock()
	m.faults[site]++
	m.faultsMu.Unlock()
}

// RetryObserved observes one retry-budget draw: attempt number n,
// allowed=false meaning the budget is exhausted (chaos.RetryPolicy
// OnRetry signature).
func (m *Metrics) RetryObserved(n int, allowed bool) {
	m.retryDepth.Observe(int64(n))
	if !allowed {
		m.gaveUp.add(uint64(n))
	}
}

// WALSyncObserved observes one WAL sync duration (wal.Options
// SyncObserver signature).
func (m *Metrics) WALSyncObserved(d time.Duration) {
	m.walSync.Observe(d.Nanoseconds())
}

// shardGauge returns (lazily registering) one shard's in-flight gauge.
func (m *Metrics) shardGauge(shard string) *atomic.Int64 {
	m.shardsMu.RLock()
	g := m.shards[shard]
	m.shardsMu.RUnlock()
	if g != nil {
		return g
	}
	m.shardsMu.Lock()
	defer m.shardsMu.Unlock()
	if g = m.shards[shard]; g == nil {
		g = &atomic.Int64{}
		m.shards[shard] = g
	}
	return g
}

// ShardInflightAdd moves one shard's in-flight transaction gauge by
// delta — +1 when a transaction (or cross-shard branch) starts running
// on the shard, -1 when it finishes. Exported as the
// pushpull_shard_inflight gauge.
func (m *Metrics) ShardInflightAdd(shard string, delta int64) {
	m.shardGauge(shard).Add(delta)
}

// ShardInflight reads one shard's current gauge value.
func (m *Metrics) ShardInflight(shard string) int64 {
	return m.shardGauge(shard).Load()
}

// ReplRoleSet sets the node's replication role gauge (primary,
// follower, promoting). Exported as pushpull_repl_role.
func (m *Metrics) ReplRoleSet(role string) {
	m.replMu.Lock()
	m.replRole = role
	m.replMu.Unlock()
}

// ReplRole reads the current replication role ("" when the node does
// not replicate).
func (m *Metrics) ReplRole() string {
	m.replMu.RLock()
	defer m.replMu.RUnlock()
	return m.replRole
}

// ReplLagSet sets one replication stream's record-lag gauge (primary
// durable records minus replica applied records). Exported as
// pushpull_repl_lag_records.
func (m *Metrics) ReplLagSet(stream string, lag uint64) {
	m.replMu.Lock()
	m.replLag[stream] = lag
	m.replMu.Unlock()
}

// DedupHit observes one exactly-once retry answered from the session
// dedup table instead of re-executing. Exported as pushpull_dedup_hits.
func (m *Metrics) DedupHit(session uint64) { m.dedupHits.add(session) }

// DedupHits reads the dedup-hit total.
func (m *Metrics) DedupHits() uint64 { return m.dedupHits.Load() }

// FailoverObserved counts one automatic promotion driven to completion
// by the supervisor. Exported as pushpull_failover_total.
func (m *Metrics) FailoverObserved() { m.failovers.add(0) }

// LeaseEpochSet publishes the lease epoch this node currently holds
// (0 after losing it). Exported as the pushpull_lease_epoch gauge.
func (m *Metrics) LeaseEpochSet(epoch uint64) { m.leaseEpoch.Store(epoch) }

// LeaseEpoch reads the published lease epoch.
func (m *Metrics) LeaseEpoch() uint64 { return m.leaseEpoch.Load() }

// MVCCVersionsAdd moves the live version-chain gauge (mvcc.Observer).
// Exported as pushpull_mvcc_versions.
func (m *Metrics) MVCCVersionsAdd(delta int64) { m.mvccVersions.Add(delta) }

// MVCCVersions reads the live version-count gauge.
func (m *Metrics) MVCCVersions() int64 { return m.mvccVersions.Load() }

// MVCCSnapshotsAdd moves the open-snapshot gauge (mvcc.Observer).
// Exported as pushpull_mvcc_snapshots_open.
func (m *Metrics) MVCCSnapshotsAdd(delta int64) { m.mvccSnapshots.Add(delta) }

// MVCCSnapshotsOpen reads the open-snapshot gauge.
func (m *Metrics) MVCCSnapshotsOpen() int64 { return m.mvccSnapshots.Load() }

// ROCommit counts one read-only snapshot transaction certified against
// the committed history and answered. Exported as
// pushpull_ro_commits_total.
func (m *Metrics) ROCommit() { m.roCommits.add(0) }

// ROCommits reads the read-only commit total.
func (m *Metrics) ROCommits() uint64 { return m.roCommits.Load() }

// ROAbort counts one read-only transaction refused — certification
// failure or protocol misuse (a write inside the read-only class).
func (m *Metrics) ROAbort() { m.roAborts.add(0) }

// ROAborts reads the read-only abort total.
func (m *Metrics) ROAborts() uint64 { return m.roAborts.Load() }

// SeqBatchSealed observes one sealed sequencer epoch (seq.Observer):
// the batch size lands in the pushpull_seq_batch_size histogram and the
// epoch number in the pushpull_seq_epoch gauge.
func (m *Metrics) SeqBatchSealed(size int, epoch uint64) {
	m.seqBatch.Observe(int64(size))
	m.seqEpoch.Store(epoch)
}

// SeqQueueAdd moves the sequencer queue-depth gauge (seq.Observer):
// +1 at admission, -1 when the transaction settles. Exported as
// pushpull_seq_queue_depth.
func (m *Metrics) SeqQueueAdd(delta int64) { m.seqQueue.Add(delta) }

// TypedOp counts one typed (commutativity-aware) operation executed on
// a committed transaction's final attempt; key picks the counter
// stripe. Exported as pushpull_ops_typed_total.
func (m *Metrics) TypedOp(key uint64) { m.typedOps.add(key) }

// TypedOps reads the typed-operation total.
func (m *Metrics) TypedOps() uint64 { return m.typedOps.Load() }

// CommuteHit counts one typed operation that acquired its abstract
// lock in a shared commute class — concurrency a read/write substrate
// would have refused. Exported as pushpull_ops_commute_hits_total.
func (m *Metrics) CommuteHit(key uint64) { m.commuteHits.add(key) }

// CommuteHits reads the commute-hit total.
func (m *Metrics) CommuteHits() uint64 { return m.commuteHits.Load() }

// SeqEpoch reads the latest sealed epoch number.
func (m *Metrics) SeqEpoch() uint64 { return m.seqEpoch.Load() }

// SeqQueueDepth reads the sequencer queue-depth gauge.
func (m *Metrics) SeqQueueDepth() int64 { return m.seqQueue.Load() }

// Snapshot is a plain-value copy of every aggregate. Each counter is
// internally consistent (monotonic); the snapshot as a whole is taken
// without stopping writers, so cross-counter sums may be mid-update by
// a few events — the race-detector-clean trade the striped design buys.
type Snapshot struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Rules         map[string]uint64 `json:"rules"`
	Commits       uint64            `json:"commits"`
	Aborts        uint64            `json:"aborts"`
	GaveUp        uint64            `json:"gave_up"`
	SchedStalls   uint64            `json:"sched_stalls"`
	SchedKills    uint64            `json:"sched_kills"`
	LiveTxns      int               `json:"live_txns"`

	Sites         map[string]SiteSnapshot    `json:"sites"`
	Faults        map[string]uint64          `json:"faults"`
	Requests      map[string]RequestSnapshot `json:"requests"`
	ShardInflight map[string]int64           `json:"shard_inflight,omitempty"`
	ReplRole      string                     `json:"repl_role,omitempty"`
	ReplLag       map[string]uint64          `json:"repl_lag_records,omitempty"`
	DedupHits     uint64                     `json:"dedup_hits,omitempty"`
	FailoverTotal uint64                     `json:"failover_total,omitempty"`
	LeaseEpoch    uint64                     `json:"lease_epoch,omitempty"`

	MVCCVersions      int64  `json:"mvcc_versions,omitempty"`
	MVCCSnapshotsOpen int64  `json:"mvcc_snapshots_open,omitempty"`
	ROCommits         uint64 `json:"ro_commits,omitempty"`
	ROAborts          uint64 `json:"ro_aborts,omitempty"`

	SeqEpoch      uint64 `json:"seq_epoch,omitempty"`
	SeqQueueDepth int64  `json:"seq_queue_depth,omitempty"`

	TypedOps    uint64 `json:"ops_typed_total,omitempty"`
	CommuteHits uint64 `json:"ops_commute_hits_total,omitempty"`

	RetryDepth   HistogramSnapshot `json:"retry_depth"`
	PushToCmtNs  HistogramSnapshot `json:"push_to_cmt_ns"`
	PullFanIn    HistogramSnapshot `json:"pull_fan_in"`
	WALSyncNs    HistogramSnapshot `json:"wal_sync_ns"`
	SeqBatchSize HistogramSnapshot `json:"seq_batch_size,omitempty"`
}

// SiteSnapshot is one substrate's tally.
type SiteSnapshot struct {
	Begins  uint64 `json:"begins"`
	Commits uint64 `json:"commits"`
	Aborts  uint64 `json:"aborts"`
}

// Snapshot copies the current aggregates.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Rules:         make(map[string]uint64, nRules),
		Commits:       m.commits.Load(),
		Aborts:        m.aborts.Load(),
		GaveUp:        m.gaveUp.Load(),
		SchedStalls:   m.stalls.Load(),
		SchedKills:    m.kills.Load(),
		Sites:         make(map[string]SiteSnapshot),
		Faults:        make(map[string]uint64),
		Requests:      make(map[string]RequestSnapshot),
		RetryDepth:    m.retryDepth.Snapshot(),
		PushToCmtNs:   m.pushToCmt.Snapshot(),
		PullFanIn:     m.pullFanIn.Snapshot(),
		WALSyncNs:     m.walSync.Snapshot(),
	}
	for r := 0; r < nRules; r++ {
		if n := m.rules[r].Load(); n > 0 {
			s.Rules[core.Rule(r).String()] = n
		}
	}
	m.sitesMu.RLock()
	for name, c := range m.sites {
		s.Sites[name] = SiteSnapshot{
			Begins:  c.begins.Load(),
			Commits: c.commits.Load(),
			Aborts:  c.aborts.Load(),
		}
	}
	m.sitesMu.RUnlock()
	m.faultsMu.Lock()
	for site, n := range m.faults {
		s.Faults[site] = n
	}
	m.faultsMu.Unlock()
	m.reqsMu.RLock()
	for name, e := range m.reqs {
		s.Requests[name] = RequestSnapshot{
			OK: e.ok.Load(), Aborted: e.aborted.Load(),
			Busy: e.busy.Load(), Errors: e.errs.Load(),
			LatencyNs: e.lat.Snapshot(),
		}
	}
	m.reqsMu.RUnlock()
	m.shardsMu.RLock()
	if len(m.shards) > 0 {
		s.ShardInflight = make(map[string]int64, len(m.shards))
		for shard, g := range m.shards {
			s.ShardInflight[shard] = g.Load()
		}
	}
	m.shardsMu.RUnlock()
	s.DedupHits = m.dedupHits.Load()
	s.FailoverTotal = m.failovers.Load()
	s.LeaseEpoch = m.leaseEpoch.Load()
	s.MVCCVersions = m.mvccVersions.Load()
	s.MVCCSnapshotsOpen = m.mvccSnapshots.Load()
	s.ROCommits = m.roCommits.Load()
	s.ROAborts = m.roAborts.Load()
	s.SeqEpoch = m.seqEpoch.Load()
	s.SeqQueueDepth = m.seqQueue.Load()
	s.SeqBatchSize = m.seqBatch.Snapshot()
	s.TypedOps = m.typedOps.Load()
	s.CommuteHits = m.commuteHits.Load()
	m.replMu.RLock()
	s.ReplRole = m.replRole
	if len(m.replLag) > 0 {
		s.ReplLag = make(map[string]uint64, len(m.replLag))
		for stream, lag := range m.replLag {
			s.ReplLag[stream] = lag
		}
	}
	m.replMu.RUnlock()
	for i := range m.txs {
		sh := &m.txs[i]
		sh.mu.Lock()
		s.LiveTxns += len(sh.m)
		sh.mu.Unlock()
	}
	return s
}
