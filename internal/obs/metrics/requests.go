package metrics

import (
	"sync/atomic"
	"time"
)

// Per-endpoint request telemetry for the KV server: each wire endpoint
// (txn, begin, get, put, commit, abort, ping, http.txn) gets outcome
// counters and a latency histogram, registered lazily like the
// per-site counters so the package stays ignorant of the server's
// endpoint list.

// endpointStats is one endpoint's tally.
type endpointStats struct {
	ok      atomic.Uint64
	aborted atomic.Uint64
	busy    atomic.Uint64
	errs    atomic.Uint64
	lat     *Histogram // ns
}

func (m *Metrics) endpoint(name string) *endpointStats {
	m.reqsMu.RLock()
	e := m.reqs[name]
	m.reqsMu.RUnlock()
	if e != nil {
		return e
	}
	m.reqsMu.Lock()
	defer m.reqsMu.Unlock()
	if e = m.reqs[name]; e == nil {
		e = &endpointStats{lat: NewHistogram(ExpBounds(1000, 24))}
		m.reqs[name] = e
	}
	return e
}

// RequestObserved records one served request: endpoint is the wire
// message name, outcome one of "ok"/"aborted"/"busy"/"error"
// (kvapi.Status.String()), d the wall time from frame decode to
// response encode.
func (m *Metrics) RequestObserved(endpoint, outcome string, d time.Duration) {
	e := m.endpoint(endpoint)
	switch outcome {
	case "ok":
		e.ok.Add(1)
	case "aborted":
		e.aborted.Add(1)
	case "busy":
		e.busy.Add(1)
	default:
		e.errs.Add(1)
	}
	e.lat.Observe(d.Nanoseconds())
}

// RequestSnapshot is one endpoint's plain-value tally.
type RequestSnapshot struct {
	OK        uint64            `json:"ok"`
	Aborted   uint64            `json:"aborted"`
	Busy      uint64            `json:"busy"`
	Errors    uint64            `json:"errors"`
	LatencyNs HistogramSnapshot `json:"latency_ns"`
}
