package metrics

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the debug surface:
//
//	/debug/pushpull        Prometheus text exposition
//	/debug/pushpull/json   the Snapshot as JSON
//	/debug/pprof/...       the standard runtime profiles
//
// It is mounted only when a command is started with its -http flag —
// the observability endpoint is opt-in, never ambient.
func (m *Metrics) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pushpull", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pushpull/json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
