package metrics_test

import (
	"strings"
	"sync"
	"testing"

	"pushpull/internal/obs/metrics"
)

// TestTypedCountersSnapshotConsistency hammers the typed-operation
// counters from many writers while readers snapshot and export
// concurrently (run under -race in ci). Each reader's sequential
// snapshots must be monotone — the striped counters only grow — and
// the quiescent totals must account for every recorded event exactly,
// with the hit count bounded by the op count.
func TestTypedCountersSnapshotConsistency(t *testing.T) {
	m := metrics.New()
	const writers, perWriter = 8, 2000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerErr := make(chan string, 4)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastOps, lastHits uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.Snapshot()
				if s.TypedOps < lastOps || s.CommuteHits < lastHits {
					select {
					case readerErr <- "snapshot went backwards":
					default:
					}
					return
				}
				lastOps, lastHits = s.TypedOps, s.CommuteHits
				var sb strings.Builder
				if err := m.WritePrometheus(&sb); err != nil {
					select {
					case readerErr <- err.Error():
					default:
					}
					return
				}
			}
		}()
	}

	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				key := uint64(w*perWriter + i)
				m.TypedOp(key)
				if i%2 == 0 {
					m.CommuteHit(key)
				}
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	select {
	case msg := <-readerErr:
		t.Fatal(msg)
	default:
	}

	s := m.Snapshot()
	if want := uint64(writers * perWriter); s.TypedOps != want {
		t.Fatalf("typed ops = %d, want %d", s.TypedOps, want)
	}
	if want := uint64(writers * perWriter / 2); s.CommuteHits != want {
		t.Fatalf("commute hits = %d, want %d", s.CommuteHits, want)
	}
	if s.CommuteHits > s.TypedOps {
		t.Fatalf("hits %d exceed typed ops %d", s.CommuteHits, s.TypedOps)
	}

	// The Prometheus export names are the observable contract.
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"pushpull_ops_typed_total", "pushpull_ops_commute_hits_total"} {
		if !strings.Contains(out, name) {
			t.Fatalf("export missing %s:\n%s", name, out)
		}
	}
}
