// Package obs is the observability subsystem: it bundles the
// rule-level metrics aggregator (obs/metrics) and the span timeline
// tracker (obs/span) behind one core.EventSink, so a campaign attaches
// a single subscriber per machine and gets both.
//
// The seam is core's per-rule dispatch point: the WAL LogHook always
// fires first, then registered sinks in order, under one monotonic
// sequence — so durability and telemetry can never disagree on rule
// entry ordering. Attachment points:
//
//   - substrates: trace.Recorder.SetSite + AttachSink (the recorder
//     mutex serializes emission in real commit order);
//   - the cooperative model: Machine.SetSite + AddEventSink;
//   - the scheduler: sched.RunChaosObserved with Suite.Metrics as the
//     sched.Observer (stalls, kills);
//   - fault injection: chaos.Faults.SetObserver → Metrics.FaultFired;
//   - retries: chaos.RetryPolicy.OnRetry → Metrics.RetryObserved;
//   - the WAL: wal.Options.SyncObserver → Metrics.WALSyncObserved.
//
// internal/bench wires all of these when ChaosParams/SubstrateParams
// carry a Suite; cmd/pushpull-obs drives any bench/chaos target and
// emits the Prometheus-text summary plus the Chrome-trace timeline.
package obs

import (
	"pushpull/internal/core"
	"pushpull/internal/obs/metrics"
	"pushpull/internal/obs/span"
)

// Suite is the combined subscriber.
type Suite struct {
	Metrics *metrics.Metrics
	Spans   *span.Tracker
}

// New returns a fresh suite with default metrics buckets and span
// bounds.
func New() *Suite {
	return &Suite{Metrics: metrics.New(), Spans: span.NewTracker()}
}

// Emit implements core.EventSink, fanning each rule transition to the
// metrics aggregator and the span tracker.
func (s *Suite) Emit(e core.SinkEvent) {
	s.Metrics.Emit(e)
	s.Spans.Emit(e)
}

// LeakCheck asserts every BEGIN had its matching CMT/ABORT pop.
func (s *Suite) LeakCheck() error { return s.Spans.LeakCheck() }

var _ core.EventSink = (*Suite)(nil)
