package history_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/history"
	"pushpull/internal/spec"
	"pushpull/internal/stm/tl2"
	"pushpull/internal/trace"
)

func TestRoundTripAndReplay(t *testing.T) {
	// Record a certified concurrent TL2 run with the journal on.
	reg := spec.NewRegistry()
	reg.Register("mem", adt.Register{})
	rec := trace.NewRecorder(reg)
	rec.Journal = true
	m := tl2.New(8)
	m.Recorder = rec

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				addr := (g + i) % 8
				_ = m.Atomic(func(tx *tl2.Tx) error {
					v, err := tx.Read(addr)
					if err != nil {
						return err
					}
					return tx.Write(addr, v+1)
				})
			}
		}(g)
	}
	wg.Wait()
	if err := rec.FinalCheck(); err != nil {
		t.Fatal(err)
	}

	f := history.Capture(rec, []history.ObjectDecl{{Name: "mem", Type: "register"}})
	if len(f.Txns) != 75 {
		t.Fatalf("journal entries = %d, want 75", len(f.Txns))
	}

	var buf bytes.Buffer
	if err := history.Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	loaded, err := history.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := history.Replay(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Certified != 75 {
		t.Fatalf("replay certified %d, want 75", rep.Certified)
	}
}

func TestReplayCatchesTamperedHistory(t *testing.T) {
	f := &history.File{
		FormatVersion: history.CurrentFormat,
		Objects:       []history.ObjectDecl{{Name: "mem", Type: "register"}},
		Txns: []trace.JournalEntry{
			{Name: "w", Ops: []trace.OpRecord{
				{Obj: "mem", Method: "write", Args: []int64{0, 5}, Ret: 0},
			}},
			// Tampered: claims a stale read of 0 after the committed 5.
			{Name: "forged", Ops: []trace.OpRecord{
				{Obj: "mem", Method: "read", Args: []int64{0}, Ret: 0},
			}},
		},
	}
	rep, err := history.Replay(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() == nil {
		t.Fatal("tampered history must fail certification")
	}
	if rep.Certified != 1 || len(rep.Violations) != 1 {
		t.Fatalf("report %+v", rep)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := []string{
		`{`,
		`{"format_version": 99, "objects": [], "txns": []}`,
		`{"format_version": 1, "objects": [], "txns": [], "extra": 1}`,
	}
	for _, src := range cases {
		if _, err := history.Load(strings.NewReader(src)); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestRegistryUnknownType(t *testing.T) {
	f := &history.File{FormatVersion: 1, Objects: []history.ObjectDecl{{Name: "x", Type: "flux"}}}
	if _, err := f.Registry(); err == nil {
		t.Fatal("unknown type must error")
	}
}

func TestSessionJournaled(t *testing.T) {
	reg := spec.NewRegistry()
	reg.Register("set", adt.Set{})
	rec := trace.NewRecorder(reg)
	rec.Journal = true
	s := rec.Begin("eager")
	if !s.Op("set", "add", []int64{1}, 1) {
		t.Fatal(rec.Err())
	}
	if !s.Commit() {
		t.Fatal(rec.Err())
	}
	f := history.Capture(rec, []history.ObjectDecl{{Name: "set", Type: "set"}})
	if len(f.Txns) != 1 || len(f.Txns[0].Ops) != 1 {
		t.Fatalf("journal %+v", f.Txns)
	}
	rep, err := history.Replay(f)
	if err != nil || rep.Err() != nil {
		t.Fatalf("replay: %v %v", err, rep.Err())
	}
}
