// Package history persists certified transactional histories as JSON
// and replays them through a fresh shadow machine — offline
// certification: record a run on one machine, verify the Theorem 5.17
// certificate anywhere.
//
// A history file carries its own object declarations, so replay needs
// no out-of-band registry; the declared types are instantiated from the
// standard specification catalogue (internal/adt).
package history

import (
	"encoding/json"
	"fmt"
	"io"

	"pushpull/internal/adt"
	"pushpull/internal/spec"
	"pushpull/internal/trace"
)

// ObjectDecl declares one object instance and its specification type.
type ObjectDecl struct {
	Name string `json:"name"`
	Type string `json:"type"` // register | set | map | counter | queue
}

// File is a recorded history: the object universe plus every committed
// transaction, in commit order, with observed return values.
type File struct {
	// FormatVersion guards future schema changes.
	FormatVersion int                  `json:"format_version"`
	Objects       []ObjectDecl         `json:"objects"`
	Txns          []trace.JournalEntry `json:"txns"`
}

// CurrentFormat is the schema version written by Save.
const CurrentFormat = 1

// specFor instantiates a specification by type name.
func specFor(typ string) (spec.Object, error) {
	switch typ {
	case "register":
		return adt.Register{}, nil
	case "set":
		return adt.Set{}, nil
	case "map":
		return adt.Map{}, nil
	case "counter":
		return adt.Counter{}, nil
	case "queue":
		return adt.Queue{}, nil
	default:
		return nil, fmt.Errorf("history: unknown specification type %q", typ)
	}
}

// Registry builds the registry a file declares.
func (f *File) Registry() (*spec.Registry, error) {
	r := spec.NewRegistry()
	for _, d := range f.Objects {
		obj, err := specFor(d.Type)
		if err != nil {
			return nil, err
		}
		r.Register(d.Name, obj)
	}
	return r, nil
}

// Capture snapshots a recorder's journal into a File. decls must cover
// every object the journal touches.
func Capture(rec *trace.Recorder, decls []ObjectDecl) *File {
	return &File{
		FormatVersion: CurrentFormat,
		Objects:       decls,
		Txns:          rec.JournalEntries(),
	}
}

// Save writes the history as indented JSON.
func Save(w io.Writer, f *File) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Load parses a history file.
func Load(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	if f.FormatVersion != CurrentFormat {
		return nil, fmt.Errorf("history: unsupported format version %d", f.FormatVersion)
	}
	return &f, nil
}

// ReplayReport summarizes an offline certification.
type ReplayReport struct {
	Certified  int
	Violations []trace.Violation
}

// Err returns nil iff every transaction certified.
func (r ReplayReport) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("history: %d violations; first: %v", len(r.Violations), r.Violations[0])
}

// Replay re-certifies the recorded history on a fresh shadow machine:
// each transaction is replayed, in recorded order, as the commit-time
// decomposition PULL*;APP*;PUSH*;CMT with every criterion checked and
// every recorded return value validated against the sequential
// specification. This is the offline form of the Theorem 5.17
// certificate.
func Replay(f *File) (ReplayReport, error) {
	reg, err := f.Registry()
	if err != nil {
		return ReplayReport{}, err
	}
	rec := trace.NewRecorder(reg)
	for _, txn := range f.Txns {
		rec.AtomicTxn(txn.Name, txn.Ops)
	}
	rep := ReplayReport{Certified: rec.Commits(), Violations: rec.Violations()}
	if err := rec.FinalCheck(); err != nil && len(rep.Violations) == 0 {
		return rep, err
	}
	return rep, nil
}
