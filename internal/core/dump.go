package core

import (
	"fmt"
	"strings"
)

// Dump renders the whole machine configuration (T, G) for debugging and
// teaching: each thread with its code, stack and flagged local log,
// then the shared log with commit marks — the paper's Figure 1 in text.
func (m *Machine) Dump() string {
	var b strings.Builder
	b.WriteString("=== Push/Pull machine ===\n")
	for _, t := range m.Threads() {
		status := "idle"
		if t.Active() {
			status = "in-tx"
		}
		fmt.Fprintf(&b, "thread %d %q (%s)\n", t.ID, t.Name, status)
		if t.Active() {
			fmt.Fprintf(&b, "  code:  %s\n", t.Code)
			fmt.Fprintf(&b, "  stack: %s\n", t.Stack)
			if len(t.Local) == 0 {
				b.WriteString("  local: (empty)\n")
			}
			for i, e := range t.Local {
				fmt.Fprintf(&b, "  local[%d] %-6s %s\n", i, e.Flag, e.Op)
			}
		}
	}
	b.WriteString("shared log G:\n")
	if len(m.global) == 0 {
		b.WriteString("  (empty)\n")
	}
	for i, e := range m.global {
		mark := "gUCmt"
		if e.Committed {
			mark = fmt.Sprintf("gCmt@%d", e.Stamp)
		}
		fmt.Fprintf(&b, "  G[%d] %-8s %s\n", i, mark, e.Op)
	}
	if state, ok := m.Reg.DenoteFrom(m.StartState(), m.GlobalLog()); ok {
		fmt.Fprintf(&b, "denoted state: %s\n", state)
	}
	return b.String()
}
