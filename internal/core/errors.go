package core

import "fmt"

// Rule names the Push/Pull reductions (Figures 4–6).
type Rule int

// Rules. RBegin/REnd bracket transactions (MS_SELECT context / MS_END).
// RAbort is the whole-transaction rewind mark delivered to LogHook and
// EventSink subscribers (the recorded event trace keeps its historical
// END mark for aborts; see Machine.Abort).
const (
	RApp Rule = iota
	RUnapp
	RPush
	RUnpush
	RPull
	RUnpull
	RCmt
	RBegin
	REnd
	RAbort
)

var ruleNames = map[Rule]string{
	RApp: "APP", RUnapp: "UNAPP", RPush: "PUSH", RUnpush: "UNPUSH",
	RPull: "PULL", RUnpull: "UNPULL", RCmt: "CMT", RBegin: "BEGIN", REnd: "END",
	RAbort: "ABORT",
}

func (r Rule) String() string { return ruleNames[r] }

// CriterionError reports a violated rule side-condition, named exactly
// as the paper names it, e.g. "PUSH criterion (ii)". A rule application
// returning a CriterionError left the machine unchanged, so callers
// (TM drivers) may react — block, abort, retry — exactly as real
// implementations react to conflicts.
type CriterionError struct {
	Rule      Rule
	Criterion string // "(i)", "(ii)", ...
	Detail    string
}

func (e *CriterionError) Error() string {
	return fmt.Sprintf("%s criterion %s: %s", e.Rule, e.Criterion, e.Detail)
}

func criterion(rule Rule, crit, format string, args ...any) *CriterionError {
	return &CriterionError{Rule: rule, Criterion: crit, Detail: fmt.Sprintf(format, args...)}
}

// IsCriterion reports whether err is a violation of the given rule and
// criterion number.
func IsCriterion(err error, rule Rule, crit string) bool {
	ce, ok := err.(*CriterionError)
	return ok && ce.Rule == rule && ce.Criterion == crit
}
