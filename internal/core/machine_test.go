package core_test

import (
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/core"
	"pushpull/internal/lang"
	"pushpull/internal/spec"
)

func reg() *spec.Registry {
	r := spec.NewRegistry()
	r.Register("mem", adt.Register{})
	r.Register("set", adt.Set{})
	r.Register("ht", adt.Map{})
	r.Register("ctr", adt.Counter{})
	r.Register("q", adt.Queue{})
	return r
}

func testMachine(t *testing.T) *core.Machine {
	t.Helper()
	opts := core.DefaultOptions()
	opts.SelfCheck = true
	return core.NewMachine(reg(), opts)
}

// appOne APPlies the single next step, failing the test if the step set
// is not a singleton.
func appOne(t *testing.T, m *core.Machine, th *core.Thread) spec.Op {
	t.Helper()
	steps := m.Steps(th)
	if len(steps) == 0 {
		t.Fatalf("no steps available for %s (code %v)", th.Name, th.Code)
	}
	op, err := m.App(th, steps[0])
	if err != nil {
		t.Fatalf("APP failed for %s: %v", th.Name, err)
	}
	return op
}

func begin(t *testing.T, m *core.Machine, th *core.Thread, src string) {
	t.Helper()
	if err := m.Begin(th, lang.MustParseTxn(src), nil); err != nil {
		t.Fatal(err)
	}
}

func pushAll(t *testing.T, m *core.Machine, th *core.Thread) {
	t.Helper()
	for i, e := range th.Local {
		if e.Flag == core.Npshd {
			if err := m.Push(th, i); err != nil {
				t.Fatalf("PUSH %v: %v", e.Op, err)
			}
		}
	}
}

func TestSimpleTransactionLifecycle(t *testing.T) {
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { ht.put(1, 10); v := ht.get(1); }`)

	op1 := appOne(t, m, th) // put
	if op1.Method != adt.MMapPut || op1.Ret != spec.Absent {
		t.Fatalf("put op = %v", op1)
	}
	op2 := appOne(t, m, th) // get sees local put
	if op2.Method != adt.MMapGet || op2.Ret != 10 {
		t.Fatalf("get op = %v (local view must see own put)", op2)
	}
	if th.Stack["v"] != 10 {
		t.Fatalf("stack v = %d, want 10", th.Stack["v"])
	}
	// Commit must fail before pushing (criterion (ii)).
	if _, err := m.Commit(th); !core.IsCriterion(err, core.RCmt, "(ii)") {
		t.Fatalf("CMT before PUSH: err = %v, want CMT criterion (ii)", err)
	}
	pushAll(t, m, th)
	rec, err := m.Commit(th)
	if err != nil {
		t.Fatalf("CMT: %v", err)
	}
	if len(rec.Ops) != 2 || rec.Stamp != 1 {
		t.Fatalf("commit record = %+v", rec)
	}
	if th.Active() {
		t.Fatal("thread must be idle after CMT")
	}
	if g := m.GlobalCommitted(); len(g) != 2 {
		t.Fatalf("committed global = %v", g)
	}
}

func TestAppCriterionII(t *testing.T) {
	// A put with an Absent value is never allowed by the map spec.
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { ht.put(1, absent); }`)
	steps := m.Steps(th)
	if _, err := m.App(th, steps[0]); !core.IsCriterion(err, core.RApp, "(ii)") {
		t.Fatalf("err = %v, want APP criterion (ii)", err)
	}
}

func TestUnappRestoresCodeAndStack(t *testing.T) {
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { v := ctr.get(); ctr.inc(); }`)
	preCode := th.Code
	appOne(t, m, th)
	if th.Stack["v"] != 0 {
		t.Fatal("get must bind v")
	}
	appOne(t, m, th)
	if err := m.Unapp(th); err != nil {
		t.Fatal(err)
	}
	if err := m.Unapp(th); err != nil {
		t.Fatal(err)
	}
	if len(th.Local) != 0 {
		t.Fatal("local log must be empty after full rewind")
	}
	if _, bound := th.Stack["v"]; bound {
		t.Fatal("UNAPP must restore the pre-stack")
	}
	if th.Code.String() != preCode.String() {
		t.Fatalf("code %v, want %v", th.Code, preCode)
	}
}

func TestUnappRequiresNpshd(t *testing.T) {
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { ctr.inc(); }`)
	appOne(t, m, th)
	if err := m.Push(th, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Unapp(th); !core.IsCriterion(err, core.RUnapp, "(i)") {
		t.Fatalf("UNAPP of pshd entry: err = %v", err)
	}
}

func TestPushCriterionII_Conflict(t *testing.T) {
	// Two transactions pushing non-commuting operations: the second
	// PUSH must fail criterion (ii) while the first is uncommitted.
	m := testMachine(t)
	t1, t2 := m.Spawn("t1"), m.Spawn("t2")
	begin(t, m, t1, `tx a { ctr.inc(); }`)
	begin(t, m, t2, `tx b { v := ctr.get(); }`)
	appOne(t, m, t1)
	appOne(t, m, t2)
	if err := m.Push(t1, 0); err != nil {
		t.Fatalf("first push: %v", err)
	}
	// t2's get cannot be pushed: t1's uncommitted inc cannot move right
	// of a get (the get's return would change).
	if err := m.Push(t2, 0); !core.IsCriterion(err, core.RPush, "(ii)") {
		t.Fatalf("conflicting push: err = %v, want PUSH criterion (ii)", err)
	}
	// After t1 commits, the get's return (0) is stale: pushing it would
	// make G disallowed, so criterion (iii) rejects it.
	if _, err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := m.Push(t2, 0); !core.IsCriterion(err, core.RPush, "(iii)") {
		t.Fatalf("stale push: err = %v, want PUSH criterion (iii)", err)
	}
	// t2 recovers by rewinding and re-running (optimistic retry). The
	// retry must PULL the newly committed state first: with a stale
	// (empty) view the re-applied get would still return 0 and its PUSH
	// would again fail criterion (iii).
	if err := m.Abort(t2); err != nil {
		t.Fatal(err)
	}
	begin(t, m, t2, `tx b { v := ctr.get(); }`)
	if err := m.Pull(t2, 0); err != nil {
		t.Fatal(err)
	}
	appOne(t, m, t2)
	pushAll(t, m, t2)
	if _, err := m.Commit(t2); err != nil {
		t.Fatal(err)
	}
	if t2.Stack["v"] != 1 {
		t.Fatalf("retried get = %d, want 1", t2.Stack["v"])
	}
}

func TestPushCommutingOperationsInterleave(t *testing.T) {
	// Boosting's bread and butter: adds of distinct keys interleave
	// freely while both uncommitted.
	m := testMachine(t)
	t1, t2 := m.Spawn("t1"), m.Spawn("t2")
	begin(t, m, t1, `tx a { set.add(1); }`)
	begin(t, m, t2, `tx b { set.add(2); }`)
	appOne(t, m, t1)
	appOne(t, m, t2)
	if err := m.Push(t1, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Push(t2, 0); err != nil {
		t.Fatalf("commuting push must succeed: %v", err)
	}
	if _, err := m.Commit(t2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPushCriterionI_OutOfOrder(t *testing.T) {
	// Section 7's signature move: pushing a later operation before an
	// earlier one is fine when they commute, rejected when they don't.
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { set.add(1); set.add(2); }`)
	appOne(t, m, th)
	appOne(t, m, th)
	// Push index 1 (add(2)) before index 0 (add(1)): distinct keys, OK.
	if err := m.Push(th, 1); err != nil {
		t.Fatalf("out-of-order commuting push: %v", err)
	}
	if err := m.Push(th, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(th); err != nil {
		t.Fatal(err)
	}

	// Non-commuting pair: inc then get; pushing the get first would
	// publish a value that must precede the inc — criterion (i).
	th2 := m.Spawn("t2")
	begin(t, m, th2, `tx b { ctr.inc(); v := ctr.get(); }`)
	appOne(t, m, th2)
	appOne(t, m, th2)
	if err := m.Push(th2, 1); !core.IsCriterion(err, core.RPush, "(i)") {
		t.Fatalf("out-of-order non-commuting push: err = %v, want PUSH criterion (i)", err)
	}
	// In order is fine.
	if err := m.Push(th2, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Push(th2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(th2); err != nil {
		t.Fatal(err)
	}
}

func TestUnpushRestoresSharedLog(t *testing.T) {
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { set.add(5); }`)
	appOne(t, m, th)
	if err := m.Push(th, 0); err != nil {
		t.Fatal(err)
	}
	if len(m.GlobalLog()) != 1 {
		t.Fatal("push must append to G")
	}
	if err := m.Unpush(th, 0); err != nil {
		t.Fatal(err)
	}
	if len(m.GlobalLog()) != 0 {
		t.Fatal("unpush must remove from G")
	}
	if th.Local[0].Flag != core.Npshd {
		t.Fatal("unpush must restore npshd")
	}
}

func TestUnpushCriterionII_DependentSuffix(t *testing.T) {
	// A transaction pushes two same-address writes (its own later push
	// is exempt from PUSH criterion (ii)); unpushing the first would
	// orphan the second's recorded return value.
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { mem.write(1, 5); mem.write(1, 7); }`)
	appOne(t, m, th)
	appOne(t, m, th)
	if err := m.Push(th, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Push(th, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Unpush(th, 0); !core.IsCriterion(err, core.RUnpush, "(ii)") {
		t.Fatalf("unpush under dependent suffix: err = %v, want UNPUSH criterion (ii)", err)
	}
	// Unpushing from the tail works.
	if err := m.Unpush(th, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Unpush(th, 0); err != nil {
		t.Fatal(err)
	}
}

func TestUnpushCommittedForbidden(t *testing.T) {
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { ctr.inc(); }`)
	appOne(t, m, th)
	if err := m.Push(th, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(th); err != nil {
		t.Fatal(err)
	}
	// The thread is idle now; a fresh transaction cannot unpush history
	// (entry no longer in any local log), and committed entries are
	// permanent by construction — verify by rebeginning and checking no
	// pshd entries exist to unpush.
	begin(t, m, th, `tx b { ctr.inc(); }`)
	if err := m.Unpush(th, 0); err == nil {
		t.Fatal("unpush with no pshd entry must fail")
	}
}

func TestPullCommittedAndRead(t *testing.T) {
	m := testMachine(t)
	t1, t2 := m.Spawn("t1"), m.Spawn("t2")
	begin(t, m, t1, `tx a { ctr.inc(); }`)
	appOne(t, m, t1)
	pushAll(t, m, t1)
	if _, err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}

	begin(t, m, t2, `tx b { v := ctr.get(); }`)
	// Without pulling, the local view misses the inc.
	if err := m.Pull(t2, 0); err != nil {
		t.Fatalf("PULL committed: %v", err)
	}
	op := appOne(t, m, t2)
	if op.Ret != 1 {
		t.Fatalf("get after pull = %d, want 1", op.Ret)
	}
	// Double pull rejected (criterion (i)).
	if err := m.Pull(t2, 0); !core.IsCriterion(err, core.RPull, "(i)") {
		t.Fatalf("double pull: err = %v", err)
	}
	pushAll(t, m, t2)
	if _, err := m.Commit(t2); err != nil {
		t.Fatal(err)
	}
}

func TestPullCriterionIII_OwnOpsMustMoveRight(t *testing.T) {
	// t2 has already done a get (sees 0); pulling t1's committed inc
	// would need the get to move right of the inc — refused.
	m := testMachine(t)
	t1, t2 := m.Spawn("t1"), m.Spawn("t2")
	begin(t, m, t2, `tx b { v := ctr.get(); ctr.inc(); }`)
	appOne(t, m, t2) // get -> 0

	begin(t, m, t1, `tx a { ctr.inc(); }`)
	appOne(t, m, t1)
	pushAll(t, m, t1)
	if _, err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}

	if err := m.Pull(t2, 0); !core.IsCriterion(err, core.RPull, "(iii)") {
		t.Fatalf("pull behind a conflicting own op: err = %v, want PULL criterion (iii)", err)
	}
}

func TestPullCriterionII_LocalMustAllow(t *testing.T) {
	// Pulling the same committed write twice in a row is caught by (i);
	// pulling a write whose recorded old-value contradicts the local
	// view is caught by (ii).
	m := testMachine(t)
	t1, t2, t3 := m.Spawn("t1"), m.Spawn("t2"), m.Spawn("t3")
	begin(t, m, t1, `tx a { mem.write(1, 5); }`)
	appOne(t, m, t1)
	pushAll(t, m, t1)
	if _, err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	begin(t, m, t2, `tx b { mem.write(1, 9); }`)
	if err := m.Pull(t2, 0); err != nil {
		t.Fatal(err)
	}
	appOne(t, m, t2)
	pushAll(t, m, t2)
	if _, err := m.Commit(t2); err != nil {
		t.Fatal(err)
	}
	// t3 cannot pull the SECOND write alone: its recorded old-value (5)
	// contradicts the empty local view — criterion (ii). Pulling in
	// order succeeds and yields the current value.
	begin(t, m, t3, `tx c { v := mem.read(1); }`)
	if err := m.Pull(t3, 1); !core.IsCriterion(err, core.RPull, "(ii)") {
		t.Fatalf("out-of-order dependent pull: err = %v, want PULL criterion (ii)", err)
	}
	if err := m.Pull(t3, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Pull(t3, 1); err != nil {
		t.Fatal(err)
	}
	op := appOne(t, m, t3)
	if op.Ret != 9 {
		t.Fatalf("read after ordered pulls = %d, want 9", op.Ret)
	}
}

func TestDependentTransactionCommitOrder(t *testing.T) {
	// Section 6.5: t2 pulls t1's uncommitted push and cannot commit
	// until t1 does (CMT criterion (iii)).
	m := testMachine(t)
	t1, t2 := m.Spawn("t1"), m.Spawn("t2")
	begin(t, m, t1, `tx a { set.add(1); }`)
	appOne(t, m, t1)
	pushAll(t, m, t1)

	begin(t, m, t2, `tx b { v := set.contains(1); }`)
	if err := m.Pull(t2, 0); err != nil {
		t.Fatalf("pull uncommitted: %v", err)
	}
	op := appOne(t, m, t2)
	if op.Ret != 1 {
		t.Fatalf("dependent read = %d, want 1 (sees uncommitted add)", op.Ret)
	}
	// The dependent contains cannot be PUSHed while the source add is
	// uncommitted: the add could not move right of it (criterion (ii)).
	if err := m.Push(t2, 1); !core.IsCriterion(err, core.RPush, "(ii)") {
		t.Fatalf("dependent push before source commit: err = %v, want PUSH criterion (ii)", err)
	}
	// A pull-only observer exhibits CMT criterion (iii) directly.
	t3 := m.Spawn("t3")
	begin(t, m, t3, `tx c { skip; }`)
	if err := m.Pull(t3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(t3); !core.IsCriterion(err, core.RCmt, "(iii)") {
		t.Fatalf("pull-only commit before source: err = %v, want CMT criterion (iii)", err)
	}
	// Source commits; dependent pushes and commits afterwards — the
	// commit-order stipulation of Section 6.5.
	if _, err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	pushAll(t, m, t2)
	if _, err := m.Commit(t2); err != nil {
		t.Fatalf("dependent commit after source: %v", err)
	}
	if _, err := m.Commit(t3); err != nil {
		t.Fatalf("observer commit after source: %v", err)
	}
}

func TestDependentAbortCascadesViaDetangle(t *testing.T) {
	// t1 aborts after t2 pulled its effect: t2 must detangle (UNPULL,
	// rewinding dependent APPs first).
	m := testMachine(t)
	t1, t2 := m.Spawn("t1"), m.Spawn("t2")
	begin(t, m, t1, `tx a { set.add(1); }`)
	appOne(t, m, t1)
	pushAll(t, m, t1)

	begin(t, m, t2, `tx b { v := set.contains(1); }`)
	if err := m.Pull(t2, 0); err != nil {
		t.Fatal(err)
	}
	appOne(t, m, t2) // contains -> 1, depends on pulled add

	// UNPULL is blocked while the dependent read is in the local log.
	if err := m.Unpull(t2, 0); !core.IsCriterion(err, core.RUnpull, "(i)") {
		t.Fatalf("unpull with dependent op: err = %v, want UNPULL criterion (i)", err)
	}
	// t1 aborts; its push is removed from G.
	if err := m.Abort(t1); err != nil {
		t.Fatal(err)
	}
	if len(m.GlobalLog()) != 0 {
		t.Fatal("abort must unpush t1's operation")
	}
	// t2 cannot commit: its pulled op is gone (criterion (iii)), and its
	// own contains push would now be over a view G does not support.
	if _, err := m.Commit(t2); err == nil {
		t.Fatal("dependent of an aborted transaction must not commit")
	}
	// Detangle: rewind the dependent APP, then unpull, then re-execute.
	if err := m.Unapp(t2); err != nil {
		t.Fatal(err)
	}
	if err := m.Unpull(t2, 0); err != nil {
		t.Fatalf("unpull after rewind: %v", err)
	}
	op := appOne(t, m, t2)
	if op.Ret != 0 {
		t.Fatalf("re-run contains = %d, want 0 after t1's abort", op.Ret)
	}
	pushAll(t, m, t2)
	if _, err := m.Commit(t2); err != nil {
		t.Fatal(err)
	}
}

func TestAbortFullRestore(t *testing.T) {
	m := testMachine(t)
	th := m.Spawn("t1")
	src := `tx a { ht.put(1, 2); v := ht.get(1); set.add(3); }`
	begin(t, m, th, src)
	appOne(t, m, th)
	appOne(t, m, th)
	if err := m.Push(th, 0); err != nil {
		t.Fatal(err)
	}
	appOne(t, m, th)
	if err := m.Abort(th); err != nil {
		t.Fatal(err)
	}
	if th.Active() || len(th.Local) != 0 || len(m.GlobalLog()) != 0 {
		t.Fatal("abort must fully rewind thread and shared log")
	}
	if _, bound := th.Stack["v"]; bound {
		t.Fatal("abort must restore the original stack")
	}
	// The transaction can rerun from scratch.
	begin(t, m, th, src)
	appOne(t, m, th)
	appOne(t, m, th)
	appOne(t, m, th)
	pushAll(t, m, th)
	if _, err := m.Commit(th); err != nil {
		t.Fatal(err)
	}
}

func TestCommitRequiresFin(t *testing.T) {
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { ctr.inc(); ctr.inc(); }`)
	appOne(t, m, th)
	pushAll(t, m, th)
	if _, err := m.Commit(th); !core.IsCriterion(err, core.RCmt, "(i)") {
		t.Fatalf("commit with remaining method: err = %v, want CMT criterion (i)", err)
	}
}

func TestEventsRecordDecomposition(t *testing.T) {
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx boost { ht.put(1, 7); }`)
	appOne(t, m, th)
	pushAll(t, m, th)
	if _, err := m.Commit(th); err != nil {
		t.Fatal(err)
	}
	events := m.Events()
	var rules []core.Rule
	for _, e := range events {
		rules = append(rules, e.Rule)
	}
	want := []core.Rule{core.RBegin, core.RApp, core.RPush, core.RCmt}
	if len(rules) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, rules[i], want[i])
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { ctr.inc(); ctr.inc(); }`)
	appOne(t, m, th)

	c := m.Clone()
	ct, ok := c.Thread(th.ID)
	if !ok {
		t.Fatal("clone lost thread")
	}
	// Advance the clone; the original must not change.
	steps := c.Steps(ct)
	if _, err := c.App(ct, steps[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Push(ct, 0); err != nil {
		t.Fatal(err)
	}
	if len(th.Local) != 1 || len(m.GlobalLog()) != 0 {
		t.Fatal("mutating a clone leaked into the original")
	}
	if len(ct.Local) != 2 || len(c.GlobalLog()) != 1 {
		t.Fatal("clone did not advance")
	}
}

func TestInvariantsAcrossInterleaving(t *testing.T) {
	// A mixed interleaving across three threads, verifying the Section 5
	// invariants at every point (SelfCheck on).
	m := testMachine(t)
	t1, t2, t3 := m.Spawn("t1"), m.Spawn("t2"), m.Spawn("t3")
	begin(t, m, t1, `tx a { set.add(1); ctr.inc(); }`)
	begin(t, m, t2, `tx b { set.add(2); }`)
	begin(t, m, t3, `tx c { ht.put(9, 9); }`)
	appOne(t, m, t1)
	appOne(t, m, t2)
	if err := m.Push(t2, 0); err != nil {
		t.Fatal(err)
	}
	appOne(t, m, t1)
	if err := m.Push(t1, 0); err != nil {
		t.Fatal(err)
	}
	appOne(t, m, t3)
	if err := m.Push(t3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(t3); err != nil {
		t.Fatal(err)
	}
	if err := m.Push(t1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(t2); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	recs := m.Commits()
	if len(recs) != 3 {
		t.Fatalf("commits = %v", recs)
	}
}
