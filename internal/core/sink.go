package core

import "pushpull/internal/spec"

// SinkEvent is one successful rule transition as delivered to an
// EventSink: the universal instrumentation record. Every TM substrate
// in this repository reduces to the same eight transitions (APP, UNAPP,
// PUSH, UNPUSH, PULL, UNPULL, CMT plus the whole-transaction abort
// mark), so one sink observes TL2, 2PL, boosting, HTM-sim, dependent
// transactions, and the hybrid uniformly — rule-level telemetry is
// substrate-agnostic by construction.
type SinkEvent struct {
	// Seq is the machine's monotonic dispatch sequence number. It is
	// assigned under whatever serializes the machine (the trace.Recorder
	// mutex for shadow machines, the cooperative scheduler for the model
	// machine), so all subscribers observe the same total order.
	Seq uint64
	// Site labels the emitting machine (the substrate name for shadow
	// machines, "model" for the cooperative machine); see SetSite.
	Site string
	// Rule is the transition that fired. RBegin/RCmt/RAbort bracket
	// transaction attempts; REnd marks thread retirement.
	Rule Rule
	// Tx is the machine thread id of the acting transaction.
	Tx uint64
	// TxName is the transaction's name, if any.
	TxName string
	// Op is the operation the rule moved (zero for BEGIN/CMT/ABORT/END).
	Op spec.Op
	// Stamp is the commit serial number (CMT events only).
	Stamp uint64
	// UncommittedPull marks PULL events whose operation belonged to a
	// then-uncommitted transaction (the opacity-breaking observations).
	UncommittedPull bool
}

// EventSink observes every rule transition of a machine, in dispatch
// order. Implementations must be cheap and must not call back into the
// machine; they run inside the rule, after the mutation commits to
// (T, G). A machine with no sink and no LogHook pays one branch per
// rule and allocates nothing — the non-observed hot path is free.
type EventSink interface {
	Emit(SinkEvent)
}

// AddEventSink registers a sink. Sinks fire in registration order,
// always after the LogHook (the write-ahead-log subscriber) — a single
// dispatch point per rule, so the WAL and any metrics layer can never
// disagree on rule entry ordering. Clone does not carry sinks: an
// exploration copy must not re-emit.
func (m *Machine) AddEventSink(s EventSink) {
	if s != nil {
		m.sinks = append(m.sinks, s)
	}
}

// Sinks returns the registered sinks in firing order.
func (m *Machine) Sinks() []EventSink {
	return append([]EventSink(nil), m.sinks...)
}

// SetSite labels this machine's sink events (e.g. the substrate name a
// shadow machine certifies). Empty by default.
func (m *Machine) SetSite(site string) { m.site = site }

// Site returns the machine's sink-event label.
func (m *Machine) Site() string { return m.site }

// dispatch delivers one successful rule transition to the attached
// LogHook (always first: durability precedes derived telemetry) and
// then to every registered EventSink, in registration order, under one
// monotonic sequence number. Rules call it after the mutation commits
// to (T, G) and before the self-check; whatever serializes the machine
// serializes the dispatch, so every subscriber sees the same total
// order — the serialization-witness property of the WAL is preserved
// and shared by the telemetry stream.
func (m *Machine) dispatch(e Event) {
	if m.hook == nil && len(m.sinks) == 0 {
		return // non-observed fast path: one branch, zero allocation
	}
	m.sinkSeq++
	if m.hook != nil {
		switch e.Rule {
		case RPush:
			m.hook.LogPush(e.Thread, e.TxName, e.Op)
		case RUnpush:
			m.hook.LogUnpush(e.Thread, e.Op)
		case RCmt:
			m.hook.LogCommit(e.Thread, e.TxName, e.Stamp)
		case RAbort:
			m.hook.LogAbort(e.Thread, e.TxName)
		}
	}
	if len(m.sinks) == 0 {
		return
	}
	se := SinkEvent{
		Seq:             m.sinkSeq,
		Site:            m.site,
		Rule:            e.Rule,
		Tx:              e.Thread,
		TxName:          e.TxName,
		Op:              e.Op,
		Stamp:           e.Stamp,
		UncommittedPull: e.UncommittedPull,
	}
	for _, s := range m.sinks {
		s.Emit(se)
	}
}
