package core_test

import (
	"testing"

	"pushpull/internal/core"
	"pushpull/internal/spec"
)

// tapSink records every delivered event, optionally interleaved with a
// shared ordering journal so tests can assert cross-subscriber firing
// order.
type tapSink struct {
	name    string
	events  []core.SinkEvent
	journal *[]string
}

func (s *tapSink) Emit(e core.SinkEvent) {
	s.events = append(s.events, e)
	if s.journal != nil {
		*s.journal = append(*s.journal, s.name+":"+e.Rule.String())
	}
}

// journalHook implements core.LogHook against the same shared journal.
type journalHook struct {
	journal *[]string
}

func (h *journalHook) LogPush(tx uint64, name string, op spec.Op) {
	*h.journal = append(*h.journal, "wal:PUSH")
}
func (h *journalHook) LogUnpush(tx uint64, op spec.Op) {
	*h.journal = append(*h.journal, "wal:UNPUSH")
}
func (h *journalHook) LogCommit(tx uint64, name string, stamp uint64) {
	*h.journal = append(*h.journal, "wal:CMT")
}
func (h *journalHook) LogAbort(tx uint64, name string) {
	*h.journal = append(*h.journal, "wal:ABORT")
}

func TestSinkSeesEveryRuleTransition(t *testing.T) {
	m := testMachine(t)
	sink := &tapSink{}
	m.SetSite("core-test")
	m.AddEventSink(sink)

	th := m.Spawn("t1")
	begin(t, m, th, `tx a { ht.put(1, 7); v := ht.get(1); }`)
	appOne(t, m, th)
	appOne(t, m, th)
	pushAll(t, m, th)
	if _, err := m.Commit(th); err != nil {
		t.Fatal(err)
	}

	want := []core.Rule{core.RBegin, core.RApp, core.RApp, core.RPush, core.RPush, core.RCmt}
	if len(sink.events) != len(want) {
		t.Fatalf("sink saw %d events, want %d: %v", len(sink.events), len(want), sink.events)
	}
	for i, e := range sink.events {
		if e.Rule != want[i] {
			t.Fatalf("event %d rule = %v, want %v", i, e.Rule, want[i])
		}
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d, want %d (monotonic from 1)", i, e.Seq, i+1)
		}
		if e.Site != "core-test" {
			t.Fatalf("event %d site = %q", i, e.Site)
		}
		if e.TxName != "a" {
			t.Fatalf("event %d txname = %q", i, e.TxName)
		}
	}
	if sink.events[5].Stamp == 0 {
		t.Fatal("CMT event carries no commit stamp")
	}
	if sink.events[3].Op.Obj != "ht" {
		t.Fatalf("PUSH event op = %v", sink.events[3].Op)
	}
}

func TestSinkAbortMark(t *testing.T) {
	m := testMachine(t)
	sink := &tapSink{}
	m.AddEventSink(sink)

	th := m.Spawn("t1")
	begin(t, m, th, `tx a { ctr.inc(); }`)
	appOne(t, m, th)
	pushAll(t, m, th)
	if err := m.Abort(th); err != nil {
		t.Fatal(err)
	}

	want := []core.Rule{core.RBegin, core.RApp, core.RPush, core.RUnpush, core.RUnapp, core.RAbort}
	var got []core.Rule
	for _, e := range sink.events {
		got = append(got, e.Rule)
	}
	if len(got) != len(want) {
		t.Fatalf("sink rules = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sink rules = %v, want %v", got, want)
		}
	}
	// The recorded event trace keeps the historical END mark for aborts.
	events := m.Events()
	if last := events[len(events)-1].Rule; last != core.REnd {
		t.Fatalf("recorded trace ends with %v, want END", last)
	}
}

// TestSinkFiringOrder is the double-instrumentation regression test:
// the LogHook (WAL subscriber) must observe every G-mutating rule
// before any registered sink does, from one dispatch point, so the WAL
// and the metrics layer can never disagree on rule entry ordering.
func TestSinkFiringOrder(t *testing.T) {
	m := testMachine(t)
	var journal []string
	m.SetLogHook(&journalHook{journal: &journal})
	m.AddEventSink(&tapSink{name: "m1", journal: &journal})
	m.AddEventSink(&tapSink{name: "m2", journal: &journal})

	th := m.Spawn("t1")
	begin(t, m, th, `tx a { ctr.inc(); }`)
	appOne(t, m, th)
	pushAll(t, m, th)
	if _, err := m.Commit(th); err != nil {
		t.Fatal(err)
	}

	want := []string{
		"m1:BEGIN", "m2:BEGIN",
		"m1:APP", "m2:APP",
		"wal:PUSH", "m1:PUSH", "m2:PUSH",
		"wal:CMT", "m1:CMT", "m2:CMT",
	}
	if len(journal) != len(want) {
		t.Fatalf("journal = %v, want %v", journal, want)
	}
	for i := range want {
		if journal[i] != want[i] {
			t.Fatalf("journal[%d] = %q, want %q (full: %v)", i, journal[i], want[i], journal)
		}
	}
}

func TestSinkNotCloned(t *testing.T) {
	m := testMachine(t)
	sink := &tapSink{}
	m.AddEventSink(sink)
	m.SetSite("orig")

	c := m.Clone()
	if n := len(c.Sinks()); n != 0 {
		t.Fatalf("clone carried %d sinks; exploration copies must not re-emit", n)
	}
	if c.Site() != "orig" {
		t.Fatalf("clone site = %q, want %q", c.Site(), "orig")
	}

	th := c.Spawn("t1")
	begin(t, c, th, `tx a { ctr.inc(); }`)
	appOne(t, c, th)
	if len(sink.events) != 0 {
		t.Fatalf("clone re-emitted %d events into the original sink", len(sink.events))
	}
}
