// Package core implements the Push/Pull machine of Section 4: threads
// carrying code, a local stack and a local operation log, reducing
// against a shared global log via the seven forward/backward rules
//
//	APP, UNAPP, PUSH, UNPUSH, PULL, UNPULL, CMT
//
// (Figure 5) together with the structural reductions of the input
// language (Figure 6, folded into lang.StepSet/lang.Fin exactly as the
// atomic machine's BSSTEP folds them).
//
// Every rule checks its side conditions and reports violations as
// *CriterionError values naming the criterion as the paper does
// ("PUSH criterion (ii)"), so algorithms built on the machine are
// serializable by Theorem 5.17 the moment their steps are accepted.
package core

import (
	"fmt"

	"pushpull/internal/lang"
	"pushpull/internal/spec"
)

// Flag is the local-log status flag l of Section 4:
//
//	l ::= npshd c | pshd c | pld
//
// The npshd and pshd forms save the code (and, here, the stack) active
// when the entry was created, so the transaction can rewind.
type Flag int

// Local-log flags.
const (
	// Npshd marks an operation applied locally but not yet shared.
	Npshd Flag = iota
	// Pshd marks an operation present in the global log.
	Pshd
	// Pld marks an operation pulled in from another transaction.
	Pld
)

func (f Flag) String() string {
	switch f {
	case Npshd:
		return "npshd"
	case Pshd:
		return "pshd"
	case Pld:
		return "pld"
	default:
		return "badflag"
	}
}

// LEntry is one local log record (op × l).
type LEntry struct {
	Op   spec.Op
	Flag Flag
	// SavedCode and SavedStack record the thread configuration at APP
	// time for npshd/pshd entries (the paper's "npshd c"), enabling
	// UNAPP and the otx/rewind construction of Section 5. Nil for pld.
	SavedCode  lang.Code
	SavedStack lang.Stack
}

// GEntry is one global log record (op × g), g ::= gUCmt | gCmt.
type GEntry struct {
	Op        spec.Op
	Committed bool
	// Stamp is the commit serial number assigned by CMT (0 while
	// uncommitted): the machine's witness for the commit order used by
	// the serializability checker.
	Stamp uint64
}

// Thread is one machine thread {c, σ, L}.
type Thread struct {
	ID    uint64
	Name  string
	Code  lang.Code
	Stack lang.Stack
	Local []LEntry

	origCode  lang.Code
	origStack lang.Stack
	active    bool
	seq       int
}

// Active reports whether the thread is inside a transaction.
func (t *Thread) Active() bool { return t.active }

// CommitRecord summarizes one committed transaction.
type CommitRecord struct {
	Tx    uint64
	Name  string
	Stamp uint64
	// Ops are the transaction's own operations in local-log order.
	Ops spec.Log
	// Pulled are the operations the transaction pulled in, in local-log
	// order (all necessarily committed by CMT criterion (iii)).
	Pulled spec.Log
	// Body and InitStack reproduce the transaction as begun, so checkers
	// can re-run it atomically (the rewind/otx construction).
	Body      lang.Code
	InitStack lang.Stack
}

// Options configure a Machine.
type Options struct {
	// Mode selects how mover side-conditions are decided; see
	// spec.MoverMode. The default (zero value) is the strict static
	// discipline.
	Mode spec.MoverMode
	// EnforceGray enables the criteria the paper prints in gray
	// ("not strictly necessary"): PUSH criterion (i) on UNPUSH and PULL
	// criterion (iii). Defaults to on via NewMachine.
	EnforceGray bool
	// RecordEvents keeps a rule-application trace (the decompositions of
	// Figures 2 and 7).
	RecordEvents bool
	// OpaqueFragment restricts the machine to the opaque sub-model of
	// Section 6.1: PULL of an uncommitted operation is rejected unless
	// every method still syntactically reachable in the pulling
	// transaction's code is statically known to commute with it ("T will
	// never execute a method m that does not commute with m′").
	// Executions of the restricted machine are opaque by construction.
	OpaqueFragment bool
	// SelfCheck re-verifies the machine invariants (Lemma 5.7 I_LG and
	// the allowed-projection invariants) after every successful rule.
	// Meant for tests; quadratic.
	SelfCheck bool
}

// Machine is the Push/Pull machine state (T, G).
type Machine struct {
	Reg  *spec.Registry
	opts Options

	threads map[uint64]*Thread
	order   []uint64
	global  []GEntry

	// base is the denotation of a compacted committed prefix of the
	// shared log (see Compact); logs replay from it instead of the
	// initial state. baseSet distinguishes "never compacted".
	base    spec.Composite
	baseSet bool

	nextThread  uint64
	commitStamp uint64
	commits     []CommitRecord
	events      []Event

	// hook, when non-nil, observes global-log transitions (see LogHook).
	// Deliberately not cloned: an exploration copy must not re-log.
	hook LogHook
	// sinks observe every rule transition (see EventSink); like the
	// hook, they are not cloned. sinkSeq is the dispatch sequence
	// number; site labels this machine's sink events.
	sinks   []EventSink
	sinkSeq uint64
	site    string
}

// NewMachine returns an empty machine over the given specification
// registry with gray criteria enforced.
func NewMachine(reg *spec.Registry, opts Options) *Machine {
	return &Machine{Reg: reg, opts: opts, threads: make(map[uint64]*Thread)}
}

// DefaultOptions enables gray criteria and event recording in hybrid
// mover mode — the configuration the examples and strategies use.
func DefaultOptions() Options {
	return Options{Mode: spec.MoverHybrid, EnforceGray: true, RecordEvents: true}
}

// Options returns the machine's configuration.
func (m *Machine) Options() Options { return m.opts }

// Spawn creates a new idle thread.
func (m *Machine) Spawn(name string) *Thread {
	m.nextThread++
	t := &Thread{ID: m.nextThread, Name: name, Code: lang.Skip{}, Stack: lang.Stack{}}
	m.threads[t.ID] = t
	m.order = append(m.order, t.ID)
	return t
}

// Thread returns the thread with the given id.
func (m *Machine) Thread(id uint64) (*Thread, bool) {
	t, ok := m.threads[id]
	return t, ok
}

// Threads returns all threads in spawn order.
func (m *Machine) Threads() []*Thread {
	out := make([]*Thread, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.threads[id])
	}
	return out
}

// Begin enters a transaction: the thread must be idle. The stack seeds
// σ (nil for empty).
func (m *Machine) Begin(t *Thread, txn lang.Txn, stack lang.Stack) error {
	if t.active {
		return fmt.Errorf("core: thread %d already in a transaction", t.ID)
	}
	if stack == nil {
		stack = lang.Stack{}
	}
	t.Code = txn.Body
	t.Stack = stack.Clone()
	t.Local = nil
	t.origCode = txn.Body
	t.origStack = stack.Clone()
	t.active = true
	t.seq = 0
	if txn.Name != "" {
		t.Name = txn.Name
	}
	m.record(Event{Rule: RBegin, Thread: t.ID, TxName: t.Name})
	return nil
}

// LocalLog projects the thread's local log L to its operation list (the
// transaction's view of the world, replayed from the initial state).
func (m *Machine) LocalLog(t *Thread) spec.Log {
	out := make(spec.Log, len(t.Local))
	for i, e := range t.Local {
		out[i] = e.Op
	}
	return out
}

// LocalOwn projects ⌊L⌋pshd·npshd: the transaction's own operations in
// local order.
func (m *Machine) LocalOwn(t *Thread) spec.Log {
	var out spec.Log
	for _, e := range t.Local {
		if e.Flag != Pld {
			out = append(out, e.Op)
		}
	}
	return out
}

// LocalByFlag projects ⌊L⌋f.
func (m *Machine) LocalByFlag(t *Thread, f Flag) spec.Log {
	var out spec.Log
	for _, e := range t.Local {
		if e.Flag == f {
			out = append(out, e.Op)
		}
	}
	return out
}

// GlobalLog projects the entire global log G to its operation list.
func (m *Machine) GlobalLog() spec.Log {
	out := make(spec.Log, len(m.global))
	for i, e := range m.global {
		out[i] = e.Op
	}
	return out
}

// GlobalCommitted projects ⌊G⌋gCmt.
func (m *Machine) GlobalCommitted() spec.Log {
	var out spec.Log
	for _, e := range m.global {
		if e.Committed {
			out = append(out, e.Op)
		}
	}
	return out
}

// GlobalUncommitted projects ⌊G⌋gUCmt.
func (m *Machine) GlobalUncommitted() spec.Log {
	var out spec.Log
	for _, e := range m.global {
		if !e.Committed {
			out = append(out, e.Op)
		}
	}
	return out
}

// GlobalEntries returns a copy of the raw global log.
func (m *Machine) GlobalEntries() []GEntry {
	return append([]GEntry(nil), m.global...)
}

// GlobalLen is the raw global log length without copying — for hot
// callers that only need the window size (compaction triggers).
func (m *Machine) GlobalLen() int { return len(m.global) }

// Commits returns the commit records in commit order.
func (m *Machine) Commits() []CommitRecord {
	return append([]CommitRecord(nil), m.commits...)
}

// Retire removes an idle thread from the machine (rule MS_END: a
// thread that has reached skip leaves the thread list). Retiring an
// active thread is an error.
func (m *Machine) Retire(t *Thread) error {
	if t.active {
		return fmt.Errorf("core: cannot retire thread %d inside a transaction", t.ID)
	}
	if _, ok := m.threads[t.ID]; !ok {
		return fmt.Errorf("core: thread %d not in machine", t.ID)
	}
	delete(m.threads, t.ID)
	for i, id := range m.order {
		if id == t.ID {
			m.order = append(m.order[:i:i], m.order[i+1:]...)
			break
		}
	}
	m.record(Event{Rule: REnd, Thread: t.ID, TxName: t.Name})
	return nil
}

// StartState is the state logs replay from: the initial state, or the
// baseline of the last compaction.
func (m *Machine) StartState() spec.Composite {
	if m.baseSet {
		return m.base
	}
	return m.Reg.InitState()
}

// Compact folds the shared log into the machine baseline: every entry
// must be committed and no thread may be inside a transaction. The
// global log, commit records and events are cleared; the denoted state
// becomes the new start state. Long-running certifications (shadow
// machines for real STM runs) compact periodically so replay costs stay
// proportional to the live window, not the whole history.
//
// Callers wanting end-to-end serializability evidence should check the
// window (serial.CheckCommitOrder) before compacting — Compact itself
// refuses only structurally unsafe compaction.
func (m *Machine) Compact() error {
	for _, t := range m.threads {
		if t.active {
			return fmt.Errorf("core: cannot compact with thread %d in a transaction", t.ID)
		}
	}
	for _, e := range m.global {
		if !e.Committed {
			return fmt.Errorf("core: cannot compact with uncommitted %v in G", e.Op)
		}
	}
	state, ok := m.Reg.DenoteFrom(m.StartState(), m.GlobalLog())
	if !ok {
		return fmt.Errorf("core: global log not allowed; refusing to compact")
	}
	m.base = state
	m.baseSet = true
	m.global = nil
	m.commits = nil
	m.events = nil
	return nil
}

// globalIndexOf locates an operation in G by id.
func (m *Machine) globalIndexOf(id uint64) (int, bool) {
	for i, e := range m.global {
		if e.Op.ID == id {
			return i, true
		}
	}
	return 0, false
}

// Clone deep-copies the machine (sharing the immutable registry and
// code values), for exhaustive interleaving exploration.
func (m *Machine) Clone() *Machine {
	c := &Machine{
		Reg:         m.Reg,
		opts:        m.opts,
		threads:     make(map[uint64]*Thread, len(m.threads)),
		order:       append([]uint64(nil), m.order...),
		global:      append([]GEntry(nil), m.global...),
		base:        m.base,
		baseSet:     m.baseSet,
		nextThread:  m.nextThread,
		commitStamp: m.commitStamp,
		site:        m.site,
	}
	c.commits = append(c.commits, m.commits...)
	if m.opts.RecordEvents {
		c.events = append(c.events, m.events...)
	}
	for id, t := range m.threads {
		ct := &Thread{
			ID:       t.ID,
			Name:     t.Name,
			Code:     t.Code,
			Stack:    t.Stack.Clone(),
			Local:    append([]LEntry(nil), t.Local...),
			origCode: t.origCode,
			active:   t.active,
			seq:      t.seq,
		}
		if t.origStack != nil {
			ct.origStack = t.origStack.Clone()
		}
		c.threads[id] = ct
	}
	return c
}
