package core_test

import (
	"testing"

	"pushpull/internal/core"
	"pushpull/internal/serial"
)

func opaqueMachine(t *testing.T) *core.Machine {
	t.Helper()
	opts := core.DefaultOptions()
	opts.OpaqueFragment = true
	return core.NewMachine(reg(), opts)
}

// TestOpaqueFragmentForbidsConflictingUncommittedPull: the restricted
// machine rejects pulling an uncommitted effect when the puller may
// still execute a non-commuting method.
func TestOpaqueFragmentForbidsConflictingUncommittedPull(t *testing.T) {
	m := opaqueMachine(t)
	t1, t2 := m.Spawn("t1"), m.Spawn("t2")
	begin(t, m, t1, `tx a { set.add(1); }`)
	appOne(t, m, t1)
	pushAll(t, m, t1)

	// t2 may still run set.contains(1), which does not commute with the
	// uncommitted add(1): the pull must be rejected.
	begin(t, m, t2, `tx b { v := set.contains(1); }`)
	if err := m.Pull(t2, 0); !core.IsCriterion(err, core.RPull, "(opaque)") {
		t.Fatalf("err = %v, want PULL criterion (opaque)", err)
	}
}

// TestOpaqueFragmentAllowsCommutingUncommittedPull: the §6.1 refinement
// admits uncommitted pulls when every reachable method commutes.
func TestOpaqueFragmentAllowsCommutingUncommittedPull(t *testing.T) {
	m := opaqueMachine(t)
	t1, t2 := m.Spawn("t1"), m.Spawn("t2")
	begin(t, m, t1, `tx a { set.add(1); }`)
	appOne(t, m, t1)
	pushAll(t, m, t1)

	// t2 only ever adds key 2 — statically commutes with add(1).
	begin(t, m, t2, `tx b { set.add(2); }`)
	if err := m.Pull(t2, 0); err != nil {
		t.Fatalf("commuting-only pull rejected: %v", err)
	}
	appOne(t, m, t2)
	pushAll(t, m, t2)
	// Commit order: t1 first (CMT criterion (iii) on t2's pull).
	if _, err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(t2); err != nil {
		t.Fatal(err)
	}
	if rep := serial.CheckCommitOrder(m); !rep.Serializable {
		t.Fatal(rep)
	}
	// The run does pull uncommitted state (strictly non-opaque trace)...
	if len(serial.CheckOpacity(m.Events())) != 1 {
		t.Fatal("expected the uncommitted pull in the trace")
	}
	// ...but satisfies the relaxed criterion — the machine restriction
	// guaranteed it ahead of time.
	if v := serial.CheckOpacityRelaxed(m.Reg, m.Options().Mode, m.Events()); len(v) != 0 {
		t.Fatalf("machine-admitted pull failed the relaxed check: %v", v)
	}
}

// TestOpaqueFragmentRejectsNonLiteralReachable: reachable calls with
// computed arguments cannot be proven commutative statically.
func TestOpaqueFragmentRejectsNonLiteralReachable(t *testing.T) {
	m := opaqueMachine(t)
	t1, t2 := m.Spawn("t1"), m.Spawn("t2")
	begin(t, m, t1, `tx a { set.add(1); }`)
	appOne(t, m, t1)
	pushAll(t, m, t1)

	begin(t, m, t2, `tx b { v := ctr.get(); set.add(v + 2); }`)
	if err := m.Pull(t2, 0); !core.IsCriterion(err, core.RPull, "(opaque)") {
		t.Fatalf("err = %v, want PULL criterion (opaque)", err)
	}
	// Committed pulls are always fine in the opaque fragment.
	if _, err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := m.Pull(t2, 0); err != nil {
		t.Fatalf("committed pull must be admissible: %v", err)
	}
}

func TestRewindTo(t *testing.T) {
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { set.add(1); set.add(2); set.add(3); }`)
	appOne(t, m, th)
	if err := m.Push(th, 0); err != nil {
		t.Fatal(err)
	}
	appOne(t, m, th)
	appOne(t, m, th)
	if err := m.Push(th, 2); err != nil {
		t.Fatal(err)
	}
	// Rewind to keep only the first (pushed) op: UNPUSH+UNAPP add(3),
	// UNAPP add(2).
	if err := m.RewindTo(th, 1); err != nil {
		t.Fatal(err)
	}
	if len(th.Local) != 1 || th.Local[0].Flag != core.Pshd {
		t.Fatalf("local after rewind: %+v", th.Local)
	}
	if g := m.GlobalLog(); len(g) != 1 {
		t.Fatalf("global after rewind: %v", g)
	}
	// Re-execute and commit: add(2), add(3) again.
	appOne(t, m, th)
	appOne(t, m, th)
	pushAll(t, m, th)
	if _, err := m.Commit(th); err != nil {
		t.Fatal(err)
	}
	if rep := serial.CheckCommitOrder(m); !rep.Serializable {
		t.Fatal(rep)
	}
}

// TestRewindToZeroIsFullLocalRewind rewinds everything including pulls.
func TestRewindToZeroIsFullLocalRewind(t *testing.T) {
	m := testMachine(t)
	seeder := m.Spawn("seed")
	begin(t, m, seeder, `tx s { ctr.inc(); }`)
	appOne(t, m, seeder)
	pushAll(t, m, seeder)
	if _, err := m.Commit(seeder); err != nil {
		t.Fatal(err)
	}
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { v := ctr.get(); }`)
	if err := m.Pull(th, 0); err != nil {
		t.Fatal(err)
	}
	appOne(t, m, th)
	if err := m.RewindTo(th, 0); err != nil {
		t.Fatal(err)
	}
	if len(th.Local) != 0 {
		t.Fatalf("local = %+v", th.Local)
	}
	// The thread can still finish.
	if err := m.Pull(th, 0); err != nil {
		t.Fatal(err)
	}
	appOne(t, m, th)
	pushAll(t, m, th)
	if _, err := m.Commit(th); err != nil {
		t.Fatal(err)
	}
}
