package core_test

import (
	"testing"

	"pushpull/internal/core"
	"pushpull/internal/serial"
)

// TestQueueInterleavingRejected: FIFO queues barely commute, so the
// machine must refuse to interleave two uncommitted enqueues — exactly
// the unserializable schedules the criteria exist to exclude.
func TestQueueInterleavingRejected(t *testing.T) {
	m := testMachine(t)
	t1, t2 := m.Spawn("t1"), m.Spawn("t2")
	begin(t, m, t1, `tx a { q.enq(1); }`)
	begin(t, m, t2, `tx b { q.enq(2); }`)
	appOne(t, m, t1)
	appOne(t, m, t2)
	if err := m.Push(t1, 0); err != nil {
		t.Fatal(err)
	}
	// t2's enq(2) cannot be published while enq(1) is uncommitted:
	// enq(1) cannot move right of enq(2) (the orders are observable).
	if err := m.Push(t2, 0); !core.IsCriterion(err, core.RPush, "(ii)") {
		t.Fatalf("interleaved enqueue: err = %v, want PUSH criterion (ii)", err)
	}
	// Serial execution goes through.
	if _, err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := m.Push(t2, 0); err != nil {
		t.Fatalf("post-commit push: %v", err)
	}
	if _, err := m.Commit(t2); err != nil {
		t.Fatal(err)
	}
	if rep := serial.CheckCommitOrder(m); !rep.Serializable {
		t.Fatal(rep)
	}
}

// TestQueueDequeueOrdering: a dequeuer serializes against the enqueuer
// through the criteria and observes FIFO order.
func TestQueueDequeueOrdering(t *testing.T) {
	m := testMachine(t)
	t1, t2 := m.Spawn("t1"), m.Spawn("t2")
	begin(t, m, t1, `tx p { q.enq(1); q.enq(2); }`)
	appOne(t, m, t1)
	appOne(t, m, t1)
	pushAll(t, m, t1)
	if _, err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	begin(t, m, t2, `tx c { v := q.deq(); w := q.deq(); }`)
	if err := m.Pull(t2, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Pull(t2, 1); err != nil {
		t.Fatal(err)
	}
	op1 := appOne(t, m, t2)
	op2 := appOne(t, m, t2)
	if op1.Ret != 1 || op2.Ret != 2 {
		t.Fatalf("dequeues = %d,%d, want FIFO 1,2", op1.Ret, op2.Ret)
	}
	pushAll(t, m, t2)
	if _, err := m.Commit(t2); err != nil {
		t.Fatal(err)
	}
}

// TestCriterionErrorAnatomy: errors carry the rule and criterion
// verbatim, so algorithm authors can match on the specific obligation
// they failed (the paper's named criteria).
func TestCriterionErrorAnatomy(t *testing.T) {
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { ctr.inc(); }`)
	_, err := m.Commit(th) // fin fails: the inc has not run
	ce, ok := err.(*core.CriterionError)
	if !ok {
		t.Fatalf("err = %T", err)
	}
	if ce.Rule != core.RCmt || ce.Criterion != "(i)" {
		t.Fatalf("got %v %v", ce.Rule, ce.Criterion)
	}
	if got := ce.Error(); got == "" || got[:3] != "CMT" {
		t.Fatalf("rendered: %q", got)
	}
	if !core.IsCriterion(err, core.RCmt, "(i)") || core.IsCriterion(err, core.RPush, "(i)") {
		t.Fatal("IsCriterion misbehaves")
	}
}

// TestRetireAndCompactLifecycle: MS_END + log compaction across many
// sequential transactions keep the machine small while preserving
// semantics across the baseline.
func TestRetireAndCompactLifecycle(t *testing.T) {
	m := testMachine(t)
	for i := 0; i < 30; i++ {
		th := m.Spawn("w")
		begin(t, m, th, `tx w { ctr.inc(); }`)
		appOne(t, m, th)
		pushAll(t, m, th)
		if _, err := m.Commit(th); err != nil {
			t.Fatal(err)
		}
		if err := m.Retire(th); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if err := m.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(m.Threads()) != 0 {
		t.Fatalf("threads remain: %d", len(m.Threads()))
	}
	// The counter's value survives compaction: a fresh reader sees 30.
	th := m.Spawn("r")
	begin(t, m, th, `tx r { v := ctr.get(); }`)
	local := m.LocalLog(th)
	for gi, e := range m.GlobalEntries() {
		if e.Committed && !local.Contains(e.Op) {
			if err := m.Pull(th, gi); err != nil {
				t.Fatal(err)
			}
		}
	}
	op := appOne(t, m, th)
	if op.Ret != 30 {
		t.Fatalf("counter after compactions = %d, want 30", op.Ret)
	}
	pushAll(t, m, th)
	if _, err := m.Commit(th); err != nil {
		t.Fatal(err)
	}
}

// TestCompactRefusals: compaction demands a quiescent, fully committed
// log.
func TestCompactRefusals(t *testing.T) {
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { set.add(1); }`)
	if err := m.Compact(); err == nil {
		t.Fatal("compact with an active transaction must fail")
	}
	appOne(t, m, th)
	pushAll(t, m, th)
	if _, err := m.Commit(th); err != nil {
		t.Fatal(err)
	}
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	if len(m.GlobalLog()) != 0 {
		t.Fatal("compact must clear the log")
	}
}

// TestRetireActiveRefused: MS_END applies only to finished threads.
func TestRetireActiveRefused(t *testing.T) {
	m := testMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { set.add(1); }`)
	if err := m.Retire(th); err == nil {
		t.Fatal("retiring an active thread must fail")
	}
}
