package core

import (
	"fmt"

	"pushpull/internal/lang"
	"pushpull/internal/spec"
)

// This file implements the seven Figure 5 reductions. Each function
// validates every side condition before mutating anything, so a
// criterion failure leaves (T, G) unchanged — machine steps are atomic
// accept-or-reject, which lets drivers treat failures as conflicts.

// Steps enumerates the APP choices available to t: the step(c) set of
// the thread's current code under its current stack.
func (m *Machine) Steps(t *Thread) []lang.Step {
	if !t.active {
		return nil
	}
	return lang.StepSet(t.Code, t.Stack)
}

// App performs the APP rule for the chosen step:
//
//	criterion (i):   (m1, c2) ∈ step(c1)           — by construction;
//	criterion (ii):  L allows ⟨m1, σ1, σ2, id⟩     — the local view
//	                 (replayed from the initial state) must admit the
//	                 method, and σ2 is resolved from that view;
//	criterion (iii): fresh(id)                      — spec.FreshID.
//
// The new entry is flagged npshd and saves the pre-code and pre-stack
// so UNAPP can rewind.
func (m *Machine) App(t *Thread, step lang.Step) (spec.Op, error) {
	if !t.active {
		return spec.Op{}, fmt.Errorf("core: APP on idle thread %d", t.ID)
	}
	view := m.LocalLog(t)
	ret, ok := m.Reg.EvalFrom(m.StartState(), view, step.Call.Obj, step.Call.Method, step.Args)
	if !ok {
		return spec.Op{}, criterion(RApp, "(ii)",
			"local log does not allow %s.%s(%v)", step.Call.Obj, step.Call.Method, step.Args)
	}
	op := spec.Op{
		ID:     spec.FreshID(),
		Tx:     t.ID,
		Seq:    t.seq,
		Obj:    step.Call.Obj,
		Method: step.Call.Method,
		Args:   append([]int64(nil), step.Args...),
		Ret:    ret,
	}
	entry := LEntry{Op: op, Flag: Npshd, SavedCode: t.Code, SavedStack: t.Stack.Clone()}
	t.Local = append(t.Local, entry)
	t.seq++
	t.Code = step.Cont
	if step.Call.Dst != "" {
		t.Stack = t.Stack.Clone()
		t.Stack[step.Call.Dst] = ret
	}
	m.record(Event{Rule: RApp, Thread: t.ID, TxName: t.Name, Op: op})
	m.selfCheck()
	return op, nil
}

// Unapp performs UNAPP: the last local entry must be npshd; the saved
// code and stack are restored and the entry dropped.
func (m *Machine) Unapp(t *Thread) error {
	if !t.active {
		return fmt.Errorf("core: UNAPP on idle thread %d", t.ID)
	}
	if len(t.Local) == 0 {
		return criterion(RUnapp, "(i)", "local log is empty")
	}
	last := t.Local[len(t.Local)-1]
	if last.Flag != Npshd {
		return criterion(RUnapp, "(i)", "last local entry is %v, want npshd", last.Flag)
	}
	t.Code = last.SavedCode
	t.Stack = last.SavedStack.Clone()
	t.Local = t.Local[:len(t.Local)-1]
	t.seq--
	m.record(Event{Rule: RUnapp, Thread: t.ID, TxName: t.Name, Op: last.Op})
	m.selfCheck()
	return nil
}

// Push performs PUSH on the local entry at index i:
//
//	criterion (i):   op ⋖ every *earlier* unpushed operation of the
//	                 local log (publishing op as if it were the next
//	                 thing after everything published so far; in-order
//	                 pushes satisfy this trivially);
//	criterion (ii):  every uncommitted operation of other transactions
//	                 in G can move to the right of op (so a commit now
//	                 would serialize before all concurrent uncommitted
//	                 transactions);
//	criterion (iii): the global log allows op.
//
// On success the entry's flag flips npshd→pshd and op is appended to G.
func (m *Machine) Push(t *Thread, i int) error {
	if !t.active {
		return fmt.Errorf("core: PUSH on idle thread %d", t.ID)
	}
	if i < 0 || i >= len(t.Local) {
		return fmt.Errorf("core: PUSH index %d out of range", i)
	}
	e := t.Local[i]
	if e.Flag != Npshd {
		return criterion(RPush, "(i)", "entry %v is %v, want npshd", e.Op, e.Flag)
	}
	op := e.Op
	glog := m.GlobalLog()

	// Criterion (i): op left-of earlier npshd siblings.
	for j := 0; j < i; j++ {
		sib := t.Local[j]
		if sib.Flag != Npshd {
			continue
		}
		if !spec.LeftMoverFrom(m.Reg, m.opts.Mode, m.StartState(), glog, op, sib.Op) {
			return criterion(RPush, "(i)",
				"%v cannot move left of earlier unpushed %v", op, sib.Op)
		}
	}

	// Criterion (ii): uncommitted foreign ops move right of op.
	for k, ge := range m.global {
		if ge.Committed || ge.Op.Tx == t.ID {
			continue
		}
		if !spec.LeftMoverFrom(m.Reg, m.opts.Mode, m.StartState(), glog[:k], ge.Op, op) {
			return criterion(RPush, "(ii)",
				"uncommitted %v (tx %d) cannot move right of %v", ge.Op, ge.Op.Tx, op)
		}
	}

	// Criterion (iii): G allows op.
	if !m.Reg.AllowsFrom(m.StartState(), glog, op) {
		return criterion(RPush, "(iii)", "global log does not allow %v", op)
	}

	t.Local[i].Flag = Pshd
	m.global = append(m.global, GEntry{Op: op})
	m.record(Event{Rule: RPush, Thread: t.ID, TxName: t.Name, Op: op})
	m.selfCheck()
	return nil
}

// Unpush performs UNPUSH on the local entry at index i: the entry's
// global record (necessarily uncommitted) is removed and the flag flips
// pshd→npshd.
//
//	criterion (i) (gray): the global suffix after op does not depend on
//	    it — implied by (ii) and enforced with it;
//	criterion (ii): everything pushed chronologically after op could
//	    still have been pushed had op not been: allowed(G ∖ op).
func (m *Machine) Unpush(t *Thread, i int) error {
	if !t.active {
		return fmt.Errorf("core: UNPUSH on idle thread %d", t.ID)
	}
	if i < 0 || i >= len(t.Local) {
		return fmt.Errorf("core: UNPUSH index %d out of range", i)
	}
	e := t.Local[i]
	if e.Flag != Pshd {
		return criterion(RUnpush, "(i)", "entry %v is %v, want pshd", e.Op, e.Flag)
	}
	k, ok := m.globalIndexOf(e.Op.ID)
	if !ok {
		return fmt.Errorf("core: UNPUSH: pshd op %v missing from G (invariant I_LG broken)", e.Op)
	}
	if m.global[k].Committed {
		return criterion(RUnpush, "(i)", "operation %v is already committed", e.Op)
	}
	rest := make(spec.Log, 0, len(m.global)-1)
	for j, ge := range m.global {
		if j != k {
			rest = append(rest, ge.Op)
		}
	}
	if !m.Reg.AllowedFrom(m.StartState(), rest) {
		return criterion(RUnpush, "(ii)",
			"later pushes depend on %v: G without it is not allowed", e.Op)
	}
	m.global = append(m.global[:k:k], m.global[k+1:]...)
	t.Local[i].Flag = Npshd
	m.record(Event{Rule: RUnpush, Thread: t.ID, TxName: t.Name, Op: e.Op})
	m.selfCheck()
	return nil
}

// Pull performs PULL of the global entry at index g:
//
//	criterion (i):   op ∉ L (not pulled or owned already);
//	criterion (ii):  L allows op — the local view admits the operation
//	                 with its recorded return value;
//	criterion (iii) (gray): everything the transaction has done locally
//	                 can move to the right of op, so the pulled effect
//	                 can be treated as having preceded the transaction.
func (m *Machine) Pull(t *Thread, g int) error {
	if !t.active {
		return fmt.Errorf("core: PULL on idle thread %d", t.ID)
	}
	if g < 0 || g >= len(m.global) {
		return fmt.Errorf("core: PULL index %d out of range", g)
	}
	op := m.global[g].Op
	view := m.LocalLog(t)
	if view.Contains(op) {
		return criterion(RPull, "(i)", "%v already in local log", op)
	}
	if m.opts.OpaqueFragment && !m.global[g].Committed {
		if err := m.opaquePullAdmissible(t, op); err != nil {
			return err
		}
	}
	if !m.Reg.AllowsFrom(m.StartState(), view, op) {
		return criterion(RPull, "(ii)", "local log does not allow %v", op)
	}
	if m.opts.EnforceGray {
		glog := m.GlobalLog()
		for _, e := range t.Local {
			if e.Flag == Pld {
				continue
			}
			if !spec.LeftMoverFrom(m.Reg, m.opts.Mode, m.StartState(), glog, e.Op, op) {
				return criterion(RPull, "(iii)",
					"own %v cannot move right of pulled %v", e.Op, op)
			}
		}
	}
	uncommitted := !m.global[g].Committed
	t.Local = append(t.Local, LEntry{Op: op, Flag: Pld})
	m.record(Event{Rule: RPull, Thread: t.ID, TxName: t.Name, Op: op, UncommittedPull: uncommitted})
	m.selfCheck()
	return nil
}

// Unpull performs UNPULL on the local entry at index i:
//
//	criterion (i): the local log without op is still allowed — the
//	transaction did nothing that depended on the pulled effect.
func (m *Machine) Unpull(t *Thread, i int) error {
	if !t.active {
		return fmt.Errorf("core: UNPULL on idle thread %d", t.ID)
	}
	if i < 0 || i >= len(t.Local) {
		return fmt.Errorf("core: UNPULL index %d out of range", i)
	}
	e := t.Local[i]
	if e.Flag != Pld {
		return criterion(RUnpull, "(i)", "entry %v is %v, want pld", e.Op, e.Flag)
	}
	rest := make(spec.Log, 0, len(t.Local)-1)
	for j, le := range t.Local {
		if j != i {
			rest = append(rest, le.Op)
		}
	}
	if !m.Reg.AllowedFrom(m.StartState(), rest) {
		return criterion(RUnpull, "(i)",
			"local log depends on pulled %v: removing it leaves a disallowed log", e.Op)
	}
	t.Local = append(t.Local[:i:i], t.Local[i+1:]...)
	m.record(Event{Rule: RUnpull, Thread: t.ID, TxName: t.Name, Op: e.Op})
	m.selfCheck()
	return nil
}

// Commit performs CMT:
//
//	criterion (i):   fin(c) — a path through the remaining code reaches
//	                 skip without further methods;
//	criterion (ii):  L ⊆ G — all own operations pushed (no npshd left);
//	criterion (iii): every pulled operation's transaction committed;
//	criterion (iv):  cmt(G1, L1, G2) — own global entries flip to gCmt.
//
// On success the thread leaves the transaction (MS_END).
func (m *Machine) Commit(t *Thread) (CommitRecord, error) {
	if !t.active {
		return CommitRecord{}, fmt.Errorf("core: CMT on idle thread %d", t.ID)
	}
	if !lang.Fin(t.Code, t.Stack) {
		return CommitRecord{}, criterion(RCmt, "(i)",
			"remaining code cannot reach skip without methods: %v", t.Code)
	}
	for _, e := range t.Local {
		switch e.Flag {
		case Npshd:
			return CommitRecord{}, criterion(RCmt, "(ii)",
				"operation %v not pushed", e.Op)
		case Pld:
			k, ok := m.globalIndexOf(e.Op.ID)
			if !ok {
				return CommitRecord{}, criterion(RCmt, "(iii)",
					"pulled %v no longer in global log (source unpushed)", e.Op)
			}
			if !m.global[k].Committed {
				return CommitRecord{}, criterion(RCmt, "(iii)",
					"pulled %v belongs to an uncommitted transaction", e.Op)
			}
		}
	}
	m.commitStamp++
	for k := range m.global {
		if m.global[k].Op.Tx == t.ID && !m.global[k].Committed {
			m.global[k].Committed = true
			m.global[k].Stamp = m.commitStamp
		}
	}
	rec := CommitRecord{
		Tx:        t.ID,
		Name:      t.Name,
		Stamp:     m.commitStamp,
		Ops:       m.LocalOwn(t),
		Pulled:    m.LocalByFlag(t, Pld),
		Body:      t.origCode,
		InitStack: t.origStack.Clone(),
	}
	m.commits = append(m.commits, rec)
	t.active = false
	t.Code = lang.Skip{}
	t.Local = nil
	m.record(Event{Rule: RCmt, Thread: t.ID, TxName: t.Name, Stamp: m.commitStamp})
	m.selfCheck()
	return rec, nil
}

// Abort rewinds the transaction completely — UNPULL for pld entries,
// UNPUSH;UNAPP for pshd entries, UNAPP for npshd entries, from the tail
// — restoring the original code and stack (the otx of Section 5). It
// fails without detangling completely if another transaction's pushes
// depend on ours (the dependent-transaction cascade of Section 6.5 must
// then abort the dependents first).
func (m *Machine) Abort(t *Thread) error {
	if !t.active {
		return fmt.Errorf("core: abort on idle thread %d", t.ID)
	}
	for len(t.Local) > 0 {
		last := t.Local[len(t.Local)-1]
		switch last.Flag {
		case Pld:
			if err := m.Unpull(t, len(t.Local)-1); err != nil {
				return err
			}
		case Pshd:
			if err := m.Unpush(t, len(t.Local)-1); err != nil {
				return err
			}
			if err := m.Unapp(t); err != nil {
				return err
			}
		case Npshd:
			if err := m.Unapp(t); err != nil {
				return err
			}
		}
	}
	t.active = false
	t.Code = t.origCode
	t.Stack = t.origStack.Clone()
	// The recorded event trace keeps its historical END mark for aborts
	// (trace consumers treat END as scan terminators); subscribers get
	// the distinguished ABORT transition — Retire's END is not an abort,
	// and span trackers pair every BEGIN with exactly one CMT or ABORT.
	if m.opts.RecordEvents {
		m.events = append(m.events, Event{Rule: REnd, Thread: t.ID, TxName: t.Name})
	}
	m.dispatch(Event{Rule: RAbort, Thread: t.ID, TxName: t.Name})
	return nil
}
