package core

import (
	"fmt"

	"pushpull/internal/spec"
)

// This file makes the Section 5 proof invariants executable. The paper
// establishes them once and for all; here they double as machine
// self-checks (Options.SelfCheck) and as test assertions.

// CheckILG verifies Lemma 5.7's I_LG for one thread: every pshd local
// entry appears in G and every npshd entry does not.
func (m *Machine) CheckILG(t *Thread) error {
	for _, e := range t.Local {
		_, inG := m.globalIndexOf(e.Op.ID)
		switch e.Flag {
		case Pshd:
			if !inG {
				return fmt.Errorf("I_LG: pshd %v missing from G", e.Op)
			}
		case Npshd:
			if inG {
				return fmt.Errorf("I_LG: npshd %v present in G", e.Op)
			}
		}
	}
	return nil
}

// CheckLocalAllowed verifies that the thread's local log is allowed —
// APP criterion (ii) and PULL criterion (ii) preserve this.
func (m *Machine) CheckLocalAllowed(t *Thread) error {
	if l := m.LocalLog(t); !m.Reg.AllowedFrom(m.StartState(), l) {
		return fmt.Errorf("local log of thread %d not allowed: %v", t.ID, l)
	}
	return nil
}

// CheckGlobalAllowed verifies that G itself is allowed — PUSH criterion
// (iii) and UNPUSH criterion (ii) preserve this.
func (m *Machine) CheckGlobalAllowed() error {
	if g := m.GlobalLog(); !m.Reg.AllowedFrom(m.StartState(), g) {
		return fmt.Errorf("global log not allowed: %v", g)
	}
	return nil
}

// CheckCommittedProjection verifies that ⌊G⌋gCmt is allowed: the
// committed projection must remain a meaningful history (the left-hand
// side of the simulation relation ⌊G⌋gCmt ≼ ℓ).
func (m *Machine) CheckCommittedProjection() error {
	if g := m.GlobalCommitted(); !m.Reg.AllowedFrom(m.StartState(), g) {
		return fmt.Errorf("committed projection not allowed: %v", g)
	}
	return nil
}

// CheckSlidePushed verifies Lemma 5.9's I_slidePushed for one thread:
//
//	G ≼ (G ∖ ⌊L⌋pshd) · (G ∩ ⌊L⌋pshd)
//
// i.e. the thread's pushed operations can slide, in order, to the end
// of the shared log.
func (m *Machine) CheckSlidePushed(t *Thread) error {
	g := m.GlobalLog()
	mine := m.LocalByFlag(t, Pshd)
	rhs := g.Without(mine).Concat(g.Intersect(mine))
	if !spec.PrecongruentFrom(m.Reg, m.StartState(), g, rhs) {
		return fmt.Errorf("I_slidePushed: G ⋠ (G∖L)·(G∩L) for thread %d", t.ID)
	}
	return nil
}

// CheckChronPush verifies Lemma 5.11's I_chronPush for one thread:
//
//	(G ∖ ⌊L⌋pshd) · (G ∩ ⌊L⌋pshd) ≼ (G ∖ ⌊L⌋pshd) · ⌊L⌋pshd
//
// a non-chronological push order is interchangeable with local order.
func (m *Machine) CheckChronPush(t *Thread) error {
	g := m.GlobalLog()
	mine := m.LocalByFlag(t, Pshd)
	lhs := g.Without(mine).Concat(g.Intersect(mine))
	rhs := g.Without(mine).Concat(mine)
	if !spec.PrecongruentFrom(m.Reg, m.StartState(), lhs, rhs) {
		return fmt.Errorf("I_chronPush: pushed-order log ⋠ local-order log for thread %d", t.ID)
	}
	return nil
}

// CheckLocalReorder verifies Lemma 5.13's I_localReorder for one
// thread:
//
//	(G ∖ ⌊L⌋pshd) · ⌊L⌋pshd · ⌊L⌋npshd ≼ (G ∖ ⌊L⌋pshd) · ⌊L⌋(pshd·npshd order)
//
// pushed-then-unpushed regrouping matches the local application order.
func (m *Machine) CheckLocalReorder(t *Thread) error {
	g := m.GlobalLog()
	pshd := m.LocalByFlag(t, Pshd)
	npshd := m.LocalByFlag(t, Npshd)
	lhs := g.Without(pshd).Concat(pshd).Concat(npshd)
	rhs := g.Without(pshd).Concat(m.LocalOwn(t))
	if !spec.PrecongruentFrom(m.Reg, m.StartState(), lhs, rhs) {
		return fmt.Errorf("I_localReorder: grouped log ⋠ local-order log for thread %d", t.ID)
	}
	return nil
}

// CheckCommitPreservation is the executable heart of Definition 5.2's
// cmtpres invariant, specialised to the zero-rewind instance the CMT
// simulation case uses: dropping all other transactions' uncommitted
// operations from G and committing t's pushed operations must yield a
// log from which t's remaining unpushed suffix is still precongruent
// with rewinding t entirely and running it atomically after G ∖ L.
//
// We check the log-shape consequence that drives the proof:
//
//	⌊G⌋gCmt-or-mine · ⌊L⌋npshd ≼ (⌊G⌋gCmt) · (own ops in local order)
func (m *Machine) CheckCommitPreservation(t *Thread) error {
	var gpost spec.Log
	for _, e := range m.global {
		if e.Committed || e.Op.Tx == t.ID {
			gpost = append(gpost, e.Op)
		}
	}
	lhs := gpost.Concat(m.LocalByFlag(t, Npshd))
	rhs := m.GlobalCommitted().Concat(m.LocalOwn(t))
	if !spec.PrecongruentFrom(m.Reg, m.StartState(), lhs, rhs) {
		return fmt.Errorf("cmtpres: hypothetical commit of thread %d not precongruent with atomic run", t.ID)
	}
	return nil
}

// Verify runs every invariant check over the whole machine.
func (m *Machine) Verify() error {
	if err := m.CheckGlobalAllowed(); err != nil {
		return err
	}
	if err := m.CheckCommittedProjection(); err != nil {
		return err
	}
	for _, t := range m.Threads() {
		if !t.active {
			continue
		}
		for _, check := range []func(*Thread) error{
			m.CheckILG,
			m.CheckLocalAllowed,
			m.CheckSlidePushed,
			m.CheckChronPush,
			m.CheckLocalReorder,
			m.CheckCommitPreservation,
		} {
			if err := check(t); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *Machine) selfCheck() {
	if !m.opts.SelfCheck {
		return
	}
	if err := m.Verify(); err != nil {
		panic("core: machine invariant broken: " + err.Error())
	}
}
