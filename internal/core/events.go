package core

import (
	"fmt"
	"strings"

	"pushpull/internal/spec"
)

// Event records one successful rule application: the raw material of
// the decomposition figures (Figures 2 and 7).
type Event struct {
	Rule   Rule
	Thread uint64
	TxName string
	Op     spec.Op // zero for BEGIN/CMT/END
	Stamp  uint64  // commit stamp for CMT events
	// UncommittedPull marks PULL events whose operation belonged to a
	// then-uncommitted transaction — the observations that break opacity
	// (Section 6.1) and create dependencies (Section 6.5).
	UncommittedPull bool
}

func (e Event) String() string {
	who := e.TxName
	if who == "" {
		who = fmt.Sprintf("t%d", e.Thread)
	}
	switch e.Rule {
	case RBegin, REnd:
		return fmt.Sprintf("%-8s %s", e.Rule, who)
	case RCmt:
		return fmt.Sprintf("%-8s %s (stamp %d)", e.Rule, who, e.Stamp)
	default:
		return fmt.Sprintf("%-8s %s  %s", e.Rule, who, e.Op)
	}
}

func (m *Machine) record(e Event) {
	if m.opts.RecordEvents {
		m.events = append(m.events, e)
	}
	m.dispatch(e)
}

// Events returns the recorded rule-application trace.
func (m *Machine) Events() []Event {
	return append([]Event(nil), m.events...)
}

// RuleSequence renders the trace compactly, one "RULE(op)" per line —
// the format of Figure 7.
func (m *Machine) RuleSequence() string {
	var b strings.Builder
	for _, e := range m.events {
		switch e.Rule {
		case RBegin:
			fmt.Fprintf(&b, "%s: begin\n", e.TxName)
		case REnd:
			fmt.Fprintf(&b, "%s: end\n", e.TxName)
		case RCmt:
			fmt.Fprintf(&b, "%s: CMT\n", e.TxName)
		default:
			fmt.Fprintf(&b, "%s: %s(%s.%s)\n", e.TxName, e.Rule, e.Op.Obj, e.Op.Method)
		}
	}
	return b.String()
}
