package core_test

import (
	"testing"

	"pushpull/internal/core"
	"pushpull/internal/spec"
)

// abortRewindCases drive the full APP→PUSH→PULL entanglement across
// object kinds, inject an abort, and check that (a) every rewind rule
// applied out of dependency order is refused by its criterion with the
// machine state unchanged, and (b) the in-order rewind
// (UNPULL/UNPUSH/UNAPP from the tail) recovers completely. The machine
// runs with SelfCheck, so the Section 4 invariants are re-verified
// after every intermediate rule application, refused or not.
var abortRewindCases = []struct {
	name     string
	src      string // source transaction: APPed and PUSHed
	srcOps   int
	dep      string // dependent transaction: PULLs src, then APPs
	depRet   int64  // dependent's first op return while entangled
	rerunRet int64  // dependent's return after src's abort (cascade path)
}{
	{"set", `tx a { set.add(1); }`, 1, `tx b { v := set.contains(1); }`, 1, 0},
	{"counter", `tx a { ctr.inc(); }`, 1, `tx b { v := ctr.get(); }`, 1, 0},
	{"register", `tx a { mem.write(3, 7); }`, 1, `tx b { v := mem.read(3); }`, 7, 0},
	{"map", `tx a { ht.put(2, 9); }`, 1, `tx b { v := ht.get(2); }`, 9, spec.Absent},
	{"multi-op", `tx a { set.add(1); set.add(2); }`, 2, `tx b { v := set.contains(2); }`, 1, 0},
}

// entangle drives src through APP→PUSH and dep through PULL→APP,
// returning after the dependent has observed src's uncommitted effect.
func entangle(t *testing.T, m *core.Machine, src, dep *core.Thread, c struct {
	name     string
	src      string
	srcOps   int
	dep      string
	depRet   int64
	rerunRet int64
}) {
	t.Helper()
	begin(t, m, src, c.src)
	for i := 0; i < c.srcOps; i++ {
		appOne(t, m, src)
	}
	pushAll(t, m, src)
	if err := m.Verify(); err != nil {
		t.Fatalf("after src push: %v", err)
	}
	begin(t, m, dep, c.dep)
	for g := 0; g < c.srcOps; g++ {
		if err := m.Pull(dep, g); err != nil {
			t.Fatalf("PULL %d: %v", g, err)
		}
	}
	if op := appOne(t, m, dep); op.Ret != c.depRet {
		t.Fatalf("entangled dep read = %d, want %d", op.Ret, c.depRet)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("after entangle: %v", err)
	}
}

// TestAbortRewindDependentFirst injects the abort on the dependent
// side: out-of-order rewind steps are refused by their criteria
// (leaving the state intact), the dependent's tail-first Abort
// succeeds, and the source then aborts cleanly.
func TestAbortRewindDependentFirst(t *testing.T) {
	for _, c := range abortRewindCases {
		t.Run(c.name, func(t *testing.T) {
			m := testMachine(t)
			src, dep := m.Spawn("src"), m.Spawn("dep")
			entangle(t, m, src, dep, c)
			gBefore, depBefore := len(m.GlobalLog()), len(dep.Local)

			// UNPULL of the pulled effect the dependent APP reads from:
			// criterion (i). (Earlier pulled siblings the APP does not
			// depend on are individually unpullable — only the dependency
			// is protected.)
			if err := m.Unpull(dep, c.srcOps-1); !core.IsCriterion(err, core.RUnpull, "(i)") {
				t.Fatalf("UNPULL entangled: err = %v, want UNPULL criterion (i)", err)
			}
			// UNAPP on the source whose tail entry is pushed: criterion (i).
			if err := m.Unapp(src); !core.IsCriterion(err, core.RUnapp, "(i)") {
				t.Fatalf("UNAPP pushed tail: err = %v, want UNAPP criterion (i)", err)
			}
			// The dependent cannot publish over an uncommitted source
			// (PUSH criterion (ii)) nor commit while its pulled effects
			// are uncommitted (CMT criterion (iii), the Section 6.5
			// commit-order stipulation).
			if err := m.Push(dep, c.srcOps); !core.IsCriterion(err, core.RPush, "(ii)") {
				t.Fatalf("dependent PUSH: err = %v, want PUSH criterion (ii)", err)
			}
			if _, err := m.Commit(dep); !core.IsCriterion(err, core.RCmt, "(iii)") {
				t.Fatalf("dependent CMT: err = %v, want CMT criterion (iii)", err)
			}
			// Refused rules are accept-or-reject: nothing moved.
			if len(m.GlobalLog()) != gBefore || len(dep.Local) != depBefore {
				t.Fatal("refused rewind steps must not mutate the machine")
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("after refused steps: %v", err)
			}

			// In dependency order the rewind goes through: dependent
			// first (UNAPP then UNPULL, tail-first inside Abort) ...
			if err := m.Abort(dep); err != nil {
				t.Fatalf("dependent abort: %v", err)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("after dependent abort: %v", err)
			}
			if len(m.GlobalLog()) != gBefore {
				t.Fatal("dependent abort must not disturb the source's pushes")
			}
			// ... then the source (UNPUSH;UNAPP per entry).
			if err := m.Abort(src); err != nil {
				t.Fatalf("source abort: %v", err)
			}
			if len(m.GlobalLog()) != 0 {
				t.Fatal("source abort must drain its pushes from G")
			}
			if src.Active() || dep.Active() {
				t.Fatal("both threads must be idle after rewind")
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("after full rewind: %v", err)
			}

			// Recovery: both transactions re-run from their original code
			// and commit.
			begin(t, m, src, c.src)
			for i := 0; i < c.srcOps; i++ {
				appOne(t, m, src)
			}
			pushAll(t, m, src)
			if _, err := m.Commit(src); err != nil {
				t.Fatalf("re-run src commit: %v", err)
			}
			begin(t, m, dep, c.dep)
			for g := 0; g < c.srcOps; g++ {
				if err := m.Pull(dep, g); err != nil {
					t.Fatal(err)
				}
			}
			appOne(t, m, dep)
			pushAll(t, m, dep)
			if _, err := m.Commit(dep); err != nil {
				t.Fatalf("re-run dep commit: %v", err)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("after recovery: %v", err)
			}
		})
	}
}

// TestAbortRewindCascade injects the abort on the SOURCE side first:
// the source detangles from G (its pushes have no pushed dependents),
// stranding the dependent's pulled entries; the dependent then cascades
// — UNAPP its dependent reads, UNPULL the dead effects, re-run against
// the post-abort world, and commit.
func TestAbortRewindCascade(t *testing.T) {
	for _, c := range abortRewindCases {
		t.Run(c.name, func(t *testing.T) {
			m := testMachine(t)
			src, dep := m.Spawn("src"), m.Spawn("dep")
			entangle(t, m, src, dep, c)

			if err := m.Abort(src); err != nil {
				t.Fatalf("source abort: %v", err)
			}
			if len(m.GlobalLog()) != 0 {
				t.Fatal("source abort must drain G")
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("after source abort: %v", err)
			}
			// The dependent is now a zombie: its pulled ops are gone from
			// G, so commit is refused even once its own ops are dealt
			// with; detangle is the only way forward. UNPULL is still
			// blocked while the dependent APP is on top.
			if err := m.Unpull(dep, c.srcOps-1); !core.IsCriterion(err, core.RUnpull, "(i)") {
				t.Fatalf("UNPULL under dependent APP: err = %v, want UNPULL criterion (i)", err)
			}
			if err := m.Unapp(dep); err != nil {
				t.Fatalf("cascade UNAPP: %v", err)
			}
			for g := c.srcOps - 1; g >= 0; g-- {
				if err := m.Unpull(dep, g); err != nil {
					t.Fatalf("cascade UNPULL %d: %v", g, err)
				}
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("after cascade detangle: %v", err)
			}
			// Re-run against the post-abort world: the effect is gone.
			if op := appOne(t, m, dep); op.Ret != c.rerunRet {
				t.Fatalf("re-run dep read = %d, want %d", op.Ret, c.rerunRet)
			}
			pushAll(t, m, dep)
			if _, err := m.Commit(dep); err != nil {
				t.Fatalf("dep commit after cascade: %v", err)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("after cascade recovery: %v", err)
			}
		})
	}
}
