package core

import "pushpull/internal/spec"

// LogHook observes the machine's global-log transitions — exactly the
// rules that touch G (PUSH, UNPUSH, CMT) plus the abort/rollback mark —
// at the moment each rule succeeds. It is the durability seam: a
// write-ahead log attached here records the source of truth the
// Push/Pull model already maintains, and nothing else (APP/UNAPP/PULL/
// UNPULL are thread-local and reconstructible).
//
// Hook calls happen inside the rule, after the mutation commits to
// (T, G), in rule-application order; whatever serializes the machine
// (the trace.Recorder mutex, the cooperative scheduler) serializes the
// hook too. Implementations must not call back into the machine.
type LogHook interface {
	// LogPush observes op entering G uncommitted (PUSH).
	LogPush(tx uint64, name string, op spec.Op)
	// LogUnpush observes op leaving G (UNPUSH).
	LogUnpush(tx uint64, op spec.Op)
	// LogCommit observes tx's entries flipping to gCmt with the given
	// commit stamp (CMT).
	LogCommit(tx uint64, name string, stamp uint64)
	// LogAbort observes a completed whole-transaction rewind (the
	// substrate-level abort mark; the per-entry UNPUSHes have already
	// been reported individually).
	LogAbort(tx uint64, name string)
}

// SetLogHook attaches (or, with nil, detaches) the global-log observer.
// Attach before driving the machine; Clone does not carry the hook.
//
// The hook is one subscriber of the machine's single per-rule dispatch
// point (see EventSink): it always fires first, before any registered
// sink, so the write-ahead log and derived telemetry observe rule
// transitions in one agreed total order.
func (m *Machine) SetLogHook(h LogHook) { m.hook = h }

// LogHook returns the attached observer, if any.
func (m *Machine) LogHook() LogHook { return m.hook }

// Durable is a commit-path durability barrier. Substrates call it
// after certification succeeds (the CMT record is in the log) and
// before reporting the commit to the caller, so an acknowledged commit
// is on stable storage under any sync policy stricter than "never".
// A crashed log acks without syncing — post-crash activity is
// non-durable by definition and recovery certifies the prefix.
type Durable interface {
	CommitBarrier() error
}

// NamedDurable is an optional extension of Durable: a barrier that may
// use the committing transaction's name to decide whether this commit
// needs an immediate force. The canonical implementor is the sharded
// engine's sequenced commit path, where a cross-shard branch's CMT is
// already covered by the coordinator's forced batch record (decision
// and roll-forward write-set durable before the branch is released),
// so the per-commit force would buy nothing. Implementations must
// treat an unrecognized name exactly like CommitBarrier — skipping is
// only sound for commits whose durability is carried elsewhere.
type NamedDurable interface {
	Durable
	CommitBarrierFor(name string) error
}

// Barrier runs d's commit barrier for the named transaction, routing
// through the name-aware variant when d implements it. Substrates call
// this instead of d.CommitBarrier() wherever the transaction's name is
// in scope; a nil d is a no-op.
func Barrier(d Durable, name string) error {
	if d == nil {
		return nil
	}
	if nd, ok := d.(NamedDurable); ok {
		return nd.CommitBarrierFor(name)
	}
	return d.CommitBarrier()
}
