package core_test

import (
	"fmt"
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/core"
	"pushpull/internal/lang"
	"pushpull/internal/sched"
	"pushpull/internal/serial"
	"pushpull/internal/spec"
	"pushpull/internal/strategy"
)

func bankMachine(t *testing.T) *core.Machine {
	t.Helper()
	r := spec.NewRegistry()
	r.Register("bank", adt.Bank{})
	opts := core.DefaultOptions()
	opts.SelfCheck = true
	return core.NewMachine(r, opts)
}

// TestBankPartialMethodRejectsAPP: the state-dependent withdraw is
// rejected by APP criterion (ii) when the local view cannot cover it —
// partiality of `allowed`, not a return-value mismatch.
func TestBankPartialMethodRejectsAPP(t *testing.T) {
	m := bankMachine(t)
	th := m.Spawn("t1")
	begin(t, m, th, `tx a { bank.withdraw(1, 10); }`)
	steps := m.Steps(th)
	if _, err := m.App(th, steps[0]); !core.IsCriterion(err, core.RApp, "(ii)") {
		t.Fatalf("overdraft APP: err = %v, want APP criterion (ii)", err)
	}
	// After funding (via a committed depositor and a PULL), it proceeds.
	if err := m.Abort(th); err != nil {
		t.Fatal(err)
	}
	funder := m.Spawn("funder")
	begin(t, m, funder, `tx f { bank.deposit(1, 50); }`)
	appOne(t, m, funder)
	pushAll(t, m, funder)
	if _, err := m.Commit(funder); err != nil {
		t.Fatal(err)
	}
	begin(t, m, th, `tx a { bank.withdraw(1, 10); }`)
	if err := m.Pull(th, 0); err != nil {
		t.Fatal(err)
	}
	appOne(t, m, th)
	pushAll(t, m, th)
	if _, err := m.Commit(th); err != nil {
		t.Fatal(err)
	}
	if rep := serial.CheckCommitOrder(m); !rep.Serializable {
		t.Fatal(rep)
	}
}

// TestBankLiptonPushAsymmetry: with an uncommitted withdraw pushed, a
// concurrent deposit to the same account CAN be pushed (withdraw ⋖
// deposit: the withdrawer still serializes first), while with an
// uncommitted deposit pushed, a concurrent withdraw that NEEDS that
// deposit cannot.
func TestBankLiptonPushAsymmetry(t *testing.T) {
	m := bankMachine(t)
	// Fund account 1 with 10 so a withdraw(1, 10) is locally viable.
	funder := m.Spawn("funder")
	begin(t, m, funder, `tx f { bank.deposit(1, 10); }`)
	appOne(t, m, funder)
	pushAll(t, m, funder)
	if _, err := m.Commit(funder); err != nil {
		t.Fatal(err)
	}

	// Withdrawer pushes first (uncommitted); depositor pushes second.
	w := m.Spawn("w")
	begin(t, m, w, `tx w { bank.withdraw(1, 10); }`)
	if err := m.Pull(w, 0); err != nil {
		t.Fatal(err)
	}
	appOne(t, m, w)
	pushAll(t, m, w)

	d := m.Spawn("d")
	begin(t, m, d, `tx d { bank.deposit(1, 5); }`)
	if err := m.Pull(d, 0); err != nil {
		t.Fatal(err)
	}
	appOne(t, m, d)
	// PUSH criterion (ii): the uncommitted withdraw must move right of
	// our deposit — withdraw ⋖ deposit holds, so this succeeds.
	if err := m.Push(d, 1); err != nil {
		t.Fatalf("deposit over uncommitted withdraw must push: %v", err)
	}
	if _, err := m.Commit(w); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(d); err != nil {
		t.Fatal(err)
	}

	// Now the reverse: an uncommitted deposit, and a withdraw that only
	// the deposit makes viable. The withdraw push must fail criterion
	// (ii)/(iii): it cannot serialize before its funding.
	d2 := m.Spawn("d2")
	begin(t, m, d2, `tx d2 { bank.deposit(2, 10); }`)
	appOne(t, m, d2)
	pushAll(t, m, d2)

	w2 := m.Spawn("w2")
	begin(t, m, w2, `tx w2 { bank.withdraw(2, 10); }`)
	// The withdrawer observes the uncommitted deposit (dependent).
	gIdx := -1
	for gi, e := range m.GlobalEntries() {
		if !e.Committed {
			gIdx = gi
		}
	}
	if err := m.Pull(w2, gIdx); err != nil {
		t.Fatal(err)
	}
	appOne(t, m, w2)
	err := m.Push(w2, 1)
	if err == nil {
		t.Fatal("withdraw depending on an uncommitted deposit must not publish")
	}
	if !core.IsCriterion(err, core.RPush, "(ii)") && !core.IsCriterion(err, core.RPush, "(iii)") {
		t.Fatalf("err = %v, want a PUSH criterion failure", err)
	}
	// After the deposit commits, the withdraw publishes and commits —
	// the §6.5 ordering falls out of the bank's algebra.
	if _, err := m.Commit(d2); err != nil {
		t.Fatal(err)
	}
	if err := m.Push(w2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(w2); err != nil {
		t.Fatal(err)
	}
	if rep := serial.CheckCommitOrder(m); !rep.Serializable {
		t.Fatal(rep)
	}
}

// TestBankDriversSerializable runs boosted and optimistic transfer
// workloads over the bank and certifies every seed.
func TestBankDriversSerializable(t *testing.T) {
	for _, strat := range []string{"optimistic", "boosting"} {
		for seed := int64(1); seed <= 15; seed++ {
			r := spec.NewRegistry()
			r.Register("bank", adt.Bank{})
			m := core.NewMachine(r, core.Options{Mode: spec.MoverHybrid, EnforceGray: true, RecordEvents: true})
			env := strategy.NewEnv()
			var ds []strategy.Driver
			for i := 0; i < 3; i++ {
				th := m.Spawn(fmt.Sprintf("b%d", i))
				txns := []lang.Txn{
					lang.MustParseTxn(fmt.Sprintf(`tx fund%d { bank.deposit(%d, 100); }`, i, i)),
					lang.MustParseTxn(fmt.Sprintf(
						`tx xfer%d { bank.withdraw(%d, 10); bank.deposit(%d, 10); }`, i, i, (i+1)%3)),
					lang.MustParseTxn(fmt.Sprintf(`tx audit%d { v := bank.balance(%d); }`, i, (i+2)%3)),
				}
				var d strategy.Driver
				if strat == "optimistic" {
					d = strategy.NewOptimistic(th.Name, th, txns, strategy.Config{}, env)
				} else {
					d = strategy.NewBoosting(th.Name, th, txns, strategy.Config{}, env)
				}
				ds = append(ds, d)
			}
			if err := sched.RunRandom(m, ds, seed, 100000); err != nil {
				t.Fatalf("%s seed %d: %v", strat, seed, err)
			}
			rep := serial.CheckCommitOrder(m)
			if !rep.Serializable {
				t.Fatalf("%s seed %d: %v", strat, seed, rep)
			}
			// Conservation: every committed xfer moved 10 between
			// accounts; audit the final committed state.
			state, ok := m.Reg.DenoteFrom(m.StartState(), m.GlobalCommitted())
			if !ok {
				t.Fatalf("%s seed %d: committed state undenotable", strat, seed)
			}
			_ = state
		}
	}
}
