package core_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pushpull/internal/core"
	"pushpull/internal/lang"
	"pushpull/internal/serial"
	"pushpull/internal/spec"
)

// TestMachineFuzz applies random rule sequences — legal and illegal —
// across several threads with the Section 5 invariants re-verified
// after every successful rule (SelfCheck) and commit-order
// serializability certified at the end. Criterion rejections are
// expected and ignored; any other error, invariant panic, or failed
// final certification is a model-soundness bug.
func TestMachineFuzz(t *testing.T) {
	srcs := []string{
		`tx f1 { set.add(1); set.add(2); }`,
		`tx f2 { v := set.contains(1); ctr.inc(); }`,
		`tx f3 { ht.put(1, 5); w := ht.get(1); }`,
		`tx f4 { mem.write(0, 3); v := mem.read(0); }`,
		`tx f5 { ctr.inc(); choice { set.add(3); } or { set.remove(3); } }`,
		`tx f6 { v := ctr.get(); if v < 2 { set.add(9); } }`,
	}
	var txns []lang.Txn
	for _, s := range srcs {
		txns = append(txns, lang.MustParseTxn(s))
	}

	for seed := int64(1); seed <= 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			opts := core.Options{
				Mode:         spec.MoverHybrid,
				EnforceGray:  true,
				RecordEvents: true,
				SelfCheck:    true,
			}
			m := core.NewMachine(reg(), opts)
			const nThreads = 3
			threads := make([]*core.Thread, nThreads)
			remaining := make([]int, nThreads) // txns left per thread
			for i := range threads {
				threads[i] = m.Spawn(fmt.Sprintf("f%d", i))
				remaining[i] = 2
			}

			tolerate := func(err error) {
				if err == nil {
					return
				}
				var ce *core.CriterionError
				if errors.As(err, &ce) {
					return // rejected step: expected under fuzzing
				}
				t.Fatalf("non-criterion failure: %v", err)
			}

			for step := 0; step < 400; step++ {
				th := threads[rng.Intn(nThreads)]
				if !th.Active() {
					idx := -1
					for i, cand := range threads {
						if cand == th {
							idx = i
						}
					}
					if remaining[idx] == 0 {
						continue
					}
					remaining[idx]--
					if err := m.Begin(th, txns[rng.Intn(len(txns))], nil); err != nil {
						t.Fatal(err)
					}
					continue
				}
				switch rng.Intn(10) {
				case 0, 1, 2: // APP a random step
					steps := m.Steps(th)
					if len(steps) == 0 {
						continue
					}
					_, err := m.App(th, steps[rng.Intn(len(steps))])
					tolerate(err)
				case 3, 4: // PUSH a random local entry
					if len(th.Local) == 0 {
						continue
					}
					tolerate(m.Push(th, rng.Intn(len(th.Local))))
				case 5: // PULL a random global entry
					g := m.GlobalEntries()
					if len(g) == 0 {
						continue
					}
					tolerate(m.Pull(th, rng.Intn(len(g))))
				case 6: // UNAPP
					tolerate(m.Unapp(th))
				case 7: // UNPUSH / UNPULL a random entry
					if len(th.Local) == 0 {
						continue
					}
					i := rng.Intn(len(th.Local))
					if th.Local[i].Flag == core.Pld {
						tolerate(m.Unpull(th, i))
					} else {
						tolerate(m.Unpush(th, i))
					}
				case 8: // CMT
					_, err := m.Commit(th)
					tolerate(err)
				case 9: // full abort
					tolerate(m.Abort(th))
				}
			}

			// Quiesce: abort everything still active. Aborts can be
			// temporarily blocked by dependents' pulled entries; a few
			// rounds always converge because UNPULL of dangling pulls
			// frees the sources.
			for round := 0; round < 8; round++ {
				busy := false
				for _, th := range threads {
					if th.Active() {
						busy = true
						tolerate(m.Abort(th))
					}
				}
				if !busy {
					break
				}
			}
			for _, th := range threads {
				if th.Active() {
					t.Fatalf("thread %s could not quiesce", th.Name)
				}
			}

			if err := m.Verify(); err != nil {
				t.Fatalf("terminal invariants: %v", err)
			}
			rep := serial.CheckCommitOrder(m)
			if !rep.Serializable {
				t.Fatalf("terminal state unserializable: %v\nevents:\n%s", rep, m.RuleSequence())
			}
			if _, ok, exhausted := serial.FindSerialWitness(m, 6); exhausted && !ok {
				t.Fatalf("no serial witness for fuzzed run")
			}
		})
	}
}
