package core_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pushpull/internal/chaos"
	"pushpull/internal/core"
	"pushpull/internal/lang"
	"pushpull/internal/sched"
	"pushpull/internal/serial"
	"pushpull/internal/spec"
	"pushpull/internal/strategy"
)

// TestMachineFuzz applies random rule sequences — legal and illegal —
// across several threads with the Section 5 invariants re-verified
// after every successful rule (SelfCheck) and commit-order
// serializability certified at the end. Criterion rejections are
// expected and ignored; any other error, invariant panic, or failed
// final certification is a model-soundness bug.
func TestMachineFuzz(t *testing.T) {
	srcs := []string{
		`tx f1 { set.add(1); set.add(2); }`,
		`tx f2 { v := set.contains(1); ctr.inc(); }`,
		`tx f3 { ht.put(1, 5); w := ht.get(1); }`,
		`tx f4 { mem.write(0, 3); v := mem.read(0); }`,
		`tx f5 { ctr.inc(); choice { set.add(3); } or { set.remove(3); } }`,
		`tx f6 { v := ctr.get(); if v < 2 { set.add(9); } }`,
	}
	var txns []lang.Txn
	for _, s := range srcs {
		txns = append(txns, lang.MustParseTxn(s))
	}

	for seed := int64(1); seed <= 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			opts := core.Options{
				Mode:         spec.MoverHybrid,
				EnforceGray:  true,
				RecordEvents: true,
				SelfCheck:    true,
			}
			m := core.NewMachine(reg(), opts)
			const nThreads = 3
			threads := make([]*core.Thread, nThreads)
			remaining := make([]int, nThreads) // txns left per thread
			for i := range threads {
				threads[i] = m.Spawn(fmt.Sprintf("f%d", i))
				remaining[i] = 2
			}

			tolerate := func(err error) {
				if err == nil {
					return
				}
				var ce *core.CriterionError
				if errors.As(err, &ce) {
					return // rejected step: expected under fuzzing
				}
				t.Fatalf("non-criterion failure: %v", err)
			}

			for step := 0; step < 400; step++ {
				th := threads[rng.Intn(nThreads)]
				if !th.Active() {
					idx := -1
					for i, cand := range threads {
						if cand == th {
							idx = i
						}
					}
					if remaining[idx] == 0 {
						continue
					}
					remaining[idx]--
					if err := m.Begin(th, txns[rng.Intn(len(txns))], nil); err != nil {
						t.Fatal(err)
					}
					continue
				}
				switch rng.Intn(10) {
				case 0, 1, 2: // APP a random step
					steps := m.Steps(th)
					if len(steps) == 0 {
						continue
					}
					_, err := m.App(th, steps[rng.Intn(len(steps))])
					tolerate(err)
				case 3, 4: // PUSH a random local entry
					if len(th.Local) == 0 {
						continue
					}
					tolerate(m.Push(th, rng.Intn(len(th.Local))))
				case 5: // PULL a random global entry
					g := m.GlobalEntries()
					if len(g) == 0 {
						continue
					}
					tolerate(m.Pull(th, rng.Intn(len(g))))
				case 6: // UNAPP
					tolerate(m.Unapp(th))
				case 7: // UNPUSH / UNPULL a random entry
					if len(th.Local) == 0 {
						continue
					}
					i := rng.Intn(len(th.Local))
					if th.Local[i].Flag == core.Pld {
						tolerate(m.Unpull(th, i))
					} else {
						tolerate(m.Unpush(th, i))
					}
				case 8: // CMT
					_, err := m.Commit(th)
					tolerate(err)
				case 9: // full abort
					tolerate(m.Abort(th))
				}
			}

			// Quiesce: abort everything still active. Aborts can be
			// temporarily blocked by dependents' pulled entries; a few
			// rounds always converge because UNPULL of dangling pulls
			// frees the sources.
			for round := 0; round < 8; round++ {
				busy := false
				for _, th := range threads {
					if th.Active() {
						busy = true
						tolerate(m.Abort(th))
					}
				}
				if !busy {
					break
				}
			}
			for _, th := range threads {
				if th.Active() {
					t.Fatalf("thread %s could not quiesce", th.Name)
				}
			}

			if err := m.Verify(); err != nil {
				t.Fatalf("terminal invariants: %v", err)
			}
			rep := serial.CheckCommitOrder(m)
			if !rep.Serializable {
				t.Fatalf("terminal state unserializable: %v\nevents:\n%s", rep, m.RuleSequence())
			}
			if _, ok, exhausted := serial.FindSerialWitness(m, 6); exhausted && !ok {
				t.Fatalf("no serial witness for fuzzed run")
			}
		})
	}
}

// FuzzChaosCommitOrder feeds arbitrary fault scripts (stall/kill
// decisions per scheduler turn) to sched.RunChaos over contending
// strategy drivers. Whatever the script does — stalls anywhere, kills
// mid-transaction, exhausted budgets — the surviving commits must stay
// commit-order serializable, the machine invariants must hold, and no
// abstract lock or token may leak.
func FuzzChaosCommitOrder(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{0x02, 0x00, 0x01})
	f.Add(int64(3), []byte{0x03, 0x03, 0x03, 0x03})
	f.Add(int64(7), []byte{0x01, 0x00, 0x02, 0x00, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		// Byte i scripts scheduler turn decisions: bit 0 stalls the
		// turn, bit 1 kills the scheduled driver. Beyond the script the
		// sites fall back to their (zero) rates — no further faults.
		stalls := make([]bool, len(script))
		kills := make([]bool, len(script))
		for i, b := range script {
			stalls[i] = b&1 != 0
			kills[i] = b&2 != 0
		}
		plan := chaos.NewPlan(seed).
			WithScript(chaos.SiteSchedStall, stalls).
			WithScript(chaos.SiteSchedKill, kills).
			WithBudget(chaos.SiteSchedKill, 2)

		m := core.NewMachine(reg(), core.Options{Mode: spec.MoverHybrid, SelfCheck: true})
		env := strategy.NewEnv()
		mk := []func(name string, th *core.Thread, txns []lang.Txn) strategy.Driver{
			func(n string, th *core.Thread, txns []lang.Txn) strategy.Driver {
				return strategy.NewBoosting(n, th, txns, strategy.Config{}, env)
			},
			func(n string, th *core.Thread, txns []lang.Txn) strategy.Driver {
				return strategy.NewOptimistic(n, th, txns, strategy.Config{}, env)
			},
			func(n string, th *core.Thread, txns []lang.Txn) strategy.Driver {
				return strategy.NewDependent(n, th, txns, strategy.Config{}, env)
			},
		}
		var drivers []strategy.Driver
		for i := 0; i < 3; i++ {
			th := m.Spawn(fmt.Sprintf("c%d", i))
			txns := []lang.Txn{
				lang.MustParseTxn(fmt.Sprintf(`tx a%d { set.add(%d); ctr.inc(); }`, i, i%2)),
				lang.MustParseTxn(fmt.Sprintf(`tx b%d { v := set.contains(%d); }`, i, (i+1)%2)),
			}
			drivers = append(drivers, mk[i%len(mk)](th.Name, th, txns))
		}

		_, err := sched.RunChaos(m, drivers, seed, 30_000, plan.Injector())
		if err != nil && !errors.Is(err, sched.ErrLivelock) && !errors.Is(err, sched.ErrDeadlock) {
			t.Fatalf("chaos run: %v", err)
		}
		// The certified part: no fault script may break these.
		if verr := m.Verify(); verr != nil {
			t.Fatalf("machine invariants: %v (run err: %v)", verr, err)
		}
		if rep := serial.CheckCommitOrder(m); !rep.Serializable {
			t.Fatalf("commit order violated: %s (run err: %v)", rep.Reason, err)
		}
		if lerr := env.LeakCheck(); lerr != nil {
			t.Fatalf("leak after chaos: %v (run err: %v)", lerr, err)
		}
	})
}
