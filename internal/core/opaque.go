package core

import (
	"pushpull/internal/lang"
	"pushpull/internal/spec"
)

// This file implements the Section 6.1 opacity refinement as a machine
// restriction: "An active transaction T may PULL an operation m′ that
// is due to an uncommitted transaction T′ provided that T will never
// execute a method m that does not commute with m′. This suggests an
// interesting way of ensuring opacity while PULLing uncommitted effects
// by examining (statically or dynamically) the set of all reachable
// operations that a transaction may perform."
//
// The check here is the static variant: every syntactically reachable
// call of the remaining code must instantiate (all-literal arguments)
// to an operation the static mover oracles certify as commuting both
// ways with the pulled operation. Unknown oracles, non-literal
// arguments, or refuted pairs all reject — conservative, as a static
// analysis must be.

// opaquePullAdmissible decides whether pulling the uncommitted op is
// admissible under the opacity refinement.
func (m *Machine) opaquePullAdmissible(t *Thread, op spec.Op) error {
	calls := reachableCalls(t.Code, nil)
	for _, call := range calls {
		args, ok := literalArgs(call)
		if !ok {
			return criterion(RPull, "(opaque)",
				"reachable call %s.%s has non-literal arguments; cannot prove commutation with uncommitted %v",
				call.Obj, call.Method, op)
		}
		candidate := spec.Op{Obj: call.Obj, Method: call.Method, Args: args}
		if h, known := spec.LeftMoverStatic(m.Reg, candidate, op); !known || !h {
			return criterion(RPull, "(opaque)",
				"reachable %s.%s(%v) not statically known to commute with uncommitted %v",
				call.Obj, call.Method, args, op)
		}
		if h, known := spec.LeftMoverStatic(m.Reg, op, candidate); !known || !h {
			return criterion(RPull, "(opaque)",
				"uncommitted %v not statically known to commute with reachable %s.%s(%v)",
				op, call.Obj, call.Method, args)
		}
	}
	return nil
}

// reachableCalls collects every Call syntactically reachable in c —
// an over-approximation of the methods the transaction may still
// execute (both branches of conditionals and choices, loop bodies).
func reachableCalls(c lang.Code, acc []lang.Call) []lang.Call {
	switch c := c.(type) {
	case lang.Skip:
		return acc
	case lang.Call:
		return append(acc, c)
	case lang.Seq:
		return reachableCalls(c.B, reachableCalls(c.A, acc))
	case lang.Choice:
		return reachableCalls(c.B, reachableCalls(c.A, acc))
	case lang.Star:
		return reachableCalls(c.Body, acc)
	case lang.If:
		return reachableCalls(c.Else, reachableCalls(c.Then, acc))
	default:
		return acc
	}
}

// literalArgs evaluates the call's arguments if they are all literals.
func literalArgs(c lang.Call) ([]int64, bool) {
	args := make([]int64, len(c.Args))
	for i, e := range c.Args {
		lit, ok := e.(lang.Lit)
		if !ok {
			return nil, false
		}
		args[i] = int64(lit)
	}
	return args, true
}

// RewindTo partially rewinds the transaction's own tail back to (and
// excluding) local index k: pulled entries are UNPULLed, pushed entries
// UNPUSHed then UNAPPed, unpushed entries UNAPPed — the checkpoint /
// partial-abort behaviour of nested transactions ([19], §6.2: "if an
// abort is detected, UNAPP only needs to be performed for some
// operations"). On a criterion failure the machine is left at the
// deepest rewind reached and the error returned.
func (m *Machine) RewindTo(t *Thread, k int) error {
	if k < 0 {
		k = 0
	}
	for len(t.Local) > k {
		last := t.Local[len(t.Local)-1]
		switch last.Flag {
		case Pld:
			if err := m.Unpull(t, len(t.Local)-1); err != nil {
				return err
			}
		case Pshd:
			if err := m.Unpush(t, len(t.Local)-1); err != nil {
				return err
			}
			if err := m.Unapp(t); err != nil {
				return err
			}
		case Npshd:
			if err := m.Unapp(t); err != nil {
				return err
			}
		}
	}
	return nil
}
