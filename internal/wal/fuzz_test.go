package wal

import "testing"

// FuzzWALDecode asserts the decoder is total: arbitrary byte streams
// never panic, always consume at most their length, and the consumed
// prefix re-decodes to exactly the same records with no truncation
// reason (i.e. DecodeAll's answer really is "valid prefix + point").
func FuzzWALDecode(f *testing.F) {
	var seedBody []byte
	for _, r := range sampleRecords() {
		seedBody = Encode(seedBody, r)
	}
	f.Add(seedBody)
	f.Add([]byte{})
	f.Add(SegmentHeader(0))
	f.Add(seedBody[:len(seedBody)-3])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, reason := DecodeAll(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if consumed < len(data) && reason == nil {
			t.Fatalf("left %d bytes behind with no truncation reason", len(data)-consumed)
		}
		if consumed == len(data) && reason != nil {
			t.Fatalf("consumed everything yet reported truncation: %v", reason)
		}
		again, c2, r2 := DecodeAll(data[:consumed])
		if r2 != nil {
			t.Fatalf("accepted prefix re-decodes with truncation: %v", r2)
		}
		if c2 != consumed || len(again) != len(recs) {
			t.Fatalf("prefix re-decode diverged: %d/%d bytes, %d/%d records",
				c2, consumed, len(again), len(recs))
		}
		for i := range recs {
			if again[i].String() != recs[i].String() {
				t.Fatalf("record %d differs on re-decode", i)
			}
		}
		// Re-encoding each decoded record must itself decode (round-trip
		// stability for whatever survives the checksum).
		var re []byte
		for _, r := range recs {
			re = Encode(re, r)
		}
		if _, _, err := DecodeAll(re); err != nil {
			t.Fatalf("re-encoded prefix does not decode: %v", err)
		}
	})
}
