package wal

import (
	"bytes"
	"errors"
	"testing"

	"pushpull/internal/chaos"
	"pushpull/internal/spec"
)

func pushRec(tx uint64, name string, id uint64, seq int, obj, method string, args []int64, ret int64) Record {
	return Record{Type: TPush, Tx: tx, Name: name,
		Op: spec.Op{ID: id, Tx: tx, Seq: seq, Obj: obj, Method: method, Args: args, Ret: ret}}
}

func sampleRecords() []Record {
	return []Record{
		pushRec(1, "t1", 10, 0, "mem", "write", []int64{3, 7}, 0),
		pushRec(1, "t1", 11, 1, "mem", "read", []int64{3}, 7),
		{Type: TCommit, Tx: 1, Name: "t1", Stamp: 1},
		pushRec(2, "t2", 12, 0, "ht", "put", []int64{5, -9}, spec.Absent),
		{Type: TUnpush, Tx: 2, OpID: 12},
		{Type: TAbort, Tx: 2, Name: "t2"},
		{Type: TSession, Tx: 3, Session: 42, SeqNo: 7, Name: "s42.7",
			Results: []SessResult{{Val: -5, Found: true}, {}}},
	}
}

func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Type != w.Type || g.Tx != w.Tx || g.Name != w.Name ||
			g.OpID != w.OpID || g.Stamp != w.Stamp || g.String() != w.String() {
			t.Fatalf("record %d: got %v, want %v", i, g, w)
		}
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	var body []byte
	want := sampleRecords()
	for _, r := range want {
		body = Encode(body, r)
	}
	got, consumed, reason := DecodeAll(body)
	if reason != nil {
		t.Fatalf("clean body truncated: %v", reason)
	}
	if consumed != len(body) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(body))
	}
	sameRecords(t, got, want)
}

func TestSessionRecordRoundtrip(t *testing.T) {
	want := Record{Type: TSession, Tx: 9, Session: 1 << 40, SeqNo: 3, Name: "s.3",
		Results: []SessResult{{Val: 11, Found: true}, {Val: -2}, {}}}
	got, consumed, reason := DecodeAll(Encode(nil, want))
	if reason != nil || len(got) != 1 {
		t.Fatalf("decode: %d records, reason %v", len(got), reason)
	}
	if consumed == 0 {
		t.Fatal("nothing consumed")
	}
	g := got[0]
	if g.Session != want.Session || g.SeqNo != want.SeqNo || g.Name != want.Name {
		t.Fatalf("got %v, want %v", g, want)
	}
	if len(g.Results) != len(want.Results) {
		t.Fatalf("got %d results, want %d", len(g.Results), len(want.Results))
	}
	for i, r := range want.Results {
		if g.Results[i] != r {
			t.Fatalf("result %d: got %+v, want %+v", i, g.Results[i], r)
		}
	}
}

func TestDecodeTruncatesTornTail(t *testing.T) {
	var body []byte
	for _, r := range sampleRecords() {
		body = Encode(body, r)
	}
	for cut := 1; cut < len(body); cut++ {
		recs, consumed, reason := DecodeAll(body[:len(body)-cut])
		if consumed > len(body)-cut {
			t.Fatalf("cut %d: consumed past the data", cut)
		}
		// The decoded prefix must itself decode cleanly (valid prefix +
		// truncation point, never garbage records).
		again, c2, r2 := DecodeAll(body[:consumed])
		if r2 != nil || c2 != consumed {
			t.Fatalf("cut %d: prefix not clean: %v", cut, r2)
		}
		sameRecords(t, again, recs)
		if consumed < len(body)-cut && reason == nil {
			t.Fatalf("cut %d: dangling bytes with no truncation reason", cut)
		}
	}
}

func TestDecodeTruncatesBitflip(t *testing.T) {
	var body []byte
	for _, r := range sampleRecords() {
		body = Encode(body, r)
	}
	clean, _, _ := DecodeAll(body)
	for bit := 0; bit < len(body)*8; bit += 7 {
		mut := append([]byte(nil), body...)
		mut[bit/8] ^= 1 << (bit % 8)
		recs, consumed, _ := DecodeAll(mut)
		if consumed > len(mut) {
			t.Fatalf("bit %d: consumed past the data", bit)
		}
		if len(recs) > len(clean) {
			t.Fatalf("bit %d: decoded %d records from corrupt input, clean has %d",
				bit, len(recs), len(clean))
		}
	}
}

func TestSegmentRotationAndSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncEveryRecord, SyncOnCommit, SyncGroup, SyncNever} {
		l := MustOpen(Options{SegmentBytes: 256, Policy: pol, GroupEvery: 4})
		var want []Record
		for i := 0; i < 40; i++ {
			r := pushRec(uint64(i), "t", uint64(100+i), 0, "mem", "write", []int64{int64(i), 1}, 0)
			want = append(want, r)
			if err := l.Append(r); err != nil {
				t.Fatalf("%v append: %v", pol, err)
			}
			c := Record{Type: TCommit, Tx: uint64(i), Name: "t", Stamp: uint64(i + 1)}
			want = append(want, c)
			if err := l.Append(c); err != nil {
				t.Fatalf("%v append: %v", pol, err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("%v close: %v", pol, err)
		}
		st := l.Stats()
		if st.Segments < 2 {
			t.Fatalf("%v: expected rotation, got %d segment(s)", pol, st.Segments)
		}
		var got []Record
		for _, seg := range l.Segments() {
			if _, err := CheckSegmentHeader(seg); err != nil {
				t.Fatalf("%v header: %v", pol, err)
			}
			recs, _, reason := DecodeAll(seg[SegHeaderLen:])
			if reason != nil {
				t.Fatalf("%v: closed log has a torn tail: %v", pol, reason)
			}
			got = append(got, recs...)
		}
		sameRecords(t, got, want)
	}
}

func TestFileBackedMatchesMemory(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	mem := l.Segments()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	disk, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(disk) != len(mem) {
		t.Fatalf("disk has %d segments, memory %d", len(disk), len(mem))
	}
	for i := range mem {
		if !bytes.Equal(disk[i], mem[i]) {
			t.Fatalf("segment %d: disk and memory images differ", i)
		}
	}
}

func TestCrashLosesUnsyncedSuffix(t *testing.T) {
	// Crash at the 6th append under SyncNever: nothing past the header
	// is durable, so the surviving image decodes to zero records.
	plan := chaos.NewPlan(42).WithCrash(6, chaos.CrashClean)
	l := MustOpen(Options{Policy: SyncNever, Chaos: plan.Injector()})
	var lastErr error
	for i := 0; i < 10; i++ {
		lastErr = l.Append(pushRec(1, "t", uint64(i+1), i, "mem", "read", []int64{0}, 0))
	}
	if !errors.Is(lastErr, ErrCrashed) {
		t.Fatalf("appends after the crash point: %v", lastErr)
	}
	if !l.Crashed() {
		t.Fatal("log not crashed")
	}
	segs := l.Segments()
	recs, _, reason := DecodeAll(segs[len(segs)-1][SegHeaderLen:])
	if len(recs) != 0 || reason != nil {
		t.Fatalf("SyncNever crash survived %d records (reason %v)", len(recs), reason)
	}

	// Same crash under per-record sync: the five completed appends are
	// durable; only the in-flight sixth is lost.
	l2 := MustOpen(Options{Policy: SyncEveryRecord, Chaos: plan.Injector()})
	for i := 0; i < 10; i++ {
		l2.Append(pushRec(1, "t", uint64(i+1), i, "mem", "read", []int64{0}, 0))
	}
	segs2 := l2.Segments()
	recs2, _, reason2 := DecodeAll(segs2[len(segs2)-1][SegHeaderLen:])
	if reason2 != nil {
		t.Fatalf("per-record sync crash image has torn tail: %v", reason2)
	}
	if len(recs2) != 5 {
		t.Fatalf("per-record sync crash survived %d records, want 5", len(recs2))
	}
}

func TestCrashTornAndBitflipStayDecodable(t *testing.T) {
	for _, mode := range []chaos.CrashMode{chaos.CrashTorn, chaos.CrashBitflip} {
		for seed := int64(1); seed <= 20; seed++ {
			plan := chaos.NewPlan(seed).WithCrash(7, mode)
			l := MustOpen(Options{Policy: SyncGroup, GroupEvery: 3, Chaos: plan.Injector()})
			for i := 0; i < 12; i++ {
				l.Append(pushRec(1, "t", uint64(i+1), i, "mem", "write", []int64{int64(i), 9}, 0))
			}
			for _, seg := range l.Segments() {
				if len(seg) < SegHeaderLen {
					continue // header itself torn: recovery drops the segment
				}
				if _, err := CheckSegmentHeader(seg); err != nil {
					continue
				}
				recs, consumed, _ := DecodeAll(seg[SegHeaderLen:])
				if consumed > len(seg)-SegHeaderLen {
					t.Fatalf("%v seed %d: consumed past image", mode, seed)
				}
				_ = recs
			}
		}
	}
}

func TestCommitBarrier(t *testing.T) {
	l := MustOpen(Options{Policy: SyncGroup, GroupEvery: 100})
	l.Append(sampleRecords()[0])
	if st := l.Stats(); st.Syncs != 1 { // header sync only
		t.Fatalf("unexpected syncs before barrier: %d", st.Syncs)
	}
	if err := l.CommitBarrier(); err != nil {
		t.Fatal(err)
	}
	seg := l.Segments()[0]
	recs, _, _ := DecodeAll(seg[SegHeaderLen:])
	if len(recs) != 1 {
		t.Fatalf("barrier did not flush: %d records durable", len(recs))
	}

	fast := MustOpen(Options{Policy: SyncNever})
	fast.Append(sampleRecords()[0])
	if err := fast.CommitBarrier(); err != nil {
		t.Fatal(err) // fast path: ack without sync
	}
}

func TestPlanStringPrintsCrash(t *testing.T) {
	p := chaos.NewPlan(9).WithRate(chaos.SiteTL2Commit, 0.1).WithCrash(123, chaos.CrashTorn)
	s := p.String()
	for _, want := range []string{"crash@123(torn)", "seed=9"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Fatalf("Plan.String %q missing %q", s, want)
		}
	}
}
