package wal

import (
	"errors"
	"sync"

	"pushpull/internal/spec"
)

// MachineHook adapts a Log to core.LogHook: attach it to a machine (or
// a trace.Recorder's shadow machine) and every global-log transition is
// written ahead. ErrCrashed is swallowed — after the simulated process
// death the run's remaining activity is not durable by definition, and
// recovery certifies the surviving prefix; any real I/O error is kept
// and reported by Err.
//
// Abort marks are only written for transactions that actually published
// something since they began: a rewind that never touched G has nothing
// to undo in the recovered log.
type MachineHook struct {
	log *Log

	mu     sync.Mutex
	pushed map[uint64]bool // tx published something since its last CMT/abort
	ioErr  error
}

// NewMachineHook wraps the log.
func NewMachineHook(l *Log) *MachineHook {
	return &MachineHook{log: l, pushed: make(map[uint64]bool)}
}

// Log returns the underlying write-ahead log.
func (h *MachineHook) Log() *Log { return h.log }

// Err returns the first real (non-crash) I/O error, if any.
func (h *MachineHook) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ioErr
}

func (h *MachineHook) append(r Record) {
	if err := h.log.Append(r); err != nil && !errors.Is(err, ErrCrashed) {
		h.mu.Lock()
		if h.ioErr == nil {
			h.ioErr = err
		}
		h.mu.Unlock()
	}
}

// LogPush implements core.LogHook.
func (h *MachineHook) LogPush(tx uint64, name string, op spec.Op) {
	h.mu.Lock()
	h.pushed[tx] = true
	h.mu.Unlock()
	h.append(Record{Type: TPush, Tx: tx, Name: name, Op: op})
}

// LogUnpush implements core.LogHook.
func (h *MachineHook) LogUnpush(tx uint64, op spec.Op) {
	h.append(Record{Type: TUnpush, Tx: tx, OpID: op.ID})
}

// LogCommit implements core.LogHook.
func (h *MachineHook) LogCommit(tx uint64, name string, stamp uint64) {
	h.mu.Lock()
	delete(h.pushed, tx)
	h.mu.Unlock()
	h.append(Record{Type: TCommit, Tx: tx, Name: name, Stamp: stamp})
}

// LogAbort implements core.LogHook.
func (h *MachineHook) LogAbort(tx uint64, name string) {
	h.mu.Lock()
	had := h.pushed[tx]
	delete(h.pushed, tx)
	h.mu.Unlock()
	if had {
		h.append(Record{Type: TAbort, Tx: tx, Name: name})
	}
}
