// Package wal is the crash-durability layer: a segmented, checksummed,
// append-only write-ahead log of the Push/Pull machine's global-log
// transitions. PUSH, UNPUSH and CMT are the only rules that touch the
// shared log G — the model's source of truth — so logging exactly those
// (plus the substrate abort mark) is enough for internal/recovery to
// rebuild a certified committed prefix after process death.
//
// Sync policies trade durability for throughput: per-record fsync, sync
// at commit records, group/batched sync, or an unsynced fast path for
// benchmarks. All of them recover to a serializable prefix; they differ
// only in how much acknowledged work a crash may shed.
//
// Crashes are simulated, deterministically: a chaos.Faults injector is
// consulted at chaos.SiteWALAppend on every append, and a firing kills
// the "process" at exactly that append. What survives is the synced
// prefix — optionally with a torn partial final record or a flipped bit
// (chaos.CrashMode), both derived from the plan seed via chaos.Hash01 —
// so every crash point in a sweep is replayable from a printed plan.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pushpull/internal/chaos"
)

// ErrCrashed reports an append or sync against a log whose simulated
// process has died. Callers in simulated-crash harnesses treat it as
// "the rest of this run is not durable", not as a failure.
var ErrCrashed = errors.New("wal: crashed (simulated process death)")

// SyncPolicy selects when appended records become durable.
type SyncPolicy int

// Sync policies.
const (
	// SyncEveryRecord syncs after every append — maximal durability,
	// one barrier per record.
	SyncEveryRecord SyncPolicy = iota
	// SyncOnCommit syncs when a TCommit record lands: the classic
	// commit-durable policy (group members ahead of the commit ride the
	// same barrier).
	SyncOnCommit
	// SyncGroup syncs every GroupEvery records — batched/group commit;
	// CommitBarrier flushes the open batch.
	SyncGroup
	// SyncNever is the unsynced fast path for benchmarks: only segment
	// rotation persists. A crash sheds the whole open segment.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryRecord:
		return "record"
	case SyncOnCommit:
		return "commit"
	case SyncGroup:
		return "group"
	case SyncNever:
		return "none"
	default:
		return "badpolicy"
	}
}

// ParseSyncPolicy maps the String form back to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "record":
		return SyncEveryRecord, nil
	case "commit":
		return SyncOnCommit, nil
	case "group":
		return SyncGroup, nil
	case "none":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q", s)
}

// Options configure a Log.
type Options struct {
	// Dir, when non-empty, backs the log with real segment files
	// (wal-NNNNN.seg); empty keeps the log in memory — the form the
	// crash sweeps use, since the simulated crash controls exactly
	// which bytes "reached disk" either way.
	Dir string
	// SegmentBytes rotates to a fresh segment past this size
	// (default 64 KiB). Rotation always syncs the finished segment.
	SegmentBytes int
	// Policy is the sync policy (default SyncEveryRecord).
	Policy SyncPolicy
	// GroupEvery is the SyncGroup batch size (default 32 records).
	GroupEvery int
	// Chaos, when non-nil, drives simulated crashes: consulted at
	// chaos.SiteWALAppend per append; plan CrashMode shapes the
	// surviving image.
	Chaos *chaos.Faults
	// SyncObserver, when non-nil, receives the duration of every
	// non-trivial sync (one call per durability barrier that had bytes
	// to flush) — the telemetry seam for WAL sync-latency histograms.
	// Called under the log mutex; must not call back into the log.
	SyncObserver func(time.Duration)
	// OnDurable, when non-nil, receives every newly durable byte range
	// — segment index, starting offset (header bytes included), and a
	// copy of the bytes — inside the durability barrier, before the
	// barrier returns to the committer. This is the replication ship
	// seam: anything a client sees acknowledged as durable has already
	// passed through OnDurable, so synchronous shipping at this seam
	// makes "no acknowledged commit is lost on failover" structural.
	// Simulated crashes never ship (the dead process's torn/flipped
	// tail stays local). Called under the log mutex; must not call back
	// into the log.
	OnDurable func(seg, off int, data []byte)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 10
	}
	if o.GroupEvery <= 0 {
		o.GroupEvery = 32
	}
	return o
}

// segment is one log file (or in-memory image). buf always holds every
// byte written, including the header; durable marks the synced prefix.
type segment struct {
	index   int
	buf     []byte
	durable int
	file    *os.File
}

// Stats snapshots log activity.
type Stats struct {
	Appends  uint64
	Syncs    uint64
	Segments int
	Bytes    int
	Crashed  bool
}

// Log is the write-ahead log.
type Log struct {
	mu      sync.Mutex
	opts    Options
	segs    []*segment
	appends uint64
	// durableRecs is the appended-record count at the last successful
	// sync — every one of those records is inside the durable prefix.
	// The replication lag gauge compares a replica's applied records
	// against this (not appends: lazily buffered records are not yet
	// promised to anyone).
	durableRecs uint64
	syncs       uint64
	pending     int // records since last sync
	crashed     bool
	ioErr       error
}

// Open creates a log. With Options.Dir set, fresh segment files are
// created there (the directory must exist and be empty of wal-*.seg
// files from this log's perspective — recovery reads them, the log does
// not append to old ones).
func Open(opts Options) (*Log, error) {
	l := &Log{opts: opts.withDefaults()}
	if err := l.rotate(); err != nil {
		return nil, err
	}
	return l, nil
}

// MustOpen is Open for memory-backed options that cannot fail.
func MustOpen(opts Options) *Log {
	l, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return l
}

// rotate syncs and closes the current segment and opens the next one.
// Called with mu held (or before the log is shared).
func (l *Log) rotate() error {
	if cur := l.cur(); cur != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if cur.file != nil {
			if err := cur.file.Close(); err != nil {
				return err
			}
			cur.file = nil
		}
	}
	seg := &segment{index: len(l.segs)}
	hdr := SegmentHeader(seg.index)
	seg.buf = append(seg.buf, hdr...)
	if l.opts.Dir != "" {
		f, err := os.OpenFile(l.segPath(seg.index), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return err
		}
		seg.file = f
	}
	l.segs = append(l.segs, seg)
	if err := l.syncLocked(); err != nil { // header is durable immediately
		return err
	}
	return nil
}

func (l *Log) segPath(index int) string {
	return filepath.Join(l.opts.Dir, fmt.Sprintf("wal-%05d.seg", index))
}

func (l *Log) cur() *segment {
	if len(l.segs) == 0 {
		return nil
	}
	return l.segs[len(l.segs)-1]
}

// Append frames, checksums and writes one record, then applies the sync
// policy. It returns ErrCrashed once the simulated process has died —
// nothing after that point is durable.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCrashed
	}
	if l.ioErr != nil {
		return l.ioErr
	}
	encoded := Encode(nil, r)
	l.appends++
	if f := l.opts.Chaos; f != nil && f.Fire(chaos.SiteWALAppend) {
		l.crashLocked(encoded)
		return ErrCrashed
	}
	cur := l.cur()
	cur.buf = append(cur.buf, encoded...)
	if cur.file != nil {
		if _, err := cur.file.Write(encoded); err != nil {
			l.ioErr = err
			return err
		}
	}
	l.pending++
	sync := false
	switch l.opts.Policy {
	case SyncEveryRecord:
		sync = true
	case SyncOnCommit:
		sync = r.Type == TCommit
	case SyncGroup:
		sync = l.pending >= l.opts.GroupEvery
	}
	if sync {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if len(cur.buf) >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			l.ioErr = err
			return err
		}
	}
	return nil
}

// syncLocked makes every written byte durable. Called with mu held.
func (l *Log) syncLocked() error {
	cur := l.cur()
	if cur == nil {
		return nil
	}
	if cur.durable == len(cur.buf) {
		return nil
	}
	var begin time.Time
	if l.opts.SyncObserver != nil {
		begin = time.Now()
	}
	if cur.file != nil {
		if err := cur.file.Sync(); err != nil {
			l.ioErr = err
			return err
		}
	}
	prev := cur.durable
	cur.durable = len(cur.buf)
	l.durableRecs = l.appends
	l.pending = 0
	l.syncs++
	if l.opts.OnDurable != nil {
		l.opts.OnDurable(cur.index, prev, append([]byte(nil), cur.buf[prev:]...))
	}
	if l.opts.SyncObserver != nil {
		l.opts.SyncObserver(time.Since(begin))
	}
	return nil
}

// DurableRecords reports how many appended records are inside the
// durable prefix (frozen at the crash point on a killed log).
func (l *Log) DurableRecords() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableRecs
}

// Sync forces durability of everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCrashed
	}
	return l.syncLocked()
}

// CommitBarrier is the substrate commit-path durability hook: it blocks
// until the records appended so far — the caller's CMT included — are
// durable per the policy. Under SyncNever it acknowledges immediately
// (the explicit fast path); under the batched policies it flushes the
// open batch, so concurrent committers share one barrier. A crashed
// log also acks immediately (see core.Durable).
func (l *Log) CommitBarrier() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		// The simulated process is dead; the experiment's remaining
		// activity is non-durable by definition. Acking (rather than
		// erroring) keeps substrates crash-agnostic — recovery certifies
		// the durable prefix, not the post-crash tail.
		return nil
	}
	if l.opts.Policy == SyncNever {
		return nil
	}
	return l.syncLocked()
}

// crashLocked applies the simulated process death at the append whose
// encoded bytes are in flight. The surviving image per CrashMode:
//
//	clean:   the synced prefix (record-aligned by construction);
//	torn:    the synced prefix plus an arbitrary prefix of the unsynced
//	         bytes including the in-flight record — a torn write;
//	bitflip: the synced prefix with one bit flipped — latent corruption.
//
// Torn length and flip offset derive from the plan seed via Hash01, so
// the whole post-crash image replays from the printed plan.
func (l *Log) crashLocked(inflight []byte) {
	l.crashed = true
	cur := l.cur()
	var plan chaos.Plan
	if l.opts.Chaos != nil {
		plan = l.opts.Chaos.Plan()
	}
	switch plan.CrashMode {
	case chaos.CrashTorn:
		lost := append(append([]byte(nil), cur.buf[cur.durable:]...), inflight...)
		keep := int(chaos.Hash01(plan.Seed, "wal/torn", l.appends) * float64(len(lost)+1))
		if keep > len(lost) {
			keep = len(lost)
		}
		cur.buf = append(cur.buf[:cur.durable], lost[:keep]...)
	case chaos.CrashBitflip:
		cur.buf = cur.buf[:cur.durable]
		// Flip within the current segment's durable image, past the
		// header when possible (a corrupted header drops the whole
		// segment, which recovery also survives, but the interesting
		// case is a mid-log flip).
		lo := SegHeaderLen
		if len(cur.buf) <= lo {
			lo = 0
		}
		if len(cur.buf) > lo {
			span := (len(cur.buf) - lo) * 8
			bit := int(chaos.Hash01(plan.Seed, "wal/bitflip", l.appends) * float64(span))
			if bit >= span {
				bit = span - 1
			}
			cur.buf[lo+bit/8] ^= 1 << (bit % 8)
		}
	default: // CrashClean
		cur.buf = cur.buf[:cur.durable]
	}
	cur.durable = len(cur.buf)
	if cur.file != nil {
		// Mirror the surviving image onto the real file: truncate the
		// lost suffix, rewrite the (possibly torn/flipped) tail.
		cur.file.Close()
		cur.file = nil
		_ = os.WriteFile(l.segPath(cur.index), cur.buf, 0o644)
	}
}

// Kill applies a simulated process death now, from outside the append
// path: the surviving image is the synced prefix (the clean-crash
// shape). The sharded engine uses it to propagate one shard's WAL death
// to every other log — a process dies once, and each log freezes at its
// own durable prefix (the cross-log skew recovery must resolve).
// Idempotent; a no-op on an already-crashed log.
func (l *Log) Kill() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return
	}
	l.crashed = true
	cur := l.cur()
	if cur == nil {
		return
	}
	cur.buf = cur.buf[:cur.durable]
	if cur.file != nil {
		cur.file.Close()
		cur.file = nil
		_ = os.WriteFile(l.segPath(cur.index), cur.buf, 0o644)
	}
}

// Crashed reports whether the simulated process has died.
func (l *Log) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashed
}

// Stats snapshots activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	bytes := 0
	for _, s := range l.segs {
		bytes += len(s.buf)
	}
	return Stats{Appends: l.appends, Syncs: l.syncs, Segments: len(l.segs),
		Bytes: bytes, Crashed: l.crashed}
}

// Segments returns the on-"disk" image: every segment's surviving bytes
// (header included), in index order. After a crash this is exactly what
// recovery gets to work with; before one it is the full written image.
func (l *Log) Segments() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, len(l.segs))
	for i, s := range l.segs {
		if l.crashed {
			out[i] = append([]byte(nil), s.buf[:s.durable]...)
		} else {
			out[i] = append([]byte(nil), s.buf...)
		}
	}
	return out
}

// DurableAt reads up to max durable bytes of segment seg starting at
// byte offset off (offsets count from the segment start, header
// included) — the pull side of the segment-tailing API. It returns:
//
//	data: the bytes (possibly empty when the tailer has caught up);
//	next: the segment is finished (a later segment exists) and the
//	      caller has now read all of it — advance to (seg+1, 0);
//	more: more durable bytes are immediately available (this segment
//	      past off+len(data), or a later segment) — poll again without
//	      waiting.
//
// A crashed log still serves its frozen durable image: that is exactly
// the prefix a straggling tailer is entitled to. Offsets beyond the
// durable watermark are a caller bug (a tailer ahead of its source) and
// return an error.
func (l *Log) DurableAt(seg, off, max int) (data []byte, next, more bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seg < 0 || seg >= len(l.segs) {
		return nil, false, false, fmt.Errorf("wal: no segment %d (have %d)", seg, len(l.segs))
	}
	s := l.segs[seg]
	if off < 0 || off > s.durable {
		return nil, false, false, fmt.Errorf("wal: offset %d beyond durable watermark %d of segment %d", off, s.durable, seg)
	}
	end := s.durable
	if max > 0 && off+max < end {
		end = off + max
	}
	data = append([]byte(nil), s.buf[off:end]...)
	finished := seg < len(l.segs)-1 // rotation syncs, so a finished segment is fully durable
	next = finished && end == s.durable
	more = end < s.durable || finished
	return data, next, more, nil
}

// Close syncs and closes the log (no-op after a crash: the dead process
// cannot flush).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	for _, s := range l.segs {
		if s.file != nil {
			if err := s.file.Close(); err != nil {
				return err
			}
			s.file = nil
		}
	}
	return nil
}

// ReadDir loads segment images from a directory of wal-*.seg files in
// index order — the file-backed path into recovery.
func ReadDir(dir string) ([][]byte, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	// Glob sorts lexically; zero-padded indices make that index order.
	out := make([][]byte, 0, len(matches))
	for _, m := range matches {
		b, err := os.ReadFile(m)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
