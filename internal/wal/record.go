package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"pushpull/internal/spec"
)

// The record format. Every record is framed
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//
// (little-endian), and every segment opens with an 8-byte header
//
//	"PPWAL" | u8 version | u16 segment index
//
// The payload's first byte is the record type; the rest is the type's
// fields in varint/length-prefixed encoding. The framing is what makes
// recovery total: any byte stream decodes to a longest valid record
// prefix plus a truncation point — a torn tail, a flipped bit, or
// garbage all land in "truncate here", never in a panic.

// Type discriminates WAL records. The three global-log transitions of
// the Push/Pull model (PUSH, UNPUSH, CMT) plus the whole-transaction
// abort mark substrates emit on rollback.
type Type uint8

// Record types.
const (
	// TPush logs an operation entering the global log uncommitted.
	TPush Type = 1
	// TUnpush logs an operation leaving the global log (rewind).
	TUnpush Type = 2
	// TCommit logs a transaction's entries flipping to committed, with
	// its commit stamp — the serialization witness recovery replays in.
	TCommit Type = 3
	// TAbort logs a completed whole-transaction rollback (its UNPUSHes
	// precede it individually).
	TAbort Type = 4
	// TSession logs a client session's request outcome for exactly-once
	// retries: session id, request sequence number, the results the
	// client was (about to be) told, and the name of the transaction that
	// carried the request. The record is appended before the commit point
	// of that transaction, so the durable-prefix property gives the
	// invariant recovery needs: commit durable implies session record
	// durable. A session record whose named transaction never committed
	// is ignored on recovery (the request never took effect, so a retry
	// may re-execute). A record with an empty Name is a checkpoint entry
	// re-logged at boot and is unconditionally valid.
	TSession Type = 5
)

func (t Type) String() string {
	switch t {
	case TPush:
		return "PUSH"
	case TUnpush:
		return "UNPUSH"
	case TCommit:
		return "CMT"
	case TAbort:
		return "ABORT"
	case TSession:
		return "SESSION"
	default:
		return fmt.Sprintf("type%d", uint8(t))
	}
}

// Record is one WAL entry.
type Record struct {
	Type Type
	// Tx identifies the transaction (the machine thread id) in every
	// record type.
	Tx uint64
	// Name is the transaction name (TPush and TCommit carry it so a
	// recovered prefix reports human-readable identities).
	Name string
	// Op is the pushed operation (TPush only).
	Op spec.Op
	// OpID identifies the retracted operation (TUnpush only).
	OpID uint64
	// Stamp is the commit serial number (TCommit only).
	Stamp uint64
	// Session and SeqNo identify the client request (TSession only).
	Session uint64
	SeqNo   uint64
	// Results are the per-op answers the request's commit produced
	// (TSession only) — replayed verbatim to a retry.
	Results []SessResult
}

// SessResult is one stored per-op answer inside a TSession record.
type SessResult struct {
	Val   int64
	Found bool
}

func (r Record) String() string {
	switch r.Type {
	case TPush:
		return fmt.Sprintf("PUSH tx=%d %q %v", r.Tx, r.Name, r.Op)
	case TUnpush:
		return fmt.Sprintf("UNPUSH tx=%d op#%d", r.Tx, r.OpID)
	case TCommit:
		return fmt.Sprintf("CMT tx=%d %q stamp=%d", r.Tx, r.Name, r.Stamp)
	case TAbort:
		return fmt.Sprintf("ABORT tx=%d %q", r.Tx, r.Name)
	case TSession:
		return fmt.Sprintf("SESSION sess=%d seq=%d %q (%d results)",
			r.Session, r.SeqNo, r.Name, len(r.Results))
	default:
		return fmt.Sprintf("%s tx=%d", r.Type, r.Tx)
	}
}

// Segment header constants.
const (
	segMagic     = "PPWAL"
	segVersion   = 1
	SegHeaderLen = len(segMagic) + 1 + 2 // magic + version + u16 index
)

// frameLen is the per-record framing overhead.
const frameLen = 8

// MaxRecordLen bounds a single record's payload; longer frames are
// treated as corruption (an unchecked u32 length would otherwise let a
// flipped bit demand gigabytes).
const MaxRecordLen = 1 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SegmentHeader renders the header for segment index.
func SegmentHeader(index int) []byte {
	h := make([]byte, 0, SegHeaderLen)
	h = append(h, segMagic...)
	h = append(h, segVersion)
	h = binary.LittleEndian.AppendUint16(h, uint16(index))
	return h
}

// CheckSegmentHeader validates a segment's opening bytes and returns
// the declared index.
func CheckSegmentHeader(data []byte) (index int, err error) {
	if len(data) < SegHeaderLen {
		return 0, errors.New("wal: short segment header")
	}
	if string(data[:len(segMagic)]) != segMagic {
		return 0, errors.New("wal: bad segment magic")
	}
	if data[len(segMagic)] != segVersion {
		return 0, fmt.Errorf("wal: unsupported segment version %d", data[len(segMagic)])
	}
	return int(binary.LittleEndian.Uint16(data[len(segMagic)+1:])), nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Encode appends the record's framed bytes to b.
func Encode(b []byte, r Record) []byte {
	p := make([]byte, 0, 64)
	p = append(p, byte(r.Type))
	p = binary.AppendUvarint(p, r.Tx)
	switch r.Type {
	case TPush:
		p = appendString(p, r.Name)
		p = binary.AppendUvarint(p, r.Op.ID)
		p = binary.AppendUvarint(p, uint64(r.Op.Seq))
		p = appendString(p, r.Op.Obj)
		p = appendString(p, r.Op.Method)
		p = binary.AppendUvarint(p, uint64(len(r.Op.Args)))
		for _, a := range r.Op.Args {
			p = binary.AppendVarint(p, a)
		}
		p = binary.AppendVarint(p, r.Op.Ret)
	case TUnpush:
		p = binary.AppendUvarint(p, r.OpID)
	case TCommit:
		p = appendString(p, r.Name)
		p = binary.AppendUvarint(p, r.Stamp)
	case TAbort:
		p = appendString(p, r.Name)
	case TSession:
		p = binary.AppendUvarint(p, r.Session)
		p = binary.AppendUvarint(p, r.SeqNo)
		p = appendString(p, r.Name)
		p = binary.AppendUvarint(p, uint64(len(r.Results)))
		for _, res := range r.Results {
			p = binary.AppendVarint(p, res.Val)
			if res.Found {
				p = append(p, 1)
			} else {
				p = append(p, 0)
			}
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(p, crcTable))
	return append(b, p...)
}

// decoder walks a payload, failing sticky on any overrun.
type decoder struct {
	b   []byte
	bad bool
}

func (d *decoder) uvarint() uint64 {
	if d.bad {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.bad {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.bad || len(d.b) == 0 {
		d.bad = true
		return 0
	}
	c := d.b[0]
	d.b = d.b[1:]
	return c
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.bad || n > uint64(len(d.b)) {
		d.bad = true
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// maxArgs bounds the declared argument count: the payload is already
// length-capped, so any honest count fits; a corrupt one must not
// trigger a huge allocation before the overrun check.
const maxArgs = 1 << 16

// decodePayload decodes one checksum-verified payload.
func decodePayload(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, errors.New("wal: empty payload")
	}
	r := Record{Type: Type(p[0])}
	d := &decoder{b: p[1:]}
	r.Tx = d.uvarint()
	switch r.Type {
	case TPush:
		r.Name = d.str()
		r.Op.ID = d.uvarint()
		r.Op.Seq = int(d.uvarint())
		r.Op.Obj = d.str()
		r.Op.Method = d.str()
		n := d.uvarint()
		if n > maxArgs {
			return Record{}, fmt.Errorf("wal: absurd arg count %d", n)
		}
		if !d.bad && n > 0 {
			r.Op.Args = make([]int64, n)
			for i := range r.Op.Args {
				r.Op.Args[i] = d.varint()
			}
		}
		r.Op.Ret = d.varint()
		r.Op.Tx = r.Tx
	case TUnpush:
		r.OpID = d.uvarint()
	case TCommit:
		r.Name = d.str()
		r.Stamp = d.uvarint()
	case TAbort:
		r.Name = d.str()
	case TSession:
		r.Session = d.uvarint()
		r.SeqNo = d.uvarint()
		r.Name = d.str()
		n := d.uvarint()
		if n > maxArgs {
			return Record{}, fmt.Errorf("wal: absurd result count %d", n)
		}
		if !d.bad && n > 0 {
			r.Results = make([]SessResult, n)
			for i := range r.Results {
				r.Results[i].Val = d.varint()
				switch d.byte() {
				case 0:
				case 1:
					r.Results[i].Found = true
				default:
					return Record{}, errors.New("wal: bad result flag")
				}
			}
		}
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %d", p[0])
	}
	if d.bad {
		return Record{}, errors.New("wal: truncated payload")
	}
	if len(d.b) != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing payload bytes", len(d.b))
	}
	return r, nil
}

// Truncation-reason classes. Crash recovery treats every truncation the
// same way (keep the prefix, drop the tail), but a live tailer cannot:
// an incomplete frame at the end of the open segment will grow into a
// valid record on the next sync, while a checksum mismatch or garbage
// payload never will. DecodeAll wraps each reason so callers can
// errors.Is-dispatch between "wait and re-poll" and "stop, the stream
// is damaged".
var (
	// ErrTornTail marks an incomplete frame at the truncation point: the
	// bytes seen so far are a valid proper prefix of a record that more
	// data could complete. At the end of an open segment this means
	// wait/retry; mid-stream it means a torn write (crash artifact).
	ErrTornTail = errors.New("wal: torn tail")
	// ErrCorrupt marks a frame that no amount of further data can
	// repair: an absurd declared length, a checksum mismatch, or a
	// payload that fails structural decode. A tailer must treat this as
	// a hard error.
	ErrCorrupt = errors.New("wal: corrupt record")
)

// DecodeAll decodes the longest valid record prefix of a segment body
// (the bytes after the segment header). It returns the records, the
// number of body bytes consumed, and a non-nil reason when a torn or
// corrupt tail was truncated (nil means the body decoded exactly).
// DecodeAll never fails: arbitrary input is a valid prefix plus a
// truncation point. The reason wraps ErrTornTail when the tail is an
// incomplete frame more bytes could complete, and ErrCorrupt when it is
// damage no suffix can repair.
func DecodeAll(body []byte) (recs []Record, consumed int, reason error) {
	off := 0
	for {
		rest := body[off:]
		if len(rest) == 0 {
			return recs, off, nil
		}
		if len(rest) < frameLen {
			return recs, off, fmt.Errorf("%w: torn frame header (%d bytes) at offset %d", ErrTornTail, len(rest), off)
		}
		plen := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if plen > MaxRecordLen {
			return recs, off, fmt.Errorf("%w: frame length %d exceeds limit at offset %d", ErrCorrupt, plen, off)
		}
		if uint64(frameLen)+uint64(plen) > uint64(len(rest)) {
			return recs, off, fmt.Errorf("%w: torn record (want %d payload bytes, have %d) at offset %d",
				ErrTornTail, plen, len(rest)-frameLen, off)
		}
		payload := rest[frameLen : frameLen+int(plen)]
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, off, fmt.Errorf("%w: bad payload at offset %d: %v", ErrCorrupt, off, err)
		}
		recs = append(recs, rec)
		off += frameLen + int(plen)
	}
}
