package server

import (
	"errors"
	"fmt"
	"sort"

	"pushpull/internal/kvapi"
	"pushpull/internal/wal"
)

// srvSessEntry is one session's latest settled request on the
// single-machine path (the sharded engine keeps its own table).
type srvSessEntry struct {
	seq     uint64
	results []kvapi.Result
}

// ackCheck is the shard.Options.AckCheck the server installs: acks are
// permitted only while the lease (if one is configured) is valid. A
// partitioned primary whose renewals stopped goes silent here — the
// commit may be locally durable, but the client is told the outcome is
// unknown and retries against whoever holds the next lease epoch.
func (s *Server) ackCheck() error {
	if l := s.lease; l != nil {
		return l.Check()
	}
	return nil
}

// sessLookup consults the dedup table: (resp, true) when the request
// is already settled (a dedup hit replays the original results; a seq
// below the latest is a protocol error), (_, false) when it should
// execute.
func (s *Server) sessLookup(session, seqNo uint64) (kvapi.Response, bool) {
	s.sessMu.Lock()
	ent, ok := s.sess[session]
	s.sessMu.Unlock()
	if !ok || seqNo > ent.seq {
		return kvapi.Response{}, false
	}
	if seqNo < ent.seq {
		return kvapi.Response{Status: kvapi.StatusError,
			Msg: fmt.Sprintf("stale session seq %d (latest %d)", seqNo, ent.seq)}, true
	}
	s.dedupHits.Add(1)
	s.suite.Metrics.DedupHit(session)
	return kvapi.Response{Status: kvapi.StatusOK,
		Results: append([]kvapi.Result(nil), ent.results...), DedupHit: true}, true
}

// sessRemember installs a settled request into the in-memory table.
func (s *Server) sessRemember(session, seqNo uint64, results []kvapi.Result) {
	s.sessMu.Lock()
	if cur, ok := s.sess[session]; !ok || cur.seq < seqNo {
		if s.sess == nil {
			s.sess = make(map[uint64]srvSessEntry)
		}
		s.sess[session] = srvSessEntry{seq: seqNo, results: append([]kvapi.Result(nil), results...)}
	}
	s.sessMu.Unlock()
}

// appendSessionRecord writes the dedup entry into the WAL, named after
// the transaction it rides with: recovery folds it only if that
// transaction's commit made the durable prefix. Called inside the
// Atomic callback, i.e. before the commit record, so commit-durable
// implies entry-durable. A crashed (simulated) log is tolerated — the
// commit record will not land either, so neither side survives.
func (s *Server) appendSessionRecord(session, seqNo uint64, name string, results []kvapi.Result) error {
	if s.log == nil {
		return nil
	}
	rec := wal.Record{
		Type: wal.TSession, Tx: session,
		Session: session, SeqNo: seqNo, Name: name,
		Results: sessResultsOf(results),
	}
	if err := s.log.Append(rec); err != nil && !errors.Is(err, wal.ErrCrashed) {
		return err
	}
	return nil
}

// seedServerSessions installs the dedup table recovered from the old
// WAL and re-logs it onto the fresh log as unconditional checkpoint
// records (empty Name), mirroring how recovered transactions are
// re-seeded: the new timeline carries the table forward so a second
// crash still dedups requests settled before the first.
func (s *Server) seedServerSessions() error {
	if len(s.recovered.Sessions) == 0 {
		return nil
	}
	ids := make([]uint64, 0, len(s.recovered.Sessions))
	for id := range s.recovered.Sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s.sessMu.Lock()
	if s.sess == nil {
		s.sess = make(map[uint64]srvSessEntry, len(ids))
	}
	for _, id := range ids {
		ent := s.recovered.Sessions[id]
		results := make([]kvapi.Result, len(ent.Results))
		for i, r := range ent.Results {
			results[i] = kvapi.Result{Val: r.Val, Found: r.Found}
		}
		s.sess[id] = srvSessEntry{seq: ent.SeqNo, results: results}
	}
	s.sessMu.Unlock()
	if s.log == nil {
		return nil
	}
	for _, id := range ids {
		ent := s.recovered.Sessions[id]
		rec := wal.Record{
			Type: wal.TSession, Tx: id,
			Session: id, SeqNo: ent.SeqNo,
			Results: append([]wal.SessResult(nil), ent.Results...),
		}
		if err := s.log.Append(rec); err != nil && !errors.Is(err, wal.ErrCrashed) {
			return err
		}
	}
	if err := s.log.Sync(); err != nil && !errors.Is(err, wal.ErrCrashed) {
		return err
	}
	return nil
}

// sessResultsOf converts wire results to WAL session results.
func sessResultsOf(results []kvapi.Result) []wal.SessResult {
	out := make([]wal.SessResult, len(results))
	for i, r := range results {
		out[i] = wal.SessResult{Val: r.Val, Found: r.Found}
	}
	return out
}

// DedupHits reports how many retried requests were answered from the
// dedup table instead of re-executing.
func (s *Server) DedupHits() uint64 {
	if eng := s.Engine(); eng != nil {
		return eng.DedupHits()
	}
	return s.dedupHits.Load()
}

// Lease exposes the serving lease (nil when LeaseTTL was not set).
func (s *Server) Lease() *Lease { return s.lease }

// GrantLease brands epoch into the coordinator log (durable before the
// permit opens) and then grants the lease: the supervisor's promotion
// handshake.
func (s *Server) GrantLease(epoch uint64) error {
	if s.lease == nil {
		return errors.New("server: no lease configured (set Options.LeaseTTL)")
	}
	eng := s.Engine()
	if eng == nil {
		return errors.New("server: lease grant: not serving (no engine)")
	}
	if epoch > eng.LeaseEpoch() {
		if err := eng.BrandLease(epoch); err != nil {
			return err
		}
	}
	if err := s.lease.Grant(epoch); err != nil {
		return err
	}
	s.suite.Metrics.LeaseEpochSet(epoch)
	return nil
}

// RenewLease extends the held lease; false means it already expired
// (and a successor may hold the next epoch).
func (s *Server) RenewLease() bool {
	if s.lease == nil {
		return false
	}
	return s.lease.Renew()
}
