package server

import (
	"testing"

	"pushpull/internal/chaos"
	"pushpull/internal/kvapi"
	"pushpull/internal/wal"
)

// TestServerCrashRestart (satellite): kill the server's simulated
// process at the n-th WAL append mid-campaign, restart from the
// surviving image, and assert (a) recovery re-certifies, (b) every
// transaction acknowledged before the crash reads back after restart,
// (c) the restarted server serves new traffic and still certifies.
// Table over every substrate.
func TestServerCrashRestart(t *testing.T) {
	for _, sub := range Substrates() {
		sub := sub
		t.Run(sub, func(t *testing.T) {
			plan := chaos.NewPlan(42).WithCrash(25, chaos.CrashClean)
			s1, err := New(Options{
				Substrate: sub, Keys: 64, Seed: 42,
				Durable: true, SyncPolicy: wal.SyncEveryRecord,
				Plan: &plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			addr, err := s1.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			c, err := kvapi.Dial(addr.String())
			if err != nil {
				t.Fatal(err)
			}

			// Sequential distinct-key puts until the crash fires. A put
			// acknowledged while the log is still alive is durable
			// (per-record sync, single closed-loop client), so it must
			// survive restart.
			durable := map[uint64]int64{}
			for i := uint64(1); i <= 60; i++ {
				wasAlive := !s1.WALCrashed()
				resp, err := c.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: i, Val: int64(1000 + i)}})
				if err != nil {
					t.Fatal(err)
				}
				if resp.Status == kvapi.StatusOK && wasAlive && !s1.WALCrashed() {
					durable[i] = int64(1000 + i)
				}
				if s1.WALCrashed() {
					break
				}
			}
			if !s1.WALCrashed() {
				t.Fatal("scheduled crash never fired")
			}
			if len(durable) == 0 {
				t.Fatal("crash fired before any transaction became durable; lower the crash point")
			}
			segs := s1.WALSegments()
			c.Close()
			s1.Stop()
			if err := s1.LeakCheck(); err != nil {
				t.Fatalf("pre-restart leaks: %v", err)
			}

			// Restart from the surviving image. New refuses to serve
			// unless RecoverAndCertify passes, so reaching this point IS
			// the re-certification assertion.
			s2, err := New(Options{
				Substrate: sub, Keys: 64, Seed: 42,
				Durable: true, SyncPolicy: wal.SyncEveryRecord,
				RecoverFrom: segs,
			})
			if err != nil {
				t.Fatalf("restart: %v", err)
			}
			rep := s2.Recovered()
			if len(rep.State.Txns) == 0 {
				t.Fatal("restart recovered no transactions")
			}
			if s2.seeded == 0 {
				t.Fatal("recovered state was not re-seeded")
			}
			// The recovered fold must cover every acknowledged-durable key.
			fold := FoldKV(rep.State, sub)
			for k, v := range durable {
				if got, ok := fold[k]; !ok || got != v {
					t.Fatalf("recovered image: key %d = (%d, %v), want (%d, true)", k, got, ok, v)
				}
			}

			addr2, err := s2.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			c2, err := kvapi.Dial(addr2.String())
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			// Committed keys survive, end to end.
			for k, v := range durable {
				resp, err := c2.Do([]kvapi.Op{{Kind: kvapi.OpGet, Key: k}})
				if err != nil || resp.Status != kvapi.StatusOK {
					t.Fatalf("get %d after restart: %v %v", k, resp, err)
				}
				if !resp.Results[0].Found || resp.Results[0].Val != v {
					t.Fatalf("key %d after restart = %+v, want %d", k, resp.Results[0], v)
				}
			}
			// And the restarted server accepts new committed work.
			if resp, err := c2.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 63, Val: -5}}); err != nil || resp.Status != kvapi.StatusOK {
				t.Fatalf("post-restart put: %v %v", resp, err)
			}
			c2.Close()
			s2.Stop()
			if err := s2.LeakCheck(); err != nil {
				t.Fatal(err)
			}
			if err := s2.FinalCheck(); err != nil {
				t.Fatalf("post-restart certification: %v", err)
			}
		})
	}
}

// TestServerCrashRestartOnDisk runs the tl2 leg against real segment
// files: crash, restart pointed at the same directory, and check the
// old epoch is archived while the new log re-checkpoints the state.
func TestServerCrashRestartOnDisk(t *testing.T) {
	dir := t.TempDir()
	plan := chaos.NewPlan(7).WithCrash(20, chaos.CrashClean)
	s1, err := New(Options{
		Substrate: "tl2", Keys: 64, Seed: 7,
		WALDir: dir, SyncPolicy: wal.SyncEveryRecord,
		Plan: &plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := kvapi.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	durable := map[uint64]int64{}
	for i := uint64(1); i <= 40 && !s1.WALCrashed(); i++ {
		resp, err := c.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: i, Val: int64(i * 10)}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status == kvapi.StatusOK && !s1.WALCrashed() {
			durable[i] = int64(i * 10)
		}
	}
	if !s1.WALCrashed() {
		t.Fatal("scheduled crash never fired")
	}
	c.Close()
	s1.Stop()

	// Restart from the directory (no RecoverFrom): the dead process's
	// segments are read off disk, certified, archived, re-seeded.
	s2, err := New(Options{
		Substrate: "tl2", Keys: 64, Seed: 7,
		WALDir: dir, SyncPolicy: wal.SyncEveryRecord,
	})
	if err != nil {
		t.Fatalf("restart from dir: %v", err)
	}
	if len(s2.Recovered().State.Txns) == 0 {
		t.Fatal("nothing recovered from disk")
	}
	for k, v := range durable {
		if got, _ := s2.Backend().ReadKey(k); got != v {
			t.Fatalf("key %d = %d after disk restart, want %d", k, got, v)
		}
	}
	s2.Stop()
	if err := s2.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	if err := s2.FinalCheck(); err != nil {
		t.Fatal(err)
	}

	// A third boot recovers the re-checkpointed epoch (written by s2's
	// fresh log) — the archive kept namespaces from colliding.
	s3, err := New(Options{Substrate: "tl2", Keys: 64, Seed: 7, WALDir: dir})
	if err != nil {
		t.Fatalf("third boot: %v", err)
	}
	for k, v := range durable {
		if got, _ := s3.Backend().ReadKey(k); got != v {
			t.Fatalf("key %d = %d after third boot, want %d", k, got, v)
		}
	}
	s3.Stop()
	if err := s3.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}
