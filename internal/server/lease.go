package server

import (
	"fmt"
	"sync"
	"time"
)

// Lease is the serving permit behind lease-fenced failover: a primary
// may acknowledge commits only while it holds an unexpired lease, and
// a supervisor grants the successor's lease (at the next epoch) only
// after the predecessor's must have expired on ANY clock within the
// configured skew. The two rules together give the sweep its fencing
// invariant — at most one primary acks commits under each lease epoch
// — without the primary and supervisor ever needing to agree on more
// than bounded clock drift.
//
// The zero epoch means "never granted": a replicated server without a
// supervisor runs unleased and acks freely (the epoch fence still
// protects it). Once a lease has been granted, expiry is enforced — a
// partitioned primary whose renewals stop goes silent by itself.
type Lease struct {
	mu    sync.Mutex
	now   func() time.Time
	ttl   time.Duration
	epoch uint64
	until time.Time
}

// NewLease builds an ungranted lease with the given TTL. now is the
// injectable clock (nil means time.Now) — sweeps drive it manually so
// a 50-seed campaign does not sleep through real lease windows.
func NewLease(ttl time.Duration, now func() time.Time) *Lease {
	if now == nil {
		now = time.Now
	}
	if ttl <= 0 {
		ttl = 50 * time.Millisecond
	}
	return &Lease{now: now, ttl: ttl}
}

// TTL returns the lease duration.
func (l *Lease) TTL() time.Duration { return l.ttl }

// Grant installs (or renews) the lease at epoch: a higher epoch takes
// over, the held epoch renews, a lower one is a stale grant and fails.
func (l *Lease) Grant(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch < l.epoch {
		return fmt.Errorf("server: stale lease grant: epoch %d, holding %d", epoch, l.epoch)
	}
	l.epoch = epoch
	l.until = l.now().Add(l.ttl)
	return nil
}

// Renew extends the currently held lease; it reports false (and does
// not extend) when the lease already expired — a renewal arriving
// after expiry must not resurrect the old permit, because a successor
// may have been granted the next epoch in the meantime.
func (l *Lease) Renew() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.epoch == 0 || l.now().After(l.until) {
		return false
	}
	l.until = l.now().Add(l.ttl)
	return true
}

// Expire force-expires the lease (a deposed primary being told, or a
// test driving the window directly).
func (l *Lease) Expire() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.epoch != 0 {
		l.until = l.now().Add(-time.Nanosecond)
	}
}

// Epoch returns the held lease epoch (0 = never granted).
func (l *Lease) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Until returns the current expiry instant (zero when never granted).
func (l *Lease) Until() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.until
}

// Valid reports whether the lease currently permits acking.
func (l *Lease) Valid() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch == 0 || !l.now().After(l.until)
}

// Check is the shard.Options.AckCheck shape: nil while acking is
// permitted, an error naming the expired epoch otherwise.
func (l *Lease) Check() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.epoch == 0 || !l.now().After(l.until) {
		return nil
	}
	return fmt.Errorf("server: lease epoch %d expired", l.epoch)
}
