package server

import (
	"testing"
	"time"

	"pushpull/internal/kvapi"
)

// waitCaughtUp syncs the follower until every stream's lag gauge reads
// zero (bounded; the primary is quiescent when this is called).
func waitCaughtUp(t *testing.T, f *Server) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if _, err := f.SyncNow(); err != nil {
			t.Fatalf("sync: %v", err)
		}
		lagging := false
		for _, lag := range f.ReplLag() {
			lagging = lagging || lag != 0
		}
		if !lagging {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower never caught up: lag %v", f.ReplLag())
}

// TestReplSmoke is the three-node campaign: a replicated primary and
// two followers over real TCP, redirect-following client traffic, one
// forced failover with a certified promotion, the surviving follower
// re-pointed at the new primary, and a certified shutdown of everyone.
func TestReplSmoke(t *testing.T) {
	const shards, keys = 3, 48
	prim, err := New(Options{
		Substrate: "tl2", Shards: shards, Keys: keys, Seed: 5,
		Replicate: true, SegmentBytes: 2 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrP, err := prim.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	newFollower := func(seed int64) (*Server, string) {
		f, err := New(Options{
			Substrate: "tl2", Shards: shards, Keys: keys, Seed: seed,
			Follow: addrP.String(), PollInterval: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := f.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return f, addr.String()
	}
	f1, addr1 := newFollower(6)
	f2, addr2 := newFollower(7)

	if got := prim.Role(); got != rolePrimary {
		t.Fatalf("primary role %q", got)
	}
	if got := f1.Role(); got != roleFollower {
		t.Fatalf("follower role %q", got)
	}

	// Writes aimed at a follower redirect to the primary and land.
	rc := kvapi.NewReconnectClient(addr1, kvapi.ReconnectOptions{
		Seed: 9, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond,
	})
	defer rc.Close()
	acked := make(map[uint64]int64)
	for i := 0; i < 120; i++ {
		k, v := uint64(i%keys), int64(1000+i)
		resp, err := rc.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: k, Val: v}})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if resp.Status != kvapi.StatusOK {
			t.Fatalf("write %d: %s %s", i, resp.Status, resp.Msg)
		}
		acked[k] = v
	}
	if rc.Stats().Redirects == 0 {
		t.Fatal("client was never redirected off the follower")
	}
	if rc.Addr() != addrP.String() {
		t.Fatalf("client targets %s, primary is %s", rc.Addr(), addrP)
	}

	// Followers converge; their committed prefix serves the reads.
	waitCaughtUp(t, f1)
	waitCaughtUp(t, f2)
	rdr, err := kvapi.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range acked {
		resp, err := rdr.Do([]kvapi.Op{{Kind: kvapi.OpGet, Key: k}})
		if err != nil || resp.Status != kvapi.StatusOK {
			t.Fatalf("follower read %d: %v %s", k, err, resp.Status)
		}
		if !resp.Results[0].Found || resp.Results[0].Val != v {
			t.Fatalf("follower read %d: got (%d,%v), want %d",
				k, resp.Results[0].Val, resp.Results[0].Found, v)
		}
	}
	rdr.Close()
	st := f2.Stats()
	if st.Role != roleFollower || st.Epoch == 0 || st.ReplReads == 0 {
		t.Fatalf("follower stats off: %+v", st)
	}

	// Failover: the primary dies; f1 promotes with a certificate.
	prim.Stop()
	mr, err := f1.Promote()
	if err != nil {
		t.Fatalf("promotion: %v", err)
	}
	if len(mr.MergedOrder) == 0 {
		t.Fatal("promotion certificate has an empty merged order")
	}
	if got := f1.Role(); got != rolePrimary {
		t.Fatalf("promoted role %q", got)
	}
	if e := f1.Stats().Epoch; e < 2 {
		t.Fatalf("promoted epoch %d, want >= 2", e)
	}

	// The survivor re-follows the new primary — a new timeline, so its
	// replica restarts from byte zero — and converges again.
	if err := f2.Refollow(addr1); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, f2)

	// No acknowledged write was lost, and the new primary serves both
	// sides of the cut: reads of the old state and fresh writes.
	rc.Retarget(addr1)
	for k, v := range acked {
		resp, err := rc.Do([]kvapi.Op{{Kind: kvapi.OpGet, Key: k}})
		if err != nil || resp.Status != kvapi.StatusOK {
			t.Fatalf("post-failover read %d: %v %s", k, err, resp.Status)
		}
		if resp.Results[0].Val != v {
			t.Fatalf("post-failover read %d: got %d, want %d", k, resp.Results[0].Val, v)
		}
	}
	resp, err := rc.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 3, Val: 4242}})
	if err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("post-failover write: %v %s", err, resp.Status)
	}

	// A client aimed at the re-pointed follower still lands its writes
	// (redirected to the new primary) and serves its reads locally.
	rc2 := kvapi.NewReconnectClient(addr2, kvapi.ReconnectOptions{
		Seed: 11, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond,
	})
	defer rc2.Close()
	if resp, err := rc2.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 5, Val: 5555}}); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("follower-aimed write: %v %+v", err, resp)
	}
	waitCaughtUp(t, f2)
	rdr2, err := kvapi.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := rdr2.Do([]kvapi.Op{{Kind: kvapi.OpGet, Key: 5}}); err != nil ||
		resp.Status != kvapi.StatusOK || resp.Results[0].Val != 5555 {
		t.Fatalf("follower read of fresh write: %v %+v", err, resp)
	}
	rdr2.Close()

	// Certified shutdown, everyone.
	f1.Stop()
	f2.Stop()
	for name, srv := range map[string]*Server{"promoted": f1, "survivor": f2} {
		if err := srv.FinalCheck(); err != nil {
			t.Fatalf("%s final check: %v", name, err)
		}
		if err := srv.LeakCheck(); err != nil {
			t.Fatalf("%s leak check: %v", name, err)
		}
	}
}
