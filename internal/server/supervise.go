package server

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"pushpull/internal/kvapi"
	"pushpull/internal/obs"
)

// Node is one supervised cluster member: the in-process server handle
// (for promotion and lease plumbing) plus the address clients and
// peers reach it at. The supervisor probes liveness over the wire —
// the handle staying reachable in memory proves nothing about whether
// the process still answers.
type Node struct {
	Name   string
	Server *Server
	Addr   string
}

// SupervisorOptions tunes the failure detector and failover policy.
type SupervisorOptions struct {
	// HeartbeatEvery paces liveness probes (default 10ms).
	HeartbeatEvery time.Duration
	// FailAfter is how many consecutive missed heartbeats declare the
	// primary dead (default 3).
	FailAfter int
	// Margin is the extra wait past the dead primary's lease expiry
	// before granting the successor's — the clock-skew allowance that
	// keeps "at most one acking primary per lease epoch" true even
	// when the primary's clock runs slow (default TTL/2).
	Margin time.Duration
	// DialTimeout bounds one liveness probe (default 250ms).
	DialTimeout time.Duration
	// Now and Sleep are the supervisor's clock seams; tests drive them.
	Now   func() time.Time
	Sleep func(time.Duration)
	// OnEvent receives human-readable supervision events (promotions,
	// demotions, missed beats); nil discards them.
	OnEvent func(string)
	// Suite feeds pushpull_failover_total and friends; nil skips.
	Suite *obs.Suite
}

func (o SupervisorOptions) withDefaults(ttl time.Duration) SupervisorOptions {
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 10 * time.Millisecond
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 3
	}
	if o.Margin <= 0 {
		o.Margin = ttl / 2
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 250 * time.Millisecond
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Supervisor is the cluster's failure detector and failover driver: it
// heartbeats the primary, renews its lease while healthy, and when the
// primary dies it waits out the lease (plus skew margin), picks the
// most-advanced follower, certifies and promotes it, grants the next
// lease epoch, re-points the surviving followers, and demotes any
// deposed primary that later returns from the dead.
type Supervisor struct {
	mu        sync.Mutex
	nodes     []*Node
	opts      SupervisorOptions
	primary   int
	misses    int
	epoch     uint64    // highest lease epoch granted
	expiry    time.Time // when the current grant runs out
	failovers uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewSupervisor supervises nodes; nodes[primary] must currently be the
// serving primary, and every node must have been built with the same
// positive Options.LeaseTTL.
func NewSupervisor(nodes []*Node, primary int, opts SupervisorOptions) (*Supervisor, error) {
	if len(nodes) < 2 {
		return nil, errors.New("server: supervisor needs at least two nodes")
	}
	if primary < 0 || primary >= len(nodes) {
		return nil, fmt.Errorf("server: primary index %d out of range", primary)
	}
	lease := nodes[primary].Server.Lease()
	if lease == nil {
		return nil, errors.New("server: supervised nodes need Options.LeaseTTL set")
	}
	sv := &Supervisor{nodes: nodes, primary: primary, opts: opts.withDefaults(lease.TTL())}
	// The initial grant: start the lease regime above any epoch a
	// recovered image already branded.
	epoch := uint64(0)
	for _, n := range nodes {
		if eng := n.Server.Engine(); eng != nil && eng.LeaseEpoch() > epoch {
			epoch = eng.LeaseEpoch()
		}
	}
	sv.epoch = epoch + 1
	if err := nodes[primary].Server.GrantLease(sv.epoch); err != nil {
		return nil, fmt.Errorf("server: initial lease grant: %w", err)
	}
	sv.expiry = sv.opts.Now().Add(lease.TTL())
	sv.event("lease epoch %d granted to %s", sv.epoch, nodes[primary].Name)
	return sv, nil
}

func (sv *Supervisor) event(format string, args ...any) {
	if sv.opts.OnEvent != nil {
		sv.opts.OnEvent(fmt.Sprintf(format, args...))
	}
}

// Primary returns the currently supervised primary node.
func (sv *Supervisor) Primary() *Node {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.nodes[sv.primary]
}

// Epoch returns the highest lease epoch granted so far.
func (sv *Supervisor) Epoch() uint64 {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.epoch
}

// Failovers counts completed automatic promotions.
func (sv *Supervisor) Failovers() uint64 {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.failovers
}

// ping probes one node's wire liveness with a bounded dial.
func (sv *Supervisor) ping(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, sv.opts.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(sv.opts.DialTimeout))
	return kvapi.NewClient(conn).Ping()
}

// Step runs one supervision round: probe the primary, renew or count a
// miss, fail over when the detector fires, and fence any deposed
// primary that answers again. Exported so tests drive supervision
// deterministically; Start wraps it in a paced loop.
func (sv *Supervisor) Step() error {
	sv.mu.Lock()
	p := sv.nodes[sv.primary]
	sv.mu.Unlock()

	sv.fenceZombies()

	if err := sv.ping(p.Addr); err != nil {
		sv.mu.Lock()
		sv.misses++
		misses, limit := sv.misses, sv.opts.FailAfter
		sv.mu.Unlock()
		sv.event("primary %s missed heartbeat %d/%d: %v", p.Name, misses, limit, err)
		if misses >= limit {
			return sv.failover()
		}
		return nil
	}
	sv.mu.Lock()
	sv.misses = 0
	sv.mu.Unlock()
	if p.Server.RenewLease() {
		sv.mu.Lock()
		sv.expiry = sv.opts.Now().Add(p.Server.Lease().TTL())
		sv.mu.Unlock()
	}
	return nil
}

// fenceZombies demotes any node that still believes it is primary but
// is not the supervisor's current choice — a deposed primary back from
// a partition must re-follow before it can ack anything.
func (sv *Supervisor) fenceZombies() {
	sv.mu.Lock()
	cur := sv.primary
	addr := sv.nodes[cur].Addr
	nodes := sv.nodes
	sv.mu.Unlock()
	// Fence at the serving primary's engine epoch: higher than any
	// epoch the zombie branded, so its coordinator refuses new commits.
	var fenceEpoch uint64
	if eng := nodes[cur].Server.Engine(); eng != nil {
		fenceEpoch = eng.Epoch()
	}
	for i, n := range nodes {
		if i == cur || n.Server.Role() != rolePrimary {
			continue
		}
		if err := n.Server.Demote(addr, fenceEpoch); err == nil {
			sv.event("deposed primary %s fenced and re-following %s", n.Name, nodes[cur].Name)
		}
	}
}

// failover drives one automatic promotion.
func (sv *Supervisor) failover() error {
	sv.mu.Lock()
	dead := sv.primary
	deadName := sv.nodes[dead].Name
	expiry := sv.expiry
	margin := sv.opts.Margin
	sv.mu.Unlock()

	// Wait until the dead primary's lease must have expired on any
	// clock within the skew margin: until then it could still be
	// acking commits on the far side of a partition.
	if wait := expiry.Add(margin).Sub(sv.opts.Now()); wait > 0 {
		sv.event("waiting %v for %s's lease to expire", wait, deadName)
		sv.opts.Sleep(wait)
	}

	// Pick the most-advanced follower: the one whose replica holds the
	// longest applied prefix loses the least acked work. (Acked work
	// can only be lost if it never reached ANY follower — which the
	// ack gate prevents when links report lag.)
	var cands []candidate
	sv.mu.Lock()
	nodes := sv.nodes
	sv.mu.Unlock()
	for i, n := range nodes {
		if i == dead || n.Server.Role() != roleFollower {
			continue
		}
		rep := n.Server.Replica()
		if rep == nil || rep.Poisoned() != nil {
			continue
		}
		score := uint64(0)
		for s := 0; s < rep.Config().Streams(); s++ {
			score += rep.AppliedRecords(s)
		}
		cands = append(cands, candidate{idx: i, score: score})
	}
	if len(cands) == 0 {
		return fmt.Errorf("server: no promotable follower (primary %s dead)", deadName)
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })

	var firstErr error
	for _, c := range cands {
		n := nodes[c.idx]
		mr, err := n.Server.Promote()
		if err != nil {
			sv.event("promotion of %s failed: %v", n.Name, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sv.mu.Lock()
		sv.epoch++
		epoch := sv.epoch
		sv.primary = c.idx
		sv.misses = 0
		sv.failovers++
		sv.mu.Unlock()
		if err := n.Server.GrantLease(epoch); err != nil {
			return fmt.Errorf("server: lease grant after promotion: %w", err)
		}
		sv.mu.Lock()
		sv.expiry = sv.opts.Now().Add(n.Server.Lease().TTL())
		sv.mu.Unlock()
		if sv.opts.Suite != nil {
			sv.opts.Suite.Metrics.FailoverObserved()
		}
		sv.event("promoted %s (certified: %d shards, epoch %d, lease epoch %d)",
			n.Name, len(mr.Shards), mr.Epoch, epoch)
		// Surviving followers chase the new timeline; the dead primary
		// is fenced by fenceZombies if it ever comes back.
		for i, o := range nodes {
			if i == c.idx || i == dead || o.Server.Role() != roleFollower {
				continue
			}
			if err := o.Server.Refollow(n.Addr); err != nil {
				sv.event("refollow of %s failed: %v", o.Name, err)
			}
		}
		return nil
	}
	return fmt.Errorf("server: every candidate promotion failed: %w", firstErr)
}

// candidate is a promotable follower scored by applied-prefix length.
type candidate struct {
	idx   int
	score uint64
}

// Start runs the supervision loop until Stop.
func (sv *Supervisor) Start() {
	sv.mu.Lock()
	if sv.stop != nil {
		sv.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	sv.stop = stop
	sv.mu.Unlock()
	sv.wg.Add(1)
	go func() {
		defer sv.wg.Done()
		t := time.NewTicker(sv.opts.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := sv.Step(); err != nil {
					sv.event("supervision step failed: %v", err)
				}
			}
		}
	}()
}

// Stop halts the supervision loop (the cluster keeps serving).
func (sv *Supervisor) Stop() {
	sv.mu.Lock()
	stop := sv.stop
	sv.stop = nil
	sv.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	sv.wg.Wait()
}
