package server

import (
	"testing"
	"time"

	"pushpull/internal/kvapi"
	"pushpull/internal/wal"
)

// TestShardSmoke is the `make shard-smoke` target: boot a 4-shard
// durable server, run a mixed one-shot + interactive load campaign with
// 10% cross-shard transactions over the wire, then crash-restart from
// the multi-log image and demand the full sharded certificate — zero
// transport errors, cross-shard commits observed, zero leaked
// sessions/spans/locks, per-shard shadow-machine certification, a
// serializable merged cross-shard commit order, and zero transactions
// left in doubt after restart.
func TestShardSmoke(t *testing.T) {
	const shards = 4
	s, err := New(Options{
		Substrate: "tl2", Shards: shards, Keys: 32 * shards, Seed: 11,
		Durable: true, SyncPolicy: wal.SyncOnCommit,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	for _, leg := range []struct {
		name        string
		interactive bool
	}{{"oneshot", false}, {"interactive", true}} {
		res, err := kvapi.RunLoad(kvapi.LoadParams{
			Addr: addr.String(), Clients: 6,
			Duration: 300 * time.Millisecond,
			Keys:     32 * shards, ReadPct: 50, OpsPerTxn: 3,
			Skew: 1.2, Interactive: leg.interactive, Seed: 11,
			Shards: shards, CrossPct: 10,
		})
		if err != nil {
			t.Fatalf("%s load: %v", leg.name, err)
		}
		if res.Errors != 0 {
			t.Fatalf("%s load: %d StatusError outcomes", leg.name, res.Errors)
		}
		if res.Commits == 0 {
			t.Fatalf("%s load committed nothing", leg.name)
		}
		t.Logf("shard/%s: %s", leg.name, res)
	}

	st := s.Stats()
	if st.Shards != shards {
		t.Fatalf("stats report %d shards, want %d", st.Shards, shards)
	}
	if st.CrossCommits == 0 {
		t.Fatal("no cross-shard commits — the 10% cross mix never spanned shards")
	}
	barriers, syncs := s.GroupStats()
	if syncs == 0 || barriers < syncs {
		t.Fatalf("group commit stats look wrong: %d barriers, %d syncs", barriers, syncs)
	}
	t.Logf("shard: %d commits (%d cross), group commit %d barriers / %d syncs",
		st.Commits, st.CrossCommits, barriers, syncs)

	img := s.ShardImage()
	s.Stop()
	if err := s.LeakCheck(); err != nil {
		t.Fatalf("leak check: %v", err)
	}
	if err := s.FinalCheck(); err != nil {
		t.Fatalf("final certification: %v", err)
	}

	// Crash-restart from the multi-log image: per-shard replay plus the
	// coordinator's consistency cut must certify before serving resumes.
	s2, err := New(Options{
		Substrate: "tl2", Shards: shards, Keys: 32 * shards, Seed: 12,
		Durable: true, SyncPolicy: wal.SyncOnCommit,
		RecoverFromImage: img,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	rep := s2.ShardRecovered()
	if rep.RecoveredTxns() == 0 {
		t.Fatal("restart recovered nothing")
	}
	if rep.InDoubt != 0 {
		t.Fatalf("restart left %d cross-shard transaction(s) in doubt", rep.InDoubt)
	}
	addr2, err := s2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	res, err := kvapi.RunLoad(kvapi.LoadParams{
		Addr: addr2.String(), Clients: 4,
		Duration: 200 * time.Millisecond,
		Keys:     32 * shards, ReadPct: 50, OpsPerTxn: 3,
		Skew: 1.2, Seed: 12, Shards: shards, CrossPct: 10,
	})
	if err != nil {
		t.Fatalf("post-restart load: %v", err)
	}
	if res.Errors != 0 || res.Commits == 0 {
		t.Fatalf("post-restart load: %s", res)
	}
	t.Logf("shard/restart: recovered %d txns (%d redos, %d resolved), then %s",
		rep.RecoveredTxns(), len(rep.Redos), rep.InDoubtResolved, res)
	s2.Stop()
	if err := s2.LeakCheck(); err != nil {
		t.Fatalf("restart leak check: %v", err)
	}
	if err := s2.FinalCheck(); err != nil {
		t.Fatalf("restart final certification: %v", err)
	}
}
