package server

import (
	"strings"
	"sync"
	"testing"
	"time"

	"pushpull/internal/kvapi"
)

// clusterNode builds one supervised member.
func startPrimary(t *testing.T, shards, keys int, ttl time.Duration) (*Server, string) {
	t.Helper()
	p, err := New(Options{
		Substrate: "tl2", Shards: shards, Keys: keys, Seed: 5,
		Replicate: true, SegmentBytes: 2 << 10, LeaseTTL: ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return p, addr.String()
}

func startFollower(t *testing.T, shards, keys int, seed int64, follow string, ttl time.Duration) (*Server, string) {
	t.Helper()
	f, err := New(Options{
		Substrate: "tl2", Shards: shards, Keys: keys, Seed: seed,
		Follow: follow, PollInterval: 2 * time.Millisecond, LeaseTTL: ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := f.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return f, addr.String()
}

// TestFailoverSmoke is the self-healing three-node campaign: a supervised
// cluster under client load loses its primary, the supervisor detects
// it, waits out the lease, certifies and promotes the most-advanced
// follower, and the session client's blind retry of the ambiguous
// in-flight write lands exactly once on the new primary.
func TestFailoverSmoke(t *testing.T) {
	const shards, keys = 3, 48
	const ttl = 500 * time.Millisecond
	prim, addrP := startPrimary(t, shards, keys, ttl)
	f1, addr1 := startFollower(t, shards, keys, 6, addrP, ttl)
	f2, addr2 := startFollower(t, shards, keys, 7, addrP, ttl)

	var events []string
	var evMu sync.Mutex
	sv, err := NewSupervisor([]*Node{
		{Name: "n0", Server: prim, Addr: addrP},
		{Name: "n1", Server: f1, Addr: addr1},
		{Name: "n2", Server: f2, Addr: addr2},
	}, 0, SupervisorOptions{
		HeartbeatEvery: 5 * time.Millisecond, FailAfter: 3,
		Margin: 100 * time.Millisecond, DialTimeout: 100 * time.Millisecond,
		Suite: prim.Suite(),
		OnEvent: func(e string) {
			evMu.Lock()
			events = append(events, e)
			evMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sv.Start()
	defer sv.Stop()

	if prim.Stats().LeaseEpoch != 1 {
		t.Fatalf("initial lease epoch %d, want 1", prim.Stats().LeaseEpoch)
	}

	// Session A carries the main load; session C settles exactly one
	// request whose dedup entry must survive the failover.
	fallbacks := []string{addrP, addr1, addr2}
	rcA := kvapi.NewReconnectClient(addrP, kvapi.ReconnectOptions{
		Session: 42, Seed: 9, MaxTries: 10,
		BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
		Fallbacks: fallbacks,
	})
	defer rcA.Close()
	acked := make(map[uint64]int64)
	for i := 0; i < 60; i++ {
		k, v := uint64(i%keys), int64(1000+i)
		resp, err := rcA.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: k, Val: v}})
		if err != nil || resp.Status != kvapi.StatusOK {
			t.Fatalf("write %d: %v %+v", i, err, resp)
		}
		acked[k] = v
	}
	rcC := kvapi.NewReconnectClient(addrP, kvapi.ReconnectOptions{
		Session: 77, Seed: 10, MaxTries: 6,
		BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
		Fallbacks: fallbacks,
	})
	defer rcC.Close()
	if resp, err := rcC.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 1, Val: 7001}}); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("session C write: %v %+v", err, resp)
	}
	acked[1] = 7001

	// Both followers hold everything acked before the primary dies.
	waitCaughtUp(t, f1)
	waitCaughtUp(t, f2)

	// Kill the primary; the next write is ambiguous (it may or may not
	// have committed) and the client holds its sequence number.
	prim.Stop()
	if resp, err := rcA.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 7, Val: 7777}}); err == nil && resp.Status == kvapi.StatusOK {
		t.Fatal("write against a dead cluster settled without a primary")
	}
	seqBefore, pending := rcA.Seq()
	if !pending {
		t.Fatalf("ambiguous outcome did not leave seq %d pending", seqBefore)
	}

	// The supervisor notices, waits out the lease, and promotes.
	deadline := time.Now().Add(10 * time.Second)
	for sv.Failovers() == 0 {
		if time.Now().After(deadline) {
			evMu.Lock()
			t.Fatalf("no automatic failover; events: %v", events)
		}
		time.Sleep(5 * time.Millisecond)
	}
	np := sv.Primary()
	if np.Server.Role() != rolePrimary {
		t.Fatalf("supervisor's primary %s has role %q", np.Name, np.Server.Role())
	}
	if got := sv.Epoch(); got != 2 {
		t.Fatalf("lease epoch after failover = %d, want 2", got)
	}
	if st := np.Server.Stats(); st.LeaseEpoch != 2 {
		t.Fatalf("new primary lease epoch %d, want 2", st.LeaseEpoch)
	}

	// The blind retry re-issues the same ops under the same sequence
	// number and settles exactly once on the new primary.
	resp, err := rcA.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 7, Val: 7777}})
	if err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("retry after failover: %v %+v", err, resp)
	}
	if seqAfter, pend := rcA.Seq(); seqAfter != seqBefore || pend {
		t.Fatalf("retry used seq %d (pending %v), want %d settled", seqAfter, pend, seqBefore)
	}
	acked[7] = 7777

	// Session C's settled request is recognized across the failover: a
	// fresh client carrying the same identity re-issues (77, seq 1)
	// with DIFFERENT ops, and the new primary answers from the durable
	// dedup table instead of executing them.
	rcC2 := kvapi.NewReconnectClient(np.Addr, kvapi.ReconnectOptions{
		Session: 77, Seed: 11, MaxTries: 6,
		BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
		Fallbacks: fallbacks,
	})
	defer rcC2.Close()
	resp, err = rcC2.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 1, Val: -666}})
	if err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("dedup retry: %v %+v", err, resp)
	}
	if !resp.DedupHit {
		t.Fatal("retried settled request re-executed instead of hitting the dedup table")
	}
	if np.Server.DedupHits() == 0 {
		t.Fatal("new primary counted no dedup hits")
	}

	// Exactly-once ledger: every acked write survives with its last
	// acked value — including key 1, which the dedup hit must NOT have
	// overwritten with -666.
	rdr := kvapi.NewReconnectClient(np.Addr, kvapi.ReconnectOptions{
		Seed: 12, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
	})
	defer rdr.Close()
	for k, v := range acked {
		resp, err := rdr.Do([]kvapi.Op{{Kind: kvapi.OpGet, Key: k}})
		if err != nil || resp.Status != kvapi.StatusOK {
			t.Fatalf("ledger read %d: %v %+v", k, err, resp)
		}
		if !resp.Results[0].Found || resp.Results[0].Val != v {
			t.Fatalf("acked write lost: key %d = (%d,%v), want %d",
				k, resp.Results[0].Val, resp.Results[0].Found, v)
		}
	}

	// At most one acking primary, and the certificate was real.
	primaries := 0
	for _, n := range []*Server{f1, f2} {
		if n.Role() == rolePrimary {
			primaries++
		}
	}
	if primaries != 1 {
		t.Fatalf("%d primaries after failover, want 1", primaries)
	}
	evMu.Lock()
	sawPromotion := false
	for _, e := range events {
		if strings.Contains(e, "promoted") {
			sawPromotion = true
		}
	}
	evMu.Unlock()
	if !sawPromotion {
		t.Fatalf("no promotion event recorded: %v", events)
	}

	sv.Stop()
	f1.Stop()
	f2.Stop()
	for name, srv := range map[string]*Server{"f1": f1, "f2": f2} {
		if err := srv.FinalCheck(); err != nil {
			t.Fatalf("%s final check: %v", name, err)
		}
	}
}

// TestDeposedPrimaryFenced drives the lease window with a manual clock:
// a primary whose lease expires mid-run (its renewals were partitioned
// away) must refuse to ack anything — even though it is alive and its
// engine works — until it is demoted behind the new primary.
func TestDeposedPrimaryFenced(t *testing.T) {
	const shards, keys = 2, 32
	var clkMu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		clkMu.Lock()
		defer clkMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clkMu.Lock()
		now = now.Add(d)
		clkMu.Unlock()
	}

	prim, err := New(Options{
		Substrate: "tl2", Shards: shards, Keys: keys, Seed: 5,
		Replicate: true, SegmentBytes: 2 << 10,
		LeaseTTL: 100 * time.Millisecond, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrP, err := prim.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Stop()
	f, err := New(Options{
		Substrate: "tl2", Shards: shards, Keys: keys, Seed: 6,
		Follow: addrP.String(), PollInterval: 2 * time.Millisecond,
		LeaseTTL: 100 * time.Millisecond, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrFA, err := f.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrF := addrFA.String()
	defer f.Stop()

	if err := prim.GrantLease(1); err != nil {
		t.Fatal(err)
	}
	c := kvapi.NewReconnectClient(addrP.String(), kvapi.ReconnectOptions{
		Seed: 9, MaxTries: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	})
	defer c.Close()
	if resp, err := c.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 3, Val: 33}}); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("leased write: %v %+v", err, resp)
	}
	waitCaughtUp(t, f)

	// The lease expires (renewals stopped reaching this primary). The
	// node is healthy — but it must stop acking by itself.
	advance(time.Second)
	if prim.RenewLease() {
		t.Fatal("expired lease renewed — resurrection would allow two acking primaries")
	}
	resp, err := c.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 4, Val: 44}})
	if err != nil {
		t.Fatalf("transport against live deposed primary: %v", err)
	}
	if resp.Status == kvapi.StatusOK {
		t.Fatal("deposed primary acked a write on an expired lease")
	}
	if !strings.Contains(resp.Msg, "lease") {
		t.Fatalf("refusal does not name the lease: %+v", resp)
	}

	// The follower is promoted and granted the next lease epoch; the
	// returning zombie is demoted behind it and redirects writes there.
	if _, err := f.Promote(); err != nil {
		t.Fatalf("promotion: %v", err)
	}
	if err := f.GrantLease(2); err != nil {
		t.Fatal(err)
	}
	fenceEpoch := f.Engine().Epoch()
	if err := prim.Demote(addrF, fenceEpoch); err != nil {
		t.Fatalf("demote: %v", err)
	}
	if got := prim.Role(); got != roleFollower {
		t.Fatalf("deposed primary role %q, want follower", got)
	}
	resp, err = c.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 5, Val: 55}})
	if err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("write after demotion should redirect to new primary: %v %+v", err, resp)
	}
	if c.Addr() != addrF {
		t.Fatalf("client landed on %s, want new primary %s", c.Addr(), addrF)
	}
	// The new primary holds every acked write. (The fenced key-4 write
	// was refused to the client but may have committed locally and
	// replicated before promotion — surviving unacked work is allowed;
	// losing acked work is not.)
	for k, want := range map[uint64]int64{3: 33, 5: 55} {
		resp, err := c.Do([]kvapi.Op{{Kind: kvapi.OpGet, Key: k}})
		if err != nil || resp.Status != kvapi.StatusOK || resp.Results[0].Val != want {
			t.Fatalf("read %d: %v %+v, want %d", k, err, resp, want)
		}
	}
}

// TestFollowerRedirectLoopTerminates pins the no-spin property: a
// client bounced between two followers that (mis)advertise each other
// stops after MaxRedirects and surfaces the redirect instead of
// looping forever; pointed at a follower that advertises the real
// primary, it converges in one hop.
func TestFollowerRedirectLoopTerminates(t *testing.T) {
	const shards, keys = 2, 32
	prim, addrP := startPrimary(t, shards, keys, 0)
	defer prim.Stop()

	// Two followers deliberately advertising each other: the pathology
	// a half-updated cluster config produces mid-failover.
	fa, err := New(Options{
		Substrate: "tl2", Shards: shards, Keys: keys, Seed: 6,
		Follow: addrP, PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrA, err := fa.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Stop()
	fb, err := New(Options{
		Substrate: "tl2", Shards: shards, Keys: keys, Seed: 7,
		Follow: addrP, Advertise: addrA.String(), PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := fb.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Stop()
	fa.SetAdvertise(addrB.String()) // close the loop: A -> B -> A

	const maxRedirects = 4
	rc := kvapi.NewReconnectClient(addrA.String(), kvapi.ReconnectOptions{
		Seed: 9, MaxTries: 12, MaxRedirects: maxRedirects,
		BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	})
	defer rc.Close()
	done := make(chan struct{})
	var resp kvapi.Response
	var derr error
	go func() {
		resp, derr = rc.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 1, Val: 11}})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("client spun forever between the two followers")
	}
	if derr != nil {
		t.Fatalf("bounced write should fail cleanly with a response, got transport error: %v", derr)
	}
	if resp.Status != kvapi.StatusRedirect {
		t.Fatalf("bounced write status %s, want the surfaced redirect", resp.Status)
	}
	if got := rc.Stats().Redirects; got != maxRedirects {
		t.Fatalf("client followed %d redirects, want exactly MaxRedirects=%d", got, maxRedirects)
	}

	// Heal the config: A advertises the primary again; the same client
	// converges and the write lands.
	fa.SetAdvertise(addrP)
	rc2 := kvapi.NewReconnectClient(addrA.String(), kvapi.ReconnectOptions{
		Seed: 10, MaxTries: 12, MaxRedirects: maxRedirects,
		BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	})
	defer rc2.Close()
	resp2, err := rc2.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 2, Val: 22}})
	if err != nil || resp2.Status != kvapi.StatusOK {
		t.Fatalf("healed write: %v %+v", err, resp2)
	}
	if got := rc2.Stats().Redirects; got == 0 || got > maxRedirects {
		t.Fatalf("healed client used %d redirects, want 1..%d", got, maxRedirects)
	}
	if rc2.Addr() != addrP {
		t.Fatalf("healed client settled on %s, want primary %s", rc2.Addr(), addrP)
	}
}
