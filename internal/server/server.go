package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pushpull/internal/backend"
	"pushpull/internal/chaos"
	"pushpull/internal/kvapi"
	"pushpull/internal/mvcc"
	"pushpull/internal/obs"
	typedops "pushpull/internal/ops"
	"pushpull/internal/recovery"
	"pushpull/internal/repl"
	"pushpull/internal/serial"
	"pushpull/internal/shard"
	"pushpull/internal/wal"
)

// Options configure a Server.
type Options struct {
	// Substrate selects the TM implementation (default "tl2"); see
	// Substrates().
	Substrate string
	// Keys sizes the word substrates' address space (default 64).
	Keys int
	// Seed drives the retry policy, chaos plan derivations, and the
	// boosted map's skiplist levels (default 1).
	Seed int64
	// DisableCert drops shadow-machine certification (raw throughput).
	DisableCert bool
	// Shards > 1 serves through the hash-partitioned engine: one
	// independent machine (own WAL stream, recorder site, metrics
	// label) per shard, single-shard transactions routed to their home
	// shard unchanged, cross-shard ones through the journaled two-phase
	// coordinator (internal/shard).
	Shards int
	// Seq switches the cross-shard commit path from the coordinator
	// mutex to the deterministic sequencer (internal/seq): GSNs are
	// assigned at admission, one forced batch record per epoch replaces
	// the per-transaction force, and per-shard executors release commits
	// in GSN order. Ignored when Shards <= 1.
	Seq bool
	// BatchInterval is the sequencer's optional accumulation window
	// (zero = pure adaptive group commit: each epoch seals whatever
	// piled up during the previous force).
	BatchInterval time.Duration

	// MaxInflight bounds concurrently running transactions (default
	// 64); MaxQueue bounds waiters beyond that (default 2*MaxInflight;
	// negative means zero). Arrivals past both get StatusBusy.
	MaxInflight int
	MaxQueue    int

	// Retry is the server-side retry policy applied to every
	// transaction (default chaos.Default(Seed)).
	Retry *chaos.RetryPolicy
	// Plan, when non-nil, injects faults server-side: substrate
	// conflict sites plus WAL crash scheduling — so a load campaign
	// against a live server exercises the same certified chaos paths
	// as the in-process harnesses.
	Plan *chaos.Plan

	// WALDir backs the write-ahead log with segment files; Durable
	// keeps an in-memory WAL when WALDir is empty (tests, simulated
	// crashes). With neither, commits are not durable and no recovery
	// runs.
	WALDir       string
	Durable      bool
	SyncPolicy   wal.SyncPolicy
	GroupEvery   int
	SegmentBytes int
	// RecoverFrom, when non-nil, supplies the durable segment images
	// to recover from explicitly (the in-memory restart path); it
	// takes precedence over reading WALDir.
	RecoverFrom [][]byte
	// RecoverFromImage is the sharded equivalent (Shards > 1): the
	// multi-log durable image from ShardImage().
	RecoverFromImage *shard.Image

	// Suite receives all telemetry (default: a fresh obs.New()).
	Suite *obs.Suite

	// Replicate serves the replication poll endpoint (MsgReplPoll):
	// the server runs through the sharded engine even at Shards == 1,
	// with durable WALs forced on, so followers can stream its logs.
	Replicate bool
	// Epoch is the serving generation branded into the coordinator log
	// (zero means epoch 1 when replicating); a server taking over from
	// a dead primary passes the predecessor's epoch + 1.
	Epoch uint64
	// Advertise is the address write traffic should be redirected to.
	// On a follower it names the primary; on a primary it is unused.
	Advertise string
	// Follow makes this server a read-only follower of the primary at
	// the given address: it builds no substrate of its own, polls the
	// primary's durable streams into a warm-standby replica, serves
	// read-only transactions from the committed prefix, and redirects
	// writes to Advertise (or Follow when Advertise is empty). Shards,
	// Substrate, and Keys must match the primary's.
	Follow string
	// PollInterval paces the follower's catch-up loop (default 5ms).
	PollInterval time.Duration
	// LeaseTTL, when positive, arms lease-fenced acking: once a
	// supervisor has granted this server a lease (GrantLease), commits
	// are acknowledged only while the lease is unexpired — renewals
	// stopping (a partition, a dead supervisor) silence the primary by
	// itself, which is what bounds the cluster to at most one acking
	// primary per lease epoch. Zero leaves acking ungated (epoch
	// fencing still applies).
	LeaseTTL time.Duration
	// Clock is the lease's time source (tests and sweeps drive it
	// manually); nil means time.Now.
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Substrate == "" {
		o.Substrate = "tl2"
	}
	if o.Keys <= 0 {
		o.Keys = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 2 * o.MaxInflight
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 5 * time.Millisecond
	}
	if o.Follow != "" && o.Advertise == "" {
		o.Advertise = o.Follow
	}
	if o.Replicate && o.WALDir == "" {
		o.Durable = true // followers poll durable bytes; there must be some
	}
	if o.Replicate && o.Epoch == 0 {
		o.Epoch = 1 // brand the stream so fencing has a generation to compare
	}
	return o
}

// Server is the transactional KV service.
type Server struct {
	opts  Options
	suite *obs.Suite
	be    Backend
	eng   *shard.Engine // non-nil when Shards > 1
	log   *wal.Log
	hook  *wal.MachineHook
	group *GroupCommit
	gate  *gate

	recovered recovery.Report
	seeded    int

	// Replication (nil/empty on an unreplicated server). role is
	// guarded by replMu: "primary", "follower", or "promoting".
	replMu   sync.RWMutex
	role     string
	replica  *repl.Replica
	puller   *repl.Puller
	upstream *kvapi.ReconnectClient
	pollStop chan struct{}
	pollWG   sync.WaitGroup

	seq      atomic.Uint64 // transaction name counter
	sessions atomic.Int64  // open interactive sessions

	// Exactly-once sessions (single-machine path; the sharded engine
	// keeps its own table) and the serving lease.
	sessMu    sync.Mutex
	sess      map[uint64]srvSessEntry
	dedupHits atomic.Uint64
	lease     *Lease

	mu      sync.Mutex
	ln      net.Listener
	httpLns map[net.Listener]struct{}
	conns   map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

// New builds a server: recover-and-certify first (refusing to serve a
// durable image that does not re-certify), then the substrate backend
// wired to the WAL, group commit, chaos, and the observability suite,
// then the recovered state re-applied as fresh certified transactions
// (the restart checkpoint). The listener is not opened here — call
// Start or Serve.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	suite := opts.Suite
	if suite == nil {
		suite = obs.New()
	}
	s := &Server{opts: opts, suite: suite, conns: make(map[net.Conn]struct{})}
	s.gate = newGate(opts.MaxInflight, opts.MaxQueue)
	if opts.LeaseTTL > 0 {
		// Followers get the lease too: a promotion inherits it, and the
		// supervisor grants the serving epoch into it.
		s.lease = NewLease(opts.LeaseTTL, opts.Clock)
	}

	// A follower builds no substrate: it folds the primary's shipped
	// bytes into a warm standby and serves reads from that.
	if opts.Follow != "" {
		return s.newFollower()
	}

	// The sharded engine owns recovery, WALs, backends, and chaos for
	// every partition; the server keeps admission control and the wire.
	// Replicated serving always runs through the engine (even with one
	// shard): it owns the durable streams followers poll.
	if opts.Shards > 1 || opts.Replicate {
		eng, err := shard.New(shard.Options{
			Shards: opts.Shards, Substrate: opts.Substrate, Keys: opts.Keys,
			Seed: opts.Seed, DisableCert: opts.DisableCert,
			Retry: opts.Retry, Plan: opts.Plan,
			WALDir: opts.WALDir, Durable: opts.Durable,
			SyncPolicy: opts.SyncPolicy, GroupEvery: opts.GroupEvery,
			SegmentBytes: opts.SegmentBytes,
			RecoverFrom:  opts.RecoverFromImage, Suite: suite,
			Epoch: opts.Epoch, AckCheck: s.ackCheck,
			Seq: opts.Seq, BatchInterval: opts.BatchInterval,
		})
		if err != nil {
			return nil, err
		}
		s.eng = eng
		s.group = NewGroupCommit(nil) // unused; keeps Stats total
		if opts.Replicate {
			s.role = rolePrimary
			suite.Metrics.ReplRoleSet(rolePrimary)
		}
		return s, nil
	}

	var inj *chaos.Faults
	if opts.Plan != nil {
		inj = opts.Plan.Injector()
		inj.SetObserver(func(site chaos.Site) { suite.Metrics.FaultFired(string(site)) })
	}
	retry := opts.Retry
	if retry == nil {
		retry = chaos.Default(opts.Seed)
	}
	if retry.OnRetry == nil {
		retry.OnRetry = suite.Metrics.RetryObserved
	}

	// Crash recovery happens before anything serves: replay the
	// durable image, certify it, and only then build the substrate.
	segs := opts.RecoverFrom
	if segs == nil && opts.WALDir != "" {
		var err error
		if segs, err = readWALDir(opts.WALDir); err != nil {
			return nil, err
		}
	}
	if len(segs) > 0 {
		reg, err := RegistryFor(opts.Substrate)
		if err != nil {
			return nil, err
		}
		rep, err := recovery.RecoverAndCertify(segs, reg)
		if err != nil {
			return nil, fmt.Errorf("server: refusing to serve: %w", err)
		}
		s.recovered = rep
	}

	if opts.WALDir != "" || opts.Durable {
		if opts.WALDir != "" {
			// The fresh log wants its segment numbering back; the
			// recovered image is preserved under an epoch subdirectory.
			if err := archiveSegments(opts.WALDir); err != nil {
				return nil, err
			}
		}
		// Under SyncOnCommit the log itself would fsync inside Append —
		// which the machine hook calls while the substrate holds its
		// commit locks and the shadow session is open. Stretching the
		// locked section ~100x starves recorder compaction (it needs an
		// idle instant), the certification window grows without bound,
		// and throughput death-spirals. Instead the server opens the
		// log non-syncing and forces it at the commit *barrier* (log
		// force at commit): the group-commit leader runs Sync outside
		// every lock, after the CMT record is appended and before the
		// client is acknowledged, so durability is unchanged and
		// concurrent committers share one fsync.
		logPolicy := opts.SyncPolicy
		forceAtBarrier := opts.SyncPolicy == wal.SyncOnCommit
		if forceAtBarrier {
			logPolicy = wal.SyncNever
		}
		log, err := wal.Open(wal.Options{
			Dir: opts.WALDir, SegmentBytes: opts.SegmentBytes,
			Policy: logPolicy, GroupEvery: opts.GroupEvery,
			Chaos: inj, SyncObserver: suite.Metrics.WALSyncObserved,
		})
		if err != nil {
			return nil, fmt.Errorf("server: opening WAL: %w", err)
		}
		s.log = log
		if forceAtBarrier {
			s.group = NewGroupCommit(backend.ForceSync(log))
		} else {
			s.group = NewGroupCommit(s.log)
		}
	}
	if s.group == nil {
		s.group = NewGroupCommit(nil)
	}

	be, err := NewBackend(Config{
		Substrate: opts.Substrate, Keys: opts.Keys, Seed: opts.Seed,
		DisableCert: opts.DisableCert, Injector: inj, Retry: retry,
		Durable: s.group,
	})
	if err != nil {
		return nil, err
	}
	s.be = be
	if rec := be.Recorder(); rec != nil {
		if s.log != nil {
			s.hook = wal.NewMachineHook(s.log)
			rec.AttachWAL(s.hook)
		}
		rec.SetSite(opts.Substrate)
		rec.AttachSink(suite)
	}
	if store := be.Snapshots(); store != nil {
		store.SetObserver(suite.Metrics)
	}

	// Re-apply the recovered image through normal certified (and, now,
	// WAL-logged) transactions: the new log starts with a checkpoint.
	if len(s.recovered.State.Txns) > 0 {
		n, err := be.Seed(s.recovered.State, "recover")
		if err != nil {
			return nil, err
		}
		s.seeded = n
	}
	if err := s.seedServerSessions(); err != nil {
		return nil, err
	}
	return s, nil
}

// Start opens a TCP listener on addr (use "127.0.0.1:0" in tests) and
// serves in the background; the returned address is the bound one.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("server: already stopped")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// handleConn speaks the framed binary protocol on one connection. One
// interactive transaction may be open per connection; dropping the
// connection aborts it (undo, lock release, shadow rewind) before the
// handler exits — the no-leak guarantee the shutdown tests assert.
func (s *Server) handleConn(conn net.Conn) {
	var cs connState
	defer func() {
		if cs.sess != nil {
			_ = cs.sess.abandon()
			s.endSession(&cs)
		}
		if cs.stx != nil {
			cs.stx.Abandon()
			s.endSession(&cs)
		}
		if cs.ro != nil {
			s.endROSession(&cs)
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.wg.Done()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		req, err := kvapi.ReadRequest(br)
		if err != nil {
			return
		}
		resp := s.dispatch(&cs, req)
		if err := kvapi.WriteResponse(bw, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// connState is one connection's open interactive transaction: a
// single-machine session, a sharded transaction, or a read-only
// snapshot transaction — never more than one.
type connState struct {
	sess *session
	stx  *shard.Txn
	ro   *roTxn
}

func (cs *connState) open() bool { return cs.sess != nil || cs.stx != nil || cs.ro != nil }

// dispatch routes one request and feeds the per-endpoint request
// counters and latency histograms.
func (s *Server) dispatch(cs *connState, req kvapi.Request) kvapi.Response {
	t0 := time.Now()
	var resp kvapi.Response
	// One consistent view of the replication state per request: role,
	// engine, replica, and redirect target move together under replMu
	// during promotion/demotion, and reading them piecemeal races the
	// poll loop and the supervisor. A follower (or a mid-promotion
	// server, whose engine is not yet serving) answers read-only
	// one-shots from the replica and points everything transactional at
	// the primary.
	rv := s.roleView()
	switch req.Type {
	case kvapi.MsgPing:
		resp = kvapi.Response{Status: kvapi.StatusOK}
	case kvapi.MsgTxn:
		switch {
		case req.ReadOnly:
			resp = s.doTxnReadOnly(rv, req.Ops, req.Session, req.Seq)
		case rv.follower():
			resp = s.doTxnFollower(rv, req.Ops)
		default:
			resp = s.doTxnSession(req.Ops, req.Session, req.Seq)
		}
	case kvapi.MsgBegin:
		switch {
		case req.ReadOnly:
			resp = s.doBeginRO(cs, rv)
		case rv.follower():
			resp = s.redirectResponse(rv.advertise)
		default:
			resp = s.doBegin(cs)
		}
	case kvapi.MsgGet, kvapi.MsgPut:
		resp = s.doOp(cs, req)
	case kvapi.MsgCommit:
		resp = s.doEnd(cs, true)
	case kvapi.MsgAbort:
		resp = s.doEnd(cs, false)
	case kvapi.MsgReplPoll:
		resp = s.doReplPoll(req)
	default:
		resp = kvapi.Response{Status: kvapi.StatusError,
			Msg: fmt.Sprintf("unknown message type %d", byte(req.Type))}
	}
	s.suite.Metrics.RequestObserved(req.Type.String(), resp.Status.String(), time.Since(t0))
	return resp
}

// DoTxn executes ops as one one-shot transaction under admission
// control — exported for the HTTP fallback and in-process callers.
func (s *Server) DoTxn(ops []kvapi.Op) kvapi.Response {
	return s.DoTxnSession(ops, 0, 0)
}

// DoTxnSession is DoTxn carrying an exactly-once session identity
// (session 0 means none).
func (s *Server) DoTxnSession(ops []kvapi.Op, session, seqNo uint64) kvapi.Response {
	t0 := time.Now()
	resp := s.doTxnSession(ops, session, seqNo)
	s.suite.Metrics.RequestObserved("http.txn", resp.Status.String(), time.Since(t0))
	return resp
}

func (s *Server) doTxn(ops []kvapi.Op) kvapi.Response {
	return s.doTxnSession(ops, 0, 0)
}

func (s *Server) doTxnSession(ops []kvapi.Op, session, seqNo uint64) kvapi.Response {
	s.replMu.RLock()
	eng := s.eng
	s.replMu.RUnlock()
	if eng == nil && s.be == nil {
		// A follower reached outside dispatch (the HTTP fallback):
		// read-only one-shots are served, everything else redirects.
		return s.doTxnFollower(s.roleView(), ops)
	}
	ok, hint := s.gate.acquire()
	if !ok {
		return busyResponse(hint)
	}
	defer s.gate.release()
	if eng != nil {
		return s.doTxnSharded(eng, ops, session, seqNo)
	}
	return s.doTxnLocal(ops, session, seqNo)
}

// doTxnLocal runs a one-shot on the single-machine substrate (gate
// already held), with the server-level exactly-once table: a dedup hit
// answers with the original results, and a committing sessioned
// transaction logs a TSession record in the same WAL entry group as
// its commit, so recovery rebuilds the table alongside the state.
func (s *Server) doTxnLocal(ops []kvapi.Op, session, seqNo uint64) kvapi.Response {
	if session != 0 {
		if resp, done := s.sessLookup(session, seqNo); done {
			return resp
		}
	}
	results := make([]kvapi.Result, len(ops))
	attempts := uint32(0)
	var typedN, commuteN uint64
	name := txnName(s.seq.Add(1))
	err := s.be.Atomic(name, func(v View) error {
		attempts++
		// Only the attempt that commits gets to report its commute
		// hits: an aborted attempt's shares were rewound with it.
		typedN, commuteN = 0, 0
		for i, op := range ops {
			switch op.Kind {
			case kvapi.OpGet:
				val, found, err := v.Get(op.Key)
				if err != nil {
					return err
				}
				results[i] = kvapi.Result{Val: val, Found: found}
			case kvapi.OpPut:
				if err := v.Put(op.Key, op.Val); err != nil {
					return err
				}
				results[i] = kvapi.Result{}
			default:
				tv, ok := v.(backend.TypedView)
				if !ok {
					return fmt.Errorf("op %v: typed operations unsupported on this substrate", op.Kind)
				}
				val, commuted, err := tv.Typed(typedops.Code(op.Kind), op.Key, op.Val, op.Arg)
				if err != nil {
					return err
				}
				typedN++
				if commuted {
					commuteN++
				}
				results[i] = kvapi.Result{Val: val, Found: true}
			}
		}
		if session != 0 {
			// Inside the callback the commit record has not been
			// appended yet: the TSession record lands before it, so a
			// durable commit implies a durable dedup entry and a lost
			// commit takes its entry down with it.
			if aerr := s.appendSessionRecord(session, seqNo, name, results); aerr != nil {
				return aerr
			}
		}
		return nil
	})
	retries := uint32(0)
	if attempts > 0 {
		retries = attempts - 1
	}
	if err != nil {
		return abortResponse(err, retries)
	}
	if typedN > 0 {
		s.countTyped(typedN, commuteN)
	}
	if session != 0 {
		s.sessRemember(session, seqNo, results)
	}
	return kvapi.Response{Status: kvapi.StatusOK, Results: results, Retries: retries, CommuteHits: commuteN}
}

// countTyped feeds the committed attempt's typed/commute tallies into
// the metrics suite (the loop index spreads the stripes).
func (s *Server) countTyped(typed, commuted uint64) {
	for i := uint64(0); i < typed; i++ {
		s.suite.Metrics.TypedOp(i)
	}
	for i := uint64(0); i < commuted; i++ {
		s.suite.Metrics.CommuteHit(i)
	}
}

// doTxnSharded routes a one-shot transaction through the sharded
// engine (gate already held); the engine owns the exactly-once table
// on this path.
func (s *Server) doTxnSharded(eng *shard.Engine, ops []kvapi.Op, session, seqNo uint64) kvapi.Response {
	sops := make([]shard.Op, len(ops))
	for i, op := range ops {
		// shard.OpKind values mirror kvapi.OpKind numerically (pinned
		// by TestShardKindsMatchWire), so the conversion is a cast.
		sops[i] = shard.Op{Kind: shard.OpKind(op.Kind), Key: op.Key, Val: op.Val, Arg: op.Arg}
	}
	var (
		res     []shard.Result
		retries uint32
		dedup   bool
		err     error
	)
	if session != 0 {
		res, retries, dedup, err = eng.DoSession(session, seqNo, sops)
	} else {
		res, retries, err = eng.Do(sops)
	}
	if err != nil {
		return abortResponse(err, retries)
	}
	results := make([]kvapi.Result, len(res))
	var typedN, commuteN uint64
	for i, r := range res {
		results[i] = kvapi.Result{Val: r.Val, Found: r.Found}
		if sops[i].Kind.Typed() {
			typedN++
		}
		if r.Commuted {
			commuteN++
		}
	}
	if typedN > 0 && !dedup {
		s.countTyped(typedN, commuteN)
	}
	return kvapi.Response{Status: kvapi.StatusOK, Results: results, Retries: retries, DedupHit: dedup, CommuteHits: commuteN}
}

func (s *Server) doBegin(cs *connState) kvapi.Response {
	if cs.open() {
		return kvapi.Response{Status: kvapi.StatusError, Msg: "transaction already open on this connection"}
	}
	ok, hint := s.gate.acquire()
	if !ok {
		return busyResponse(hint)
	}
	s.sessions.Add(1)
	s.replMu.RLock()
	eng := s.eng
	s.replMu.RUnlock()
	if eng != nil {
		cs.stx = eng.Begin()
		return kvapi.Response{Status: kvapi.StatusOK}
	}
	sess := newSession(sessionName(s.seq.Add(1)))
	go sess.run(s.be)
	cs.sess = sess
	return kvapi.Response{Status: kvapi.StatusOK}
}

func (s *Server) doOp(cs *connState, req kvapi.Request) kvapi.Response {
	if !cs.open() {
		return kvapi.Response{Status: kvapi.StatusError, Msg: "no open transaction (send begin first)"}
	}
	if cs.ro != nil {
		return s.doOpRO(cs, req)
	}
	if tx := cs.stx; tx != nil {
		var r kvapi.Result
		var err error
		if req.Type == kvapi.MsgGet {
			r.Val, r.Found, err = tx.Get(req.Key)
		} else {
			err = tx.Put(req.Key, req.Val)
		}
		if err != nil {
			retries := tx.Retries()
			s.endSession(cs)
			return abortResponse(err, retries)
		}
		return kvapi.Response{Status: kvapi.StatusOK, Results: []kvapi.Result{r}}
	}
	sess := cs.sess
	c := sessCmd{key: req.Key, val: req.Val}
	if req.Type == kvapi.MsgGet {
		c.kind = cmdGet
	} else {
		c.kind = cmdPut
	}
	sess.cmds <- c
	select {
	case r := <-sess.replies:
		return kvapi.Response{
			Status:  kvapi.StatusOK,
			Results: []kvapi.Result{{Val: r.val, Found: r.found}},
		}
	case err := <-sess.done:
		// The transaction died processing this operation (retry budget,
		// replay divergence): the session is over.
		retries := sess.retries
		s.endSession(cs)
		return abortResponse(err, retries)
	}
}

func (s *Server) doEnd(cs *connState, commit bool) kvapi.Response {
	if !cs.open() {
		return kvapi.Response{Status: kvapi.StatusError, Msg: "no open transaction"}
	}
	if cs.ro != nil {
		return s.doEndRO(cs, commit)
	}
	if tx := cs.stx; tx != nil {
		var err error
		if commit {
			err = tx.Commit()
		} else {
			err = tx.Abort()
		}
		retries := tx.Retries()
		s.endSession(cs)
		if commit && err != nil {
			return abortResponse(err, retries)
		}
		return kvapi.Response{Status: kvapi.StatusOK, Retries: retries}
	}
	sess := cs.sess
	kind := cmdAbort
	if commit {
		kind = cmdCommit
	}
	sess.cmds <- sessCmd{kind: kind}
	err := <-sess.done
	retries := sess.retries
	s.endSession(cs)
	if commit {
		if err != nil {
			return abortResponse(err, retries)
		}
		return kvapi.Response{Status: kvapi.StatusOK, Retries: retries}
	}
	// A requested abort "succeeds" whatever the substrate returned —
	// the transaction is gone either way.
	return kvapi.Response{Status: kvapi.StatusOK, Retries: retries}
}

// endSession releases everything doBegin acquired.
func (s *Server) endSession(cs *connState) {
	cs.sess, cs.stx = nil, nil
	s.gate.release()
	s.sessions.Add(-1)
}

func busyResponse(hint time.Duration) kvapi.Response {
	ms := uint32(hint / time.Millisecond)
	if ms == 0 {
		ms = 1
	}
	return kvapi.Response{Status: kvapi.StatusBusy, RetryAfterMs: ms,
		Msg: "admission control: transaction queue full"}
}

// abortResponse maps a transaction's terminal error onto the wire.
func abortResponse(err error, retries uint32) kvapi.Response {
	switch {
	case errors.Is(err, chaos.ErrRetriesExhausted):
		return kvapi.Response{Status: kvapi.StatusAborted, Retries: retries,
			Msg: "retry budget exhausted"}
	case errors.Is(err, errReplayDiverged), errors.Is(err, shard.ErrReplayDiverged):
		return kvapi.Response{Status: kvapi.StatusAborted, Retries: retries,
			Msg: err.Error()}
	case errors.Is(err, errClientAbort), errors.Is(err, shard.ErrClientAbort):
		return kvapi.Response{Status: kvapi.StatusOK, Retries: retries}
	case errors.Is(err, shard.ErrCoordCrashed):
		return kvapi.Response{Status: kvapi.StatusAborted, Retries: retries,
			Msg: err.Error()}
	default:
		return kvapi.Response{Status: kvapi.StatusError, Retries: retries, Msg: err.Error()}
	}
}

// Stop closes the listener and every connection, then waits for all
// handlers — and through them all open sessions — to finish. Safe to
// call more than once.
func (s *Server) Stop() {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for ln := range s.httpLns {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.stopPolling()
	if s.log != nil {
		_ = s.log.Close() // a simulated-crash log refuses; that's fine
	}
	s.replMu.RLock()
	eng, up := s.eng, s.upstream
	s.replMu.RUnlock()
	if eng != nil {
		_ = eng.Close()
	}
	if up != nil {
		_ = up.Close()
	}
}

// Stats is the /stats snapshot.
type Stats struct {
	Substrate     string `json:"substrate"`
	Shards        int    `json:"shards,omitempty"`
	Commits       uint64 `json:"commits"`
	Aborts        uint64 `json:"aborts"`
	CrossCommits  uint64 `json:"cross_commits,omitempty"`
	CrossAborts   uint64 `json:"cross_aborts,omitempty"`
	Redos         uint64 `json:"redos,omitempty"`
	Sessions      int64  `json:"open_sessions"`
	InFlight      int    `json:"inflight"`
	Rejected      uint64 `json:"admission_rejected"`
	GroupBarriers uint64 `json:"group_barriers"`
	GroupSyncs    uint64 `json:"group_syncs"`
	RecoveredTxns int    `json:"recovered_txns"`
	SeededTxns    int    `json:"seeded_txns"`
	InDoubtFixed  int    `json:"in_doubt_resolved,omitempty"`
	WALCrashed    bool   `json:"wal_crashed"`

	// Exactly-once sessions and lease fencing.
	DedupHits  uint64 `json:"dedup_hits,omitempty"`
	LeaseEpoch uint64 `json:"lease_epoch,omitempty"`

	// Deterministic ordered commit (zero when the sequencer is off).
	SeqEpochs   uint64 `json:"seq_epochs,omitempty"`
	SeqBatched  uint64 `json:"seq_batched,omitempty"`
	SeqMaxBatch int    `json:"seq_max_batch,omitempty"`

	// Typed (commutativity-aware) operations executed and the subset
	// that shared an abstract lock with a commuting peer.
	TypedOps    uint64 `json:"ops_typed,omitempty"`
	CommuteHits uint64 `json:"ops_commute_hits,omitempty"`

	// Read-only snapshot transactions and the version store behind
	// them (zero when certification is disabled).
	ROCommits     uint64 `json:"ro_commits,omitempty"`
	ROAborts      uint64 `json:"ro_aborts,omitempty"`
	MVCCVersions  int64  `json:"mvcc_versions,omitempty"`
	MVCCSnapshots int64  `json:"mvcc_snapshots_open,omitempty"`
	MVCCWatermark uint64 `json:"mvcc_watermark,omitempty"`

	// Replicated serving (empty when unreplicated).
	Role       string            `json:"role,omitempty"`
	Epoch      uint64            `json:"epoch,omitempty"`
	ReplLag    map[string]uint64 `json:"repl_lag_records,omitempty"`
	Watermarks []repl.Cursor     `json:"repl_watermarks,omitempty"`
	ReplReads  uint64            `json:"repl_read_txns,omitempty"`
	Poisoned   bool              `json:"repl_poisoned,omitempty"`
}

// Stats snapshots the server.
func (s *Server) Stats() Stats {
	st := s.statsBase()
	st.ROCommits = s.suite.Metrics.ROCommits()
	st.ROAborts = s.suite.Metrics.ROAborts()
	st.TypedOps = s.suite.Metrics.TypedOps()
	st.CommuteHits = s.suite.Metrics.CommuteHits()
	var ms mvcc.Stats
	rv := s.roleView()
	switch {
	case rv.eng != nil:
		ms = rv.eng.MVCCStats()
	case rv.replica != nil:
		ms = rv.replica.MVCCStats()
	case s.be != nil:
		if store := s.be.Snapshots(); store != nil {
			ms = store.StoreStats()
		}
	}
	st.MVCCVersions = ms.Versions
	st.MVCCSnapshots = int64(ms.SnapshotsOpen)
	st.MVCCWatermark = ms.Watermark
	return st
}

func (s *Server) statsBase() Stats {
	s.replMu.RLock()
	role, eng, replica := s.role, s.eng, s.replica
	s.replMu.RUnlock()
	if eng != nil {
		es := eng.Stats()
		return Stats{
			Substrate: s.opts.Substrate, Shards: es.Shards,
			Commits: es.Commits, Aborts: es.Aborts,
			CrossCommits: es.CrossCommits, CrossAborts: es.CrossAborts,
			Redos:    es.Redos,
			Sessions: s.sessions.Load(), InFlight: s.gate.inFlight(),
			Rejected:      s.gate.rejectedCount(),
			GroupBarriers: es.GroupBarriers, GroupSyncs: es.GroupSyncs,
			RecoveredTxns: es.RecoveredTxns, SeededTxns: es.SeededTxns,
			InDoubtFixed: es.InDoubtFixed, WALCrashed: es.WALCrashed,
			DedupHits: es.DedupHits, LeaseEpoch: es.LeaseEpoch,
			SeqEpochs: es.SeqEpochs, SeqBatched: es.SeqBatched,
			SeqMaxBatch: es.SeqMaxBatch,
			Role:        role, Epoch: eng.Epoch(),
		}
	}
	if replica != nil {
		rs := replica.Stats()
		st := Stats{
			Substrate: s.opts.Substrate, Shards: s.opts.Shards,
			Sessions: s.sessions.Load(), InFlight: s.gate.inFlight(),
			Rejected: s.gate.rejectedCount(),
			Role:     role, Epoch: rs.Epoch,
			ReplLag: s.ReplLag(), ReplReads: rs.ReadTxns,
			Poisoned: rs.Poisoned,
		}
		for i, ss := range rs.Streams {
			st.Watermarks = append(st.Watermarks, ss.Watermark)
			// Commits counts committed branches folded onto the read
			// image (cross-shard txns count once per shard; the last
			// stream is the coordinator and is excluded).
			if i < s.opts.Shards {
				st.Commits += uint64(ss.Committed)
			}
		}
		return st
	}
	commits, aborts := s.be.Stats()
	barriers, syncs := s.group.Stats()
	st := Stats{
		Substrate: s.opts.Substrate, Commits: commits, Aborts: aborts,
		Sessions: s.sessions.Load(), InFlight: s.gate.inFlight(),
		Rejected:      s.gate.rejectedCount(),
		GroupBarriers: barriers, GroupSyncs: syncs,
		RecoveredTxns: len(s.recovered.State.Txns), SeededTxns: s.seeded,
		DedupHits: s.dedupHits.Load(),
	}
	if s.log != nil {
		st.WALCrashed = s.log.Crashed()
	}
	return st
}

// Suite exposes the observability suite (metrics handler, leak check).
func (s *Server) Suite() *obs.Suite { return s.suite }

// Backend exposes the substrate backend (tests).
func (s *Server) Backend() Backend { return s.be }

// Recovered reports what startup recovery replayed.
func (s *Server) Recovered() recovery.Report { return s.recovered }

// GroupStats reports the commit-batching amortization counters.
func (s *Server) GroupStats() (barriers, syncs uint64) {
	if eng := s.Engine(); eng != nil {
		return eng.GroupStats()
	}
	return s.group.Stats()
}

// WALSegments returns the durable image (for simulated-crash restart).
func (s *Server) WALSegments() [][]byte {
	if s.log == nil {
		return nil
	}
	return s.log.Segments()
}

// Engine exposes the sharded engine (nil when unsharded and
// unreplicated, or on a not-yet-promoted follower).
func (s *Server) Engine() *shard.Engine {
	s.replMu.RLock()
	defer s.replMu.RUnlock()
	return s.eng
}

// ShardImage returns the sharded durable image (for simulated-crash
// restart through Options.RecoverFromImage); nil when not sharded.
func (s *Server) ShardImage() *shard.Image {
	eng := s.Engine()
	if eng == nil {
		return nil
	}
	return eng.Image()
}

// ShardRecovered reports the sharded recovery certificate.
func (s *Server) ShardRecovered() shard.MultiReport {
	eng := s.Engine()
	if eng == nil {
		return shard.MultiReport{}
	}
	return eng.Recovered()
}

// WALCrashed reports whether the simulated process death fired.
func (s *Server) WALCrashed() bool {
	if eng := s.Engine(); eng != nil {
		return eng.Crashed()
	}
	return s.log != nil && s.log.Crashed()
}

// LeakCheck asserts quiescent cleanliness: no open sessions, no
// in-flight admissions, no unpopped spans, no leaked substrate locks.
// Call after Stop.
func (s *Server) LeakCheck() error {
	if n := s.sessions.Load(); n != 0 {
		return fmt.Errorf("server: %d interactive session(s) leaked", n)
	}
	if n := s.gate.inFlight(); n != 0 {
		return fmt.Errorf("server: %d admission slot(s) leaked", n)
	}
	if err := s.suite.LeakCheck(); err != nil {
		return err
	}
	s.replMu.RLock()
	eng := s.eng
	s.replMu.RUnlock()
	if eng != nil {
		return eng.LeakCheck()
	}
	if s.be == nil {
		return nil // follower: no substrate of its own
	}
	return s.be.LeakCheck()
}

// FinalCheck is the full post-run certificate: the shadow machine's
// final check, its invariants, commit-order serializability over the
// certified window, substrate conservation laws, and WAL I/O health.
func (s *Server) FinalCheck() error {
	s.replMu.RLock()
	eng, replica := s.eng, s.replica
	s.replMu.RUnlock()
	if eng != nil {
		return eng.FinalCheck()
	}
	if replica != nil {
		// A follower's certificate is the full recovery certificate
		// over its shipped bytes — exactly what a promotion would run.
		if err := replica.Poisoned(); err != nil {
			return err
		}
		_, err := replica.Certify()
		return err
	}
	if err := s.be.CheckInvariant(); err != nil {
		return err
	}
	if s.hook != nil {
		if err := s.hook.Err(); err != nil {
			return fmt.Errorf("server: WAL hook: %w", err)
		}
	}
	rec := s.be.Recorder()
	if rec == nil {
		return nil
	}
	if err := rec.FinalCheck(); err != nil {
		return err
	}
	if err := rec.Machine().Verify(); err != nil {
		return fmt.Errorf("server: machine invariants: %w", err)
	}
	if rep := serial.CheckCommitOrder(rec.Machine()); !rep.Serializable {
		return fmt.Errorf("server: commit order not serializable: %s", rep.Reason)
	}
	return nil
}
