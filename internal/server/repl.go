package server

import (
	"errors"
	"fmt"
	"time"

	"pushpull/internal/kvapi"
	typedops "pushpull/internal/ops"
	"pushpull/internal/repl"
	"pushpull/internal/shard"
)

// Replication roles. An unreplicated server has the empty role.
const (
	rolePrimary   = "primary"
	roleFollower  = "follower"
	rolePromoting = "promoting"
)

// ErrNotFollower reports a promotion or re-follow request on a server
// that is not currently a follower.
var ErrNotFollower = errors.New("server: not a follower")

// newFollower finishes construction for Options.Follow: a warm-standby
// replica, a puller resuming from its watermarks, and a reconnecting
// upstream client. The poll loop starts immediately — the follower
// converges whether or not it ever opens a listener.
func (s *Server) newFollower() (*Server, error) {
	cfg := repl.Config{
		Substrate: s.opts.Substrate, Shards: s.opts.Shards, Keys: s.opts.Keys,
	}
	s.replica = repl.NewReplica(cfg)
	s.replica.SetObserver(s.suite.Metrics)
	s.puller = repl.NewPuller(s.replica, 0)
	// The poll loop must fail fast when the primary dies — promotion
	// waits for it — so the upstream client backs off briefly and gives
	// up early; the next tick retries anyway.
	s.upstream = kvapi.NewReconnectClient(s.opts.Follow, kvapi.ReconnectOptions{
		Seed: s.opts.Seed, BaseDelay: time.Millisecond,
		MaxDelay: 50 * time.Millisecond, MaxTries: 4,
	})
	s.group = NewGroupCommit(nil) // unused; keeps Stats total
	s.role = roleFollower
	s.suite.Metrics.ReplRoleSet(roleFollower)
	s.startPolling()
	return s, nil
}

// Role returns the replication role ("" when unreplicated).
func (s *Server) Role() string {
	s.replMu.RLock()
	defer s.replMu.RUnlock()
	return s.role
}

// Replica exposes the follower's warm standby (nil otherwise).
func (s *Server) Replica() *repl.Replica {
	s.replMu.RLock()
	defer s.replMu.RUnlock()
	return s.replica
}

// pollSource adapts the upstream primary's MsgReplPoll endpoint to the
// repl.Source poll interface.
type pollSource struct {
	c       *kvapi.ReconnectClient
	streams int
}

func (ps pollSource) Streams() int { return ps.streams }

func (ps pollSource) PollStream(stream, seg, off, max int) (repl.StreamChunk, error) {
	resp, err := ps.c.ReplPoll(stream, seg, off, max)
	if err != nil {
		return repl.StreamChunk{}, err
	}
	if resp.Status != kvapi.StatusOK {
		return repl.StreamChunk{}, fmt.Errorf("repl poll: %s: %s", resp.Status, resp.Msg)
	}
	return repl.StreamChunk{
		Data: resp.Data, Next: resp.Next, More: resp.More,
		Epoch: resp.Epoch, Appends: resp.Appends,
	}, nil
}

func (s *Server) startPolling() {
	stop := make(chan struct{})
	s.replMu.Lock()
	s.pollStop = stop
	s.replMu.Unlock()
	s.pollWG.Add(1)
	go s.pollLoop(stop)
}

// stopPolling is idempotent; it blocks until the loop exits.
func (s *Server) stopPolling() {
	s.replMu.Lock()
	stop := s.pollStop
	s.pollStop = nil
	s.replMu.Unlock()
	if stop != nil {
		close(stop)
	}
	s.pollWG.Wait()
}

func (s *Server) pollLoop(stop chan struct{}) {
	defer s.pollWG.Done()
	t := time.NewTicker(s.opts.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			// The primary being down is not an error worth surfacing
			// here: the reconnecting client retries, and the lag gauge
			// tells the story. Poison would surface on every sync and
			// is reported by FinalCheck and /stats.
			_, _ = s.SyncNow()
		}
	}
}

// SyncNow drains the upstream's available durable bytes into the
// replica and refreshes the lag gauges — the poll loop's body, exported
// so tests and operators can force deterministic catch-up.
func (s *Server) SyncNow() (int, error) {
	s.replMu.RLock()
	puller, up := s.puller, s.upstream
	cfg := puller.Replica().Config()
	s.replMu.RUnlock()
	n, err := puller.Sync(pollSource{c: up, streams: cfg.Streams()})
	for i, lag := range puller.Lag() {
		s.suite.Metrics.ReplLagSet(streamLabel(cfg, i), lag)
	}
	return n, err
}

func streamLabel(cfg repl.Config, i int) string {
	if i == cfg.CoordStream() {
		return "coord"
	}
	return fmt.Sprintf("shard-%d", i)
}

// redirectResponse points a client at where writes go. The address
// comes from the caller's roleView — taken in the same replMu
// acquisition as the role itself, so a redirect never pairs the old
// role with the new primary's address mid-failover.
func (s *Server) redirectResponse(addr string) kvapi.Response {
	return kvapi.Response{
		Status: kvapi.StatusRedirect, Redirect: addr,
		Msg: "follower: writes go to the primary",
	}
}

// doTxnFollower serves an unflagged all-Get one-shot from the
// replica's pinned snapshots — a consistent (stale-bounded) certified
// cut. Any write redirects the whole transaction to the primary.
// (Clients that declare ReadOnly skip this path and the gate both.)
func (s *Server) doTxnFollower(rv roleView, ops []kvapi.Op) kvapi.Response {
	ok, hint := s.gate.acquire()
	if !ok {
		return busyResponse(hint)
	}
	defer s.gate.release()
	keys := make([]uint64, len(ops))
	cget := make([]bool, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case kvapi.OpGet:
			keys[i] = op.Key
		case kvapi.OpCGet:
			// Committed counter cells fold into the follower's read
			// image under the high-bit namespace.
			keys[i] = typedops.KeyBit | op.Key
			cget[i] = true
		default:
			return s.redirectResponse(rv.advertise)
		}
	}
	vals, found, err := rv.replica.ReadTxn(keys)
	if err != nil {
		return kvapi.Response{Status: kvapi.StatusError, Msg: err.Error()}
	}
	results := make([]kvapi.Result, len(ops))
	for i := range ops {
		results[i] = kvapi.Result{Val: vals[i], Found: found[i]}
		if cget[i] {
			// An absent counter cell reads as 0, matching the typed
			// substrate's answer.
			results[i].Found = true
		}
	}
	return kvapi.Response{Status: kvapi.StatusOK, Results: results}
}

// doReplPoll answers a follower's cursor read over one durable stream.
func (s *Server) doReplPoll(req kvapi.Request) kvapi.Response {
	s.replMu.RLock()
	eng := s.eng
	s.replMu.RUnlock()
	if eng == nil {
		return kvapi.Response{Status: kvapi.StatusError,
			Msg: "not a replication source (follower, or server not replicated)"}
	}
	max := req.Max
	const maxPoll = 256 << 10
	if max <= 0 || max > maxPoll {
		max = maxPoll
	}
	data, next, more, err := eng.ReadDurable(req.Stream, req.Seg, req.Off, max)
	if err != nil {
		return kvapi.Response{Status: kvapi.StatusError, Msg: err.Error()}
	}
	return kvapi.Response{
		Status: kvapi.StatusOK, Data: data, Next: next, More: more,
		Epoch: eng.Epoch(), Appends: eng.StreamAppends(req.Stream),
	}
}

// Promote turns a follower into the serving primary: stop polling, take
// one final drain of whatever the (presumed dead) primary still
// answers, run the full recovery certificate over the shipped bytes —
// a follower may only take over with a certificate in hand — and boot a
// fresh engine from the certified image at the next epoch. The returned
// report is the promotion certificate (merged commit order, in-doubt
// resolutions, per-shard chains).
//
// The new engine re-logs the checkpoint into fresh streams: a new
// timeline. Surviving followers of the old primary must re-follow with
// a fresh replica (Refollow); their old bytes are not a prefix of the
// new streams.
func (s *Server) Promote() (shard.MultiReport, error) {
	s.replMu.Lock()
	if s.role != roleFollower {
		role := s.role
		s.replMu.Unlock()
		return shard.MultiReport{}, fmt.Errorf("%w: role %q", ErrNotFollower, role)
	}
	s.role = rolePromoting
	s.replMu.Unlock()
	s.suite.Metrics.ReplRoleSet(rolePromoting)

	s.stopPolling()
	_, _ = s.SyncNow() // best-effort final drain; the primary is likely dead
	if err := s.replica.Poisoned(); err != nil {
		s.demoteTo(roleFollower)
		return shard.MultiReport{}, fmt.Errorf("server: refusing promotion: %w", err)
	}
	mr, err := s.replica.Certify()
	if err != nil {
		s.demoteTo(roleFollower)
		return shard.MultiReport{}, fmt.Errorf("server: promotion certificate failed: %w", err)
	}
	epoch := mr.Epoch
	if e := s.replica.Epoch(); e > epoch {
		epoch = e
	}
	eng, err := shard.New(shard.Options{
		Shards: s.opts.Shards, Substrate: s.opts.Substrate, Keys: s.opts.Keys,
		Seed: s.opts.Seed, DisableCert: s.opts.DisableCert,
		Retry:   s.opts.Retry,
		Durable: true, SyncPolicy: s.opts.SyncPolicy,
		GroupEvery: s.opts.GroupEvery, SegmentBytes: s.opts.SegmentBytes,
		RecoverFrom: s.replica.Image(), Suite: s.suite,
		Epoch: epoch + 1, AckCheck: s.ackCheck,
	})
	if err != nil {
		s.demoteTo(roleFollower)
		return shard.MultiReport{}, fmt.Errorf("server: promotion boot failed: %w", err)
	}
	s.replMu.Lock()
	s.eng = eng
	s.role = rolePrimary
	s.replMu.Unlock()
	s.suite.Metrics.ReplRoleSet(rolePrimary)
	if s.upstream != nil {
		_ = s.upstream.Close()
	}
	return mr, nil
}

// demoteTo restores a failed promotion to a polling follower.
func (s *Server) demoteTo(role string) {
	s.replMu.Lock()
	s.role = role
	restart := s.pollStop == nil
	s.replMu.Unlock()
	s.suite.Metrics.ReplRoleSet(role)
	if restart {
		s.startPolling()
	}
}

// Demote fences a (possibly zombie) primary back into a follower of
// addr: the lease is force-expired so nothing acks, the engine is
// fenced at the successor's epoch and torn down, and a fresh warm
// standby starts catching up from the new primary's streams. This is
// the supervisor's move when a deposed primary comes back mid-run —
// the returning node must not ack a single commit under its old lease.
func (s *Server) Demote(addr string, epoch uint64) error {
	s.replMu.Lock()
	if s.role != rolePrimary {
		role := s.role
		s.replMu.Unlock()
		return fmt.Errorf("server: demote: role %q is not primary", role)
	}
	eng := s.eng
	s.eng = nil
	s.role = roleFollower
	s.replMu.Unlock()
	if s.lease != nil {
		s.lease.Expire()
	}
	if eng != nil {
		if epoch > eng.Epoch() {
			eng.Fence(epoch)
		}
		_ = eng.Close()
	}
	s.suite.Metrics.ReplRoleSet(roleFollower)
	s.replMu.Lock()
	cfg := repl.Config{
		Substrate: s.opts.Substrate, Shards: s.opts.Shards, Keys: s.opts.Keys,
	}
	if s.replica != nil {
		cfg = s.replica.Config()
	}
	s.replica = repl.NewReplica(cfg)
	s.replica.SetObserver(s.suite.Metrics)
	s.puller = repl.NewPuller(s.replica, 0)
	s.opts.Follow, s.opts.Advertise = addr, addr
	up := s.upstream
	s.replMu.Unlock()
	if up != nil {
		up.Retarget(addr)
	} else {
		s.replMu.Lock()
		s.upstream = kvapi.NewReconnectClient(addr, kvapi.ReconnectOptions{
			Seed: s.opts.Seed, BaseDelay: time.Millisecond,
			MaxDelay: 50 * time.Millisecond, MaxTries: 4,
		})
		s.replMu.Unlock()
	}
	s.startPolling()
	return nil
}

// Refollow re-points a follower at a new primary — the surviving
// followers' move after a promotion. The new primary's streams are a
// new timeline (its boot re-logged the checkpoint into fresh segments),
// so the replica is rebuilt from scratch and catches up from byte zero.
func (s *Server) Refollow(addr string) error {
	s.replMu.Lock()
	if s.role != roleFollower {
		role := s.role
		s.replMu.Unlock()
		return fmt.Errorf("%w: role %q", ErrNotFollower, role)
	}
	s.replMu.Unlock()
	s.stopPolling()
	s.replMu.Lock()
	cfg := s.replica.Config()
	s.replica = repl.NewReplica(cfg)
	s.replica.SetObserver(s.suite.Metrics)
	s.puller = repl.NewPuller(s.replica, 0)
	s.opts.Follow, s.opts.Advertise = addr, addr
	s.replMu.Unlock()
	s.upstream.Retarget(addr)
	s.startPolling()
	return nil
}

// SetAdvertise re-points where this server redirects write traffic —
// the supervisor (or an operator) updates it as the primary moves.
func (s *Server) SetAdvertise(addr string) {
	s.replMu.Lock()
	s.opts.Advertise = addr
	s.replMu.Unlock()
}

// ReplLag snapshots the last observed per-stream record lag, labeled.
func (s *Server) ReplLag() map[string]uint64 {
	s.replMu.RLock()
	puller := s.puller
	s.replMu.RUnlock()
	if puller == nil {
		return nil
	}
	cfg := puller.Replica().Config()
	out := make(map[string]uint64)
	for i, lag := range puller.Lag() {
		out[streamLabel(cfg, i)] = lag
	}
	return out
}
