package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pushpull/internal/kvapi"
)

// startServer boots a server on a loopback port and registers cleanup
// that asserts the satellite invariant: every shutdown path must pass
// both leak checks (Env-style substrate locks via Backend.LeakCheck and
// obs span/metrics cleanliness via Suite.LeakCheck, both inside
// Server.LeakCheck).
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Stop()
		if err := s.LeakCheck(); err != nil {
			t.Errorf("leak check after shutdown: %v", err)
		}
	})
	return s, addr.String()
}

func dial(t *testing.T, addr string) *kvapi.Client {
	t.Helper()
	c, err := kvapi.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerOneShot(t *testing.T) {
	s, addr := startServer(t, Options{Substrate: "tl2"})
	c := dial(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	resp, err := c.Do([]kvapi.Op{
		{Kind: kvapi.OpPut, Key: 1, Val: 42},
		{Kind: kvapi.OpPut, Key: 2, Val: 43},
		{Kind: kvapi.OpGet, Key: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != kvapi.StatusOK {
		t.Fatalf("txn status = %v (%s)", resp.Status, resp.Msg)
	}
	if len(resp.Results) != 3 || resp.Results[2].Val != 42 || !resp.Results[2].Found {
		t.Fatalf("results = %+v", resp.Results)
	}
	if v, _ := s.Backend().ReadKey(2); v != 43 {
		t.Fatalf("key 2 = %d, want 43", v)
	}
	if err := s.FinalCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestServerInteractive(t *testing.T) {
	_, addr := startServer(t, Options{Substrate: "tl2"})
	c := dial(t, addr)

	if resp, err := c.Begin(); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("begin: %v %v", resp, err)
	}
	// A second begin on the same connection is a protocol error.
	if resp, _ := c.Begin(); resp.Status != kvapi.StatusError {
		t.Fatalf("double begin status = %v, want error", resp.Status)
	}
	if resp, err := c.Put(7, 70); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("put: %v %v", resp, err)
	}
	resp, err := c.Get(7)
	if err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("get: %v %v", resp, err)
	}
	if resp.Results[0].Val != 70 {
		t.Fatalf("read-your-writes: got %d, want 70", resp.Results[0].Val)
	}
	if resp, err := c.Commit(); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("commit: %v %v", resp, err)
	}

	// Abort path: the write must not land.
	c.Begin()
	c.Put(8, 80)
	if resp, err := c.Abort(); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("abort: %v %v", resp, err)
	}
	resp, err = c.Do([]kvapi.Op{{Kind: kvapi.OpGet, Key: 8}})
	if err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("get after abort: %v %v", resp, err)
	}
	if resp.Results[0].Val != 0 {
		t.Fatalf("aborted write leaked: key 8 = %d", resp.Results[0].Val)
	}

	// Ops without an open transaction are protocol errors.
	if resp, _ := c.Get(1); resp.Status != kvapi.StatusError {
		t.Fatalf("get without begin = %v, want error", resp.Status)
	}
	if resp, _ := c.Commit(); resp.Status != kvapi.StatusError {
		t.Fatalf("commit without begin = %v, want error", resp.Status)
	}
}

// TestServerDroppedConnection is the satellite-2 regression: a client
// that disconnects mid-transaction must not leak the session, its span,
// or its substrate locks. Exercised on pess too, whose interactive
// transactions hold real 2PL locks while awaiting the client.
func TestServerDroppedConnection(t *testing.T) {
	for _, sub := range []string{"tl2", "pess", "boost"} {
		sub := sub
		t.Run(sub, func(t *testing.T) {
			s, addr := startServer(t, Options{Substrate: sub})
			c, err := kvapi.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			if resp, err := c.Begin(); err != nil || resp.Status != kvapi.StatusOK {
				t.Fatalf("begin: %v %v", resp, err)
			}
			if resp, err := c.Put(3, 33); err != nil || resp.Status != kvapi.StatusOK {
				t.Fatalf("put: %v %v", resp, err)
			}
			c.Close() // vanish mid-transaction

			// The handler notices the dead connection and aborts the
			// session; wait for the open-session gauge to drain.
			deadline := time.Now().Add(2 * time.Second)
			for s.sessions.Load() != 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if n := s.sessions.Load(); n != 0 {
				t.Fatalf("%d session(s) still open after disconnect", n)
			}
			// The abandoned write must not have committed, and a new
			// client must not be blocked by leaked locks.
			c2 := dial(t, addr)
			resp, err := c2.Do([]kvapi.Op{{Kind: kvapi.OpGet, Key: 3}})
			if err != nil || resp.Status != kvapi.StatusOK {
				t.Fatalf("get after drop: %v %v", resp, err)
			}
			if resp.Results[0].Val != 0 {
				t.Fatalf("abandoned write leaked: key 3 = %d", resp.Results[0].Val)
			}
			s.Stop()
			if err := s.LeakCheck(); err != nil {
				t.Fatal(err)
			}
			if err := s.FinalCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestServerBackpressure pins admission control: with one slot and no
// queue, a second concurrent transaction is rejected with StatusBusy
// and a retry hint.
func TestServerBackpressure(t *testing.T) {
	_, addr := startServer(t, Options{Substrate: "tl2", MaxInflight: 1, MaxQueue: -1})
	c1 := dial(t, addr)
	c2 := dial(t, addr)

	if resp, err := c1.Begin(); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("begin: %v %v", resp, err)
	}
	resp, err := c2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != kvapi.StatusBusy {
		t.Fatalf("second begin = %v, want busy", resp.Status)
	}
	if resp.RetryAfterMs == 0 {
		t.Fatal("busy response carries no Retry-After hint")
	}
	// One-shots hit the same gate.
	if resp, _ := c2.Do([]kvapi.Op{{Kind: kvapi.OpGet, Key: 0}}); resp.Status != kvapi.StatusBusy {
		t.Fatalf("one-shot during full gate = %v, want busy", resp.Status)
	}
	if resp, err := c1.Commit(); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("commit: %v %v", resp, err)
	}
	// Slot freed: the retry succeeds.
	if resp, err := c2.Begin(); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("begin after free: %v %v", resp, err)
	}
	c2.Abort()
}

// TestServerConcurrentIncrements runs interactive read-modify-write
// transactions from many connections and checks conservation.
func TestServerConcurrentIncrements(t *testing.T) {
	s, addr := startServer(t, Options{Substrate: "tl2"})
	const workers, each = 6, 20
	var wg sync.WaitGroup
	var committed atomic64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := kvapi.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < each; i++ {
				for {
					resp, err := c.Begin()
					if err != nil {
						t.Error(err)
						return
					}
					if resp.Status == kvapi.StatusBusy {
						time.Sleep(time.Duration(resp.RetryAfterMs) * time.Millisecond)
						continue
					}
					g, err := c.Get(11)
					if err != nil {
						t.Error(err)
						return
					}
					if g.Status != kvapi.StatusOK {
						break // aborted mid-session; retry whole txn
					}
					p, err := c.Put(11, g.Results[0].Val+1)
					if err != nil {
						t.Error(err)
						return
					}
					if p.Status != kvapi.StatusOK {
						break
					}
					cm, err := c.Commit()
					if err != nil {
						t.Error(err)
						return
					}
					if cm.Status == kvapi.StatusOK {
						committed.add(1)
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	got, _ := s.Backend().ReadKey(11)
	if got != committed.load() {
		t.Fatalf("counter = %d, committed = %d: lost updates", got, committed.load())
	}
	if committed.load() == 0 {
		t.Fatal("nothing committed")
	}
	if err := s.FinalCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestServerHTTP(t *testing.T) {
	s, addr := startServer(t, Options{Substrate: "tl2"})
	haddr, err := s.StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + haddr.String()

	// Binary write, HTTP read-back.
	c := dial(t, addr)
	if resp, err := c.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 5, Val: 55}}); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("binary put: %v %v", resp, err)
	}
	body := strings.NewReader(`{"ops":[{"op":"get","key":5},{"op":"put","key":6,"val":66}]}`)
	hr, err := http.Post(base+"/txn", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(hr.Body)
		t.Fatalf("POST /txn = %d: %s", hr.StatusCode, b)
	}
	var tr kvapi.TxnResponseJSON
	if err := json.NewDecoder(hr.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Status != "ok" || len(tr.Results) != 2 || tr.Results[0].Val != 55 {
		t.Fatalf("http txn response: %+v", tr)
	}
	if v, _ := s.Backend().ReadKey(6); v != 66 {
		t.Fatalf("http put missing: key 6 = %d", v)
	}

	for _, path := range []string{"/healthz", "/stats"} {
		r, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, r.StatusCode)
		}
		r.Body.Close()
	}

	// The per-endpoint request metrics reach the Prometheus surface.
	r, err := http.Get(base + "/debug/pushpull")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(r.Body)
	r.Body.Close()
	for _, want := range []string{
		`pushpull_requests_total{endpoint="txn",outcome="ok"}`,
		`pushpull_requests_total{endpoint="http.txn",outcome="ok"}`,
		`pushpull_request_seconds_bucket{endpoint="txn",`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, prom)
		}
	}
}

// TestServerStopWithOpenSessions: shutting down with live interactive
// transactions must abort them and leave nothing behind.
func TestServerStopWithOpenSessions(t *testing.T) {
	s, err := New(Options{Substrate: "pess"})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var clients []*kvapi.Client
	for i := 0; i < 4; i++ {
		c, err := kvapi.Dial(addr.String())
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		if resp, err := c.Begin(); err != nil || resp.Status != kvapi.StatusOK {
			t.Fatalf("begin %d: %v %v", i, resp, err)
		}
		if resp, err := c.Put(uint64(i), int64(i)); err != nil || resp.Status != kvapi.StatusOK {
			t.Fatalf("put %d: %v %v", i, resp, err)
		}
	}
	s.Stop()
	for _, c := range clients {
		c.Close()
	}
	if err := s.LeakCheck(); err != nil {
		t.Fatalf("leaks after Stop with open sessions: %v", err)
	}
	if err := s.FinalCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestServerStatsShape(t *testing.T) {
	s, addr := startServer(t, Options{Substrate: "tl2"})
	c := dial(t, addr)
	c.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: 1, Val: 1}})
	st := s.Stats()
	if st.Substrate != "tl2" || st.Commits == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := json.Marshal(st); err != nil {
		t.Fatal(err)
	}
}

// atomic64 is a tiny mutex-guarded tally for test goroutines.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
