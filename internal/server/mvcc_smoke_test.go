package server

import (
	"testing"
	"time"

	"pushpull/internal/kvapi"
)

// TestMVCCSmoke is the `make mvcc-smoke` target: a replicated sharded
// primary plus a follower, a 90%-read-only skewed wire campaign on
// both the one-shot and interactive paths, and the headline claim
// checked live — the read-only class commits without a single abort
// while the writer mix churns underneath. Then follower snapshot
// reads (served locally from the replica's pinned cut, certified),
// stats visibility, and a certified shutdown of both nodes.
func TestMVCCSmoke(t *testing.T) {
	const shards, keys = 2, 32
	prim, err := New(Options{
		Substrate: "tl2", Shards: shards, Keys: keys, Seed: 31,
		Replicate: true, SegmentBytes: 2 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrP, err := prim.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fol, err := New(Options{
		Substrate: "tl2", Shards: shards, Keys: keys, Seed: 32,
		Follow: addrP.String(), PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrF, err := fol.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// The campaign: 90% declared read-only transactions over a hot
	// skewed key range, writers churning the rest. Any RO abort at all
	// fails the build — that is the property the MVCC store exists for.
	for _, leg := range []struct {
		name        string
		interactive bool
	}{{"oneshot", false}, {"interactive", true}} {
		res, err := kvapi.RunLoad(kvapi.LoadParams{
			Addr: addrP.String(), Clients: 6,
			Duration: 300 * time.Millisecond,
			Keys:     keys, ReadPct: 50, OpsPerTxn: 3,
			Skew: 1.2, ReadOnlyPct: 90,
			Interactive: leg.interactive, Seed: 31,
			Shards: shards, CrossPct: 20,
		})
		if err != nil {
			t.Fatalf("%s load: %v", leg.name, err)
		}
		if res.Errors != 0 {
			t.Fatalf("%s load: %d StatusError outcomes", leg.name, res.Errors)
		}
		if res.ROCommits == 0 {
			t.Fatalf("%s load: no read-only transaction ever committed", leg.name)
		}
		if res.ROAborts != 0 {
			t.Fatalf("%s load: %d read-only aborts — the never-abort claim is broken", leg.name, res.ROAborts)
		}
		t.Logf("%s: %s", leg.name, res)
	}

	// Seed a known footprint, let the follower converge, then read it
	// back through the follower's flagged snapshot path.
	w, err := kvapi.Dial(addrP.String())
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64]int64)
	for k := uint64(0); k < keys; k++ {
		v := int64(9000 + k)
		resp, err := w.Do([]kvapi.Op{{Kind: kvapi.OpPut, Key: k, Val: v}})
		if err != nil || resp.Status != kvapi.StatusOK {
			t.Fatalf("seed write %d: %v %+v", k, err, resp)
		}
		want[k] = v
	}
	w.Close()
	waitCaughtUp(t, fol)

	rdr, err := kvapi.Dial(addrF.String())
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]kvapi.Op, 0, len(want))
	for k := range want {
		ops = append(ops, kvapi.Op{Kind: kvapi.OpGet, Key: k})
	}
	resp, err := rdr.DoReadOnly(ops)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != kvapi.StatusOK {
		t.Fatalf("follower snapshot read refused: %s %s", resp.Status, resp.Msg)
	}
	if resp.Snapshot == 0 {
		t.Fatal("follower snapshot read carries no watermark")
	}
	for i, op := range ops {
		if r := resp.Results[i]; !r.Found || r.Val != want[op.Key] {
			t.Fatalf("follower snapshot read %d: got (%d,%v), want %d",
				op.Key, r.Val, r.Found, want[op.Key])
		}
	}

	// Interactive read-only session on the follower — the one
	// interactive class a follower serves locally — and the protocol
	// boundary: a Put inside it is refused and kills the session.
	if resp, err = rdr.BeginReadOnly(); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("follower BeginReadOnly: %v %+v", err, resp)
	}
	if resp, err = rdr.Get(3); err != nil || resp.Status != kvapi.StatusOK || resp.Results[0].Val != want[3] {
		t.Fatalf("follower RO session get: %v %+v", err, resp)
	}
	if resp, err = rdr.Commit(); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("follower RO session commit: %v %+v", err, resp)
	}
	if resp, err = rdr.BeginReadOnly(); err != nil || resp.Status != kvapi.StatusOK {
		t.Fatalf("follower BeginReadOnly (2nd): %v %+v", err, resp)
	}
	if resp, err = rdr.Put(3, 1); err != nil {
		t.Fatal(err)
	}
	if resp.Status == kvapi.StatusOK {
		t.Fatal("a Put inside a read-only session was accepted")
	}
	rdr.Close()

	// Both nodes surface the read-only and version-store gauges.
	stP, stF := prim.Stats(), fol.Stats()
	if stP.ROCommits == 0 || stP.MVCCVersions == 0 || stP.MVCCWatermark == 0 {
		t.Fatalf("primary stats missing mvcc evidence: %+v", stP)
	}
	if stF.ROCommits == 0 || stF.MVCCVersions == 0 {
		t.Fatalf("follower stats missing mvcc evidence: %+v", stF)
	}
	if stP.ROAborts != 0 {
		t.Fatalf("primary counted %d read-only aborts", stP.ROAborts)
	}
	// The follower counted one RO abort: the rejected in-session Put.
	if stF.ROAborts != 1 {
		t.Fatalf("follower RO aborts = %d, want exactly the rejected Put", stF.ROAborts)
	}

	// Certified shutdown, both nodes.
	prim.Stop()
	fol.Stop()
	for name, srv := range map[string]*Server{"primary": prim, "follower": fol} {
		if err := srv.LeakCheck(); err != nil {
			t.Fatalf("%s leak check: %v", name, err)
		}
		if err := srv.FinalCheck(); err != nil {
			t.Fatalf("%s final check: %v", name, err)
		}
	}
}
