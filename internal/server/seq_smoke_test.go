package server

import (
	"testing"
	"time"

	"pushpull/internal/kvapi"
	"pushpull/internal/wal"
)

// TestSeqSmoke is the `make seq-smoke` target: the shard smoke shape
// driven through the deterministic ordered-commit path. A 4-shard
// durable server boots with the sequencer (-seq), runs a mixed
// one-shot + interactive campaign with a cross-shard-heavy mix over the
// wire, then crash-restarts from the multi-log image — recovery must
// fold the forced batch records, leave zero transactions in doubt, and
// re-certify the merged global commit order before serving resumes on
// the sequenced path again.
func TestSeqSmoke(t *testing.T) {
	const shards = 4
	s, err := New(Options{
		Substrate: "tl2", Shards: shards, Keys: 32 * shards, Seed: 11,
		Durable: true, SyncPolicy: wal.SyncOnCommit,
		Seq: true, BatchInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	for _, leg := range []struct {
		name        string
		interactive bool
	}{{"oneshot", false}, {"interactive", true}} {
		res, err := kvapi.RunLoad(kvapi.LoadParams{
			Addr: addr.String(), Clients: 6,
			Duration: 300 * time.Millisecond,
			Keys:     32 * shards, ReadPct: 50, OpsPerTxn: 3,
			Skew: 1.2, Interactive: leg.interactive, Seed: 11,
			Shards: shards, CrossPct: 50,
		})
		if err != nil {
			t.Fatalf("%s load: %v", leg.name, err)
		}
		if res.Errors != 0 {
			t.Fatalf("%s load: %d StatusError outcomes", leg.name, res.Errors)
		}
		if res.Commits == 0 {
			t.Fatalf("%s load committed nothing", leg.name)
		}
		t.Logf("seq/%s: %s", leg.name, res)
	}

	st := s.Stats()
	if st.CrossCommits == 0 {
		t.Fatal("no cross-shard commits — the 50% cross mix never spanned shards")
	}
	if st.SeqEpochs == 0 || st.SeqBatched == 0 {
		t.Fatalf("sequencer never sealed an epoch: %+v", st)
	}
	if st.SeqBatched < st.CrossCommits {
		t.Fatalf("cross commits (%d) bypassed the sequencer (batched %d)",
			st.CrossCommits, st.SeqBatched)
	}
	t.Logf("seq: %d commits (%d cross) across %d epochs (max batch %d)",
		st.Commits, st.CrossCommits, st.SeqEpochs, st.SeqMaxBatch)

	img := s.ShardImage()
	s.Stop()
	if err := s.LeakCheck(); err != nil {
		t.Fatalf("leak check: %v", err)
	}
	if err := s.FinalCheck(); err != nil {
		t.Fatalf("final certification: %v", err)
	}

	// Crash-restart mid-history: the durable image ends wherever the
	// last batch force left it, so recovery folds batch records, rolls
	// forward any unforced branch CMTs, and must certify with zero
	// transactions in doubt.
	s2, err := New(Options{
		Substrate: "tl2", Shards: shards, Keys: 32 * shards, Seed: 12,
		Durable: true, SyncPolicy: wal.SyncOnCommit,
		Seq: true, BatchInterval: time.Millisecond,
		RecoverFromImage: img,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	rep := s2.ShardRecovered()
	if rep.RecoveredTxns() == 0 {
		t.Fatal("restart recovered nothing")
	}
	if rep.InDoubt != 0 {
		t.Fatalf("restart left %d cross-shard transaction(s) in doubt", rep.InDoubt)
	}
	addr2, err := s2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	res, err := kvapi.RunLoad(kvapi.LoadParams{
		Addr: addr2.String(), Clients: 4,
		Duration: 200 * time.Millisecond,
		Keys:     32 * shards, ReadPct: 50, OpsPerTxn: 3,
		Skew: 1.2, Seed: 12, Shards: shards, CrossPct: 50,
	})
	if err != nil {
		t.Fatalf("post-restart load: %v", err)
	}
	if res.Errors != 0 || res.Commits == 0 {
		t.Fatalf("post-restart load: %s", res)
	}
	t.Logf("seq/restart: recovered %d txns (%d redos, %d batches, %d resolved), then %s",
		rep.RecoveredTxns(), len(rep.Redos), rep.CoordBatches, rep.InDoubtResolved, res)
	s2.Stop()
	if err := s2.LeakCheck(); err != nil {
		t.Fatalf("restart leak check: %v", err)
	}
	if err := s2.FinalCheck(); err != nil {
		t.Fatalf("restart final certification: %v", err)
	}
}
