package server

import (
	"sync/atomic"
	"time"
)

// gate is the admission-control valve: at most maxInflight
// transactions run concurrently, at most maxQueue more may wait for a
// slot, and arrivals beyond that are rejected immediately with a
// queue-depth-scaled Retry-After hint. Bounding the queue (not just
// the in-flight count) is what keeps overload latency bounded: a
// rejected client backs off at the edge instead of camping on the
// substrate's conflict window.
type gate struct {
	slots    chan struct{}
	maxQueue int
	queued   atomic.Int64
	rejected atomic.Uint64
	// hintUnit scales the Retry-After hint per queue's-worth of
	// backlog.
	hintUnit time.Duration
}

func newGate(maxInflight, maxQueue int) *gate {
	if maxInflight <= 0 {
		maxInflight = 64
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: maxQueue,
		hintUnit: 5 * time.Millisecond,
	}
}

// acquire claims a transaction slot, waiting in the bounded queue if
// none is free. ok=false means admission rejected the request; the
// hint says when to retry (longer the deeper the backlog already is).
func (g *gate) acquire() (ok bool, retryAfter time.Duration) {
	select {
	case g.slots <- struct{}{}:
		return true, 0
	default:
	}
	n := g.queued.Add(1)
	if int(n) > g.maxQueue {
		g.queued.Add(-1)
		g.rejected.Add(1)
		depth := 1 + int(n)/cap(g.slots)
		return false, time.Duration(depth) * g.hintUnit
	}
	g.slots <- struct{}{}
	g.queued.Add(-1)
	return true, 0
}

// release returns a slot.
func (g *gate) release() { <-g.slots }

// inFlight is the number of running transactions (snapshot).
func (g *gate) inFlight() int { return len(g.slots) }

// rejectedCount is the total of admission rejections.
func (g *gate) rejectedCount() uint64 { return g.rejected.Load() }
