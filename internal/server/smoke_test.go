package server

import (
	"os"
	"testing"
	"time"

	"pushpull/internal/kvapi"
	"pushpull/internal/wal"
)

// TestServeSmoke is the `make serve-smoke` target: boot a durable
// server on tl2 and hybrid, run a short mixed one-shot + interactive
// load campaign against it over the wire, and demand the full
// certificate — zero transport errors, zero leaked sessions/spans/
// locks, commit-order serializability, substrate conservation, and
// measured group-commit amortization.
func TestServeSmoke(t *testing.T) {
	for _, sub := range []string{"tl2", "hybrid"} {
		sub := sub
		t.Run(sub, func(t *testing.T) {
			s, err := New(Options{
				Substrate: sub, Keys: 32, Seed: 11,
				Durable: true, SyncPolicy: wal.SyncEveryRecord,
			})
			if err != nil {
				t.Fatal(err)
			}
			addr, err := s.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}

			for _, leg := range []struct {
				name        string
				interactive bool
			}{{"oneshot", false}, {"interactive", true}} {
				res, err := kvapi.RunLoad(kvapi.LoadParams{
					Addr: addr.String(), Clients: 6,
					Duration: 300 * time.Millisecond,
					Keys:     32, ReadPct: 50, OpsPerTxn: 3,
					Skew: 1.2, Interactive: leg.interactive, Seed: 11,
				})
				if err != nil {
					t.Fatalf("%s load: %v", leg.name, err)
				}
				if res.Errors != 0 {
					t.Fatalf("%s load: %d StatusError outcomes", leg.name, res.Errors)
				}
				if res.Commits == 0 {
					t.Fatalf("%s load committed nothing", leg.name)
				}
				t.Logf("%s/%s: %s", sub, leg.name, res)
			}

			barriers, syncs := s.GroupStats()
			if syncs == 0 || barriers < syncs {
				t.Fatalf("group commit stats look wrong: %d barriers, %d syncs", barriers, syncs)
			}
			t.Logf("%s: group commit %d barriers / %d syncs (%.1fx amortization)",
				sub, barriers, syncs, float64(barriers)/float64(syncs))

			s.Stop()
			if err := s.LeakCheck(); err != nil {
				t.Fatalf("leak check: %v", err)
			}
			if err := s.FinalCheck(); err != nil {
				t.Fatalf("final certification: %v", err)
			}
		})
	}
}

// TestServeCampaign is the long-form acceptance run (set
// PUSHPULL_SERVE_CAMPAIGN=1): a 30-second, 8-client certified campaign
// on tl2 and hybrid with a crash-restart leg in the middle — the
// restarted server recovers to a certified prefix before taking the
// second half of the traffic.
func TestServeCampaign(t *testing.T) {
	if os.Getenv("PUSHPULL_SERVE_CAMPAIGN") == "" {
		t.Skip("set PUSHPULL_SERVE_CAMPAIGN=1 to run the 30s campaign")
	}
	for _, sub := range []string{"tl2", "hybrid"} {
		sub := sub
		t.Run(sub, func(t *testing.T) {
			run := func(s *Server, d time.Duration, interactive bool) kvapi.LoadResult {
				addr, err := s.Start("127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				res, err := kvapi.RunLoad(kvapi.LoadParams{
					Addr: addr.String(), Clients: 8, Duration: d,
					Keys: 64, ReadPct: 60, OpsPerTxn: 4, Skew: 1.1,
					Interactive: interactive, Seed: 23,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Errors != 0 {
					t.Fatalf("%d StatusError outcomes", res.Errors)
				}
				return res
			}

			// First half, then simulated process death mid-campaign.
			s1, err := New(Options{Substrate: sub, Keys: 64, Seed: 23,
				Durable: true, SyncPolicy: wal.SyncOnCommit})
			if err != nil {
				t.Fatal(err)
			}
			res1 := run(s1, 15*time.Second, false)
			t.Logf("%s first half:  %s", sub, res1)
			segs := s1.WALSegments()
			s1.Stop()
			if err := s1.LeakCheck(); err != nil {
				t.Fatal(err)
			}

			// Restart: certified recovery before traffic resumes.
			s2, err := New(Options{Substrate: sub, Keys: 64, Seed: 23,
				Durable: true, SyncPolicy: wal.SyncOnCommit, RecoverFrom: segs})
			if err != nil {
				t.Fatalf("mid-campaign restart: %v", err)
			}
			if len(segs) > 0 && len(s2.Recovered().State.Txns) == 0 {
				t.Fatal("restart recovered nothing")
			}
			res2 := run(s2, 15*time.Second, true)
			t.Logf("%s second half: %s", sub, res2)
			s2.Stop()
			if err := s2.LeakCheck(); err != nil {
				t.Fatal(err)
			}
			if err := s2.FinalCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
