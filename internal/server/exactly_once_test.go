package server

import (
	"testing"

	"pushpull/internal/kvapi"
	"pushpull/internal/wal"
)

// TestServerSessionDedupSurvivesRestart pins exactly-once on the
// single-machine server path: a settled sessioned request is answered
// from the dedup table after a full WAL-image restart — the TSession
// record rides the same durability barrier as its commit — and the
// table carries across a SECOND restart because the boot re-logs it as
// checkpoint records on the fresh timeline.
func TestServerSessionDedupSurvivesRestart(t *testing.T) {
	s1, err := New(Options{
		Substrate: "tl2", Keys: 32, Seed: 42,
		Durable: true, SyncPolicy: wal.SyncEveryRecord,
	})
	if err != nil {
		t.Fatal(err)
	}
	ops := []kvapi.Op{
		{Kind: kvapi.OpPut, Key: 3, Val: 33},
		{Kind: kvapi.OpGet, Key: 3},
	}
	resp := s1.DoTxnSession(ops, 5, 1)
	if resp.Status != kvapi.StatusOK || resp.DedupHit {
		t.Fatalf("first execution: %+v", resp)
	}
	if resp.Results[1].Val != 33 || !resp.Results[1].Found {
		t.Fatalf("first execution results: %+v", resp.Results)
	}

	// An in-flight retry against the same incarnation dedups without
	// re-executing.
	again := s1.DoTxnSession(ops, 5, 1)
	if again.Status != kvapi.StatusOK || !again.DedupHit {
		t.Fatalf("live retry: %+v", again)
	}
	if again.Results[1].Val != 33 {
		t.Fatalf("live retry replayed wrong results: %+v", again.Results)
	}
	if s1.DedupHits() != 1 {
		t.Fatalf("dedup hits = %d, want 1", s1.DedupHits())
	}

	restart := func(from *Server) *Server {
		t.Helper()
		segs := from.WALSegments()
		from.Stop()
		s, err := New(Options{
			Substrate: "tl2", Keys: 32, Seed: 42,
			Durable: true, SyncPolicy: wal.SyncEveryRecord,
			RecoverFrom: segs,
		})
		if err != nil {
			t.Fatalf("restart: %v", err)
		}
		return s
	}

	// The table keeps each session's LATEST settled request, so every
	// round retries the newest sequence number (a dedup hit), proves a
	// lower one is stale, then settles a fresh one for the next round.
	s := restart(s1)
	latest := uint64(1)
	for round := 1; round <= 2; round++ {
		commits0 := s.Stats().Commits
		resp := s.DoTxnSession(ops, 5, latest)
		if resp.Status != kvapi.StatusOK || !resp.DedupHit {
			t.Fatalf("restart %d retry of seq %d: %+v", round, latest, resp)
		}
		if got := s.Stats().Commits; got != commits0 {
			t.Fatalf("restart %d dedup re-executed: commits %d -> %d", round, commits0, got)
		}
		// A stale sequence number is a protocol error, not a replay.
		if stale := s.DoTxnSession(ops, 5, latest-1); stale.Status != kvapi.StatusError {
			t.Fatalf("restart %d stale seq answered %+v", round, stale)
		}
		// The session keeps working: the next sequence number executes.
		latest++
		next := s.DoTxnSession([]kvapi.Op{{Kind: kvapi.OpPut, Key: 4, Val: int64(40 + round)}}, 5, latest)
		if next.Status != kvapi.StatusOK || next.DedupHit {
			t.Fatalf("restart %d fresh seq: %+v", round, next)
		}
		if round == 2 {
			s.Stop()
			break
		}
		// Second hop: surviving a restart OF the restart only works if
		// the boot checkpointed the table onto the fresh timeline.
		s = restart(s)
	}
}
