package server

import (
	"fmt"
	"os"
	"path/filepath"

	"pushpull/internal/wal"
)

// Startup recovery (the durable restart path):
//
//  1. read the previous epoch's wal-*.seg images (or take them from
//     Options.RecoverFrom for in-memory restarts),
//  2. recovery.RecoverAndCertify replays them against the substrate's
//     registry and refuses to proceed unless the committed prefix
//     re-certifies (shadow machine + commit-order serializability),
//  3. the old segment files are archived under epoch-NNN/ so a fresh
//     log can claim the wal-*.seg namespace,
//  4. the recovered state is re-applied through normal certified,
//     WAL-logged transactions — the new log therefore begins with a
//     checkpoint of everything that survived, and a second crash needs
//     only the new epoch.

// readWALDir loads the durable image; a missing directory is an empty
// image (first boot), not an error.
func readWALDir(dir string) ([][]byte, error) {
	segs, err := wal.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: reading WAL dir %s: %w", dir, err)
	}
	return segs, nil
}

// archiveSegments moves any wal-*.seg files in dir into the next free
// epoch-NNN subdirectory, preserving the pre-crash image for forensics
// while freeing the namespace for the new log.
func archiveSegments(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: creating WAL dir: %w", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return err
	}
	if len(matches) == 0 {
		return nil
	}
	var epoch string
	for n := 1; ; n++ {
		epoch = filepath.Join(dir, fmt.Sprintf("epoch-%03d", n))
		if _, err := os.Stat(epoch); os.IsNotExist(err) {
			break
		}
	}
	if err := os.MkdirAll(epoch, 0o755); err != nil {
		return fmt.Errorf("server: creating archive dir: %w", err)
	}
	for _, m := range matches {
		dst := filepath.Join(epoch, filepath.Base(m))
		if err := os.Rename(m, dst); err != nil {
			return fmt.Errorf("server: archiving %s: %w", m, err)
		}
	}
	return nil
}
