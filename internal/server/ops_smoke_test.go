package server

import (
	"testing"
	"time"

	"pushpull/internal/kvapi"
	"pushpull/internal/ops"
	"pushpull/internal/shard"
	"pushpull/internal/wal"
)

// TestShardKindsMatchWire pins the shard engine's OpKind values to the
// kvapi wire encoding and the ops.Code registry: the server and the
// shard router convert between the three by cast (server.go
// doTxnSharded, shard/branch.go typedDo), so a divergence would
// silently re-type operations crossing a layer.
func TestShardKindsMatchWire(t *testing.T) {
	pairs := []struct {
		s shard.OpKind
		w kvapi.OpKind
	}{
		{shard.OpGet, kvapi.OpGet},
		{shard.OpPut, kvapi.OpPut},
		{shard.OpAdd, kvapi.OpAdd},
		{shard.OpCGet, kvapi.OpCGet},
		{shard.OpWd, kvapi.OpWd},
		{shard.OpCAS, kvapi.OpCAS},
		{shard.OpSAdd, kvapi.OpSAdd},
		{shard.OpSRem, kvapi.OpSRem},
		{shard.OpSCont, kvapi.OpSCont},
		{shard.OpQPush, kvapi.OpQPush},
		{shard.OpQPop, kvapi.OpQPop},
	}
	if len(pairs) != ops.NumCodes {
		t.Fatalf("table covers %d kinds, ops.NumCodes=%d", len(pairs), ops.NumCodes)
	}
	for _, p := range pairs {
		if uint8(p.s) != uint8(p.w) {
			t.Errorf("shard.OpKind %d != kvapi.OpKind %d", p.s, p.w)
		}
	}
	for c := 0; c < ops.NumCodes; c++ {
		if shard.OpKind(c).Typed() != ops.Code(c).Typed() {
			t.Errorf("kind %d: shard.Typed()=%v, ops.Typed()=%v",
				c, shard.OpKind(c).Typed(), ops.Code(c).Typed())
		}
	}
}

// mustTxn sends one one-shot transaction and requires StatusOK.
func mustTxn(t *testing.T, c *kvapi.Client, txn []kvapi.Op) kvapi.Response {
	t.Helper()
	resp, err := c.Do(txn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != kvapi.StatusOK {
		t.Fatalf("txn status %s: %s", resp.Status, resp.Msg)
	}
	return resp
}

// typedCampaign drives a deterministic typed workload over the wire —
// counters (incr, wd, cas), a set (sadd/srem), and a queue
// (qpush/qpop) — and returns the expected counter image.
func typedCampaign(t *testing.T, c *kvapi.Client, rounds int) map[uint64]int64 {
	t.Helper()
	ctr := map[uint64]int64{}
	for i := 0; i < rounds; i++ {
		k := uint64(1 + i%4)
		mustTxn(t, c, []kvapi.Op{
			{Kind: kvapi.OpAdd, Key: k, Val: int64(i + 1)},
			{Kind: kvapi.OpSAdd, Key: 10, Val: int64(i % 5)},
			{Kind: kvapi.OpQPush, Key: 20, Val: int64(100 + i)},
		})
		ctr[k] += int64(i + 1)
	}
	// Remove one member, pop the queue head, withdraw within balance,
	// and land a cas — the full control/partial fragment on committed
	// state.
	mustTxn(t, c, []kvapi.Op{{Kind: kvapi.OpSRem, Key: 10, Val: 0}})
	resp := mustTxn(t, c, []kvapi.Op{{Kind: kvapi.OpQPop, Key: 20}})
	if v := resp.Results[0].Val; v != 100 {
		t.Fatalf("qpop = %d, want 100 (FIFO head)", v)
	}
	mustTxn(t, c, []kvapi.Op{{Kind: kvapi.OpWd, Key: 1, Val: 1}})
	ctr[1]--
	resp = mustTxn(t, c, []kvapi.Op{{Kind: kvapi.OpCAS, Key: 2, Val: ctr[2], Arg: 777}})
	if v := resp.Results[0].Val; v != ctr[2] {
		t.Fatalf("cas returned %d, want old value %d", v, ctr[2])
	}
	ctr[2] = 777
	// Cross-check the counters over the wire.
	for k, v := range ctr {
		resp := mustTxn(t, c, []kvapi.Op{{Kind: kvapi.OpCGet, Key: k}})
		if got := resp.Results[0].Val; got != v {
			t.Fatalf("cget %d = %d, want %d", k, got, v)
		}
	}
	return ctr
}

// TestOpsSmoke (ops-smoke, recovery half): a typed wire campaign on a
// durable boosted server, then a restart from the surviving WAL — the
// logical-op records must rebuild a byte-identical typed keyspace, and
// the restarted server must serve typed traffic against it.
func TestOpsSmoke(t *testing.T) {
	s1, err := New(Options{
		Substrate: "boost", Keys: 64, Seed: 11,
		Durable: true, SyncPolicy: wal.SyncEveryRecord,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, addr.String())
	ctr := typedCampaign(t, c, 24)

	want := s1.Backend().TypedState()
	if want == "{}" || want == "" {
		t.Fatalf("typed campaign left no typed state: %q", want)
	}
	if st := s1.Stats(); st.TypedOps == 0 {
		t.Fatalf("server counted no typed ops: %+v", st)
	}
	segs := s1.WALSegments()
	c.Close()
	s1.Stop()
	if err := s1.FinalCheck(); err != nil {
		t.Fatalf("pre-restart final check: %v", err)
	}
	if err := s1.LeakCheck(); err != nil {
		t.Fatalf("pre-restart leaks: %v", err)
	}

	// Restart. New refuses to serve unless recovery re-certifies, so
	// construction succeeding IS the certificate; the typed image must
	// match byte for byte.
	s2, err := New(Options{
		Substrate: "boost", Keys: 64, Seed: 11,
		Durable: true, SyncPolicy: wal.SyncEveryRecord,
		RecoverFrom: segs,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := s2.Backend().TypedState(); got != want {
		t.Fatalf("recovered typed state diverged:\n got %s\nwant %s", got, want)
	}

	// The recovered cells keep working: counters resume from their
	// recovered values, the queue pops in the surviving order.
	addr2, err := s2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c2 := dial(t, addr2.String())
	resp := mustTxn(t, c2, []kvapi.Op{
		{Kind: kvapi.OpAdd, Key: 1, Val: 5},
		{Kind: kvapi.OpCGet, Key: 1},
		{Kind: kvapi.OpQPop, Key: 20},
	})
	if got := resp.Results[1].Val; got != ctr[1]+5 {
		t.Fatalf("post-recovery counter = %d, want %d", got, ctr[1]+5)
	}
	if got := resp.Results[2].Val; got != 101 {
		t.Fatalf("post-recovery qpop = %d, want 101 (next FIFO head)", got)
	}
	c2.Close()
	s2.Stop()
	if err := s2.FinalCheck(); err != nil {
		t.Fatalf("post-recovery final check: %v", err)
	}
}

// TestOpsFollowerFold (ops-smoke, replication half): typed writes on a
// replicated boosted primary ship as logical-op records; the follower's
// fold must (a) answer counter reads from its replica image and (b) on
// promotion, rebuild a typed keyspace byte-identical to the primary's.
func TestOpsFollowerFold(t *testing.T) {
	const shards, keys = 2, 32
	prim, err := New(Options{
		Substrate: "boost", Shards: shards, Keys: keys, Seed: 21,
		Replicate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrP, err := prim.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Options{
		Substrate: "boost", Shards: shards, Keys: keys, Seed: 22,
		Follow: addrP.String(), PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrF, err := f.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := kvapi.Dial(addrP.String())
	if err != nil {
		t.Fatal(err)
	}
	ctr := typedCampaign(t, c, 24)
	c.Close()

	// The follower's committed fold serves the counters under the
	// typed namespace.
	waitCaughtUp(t, f)
	rdr, err := kvapi.Dial(addrF.String())
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range ctr {
		resp, err := rdr.Do([]kvapi.Op{{Kind: kvapi.OpCGet, Key: k}})
		if err != nil || resp.Status != kvapi.StatusOK {
			t.Fatalf("follower cget %d: %v %s", k, err, resp.Status)
		}
		if got := resp.Results[0].Val; got != v {
			t.Fatalf("follower cget %d = %d, want %d", k, got, v)
		}
	}
	rdr.Close()

	// Promotion replays the shipped logical ops into a fresh engine;
	// the rebuilt typed keyspace must match the primary's shard for
	// shard, byte for byte.
	want := make([]string, shards)
	for i := 0; i < shards; i++ {
		want[i] = prim.Engine().Backend(i).TypedState()
	}
	prim.Stop()
	if _, err := f.Promote(); err != nil {
		t.Fatalf("promotion: %v", err)
	}
	for i := 0; i < shards; i++ {
		if got := f.Engine().Backend(i).TypedState(); got != want[i] {
			t.Fatalf("shard %d typed state diverged:\n got %s\nwant %s", i, got, want[i])
		}
	}

	// The promoted primary serves typed traffic on the folded cells.
	c2, err := kvapi.Dial(addrF.String())
	if err != nil {
		t.Fatal(err)
	}
	resp := mustTxn(t, c2, []kvapi.Op{
		{Kind: kvapi.OpAdd, Key: 1, Val: 3},
		{Kind: kvapi.OpCGet, Key: 1},
	})
	if got := resp.Results[1].Val; got != ctr[1]+3 {
		t.Fatalf("post-promotion counter = %d, want %d", got, ctr[1]+3)
	}
	c2.Close()

	f.Stop()
	if err := f.FinalCheck(); err != nil {
		t.Fatalf("promoted final check: %v", err)
	}
	if err := f.LeakCheck(); err != nil {
		t.Fatalf("promoted leak check: %v", err)
	}
	if err := prim.LeakCheck(); err != nil {
		t.Fatalf("primary leak check: %v", err)
	}
}
