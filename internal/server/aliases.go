package server

// The substrate backends and the group-commit barrier moved to
// internal/backend so the sharded engine (internal/shard) can share
// them without importing the service layer. These aliases keep the
// server's historical API surface intact.

import "pushpull/internal/backend"

type (
	// View is re-exported from internal/backend.
	View = backend.View
	// Backend is re-exported from internal/backend.
	Backend = backend.Backend
	// Config is re-exported from internal/backend.
	Config = backend.Config
	// GroupCommit is re-exported from internal/backend.
	GroupCommit = backend.GroupCommit
)

var (
	// NewBackend is re-exported from internal/backend.
	NewBackend = backend.NewBackend
	// RegistryFor is re-exported from internal/backend.
	RegistryFor = backend.RegistryFor
	// Substrates is re-exported from internal/backend.
	Substrates = backend.Substrates
	// FoldKV is re-exported from internal/backend.
	FoldKV = backend.FoldKV
	// NewGroupCommit is re-exported from internal/backend.
	NewGroupCommit = backend.NewGroupCommit
)
