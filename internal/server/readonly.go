package server

import (
	"errors"
	"fmt"

	"pushpull/internal/backend"
	"pushpull/internal/kvapi"
	"pushpull/internal/mvcc"
	typedops "pushpull/internal/ops"
	"pushpull/internal/repl"
	"pushpull/internal/shard"
)

// roleView is one request's consistent snapshot of the replication
// state. dispatch takes it exactly once per request — the role, the
// engine, the replica, and the redirect target move together under
// replMu during promotion/demotion, and reading them piecemeal races
// the poll loop and the supervisor (a request could see the old role
// with the new engine).
type roleView struct {
	role      string
	eng       *shard.Engine
	replica   *repl.Replica
	advertise string
}

func (rv roleView) follower() bool {
	return rv.role == roleFollower || rv.role == rolePromoting
}

func (s *Server) roleView() roleView {
	s.replMu.RLock()
	defer s.replMu.RUnlock()
	return roleView{role: s.role, eng: s.eng, replica: s.replica, advertise: s.opts.Advertise}
}

// roTxn is one pinned read-only transaction: per-partition snapshots
// (a single entry on the unsharded path), the independent certifiers
// the observed reads must pass before results are released, and the
// read log itself. It takes no admission slot, no substrate lock, and
// no retry budget — the read-only class cannot conflict, so it cannot
// abort.
type roTxn struct {
	shardOf func(uint64) int
	snaps   []*mvcc.Snapshot
	certs   []*mvcc.Shadow
	reads   [][]mvcc.ReadObs
}

// beginRO pins a read-only transaction against whatever this server
// is right now. ok is false when there is no version store to serve
// from (certification disabled) — the caller falls back to the normal
// transactional path.
func (s *Server) beginRO(rv roleView) (*roTxn, bool) {
	switch {
	case rv.follower() && rv.replica != nil:
		snaps, certs := rv.replica.SnapshotCut()
		return &roTxn{
			shardOf: rv.replica.Shard,
			snaps:   snaps, certs: certs,
			reads: make([][]mvcc.ReadObs, len(snaps)),
		}, true
	case rv.eng != nil:
		cut, err := rv.eng.SnapshotCut()
		if err != nil {
			return nil, false // ErrNoMVCC: certification disabled
		}
		return &roTxn{
			shardOf: rv.eng.ShardOf,
			snaps:   cut.Snaps(), certs: rv.eng.Certifiers(),
			reads: make([][]mvcc.ReadObs, len(cut.Snaps())),
		}, true
	case s.be != nil:
		store := s.be.Snapshots()
		if store == nil {
			return nil, false
		}
		return &roTxn{
			shardOf: func(uint64) int { return 0 },
			snaps:   []*mvcc.Snapshot{store.Snapshot()},
			certs:   []*mvcc.Shadow{s.be.SnapshotCert()},
			reads:   make([][]mvcc.ReadObs, 1),
		}, true
	}
	return nil, false
}

// get reads key at the pinned snapshot and logs the observation for
// certification at commit.
func (t *roTxn) get(key uint64) (int64, bool) {
	sid := t.shardOf(key)
	val, found := t.snaps[sid].Get(key)
	t.reads[sid] = append(t.reads[sid], mvcc.ReadObs{Key: key, Val: val, Found: found})
	return val, found
}

// watermark condenses the pinned per-partition commit seqs into the
// wire token (their max; per-shard stamps are independent sequences,
// so this is an opaque recency witness, not a global order position).
func (t *roTxn) watermark() uint64 {
	var w uint64
	for _, sn := range t.snaps {
		if sw := sn.Watermark(); sw > w {
			w = sw
		}
	}
	return w
}

// certify checks every observed read against its partition's
// independent committed-history shadow. An error here is not a
// conflict — the read-only class has none — it means the version
// store diverged from the committed log, and the response must be
// refused rather than serve an unserializable read.
func (t *roTxn) certify() error {
	for sid, reads := range t.reads {
		if len(reads) == 0 {
			continue
		}
		if err := t.certs[sid].Certify(t.snaps[sid].Watermark(), reads); err != nil {
			return fmt.Errorf("partition %d: %w", sid, err)
		}
	}
	return nil
}

// close unpins every snapshot (idempotent).
func (t *roTxn) close() {
	for _, sn := range t.snaps {
		sn.Close()
	}
}

// errROWrite rejects a write inside the read-only class.
var errROWrite = errors.New("read-only transaction: writes rejected")

// doTxnReadOnly serves a one-shot transaction flagged ReadOnly: no
// admission gate, no locks, no retry loop — a pinned snapshot cut,
// the reads, certification, done. When no version store exists
// (certification disabled) the request falls back to the normal
// transactional path, which still answers it correctly, just without
// the never-abort guarantee.
func (s *Server) doTxnReadOnly(rv roleView, ops []kvapi.Op, session, seqNo uint64) kvapi.Response {
	hasCGet := false
	for _, op := range ops {
		switch op.Kind {
		case kvapi.OpGet:
		case kvapi.OpCGet:
			hasCGet = true
		default:
			s.suite.Metrics.ROAbort()
			return kvapi.Response{Status: kvapi.StatusError, Msg: errROWrite.Error()}
		}
	}
	if hasCGet && !backend.TypedNative(s.opts.Substrate) {
		// Word-family substrates keep typed counters in the plain
		// register array, not the ops.KeyBit fold namespace the
		// snapshot read below would consult — answer on the normal
		// transactional path, which reads the registers directly.
		if rv.follower() {
			return s.doTxnFollower(rv, ops)
		}
		return s.doTxnSession(ops, session, seqNo)
	}
	tx, ok := s.beginRO(rv)
	if !ok {
		if rv.follower() {
			return s.doTxnFollower(rv, ops)
		}
		return s.doTxnSession(ops, session, seqNo)
	}
	defer tx.close()
	results := make([]kvapi.Result, len(ops))
	for i, op := range ops {
		if op.Kind == kvapi.OpCGet {
			// Committed counter cells fold into the version store under
			// the high-bit namespace; an absent cell reads as 0, the
			// same answer the typed substrate gives.
			val, _ := tx.get(typedops.KeyBit | op.Key)
			results[i] = kvapi.Result{Val: val, Found: true}
			continue
		}
		val, found := tx.get(op.Key)
		results[i] = kvapi.Result{Val: val, Found: found}
	}
	if err := tx.certify(); err != nil {
		s.suite.Metrics.ROAbort()
		return kvapi.Response{Status: kvapi.StatusError, Msg: err.Error()}
	}
	s.suite.Metrics.ROCommit()
	return kvapi.Response{Status: kvapi.StatusOK, Results: results, Snapshot: tx.watermark()}
}

// doBeginRO opens an interactive read-only transaction: the snapshot
// pins now and every Get until Commit answers at it. It bypasses the
// admission gate (it holds no substrate resources a writer could wait
// on) but counts as an open session for shutdown accounting.
// Followers serve it locally — this is the one interactive class a
// follower does not redirect.
func (s *Server) doBeginRO(cs *connState, rv roleView) kvapi.Response {
	if cs.open() {
		return kvapi.Response{Status: kvapi.StatusError, Msg: "transaction already open on this connection"}
	}
	tx, ok := s.beginRO(rv)
	if !ok {
		if rv.follower() {
			return s.redirectResponse(rv.advertise)
		}
		return s.doBegin(cs) // certification disabled: normal interactive txn
	}
	cs.ro = tx
	s.sessions.Add(1)
	return kvapi.Response{Status: kvapi.StatusOK, Snapshot: tx.watermark()}
}

// endROSession releases what doBeginRO acquired (no gate slot).
func (s *Server) endROSession(cs *connState) {
	cs.ro.close()
	cs.ro = nil
	s.sessions.Add(-1)
}

// doOpRO answers one interactive request inside a read-only session.
// A Put is a protocol violation that aborts the whole session: the
// client declared the PULL-only class and must not smuggle a PUSH.
func (s *Server) doOpRO(cs *connState, req kvapi.Request) kvapi.Response {
	if req.Type == kvapi.MsgPut {
		s.suite.Metrics.ROAbort()
		s.endROSession(cs)
		return kvapi.Response{Status: kvapi.StatusError, Msg: errROWrite.Error()}
	}
	val, found := cs.ro.get(req.Key)
	return kvapi.Response{Status: kvapi.StatusOK, Results: []kvapi.Result{{Val: val, Found: found}}}
}

// doEndRO commits (certifies) or abandons a read-only session. Commit
// cannot fail for conflict reasons; a certification error means the
// server's own store diverged and the response says so.
func (s *Server) doEndRO(cs *connState, commit bool) kvapi.Response {
	tx := cs.ro
	w := tx.watermark()
	var err error
	if commit {
		err = tx.certify()
	}
	s.endROSession(cs)
	if !commit {
		return kvapi.Response{Status: kvapi.StatusOK, Snapshot: w}
	}
	if err != nil {
		s.suite.Metrics.ROAbort()
		return kvapi.Response{Status: kvapi.StatusError, Msg: err.Error()}
	}
	s.suite.Metrics.ROCommit()
	return kvapi.Response{Status: kvapi.StatusOK, Snapshot: w}
}
