package server

import (
	"errors"
	"fmt"
)

// Interactive sessions: a MsgBegin opens a transaction that stays live
// across round trips, so the client can read, think, and write before
// committing. The substrates' Atomic functions own retry/undo/locking,
// and they expect the whole transaction body as one closure — so the
// session runs Atomic on a dedicated goroutine whose closure *blocks
// on a channel waiting for the client's next operation*. The
// connection handler feeds it commands and relays answers.
//
// Session state machine (per connection):
//
//	idle --Begin--> open --Get/Put--> open
//	open --Commit--> idle   (substrate commit, durable barrier, OK)
//	open --Abort---> idle   (undo + UNAPP, OK)
//	open --conflict/retry exhaustion/replay divergence--> idle (StatusAborted)
//	open --connection drop--> (session goroutine aborts the txn) gone
//
// On a substrate-level conflict the closure is re-entered: it first
// REPLAYS the journal of operations already answered, validating that
// every re-executed Get reproduces the value the client saw. A
// divergence means the client holds stale reads — the session aborts
// (errReplayDiverged) rather than committing a transaction whose
// observed values never coexisted. This is the interactive analogue of
// the recorder's rule: a transaction certifies only if its operation
// log denotes against the sequential spec.
var (
	// errClientAbort: the client asked to roll back. Foreign to every
	// substrate's conflict error, so Atomic aborts exactly once and
	// returns it (undo run, locks released, shadow session rewound).
	errClientAbort = errors.New("server: client abort")
	// errClientGone: the connection died mid-transaction; same abort
	// path, nobody to answer.
	errClientGone = errors.New("server: client disconnected mid-transaction")
	// errReplayDiverged: a conflict retry could not reproduce the reads
	// already answered to the client.
	errReplayDiverged = errors.New("server: interactive replay diverged (answered reads went stale)")
)

// sessCmdKind discriminates session commands.
type sessCmdKind int

const (
	cmdGet sessCmdKind = iota
	cmdPut
	cmdCommit
	cmdAbort
)

// sessCmd is one client operation forwarded into the session closure.
type sessCmd struct {
	kind sessCmdKind
	key  uint64
	val  int64
}

// sessReply answers one Get/Put.
type sessReply struct {
	val   int64
	found bool
}

// journalEntry is one answered operation, kept for conflict replay.
type journalEntry struct {
	kind     sessCmdKind
	key      uint64
	val      int64 // put argument
	retVal   int64 // answered get value
	retFound bool
}

// session is one open interactive transaction.
type session struct {
	name    string
	cmds    chan sessCmd
	replies chan sessReply
	done    chan error // Atomic's outcome; buffered so run never blocks
	retries uint32     // substrate attempts - 1; valid once done is sent
}

func newSession(name string) *session {
	return &session{
		name:    name,
		cmds:    make(chan sessCmd),
		replies: make(chan sessReply),
		done:    make(chan error, 1),
	}
}

// run executes the session transaction on be. It returns only when the
// transaction is finished (committed, aborted, or given up); the
// outcome lands on s.done.
//
// Protocol with the handler: the handler sends at most one command and
// then waits on replies/done; run answers each Get/Put exactly once
// (after it succeeds, across any number of substrate retries) and
// never answers Commit/Abort — the handler reads those outcomes from
// done. The handler closes cmds to abandon the session (disconnect);
// run sees the closed channel and aborts via errClientGone.
func (s *session) run(be Backend) {
	var journal []journalEntry
	var pending *sessCmd
	attempts := uint32(0)
	err := be.Atomic(s.name, func(v View) error {
		attempts++
		// Validated replay: re-execute everything already answered.
		for i := range journal {
			j := &journal[i]
			switch j.kind {
			case cmdGet:
				val, found, err := v.Get(j.key)
				if err != nil {
					return err
				}
				if val != j.retVal || found != j.retFound {
					return errReplayDiverged
				}
			case cmdPut:
				if err := v.Put(j.key, j.val); err != nil {
					return err
				}
			}
		}
		for {
			if pending == nil {
				c, ok := <-s.cmds
				if !ok {
					return errClientGone
				}
				pending = &c
			}
			// pending survives substrate retries: a command consumed
			// from the channel is either answered or carried into the
			// next attempt, never dropped.
			switch pending.kind {
			case cmdCommit:
				return nil
			case cmdAbort:
				return errClientAbort
			case cmdGet:
				val, found, err := v.Get(pending.key)
				if err != nil {
					return err
				}
				journal = append(journal, journalEntry{
					kind: cmdGet, key: pending.key, retVal: val, retFound: found,
				})
				pending = nil
				s.replies <- sessReply{val: val, found: found}
			case cmdPut:
				if err := v.Put(pending.key, pending.val); err != nil {
					return err
				}
				journal = append(journal, journalEntry{
					kind: cmdPut, key: pending.key, val: pending.val,
				})
				pending = nil
				s.replies <- sessReply{}
			}
		}
	})
	if attempts > 0 {
		s.retries = attempts - 1
	}
	s.done <- err
}

// abandon tears a session down from the handler side (disconnect or
// server shutdown): closing cmds aborts the transaction; the drain
// loop swallows any reply in flight and waits for the outcome, so the
// goroutine, its gate slot, and its substrate state are all released
// before the handler exits.
func (s *session) abandon() error {
	close(s.cmds)
	for {
		select {
		case <-s.replies:
		case err := <-s.done:
			return err
		}
	}
}

// sessionName labels the n-th session transaction for certification.
func sessionName(n uint64) string { return fmt.Sprintf("sess-%d", n) }

// txnName labels the n-th one-shot transaction.
func txnName(n uint64) string { return fmt.Sprintf("txn-%d", n) }
