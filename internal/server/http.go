package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"pushpull/internal/kvapi"
)

// HTTPHandler is the JSON/HTTP fallback for clients that don't speak
// the binary protocol, plus the operational surface:
//
//	POST /txn      one-shot transaction (kvapi.TxnRequestJSON body)
//	GET  /healthz  liveness + recovery status
//	GET  /stats    server counters (JSON)
//	     /debug/   observability suite (Prometheus text, pprof, JSON)
//
// Interactive transactions are binary-protocol only: HTTP has no
// connection-scoped session to hang them on.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/txn", s.handleHTTPTxn)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("/debug/", s.suite.Metrics.Handler())
	return mux
}

func (s *Server) handleHTTPTxn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req kvapi.TxnRequestJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	ops, err := req.WireOps()
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	resp := s.DoTxnSession(ops, req.Session, req.Seq)
	w.Header().Set("Content-Type", "application/json")
	switch resp.Status {
	case kvapi.StatusBusy:
		// Standard backpressure shape: 503 + Retry-After (seconds,
		// rounded up) alongside the millisecond hint in the body.
		secs := (int(resp.RetryAfterMs) + 999) / 1000
		if secs == 0 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		w.WriteHeader(http.StatusServiceUnavailable)
	case kvapi.StatusAborted:
		w.WriteHeader(http.StatusConflict)
	case kvapi.StatusError:
		w.WriteHeader(http.StatusInternalServerError)
	}
	_ = json.NewEncoder(w).Encode(resp.ToJSON())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	status := "ok"
	code := http.StatusOK
	if st.WALCrashed {
		status = "crashed"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":         status,
		"substrate":      st.Substrate,
		"recovered_txns": st.RecoveredTxns,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}

// StartHTTP serves the HTTP surface on addr in the background and
// returns the bound address. The http.Server is shut down by Stop via
// the tracked listener.
func (s *Server) StartHTTP(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("server: already stopped")
	}
	if s.httpLns == nil {
		s.httpLns = make(map[net.Listener]struct{})
	}
	s.httpLns[ln] = struct{}{}
	s.mu.Unlock()
	srv := &http.Server{Handler: s.HTTPHandler(), ReadHeaderTimeout: 5 * time.Second}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		err := srv.Serve(ln)
		if err != nil && !strings.Contains(err.Error(), "use of closed network connection") && err != http.ErrServerClosed {
			// Listener teardown is the expected exit; anything else is
			// surfaced through the error log of the caller's choosing.
			_ = err
		}
	}()
	return ln.Addr(), nil
}
