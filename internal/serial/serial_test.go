package serial_test

import (
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/core"
	"pushpull/internal/lang"
	"pushpull/internal/serial"
	"pushpull/internal/spec"
)

func reg() *spec.Registry {
	r := spec.NewRegistry()
	r.Register("set", adt.Set{})
	r.Register("ctr", adt.Counter{})
	r.Register("mem", adt.Register{})
	return r
}

func runTxn(t *testing.T, m *core.Machine, name, src string) {
	t.Helper()
	th := m.Spawn(name)
	if err := m.Begin(th, lang.MustParseTxn(src), nil); err != nil {
		t.Fatal(err)
	}
	// Pull committed view, then run to completion.
	local := m.LocalLog(th)
	for gi, e := range m.GlobalEntries() {
		if e.Committed && !local.Contains(e.Op) {
			if err := m.Pull(th, gi); err != nil {
				t.Fatalf("%s: pull: %v", name, err)
			}
		}
	}
	for {
		steps := m.Steps(th)
		if len(steps) == 0 {
			break
		}
		if _, err := m.App(th, steps[0]); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Push(th, len(th.Local)-1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := m.Commit(th); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

func TestCheckCommitOrderAccepts(t *testing.T) {
	m := core.NewMachine(reg(), core.DefaultOptions())
	runTxn(t, m, "a", `tx a { set.add(1); ctr.inc(); }`)
	runTxn(t, m, "b", `tx b { v := set.contains(1); ctr.inc(); }`)
	rep := serial.CheckCommitOrder(m)
	if !rep.Serializable {
		t.Fatal(rep)
	}
	if len(rep.CommitOrder) != 2 || rep.CommitOrder[0] != "a" {
		t.Fatalf("commit order %v", rep.CommitOrder)
	}
	if rep.String() == "" || rep.Serial == nil || rep.Committed == nil {
		t.Fatal("report fields incomplete")
	}
}

func TestCheckCommitOrderEmptyRun(t *testing.T) {
	m := core.NewMachine(reg(), core.DefaultOptions())
	rep := serial.CheckCommitOrder(m)
	if !rep.Serializable {
		t.Fatalf("empty run must be vacuously serializable: %v", rep)
	}
}

func TestFindSerialWitness(t *testing.T) {
	m := core.NewMachine(reg(), core.DefaultOptions())
	runTxn(t, m, "a", `tx a { mem.write(1, 5); }`)
	runTxn(t, m, "b", `tx b { v := mem.read(1); mem.write(2, v); }`)
	order, ok, exhausted := serial.FindSerialWitness(m, 5)
	if !ok || !exhausted {
		t.Fatalf("witness search: ok=%v exhausted=%v", ok, exhausted)
	}
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	// Over the cap: must report non-exhaustion, not failure.
	_, ok, exhausted = serial.FindSerialWitness(m, 1)
	if ok || exhausted {
		t.Fatal("cap exceeded must report exhausted=false")
	}
}

func TestOpacityCheckers(t *testing.T) {
	m := core.NewMachine(reg(), core.DefaultOptions())
	// t1 pushes uncommitted; t2 pulls it then apps a commuting op.
	t1, t2 := m.Spawn("t1"), m.Spawn("t2")
	if err := m.Begin(t1, lang.MustParseTxn(`tx a { set.add(1); }`), nil); err != nil {
		t.Fatal(err)
	}
	steps := m.Steps(t1)
	if _, err := m.App(t1, steps[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Push(t1, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(t2, lang.MustParseTxn(`tx b { set.add(2); }`), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Pull(t2, 0); err != nil {
		t.Fatal(err)
	}
	steps = m.Steps(t2)
	if _, err := m.App(t2, steps[0]); err != nil {
		t.Fatal(err)
	}
	events := m.Events()
	strict := serial.CheckOpacity(events)
	if len(strict) != 1 {
		t.Fatalf("strict violations = %v", strict)
	}
	if strict[0].TxName != "b" || strict[0].Conflict != nil {
		t.Fatalf("violation = %v", strict[0])
	}
	relaxed := serial.CheckOpacityRelaxed(m.Reg, spec.MoverHybrid, events)
	if len(relaxed) != 0 {
		t.Fatalf("add(2) commutes with pulled add(1); relaxed must accept: %v", relaxed)
	}
	if strict[0].String() == "" {
		t.Fatal("violation must render")
	}
}

func TestOpacityRelaxedRejectsConflictingSuffix(t *testing.T) {
	m := core.NewMachine(reg(), core.DefaultOptions())
	t1, t2 := m.Spawn("t1"), m.Spawn("t2")
	if err := m.Begin(t1, lang.MustParseTxn(`tx a { ctr.inc(); }`), nil); err != nil {
		t.Fatal(err)
	}
	steps := m.Steps(t1)
	if _, err := m.App(t1, steps[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Push(t1, 0); err != nil {
		t.Fatal(err)
	}
	// t2 pulls the uncommitted inc, then GETs — get does not commute
	// with inc, so the relaxed criterion must flag it.
	if err := m.Begin(t2, lang.MustParseTxn(`tx b { v := ctr.get(); }`), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Pull(t2, 0); err != nil {
		t.Fatal(err)
	}
	steps = m.Steps(t2)
	if _, err := m.App(t2, steps[0]); err != nil {
		t.Fatal(err)
	}
	relaxed := serial.CheckOpacityRelaxed(m.Reg, spec.MoverHybrid, m.Events())
	if len(relaxed) != 1 || relaxed[0].Conflict == nil {
		t.Fatalf("relaxed must flag the non-commuting get: %v", relaxed)
	}
}

// TestCheckRejectsDoctoredHistory: the checker must flag a machine
// whose committed projection cannot be explained by its commit order.
// We build it via the one legal-looking but wrong route: committing in
// an order that contradicts the observed returns is impossible through
// the rules, so instead we verify the checker's negative path using a
// non-allowed serial log (wrong recorded returns in a commit record is
// unreachable; the empty-reason accept path is covered above). Here we
// check that a queue workload — whose operations do not commute — still
// certifies when executed serially, guarding the checker against false
// negatives on order-sensitive specs.
func TestCheckQueueSerialRuns(t *testing.T) {
	r := spec.NewRegistry()
	r.Register("q", adt.Queue{})
	m := core.NewMachine(r, core.DefaultOptions())
	runTxn(t, m, "p", `tx p { q.enq(1); q.enq(2); }`)
	runTxn(t, m, "c", `tx c { v := q.deq(); }`)
	rep := serial.CheckCommitOrder(m)
	if !rep.Serializable {
		t.Fatal(rep)
	}
}
