// Package serial makes the paper's correctness statements executable:
//
//   - CheckCommitOrder is the instance of Theorem 5.17 (serializability)
//     for one finished run: the committed projection of the shared log
//     must be precongruent with the serial log that runs each committed
//     transaction contiguously in commit order — the atomic machine log
//     constructed in the CMT case of the simulation proof.
//
//   - FindSerialWitness searches for *any* serial order (not just commit
//     order) explaining the run, by re-running transaction bodies on the
//     atomic machine of internal/atomicsem. It cross-validates the
//     theorem on small runs.
//
//   - CheckOpacity / CheckOpacityRelaxed decide membership in the opaque
//     fragment of Section 6.1: strictly, no PULL of an uncommitted
//     operation; relaxedly, such pulls are tolerated when every method
//     the puller subsequently executes commutes with the pulled
//     operation.
package serial

import (
	"fmt"
	"strings"

	"pushpull/internal/atomicsem"
	"pushpull/internal/core"
	"pushpull/internal/lang"
	"pushpull/internal/spec"
)

// Report carries the verdict and diagnostics of a serializability check.
type Report struct {
	Serializable bool
	// CommitOrder lists committed transactions by name in stamp order.
	CommitOrder []string
	// Committed is ⌊G⌋gCmt in shared-log order.
	Committed spec.Log
	// Serial is the commit-order serial log.
	Serial spec.Log
	// Reason explains a failure.
	Reason string
}

func (r Report) String() string {
	if r.Serializable {
		return fmt.Sprintf("serializable: commit order [%s]", strings.Join(r.CommitOrder, " → "))
	}
	return "NOT serializable: " + r.Reason
}

// CheckCommitOrder verifies ⌊G⌋gCmt ≼ ℓ for the commit-order atomic log
// ℓ (the simulation relation's right-hand side at the end of the run).
func CheckCommitOrder(m *core.Machine) Report {
	rep := Report{Committed: m.GlobalCommitted()}
	var serial spec.Log
	for _, rec := range m.Commits() {
		rep.CommitOrder = append(rep.CommitOrder, rec.Name)
		serial = serial.Concat(rec.Ops)
	}
	rep.Serial = serial
	if !m.Reg.AllowedFrom(m.StartState(), rep.Committed) {
		rep.Reason = fmt.Sprintf("committed projection is not allowed: %v", rep.Committed)
		return rep
	}
	if !m.Reg.AllowedFrom(m.StartState(), serial) {
		rep.Reason = fmt.Sprintf("commit-order serial log is not allowed: %v", serial)
		return rep
	}
	if !spec.PrecongruentFrom(m.Reg, m.StartState(), rep.Committed, serial) {
		c1, _ := m.Reg.DenoteFrom(m.StartState(), rep.Committed)
		c2, _ := m.Reg.DenoteFrom(m.StartState(), serial)
		rep.Reason = fmt.Sprintf("⌊G⌋gCmt ⋠ serial log: states %v vs %v", c1, c2)
		return rep
	}
	rep.Serializable = true
	return rep
}

// FindSerialWitness searches permutations of the committed transactions
// for a serial order whose atomic execution (re-running each Body on
// the atomic machine) reaches a state equivalent to the observed
// committed projection. maxTxns caps the factorial search; runs with
// more committed transactions return ok=false with exhausted=false.
func FindSerialWitness(m *core.Machine, maxTxns int) (order []string, ok, exhausted bool) {
	recs := m.Commits()
	if len(recs) > maxTxns {
		return nil, false, false
	}
	committed := m.GlobalCommitted()
	target, allowedG := m.Reg.DenoteFrom(m.StartState(), committed)
	if !allowedG {
		return nil, false, true
	}
	perm := make([]int, len(recs))
	for i := range perm {
		perm[i] = i
	}
	var try func(k int, l spec.Log) []string
	try = func(k int, l spec.Log) []string {
		if k == len(perm) {
			got, ok := m.Reg.DenoteFrom(m.StartState(), l)
			if ok && got.Eq(target) {
				names := make([]string, len(perm))
				for i, idx := range perm {
					names[i] = recs[idx].Name
				}
				return names
			}
			return nil
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec := recs[perm[k]]
			r, okRun := atomicsem.RunTxnFrom(m.Reg, m.StartState(), lang.Txn{Name: rec.Name, Body: rec.Body}, rec.InitStack, l)
			if okRun {
				if names := try(k+1, r.Log); names != nil {
					perm[k], perm[i] = perm[i], perm[k]
					return names
				}
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	names := try(0, nil)
	return names, names != nil, true
}

// OpacityViolation describes one break of the opaque fragment.
type OpacityViolation struct {
	Thread   uint64
	TxName   string
	Pulled   spec.Op
	Conflict *spec.Op // non-nil in relaxed mode: the non-commuting later op
}

func (v OpacityViolation) String() string {
	if v.Conflict != nil {
		return fmt.Sprintf("tx %s pulled uncommitted %v and later executed non-commuting %v",
			v.TxName, v.Pulled, *v.Conflict)
	}
	return fmt.Sprintf("tx %s pulled uncommitted %v", v.TxName, v.Pulled)
}

// CheckOpacity returns every strict-fragment violation: each PULL of a
// then-uncommitted operation. An empty result certifies the run opaque
// (Section 6.1: "if transactions do not perform PULL operations [of
// uncommitted effects] during execution then they are opaque").
func CheckOpacity(events []core.Event) []OpacityViolation {
	var out []OpacityViolation
	for _, e := range events {
		if e.Rule == core.RPull && e.UncommittedPull {
			out = append(out, OpacityViolation{Thread: e.Thread, TxName: e.TxName, Pulled: e.Op})
		}
	}
	return out
}

// CheckOpacityRelaxed implements Section 6.1's refinement: a pull of an
// uncommitted m′ is tolerated when the transaction never afterwards
// executes a method that does not commute with m′ (checked dynamically
// over the operations it actually applied before ending). Returns the
// violations that survive the relaxation.
func CheckOpacityRelaxed(reg *spec.Registry, mode spec.MoverMode, events []core.Event) []OpacityViolation {
	var out []OpacityViolation
	for i, e := range events {
		if e.Rule != core.RPull || !e.UncommittedPull {
			continue
		}
		// Scan this thread's subsequent APPs until its CMT/END.
	scan:
		for j := i + 1; j < len(events); j++ {
			f := events[j]
			if f.Thread != e.Thread {
				continue
			}
			switch f.Rule {
			case core.RApp:
				if !spec.MutualMovers(reg, mode, nil, f.Op, e.Op) {
					conflict := f.Op
					out = append(out, OpacityViolation{
						Thread: e.Thread, TxName: e.TxName, Pulled: e.Op, Conflict: &conflict,
					})
					break scan
				}
			case core.RCmt, core.REnd:
				break scan
			}
		}
	}
	return out
}
