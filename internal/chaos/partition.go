package chaos

// Network partition derivation for the replication layer. A partition
// is a window on a link's batch-index axis (not wall clock, so a
// seeded sweep replays exactly): every batch shipped inside the window
// is cut. Full partitions hold the batch entirely; asymmetric ones let
// the batch through but lose the ack — the half-open failure that
// leaves the primary unsure whether the replica has the bytes.

// Partition sites (labels in the Hash01 scheme; they are not Injector
// sites — the replication link consumes windows, not per-visit draws).
const (
	// SiteReplPartition decides whether a link suffers a partition at
	// all, and shapes the window.
	SiteReplPartition Site = "repl/partition"
	// SiteReplPartitionAsym decides whether a firing partition is
	// asymmetric (delivered, ack lost) rather than full.
	SiteReplPartitionAsym Site = "repl/partition-asym"
)

// PartitionWindow is one derived cut: batches with index in [From, To)
// are cut; Asym selects the ack-loss flavor.
type PartitionWindow struct {
	From, To uint64
	Asym     bool
}

// PartitionsFor derives the deterministic partition schedule for one
// link: each of maxWindows candidate windows fires independently with
// probability rate, opens uniformly in [0, span), runs for 1..maxLen
// batches, and is asymmetric with probability 1/2. The same
// (seed, link) always yields the same schedule.
func PartitionsFor(seed int64, link int, rate float64, span, maxLen uint64, maxWindows int) []PartitionWindow {
	if maxLen == 0 || span == 0 || maxWindows <= 0 {
		return nil
	}
	var out []PartitionWindow
	base := uint64(link) * uint64(maxWindows) * 4
	for i := 0; i < maxWindows; i++ {
		v := base + uint64(i)*4
		if Hash01(seed, SiteReplPartition, v) >= rate {
			continue
		}
		from := uint64(Hash01(seed, SiteReplPartition, v+1) * float64(span))
		length := 1 + uint64(Hash01(seed, SiteReplPartition, v+2)*float64(maxLen))
		asym := Hash01(seed, SiteReplPartitionAsym, v+3) < 0.5
		out = append(out, PartitionWindow{From: from, To: from + length, Asym: asym})
	}
	return out
}
