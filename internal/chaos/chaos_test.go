package chaos

import (
	"math"
	"strings"
	"testing"
)

// TestFireDeterministic: the same plan yields the same decision
// sequence at every site, visit for visit.
func TestFireDeterministic(t *testing.T) {
	p := NewPlan(42).WithRate(SiteTL2Read, 0.3).WithRate(SiteHTMCapacity, 0.1)
	a, b := p.Injector(), p.Injector()
	for i := 0; i < 1000; i++ {
		for _, s := range []Site{SiteTL2Read, SiteHTMCapacity, SitePessTimeout} {
			if a.Fire(s) != b.Fire(s) {
				t.Fatalf("divergence at %s visit %d", s, i)
			}
		}
	}
	if a.Stats().String() != b.Stats().String() {
		t.Fatalf("stats diverge: %s vs %s", a.Stats(), b.Stats())
	}
}

// TestFireRate: the empirical firing rate tracks the configured one.
func TestFireRate(t *testing.T) {
	f := NewPlan(7).WithRate(SiteBoostTimeout, 0.25).Injector()
	fired := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if f.Fire(SiteBoostTimeout) {
			fired++
		}
	}
	got := float64(fired) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("rate %.3f, want ~0.25", got)
	}
	st := f.Stats()
	if st.Counts[SiteBoostTimeout].Visits != n || st.Counts[SiteBoostTimeout].Injected != uint64(fired) {
		t.Fatalf("counts %+v", st.Counts)
	}
}

// TestScriptOverridesRate: scripted visits fire exactly as written,
// then the rate takes over.
func TestScriptOverridesRate(t *testing.T) {
	f := NewPlan(1).WithRate(SiteDepConflict, 0).
		WithScript(SiteDepConflict, []bool{true, false, true}).Injector()
	want := []bool{true, false, true, false, false}
	for i, w := range want {
		if got := f.Fire(SiteDepConflict); got != w {
			t.Fatalf("visit %d: fire=%v want %v", i, got, w)
		}
	}
}

// TestBudgetCaps: injections stop at the budget even at rate 1.
func TestBudgetCaps(t *testing.T) {
	f := NewPlan(1).WithRate(SitePessTimeout, 1).WithBudget(SitePessTimeout, 3).Injector()
	fired := 0
	for i := 0; i < 10; i++ {
		if f.Fire(SitePessTimeout) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d, want 3", fired)
	}
}

// TestZeroPlanNeverFires: the empty plan is inert.
func TestZeroPlanNeverFires(t *testing.T) {
	f := NewPlan(99).Injector()
	for i := 0; i < 100; i++ {
		for _, s := range Sites() {
			if f.Fire(s) {
				t.Fatalf("zero plan fired at %s", s)
			}
		}
	}
	if f.Stats().TotalInjected() != 0 {
		t.Fatal("nonzero injections")
	}
}

func TestPlanString(t *testing.T) {
	p := NewPlan(5).WithRate(SiteTL2Read, 0.1).WithBudget(SiteTL2Read, 2)
	s := p.String()
	if !strings.Contains(s, "seed=5") || !strings.Contains(s, "tl2/read=0.1(cap 2)") {
		t.Fatalf("plan string %q", s)
	}
}

// TestRetryPolicy: budget bounds, exponential growth, cap, jitter
// bounds, nil-policy legacy shape.
func TestRetryPolicy(t *testing.T) {
	p := &RetryPolicy{MaxRetries: 3, BaseYields: 2, MaxYields: 16, Multiplier: 2}
	for n := 1; n <= 3; n++ {
		if !p.Allow(n) {
			t.Fatalf("retry %d should be allowed", n)
		}
	}
	if p.Allow(4) {
		t.Fatal("retry 4 should exceed budget")
	}
	wantY := []int{2, 4, 8, 16, 16}
	for i, w := range wantY {
		if got := p.Yields(i + 1); got != w {
			t.Fatalf("yields(%d) = %d, want %d", i+1, got, w)
		}
	}

	j := Default(3)
	for n := 1; n < 20; n++ {
		y := j.Yields(n)
		if y < 0 || y > j.MaxYields+j.MaxYields/2 {
			t.Fatalf("jittered yields(%d) = %d out of range", n, y)
		}
	}

	var nilP *RetryPolicy
	if !nilP.Allow(1 << 20) {
		t.Fatal("nil policy must allow")
	}
	if nilP.Yields(10) != 10 || nilP.Yields(100) != 64 {
		t.Fatal("nil policy legacy backoff shape")
	}
	if Unlimited(1).Allow(1<<20) != true {
		t.Fatal("unlimited must allow")
	}
}
