// Package chaos is the deterministic fault-injection layer: a seedable
// Plan of per-site probabilities (or fixed scripts) drives an Injector
// that substrates, schedulers, and drivers consult at their fault
// sites — spurious/capacity/conflict aborts in the word STMs, lock
// timeouts in the pessimistic runtimes, stalled steps and forced
// mid-transaction thread death in the cooperative scheduler.
//
// The point (ISSUE: §4, §6.5 of the paper) is that the rewind fragment
// — UNPUSH, UNPULL, UNAPP — exists to model aborts and retries, and is
// only fully exercised when something goes wrong. Injected faults force
// every recovery path, and every chaos run ends in certification: the
// machine invariants, the commit-order serializability check, and the
// shadow-machine recorder must all pass with faults enabled.
//
// Determinism: the decision at a site's n-th visit is a pure hash of
// (plan seed, site, n), so a campaign is reproducible from its printed
// seed regardless of which goroutine reaches the site (per-site visit
// order is fixed by the workload; cross-site interleaving does not
// matter). Fixed scripts override the hash per visit for exact-replay
// tests.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Site names one instrumented fault-injection point.
type Site string

// Injection sites.
const (
	// SiteHTMConflict injects a spurious conflict abort on a speculative
	// HTM read/write (a coherence invalidation killing the line).
	SiteHTMConflict Site = "htm/conflict"
	// SiteHTMCapacity injects a capacity abort on a speculative HTM
	// read/write (cache-geometry overflow).
	SiteHTMCapacity Site = "htm/capacity"
	// SiteHTMCommit injects a spurious abort at the HTM commit instant
	// (the lock-elision subscription firing).
	SiteHTMCommit Site = "htm/commit"
	// SiteTL2Read injects a read-validation conflict in TL2.
	SiteTL2Read Site = "tl2/read"
	// SiteTL2Commit injects a commit-time validation conflict in TL2.
	SiteTL2Commit Site = "tl2/commit"
	// SitePessTimeout injects a lock-acquire timeout (wait-die "die") in
	// the 2PL memory.
	SitePessTimeout Site = "pess/timeout"
	// SiteBoostTimeout injects an abstract-lock timeout in the boosting
	// runtime.
	SiteBoostTimeout Site = "boost/timeout"
	// SiteDepConflict injects a read conflict in the dependent-
	// transactions memory, forcing rollbacks and cascades.
	SiteDepConflict Site = "dep/conflict"
	// SiteSchedStall stalls the scheduled driver for a turn (a delayed
	// step; the step budget is still consumed).
	SiteSchedStall Site = "sched/stall"
	// SiteSchedKill kills the scheduled driver mid-transaction: its
	// in-flight transaction is rewound via UNPUSH/UNPULL/UNAPP and its
	// Env locks and tokens released; the driver is retired.
	SiteSchedKill Site = "sched/kill"
	// SiteWALAppend is the process-death site: the write-ahead log
	// consults it on every record append, and a firing kills the
	// "process" at exactly that append — everything not yet synced is
	// lost (possibly with a torn or bit-flipped tail, see CrashMode).
	// Deterministic crashes are scheduled with Plan.WithCrash; the site
	// also honors ordinary rates/scripts/budgets for probabilistic
	// sweeps.
	SiteWALAppend Site = "wal/append"
	// SiteCoordPrepared is the cross-shard coordinator's death site
	// between prepare and the durable commit decision: every participant
	// branch is PUSHed (prepared) but no decision record exists, so
	// recovery must presume abort and discard all branches consistently.
	SiteCoordPrepared Site = "coord/prepared"
	// SiteCoordCommit is the coordinator's death site immediately after
	// the commit decision is durable but before any branch commit is
	// released: recovery must roll the transaction forward on every
	// participant from the journaled write-sets.
	SiteCoordCommit Site = "coord/commit"
)

// Sites lists every injection site, for sweep tooling.
func Sites() []Site {
	return []Site{SiteHTMConflict, SiteHTMCapacity, SiteHTMCommit,
		SiteTL2Read, SiteTL2Commit, SitePessTimeout, SiteBoostTimeout,
		SiteDepConflict, SiteSchedStall, SiteSchedKill, SiteWALAppend,
		SiteCoordPrepared, SiteCoordCommit}
}

// CrashMode selects what the simulated crash leaves on "disk" past the
// synced prefix of the write-ahead log.
type CrashMode int

// Crash modes.
const (
	// CrashClean loses exactly the unsynced suffix: the surviving image
	// is the synced prefix, record-aligned.
	CrashClean CrashMode = iota
	// CrashTorn additionally persists an arbitrary prefix of the
	// unsynced bytes (including the in-flight record) — the torn-write
	// case recovery must truncate, not fatally reject.
	CrashTorn
	// CrashBitflip flips one bit inside the synced image — latent media
	// corruption; recovery must truncate at the first bad checksum.
	CrashBitflip
)

func (m CrashMode) String() string {
	switch m {
	case CrashClean:
		return "clean"
	case CrashTorn:
		return "torn"
	case CrashBitflip:
		return "bitflip"
	default:
		return "badmode"
	}
}

// Injector is consulted at every instrumented fault site. A nil
// Injector field in a substrate means no injection.
type Injector interface {
	// Fire reports whether to inject a fault at site on this visit.
	Fire(site Site) bool
}

// Plan is a reproducible fault schedule: a seed, per-site firing
// probabilities, optional per-site fixed scripts (consumed by visit
// index, overriding the probabilistic decision), and optional per-site
// injection budgets.
type Plan struct {
	Seed   int64
	Rates  map[Site]float64
	Script map[Site][]bool
	Budget map[Site]int // max injections per site; 0 = unlimited
	// CrashAppend schedules a deterministic process death at the n-th
	// (1-based) visit to SiteWALAppend; 0 means no scheduled crash. It
	// overrides rates and scripts for that visit, so a failing crash
	// plan replays exactly like a fault plan.
	CrashAppend uint64
	// CrashMode selects the surviving log image (clean/torn/bitflip).
	CrashMode CrashMode
}

// NewPlan returns an empty plan (no faults) with the given seed.
func NewPlan(seed int64) Plan {
	return Plan{Seed: seed, Rates: map[Site]float64{}, Script: map[Site][]bool{}, Budget: map[Site]int{}}
}

// WithRate sets a site's firing probability and returns the plan.
func (p Plan) WithRate(site Site, rate float64) Plan {
	if p.Rates == nil {
		p.Rates = map[Site]float64{}
	}
	p.Rates[site] = rate
	return p
}

// WithScript fixes a site's decisions for its first len(script) visits.
func (p Plan) WithScript(site Site, script []bool) Plan {
	if p.Script == nil {
		p.Script = map[Site][]bool{}
	}
	p.Script[site] = script
	return p
}

// WithBudget caps a site's total injections.
func (p Plan) WithBudget(site Site, n int) Plan {
	if p.Budget == nil {
		p.Budget = map[Site]int{}
	}
	p.Budget[site] = n
	return p
}

// WithCrash schedules a deterministic process death at the n-th WAL
// append (1-based) with the given surviving-image mode.
func (p Plan) WithCrash(n uint64, mode CrashMode) Plan {
	p.CrashAppend = n
	p.CrashMode = mode
	return p
}

// ForShard derives shard i's plan (of n shards) from a base plan: the
// same rates, scripts, and budgets under a shard-distinct seed, so the
// shards' fault streams are independent but the whole sharded run stays
// reproducible from one printed seed. A scheduled WAL crash is kept on
// exactly one seed-chosen shard — a process dies once, not once per
// shard — and the engine propagates that death to the other logs.
func (p Plan) ForShard(i, n int) Plan {
	q := p
	q.Seed = int64(uint64(p.Seed)*0x9e3779b97f4a7c15 + uint64(i)*0x85ebca6b + 1)
	if p.CrashAppend > 0 && n > 1 {
		target := int(Hash01(p.Seed, "shard/crashpick", 0) * float64(n))
		if target >= n {
			target = n - 1
		}
		if i != target {
			q.CrashAppend = 0
		}
	}
	return q
}

// String renders the plan compactly — the reproduction recipe a chaos
// report prints.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan{seed=%d", p.Seed)
	sites := make([]string, 0, len(p.Rates))
	for s := range p.Rates {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	for _, s := range sites {
		fmt.Fprintf(&b, " %s=%g", s, p.Rates[Site(s)])
		if n, ok := p.Budget[Site(s)]; ok && n > 0 {
			fmt.Fprintf(&b, "(cap %d)", n)
		}
	}
	for s, sc := range p.Script {
		fmt.Fprintf(&b, " %s=script[%d]", s, len(sc))
	}
	if p.CrashAppend > 0 {
		fmt.Fprintf(&b, " crash@%d(%s)", p.CrashAppend, p.CrashMode)
	}
	b.WriteString("}")
	return b.String()
}

// SiteCount is one site's visit/injection tally.
type SiteCount struct {
	Visits   uint64
	Injected uint64
}

// Stats is a snapshot of injector activity.
type Stats struct {
	Counts map[Site]SiteCount
}

// TotalInjected sums injections across sites.
func (s Stats) TotalInjected() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c.Injected
	}
	return n
}

// TotalVisits sums site visits.
func (s Stats) TotalVisits() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c.Visits
	}
	return n
}

// String renders the tally sorted by site name.
func (s Stats) String() string {
	sites := make([]string, 0, len(s.Counts))
	for site := range s.Counts {
		sites = append(sites, string(site))
	}
	sort.Strings(sites)
	parts := make([]string, 0, len(sites))
	for _, site := range sites {
		c := s.Counts[Site(site)]
		parts = append(parts, fmt.Sprintf("%s %d/%d", site, c.Injected, c.Visits))
	}
	if len(parts) == 0 {
		return "no faults"
	}
	return strings.Join(parts, ", ")
}

// Faults is the concurrency-safe deterministic Injector a Plan builds.
type Faults struct {
	mu       sync.Mutex
	plan     Plan
	counts   map[Site]SiteCount
	observer func(Site)
}

// SetObserver installs a callback invoked once per injected fault with
// the firing site — the telemetry seam (injection decisions are
// unchanged; determinism is untouched). The callback runs under the
// injector's mutex and must not call back into it. Set before the run.
func (f *Faults) SetObserver(fn func(Site)) {
	f.mu.Lock()
	f.observer = fn
	f.mu.Unlock()
}

// NewInjector builds the plan's injector.
func NewInjector(p Plan) *Faults {
	return &Faults{plan: p, counts: make(map[Site]SiteCount)}
}

// Injector is shorthand for NewInjector(p).
func (p Plan) Injector() *Faults { return NewInjector(p) }

// Fire implements Injector: scripted decisions first, then the seeded
// hash against the site's rate, bounded by the site's budget.
func (f *Faults) Fire(site Site) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.counts[site]
	visit := c.Visits
	c.Visits++
	fire := false
	if site == SiteWALAppend && f.plan.CrashAppend > 0 {
		// Scheduled process death: exactly the n-th append, unbudgeted.
		if visit+1 == f.plan.CrashAppend {
			c.Injected++
			f.counts[site] = c
			if f.observer != nil {
				f.observer(site)
			}
			return true
		}
		f.counts[site] = c
		return false
	}
	if script, ok := f.plan.Script[site]; ok && visit < uint64(len(script)) {
		fire = script[visit]
	} else if rate := f.plan.Rates[site]; rate > 0 {
		fire = hash01(f.plan.Seed, site, visit) < rate
	}
	if fire {
		if cap := f.plan.Budget[site]; cap > 0 && c.Injected >= uint64(cap) {
			fire = false
		}
	}
	if fire {
		c.Injected++
		if f.observer != nil {
			f.observer(site)
		}
	}
	f.counts[site] = c
	return fire
}

// Injected returns a site's injection count so far.
func (f *Faults) Injected(site Site) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[site].Injected
}

// Stats snapshots the visit/injection tallies.
func (f *Faults) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Site]SiteCount, len(f.counts))
	for s, c := range f.counts {
		out[s] = c
	}
	return Stats{Counts: out}
}

// Plan returns the plan the injector was built from.
func (f *Faults) Plan() Plan { return f.plan }

// Hash01 maps (seed, site, visit) to a uniform float64 in [0, 1) — the
// shared determinism backbone, exported so crash tooling (torn-write
// lengths, bit-flip offsets, per-seed crash points) derives its choices
// from the same scheme a printed plan replays.
func Hash01(seed int64, site Site, visit uint64) float64 {
	return hash01(seed, site, visit)
}

// hash01 maps (seed, site, visit) to a uniform float64 in [0, 1) via a
// splitmix64 finalizer — the determinism backbone: no shared RNG whose
// draw order would depend on goroutine interleaving.
func hash01(seed int64, site Site, visit uint64) float64 {
	h := uint64(seed) ^ fnv64(string(site))
	h = h*0x9e3779b97f4a7c15 + visit + 1
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
