package chaos

import (
	"errors"
	"runtime"
	"sync/atomic"
)

// ErrRetriesExhausted reports that a transaction used up its retry
// budget under a bounded RetryPolicy. Substrates return it (wrapped)
// instead of spinning forever; campaign harnesses count it as a
// controlled give-up, not a failure.
var ErrRetriesExhausted = errors.New("chaos: retry budget exhausted")

// RetryPolicy is the shared recovery policy: bounded retries with
// exponential backoff and deterministic jitter. It replaces the ad-hoc
// per-substrate retry counters and Gosched loops. In the cooperative
// world "backoff" is a number of scheduler yields; goroutine substrates
// spend them as runtime.Gosched calls.
//
// The zero value retries forever with no backoff; use Default for the
// tuned policy.
type RetryPolicy struct {
	// MaxRetries bounds retries after the first attempt; < 0 means
	// unlimited, 0 means no retries.
	MaxRetries int
	// BaseYields is the backoff of the first retry (default 1 when
	// Multiplier is set).
	BaseYields int
	// MaxYields caps the backoff (default 64).
	MaxYields int
	// Multiplier grows the backoff per retry (default 2 when BaseYields
	// is set).
	Multiplier float64
	// Jitter in [0,1] randomizes each backoff by ±Jitter/2 of its value,
	// deterministically from Seed and the draw index.
	Jitter float64
	// Seed feeds the jitter hash.
	Seed int64
	// OnRetry, when set, observes every budget draw: attempt number n
	// (1-based) and whether the budget allowed it (false = the
	// transaction gives up with ErrRetriesExhausted). The telemetry
	// seam for retry-depth histograms; set before sharing the policy.
	OnRetry func(n int, allowed bool)

	draws atomic.Uint64
}

// Default is the tuned policy: 64 retries, exponential backoff 1→64
// yields, 25% jitter.
func Default(seed int64) *RetryPolicy {
	return &RetryPolicy{MaxRetries: 64, BaseYields: 1, MaxYields: 64, Multiplier: 2, Jitter: 0.25, Seed: seed}
}

// Unlimited retries forever with the same backoff shape as Default —
// the drop-in replacement for substrates that must not give up.
func Unlimited(seed int64) *RetryPolicy {
	return &RetryPolicy{MaxRetries: -1, BaseYields: 1, MaxYields: 64, Multiplier: 2, Jitter: 0.25, Seed: seed}
}

// Allow reports whether retry number n (1-based: the n-th re-attempt)
// is within budget. A nil policy allows everything.
func (p *RetryPolicy) Allow(n int) bool {
	if p == nil {
		return true
	}
	ok := p.MaxRetries < 0 || n <= p.MaxRetries
	if p.OnRetry != nil {
		p.OnRetry(n, ok)
	}
	return ok
}

// Yields returns the backoff, in scheduler yields, before retry n
// (1-based). A nil policy backs off linearly to 64 — the legacy
// substrate behaviour.
func (p *RetryPolicy) Yields(n int) int {
	if n < 1 {
		n = 1
	}
	if p == nil {
		if n > 64 {
			return 64
		}
		return n
	}
	base := p.BaseYields
	mult := p.Multiplier
	if base <= 0 && mult > 0 {
		base = 1
	}
	if mult <= 0 && base > 0 {
		mult = 2
	}
	if base <= 0 {
		return 0
	}
	max := p.MaxYields
	if max <= 0 {
		max = 64
	}
	y := float64(base)
	for i := 1; i < n; i++ {
		y *= mult
		if y >= float64(max) {
			y = float64(max)
			break
		}
	}
	if p.Jitter > 0 {
		// Deterministic jitter in [1-J/2, 1+J/2): same draw sequence for
		// the same seed.
		d := p.draws.Add(1)
		u := hash01(p.Seed, "retry/jitter", d)
		y *= 1 + p.Jitter*(u-0.5)
	}
	n2 := int(y)
	if n2 > max {
		n2 = max
	}
	if n2 < 0 {
		n2 = 0
	}
	return n2
}

// Backoff spends retry n's backoff as scheduler yields — what the
// goroutine substrates call between attempts.
func (p *RetryPolicy) Backoff(n int) {
	for i := p.Yields(n); i > 0; i-- {
		runtime.Gosched()
	}
}
