package shard

import (
	"errors"
	"fmt"
	"sync"

	"pushpull/internal/backend"
	typedops "pushpull/internal/ops"
)

// A branch is one shard's slice of a transaction: a dedicated
// goroutine running the shard backend's Atomic whose closure blocks on
// a channel waiting for the next operation (the interactive-session
// pattern from internal/server, extended with a prepare/decide stage).
//
// In Push/Pull terms: feeding an operation to a branch APPs and PUSHes
// it on the participant shard's machine; cmdPrepare ends the branch's
// op stream with every operation pushed — the shard is prepared, its
// effects visible-but-uncommitted in the shard log. The branch then
// blocks until the coordinator's decision: commit returns nil so the
// substrate runs its CMT (flipping the branch's entries committed,
// journaled in the shard WAL, certified by the shard's shadow
// machine), abort returns errGlobalAbort so the substrate rewinds via
// UNPUSH/UNAPP. Substrate-level conflict retries re-enter the closure,
// which first replays the journal of already-answered operations.

// Terminal branch/transaction errors.
var (
	// ErrClientAbort: the client asked to roll back; foreign to every
	// substrate so Atomic aborts exactly once and returns it.
	ErrClientAbort = errors.New("shard: client abort")
	// errClientGone: the branch was abandoned mid-transaction.
	errClientGone = errors.New("shard: client disconnected mid-transaction")
	// ErrReplayDiverged: a conflict retry could not reproduce the reads
	// already answered to an interactive client.
	ErrReplayDiverged = errors.New("shard: interactive replay diverged (answered reads went stale)")
	// errGlobalAbort: the cross-shard coordinator decided abort; the
	// branch's substrate transaction rewinds.
	errGlobalAbort = errors.New("shard: cross-shard transaction aborted by coordinator")
)

type cmdKind int

const (
	cmdGet cmdKind = iota
	cmdPut
	cmdTyped   // typed ADT operation; cmd.opKind discriminates
	cmdCommit  // direct single-branch commit (no coordinator)
	cmdAbort   // client-requested rollback
	cmdPrepare // end of op stream; block for the coordinator's decision
)

type cmd struct {
	kind   cmdKind
	opKind OpKind // cmdTyped only
	key    uint64
	val    int64
	arg    int64 // second typed operand (CAS: val=expect, arg=new)
	idx    int   // result index (one-shot feeding)
}

type reply struct {
	val      int64
	found    bool
	commuted bool
	idx      int
}

// journalEntry is one answered operation, kept for conflict replay and
// (puts) for the coordinator's roll-forward write-set.
type journalEntry struct {
	kind     cmdKind
	opKind   OpKind // cmdTyped only
	key      uint64
	val      int64 // put argument / first typed operand
	arg      int64 // second typed operand
	retVal   int64 // answered get/typed value
	retFound bool
	idx      int
}

// decision is one branch's commit/abort gate. Every branch owns its
// own decision so the release order is per branch: the mutex
// coordinator decides all of a transaction's branches together, while
// the sequencer's shard executors decide each branch at its queue
// position — that per-shard release order IS the GSN order. decide is
// idempotent (first caller wins), so a commit-path release and an
// engine-teardown abort can race without a double-close.
type decision struct {
	once   sync.Once
	ch     chan struct{}
	commit bool
}

func newDecision() *decision { return &decision{ch: make(chan struct{})} }

// state reports (decided, commit) without blocking.
func (d *decision) state() (bool, bool) {
	select {
	case <-d.ch:
		return true, d.commit
	default:
		return false, false
	}
}

// decide publishes the outcome; later calls are no-ops.
func (d *decision) decide(commit bool) {
	d.once.Do(func() {
		d.commit = commit
		close(d.ch)
	})
}

// branch is one shard's open slice of a transaction.
type branch struct {
	st   *shardState
	name string
	dec  *decision
	// validate re-checks replayed reads against answered values
	// (interactive sessions: the client has seen them). One-shot
	// transactions leave it false — nothing is reported before the
	// global commit, so a retry may legitimately observe fresh values.
	// Post-decision-commit replays never validate: the global commit is
	// final and the branch must roll forward.
	validate bool

	cmds     chan cmd
	replies  chan reply
	prepared chan struct{} // closed by the body when every op is pushed
	done     chan error    // Atomic's outcome; buffered so run never blocks

	// Written by the body goroutine; read by the coordinator only after
	// done is received (happens-before via the channel).
	journal      []journalEntry
	preparedSent bool
	pending      *cmd
	attempts     uint32
	retries      uint32

	// finished/errv cache the consumed done outcome so every caller
	// path (send, finish, wait, abandon) observes it exactly once.
	finished bool
	errv     error
}

func newBranch(st *shardState, name string, dec *decision, validate bool) *branch {
	return &branch{
		st: st, name: name, dec: dec, validate: validate,
		cmds:     make(chan cmd),
		replies:  make(chan reply),
		prepared: make(chan struct{}),
		done:     make(chan error, 1),
	}
}

// run executes the branch transaction; the outcome lands on done.
func (b *branch) run() {
	err := b.st.be.Atomic(b.name, b.body)
	if b.attempts > 0 {
		b.retries = b.attempts - 1
	}
	b.done <- err
}

func (b *branch) body(v view) error {
	b.attempts++
	decided, committed := false, false
	if b.dec != nil {
		decided, committed = b.dec.state()
	}
	// Validated replay: re-execute everything already answered. After a
	// global commit decision the validation is waived — the decision is
	// final, so the branch re-applies its writes and commits regardless
	// of what its re-executed reads observe (roll forward).
	for i := range b.journal {
		j := &b.journal[i]
		switch j.kind {
		case cmdGet:
			val, found, err := v.Get(j.key)
			if err != nil {
				return err
			}
			if b.validate && !(decided && committed) &&
				(val != j.retVal || found != j.retFound) {
				return ErrReplayDiverged
			}
		case cmdPut:
			if err := v.Put(j.key, j.val); err != nil {
				return err
			}
		case cmdTyped:
			ret, _, err := typedDo(v, j.opKind, j.key, j.val, j.arg)
			if err != nil {
				return err
			}
			// The roll-forward write-set derives from the executed
			// answer (a CAS resolves against what this attempt read),
			// so the journal tracks the latest attempt's value.
			j.retVal = ret
		}
	}
	if b.preparedSent {
		return b.await()
	}
	for {
		if b.pending == nil {
			c, ok := <-b.cmds
			if !ok {
				return errClientGone
			}
			b.pending = &c
		}
		// pending survives substrate retries: a command consumed from
		// the channel is either answered or carried into the next
		// attempt, never dropped.
		switch b.pending.kind {
		case cmdCommit:
			return nil
		case cmdAbort:
			return ErrClientAbort
		case cmdPrepare:
			b.preparedSent = true
			close(b.prepared)
			return b.await()
		case cmdGet:
			val, found, err := v.Get(b.pending.key)
			if err != nil {
				return err
			}
			b.journal = append(b.journal, journalEntry{
				kind: cmdGet, key: b.pending.key,
				retVal: val, retFound: found, idx: b.pending.idx,
			})
			idx := b.pending.idx
			b.pending = nil
			b.replies <- reply{val: val, found: found, idx: idx}
		case cmdPut:
			if err := v.Put(b.pending.key, b.pending.val); err != nil {
				return err
			}
			b.journal = append(b.journal, journalEntry{
				kind: cmdPut, key: b.pending.key, val: b.pending.val, idx: b.pending.idx,
			})
			idx := b.pending.idx
			b.pending = nil
			b.replies <- reply{idx: idx}
		case cmdTyped:
			ret, commuted, err := typedDo(v, b.pending.opKind, b.pending.key, b.pending.val, b.pending.arg)
			if err != nil {
				return err
			}
			b.journal = append(b.journal, journalEntry{
				kind: cmdTyped, opKind: b.pending.opKind,
				key: b.pending.key, val: b.pending.val, arg: b.pending.arg,
				retVal: ret, idx: b.pending.idx,
			})
			idx := b.pending.idx
			b.pending = nil
			b.replies <- reply{val: ret, found: true, commuted: commuted, idx: idx}
		}
	}
}

// typedDo routes one typed ADT operation through the backend's typed
// surface (shard.OpKind values mirror ops.Code numerically).
func typedDo(v view, k OpKind, key uint64, a, b int64) (ret int64, commuted bool, err error) {
	tv, ok := v.(backend.TypedView)
	if !ok {
		return 0, false, fmt.Errorf("shard: op %v: typed operations unsupported on this substrate", k)
	}
	return tv.Typed(typedops.Code(k), key, a, b)
}

// await blocks for the coordinator's decision: nil commits the
// substrate transaction, errGlobalAbort rewinds it.
func (b *branch) await() error {
	<-b.dec.ch
	if b.dec.commit {
		return nil
	}
	return errGlobalAbort
}

// puts extracts the branch's journaled write-set in op order — the
// coordinator's roll-forward evidence. Typed operations journal their
// logical effect (wd as a negative WAdd, a resolved CAS as the WPut it
// installed, reads nothing), so a redo replays the operation rather
// than racing concurrent writers to a final value.
func (b *branch) puts() []KV {
	var out []KV
	for _, j := range b.journal {
		switch j.kind {
		case cmdPut:
			out = append(out, KV{Key: j.key, Val: j.val, Method: typedops.WPut})
		case cmdTyped:
			m, val, write, ok := typedops.Effect(typedops.Code(j.opKind), j.val, j.arg, j.retVal)
			if !ok || !write {
				continue // reads, and ops barred from cross-shard txns
			}
			out = append(out, KV{Key: j.key, Val: val, Method: m})
		}
	}
	return out
}

// abandon tears the branch down from the caller side: closing cmds
// aborts the transaction; the drain loop swallows any reply in flight
// and waits for the outcome.
func (b *branch) abandon() error {
	if b.finished {
		return b.errv
	}
	close(b.cmds)
	for {
		select {
		case <-b.replies:
		case err := <-b.done:
			b.finished, b.errv = true, err
			return err
		}
	}
}

// wait blocks for (or returns the cached) Atomic outcome.
func (b *branch) wait() error {
	if !b.finished {
		b.errv = <-b.done
		b.finished = true
	}
	return b.errv
}

// post delivers one command, or reports the branch's death if its
// Atomic already returned (the disciplined protocol never does this,
// but selecting on done turns a protocol slip into an error instead of
// a hang).
func (b *branch) post(c cmd) error {
	if b.finished {
		return b.errv
	}
	select {
	case b.cmds <- c:
		return nil
	case err := <-b.done:
		b.finished, b.errv = true, err
		return err
	}
}

// send feeds one command, answering (reply, nil) for ops; a (zero,
// err) return means the branch died processing it (the error is
// Atomic's outcome and the branch goroutine is finished).
func (b *branch) send(c cmd) (reply, error) {
	if err := b.post(c); err != nil {
		return reply{}, err
	}
	select {
	case r := <-b.replies:
		return r, nil
	case err := <-b.done:
		b.finished, b.errv = true, err
		return reply{}, err
	}
}

// finish feeds a terminal command (commit or abort) and returns
// Atomic's outcome.
func (b *branch) finish(kind cmdKind) error {
	if err := b.post(cmd{kind: kind}); err != nil {
		return err
	}
	return b.wait()
}

// prepare feeds cmdPrepare and blocks until the branch is prepared
// (every op pushed, body parked on the decision) or dead. A nil return
// means prepared; a non-nil one is Atomic's terminal outcome.
func (b *branch) prepare() error {
	if err := b.post(cmd{kind: cmdPrepare}); err != nil {
		return err
	}
	select {
	case <-b.prepared:
		return nil
	case err := <-b.done:
		b.finished, b.errv = true, err
		return err
	}
}
