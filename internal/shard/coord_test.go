package shard

import (
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecs() []CommitRec {
	return []CommitRec{
		{GSN: 1, Name: "x1", Branches: []BranchRec{
			{Shard: 0, Puts: []KV{{Key: 3, Val: 30}}},
			{Shard: 2, Puts: []KV{{Key: 7, Val: -70}, {Key: 9, Val: 90}}},
		}},
		{GSN: 2, Name: "x2", Branches: []BranchRec{
			{Shard: 1, Puts: nil}, // read-only branch
			{Shard: 3, Puts: []KV{{Key: 11, Val: 1}}},
		}},
	}
}

func TestCoordLogRoundTrip(t *testing.T) {
	l, err := OpenCoordLog("")
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecs()
	for _, r := range want {
		if err := l.AppendCommit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendEnd(1); err != nil {
		t.Fatal(err)
	}
	got, trunc := DecodeCoordLog(l.Image())
	if trunc != nil {
		t.Fatalf("unexpected truncation: %v", trunc)
	}
	want[0].Ended = true
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCoordLogFileBacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.log")
	l, err := OpenCoordLog(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecs()[0]
	if err := l.AppendCommit(rec); err != nil {
		t.Fatal(err)
	}
	img := l.Image()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, trunc := DecodeCoordLog(img)
	if trunc != nil || len(got) != 1 || got[0].Name != "x1" {
		t.Fatalf("file-backed decode: %+v, %v", got, trunc)
	}
	// Reopening the same path must refuse (exclusive create).
	if _, err := OpenCoordLog(path); err == nil {
		t.Fatal("expected O_EXCL failure on existing coordinator log")
	}
}

func TestCoordLogTornTail(t *testing.T) {
	l, _ := OpenCoordLog("")
	for _, r := range sampleRecs() {
		if err := l.AppendCommit(r); err != nil {
			t.Fatal(err)
		}
	}
	full := l.Image()
	// Every proper prefix must decode to a prefix of the records with a
	// truncation reason (or cleanly at frame boundaries).
	for cut := coordHdrLen; cut < len(full); cut++ {
		got, _ := DecodeCoordLog(full[:cut])
		if len(got) > 2 {
			t.Fatalf("cut %d produced %d records", cut, len(got))
		}
		for i, r := range got {
			if r.Name != sampleRecs()[i].Name {
				t.Fatalf("cut %d record %d = %q", cut, i, r.Name)
			}
		}
	}
	// A flipped payload byte is caught by the checksum.
	bad := append([]byte(nil), full...)
	bad[len(bad)-1] ^= 0xff
	got, trunc := DecodeCoordLog(bad)
	if trunc == nil || len(got) != 1 {
		t.Fatalf("bitflip: %d records, trunc=%v", len(got), trunc)
	}
}

func TestCoordLogKill(t *testing.T) {
	l, _ := OpenCoordLog("")
	if err := l.AppendCommit(sampleRecs()[0]); err != nil {
		t.Fatal(err)
	}
	// The lazy end marker is not forced; a kill right after must still
	// preserve the forced commit record.
	if err := l.AppendEnd(1); err != nil {
		t.Fatal(err)
	}
	l.Kill()
	if !l.Crashed() {
		t.Fatal("Crashed() false after Kill")
	}
	if err := l.AppendCommit(sampleRecs()[1]); err != ErrCoordCrashed {
		t.Fatalf("append after kill: %v", err)
	}
	got, trunc := DecodeCoordLog(l.Image())
	if trunc != nil {
		t.Fatalf("durable prefix must decode cleanly: %v", trunc)
	}
	if len(got) != 1 || got[0].Name != "x1" || got[0].Ended {
		t.Fatalf("surviving image: %+v", got)
	}
}

func TestDecodeCoordLogEmptyAndBad(t *testing.T) {
	if recs, trunc := DecodeCoordLog(nil); recs != nil || trunc != nil {
		t.Fatalf("empty image: %v, %v", recs, trunc)
	}
	if _, trunc := DecodeCoordLog([]byte("NOTALOG!")); trunc == nil {
		t.Fatal("expected header error")
	}
}

// TestCoordLogBatchRoundTrip appends a mix of batch and standalone
// commit records and asserts the full decode folds the batched
// decisions in order, tracks the sealed epoch, and still applies CEnd
// markers to batched commits.
func TestCoordLogBatchRoundTrip(t *testing.T) {
	l, err := OpenCoordLog("")
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecs()
	if err := l.AppendBatch(BatchRec{Epoch: 1, Commits: recs[:1]}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(recs[1]); err != nil {
		t.Fatal(err)
	}
	third := CommitRec{GSN: 3, Name: "g3", Branches: []BranchRec{
		{Shard: 0, Puts: []KV{{Key: 1, Val: 5}}},
		{Shard: 1, Puts: []KV{{Key: 2, Val: 6}}},
	}}
	if err := l.AppendBatch(BatchRec{Epoch: 2, Commits: []CommitRec{third}}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEnd(3); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	cr := DecodeCoordLogFull(l.Image())
	if cr.Truncated != nil {
		t.Fatalf("unexpected truncation: %v", cr.Truncated)
	}
	if cr.Batches != 2 || cr.SeqEpoch != 2 {
		t.Fatalf("batches %d epoch %d, want 2 and 2", cr.Batches, cr.SeqEpoch)
	}
	want := []CommitRec{recs[0], recs[1], third}
	want[2].Ended = true
	if !reflect.DeepEqual(cr.Commits, want) {
		t.Fatalf("batch fold mismatch:\n got %+v\nwant %+v", cr.Commits, want)
	}
}

// TestCoordLogBatchTornTail kills the log with an unsynced batch
// pending and asserts the surviving image decodes to the pre-batch
// prefix — presumed abort for the whole torn epoch.
func TestCoordLogBatchTornTail(t *testing.T) {
	l, err := OpenCoordLog("")
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecs()
	if err := l.AppendBatch(BatchRec{Epoch: 1, Commits: recs[:1]}); err != nil {
		t.Fatal(err)
	}
	// A torn second batch: garbage tail shorter than a frame header.
	img := append(l.Image(), 0xFF, 0x00)
	cr := DecodeCoordLogFull(img)
	if cr.Truncated == nil {
		t.Fatal("expected a truncation reason for the torn tail")
	}
	if len(cr.Commits) != 1 || cr.Commits[0].Name != recs[0].Name {
		t.Fatalf("torn decode kept %+v, want just %q", cr.Commits, recs[0].Name)
	}
	if cr.SeqEpoch != 1 {
		t.Fatalf("torn decode epoch %d, want 1", cr.SeqEpoch)
	}
}
