package shard

import (
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecs() []CommitRec {
	return []CommitRec{
		{GSN: 1, Name: "x1", Branches: []BranchRec{
			{Shard: 0, Puts: []KV{{Key: 3, Val: 30}}},
			{Shard: 2, Puts: []KV{{Key: 7, Val: -70}, {Key: 9, Val: 90}}},
		}},
		{GSN: 2, Name: "x2", Branches: []BranchRec{
			{Shard: 1, Puts: nil}, // read-only branch
			{Shard: 3, Puts: []KV{{Key: 11, Val: 1}}},
		}},
	}
}

func TestCoordLogRoundTrip(t *testing.T) {
	l, err := OpenCoordLog("")
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecs()
	for _, r := range want {
		if err := l.AppendCommit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendEnd(1); err != nil {
		t.Fatal(err)
	}
	got, trunc := DecodeCoordLog(l.Image())
	if trunc != nil {
		t.Fatalf("unexpected truncation: %v", trunc)
	}
	want[0].Ended = true
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCoordLogFileBacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.log")
	l, err := OpenCoordLog(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecs()[0]
	if err := l.AppendCommit(rec); err != nil {
		t.Fatal(err)
	}
	img := l.Image()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, trunc := DecodeCoordLog(img)
	if trunc != nil || len(got) != 1 || got[0].Name != "x1" {
		t.Fatalf("file-backed decode: %+v, %v", got, trunc)
	}
	// Reopening the same path must refuse (exclusive create).
	if _, err := OpenCoordLog(path); err == nil {
		t.Fatal("expected O_EXCL failure on existing coordinator log")
	}
}

func TestCoordLogTornTail(t *testing.T) {
	l, _ := OpenCoordLog("")
	for _, r := range sampleRecs() {
		if err := l.AppendCommit(r); err != nil {
			t.Fatal(err)
		}
	}
	full := l.Image()
	// Every proper prefix must decode to a prefix of the records with a
	// truncation reason (or cleanly at frame boundaries).
	for cut := coordHdrLen; cut < len(full); cut++ {
		got, _ := DecodeCoordLog(full[:cut])
		if len(got) > 2 {
			t.Fatalf("cut %d produced %d records", cut, len(got))
		}
		for i, r := range got {
			if r.Name != sampleRecs()[i].Name {
				t.Fatalf("cut %d record %d = %q", cut, i, r.Name)
			}
		}
	}
	// A flipped payload byte is caught by the checksum.
	bad := append([]byte(nil), full...)
	bad[len(bad)-1] ^= 0xff
	got, trunc := DecodeCoordLog(bad)
	if trunc == nil || len(got) != 1 {
		t.Fatalf("bitflip: %d records, trunc=%v", len(got), trunc)
	}
}

func TestCoordLogKill(t *testing.T) {
	l, _ := OpenCoordLog("")
	if err := l.AppendCommit(sampleRecs()[0]); err != nil {
		t.Fatal(err)
	}
	// The lazy end marker is not forced; a kill right after must still
	// preserve the forced commit record.
	if err := l.AppendEnd(1); err != nil {
		t.Fatal(err)
	}
	l.Kill()
	if !l.Crashed() {
		t.Fatal("Crashed() false after Kill")
	}
	if err := l.AppendCommit(sampleRecs()[1]); err != ErrCoordCrashed {
		t.Fatalf("append after kill: %v", err)
	}
	got, trunc := DecodeCoordLog(l.Image())
	if trunc != nil {
		t.Fatalf("durable prefix must decode cleanly: %v", trunc)
	}
	if len(got) != 1 || got[0].Name != "x1" || got[0].Ended {
		t.Fatalf("surviving image: %+v", got)
	}
}

func TestDecodeCoordLogEmptyAndBad(t *testing.T) {
	if recs, trunc := DecodeCoordLog(nil); recs != nil || trunc != nil {
		t.Fatalf("empty image: %v, %v", recs, trunc)
	}
	if _, trunc := DecodeCoordLog([]byte("NOTALOG!")); trunc == nil {
		t.Fatal("expected header error")
	}
}
