package shard

import (
	"errors"
	"fmt"

	"pushpull/internal/mvcc"
)

// ErrNoMVCC reports that the engine has no version stores to serve
// snapshots from (certification disabled). Callers fall back to the
// normal transactional read path.
var ErrNoMVCC = errors.New("shard: no snapshot store (certification disabled)")

// Cut is a GSN-consistent multi-shard snapshot: one pinned per-shard
// snapshot each, taken under commitMu. Because every cross-shard
// transaction's branch CMTs complete inside one commitMu critical
// section, no cut can observe a cross-shard transaction on some
// participant shards but not others — the cut is a consistent prefix
// of the Kahn-merged global commit order, i.e. a single global prefix
// of G. Single-shard commits interleave freely, but they order only
// within their own shard's chain, so any cut of per-shard prefixes
// containing them is still consistent.
type Cut struct {
	eng   *Engine
	snaps []*mvcc.Snapshot
}

// SnapshotCut pins one snapshot per shard at a GSN-consistent point.
// The caller must Close it. Under the mutex coordinator, commitMu
// alone gives cross-shard atomicity; under the sequencer the cut gate
// does: new batch dispatches block while a cut is pinning (cutters)
// and the cut waits out every in-flight release (releasing), so no cut
// observes an epoch's transaction on some participant shards but not
// others.
func (e *Engine) SnapshotCut() (*Cut, error) {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	if e.seqr != nil {
		e.cutMu.Lock()
		e.cutters++
		for e.releasing > 0 {
			e.cutCond.Wait()
		}
		defer func() {
			e.cutters--
			e.cutCond.Broadcast()
			e.cutMu.Unlock()
		}()
	}
	snaps := make([]*mvcc.Snapshot, len(e.shards))
	for i, st := range e.shards {
		store := st.be.Snapshots()
		if store == nil {
			for _, sn := range snaps[:i] {
				sn.Close()
			}
			return nil, ErrNoMVCC
		}
		snaps[i] = store.Snapshot()
	}
	return &Cut{eng: e, snaps: snaps}, nil
}

// Get reads key at the cut, routed to its home shard's snapshot.
func (c *Cut) Get(key uint64) (int64, bool) {
	return c.snaps[c.eng.router.Shard(key)].Get(key)
}

// Watermark returns the pinned commit seq of shard sid's snapshot
// (per-shard stamps are independent sequences; there is no single
// cross-shard watermark, the cut itself is the consistency token).
func (c *Cut) Watermark(sid int) uint64 { return c.snaps[sid].Watermark() }

// Snaps exposes the per-shard pinned snapshots (index = shard id) for
// callers composing their own read loop over the cut.
func (c *Cut) Snaps() []*mvcc.Snapshot { return c.snaps }

// ShardOf returns key's home shard.
func (e *Engine) ShardOf(key uint64) int { return e.router.Shard(key) }

// Certifiers returns the per-shard snapshot-read certifiers, nil when
// certification is disabled.
func (e *Engine) Certifiers() []*mvcc.Shadow {
	out := make([]*mvcc.Shadow, len(e.shards))
	for i, st := range e.shards {
		sh := st.be.SnapshotCert()
		if sh == nil {
			return nil
		}
		out[i] = sh
	}
	return out
}

// Close releases every pin. Idempotent per snapshot.
func (c *Cut) Close() {
	for _, sn := range c.snaps {
		sn.Close()
	}
}

// DoReadOnly runs ops as one read-only snapshot transaction over a
// GSN-consistent cut: zero locks, zero validation, zero retries, and
// every observed read certified against the per-shard committed
// history before the results are released. Write ops are rejected —
// the read-only class is PULL-only by definition.
func (e *Engine) DoReadOnly(ops []Op) ([]Result, error) {
	if e.fenced.Load() {
		return nil, ErrFenced
	}
	cut, err := e.SnapshotCut()
	if err != nil {
		return nil, err
	}
	defer cut.Close()
	results := make([]Result, len(ops))
	perShard := make([][]mvcc.ReadObs, len(e.shards))
	for i, op := range ops {
		if op.Kind != OpGet {
			return nil, fmt.Errorf("shard: read-only transaction carries a write (op %d)", i)
		}
		sid := e.router.Shard(op.Key)
		val, found := cut.snaps[sid].Get(op.Key)
		results[i] = Result{Val: val, Found: found}
		perShard[sid] = append(perShard[sid], mvcc.ReadObs{Key: op.Key, Val: val, Found: found})
	}
	for sid, reads := range perShard {
		if len(reads) == 0 {
			continue
		}
		cert := e.shards[sid].be.SnapshotCert()
		if cert == nil {
			return nil, ErrNoMVCC
		}
		if err := cert.Certify(cut.snaps[sid].Watermark(), reads); err != nil {
			return nil, fmt.Errorf("shard %d: %w", sid, err)
		}
	}
	return results, nil
}

// MVCCStats sums the per-shard version store censuses (zero when
// certification is disabled).
func (e *Engine) MVCCStats() mvcc.Stats {
	var out mvcc.Stats
	for _, st := range e.shards {
		store := st.be.Snapshots()
		if store == nil {
			continue
		}
		s := store.StoreStats()
		out.Versions += s.Versions
		out.Chains += s.Chains
		out.SnapshotsOpen += s.SnapshotsOpen
		out.Truncated += s.Truncated
		if s.Watermark > out.Watermark {
			out.Watermark = s.Watermark
		}
	}
	return out
}
