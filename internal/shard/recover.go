package shard

import (
	"fmt"
	"os"
	"path/filepath"

	"pushpull/internal/backend"
	"pushpull/internal/recovery"
	"pushpull/internal/wal"
)

// Multi-log recovery: per-shard recovery first, then a consistency cut
// from the coordinator log.
//
//  1. Every shard's WAL recovers and re-certifies independently
//     (recovery.RecoverAndCertify): the committed prefix in stamp
//     order, replayed on a fresh shadow machine. The logs are only
//     partially constrained against each other — each shard froze at
//     its own durable prefix at crash time.
//  2. The coordinator log is decoded; each durable CCommit is a
//     globally-committed cross-shard transaction. Any participant
//     branch whose CMT did not reach its shard's durable prefix is
//     rolled forward from the journaled write-set (a Redo). A
//     cross-shard transaction with no durable CCommit cannot have
//     committed any branch (branches CMT only after the forced
//     decision), so per-shard recovery already discarded its PUSHes —
//     presumed abort, consistently on every shard.
//  3. The per-shard commit-order chains plus the coordinator's GSN
//     chain must merge into one total order (MergeOrders) — the
//     cross-shard serializability certificate over what survived.
//
// After this, zero transactions are in doubt: every cross-shard
// transaction is either fully committed (possibly via redo) or fully
// absent.

// Image is a sharded engine's durable snapshot: per-shard WAL segment
// images plus the coordinator log image. The in-memory crash/restart
// path hands it back via Options.RecoverFrom.
type Image struct {
	Shards [][][]byte // [shard][segment]bytes
	Coord  []byte
}

// Empty reports whether there is nothing to recover.
func (img *Image) Empty() bool {
	if img == nil {
		return true
	}
	for _, segs := range img.Shards {
		for _, s := range segs {
			if len(s) > 0 {
				return false
			}
		}
	}
	return len(img.Coord) == 0
}

// Redo is one branch to roll forward: a globally-committed cross-shard
// transaction whose CMT never reached this shard's durable prefix.
type Redo struct {
	Shard int
	GSN   uint64
	Name  string
	Puts  []KV
}

// MultiReport is the sharded recovery certificate.
type MultiReport struct {
	// Shards holds each shard's recovery report (replay + certification).
	Shards []recovery.Report
	// CoordCommits counts durable cross-shard commit decisions;
	// CoordTruncated records a torn coordinator tail (tolerated).
	CoordCommits   int
	CoordTruncated error
	// CoordBatches counts durable sequencer batch records; SeqEpoch is
	// the highest sealed sequencer epoch in the prefix (zero for a
	// mutex-coordinated image). Batched decisions are already folded
	// into CoordCommits — these report the batching shape.
	CoordBatches int
	SeqEpoch     uint64
	// Redos lists the branches resolved by roll-forward; InDoubtResolved
	// counts the cross-shard transactions that needed it. InDoubt is the
	// count left unresolved — zero by construction, reported so sweeps
	// can assert it.
	Redos           []Redo
	InDoubtResolved int
	InDoubt         int
	// MergedOrder is the Kahn-merged global commit order over every
	// chain that survived.
	MergedOrder []string
	// Epoch is the highest serving epoch branded into the coordinator
	// log's durable prefix (0 when unbranded) — a promotion serves at
	// Epoch+1.
	Epoch uint64
	// LeaseEpoch is the highest lease epoch branded into the coordinator
	// log's durable prefix (0 when unbranded) — a new lease must exceed
	// it.
	LeaseEpoch uint64
	// Sessions is the merged exactly-once dedup table: per-shard WAL
	// session entries (single-shard requests) unified with coordinator
	// log entries (cross-shard requests and boot checkpoints), latest
	// sequence number per session winning.
	Sessions map[uint64]recovery.SessionEntry
}

// RecoveredTxns sums the per-shard recovered transaction counts.
func (r MultiReport) RecoveredTxns() int {
	n := 0
	for _, rep := range r.Shards {
		n += len(rep.State.Txns)
	}
	return n
}

// RecoverAndCertifyImage replays a sharded durable image for the given
// substrate: per-shard recover-and-certify, coordinator resolution,
// and the merged commit-order check. A non-nil error means the image
// must not be served.
func RecoverAndCertifyImage(img *Image, substrate string) (MultiReport, error) {
	var out MultiReport
	if img == nil {
		return out, nil
	}
	committedBy := make([]map[string]bool, len(img.Shards))
	chains := make([][]string, 0, len(img.Shards)+1)
	for i, segs := range img.Shards {
		reg, err := backend.RegistryFor(substrate)
		if err != nil {
			return out, err
		}
		rep, err := recovery.RecoverAndCertify(segs, reg)
		if err != nil {
			return out, fmt.Errorf("shard %d: %w", i, err)
		}
		out.Shards = append(out.Shards, rep)
		committedBy[i] = make(map[string]bool, len(rep.State.Txns))
		chain := make([]string, 0, len(rep.State.Txns))
		for _, t := range rep.State.Txns {
			committedBy[i][t.Name] = true
			chain = append(chain, t.Name)
		}
		chains = append(chains, chain)
	}
	cr := DecodeCoordLogFull(img.Coord)
	recs := cr.Commits
	out.Epoch = cr.Epoch
	out.LeaseEpoch = cr.LeaseEpoch
	out.CoordTruncated = cr.Truncated
	out.CoordCommits = len(recs)
	out.CoordBatches = cr.Batches
	out.SeqEpoch = cr.SeqEpoch
	mergeSessions := func(src map[uint64]recovery.SessionEntry) {
		for sess, e := range src {
			if cur, ok := out.Sessions[sess]; ok && cur.SeqNo >= e.SeqNo {
				continue
			}
			if out.Sessions == nil {
				out.Sessions = make(map[uint64]recovery.SessionEntry)
			}
			out.Sessions[sess] = e
		}
	}
	for _, rep := range out.Shards {
		mergeSessions(rep.Sessions)
	}
	mergeSessions(cr.Sessions)
	coordChain := make([]string, 0, len(recs))
	for _, rec := range recs {
		coordChain = append(coordChain, rec.Name)
		missing := 0
		for _, b := range rec.Branches {
			if b.Shard < 0 || b.Shard >= len(committedBy) {
				return out, fmt.Errorf("shard: coordinator record %q names shard %d of %d (restart with the original -shards)",
					rec.Name, b.Shard, len(committedBy))
			}
			if !committedBy[b.Shard][rec.Name] {
				missing++
				out.Redos = append(out.Redos, Redo{
					Shard: b.Shard, GSN: rec.GSN, Name: rec.Name, Puts: b.Puts,
				})
			}
		}
		if missing > 0 {
			// A CEnd marker does NOT certify branch durability: a shard's
			// WAL can die during the branch CMT while the coordinator log
			// lives on long enough for a later forced append to make the
			// lazy CEnd durable. Evidence rules either way: the durable
			// CCommit alone decides, and a missing branch is rolled
			// forward from its journaled write-set.
			out.InDoubtResolved++
		}
	}
	chains = append(chains, coordChain)
	merged, err := MergeOrders(chains)
	if err != nil {
		return out, fmt.Errorf("shard: merged commit order not serializable: %w", err)
	}
	out.MergedOrder = merged
	return out, nil
}

// shardDirName names shard i's WAL subdirectory.
func shardDirName(i int) string { return fmt.Sprintf("shard-%02d", i) }

const coordLogName = "coord.log"

// ReadImageDir loads a sharded engine's durable image from dir
// (shard-NN/wal-*.seg subdirectories plus coord.log). A missing
// directory is an empty image (first boot). Returns the image and the
// number of shard directories found (0 when none).
func ReadImageDir(dir string) (*Image, int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*"))
	if err != nil {
		return nil, 0, err
	}
	img := &Image{}
	found := 0
	for _, m := range matches {
		if fi, err := os.Stat(m); err != nil || !fi.IsDir() {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(m), "shard-%d", &idx); err != nil {
			continue
		}
		segs, err := wal.ReadDir(m)
		if err != nil {
			return nil, 0, fmt.Errorf("shard: reading %s: %w", m, err)
		}
		for len(img.Shards) <= idx {
			img.Shards = append(img.Shards, nil)
		}
		img.Shards[idx] = segs
		found++
	}
	coordPath := filepath.Join(dir, coordLogName)
	if b, err := os.ReadFile(coordPath); err == nil {
		img.Coord = b
	} else if !os.IsNotExist(err) {
		return nil, 0, fmt.Errorf("shard: reading %s: %w", coordPath, err)
	}
	return img, found, nil
}

// archiveImageDir moves the previous epoch's shard WAL segments and
// coordinator log into the next free epoch-NNN subdirectory, freeing
// the namespace for fresh logs while preserving the pre-crash image.
func archiveImageDir(dir string, shards int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: creating WAL dir: %w", err)
	}
	var toMove []string
	for i := 0; i < shards; i++ {
		m, err := filepath.Glob(filepath.Join(dir, shardDirName(i), "wal-*.seg"))
		if err != nil {
			return err
		}
		toMove = append(toMove, m...)
	}
	// Stale shard dirs beyond the configured count are archived too, so
	// a later boot cannot half-read a mixed image.
	extra, _ := filepath.Glob(filepath.Join(dir, "shard-*", "wal-*.seg"))
	seen := make(map[string]bool, len(toMove))
	for _, m := range toMove {
		seen[m] = true
	}
	for _, m := range extra {
		if !seen[m] {
			toMove = append(toMove, m)
		}
	}
	coordPath := filepath.Join(dir, coordLogName)
	haveCoord := false
	if _, err := os.Stat(coordPath); err == nil {
		haveCoord = true
	}
	if len(toMove) == 0 && !haveCoord {
		return nil
	}
	var epoch string
	for n := 1; ; n++ {
		epoch = filepath.Join(dir, fmt.Sprintf("epoch-%03d", n))
		if _, err := os.Stat(epoch); os.IsNotExist(err) {
			break
		}
	}
	for _, m := range toMove {
		rel, err := filepath.Rel(dir, m)
		if err != nil {
			return err
		}
		dst := filepath.Join(epoch, rel)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		if err := os.Rename(m, dst); err != nil {
			return fmt.Errorf("shard: archiving %s: %w", m, err)
		}
	}
	if haveCoord {
		if err := os.MkdirAll(epoch, 0o755); err != nil {
			return err
		}
		if err := os.Rename(coordPath, filepath.Join(epoch, coordLogName)); err != nil {
			return fmt.Errorf("shard: archiving %s: %w", coordPath, err)
		}
	}
	return nil
}
