package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pushpull/internal/backend"
	"pushpull/internal/chaos"
	"pushpull/internal/core"
	"pushpull/internal/obs"
	typedops "pushpull/internal/ops"
	"pushpull/internal/seq"
	"pushpull/internal/serial"
	"pushpull/internal/trace"
	"pushpull/internal/wal"
)

// view aliases the backend's transactional surface.
type view = backend.View

// Options configure an Engine.
type Options struct {
	// Shards is the partition count (default 1 — the degenerate engine
	// is a plain single-machine backend).
	Shards int
	// Substrate selects the TM implementation on every shard.
	Substrate string
	// Keys sizes each shard's word-substrate register array.
	Keys int
	Seed int64
	// DisableCert drops the per-shard certifying shadow machines.
	DisableCert bool
	// Retry bounds substrate-level conflict retries (shared by all
	// shards, like the single-machine server).
	Retry *chaos.RetryPolicy
	// Plan, when non-nil, derives per-shard fault plans (Plan.ForShard)
	// and drives the coordinator death sites coord/prepared and
	// coord/commit on the engine's own injector.
	Plan *chaos.Plan
	// WALDir backs the per-shard WALs (WALDir/shard-NN/) and the
	// coordinator log (WALDir/coord.log); Durable keeps them in memory.
	WALDir       string
	Durable      bool
	SyncPolicy   wal.SyncPolicy
	GroupEvery   int
	SegmentBytes int
	// RecoverFrom supplies the durable image explicitly (the in-memory
	// restart path); it takes precedence over reading WALDir.
	RecoverFrom *Image
	// Suite receives all telemetry (default: a fresh obs.New()).
	Suite *obs.Suite
	// Ship, when non-nil, receives every newly durable byte range of
	// every log — stream is the shard index, or Shards for the
	// coordinator log — synchronously inside the durability barrier,
	// before the committer is acked. This is the replication seam: a
	// repl.Group attached here has delivered the bytes to every live
	// replica by the time any client sees the commit acknowledged.
	// Called under the owning log's mutex; must not call back into it.
	Ship func(stream, seg, off int, data []byte)
	// Epoch is the serving generation, forced into the coordinator log
	// at boot (cRecEpoch) so it ships with the stream and survives
	// restart. Zero means "epoch 1 if shipping, unbranded otherwise"; a
	// promotion passes the predecessor's epoch + 1. Must exceed the
	// recovered image's epoch when both are present.
	Epoch uint64
	// AckCheck, when non-nil, runs after a transaction commits and
	// before its acknowledgment: a non-nil error withholds the ack (the
	// commit may be durable, but the client must treat the outcome as
	// unknown and retry). The lease gate and the semi-sync replication
	// gate hang here — a primary whose lease expired or whose replica
	// links are backed up keeps committing locally but stops promising.
	AckCheck func() error
	// Seq routes cross-shard commits through the deterministic ordered
	// sequencer (internal/seq) instead of the mutex coordinator: GSNs
	// are assigned at admission, one batch record is forced per sealed
	// epoch, and per-shard executors release branch CMTs in GSN order —
	// commits on different shards proceed concurrently.
	Seq bool
	// BatchInterval stretches the sequencer's epoch accumulation window
	// (0 = pure adaptive group commit); SeqMaxBatch caps an epoch
	// (default 256).
	BatchInterval time.Duration
	SeqMaxBatch   int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Substrate == "" {
		o.Substrate = "tl2"
	}
	if o.Keys <= 0 {
		o.Keys = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// shardState is one shard: its backend (machine + recorder), WAL, and
// group-commit barrier.
type shardState struct {
	id    int
	label string
	be    backend.Backend
	log   *wal.Log
	hook  *wal.MachineHook
	group *backend.GroupCommit
	seqB  *seqBarrier // name-aware barrier, sequenced engines only
	inj   *chaos.Faults
}

// Engine is the sharded Push/Pull engine.
type Engine struct {
	opts   Options
	suite  *obs.Suite
	router Router
	shards []*shardState
	coord  *CoordLog
	inj    *chaos.Faults // coordinator-site injector (base plan)

	recovered MultiReport
	seeded    int

	seq atomic.Uint64

	// The mutex cross-shard commit phase is serialized: commitMu covers
	// the GSN assignment, the forced decision record, every branch CMT,
	// and the order bookkeeping. That makes each shard's cross-shard
	// commit subsequence literally equal to the GSN order — the
	// coordinator-imposed commit order the merged check certifies —
	// while single-shard transactions interleave freely (they cannot
	// create a cross-shard cycle: any such cycle needs two cross-shard
	// transactions ordered oppositely on two shards).
	//
	// With Options.Seq the sequencer replaces this mutex entirely: the
	// GSN is assigned at admission, the durable decision is one forced
	// batch record per epoch, and per-shard executors release CMTs in
	// GSN order — same certificate, held by construction instead of by
	// exclusion.
	commitMu sync.Mutex
	gsn      uint64
	seqr     *seq.Sequencer

	// orderMu guards the commit-order bookkeeping for both paths: the
	// mutex path appends under commitMu too, the sequenced path appends
	// coordOrder at the batch force and shardCross at each executor's
	// retire.
	orderMu    sync.Mutex
	coordOrder []string   // cross-shard commits in GSN order
	shardCross [][]string // per shard: cross-shard commits in local CMT order

	// The sequenced snapshot-cut gate: a Cut must not observe a batch
	// item on some participant shards but not others, so cuts wait out
	// in-flight releases (releasing) and block new batch dispatches
	// (cutters) while pinning. The mutex path gets the same atomicity
	// from commitMu.
	cutMu     sync.Mutex
	cutCond   *sync.Cond
	cutters   int
	releasing int

	crossCommits atomic.Uint64
	crossAborts  atomic.Uint64
	redoCount    atomic.Uint64
	killed       atomic.Bool
	fenced       atomic.Bool
	epoch        uint64

	// The exactly-once session table (see session.go).
	sessMu     sync.Mutex
	sess       map[uint64]sessEntry
	dedupHits  atomic.Uint64
	leaseEpoch atomic.Uint64

	errMu   sync.Mutex
	rollErr error // first roll-forward failure (fatal for certification)
}

// New builds the engine: multi-log recover-and-certify first (refusing
// a durable image that does not resolve and re-certify), then one
// backend per shard wired to its own WAL segment stream, trace
// recorder site, metrics label, and chaos plan, plus the coordinator
// log; finally the recovered state is re-applied shard by shard and
// every resolved in-doubt branch is rolled forward.
func New(opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	suite := opts.Suite
	if suite == nil {
		suite = obs.New()
	}
	e := &Engine{
		opts: opts, suite: suite,
		router:     NewRouter(opts.Shards),
		shardCross: make([][]string, opts.Shards),
	}
	e.cutCond = sync.NewCond(&e.cutMu)
	if opts.Plan != nil {
		e.inj = opts.Plan.Injector()
		e.inj.SetObserver(func(site chaos.Site) { suite.Metrics.FaultFired(string(site)) })
	}
	retry := opts.Retry
	if retry == nil {
		retry = chaos.Default(opts.Seed)
	}
	if retry.OnRetry == nil {
		retry.OnRetry = suite.Metrics.RetryObserved
	}

	// Recovery before anything serves.
	img := opts.RecoverFrom
	if img == nil && opts.WALDir != "" {
		var found int
		var err error
		img, found, err = ReadImageDir(opts.WALDir)
		if err != nil {
			return nil, err
		}
		if found == 0 && len(img.Coord) == 0 {
			img = nil
		} else if found != opts.Shards {
			return nil, fmt.Errorf("shard: durable image has %d shard log(s), engine configured for %d (restart with the original -shards)",
				found, opts.Shards)
		}
	}
	if !img.Empty() {
		if len(img.Shards) != opts.Shards {
			return nil, fmt.Errorf("shard: durable image has %d shard log(s), engine configured for %d (restart with the original -shards)",
				len(img.Shards), opts.Shards)
		}
		rep, err := RecoverAndCertifyImage(img, opts.Substrate)
		if err != nil {
			return nil, fmt.Errorf("shard: refusing to serve: %w", err)
		}
		e.recovered = rep
	}

	durable := opts.WALDir != "" || opts.Durable
	if opts.WALDir != "" {
		if err := archiveImageDir(opts.WALDir, opts.Shards); err != nil {
			return nil, err
		}
	}

	for i := 0; i < opts.Shards; i++ {
		st := &shardState{id: i, label: strconv.Itoa(i)}
		var inj *chaos.Faults
		if opts.Plan != nil {
			p := opts.Plan.ForShard(i, opts.Shards)
			inj = p.Injector()
			inj.SetObserver(func(site chaos.Site) { suite.Metrics.FaultFired(string(site)) })
			st.inj = inj
		}
		if durable {
			dir := ""
			if opts.WALDir != "" {
				dir = filepath.Join(opts.WALDir, shardDirName(i))
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return nil, fmt.Errorf("shard: creating %s: %w", dir, err)
				}
			}
			// Same log-force-at-commit shape as the single-machine
			// server: under SyncOnCommit the log opens non-syncing and
			// the per-shard group-commit leader forces it at the barrier,
			// outside every substrate lock.
			logPolicy := opts.SyncPolicy
			forceAtBarrier := opts.SyncPolicy == wal.SyncOnCommit
			if forceAtBarrier {
				logPolicy = wal.SyncNever
			}
			var ship func(seg, off int, data []byte)
			if opts.Ship != nil {
				stream := i
				ship = func(seg, off int, data []byte) { opts.Ship(stream, seg, off, data) }
			}
			log, err := wal.Open(wal.Options{
				Dir: dir, SegmentBytes: opts.SegmentBytes,
				Policy: logPolicy, GroupEvery: opts.GroupEvery,
				Chaos: inj, SyncObserver: suite.Metrics.WALSyncObserved,
				OnDurable: ship,
			})
			if err != nil {
				return nil, fmt.Errorf("shard %d: opening WAL: %w", i, err)
			}
			st.log = log
			if forceAtBarrier {
				st.group = backend.NewGroupCommit(backend.ForceSync(log))
			} else {
				st.group = backend.NewGroupCommit(log)
			}
		} else {
			st.group = backend.NewGroupCommit(nil)
		}
		// Sequenced engines interpose the name-aware barrier: a released
		// branch's CMT skips the per-commit force (the epoch's batch
		// record already carries its decision and write-set), everything
		// else still rides the shard's group commit.
		var durableBarrier core.Durable = st.group
		if opts.Seq && durable {
			st.seqB = newSeqBarrier(st.group)
			durableBarrier = st.seqB
		}
		be, err := backend.NewBackend(backend.Config{
			Substrate: opts.Substrate, Keys: opts.Keys,
			Seed:        opts.Seed + int64(i)*7919,
			DisableCert: opts.DisableCert, Injector: inj, Retry: retry,
			Durable: durableBarrier,
		})
		if err != nil {
			return nil, err
		}
		st.be = be
		if rec := be.Recorder(); rec != nil {
			if st.log != nil {
				st.hook = wal.NewMachineHook(st.log)
				rec.AttachWAL(st.hook)
			}
			rec.SetSite(opts.Substrate + "/s" + st.label)
			rec.AttachSink(suite)
		}
		if store := be.Snapshots(); store != nil {
			store.SetObserver(suite.Metrics)
		}
		e.shards = append(e.shards, st)
	}

	if durable {
		coordPath := ""
		if opts.WALDir != "" {
			coordPath = filepath.Join(opts.WALDir, coordLogName)
		}
		coord, err := OpenCoordLog(coordPath)
		if err != nil {
			return nil, fmt.Errorf("shard: opening coordinator log: %w", err)
		}
		e.coord = coord
		if opts.Ship != nil {
			stream := opts.Shards
			coord.SetOnDurable(func(off int, data []byte) { opts.Ship(stream, 0, off, data) })
		}
		// Brand the serving epoch into the log so it ships with the
		// stream and survives restart. A recovered image's epoch must
		// never be reused or regressed — promotions pass predecessor+1.
		e.epoch = opts.Epoch
		if e.epoch == 0 && opts.Ship != nil {
			e.epoch = 1
		}
		if prev := e.recovered.Epoch; e.epoch > 0 && prev >= e.epoch {
			return nil, fmt.Errorf("shard: serving epoch %d does not exceed the recovered image's epoch %d",
				e.epoch, prev)
		}
		if e.epoch > 0 {
			if err := coord.AppendEpoch(e.epoch); err != nil {
				return nil, fmt.Errorf("shard: branding epoch: %w", err)
			}
		}
	}

	// Re-apply the recovered image as fresh certified (and re-logged)
	// transactions, then roll forward every resolved branch.
	for i, rep := range e.recovered.Shards {
		if len(rep.State.Txns) == 0 {
			continue
		}
		n, err := e.shards[i].be.Seed(rep.State, fmt.Sprintf("recover-s%d", i))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		e.seeded += n
	}
	for _, r := range e.recovered.Redos {
		if err := e.applyRedo(e.shards[r.Shard], "redo-"+r.Name, r.Puts); err != nil {
			return nil, fmt.Errorf("shard %d: rolling forward %q: %w", r.Shard, r.Name, err)
		}
		e.seeded++
	}
	if err := e.seedSessions(); err != nil {
		return nil, err
	}
	if opts.Seq && opts.Shards > 1 {
		e.seqr = seq.New(seq.Options{
			Shards:        opts.Shards,
			BatchInterval: opts.BatchInterval,
			MaxBatch:      opts.SeqMaxBatch,
			Force:         e.seqForce,
			Gate:          e.seqGate,
			Retire:        e.seqRetire,
			Done:          e.seqDone,
			Observer:      suite.Metrics,
		})
	}
	return e, nil
}

// Seq reports whether the deterministic ordered-commit path is active.
func (e *Engine) Seq() bool { return e.seqr != nil }

// SeqStats returns the sequencer census (zero when the mutex
// coordinator is active).
func (e *Engine) SeqStats() seq.Stats {
	if e.seqr == nil {
		return seq.Stats{}
	}
	return e.seqr.Stats()
}

// Shards returns the partition count.
func (e *Engine) Shards() int { return e.opts.Shards }

// Router returns the key router.
func (e *Engine) Router() Router { return e.router }

// Recovered reports what startup recovery replayed and resolved.
func (e *Engine) Recovered() MultiReport { return e.recovered }

// SeededTxns reports how many checkpoint transactions start-up seeding
// ran (recovered state plus roll-forwards).
func (e *Engine) SeededTxns() int { return e.seeded }

// Epoch returns the serving generation branded into the coordinator
// log (0 for an unbranded, non-replicating engine).
func (e *Engine) Epoch() uint64 { return e.epoch }

// Streams returns the replication stream count: one per shard plus the
// coordinator log (the last stream index, CoordStream).
func (e *Engine) Streams() int { return e.opts.Shards + 1 }

// CoordStream returns the coordinator log's stream index.
func (e *Engine) CoordStream() int { return e.opts.Shards }

// Fence marks this engine fenced off by a higher serving epoch: the
// coordinator log refuses further decisions and Do refuses new (and
// in-flight not-yet-acked) transactions with ErrFenced. Safe to call
// from inside a ship callback — this is how a zombie primary learns of
// its successor, from its replicas' refusals.
func (e *Engine) Fence(epoch uint64) {
	if e.epoch > 0 && epoch <= e.epoch {
		return
	}
	e.fenced.Store(true)
	if e.coord != nil {
		e.coord.Fence(epoch)
	}
}

// Fenced reports whether the engine has been fenced off.
func (e *Engine) Fenced() bool { return e.fenced.Load() }

// Kill applies the simulated process death now: every log freezes at
// its own durable prefix (the failover drills' murder weapon).
func (e *Engine) Kill() { e.killAll() }

// StreamAppends counts durable records on one replication stream — the
// primary-side counter the replication lag gauge compares a replica's
// applied count against. Lazily buffered records (unforced coordinator
// CEnd markers, unsynced batches) are excluded until they sync: the
// gauge measures distance from what the primary has promised, not from
// what it merely intends.
func (e *Engine) StreamAppends(stream int) uint64 {
	if stream == e.opts.Shards {
		if e.coord == nil {
			return 0
		}
		return e.coord.DurableRecords()
	}
	if stream < 0 || stream >= len(e.shards) || e.shards[stream].log == nil {
		return 0
	}
	return e.shards[stream].log.DurableRecords()
}

// ReadDurable reads up to max durable bytes of one replication stream
// at (seg, off) — the wire-poll path (kvapi MsgReplPoll) into the
// per-log tailing APIs. The coordinator stream has a single segment.
func (e *Engine) ReadDurable(stream, seg, off, max int) (data []byte, next, more bool, err error) {
	if stream == e.opts.Shards {
		if e.coord == nil {
			return nil, false, false, errors.New("shard: no coordinator log (engine is not durable)")
		}
		if seg != 0 {
			return nil, false, false, fmt.Errorf("shard: coordinator stream has one segment, not %d", seg)
		}
		data, more, err = e.coord.DurableAt(off, max)
		return data, false, more, err
	}
	if stream < 0 || stream >= len(e.shards) {
		return nil, false, false, fmt.Errorf("shard: no stream %d (have %d)", stream, e.Streams())
	}
	if e.shards[stream].log == nil {
		return nil, false, false, errors.New("shard: stream has no WAL (engine is not durable)")
	}
	return e.shards[stream].log.DurableAt(seg, off, max)
}

// enter/exit move the per-shard in-flight gauge.
func (e *Engine) enter(st *shardState) { e.suite.Metrics.ShardInflightAdd(st.label, 1) }
func (e *Engine) exit(st *shardState)  { e.suite.Metrics.ShardInflightAdd(st.label, -1) }

// noteCrash propagates one shard's simulated WAL death to the whole
// engine: a process dies once, so every other log freezes at its own
// durable prefix.
func (e *Engine) noteCrash(st *shardState) {
	if st.log != nil && st.log.Crashed() {
		e.killAll()
	}
}

// killAll freezes every log at its durable prefix (simulated process
// death). In-memory execution continues — the post-crash tail is
// simply not durable, and recovery certifies the durable prefix.
func (e *Engine) killAll() {
	if e.killed.Swap(true) {
		return
	}
	for _, st := range e.shards {
		if st.log != nil {
			st.log.Kill()
		}
	}
	if e.coord != nil {
		e.coord.Kill()
	}
}

// Crashed reports whether the simulated process death fired.
func (e *Engine) Crashed() bool {
	if e.killed.Load() {
		return true
	}
	for _, st := range e.shards {
		if st.log != nil && st.log.Crashed() {
			return true
		}
	}
	return e.coord != nil && e.coord.Crashed()
}

// Image snapshots the durable on-"disk" state (for simulated-crash
// restart): every shard's surviving segments plus the coordinator log.
func (e *Engine) Image() *Image {
	img := &Image{Shards: make([][][]byte, len(e.shards))}
	for i, st := range e.shards {
		if st.log != nil {
			img.Shards[i] = st.log.Segments()
		}
	}
	if e.coord != nil {
		img.Coord = e.coord.Image()
	}
	return img
}

// Close closes every log (no-op for crashed ones). The sequencer
// drains first so no executor releases a CMT into a closing log.
func (e *Engine) Close() error {
	if e.seqr != nil {
		e.seqr.Close()
	}
	var first error
	for _, st := range e.shards {
		if st.log != nil {
			if err := st.log.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if e.coord != nil {
		if err := e.coord.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ErrFenced reports a transaction refused — or a commit deliberately
// not acknowledged — because the engine learned of a higher serving
// epoch. A fenced engine's state is a dead branch: the new primary's
// certified image is the truth, and acking here would invent a
// committed transaction failover cannot preserve.
var ErrFenced = errors.New("shard: fenced by a higher serving epoch; not acknowledged")

// ErrAckUnknown wraps every withheld acknowledgement — fencing, lease
// expiry, replication lag — so clients can recognize an AMBIGUOUS
// outcome (the commit may be durable but was never acked) and retry it
// under the same session sequence number.
var ErrAckUnknown = errors.New("shard: commit state unknown")

// Do executes ops as one one-shot transaction: directly on the home
// shard when the footprint is single-shard, through the two-phase
// coordinator otherwise. Returns the results, the retry count, and the
// terminal error (nil means committed and acknowledged).
func (e *Engine) Do(ops []Op) ([]Result, uint32, error) {
	res, retries, err := e.do(ops, nil)
	if err == nil {
		if aerr := e.ackGate(); aerr != nil {
			return nil, retries, aerr
		}
	}
	return res, retries, err
}

// do commits ops without the ack gate — DoSession needs the raw commit
// outcome so it can record the session entry even when the ack is
// withheld.
func (e *Engine) do(ops []Op, sess *sessInfo) ([]Result, uint32, error) {
	if e.fenced.Load() {
		return nil, 0, ErrFenced
	}
	parts, participants := partition(ops, e.router)
	if participants > 1 {
		for _, op := range ops {
			// A qpop's write-set cannot be journaled as a logical
			// effect (which element it removed depends on execution
			// order), so the roll-forward evidence cross-shard commits
			// rely on cannot cover it.
			if op.Kind == OpQPop {
				return nil, 0, fmt.Errorf("shard: %v unsupported in cross-shard transactions", op.Kind)
			}
		}
	}
	var res []Result
	var retries uint32
	var err error
	if participants <= 1 {
		sid := 0
		for s, p := range parts {
			if p != nil {
				sid = s
			}
		}
		res, retries, err = e.doSingle(sid, ops, sess)
	} else if e.seqr != nil {
		res, retries, err = e.doCrossSeq(parts, len(ops), sess)
	} else {
		res, retries, err = e.doCross(parts, len(ops), sess)
	}
	return res, retries, err
}

// ackGate decides whether a locally committed transaction may be
// acknowledged: not when the engine was fenced mid-flight (a replica
// refused our ship inside this very commit's durability barrier — the
// write may be in the local image, but that image is now a dead
// branch), and not when the configured AckCheck (lease validity,
// replica link backlog) says no. Either way the client is told "commit
// state unknown" and retries; the session table makes the retry safe.
func (e *Engine) ackGate() error {
	if e.fenced.Load() {
		return fmt.Errorf("%w: %w", ErrAckUnknown, ErrFenced)
	}
	if e.opts.AckCheck != nil {
		if err := e.opts.AckCheck(); err != nil {
			return fmt.Errorf("%w: %w", ErrAckUnknown, err)
		}
	}
	return nil
}

// doSingle runs the unchanged single-machine path on the home shard.
func (e *Engine) doSingle(sid int, ops []Op, sess *sessInfo) ([]Result, uint32, error) {
	st := e.shards[sid]
	name := fmt.Sprintf("t%d", e.seq.Add(1))
	e.enter(st)
	defer e.exit(st)
	results := make([]Result, len(ops))
	attempts := uint32(0)
	err := st.be.Atomic(name, func(v view) error {
		attempts++
		for i, op := range ops {
			switch op.Kind {
			case OpGet:
				val, found, err := v.Get(op.Key)
				if err != nil {
					return err
				}
				results[i] = Result{Val: val, Found: found}
			case OpPut:
				if err := v.Put(op.Key, op.Val); err != nil {
					return err
				}
				results[i] = Result{}
			default:
				val, commuted, err := typedDo(v, op.Kind, op.Key, op.Val, op.Arg)
				if err != nil {
					return err
				}
				results[i] = Result{Val: val, Found: true, Commuted: commuted}
			}
		}
		// The session record rides the shard's own WAL just before the
		// commit record this callback's return triggers: durable prefix
		// being a prefix, commit durable implies session entry durable.
		// A retried attempt re-appends it (same name — idempotent in the
		// recovery fold); an aborted attempt leaves an orphan record the
		// conditional fold discards.
		if sess != nil && st.log != nil {
			if err := st.log.Append(wal.Record{
				Type: wal.TSession, Tx: sess.session,
				Session: sess.session, SeqNo: sess.seq, Name: name,
				Results: sessResultsOf(results),
			}); err != nil && !errors.Is(err, wal.ErrCrashed) {
				return err
			}
		}
		return nil
	})
	e.noteCrash(st)
	retries := uint32(0)
	if attempts > 0 {
		retries = attempts - 1
	}
	if err != nil {
		return nil, retries, err
	}
	return results, retries, nil
}

// doCross runs the two-phase path: a branch per participant shard,
// prepare (PUSH everywhere), then the coordinated decision.
func (e *Engine) doCross(parts [][]opAt, nops int, sess *sessInfo) ([]Result, uint32, error) {
	name := fmt.Sprintf("x%d", e.seq.Add(1))
	var branches []*branch
	for sid, p := range parts {
		if p == nil {
			continue
		}
		st := e.shards[sid]
		b := newBranch(st, name, newDecision(), false)
		e.enter(st)
		go b.run()
		branches = append(branches, b)
	}
	results := make([]Result, nops)

	// Phase 1 — prepare: feed each branch its ops and park it on its
	// decision, concurrently across shards.
	if prepErr := e.feedBranches(parts, branches, results); prepErr != nil {
		e.finishCross(branches)
		e.crossAborts.Add(1)
		return nil, e.maxRetries(branches), prepErr
	}

	// Phase 2 — the coordinated CMT.
	if err := e.commitCross(name, branches, sess, results); err != nil {
		e.crossAborts.Add(1)
		return nil, e.maxRetries(branches), err
	}
	e.crossCommits.Add(1)
	return results, e.maxRetries(branches), nil
}

// feedBranches feeds every branch its ops and parks each on its
// decision (prepare), concurrently across shards; the first error
// wins. Shared by the mutex and sequenced cross paths.
func (e *Engine) feedBranches(parts [][]opAt, branches []*branch, results []Result) error {
	feedCh := make(chan error, len(branches))
	for _, b := range branches {
		go func(b *branch, ops []opAt) {
			for _, oa := range ops {
				c := cmd{key: oa.op.Key, val: oa.op.Val, arg: oa.op.Arg, idx: oa.idx}
				switch oa.op.Kind {
				case OpGet:
					c.kind = cmdGet
				case OpPut:
					c.kind = cmdPut
				default:
					c.kind = cmdTyped
					c.opKind = oa.op.Kind
				}
				r, err := b.send(c)
				if err != nil {
					feedCh <- err
					return
				}
				results[r.idx] = Result{Val: r.val, Found: r.found, Commuted: r.commuted}
			}
			feedCh <- b.prepare()
		}(b, parts[b.st.id])
	}
	var prepErr error
	for range branches {
		if err := <-feedCh; err != nil && prepErr == nil {
			prepErr = err
		}
	}
	return prepErr
}

// finishCross publishes an abort on every undecided branch and reaps
// them all: abandon both unblocks a branch still parked in its op loop
// (closing cmds) and drains a decision-parked or already dead one.
// decide is idempotent, so branches already released stay released.
func (e *Engine) finishCross(branches []*branch) {
	for _, b := range branches {
		b.dec.decide(false)
	}
	for _, b := range branches {
		_ = b.abandon()
		e.exit(b.st)
		e.noteCrash(b.st)
	}
}

// commitCross is the coordinated commit: under commitMu it assigns the
// GSN, forces the decision record into the coordinator log, fires the
// coordinator death sites, releases every branch's CMT, rolls forward
// any branch that dies after the decision, and appends the completion
// marker. Every prepared branch either commits or is redone; on a
// pre-decision coordinator crash the transaction aborts consistently.
func (e *Engine) commitCross(name string, branches []*branch, sess *sessInfo, results []Result) error {
	e.commitMu.Lock()
	// Death between prepare and the durable decision: no CCommit record
	// survives, so recovery presumes abort — and so does the in-memory
	// path, keeping both worlds consistent.
	if e.inj != nil && e.inj.Fire(chaos.SiteCoordPrepared) {
		e.killAll()
	}
	crec := CommitRec{GSN: e.gsn + 1, Name: name}
	for _, b := range branches {
		crec.Branches = append(crec.Branches, BranchRec{Shard: b.st.id, Puts: b.puts()})
	}
	var decideErr error
	if e.coord != nil {
		// The session entry rides (unforced) immediately before the
		// forced decision, so the decision's sync makes both durable in
		// order: CCommit durable implies session entry durable, and an
		// entry without its CCommit is discarded by the conditional fold.
		if sess != nil {
			if err := e.coord.AppendSession(SessionRec{
				Session: sess.session, SeqNo: sess.seq, Name: name,
				Results: sessResultsOf(results),
			}, false); err != nil && !errors.Is(err, ErrCoordCrashed) && !errors.Is(err, ErrCoordFenced) {
				decideErr = err
			}
		}
		if decideErr == nil {
			decideErr = e.coord.AppendCommit(crec)
		}
	}
	if decideErr != nil {
		// The decision never became durable (crashed or failing
		// coordinator log) — global abort.
		e.commitMu.Unlock()
		e.finishCross(branches)
		if errors.Is(decideErr, ErrCoordCrashed) {
			return fmt.Errorf("%w: coordinator died before the commit decision", decideErr)
		}
		return fmt.Errorf("shard: journaling commit decision: %w", decideErr)
	}
	// Death after the durable decision: recovery will roll the
	// transaction forward from the record, so the in-memory path
	// commits it too (the branch CMTs just miss the durable prefix).
	if e.inj != nil && e.inj.Fire(chaos.SiteCoordCommit) {
		e.killAll()
	}
	e.gsn = crec.GSN
	for _, b := range branches {
		b.dec.decide(true)
	}
	for _, b := range branches {
		err := b.wait()
		if err != nil {
			// The decision is final; a branch that could not retire its
			// prepared transaction (retry budget on post-decision
			// conflicts) is rolled forward from its journaled write-set —
			// the same redo recovery applies.
			if rerr := e.applyRedo(b.st, "redo-"+name, b.puts()); rerr != nil {
				e.setRollErr(fmt.Errorf("shard %d: rolling forward %q: %w", b.st.id, name, rerr))
			}
			e.redoCount.Add(1)
		}
		e.exit(b.st)
	}
	// Suppress the completion marker when a shard WAL died during the
	// commit phase: its branch CMT never became durable, so CEnd would
	// claim completeness the image cannot honor. Recovery tolerates a
	// durable CEnd with missing branches regardless (the lazy append can
	// ride a later forced sync past the shard's death), but keeping the
	// marker honest shrinks that window to the truly asynchronous case.
	ended := true
	for _, b := range branches {
		if b.st.log != nil && b.st.log.Crashed() {
			ended = false
			break
		}
	}
	if e.coord != nil && ended {
		_ = e.coord.AppendEnd(crec.GSN)
	}
	e.orderMu.Lock()
	e.coordOrder = append(e.coordOrder, name)
	for _, b := range branches {
		e.shardCross[b.st.id] = append(e.shardCross[b.st.id], name)
	}
	e.orderMu.Unlock()
	e.commitMu.Unlock()
	for _, b := range branches {
		e.noteCrash(b.st)
	}
	return nil
}

// applyRedo re-applies a write-set as one fresh certified transaction.
// The decision it rolls forward is already final (durable CCommit), so
// a retry-budget exhaustion under contention or chaos is not a
// permitted outcome — the attempt loops with a fresh budget until the
// write-set lands or the substrate fails for a non-retryable reason.
func (e *Engine) applyRedo(st *shardState, name string, puts []KV) error {
	if len(puts) == 0 {
		return nil
	}
	for {
		err := e.applyRedoOnce(st, name, puts)
		if !errors.Is(err, chaos.ErrRetriesExhausted) {
			return err
		}
	}
}

func (e *Engine) applyRedoOnce(st *shardState, name string, puts []KV) error {
	return st.be.Atomic(name, func(v view) error {
		for _, kv := range puts {
			if kv.Method == typedops.WPut {
				if err := v.Put(kv.Key, kv.Val); err != nil {
					return err
				}
				continue
			}
			// Logical-op entry: replay the operation, not a final
			// value — a redo racing a concurrent add folds both.
			if _, _, err := typedDo(v, OpKind(kv.Method.Code()), kv.Key, kv.Val, 0); err != nil {
				return err
			}
		}
		return nil
	})
}

func (e *Engine) setRollErr(err error) {
	e.errMu.Lock()
	if e.rollErr == nil {
		e.rollErr = err
	}
	e.errMu.Unlock()
}

func (e *Engine) maxRetries(branches []*branch) uint32 {
	var max uint32
	for _, b := range branches {
		if r := b.retries; r > max {
			max = r
		}
	}
	return max
}

// Stats is the engine snapshot.
type Stats struct {
	Shards        int    `json:"shards"`
	Commits       uint64 `json:"commits"`
	Aborts        uint64 `json:"aborts"`
	CrossCommits  uint64 `json:"cross_commits"`
	CrossAborts   uint64 `json:"cross_aborts"`
	Redos         uint64 `json:"redos"`
	GroupBarriers uint64 `json:"group_barriers"`
	GroupSyncs    uint64 `json:"group_syncs"`
	RecoveredTxns int    `json:"recovered_txns"`
	SeededTxns    int    `json:"seeded_txns"`
	InDoubtFixed  int    `json:"in_doubt_resolved"`
	WALCrashed    bool   `json:"wal_crashed"`
	DedupHits     uint64 `json:"dedup_hits"`
	LeaseEpoch    uint64 `json:"lease_epoch"`
	// Sequencer shape (zero when the mutex coordinator is active).
	SeqEpochs   uint64 `json:"seq_epochs,omitempty"`
	SeqBatched  uint64 `json:"seq_batched,omitempty"`
	SeqMaxBatch int    `json:"seq_max_batch,omitempty"`
	// SeqUnforced counts branch CMTs whose per-commit force was skipped
	// because the epoch's batch record already covered them.
	SeqUnforced uint64 `json:"seq_unforced,omitempty"`
}

// Stats sums substrate and coordinator counters across shards.
func (e *Engine) Stats() Stats {
	s := Stats{
		Shards:        e.opts.Shards,
		CrossCommits:  e.crossCommits.Load(),
		CrossAborts:   e.crossAborts.Load(),
		Redos:         e.redoCount.Load(),
		RecoveredTxns: e.recovered.RecoveredTxns(),
		SeededTxns:    e.seeded,
		InDoubtFixed:  e.recovered.InDoubtResolved,
		WALCrashed:    e.Crashed(),
		DedupHits:     e.dedupHits.Load(),
		LeaseEpoch:    e.leaseEpoch.Load(),
	}
	if e.seqr != nil {
		ss := e.seqr.Stats()
		s.SeqEpochs, s.SeqBatched, s.SeqMaxBatch = ss.Epochs, ss.Batched, ss.MaxBatch
		for _, st := range e.shards {
			if st.seqB != nil {
				s.SeqUnforced += st.seqB.skipped.Load()
			}
		}
	}
	for _, st := range e.shards {
		c, a := st.be.Stats()
		s.Commits += c
		s.Aborts += a
		gb, gs := st.group.Stats()
		s.GroupBarriers += gb
		s.GroupSyncs += gs
	}
	return s
}

// GroupStats sums the per-shard group-commit amortization counters.
func (e *Engine) GroupStats() (barriers, syncs uint64) {
	for _, st := range e.shards {
		b, s := st.group.Stats()
		barriers += b
		syncs += s
	}
	return
}

// ReadKey reads one key non-transactionally from its home shard —
// quiescent test verification only.
func (e *Engine) ReadKey(key uint64) (int64, bool) {
	return e.shards[e.router.Shard(key)].be.ReadKey(key)
}

// Backend exposes one shard's backend (tests).
func (e *Engine) Backend(i int) backend.Backend { return e.shards[i].be }

// LeakCheck asserts quiescent cleanliness on every shard.
func (e *Engine) LeakCheck() error {
	for _, st := range e.shards {
		if err := st.be.LeakCheck(); err != nil {
			return fmt.Errorf("shard %d: %w", st.id, err)
		}
	}
	return nil
}

// FinalCheck is the full post-run certificate: per shard the shadow
// machine's final check, its invariants, and commit-order
// serializability — plus the cross-shard obligations: every shard's
// cross-commit subsequence must equal the coordinator's GSN order, the
// union of all orders must merge acyclically, and no roll-forward may
// have failed.
func (e *Engine) FinalCheck() error {
	if err := e.rollError(); err != nil {
		return err
	}
	for _, st := range e.shards {
		if err := st.be.CheckInvariant(); err != nil {
			return fmt.Errorf("shard %d: %w", st.id, err)
		}
		if st.hook != nil {
			if err := st.hook.Err(); err != nil {
				return fmt.Errorf("shard %d: WAL hook: %w", st.id, err)
			}
		}
		rec := st.be.Recorder()
		if rec == nil {
			continue
		}
		if err := rec.FinalCheck(); err != nil {
			return fmt.Errorf("shard %d: %w", st.id, err)
		}
		if err := rec.Machine().Verify(); err != nil {
			return fmt.Errorf("shard %d: machine invariants: %w", st.id, err)
		}
		if rep := serial.CheckCommitOrder(rec.Machine()); !rep.Serializable {
			return fmt.Errorf("shard %d: commit order not serializable: %s", st.id, rep.Reason)
		}
	}
	return e.checkCrossOrder()
}

func (e *Engine) rollError() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.rollErr
}

// checkCrossOrder verifies the runtime cross-shard commit order: each
// shard's cross-commit sequence must equal the coordinator's GSN order
// restricted to that shard's participations, and the union of all
// chains must merge into one total order.
func (e *Engine) checkCrossOrder() error {
	e.orderMu.Lock()
	defer e.orderMu.Unlock()
	// Restriction check: exact by construction (commits happen under
	// commitMu), so any mismatch is a real ordering bug.
	pos := make(map[string]int, len(e.coordOrder))
	for i, n := range e.coordOrder {
		pos[n] = i
	}
	for sid, chain := range e.shardCross {
		last := -1
		for _, n := range chain {
			p, ok := pos[n]
			if !ok {
				return fmt.Errorf("shard %d: cross-shard commit %q missing from coordinator order", sid, n)
			}
			if p <= last {
				return fmt.Errorf("shard %d: cross-shard commit %q out of coordinator (GSN) order", sid, n)
			}
			last = p
		}
	}
	chains := append(append([][]string(nil), e.shardCross...), e.coordOrder)
	if _, err := MergeOrders(chains); err != nil {
		return err
	}
	return nil
}

// Recorders returns each shard's certification recorder in shard
// order (entries are nil when certification is disabled) — offline
// history capture and replay.
func (e *Engine) Recorders() []*trace.Recorder {
	out := make([]*trace.Recorder, len(e.shards))
	for i, st := range e.shards {
		out[i] = st.be.Recorder()
	}
	return out
}

// FaultStats sums injector activity across the coordinator and every
// shard (chaos campaigns).
func (e *Engine) FaultStats() chaos.Stats {
	out := chaos.Stats{Counts: make(map[chaos.Site]chaos.SiteCount)}
	add := func(f *chaos.Faults) {
		if f == nil {
			return
		}
		for site, c := range f.Stats().Counts {
			t := out.Counts[site]
			t.Visits += c.Visits
			t.Injected += c.Injected
			out.Counts[site] = t
		}
	}
	add(e.inj)
	for _, st := range e.shards {
		add(st.inj)
	}
	return out
}

// CrossOrders returns copies of the coordinator's GSN order and each
// shard's local cross-commit order (tests, fuzzing).
func (e *Engine) CrossOrders() (coord []string, perShard [][]string) {
	e.orderMu.Lock()
	defer e.orderMu.Unlock()
	coord = append([]string(nil), e.coordOrder...)
	perShard = make([][]string, len(e.shardCross))
	for i, c := range e.shardCross {
		perShard[i] = append([]string(nil), c...)
	}
	return
}
