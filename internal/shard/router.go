// Package shard is the hash-partitioned Push/Pull engine: N
// independent core.Machines (one substrate backend, WAL segment
// stream, trace recorder, and metrics label per shard) behind one
// transactional KV surface.
//
// Single-shard transactions run unchanged on their home shard — the
// paper's PUSH/PULL/CMT side conditions are phrased per operation
// against one shared log G, so a transaction whose footprint lives in
// one partition needs only that partition's log. Cross-shard
// transactions go through a two-phase coordinator (coord.go,
// engine.go): prepare is a PUSH of every operation on its participant
// shard, commit is a coordinated CMT on all of them, journaled in a
// small coordinator log so recovery can resolve in-doubt transactions
// (recover.go). Certification generalizes accordingly: each shard's
// shadow machine replays and certifies its own log exactly as before,
// and a merged-commit-order check (order.go) proves the coordinator's
// global order embeds every shard's local commit order — the
// cross-shard serializability obligation.
package shard

import (
	"fmt"

	"pushpull/internal/ops"
)

// ShardOf maps a key to its home shard among n by a splitmix64
// finalizer — a pure function of (key, n), so the placement is stable
// across processes, restarts, and routers. Keys spread uniformly even
// when the client key space is dense small integers.
//
// The ops.KeyBit fold namespace is masked off first: a typed counter's
// MVCC cell (KeyBit|k) is a per-shard artifact of the typed operations
// on k, so it must route to k's home shard — snapshot and follower
// reads of KeyBit|k consult the shard whose applier folds it.
func ShardOf(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	h := key &^ ops.KeyBit
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(n))
}

// Router routes keys among N shards.
type Router struct{ N int }

// NewRouter builds a router over n shards (minimum 1).
func NewRouter(n int) Router {
	if n < 1 {
		n = 1
	}
	return Router{N: n}
}

// Shard returns key's home shard.
func (r Router) Shard(key uint64) int { return ShardOf(key, r.N) }

// OpKind discriminates engine operations. Values mirror
// kvapi.OpKind numerically (pinned by TestShardKindsMatchWire in the
// server package) so the wire→engine conversion is a cast.
type OpKind uint8

// Operation kinds. OpAdd and beyond are the typed
// (commutativity-aware) operations executed on boosted ADT cells.
const (
	OpGet OpKind = iota
	OpPut
	OpAdd
	OpCGet
	OpWd
	OpCAS
	OpSAdd
	OpSRem
	OpSCont
	OpQPush
	OpQPop
	numOpKinds
)

// Typed reports whether the kind is a typed ADT operation (anything
// beyond the plain register get/put pair).
func (k OpKind) Typed() bool { return k >= OpAdd && k < numOpKinds }

// Op is one engine operation. The engine has its own op type (rather
// than the kvapi wire one) so the dependency points the right way:
// kvapi's load generator imports shard for routing; shard imports
// nothing above the backend layer. Arg is the second typed operand
// (CAS: Val=expect, Arg=new).
type Op struct {
	Kind OpKind
	Key  uint64
	Val  int64
	Arg  int64
}

// Result answers one Op (Put results are zero). Commuted marks a typed
// op that acquired its abstract lock in a shared commute class.
type Result struct {
	Val      int64
	Found    bool
	Commuted bool
}

// opAt carries an op with its index in the client's op list, so a
// branch can write its answers into the shared result slice directly.
type opAt struct {
	op  Op
	idx int
}

// partition splits ops by home shard, preserving per-shard op order.
// The returned slice is indexed by shard id; non-participants are nil.
func partition(ops []Op, r Router) ([][]opAt, int) {
	parts := make([][]opAt, r.N)
	participants := 0
	for i, op := range ops {
		s := r.Shard(op.Key)
		if parts[s] == nil {
			participants++
		}
		parts[s] = append(parts[s], opAt{op: op, idx: i})
	}
	return parts, participants
}

func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpAdd:
		return "incr"
	case OpCGet:
		return "cget"
	case OpWd:
		return "wd"
	case OpCAS:
		return "cas"
	case OpSAdd:
		return "sadd"
	case OpSRem:
		return "srem"
	case OpSCont:
		return "scont"
	case OpQPush:
		return "qpush"
	case OpQPop:
		return "qpop"
	default:
		return fmt.Sprintf("op%d", uint8(k))
	}
}
