package shard

import (
	"sync"
	"testing"
)

// TestSnapshotCutNeverTorn hammers the GSN-consistent cut with a
// writer committing the same value to two keys on different shards in
// one cross-shard transaction, while readers pin cuts and read both
// keys. A cut that ever shows the two keys unequal has observed a
// cross-shard transaction on one participant but not the other —
// exactly the tear SnapshotCut's commitMu critical section excludes.
func TestSnapshotCutNeverTorn(t *testing.T) {
	e := newTestEngine(t, Options{Shards: 2, Substrate: "tl2"})
	keys := keysOnDistinctShards(t, e, 2)
	k1, k2 := keys[0], keys[1]

	// Establish the invariant before readers start.
	if _, _, err := e.Do([]Op{
		{Kind: OpPut, Key: k1, Val: 0},
		{Kind: OpPut, Key: k2, Val: 0},
	}); err != nil {
		t.Fatal(err)
	}

	const txns = 300
	var wg sync.WaitGroup
	wg.Add(1)
	writeErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= txns; i++ {
			if _, _, err := e.Do([]Op{
				{Kind: OpPut, Key: k1, Val: i},
				{Kind: OpPut, Key: k2, Val: i},
			}); err != nil {
				writeErr <- err
				return
			}
		}
	}()

	// Two reader flavors racing the writer: the composed DoReadOnly
	// path (pin, read, certify) and a raw SnapshotCut with Cut.Get.
	for done := false; !done; {
		select {
		case err := <-writeErr:
			t.Fatalf("writer: %v", err)
		default:
		}
		res, err := e.DoReadOnly([]Op{{Kind: OpGet, Key: k1}, {Kind: OpGet, Key: k2}})
		if err != nil {
			t.Fatalf("DoReadOnly: %v", err)
		}
		if res[0].Val != res[1].Val {
			t.Fatalf("torn snapshot read: %d != %d", res[0].Val, res[1].Val)
		}
		cut, err := e.SnapshotCut()
		if err != nil {
			t.Fatalf("SnapshotCut: %v", err)
		}
		v1, _ := cut.Get(k1)
		v2, _ := cut.Get(k2)
		cut.Close()
		if v1 != v2 {
			t.Fatalf("torn cut: %d != %d", v1, v2)
		}
		done = v1 == txns
	}
	wg.Wait()

	// The stores saw real churn and the certifiers passed every read.
	if s := e.MVCCStats(); s.Watermark == 0 || s.Versions == 0 {
		t.Fatalf("mvcc stats empty after campaign: %+v", s)
	}
	for sid, sh := range e.Certifiers() {
		if _, failed := sh.CertStats(); failed != 0 {
			t.Fatalf("shard %d: %d snapshot reads failed certification", sid, failed)
		}
	}
	finishEngine(t, e)
}

// TestDoReadOnlyRejectsWrites pins the class boundary at the engine:
// a write op inside a read-only transaction is refused outright.
func TestDoReadOnlyRejectsWrites(t *testing.T) {
	e := newTestEngine(t, Options{Shards: 2, Substrate: "tl2"})
	if _, err := e.DoReadOnly([]Op{{Kind: OpPut, Key: 1, Val: 2}}); err == nil {
		t.Fatal("read-only transaction accepted a write")
	}
	if s := e.MVCCStats(); s.SnapshotsOpen != 0 {
		t.Fatalf("rejected read-only txn leaked %d pins", s.SnapshotsOpen)
	}
	finishEngine(t, e)
}
