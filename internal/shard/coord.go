package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"

	"pushpull/internal/ops"
	"pushpull/internal/recovery"
	"pushpull/internal/wal"
)

// The coordinator log is the cross-shard commit journal: presumed
// abort with roll-forward by evidence. A cross-shard transaction is
// globally committed iff its CCommit record — global serial number,
// name, and every participant branch's write-set — is durable here.
// The record is forced before any branch is allowed to CMT, so at
// recovery:
//
//   - CCommit durable, branch CMT missing on some shard → the branch is
//     redone from the journaled write-set (roll forward);
//   - CCommit absent → no branch can have committed (branches only CMT
//     after the forced decision), so per-shard recovery has already
//     discarded the prepared PUSHes — a consistent presumed abort.
//
// Either way zero transactions remain in doubt after restart. CEnd is
// a lazy completion marker (never forced), purely informational: it is
// appended when every branch acked its CMT in memory, but a later
// forced append can make it durable even though a shard WAL died under
// one of those CMTs — so recovery never treats CEnd as proof of branch
// durability and always runs the branch-presence probe.

// ErrCoordCrashed reports an append against a coordinator log whose
// simulated process has died.
var ErrCoordCrashed = errors.New("shard: coordinator log crashed (simulated process death)")

// ErrCoordFenced reports an append against a coordinator log that has
// learned of a higher serving epoch: a replica (or the new primary)
// refused this node's stream, so this node is a zombie and must not
// decide any further commits. The client never gets an ack for the
// refused decision, so no durable-but-lost window opens.
var ErrCoordFenced = errors.New("shard: coordinator log fenced by a higher epoch")

// KV is one journaled write: a logical operation, not a final value.
// Method says how Val folds into the key's cell — ops.WPut is the
// plain register overwrite, ops.WAdd/WSAdd/WSRem/WQPush are the typed
// effects (a withdrawal journals as WAdd of a negative delta, a
// resolved CAS as WPut of the installed value), so a roll-forward
// replays the operation instead of racing other writers to a final
// value.
type KV struct {
	Key    uint64
	Val    int64
	Method ops.WireMethod
}

// BranchRec is one participant's journaled branch: its shard and the
// write-set to roll forward from.
type BranchRec struct {
	Shard int
	Puts  []KV
}

// CommitRec is one cross-shard commit decision.
type CommitRec struct {
	GSN      uint64
	Name     string
	Branches []BranchRec
	// Ended is set by decode when a CEnd marker followed. Informational
	// only: CEnd does not certify branch durability (see package doc).
	Ended bool
}

// Coordinator log framing: an 8-byte header ("PPCRD", version, two
// reserved bytes), then records framed u32 len | u32 crc32c | payload,
// same discipline as the WAL — any byte stream decodes to a longest
// valid prefix plus a truncation point. Version 2 added a write-method
// byte to every journaled KV (logical-op write-sets).
const (
	coordMagic   = "PPCRD"
	coordVersion = 2
	coordHdrLen  = 8

	cRecCommit = 1
	cRecEnd    = 2
	// cRecEpoch brands the log with its serving generation. Appended
	// (forced) at engine boot and at every promotion, so the epoch is
	// durable, ships to every replica with the stream, and survives
	// restart — the fencing token's source of truth.
	cRecEpoch = 3
	// cRecSession carries one exactly-once dedup entry. A live entry is
	// appended (unforced) immediately before the CCommit of the
	// transaction it names, so the forced decision makes both durable in
	// order: decision durable implies dedup entry durable. An entry with
	// an empty name is a boot-time checkpoint of a table recovered from
	// the previous timeline and is unconditionally valid; a named entry
	// counts only if its CCommit made the durable prefix.
	cRecSession = 4
	// cRecLease brands the log with the lease epoch its holder was
	// granted — the supervisor's "at most one acking primary per lease
	// epoch" token, durable and shipped next to the serving-epoch fence.
	cRecLease = 5
	// cRecBatch journals one sealed sequencer epoch: every commit
	// decision of the batch, GSN-ascending, forced as ONE durable
	// record — the deterministic ordered-commit path's commit point for
	// the whole epoch. Recovery folds the contained decisions exactly
	// like individual CCommit records, so roll-forward, presumed abort,
	// and the merged-order certificate are unchanged: batch durable and
	// a branch CMT missing → redo; batch absent → no branch of any of
	// its transactions CMTed (executors release only after the force) →
	// consistent presumed abort. Zero in doubt either way.
	cRecBatch = 6

	maxCoordRec = 1 << 20
)

// maxBatchCommits bounds a batch record's declared commit count (the
// sequencer's MaxBatch keeps real batches far below this and under the
// frame limit).
const maxBatchCommits = 1 << 16

var coordCRC = crc32.MakeTable(crc32.Castagnoli)

func coordHeader() []byte {
	h := make([]byte, 0, coordHdrLen)
	h = append(h, coordMagic...)
	h = append(h, coordVersion, 0, 0)
	return h
}

// CoordLog is the coordinator journal: an in-memory image with a
// durable watermark (and an optional backing file), with the same
// simulated-crash semantics as wal.Log — Kill freezes the durable
// prefix.
type CoordLog struct {
	mu      sync.Mutex
	path    string
	file    *os.File
	buf     []byte
	durable int
	crashed bool
	appends uint64
	// durableRecs is appends at the last successful sync — the records
	// provably inside the durable prefix (the replication lag operand).
	durableRecs uint64
	onDurable   func(off int, data []byte)
	// fenced/epoch are atomics (not under mu) so Fence can be called
	// from inside an OnDurable callback — the replica that refuses a
	// stale batch does so synchronously inside this log's own barrier.
	fenced atomic.Bool
	epoch  atomic.Uint64
}

// OpenCoordLog creates a coordinator log; an empty path keeps it in
// memory (tests, simulated crashes).
func OpenCoordLog(path string) (*CoordLog, error) {
	l := &CoordLog{path: path}
	hdr := coordHeader()
	l.buf = append(l.buf, hdr...)
	if path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, err
		}
		l.file = f
	}
	l.durable = len(l.buf)
	return l, nil
}

// encodeCommitBody appends one commit decision's body (GSN, name,
// branches) — shared by the standalone CCommit record and each entry
// of a batch record.
func encodeCommitBody(p []byte, r CommitRec) []byte {
	p = binary.AppendUvarint(p, r.GSN)
	p = binary.AppendUvarint(p, uint64(len(r.Name)))
	p = append(p, r.Name...)
	p = binary.AppendUvarint(p, uint64(len(r.Branches)))
	for _, b := range r.Branches {
		p = binary.AppendUvarint(p, uint64(b.Shard))
		p = binary.AppendUvarint(p, uint64(len(b.Puts)))
		for _, kv := range b.Puts {
			p = binary.AppendUvarint(p, kv.Key)
			p = binary.AppendVarint(p, kv.Val)
			p = append(p, byte(kv.Method))
		}
	}
	return p
}

func encodeCommitRec(r CommitRec) []byte {
	return encodeCommitBody(append(make([]byte, 0, 64), cRecCommit), r)
}

// BatchRec is one sealed sequencer epoch: its number and the commit
// decisions it carries in GSN order.
type BatchRec struct {
	Epoch   uint64
	Commits []CommitRec
}

func encodeBatchRec(r BatchRec) []byte {
	p := make([]byte, 0, 16+64*len(r.Commits))
	p = append(p, cRecBatch)
	p = binary.AppendUvarint(p, r.Epoch)
	p = binary.AppendUvarint(p, uint64(len(r.Commits)))
	for _, c := range r.Commits {
		p = encodeCommitBody(p, c)
	}
	return p
}

func (l *CoordLog) append(payload []byte, force bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCoordCrashed
	}
	if l.fenced.Load() {
		return ErrCoordFenced
	}
	l.appends++
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, coordCRC))
	frame = append(frame, payload...)
	l.buf = append(l.buf, frame...)
	if l.file != nil {
		if _, err := l.file.Write(frame); err != nil {
			return err
		}
	}
	if force {
		return l.syncLocked()
	}
	return nil
}

func (l *CoordLog) syncLocked() error {
	if l.durable == len(l.buf) {
		return nil
	}
	if l.file != nil {
		if err := l.file.Sync(); err != nil {
			return err
		}
	}
	prev := l.durable
	l.durable = len(l.buf)
	l.durableRecs = l.appends
	if l.onDurable != nil {
		l.onDurable(prev, append([]byte(nil), l.buf[prev:l.durable]...))
	}
	return nil
}

// SetOnDurable installs the replication ship seam: fn receives every
// newly durable byte range (offset + copy) inside the durability
// barrier, before the barrier acks — including, immediately, the bytes
// already durable at install time, so a replica attached at boot sees
// the log from byte zero. Called under the log mutex; fn must not call
// back into the log.
func (l *CoordLog) SetOnDurable(fn func(off int, data []byte)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onDurable = fn
	if fn != nil && l.durable > 0 {
		fn(0, append([]byte(nil), l.buf[:l.durable]...))
	}
}

// AppendCommit journals one commit decision and forces it durable —
// the cross-shard commit point. No branch may CMT before this returns.
func (l *CoordLog) AppendCommit(r CommitRec) error {
	return l.append(encodeCommitRec(r), true)
}

// AppendBatch journals one sealed sequencer epoch and forces it
// durable — the commit point of every transaction in the batch. No
// branch of any contained transaction may CMT before this returns.
func (l *CoordLog) AppendBatch(r BatchRec) error {
	return l.append(encodeBatchRec(r), true)
}

// AppendEnd journals a lazy completion marker (not forced; see the
// package comment for why losing it is harmless).
func (l *CoordLog) AppendEnd(gsn uint64) error {
	p := make([]byte, 0, 10)
	p = append(p, cRecEnd)
	p = binary.AppendUvarint(p, gsn)
	return l.append(p, false)
}

// SessionRec is one exactly-once dedup entry in the coordinator log.
type SessionRec struct {
	Session uint64
	SeqNo   uint64
	// Name is the cross-shard transaction the entry rides with ("" for
	// an unconditional boot checkpoint entry).
	Name    string
	Results []wal.SessResult
}

func encodeSessionRec(r SessionRec) []byte {
	p := make([]byte, 0, 32)
	p = append(p, cRecSession)
	p = binary.AppendUvarint(p, r.Session)
	p = binary.AppendUvarint(p, r.SeqNo)
	p = binary.AppendUvarint(p, uint64(len(r.Name)))
	p = append(p, r.Name...)
	p = binary.AppendUvarint(p, uint64(len(r.Results)))
	for _, res := range r.Results {
		p = binary.AppendVarint(p, res.Val)
		if res.Found {
			p = append(p, 1)
		} else {
			p = append(p, 0)
		}
	}
	return p
}

// AppendSession journals one dedup entry. Live entries (named) ride
// unforced just before their commit decision; checkpoint entries may be
// forced explicitly by the caller's boot sequence.
func (l *CoordLog) AppendSession(r SessionRec, force bool) error {
	return l.append(encodeSessionRec(r), force)
}

// AppendLease journals the lease epoch granted to this log's holder and
// forces it durable. Lease epochs must not regress.
func (l *CoordLog) AppendLease(epoch uint64) error {
	p := make([]byte, 0, 10)
	p = append(p, cRecLease)
	p = binary.AppendUvarint(p, epoch)
	return l.append(p, true)
}

// AppendEpoch journals the serving epoch and forces it durable. Epochs
// must not regress: a promotion writes predecessor+1.
func (l *CoordLog) AppendEpoch(epoch uint64) error {
	p := make([]byte, 0, 10)
	p = append(p, cRecEpoch)
	p = binary.AppendUvarint(p, epoch)
	if err := l.append(p, true); err != nil {
		return err
	}
	for {
		cur := l.epoch.Load()
		if epoch <= cur || l.epoch.CompareAndSwap(cur, epoch) {
			return nil
		}
	}
}

// Epoch returns the highest epoch appended to this log instance.
func (l *CoordLog) Epoch() uint64 { return l.epoch.Load() }

// Fence marks the log fenced off by a higher epoch: every further
// append fails with ErrCoordFenced, so a zombie coordinator can no
// longer decide commits. A no-op unless epoch exceeds this log's own.
// Safe to call from inside an OnDurable callback.
func (l *CoordLog) Fence(epoch uint64) {
	if epoch > l.epoch.Load() {
		l.fenced.Store(true)
	}
}

// Fenced reports whether the log has been fenced off.
func (l *CoordLog) Fenced() bool { return l.fenced.Load() }

// Appends counts append attempts.
func (l *CoordLog) Appends() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// DurableRecords counts records inside the durable prefix — the
// primary-side operand of the replication lag gauge (lazily buffered
// records, like unforced CEnd markers, are excluded until synced).
func (l *CoordLog) DurableRecords() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableRecs
}

// DurableAt reads up to max durable bytes starting at off — the pull
// side of coordinator-log tailing, mirroring wal.Log.DurableAt (the
// coordinator log never rotates, so there is no next-segment flag).
func (l *CoordLog) DurableAt(off, max int) (data []byte, more bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if off < 0 || off > l.durable {
		return nil, false, fmt.Errorf("shard: coordinator offset %d beyond durable watermark %d", off, l.durable)
	}
	end := l.durable
	if max > 0 && off+max < end {
		end = off + max
	}
	return append([]byte(nil), l.buf[off:end]...), end < l.durable, nil
}

// Sync forces everything appended so far.
func (l *CoordLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCoordCrashed
	}
	return l.syncLocked()
}

// Kill applies a simulated process death: the surviving image is the
// durable prefix. Idempotent.
func (l *CoordLog) Kill() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return
	}
	l.crashed = true
	l.buf = l.buf[:l.durable]
	if l.file != nil {
		l.file.Close()
		l.file = nil
		_ = os.WriteFile(l.path, l.buf, 0o644)
	}
}

// Crashed reports whether the simulated process has died.
func (l *CoordLog) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashed
}

// Image returns the on-"disk" image: the durable prefix after a crash,
// the full written image before one.
func (l *CoordLog) Image() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return append([]byte(nil), l.buf[:l.durable]...)
	}
	return append([]byte(nil), l.buf...)
}

// Close syncs and closes the log (no-op after a crash).
func (l *CoordLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if l.file != nil {
		if err := l.file.Close(); err != nil {
			return err
		}
		l.file = nil
	}
	return nil
}

// DecodeCoordLog decodes a coordinator log image into its commit
// records in append (GSN) order, folding CEnd markers into Ended
// flags. Like the WAL decoder it never fails on a torn tail: it
// returns the longest valid prefix plus a non-nil truncation reason
// (nil when the image decoded exactly). An empty image is valid.
func DecodeCoordLog(data []byte) (recs []CommitRec, truncated error) {
	recs, _, truncated = DecodeCoordLogEpoch(data)
	return recs, truncated
}

// CountCoordRecords counts the whole records (commit, end, and epoch
// frames) in a coordinator log image's valid prefix — the replica-side
// operand of the replication lag gauge, matching what CoordLog.Appends
// counts on the primary.
func CountCoordRecords(data []byte) int {
	if len(data) < coordHdrLen {
		return 0
	}
	body := data[coordHdrLen:]
	n, off := 0, 0
	for {
		rest := body[off:]
		if len(rest) < 8 {
			return n
		}
		plen := binary.LittleEndian.Uint32(rest)
		if plen > maxCoordRec || uint64(8)+uint64(plen) > uint64(len(rest)) {
			return n
		}
		n++
		off += 8 + int(plen)
	}
}

// DecodeCoordLogEpoch is DecodeCoordLog plus the highest durable
// serving epoch branded into the image (0 when the log predates epochs
// or none reached the durable prefix).
func DecodeCoordLogEpoch(data []byte) (recs []CommitRec, epoch uint64, truncated error) {
	cr := DecodeCoordLogFull(data)
	return cr.Commits, cr.Epoch, cr.Truncated
}

// CoordRecovery is everything a full decode of a coordinator log image
// yields: the commit decisions, the branded serving and lease epochs,
// and the exactly-once session table (named entries admitted only when
// their commit decision is in the same valid prefix).
type CoordRecovery struct {
	Commits    []CommitRec
	Epoch      uint64
	LeaseEpoch uint64
	Sessions   map[uint64]recovery.SessionEntry
	// Batches counts durable sequencer batch records; SeqEpoch is the
	// highest sealed sequencer epoch in the prefix (0 when the log has
	// none — the mutex-coordinated path, or a pre-sequencer image).
	Batches   int
	SeqEpoch  uint64
	Truncated error
}

// DecodeCoordLogFull decodes a coordinator log image completely. Like
// DecodeCoordLog it never fails on a torn tail: the longest valid
// prefix is returned with Truncated set.
func DecodeCoordLogFull(data []byte) (cr CoordRecovery) {
	if len(data) == 0 {
		return cr
	}
	if len(data) < coordHdrLen || string(data[:len(coordMagic)]) != coordMagic {
		cr.Truncated = errors.New("shard: bad coordinator log header")
		return cr
	}
	if data[len(coordMagic)] != coordVersion {
		cr.Truncated = fmt.Errorf("shard: unsupported coordinator log version %d", data[len(coordMagic)])
		return cr
	}
	body := data[coordHdrLen:]
	ended := make(map[uint64]bool)
	byGSN := make(map[uint64]int)
	var sessRecs []SessionRec
	off := 0
	for {
		rest := body[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < 8 {
			cr.Truncated = fmt.Errorf("shard: torn coordinator frame header at offset %d", off)
			break
		}
		plen := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if plen > maxCoordRec {
			cr.Truncated = fmt.Errorf("shard: coordinator frame length %d exceeds limit at offset %d", plen, off)
			break
		}
		if uint64(8)+uint64(plen) > uint64(len(rest)) {
			cr.Truncated = fmt.Errorf("shard: torn coordinator record at offset %d", off)
			break
		}
		payload := rest[8 : 8+int(plen)]
		if crc32.Checksum(payload, coordCRC) != sum {
			cr.Truncated = fmt.Errorf("shard: coordinator checksum mismatch at offset %d", off)
			break
		}
		rec, err := decodeCoordPayload(payload)
		if err != nil {
			cr.Truncated = fmt.Errorf("shard: bad coordinator payload at offset %d: %w", off, err)
			break
		}
		switch {
		case rec.isEpoch:
			if rec.epoch > cr.Epoch {
				cr.Epoch = rec.epoch
			}
		case rec.isLease:
			if rec.epoch > cr.LeaseEpoch {
				cr.LeaseEpoch = rec.epoch
			}
		case rec.isSession:
			sessRecs = append(sessRecs, rec.session)
		case rec.isBatch:
			// A batch folds as if its decisions had been appended
			// individually: downstream recovery (roll-forward probe,
			// merged-order certificate, session fold) is unchanged.
			cr.Batches++
			if rec.batch.Epoch > cr.SeqEpoch {
				cr.SeqEpoch = rec.batch.Epoch
			}
			for _, c := range rec.batch.Commits {
				byGSN[c.GSN] = len(cr.Commits)
				cr.Commits = append(cr.Commits, c)
			}
		case rec.end:
			ended[rec.gsn] = true
		default:
			byGSN[rec.commit.GSN] = len(cr.Commits)
			cr.Commits = append(cr.Commits, rec.commit)
		}
		off += 8 + int(plen)
	}
	for gsn := range ended {
		if i, ok := byGSN[gsn]; ok {
			cr.Commits[i].Ended = true
		}
	}
	// Fold the session table: a named entry counts only when its commit
	// decision made the same valid prefix (the record precedes its
	// decision in the stream, so a second pass is needed); checkpoint
	// entries ("" name) are unconditional. Later sequence numbers win.
	if len(sessRecs) > 0 {
		committed := make(map[string]bool, len(cr.Commits))
		for _, c := range cr.Commits {
			committed[c.Name] = true
		}
		cr.Sessions = make(map[uint64]recovery.SessionEntry)
		for _, sr := range sessRecs {
			if sr.Name != "" && !committed[sr.Name] {
				continue
			}
			if cur, ok := cr.Sessions[sr.Session]; ok && cur.SeqNo >= sr.SeqNo {
				continue
			}
			cr.Sessions[sr.Session] = recovery.SessionEntry{SeqNo: sr.SeqNo, Results: sr.Results}
		}
		if len(cr.Sessions) == 0 {
			cr.Sessions = nil
		}
	}
	return cr
}

type coordPayload struct {
	end       bool
	isEpoch   bool
	isLease   bool
	isSession bool
	isBatch   bool
	epoch     uint64
	gsn       uint64
	commit    CommitRec
	session   SessionRec
	batch     BatchRec
}

// maxCoordBranches bounds declared counts so a corrupt length cannot
// demand a huge allocation before the overrun check.
const maxCoordBranches = 1 << 12

func decodeCoordPayload(p []byte) (coordPayload, error) {
	if len(p) == 0 {
		return coordPayload{}, errors.New("empty payload")
	}
	d := &cdec{b: p[1:]}
	switch p[0] {
	case cRecEnd:
		gsn := d.uvarint()
		if d.bad || len(d.b) != 0 {
			return coordPayload{}, errors.New("truncated end record")
		}
		return coordPayload{end: true, gsn: gsn}, nil
	case cRecEpoch:
		e := d.uvarint()
		if d.bad || len(d.b) != 0 {
			return coordPayload{}, errors.New("truncated epoch record")
		}
		return coordPayload{isEpoch: true, epoch: e}, nil
	case cRecLease:
		e := d.uvarint()
		if d.bad || len(d.b) != 0 {
			return coordPayload{}, errors.New("truncated lease record")
		}
		return coordPayload{isLease: true, epoch: e}, nil
	case cRecSession:
		var r SessionRec
		r.Session = d.uvarint()
		r.SeqNo = d.uvarint()
		r.Name = d.str()
		nr := d.uvarint()
		if nr > maxCoordRec {
			return coordPayload{}, fmt.Errorf("absurd result count %d", nr)
		}
		for i := uint64(0); i < nr && !d.bad; i++ {
			res := wal.SessResult{Val: d.varint()}
			switch d.byte() {
			case 0:
			case 1:
				res.Found = true
			default:
				return coordPayload{}, errors.New("bad result flag")
			}
			r.Results = append(r.Results, res)
		}
		if d.bad || len(d.b) != 0 {
			return coordPayload{}, errors.New("truncated session record")
		}
		return coordPayload{isSession: true, session: r}, nil
	case cRecCommit:
		r, err := decodeCommitBody(d)
		if err != nil {
			return coordPayload{}, err
		}
		if d.bad || len(d.b) != 0 {
			return coordPayload{}, errors.New("truncated commit record")
		}
		return coordPayload{commit: r}, nil
	case cRecBatch:
		var br BatchRec
		br.Epoch = d.uvarint()
		nc := d.uvarint()
		if nc > maxBatchCommits {
			return coordPayload{}, fmt.Errorf("absurd batch commit count %d", nc)
		}
		for i := uint64(0); i < nc && !d.bad; i++ {
			c, err := decodeCommitBody(d)
			if err != nil {
				return coordPayload{}, err
			}
			br.Commits = append(br.Commits, c)
		}
		if d.bad || len(d.b) != 0 {
			return coordPayload{}, errors.New("truncated batch record")
		}
		return coordPayload{isBatch: true, batch: br}, nil
	default:
		return coordPayload{}, fmt.Errorf("unknown record type %d", p[0])
	}
}

// decodeCommitBody decodes one commit decision's body — the inverse of
// encodeCommitBody, shared by standalone and batched records.
func decodeCommitBody(d *cdec) (CommitRec, error) {
	var r CommitRec
	r.GSN = d.uvarint()
	r.Name = d.str()
	nb := d.uvarint()
	if nb > maxCoordBranches {
		return r, fmt.Errorf("absurd branch count %d", nb)
	}
	for i := uint64(0); i < nb && !d.bad; i++ {
		var b BranchRec
		b.Shard = int(d.uvarint())
		np := d.uvarint()
		if np > maxCoordRec {
			return r, fmt.Errorf("absurd put count %d", np)
		}
		for j := uint64(0); j < np && !d.bad; j++ {
			kv := KV{Key: d.uvarint(), Val: d.varint(), Method: ops.WireMethod(d.byte())}
			if kv.Method > ops.WQPush {
				return r, fmt.Errorf("unknown write method %d", kv.Method)
			}
			b.Puts = append(b.Puts, kv)
		}
		r.Branches = append(r.Branches, b)
	}
	return r, nil
}

type cdec struct {
	b   []byte
	bad bool
}

func (d *cdec) uvarint() uint64 {
	if d.bad {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *cdec) varint() int64 {
	if d.bad {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *cdec) byte() byte {
	if d.bad || len(d.b) == 0 {
		d.bad = true
		return 0
	}
	c := d.b[0]
	d.b = d.b[1:]
	return c
}

func (d *cdec) str() string {
	n := d.uvarint()
	if d.bad || n > uint64(len(d.b)) {
		d.bad = true
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
