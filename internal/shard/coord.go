package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// The coordinator log is the cross-shard commit journal: presumed
// abort with roll-forward by evidence. A cross-shard transaction is
// globally committed iff its CCommit record — global serial number,
// name, and every participant branch's write-set — is durable here.
// The record is forced before any branch is allowed to CMT, so at
// recovery:
//
//   - CCommit durable, branch CMT missing on some shard → the branch is
//     redone from the journaled write-set (roll forward);
//   - CCommit absent → no branch can have committed (branches only CMT
//     after the forced decision), so per-shard recovery has already
//     discarded the prepared PUSHes — a consistent presumed abort.
//
// Either way zero transactions remain in doubt after restart. CEnd is
// a lazy completion marker (never forced), purely informational: it is
// appended when every branch acked its CMT in memory, but a later
// forced append can make it durable even though a shard WAL died under
// one of those CMTs — so recovery never treats CEnd as proof of branch
// durability and always runs the branch-presence probe.

// ErrCoordCrashed reports an append against a coordinator log whose
// simulated process has died.
var ErrCoordCrashed = errors.New("shard: coordinator log crashed (simulated process death)")

// KV is one journaled write.
type KV struct {
	Key uint64
	Val int64
}

// BranchRec is one participant's journaled branch: its shard and the
// write-set to roll forward from.
type BranchRec struct {
	Shard int
	Puts  []KV
}

// CommitRec is one cross-shard commit decision.
type CommitRec struct {
	GSN      uint64
	Name     string
	Branches []BranchRec
	// Ended is set by decode when a CEnd marker followed. Informational
	// only: CEnd does not certify branch durability (see package doc).
	Ended bool
}

// Coordinator log framing: an 8-byte header ("PPCRD", version, two
// reserved bytes), then records framed u32 len | u32 crc32c | payload,
// same discipline as the WAL — any byte stream decodes to a longest
// valid prefix plus a truncation point.
const (
	coordMagic   = "PPCRD"
	coordVersion = 1
	coordHdrLen  = 8

	cRecCommit = 1
	cRecEnd    = 2

	maxCoordRec = 1 << 20
)

var coordCRC = crc32.MakeTable(crc32.Castagnoli)

func coordHeader() []byte {
	h := make([]byte, 0, coordHdrLen)
	h = append(h, coordMagic...)
	h = append(h, coordVersion, 0, 0)
	return h
}

// CoordLog is the coordinator journal: an in-memory image with a
// durable watermark (and an optional backing file), with the same
// simulated-crash semantics as wal.Log — Kill freezes the durable
// prefix.
type CoordLog struct {
	mu      sync.Mutex
	path    string
	file    *os.File
	buf     []byte
	durable int
	crashed bool
	appends uint64
}

// OpenCoordLog creates a coordinator log; an empty path keeps it in
// memory (tests, simulated crashes).
func OpenCoordLog(path string) (*CoordLog, error) {
	l := &CoordLog{path: path}
	hdr := coordHeader()
	l.buf = append(l.buf, hdr...)
	if path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, err
		}
		l.file = f
	}
	l.durable = len(l.buf)
	return l, nil
}

func encodeCommitRec(r CommitRec) []byte {
	p := make([]byte, 0, 64)
	p = append(p, cRecCommit)
	p = binary.AppendUvarint(p, r.GSN)
	p = binary.AppendUvarint(p, uint64(len(r.Name)))
	p = append(p, r.Name...)
	p = binary.AppendUvarint(p, uint64(len(r.Branches)))
	for _, b := range r.Branches {
		p = binary.AppendUvarint(p, uint64(b.Shard))
		p = binary.AppendUvarint(p, uint64(len(b.Puts)))
		for _, kv := range b.Puts {
			p = binary.AppendUvarint(p, kv.Key)
			p = binary.AppendVarint(p, kv.Val)
		}
	}
	return p
}

func (l *CoordLog) append(payload []byte, force bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCoordCrashed
	}
	l.appends++
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, coordCRC))
	frame = append(frame, payload...)
	l.buf = append(l.buf, frame...)
	if l.file != nil {
		if _, err := l.file.Write(frame); err != nil {
			return err
		}
	}
	if force {
		return l.syncLocked()
	}
	return nil
}

func (l *CoordLog) syncLocked() error {
	if l.durable == len(l.buf) {
		return nil
	}
	if l.file != nil {
		if err := l.file.Sync(); err != nil {
			return err
		}
	}
	l.durable = len(l.buf)
	return nil
}

// AppendCommit journals one commit decision and forces it durable —
// the cross-shard commit point. No branch may CMT before this returns.
func (l *CoordLog) AppendCommit(r CommitRec) error {
	return l.append(encodeCommitRec(r), true)
}

// AppendEnd journals a lazy completion marker (not forced; see the
// package comment for why losing it is harmless).
func (l *CoordLog) AppendEnd(gsn uint64) error {
	p := make([]byte, 0, 10)
	p = append(p, cRecEnd)
	p = binary.AppendUvarint(p, gsn)
	return l.append(p, false)
}

// Sync forces everything appended so far.
func (l *CoordLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCoordCrashed
	}
	return l.syncLocked()
}

// Kill applies a simulated process death: the surviving image is the
// durable prefix. Idempotent.
func (l *CoordLog) Kill() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return
	}
	l.crashed = true
	l.buf = l.buf[:l.durable]
	if l.file != nil {
		l.file.Close()
		l.file = nil
		_ = os.WriteFile(l.path, l.buf, 0o644)
	}
}

// Crashed reports whether the simulated process has died.
func (l *CoordLog) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashed
}

// Image returns the on-"disk" image: the durable prefix after a crash,
// the full written image before one.
func (l *CoordLog) Image() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return append([]byte(nil), l.buf[:l.durable]...)
	}
	return append([]byte(nil), l.buf...)
}

// Close syncs and closes the log (no-op after a crash).
func (l *CoordLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if l.file != nil {
		if err := l.file.Close(); err != nil {
			return err
		}
		l.file = nil
	}
	return nil
}

// DecodeCoordLog decodes a coordinator log image into its commit
// records in append (GSN) order, folding CEnd markers into Ended
// flags. Like the WAL decoder it never fails on a torn tail: it
// returns the longest valid prefix plus a non-nil truncation reason
// (nil when the image decoded exactly). An empty image is valid.
func DecodeCoordLog(data []byte) (recs []CommitRec, truncated error) {
	if len(data) == 0 {
		return nil, nil
	}
	if len(data) < coordHdrLen || string(data[:len(coordMagic)]) != coordMagic {
		return nil, errors.New("shard: bad coordinator log header")
	}
	if data[len(coordMagic)] != coordVersion {
		return nil, fmt.Errorf("shard: unsupported coordinator log version %d", data[len(coordMagic)])
	}
	body := data[coordHdrLen:]
	ended := make(map[uint64]bool)
	byGSN := make(map[uint64]int)
	off := 0
	for {
		rest := body[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < 8 {
			truncated = fmt.Errorf("shard: torn coordinator frame header at offset %d", off)
			break
		}
		plen := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if plen > maxCoordRec {
			truncated = fmt.Errorf("shard: coordinator frame length %d exceeds limit at offset %d", plen, off)
			break
		}
		if uint64(8)+uint64(plen) > uint64(len(rest)) {
			truncated = fmt.Errorf("shard: torn coordinator record at offset %d", off)
			break
		}
		payload := rest[8 : 8+int(plen)]
		if crc32.Checksum(payload, coordCRC) != sum {
			truncated = fmt.Errorf("shard: coordinator checksum mismatch at offset %d", off)
			break
		}
		rec, err := decodeCoordPayload(payload)
		if err != nil {
			truncated = fmt.Errorf("shard: bad coordinator payload at offset %d: %w", off, err)
			break
		}
		if rec.end {
			ended[rec.gsn] = true
		} else {
			byGSN[rec.commit.GSN] = len(recs)
			recs = append(recs, rec.commit)
		}
		off += 8 + int(plen)
	}
	for gsn := range ended {
		if i, ok := byGSN[gsn]; ok {
			recs[i].Ended = true
		}
	}
	return recs, truncated
}

type coordPayload struct {
	end    bool
	gsn    uint64
	commit CommitRec
}

// maxCoordBranches bounds declared counts so a corrupt length cannot
// demand a huge allocation before the overrun check.
const maxCoordBranches = 1 << 12

func decodeCoordPayload(p []byte) (coordPayload, error) {
	if len(p) == 0 {
		return coordPayload{}, errors.New("empty payload")
	}
	d := &cdec{b: p[1:]}
	switch p[0] {
	case cRecEnd:
		gsn := d.uvarint()
		if d.bad || len(d.b) != 0 {
			return coordPayload{}, errors.New("truncated end record")
		}
		return coordPayload{end: true, gsn: gsn}, nil
	case cRecCommit:
		var r CommitRec
		r.GSN = d.uvarint()
		r.Name = d.str()
		nb := d.uvarint()
		if nb > maxCoordBranches {
			return coordPayload{}, fmt.Errorf("absurd branch count %d", nb)
		}
		for i := uint64(0); i < nb && !d.bad; i++ {
			var b BranchRec
			b.Shard = int(d.uvarint())
			np := d.uvarint()
			if np > maxCoordRec {
				return coordPayload{}, fmt.Errorf("absurd put count %d", np)
			}
			for j := uint64(0); j < np && !d.bad; j++ {
				b.Puts = append(b.Puts, KV{Key: d.uvarint(), Val: d.varint()})
			}
			r.Branches = append(r.Branches, b)
		}
		if d.bad || len(d.b) != 0 {
			return coordPayload{}, errors.New("truncated commit record")
		}
		return coordPayload{commit: r}, nil
	default:
		return coordPayload{}, fmt.Errorf("unknown record type %d", p[0])
	}
}

type cdec struct {
	b   []byte
	bad bool
}

func (d *cdec) uvarint() uint64 {
	if d.bad {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *cdec) varint() int64 {
	if d.bad {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *cdec) str() string {
	n := d.uvarint()
	if d.bad || n > uint64(len(d.b)) {
		d.bad = true
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
