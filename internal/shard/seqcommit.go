package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pushpull/internal/backend"
	"pushpull/internal/chaos"
	"pushpull/internal/core"
	"pushpull/internal/seq"
)

// The sequenced cross-shard commit path (Options.Seq): the engine's
// side of internal/seq. The serial order is fixed at admission — the
// sequencer hands out the GSN before the transaction executes — and
// the commit phase is split across the sequencer's hooks:
//
//	seqForce   one forced batch record per sealed epoch (the durable
//	           commit point for every transaction in it), with the
//	           coordinator death sites fired around the force exactly
//	           as the mutex path fires them around AppendCommit;
//	seqGate    the snapshot-cut barrier (no cut straddles a batch);
//	seqRetire  per-shard, GSN-ordered release of each branch's CMT;
//	seqDone    the transaction's terminal settle back to its waiter.
//
// Push/Pull reading: PUSH order is pinned up front by the GSN, and the
// CMT criterion for the whole epoch is discharged by the single batch
// force — each executor then merely realizes the already-decided order
// on its shard, so every shard's cross-commit subsequence equals the
// global order by construction and the Kahn merge is acyclic.

// seqBarrier is a shard's name-aware durability barrier (see
// core.NamedDurable) on the sequenced path. A sequenced branch's CMT
// needs no per-commit force: the epoch's batch record — forced before
// any executor releases — already journals the decision and the
// branch's write-set, so a CMT lost in a crash is rolled forward from
// the coordinator journal at recovery, exactly the invariant the
// shardseq chaos sweep certifies. This is where "one forced record per
// epoch" is realized on the shard side: the whole batch costs one
// coordinator fsync, while single-shard commits (whose shard CMT is
// their only durability point) and redo roll-forwards still run the
// group-commit barrier.
type seqBarrier struct {
	g *backend.GroupCommit

	mu     sync.Mutex
	exempt map[string]struct{} // branches between decide and retire

	skipped atomic.Uint64
}

func newSeqBarrier(g *backend.GroupCommit) *seqBarrier {
	return &seqBarrier{g: g, exempt: make(map[string]struct{})}
}

// CommitBarrier is the nameless fallback: always force.
func (s *seqBarrier) CommitBarrier() error { return s.g.CommitBarrier() }

// CommitBarrierFor skips the force for a branch the executor has
// marked released (its durability is the already-forced batch record).
func (s *seqBarrier) CommitBarrierFor(name string) error {
	s.mu.Lock()
	_, ok := s.exempt[name]
	s.mu.Unlock()
	if ok {
		s.skipped.Add(1)
		return nil
	}
	return s.g.CommitBarrier()
}

func (s *seqBarrier) mark(name string)   { s.mu.Lock(); s.exempt[name] = struct{}{}; s.mu.Unlock() }
func (s *seqBarrier) unmark(name string) { s.mu.Lock(); delete(s.exempt, name); s.mu.Unlock() }

var _ core.NamedDurable = (*seqBarrier)(nil)

// seqTxn is the engine payload riding one sequencer item.
type seqTxn struct {
	name     string
	branches []*branch // shard-ascending
	byShard  map[int]*branch
	sess     *sessInfo
	results  []Result
	outcome  chan seqOutcome // buffered(1): settled exactly once
}

type seqOutcome struct {
	committed bool
	err       error
}

// doCrossSeq is the sequenced one-shot cross path: admit (GSN fixed
// before execution), execute + prepare on every participant, then hand
// the prepared transaction to the sequencer and wait for its epoch.
func (e *Engine) doCrossSeq(parts [][]opAt, nops int, sess *sessInfo) ([]Result, uint32, error) {
	tk, err := e.seqr.Admit()
	if err != nil {
		return nil, 0, err
	}
	name := fmt.Sprintf("g%d", tk.GSN)
	var branches []*branch
	for sid, p := range parts {
		if p == nil {
			continue
		}
		st := e.shards[sid]
		b := newBranch(st, name, newDecision(), false)
		e.enter(st)
		go b.run()
		branches = append(branches, b)
	}
	results := make([]Result, nops)
	if prepErr := e.feedBranches(parts, branches, results); prepErr != nil {
		e.seqr.Abort(tk)
		e.finishCross(branches)
		e.crossAborts.Add(1)
		return nil, e.maxRetries(branches), prepErr
	}
	if err := e.seqCommitPrepared(tk, name, branches, sess, results); err != nil {
		e.crossAborts.Add(1)
		return nil, e.maxRetries(branches), err
	}
	e.crossCommits.Add(1)
	return results, e.maxRetries(branches), nil
}

// seqCommitPrepared hands a fully prepared transaction to the
// sequencer and blocks until its epoch settles it. Both the one-shot
// and the interactive path end here. On a nil return every branch has
// retired (committed); on error the branches are already reaped.
func (e *Engine) seqCommitPrepared(tk seq.Ticket, name string, branches []*branch, sess *sessInfo, results []Result) error {
	tx := &seqTxn{
		name: name, branches: branches,
		byShard: make(map[int]*branch, len(branches)),
		sess:    sess, results: results,
		outcome: make(chan seqOutcome, 1),
	}
	shards := make([]int, 0, len(branches))
	for _, b := range branches {
		tx.byShard[b.st.id] = b
		shards = append(shards, b.st.id)
	}
	e.seqr.Ready(tk, shards, tx)
	out := <-tx.outcome
	if !out.committed {
		if out.err == nil {
			out.err = errors.New("shard: sequenced commit aborted")
		}
		return out.err
	}
	return nil
}

// seqForce durably journals one sealed epoch: session entries ride
// unforced just before the single forced batch record (decision
// durable implies entry durable, and the conditional fold discards an
// entry whose decision is missing). The coordinator death sites fire
// on either side of the force, preserving the chaos sweep's
// prepare→commit murder window: death before the force leaves no
// durable decision for the whole epoch (presumed abort, and the
// in-memory path aborts consistently via the force error); death after
// it lets recovery roll every transaction of the batch forward.
func (e *Engine) seqForce(epoch uint64, items []seq.Item) error {
	if e.inj != nil && e.inj.Fire(chaos.SiteCoordPrepared) {
		e.killAll()
	}
	if e.coord != nil {
		batch := BatchRec{Epoch: epoch}
		for _, it := range items {
			tx := it.Payload.(*seqTxn)
			if tx.sess != nil {
				if err := e.coord.AppendSession(SessionRec{
					Session: tx.sess.session, SeqNo: tx.sess.seq, Name: tx.name,
					Results: sessResultsOf(tx.results),
				}, false); err != nil && !errors.Is(err, ErrCoordCrashed) && !errors.Is(err, ErrCoordFenced) {
					return fmt.Errorf("shard: journaling session entry: %w", err)
				}
			}
			crec := CommitRec{GSN: it.GSN, Name: tx.name}
			for _, b := range tx.branches {
				crec.Branches = append(crec.Branches, BranchRec{Shard: b.st.id, Puts: b.puts()})
			}
			batch.Commits = append(batch.Commits, crec)
		}
		if err := e.coord.AppendBatch(batch); err != nil {
			if errors.Is(err, ErrCoordCrashed) {
				return fmt.Errorf("%w: coordinator died before the batch decision", err)
			}
			return fmt.Errorf("shard: journaling batch decision: %w", err)
		}
	}
	if e.inj != nil && e.inj.Fire(chaos.SiteCoordCommit) {
		e.killAll()
	}
	// The epoch's names enter the global order now, in GSN order — the
	// executors append each shard's chain as they release.
	e.orderMu.Lock()
	for _, it := range items {
		e.coordOrder = append(e.coordOrder, it.Payload.(*seqTxn).name)
	}
	e.orderMu.Unlock()
	return nil
}

// seqGate holds a forced batch's dispatch while a snapshot cut is
// pinning, then counts its items as releasing (seqDone balances).
func (e *Engine) seqGate(items int) {
	e.cutMu.Lock()
	for e.cutters > 0 {
		e.cutCond.Wait()
	}
	e.releasing += items
	e.cutMu.Unlock()
}

// seqRetire releases one branch's CMT at its shard's queue position —
// the per-shard realization of the GSN order. The decision is already
// durable (batch forced), so a branch that cannot retire (retry budget
// exhausted post-decision) is rolled forward from its journaled
// write-set, exactly like the mutex path.
func (e *Engine) seqRetire(sid int, it seq.Item) {
	tx := it.Payload.(*seqTxn)
	b := tx.byShard[sid]
	if sb := b.st.seqB; sb != nil {
		// The CMT this decision releases is covered by the forced batch
		// record; exempt it from the per-commit force for the decide→
		// retire window (names are GSN-unique, so the mark is exact).
		sb.mark(tx.name)
		defer sb.unmark(tx.name)
	}
	b.dec.decide(true)
	if err := b.wait(); err != nil {
		if rerr := e.applyRedo(b.st, "redo-"+tx.name, b.puts()); rerr != nil {
			e.setRollErr(fmt.Errorf("shard %d: rolling forward %q: %w", b.st.id, tx.name, rerr))
		}
		e.redoCount.Add(1)
	}
	e.exit(b.st)
	e.orderMu.Lock()
	e.shardCross[sid] = append(e.shardCross[sid], tx.name)
	e.orderMu.Unlock()
	e.noteCrash(b.st)
}

// seqDone settles one transaction back to its waiter. Committed: all
// branches retired — append the lazy completion marker (same honesty
// rule as the mutex path) and release the snapshot-cut gate. Aborted
// (failed force or sequencer close): the branches are still parked on
// their decisions, so reap them.
func (e *Engine) seqDone(it seq.Item, committed bool, err error) {
	tx := it.Payload.(*seqTxn)
	if committed {
		ended := true
		for _, b := range tx.branches {
			if b.st.log != nil && b.st.log.Crashed() {
				ended = false
				break
			}
		}
		if e.coord != nil && ended {
			_ = e.coord.AppendEnd(it.GSN)
		}
		e.cutMu.Lock()
		e.releasing--
		if e.releasing == 0 {
			e.cutCond.Broadcast()
		}
		e.cutMu.Unlock()
	} else {
		e.finishCross(tx.branches)
	}
	tx.outcome <- seqOutcome{committed: committed, err: err}
}
