package shard

import (
	"errors"
	"fmt"
	"sort"

	"pushpull/internal/recovery"
	"pushpull/internal/wal"
)

// Exactly-once client sessions. A session is one client's retry
// domain: the client tags every one-shot transaction with its session
// id and a sequence number it only advances after the previous
// request's outcome is settled, and the engine remembers, per session,
// the latest committed sequence number with its results. A retry of
// that sequence number is answered from the table instead of
// re-executing — the dual of acked-loss: an ambiguous outcome (crash,
// partition, withheld ack) can be retried blindly without ever
// double-applying.
//
// The table itself must survive everything the data survives, so its
// entries ride the same logs as the committing rules, strictly before
// the commit point they describe:
//
//   - single-shard: a TSession record in the home shard's WAL, appended
//     inside the transaction body, so the shard's commit record follows
//     it — commit durable ⇒ entry durable;
//   - cross-shard: a cRecSession record in the coordinator log,
//     appended unforced immediately before the forced CCommit decision
//     — decision durable ⇒ entry durable.
//
// Recovery (and every replica, which folds the same bytes) admits an
// entry only when the transaction it names committed in the same
// durable prefix; an entry whose commit was lost describes a request
// that never took effect, and discarding it is what makes the retry
// re-execute correctly. At boot the recovered table is re-logged into
// the new timeline's coordinator log as unconditional checkpoint
// entries (empty name), so the guarantee survives chained failovers.

// sessEntry is one session's latest settled request.
type sessEntry struct {
	seq     uint64
	results []Result
}

// sessInfo threads a request's session identity through the commit
// paths.
type sessInfo struct {
	session uint64
	seq     uint64
}

// ErrStaleSeq reports a session request whose sequence number is below
// the session's latest committed one — a delayed duplicate of a
// request whose outcome the client already consumed.
var ErrStaleSeq = errors.New("shard: stale session sequence number")

func sessResultsOf(results []Result) []wal.SessResult {
	out := make([]wal.SessResult, len(results))
	for i, r := range results {
		out[i] = wal.SessResult{Val: r.Val, Found: r.Found}
	}
	return out
}

func resultsOfSess(in []wal.SessResult) []Result {
	out := make([]Result, len(in))
	for i, r := range in {
		out[i] = Result{Val: r.Val, Found: r.Found}
	}
	return out
}

// seedSessions installs the recovered dedup table and re-logs it into
// the new timeline as unconditional checkpoint entries: the recovered
// entries reference transaction names of the previous timeline, which
// the re-seeded logs no longer carry, so without the checkpoint a
// second crash (or a follower of the promoted primary) would lose the
// table. Runs at the end of New, before anything serves.
func (e *Engine) seedSessions() error {
	e.sess = make(map[uint64]sessEntry, len(e.recovered.Sessions))
	e.leaseEpoch.Store(e.recovered.LeaseEpoch)
	if len(e.recovered.Sessions) == 0 {
		return nil
	}
	sessions := make([]uint64, 0, len(e.recovered.Sessions))
	for s := range e.recovered.Sessions {
		sessions = append(sessions, s)
	}
	sort.Slice(sessions, func(i, j int) bool { return sessions[i] < sessions[j] })
	for _, s := range sessions {
		ent := e.recovered.Sessions[s]
		e.sess[s] = sessEntry{seq: ent.SeqNo, results: resultsOfSess(ent.Results)}
		if e.coord != nil {
			if err := e.coord.AppendSession(SessionRec{
				Session: s, SeqNo: ent.SeqNo, Results: ent.Results,
			}, false); err != nil {
				return fmt.Errorf("shard: checkpointing session table: %w", err)
			}
		}
	}
	if e.coord != nil {
		if err := e.coord.Sync(); err != nil {
			return fmt.Errorf("shard: checkpointing session table: %w", err)
		}
	}
	return nil
}

// DoSession executes ops exactly-once under (session, seqNo): a retry
// of the session's latest committed sequence number is answered from
// the dedup table with the original results (dedup=true) without
// re-executing; a lower sequence number fails with ErrStaleSeq; a
// higher one executes and, on commit, becomes the session's entry. A
// session id of 0 means "no session" and falls back to plain Do.
//
// Within one session, requests are sequential (the client advances
// seqNo only after settling the previous request); concurrent requests
// on the same session are outside the contract.
func (e *Engine) DoSession(session, seqNo uint64, ops []Op) (res []Result, retries uint32, dedup bool, err error) {
	if session == 0 {
		res, retries, err = e.Do(ops)
		return res, retries, false, err
	}
	e.sessMu.Lock()
	if ent, ok := e.sess[session]; ok {
		switch {
		case seqNo == ent.seq:
			res = append([]Result(nil), ent.results...)
			e.sessMu.Unlock()
			e.dedupHits.Add(1)
			e.suite.Metrics.DedupHit(session)
			// A dedup answer is still an ack of the original commit, so
			// it passes the same gate: a fenced engine's table may
			// describe commits its successor never received, and an
			// expired lease must not promise anything.
			if aerr := e.ackGate(); aerr != nil {
				return nil, 0, true, aerr
			}
			return res, 0, true, nil
		case seqNo < ent.seq:
			have := ent.seq
			e.sessMu.Unlock()
			return nil, 0, false, fmt.Errorf("%w: session %d seq %d (latest committed %d)",
				ErrStaleSeq, session, seqNo, have)
		}
	}
	e.sessMu.Unlock()
	res, retries, err = e.do(ops, &sessInfo{session: session, seq: seqNo})
	if err != nil {
		return nil, retries, false, err
	}
	// Record the entry before the ack gate: the commit happened (and its
	// session record rode the log), so a retry against this same engine
	// must dedup even when this ack is withheld.
	e.sessMu.Lock()
	if cur, ok := e.sess[session]; !ok || cur.seq < seqNo {
		e.sess[session] = sessEntry{seq: seqNo, results: append([]Result(nil), res...)}
	}
	e.sessMu.Unlock()
	if aerr := e.ackGate(); aerr != nil {
		return nil, retries, false, aerr
	}
	return res, retries, false, nil
}

// Sessions snapshots the exactly-once table (tests and sweeps compare
// it against client-side ledgers).
func (e *Engine) Sessions() map[uint64]recovery.SessionEntry {
	e.sessMu.Lock()
	defer e.sessMu.Unlock()
	out := make(map[uint64]recovery.SessionEntry, len(e.sess))
	for s, ent := range e.sess {
		out[s] = recovery.SessionEntry{SeqNo: ent.seq, Results: sessResultsOf(ent.results)}
	}
	return out
}

// DedupHits counts retries answered from the session table.
func (e *Engine) DedupHits() uint64 { return e.dedupHits.Load() }

// BrandLease journals the lease epoch granted to this engine's holder
// (forced, into the coordinator log) and publishes it. Lease epochs
// must not regress: the supervisor grants successor leases at
// predecessor+1, and the recovered image's lease epoch is the floor.
func (e *Engine) BrandLease(epoch uint64) error {
	for {
		cur := e.leaseEpoch.Load()
		if epoch <= cur {
			return fmt.Errorf("shard: lease epoch %d does not exceed the current lease epoch %d", epoch, cur)
		}
		if e.leaseEpoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	if e.coord != nil {
		if err := e.coord.AppendLease(epoch); err != nil {
			return fmt.Errorf("shard: branding lease epoch: %w", err)
		}
	}
	e.suite.Metrics.LeaseEpochSet(epoch)
	return nil
}

// LeaseEpoch returns the highest lease epoch branded through this
// engine (or recovered from its image).
func (e *Engine) LeaseEpoch() uint64 { return e.leaseEpoch.Load() }
