package shard

import (
	"errors"
	"testing"

	"pushpull/internal/chaos"
)

func newTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	if opts.Keys == 0 {
		opts.Keys = 256
	}
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	e, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

// keysOnDistinctShards returns one key homed on each of n distinct
// shards (scanning upward from 0).
func keysOnDistinctShards(t *testing.T, e *Engine, n int) []uint64 {
	t.Helper()
	keys := make([]uint64, 0, n)
	used := make(map[int]bool, n)
	for k := uint64(0); k < uint64(e.opts.Keys) && len(keys) < n; k++ {
		if sid := e.router.Shard(k); !used[sid] {
			used[sid] = true
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("could not find keys on %d distinct shards", n)
	}
	return keys
}

func finishEngine(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.LeakCheck(); err != nil {
		t.Fatalf("LeakCheck: %v", err)
	}
	if err := e.FinalCheck(); err != nil {
		t.Fatalf("FinalCheck: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSingleShardDo(t *testing.T) {
	e := newTestEngine(t, Options{Shards: 1})
	res, _, err := e.Do([]Op{
		{Kind: OpPut, Key: 1, Val: 10},
		{Kind: OpGet, Key: 1},
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !res[1].Found || res[1].Val != 10 {
		t.Fatalf("read back %+v", res[1])
	}
	s := e.Stats()
	if s.CrossCommits != 0 || s.Commits == 0 {
		t.Fatalf("stats %+v", s)
	}
	finishEngine(t, e)
}

func TestCrossShardDo(t *testing.T) {
	for _, sub := range []string{"tl2", "pess", "boost"} {
		t.Run(sub, func(t *testing.T) {
			e := newTestEngine(t, Options{Shards: 4, Substrate: sub})
			keys := keysOnDistinctShards(t, e, 3)
			ops := make([]Op, 0, 6)
			for i, k := range keys {
				ops = append(ops, Op{Kind: OpPut, Key: k, Val: int64(100 + i)})
			}
			for _, k := range keys {
				ops = append(ops, Op{Kind: OpGet, Key: k})
			}
			res, _, err := e.Do(ops)
			if err != nil {
				t.Fatalf("cross Do: %v", err)
			}
			for i := range keys {
				r := res[len(keys)+i]
				if !r.Found || r.Val != int64(100+i) {
					t.Fatalf("key %d read back %+v", keys[i], r)
				}
			}
			// Quiescent verification on the home shards.
			for i, k := range keys {
				if v, ok := e.ReadKey(k); !ok || v != int64(100+i) {
					t.Fatalf("ReadKey(%d) = %d,%v", k, v, ok)
				}
			}
			if s := e.Stats(); s.CrossCommits != 1 {
				t.Fatalf("stats %+v", s)
			}
			finishEngine(t, e)
		})
	}
}

func TestCrossShardMany(t *testing.T) {
	e := newTestEngine(t, Options{Shards: 4})
	keys := keysOnDistinctShards(t, e, 4)
	for round := 0; round < 50; round++ {
		a, b := keys[round%4], keys[(round+1)%4]
		_, _, err := e.Do([]Op{
			{Kind: OpPut, Key: a, Val: int64(round)},
			{Kind: OpPut, Key: b, Val: int64(round)},
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	coord, perShard := e.CrossOrders()
	if len(coord) != 50 {
		t.Fatalf("%d coordinator commits, want 50", len(coord))
	}
	total := 0
	for _, c := range perShard {
		total += len(c)
	}
	if total != 100 {
		t.Fatalf("%d branch commits, want 100", total)
	}
	finishEngine(t, e)
}

func TestInteractiveTxn(t *testing.T) {
	e := newTestEngine(t, Options{Shards: 4})
	keys := keysOnDistinctShards(t, e, 2)

	tx := e.Begin()
	if err := tx.Put(keys[0], 7); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(keys[1], 8); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := tx.Get(keys[0]); err != nil || !ok || v != 7 {
		t.Fatalf("own write: %d,%v,%v", v, ok, err)
	}
	if tx.Participants() != 2 {
		t.Fatalf("participants %d", tx.Participants())
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if v, ok := e.ReadKey(keys[1]); !ok || v != 8 {
		t.Fatalf("committed value missing: %d,%v", v, ok)
	}

	// Abort rolls back both branches.
	tx = e.Begin()
	if err := tx.Put(keys[0], 99); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(keys[1], 99); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.ReadKey(keys[0]); v != 7 {
		t.Fatalf("aborted write leaked: %d", v)
	}

	// Single-participant interactive commit takes the direct path.
	tx = e.Begin()
	if err := tx.Put(keys[0], 11); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.CrossCommits != 1 {
		t.Fatalf("direct commit should not count as cross: %+v", s)
	}

	// Abandon mid-transaction aborts cleanly.
	tx = e.Begin()
	if err := tx.Put(keys[1], 55); err != nil {
		t.Fatal(err)
	}
	tx.Abandon()
	if v, _ := e.ReadKey(keys[1]); v != 8 {
		t.Fatalf("abandoned write leaked: %d", v)
	}
	finishEngine(t, e)
}

func TestCrashRollForward(t *testing.T) {
	// The coordinator dies right after the forced commit decision: no
	// branch CMT reaches any shard's durable prefix, yet the
	// transaction is globally committed. Recovery must roll every
	// branch forward.
	plan := chaos.NewPlan(7).WithScript(chaos.SiteCoordCommit, []bool{true})
	e := newTestEngine(t, Options{Shards: 4, Durable: true, Plan: &plan})
	keys := keysOnDistinctShards(t, e, 2)

	// A durable single-shard write before the crash.
	if _, _, err := e.Do([]Op{{Kind: OpPut, Key: keys[0], Val: 1}}); err != nil {
		t.Fatal(err)
	}
	// The cross-shard transaction that triggers the scripted death. The
	// decision is durable, so it commits in memory too.
	if _, _, err := e.Do([]Op{
		{Kind: OpPut, Key: keys[0], Val: 2},
		{Kind: OpPut, Key: keys[1], Val: 3},
	}); err != nil {
		t.Fatalf("cross Do: %v", err)
	}
	if !e.Crashed() {
		t.Fatal("scripted coordinator death did not fire")
	}
	img := e.Image()

	e2 := newTestEngine(t, Options{Shards: 4, Durable: true, RecoverFrom: img})
	rep := e2.Recovered()
	if rep.InDoubt != 0 {
		t.Fatalf("in-doubt after restart: %d", rep.InDoubt)
	}
	if rep.InDoubtResolved != 1 || len(rep.Redos) != 2 {
		t.Fatalf("resolution: %+v", rep)
	}
	if v, ok := e2.ReadKey(keys[0]); !ok || v != 2 {
		t.Fatalf("rolled-forward value: %d,%v", v, ok)
	}
	if v, ok := e2.ReadKey(keys[1]); !ok || v != 3 {
		t.Fatalf("rolled-forward value: %d,%v", v, ok)
	}
	finishEngine(t, e2)
	_ = e.Close()
}

func TestCrashBeforeDecision(t *testing.T) {
	// Death between prepare and the decision record: the transaction
	// aborts in memory AND by presumed abort at recovery — consistent.
	plan := chaos.NewPlan(7).WithScript(chaos.SiteCoordPrepared, []bool{true})
	e := newTestEngine(t, Options{Shards: 4, Durable: true, Plan: &plan})
	keys := keysOnDistinctShards(t, e, 2)

	if _, _, err := e.Do([]Op{{Kind: OpPut, Key: keys[0], Val: 1}}); err != nil {
		t.Fatal(err)
	}
	_, _, err := e.Do([]Op{
		{Kind: OpPut, Key: keys[0], Val: 2},
		{Kind: OpPut, Key: keys[1], Val: 3},
	})
	if !errors.Is(err, ErrCoordCrashed) {
		t.Fatalf("want ErrCoordCrashed, got %v", err)
	}
	img := e.Image()

	e2 := newTestEngine(t, Options{Shards: 4, Durable: true, RecoverFrom: img})
	rep := e2.Recovered()
	if rep.InDoubt != 0 || rep.InDoubtResolved != 0 || len(rep.Redos) != 0 {
		t.Fatalf("presumed abort should need no resolution: %+v", rep)
	}
	if rep.CoordCommits != 0 {
		t.Fatalf("no decision should be durable: %+v", rep)
	}
	if v, ok := e2.ReadKey(keys[0]); !ok || v != 1 {
		t.Fatalf("pre-crash value: %d,%v", v, ok)
	}
	if v, _ := e2.ReadKey(keys[1]); v == 3 {
		t.Fatal("aborted write resurrected")
	}
	finishEngine(t, e2)
	_ = e.Close()
}

func TestShardCountMismatch(t *testing.T) {
	e := newTestEngine(t, Options{Shards: 4, Durable: true})
	keys := keysOnDistinctShards(t, e, 2)
	if _, _, err := e.Do([]Op{
		{Kind: OpPut, Key: keys[0], Val: 1},
		{Kind: OpPut, Key: keys[1], Val: 2},
	}); err != nil {
		t.Fatal(err)
	}
	img := e.Image()
	if _, err := New(Options{Shards: 2, Substrate: "tl2", Keys: 256, Seed: 1, Durable: true, RecoverFrom: img}); err == nil {
		t.Fatal("expected shard-count mismatch refusal")
	}
	_ = e.Close()
}

func TestDurableRestartClean(t *testing.T) {
	// Clean shutdown and restart: everything recovers, nothing to
	// resolve, merged order holds.
	e := newTestEngine(t, Options{Shards: 3, Durable: true})
	keys := keysOnDistinctShards(t, e, 3)
	for i, k := range keys {
		if _, _, err := e.Do([]Op{{Kind: OpPut, Key: k, Val: int64(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := e.Do([]Op{
		{Kind: OpPut, Key: keys[0], Val: 10},
		{Kind: OpPut, Key: keys[2], Val: 30},
	}); err != nil {
		t.Fatal(err)
	}
	img := e.Image()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := newTestEngine(t, Options{Shards: 3, Durable: true, RecoverFrom: img})
	rep := e2.Recovered()
	if rep.InDoubtResolved != 0 || rep.InDoubt != 0 {
		t.Fatalf("clean restart needed resolution: %+v", rep)
	}
	if rep.CoordCommits != 1 || len(rep.MergedOrder) == 0 {
		t.Fatalf("report %+v", rep)
	}
	if v, ok := e2.ReadKey(keys[0]); !ok || v != 10 {
		t.Fatalf("recovered %d,%v", v, ok)
	}
	if v, ok := e2.ReadKey(keys[1]); !ok || v != 2 {
		t.Fatalf("recovered %d,%v", v, ok)
	}
	finishEngine(t, e2)
}

func TestWALDirRestart(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, Options{Shards: 2, WALDir: dir})
	keys := keysOnDistinctShards(t, e, 2)
	if _, _, err := e.Do([]Op{
		{Kind: OpPut, Key: keys[0], Val: 5},
		{Kind: OpPut, Key: keys[1], Val: 6},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := newTestEngine(t, Options{Shards: 2, WALDir: dir})
	if e2.Recovered().CoordCommits != 1 {
		t.Fatalf("recovered %+v", e2.Recovered())
	}
	if v, ok := e2.ReadKey(keys[0]); !ok || v != 5 {
		t.Fatalf("recovered %d,%v", v, ok)
	}
	// Restarting with a different shard count against the same
	// directory must refuse.
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Shards: 3, Substrate: "tl2", Keys: 256, Seed: 1, WALDir: dir}); err == nil {
		t.Fatal("expected shard-count refusal from on-disk image")
	}
}
