package shard

import (
	"fmt"
	"sort"
)

// Txn is an interactive sharded transaction: branches open lazily on
// the shards the client actually touches, each answered read is
// validated on conflict replay (the client has seen it), and Commit
// runs the direct path when one shard participated or the two-phase
// coordinator otherwise.
type Txn struct {
	e        *Engine
	name     string
	branches map[int]*branch
	done     bool
	err      error
}

// Begin opens an interactive transaction.
func (e *Engine) Begin() *Txn {
	return &Txn{
		e:        e,
		name:     fmt.Sprintf("x%d", e.seq.Add(1)),
		branches: make(map[int]*branch),
	}
}

// branchFor returns (opening if needed) the branch on key's home shard.
func (t *Txn) branchFor(key uint64) *branch {
	sid := t.e.router.Shard(key)
	if b, ok := t.branches[sid]; ok {
		return b
	}
	st := t.e.shards[sid]
	b := newBranch(st, t.name, newDecision(), true)
	t.e.enter(st)
	go b.run()
	t.branches[sid] = b
	return b
}

// reap tears down every branch after the abort decision: decide(false)
// unblocks branches parked on their decisions (prepared), abandon
// closes the command channel of branches still parked in their op
// loop, and both paths drain to the Atomic outcome.
func (t *Txn) reap() {
	for _, b := range t.branches {
		b.dec.decide(false)
	}
	for _, b := range t.branches {
		_ = b.abandon()
		t.e.exit(b.st)
		t.e.noteCrash(b.st)
	}
}

// fail records the terminal outcome and reaps every branch.
func (t *Txn) fail(err error) error {
	t.done, t.err = true, err
	t.reap()
	if len(t.branches) > 1 {
		t.e.crossAborts.Add(1)
	}
	return err
}

// Get reads key inside the transaction.
func (t *Txn) Get(key uint64) (int64, bool, error) {
	if t.done {
		return 0, false, fmt.Errorf("shard: transaction %s already finished", t.name)
	}
	b := t.branchFor(key)
	r, err := b.send(cmd{kind: cmdGet, key: key})
	if err != nil {
		return 0, false, t.fail(err)
	}
	return r.val, r.found, nil
}

// Put writes key inside the transaction.
func (t *Txn) Put(key uint64, val int64) error {
	if t.done {
		return fmt.Errorf("shard: transaction %s already finished", t.name)
	}
	b := t.branchFor(key)
	if _, err := b.send(cmd{kind: cmdPut, key: key, val: val}); err != nil {
		return t.fail(err)
	}
	return nil
}

// Commit finishes the transaction: a read-only no-participant commit
// is trivially done; one participant commits directly on its shard;
// several run prepare on every branch and then the engine's
// coordinated commit phase.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("shard: transaction %s already finished", t.name)
	}
	if len(t.branches) == 0 {
		t.done = true
		return nil
	}
	if len(t.branches) == 1 {
		var err error
		for _, b := range t.branches {
			err = b.finish(cmdCommit)
			t.e.exit(b.st)
			t.e.noteCrash(b.st)
		}
		t.done, t.err = true, err
		return err
	}
	// Deterministic branch order (by shard) for the commit record.
	sids := make([]int, 0, len(t.branches))
	for sid := range t.branches {
		sids = append(sids, sid)
	}
	sort.Ints(sids)
	branches := make([]*branch, 0, len(sids))
	for _, sid := range sids {
		branches = append(branches, t.branches[sid])
	}
	// Sequenced path: the GSN is pinned now — before prepare — so the
	// commit order is fixed ahead of the decision phase (an interactive
	// session's reads already happened; admission any earlier would
	// stall the sequencer's cursor for the whole client think-time).
	if t.e.seqr != nil {
		tk, err := t.e.seqr.Admit()
		if err != nil {
			return t.fail(err)
		}
		for _, b := range branches {
			if err := b.prepare(); err != nil {
				t.e.seqr.Abort(tk)
				return t.fail(err)
			}
		}
		// seqCommitPrepared owns the branches from here.
		err = t.e.seqCommitPrepared(tk, t.name, branches, nil, nil)
		t.done, t.err = true, err
		if err != nil {
			t.e.crossAborts.Add(1)
			return err
		}
		t.e.crossCommits.Add(1)
		return nil
	}
	for _, b := range branches {
		if err := b.prepare(); err != nil {
			return t.fail(err)
		}
	}
	// commitCross owns the branches from here: it decides, reaps, and
	// moves the gauges on both outcomes.
	err := t.e.commitCross(t.name, branches, nil, nil)
	t.done, t.err = true, err
	if err != nil {
		t.e.crossAborts.Add(1)
		return err
	}
	t.e.crossCommits.Add(1)
	return nil
}

// Abort rolls the transaction back on every participant shard.
func (t *Txn) Abort() error {
	if t.done {
		return t.err
	}
	t.done, t.err = true, ErrClientAbort
	t.reap()
	return nil
}

// Abandon simulates a client vanishing mid-transaction: every open
// branch is torn down and the transaction aborts.
func (t *Txn) Abandon() {
	if t.done {
		return
	}
	t.done, t.err = true, errClientGone
	t.reap()
}

// Retries reports the maximum substrate retry count over the branches.
func (t *Txn) Retries() uint32 {
	var max uint32
	for _, b := range t.branches {
		if b.retries > max {
			max = b.retries
		}
	}
	return max
}

// Participants reports how many shards the transaction has touched.
func (t *Txn) Participants() int { return len(t.branches) }

// Name returns the transaction's engine-assigned name.
func (t *Txn) Name() string { return t.name }
