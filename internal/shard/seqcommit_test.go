package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pushpull/internal/chaos"
)

// The sequenced commit path's own certificates: determinism (every
// shard's cross-commit subsequence equals the sequencer's GSN order),
// the one-force-per-epoch durability shape, and recovery idempotence
// over batch records.

func TestSeqCrossShardDo(t *testing.T) {
	e := newTestEngine(t, Options{Shards: 4, Seq: true, Durable: true})
	keys := keysOnDistinctShards(t, e, 4)

	if _, _, err := e.Do([]Op{{Kind: OpPut, Key: keys[0], Val: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Do([]Op{
		{Kind: OpPut, Key: keys[0], Val: 2},
		{Kind: OpPut, Key: keys[1], Val: 3},
	}); err != nil {
		t.Fatalf("cross Do: %v", err)
	}
	// The interactive path admits at Commit and rides the same epochs.
	tx := e.Begin()
	if err := tx.Put(keys[2], 4); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(keys[3], 5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("interactive Commit: %v", err)
	}

	for i, want := range []int64{2, 3, 4, 5} {
		if v, ok := e.ReadKey(keys[i]); !ok || v != want {
			t.Fatalf("key %d: got %d,%v want %d", keys[i], v, ok, want)
		}
	}
	st := e.Stats()
	if st.SeqEpochs == 0 || st.SeqBatched != 2 {
		t.Fatalf("sequencer shape: %+v", st)
	}
	if st.SeqUnforced == 0 {
		t.Fatalf("sequenced CMTs should skip the per-commit force: %+v", st)
	}
	finishEngine(t, e)
}

// TestSeqHammerGSNOrder interleaves single-shard and cross-shard
// commits from many clients across many epochs, then checks the
// deterministic ordered-commit property directly: the coordinator's
// order is strictly GSN-ascending, and each shard's local cross-commit
// sequence EQUALS the global order restricted to the transactions that
// touched it (participant sets decoded back out of the coordinator
// log's batch records).
func TestSeqHammerGSNOrder(t *testing.T) {
	e := newTestEngine(t, Options{Shards: 4, Seq: true, Durable: true, Keys: 512})
	const clients, txns = 8, 60
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*7919 + 3))
			for i := 0; i < txns; i++ {
				val := int64(g*txns + i + 1)
				var ops []Op
				switch i % 3 {
				case 0: // single-shard
					k := uint64(rng.Intn(512))
					ops = []Op{{Kind: OpGet, Key: k}, {Kind: OpPut, Key: k, Val: val}}
				case 1: // two random keys: cross when they land apart
					ops = []Op{
						{Kind: OpPut, Key: uint64(rng.Intn(512)), Val: val},
						{Kind: OpPut, Key: uint64(rng.Intn(512)), Val: -val},
					}
				default: // full width
					for s := 0; s < 4; s++ {
						ops = append(ops, Op{Kind: OpPut, Key: uint64(rng.Intn(128)*4 + s), Val: val})
					}
				}
				if _, _, err := e.Do(ops); err != nil && !errors.Is(err, chaos.ErrRetriesExhausted) {
					errCh <- fmt.Errorf("client %d txn %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	coord, perShard := e.CrossOrders()
	if len(coord) == 0 {
		t.Fatal("hammer produced no cross-shard commits")
	}
	// GSN-ascending: names are "g<gsn>", minted at admission.
	last := -1
	for _, name := range coord {
		var gsn int
		if _, err := fmt.Sscanf(name, "g%d", &gsn); err != nil {
			t.Fatalf("unexpected cross-commit name %q: %v", name, err)
		}
		if gsn <= last {
			t.Fatalf("coordinator order not GSN-ascending: %d after %d", gsn, last)
		}
		last = gsn
	}
	// Recover each transaction's participant set from the batch records
	// and demand per-shard equality with the restricted global order.
	recs, trunc := DecodeCoordLog(e.Image().Coord)
	if trunc != nil {
		t.Fatalf("decoding coordinator log: %v", trunc)
	}
	shardsOf := make(map[string]map[int]bool, len(recs))
	for _, r := range recs {
		set := make(map[int]bool, len(r.Branches))
		for _, b := range r.Branches {
			set[b.Shard] = true
		}
		shardsOf[r.Name] = set
	}
	for sid, got := range perShard {
		var want []string
		for _, name := range coord {
			if shardsOf[name][sid] {
				want = append(want, name)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("shard %d: %d cross commits, want %d", sid, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shard %d position %d: committed %q, GSN order demands %q",
					sid, i, got[i], want[i])
			}
		}
	}
	st := e.Stats()
	if st.SeqUnforced == 0 || st.SeqEpochs == 0 {
		t.Fatalf("sequencer shape: %+v", st)
	}
	finishEngine(t, e)
}

// TestSeqRecoveryIdempotentBatches kills the coordinator right after a
// batch force (the decision is durable, no branch CMT is), then
// recovers TWICE — image the recovered engine and recover again — and
// demands both recoveries resolve to the same certified state: batch
// records must fold idempotently.
func TestSeqRecoveryIdempotentBatches(t *testing.T) {
	plan := chaos.NewPlan(7).WithScript(chaos.SiteCoordCommit, []bool{true})
	e := newTestEngine(t, Options{Shards: 4, Seq: true, Durable: true, Plan: &plan})
	keys := keysOnDistinctShards(t, e, 2)

	if _, _, err := e.Do([]Op{{Kind: OpPut, Key: keys[0], Val: 1}}); err != nil {
		t.Fatal(err)
	}
	// The batch carrying this transaction is forced, then the scripted
	// death fires: globally committed, branch CMTs unforced AND lost.
	if _, _, err := e.Do([]Op{
		{Kind: OpPut, Key: keys[0], Val: 2},
		{Kind: OpPut, Key: keys[1], Val: 3},
	}); err != nil {
		t.Fatalf("cross Do: %v", err)
	}
	if !e.Crashed() {
		t.Fatal("scripted coordinator death did not fire")
	}
	img := e.Image()
	_ = e.Close()

	check := func(stage string, e2 *Engine) {
		t.Helper()
		rep := e2.Recovered()
		if rep.InDoubt != 0 {
			t.Fatalf("%s: %d in doubt", stage, rep.InDoubt)
		}
		if v, ok := e2.ReadKey(keys[0]); !ok || v != 2 {
			t.Fatalf("%s: key %d = %d,%v want 2", stage, keys[0], v, ok)
		}
		if v, ok := e2.ReadKey(keys[1]); !ok || v != 3 {
			t.Fatalf("%s: key %d = %d,%v want 3", stage, keys[1], v, ok)
		}
		if err := e2.FinalCheck(); err != nil {
			t.Fatalf("%s: certificate: %v", stage, err)
		}
	}

	// Idempotence proper: two independent recoveries of the SAME image
	// must fold the batch record to the same resolution and state.
	for _, stage := range []string{"first recovery", "replayed recovery"} {
		e2 := newTestEngine(t, Options{Shards: 4, Seq: true, Durable: true, RecoverFrom: img})
		rep := e2.Recovered()
		if rep.CoordBatches != 1 || rep.InDoubtResolved != 1 || len(rep.Redos) != 2 {
			t.Fatalf("%s should fold one batch and roll both branches forward: %+v", stage, rep)
		}
		check(stage, e2)
		if stage == "first recovery" {
			if err := e2.Close(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		// Chain: image the recovered engine (redo CMTs now durable in
		// the shard logs) and recover once more — same certified state,
		// nothing left to resolve.
		img2 := e2.Image()
		if err := e2.Close(); err != nil {
			t.Fatal(err)
		}
		e3 := newTestEngine(t, Options{Shards: 4, Seq: true, Durable: true, RecoverFrom: img2})
		if rep := e3.Recovered(); len(rep.Redos) != 0 {
			t.Fatalf("chained recovery re-ran redos: %+v", rep)
		}
		check("chained recovery", e3)
		if err := e3.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSeqCrashBeforeBatchForce kills the coordinator before the batch
// record is forced: every transaction of the epoch must abort
// consistently in memory and by presumed abort at recovery.
func TestSeqCrashBeforeBatchForce(t *testing.T) {
	plan := chaos.NewPlan(7).WithScript(chaos.SiteCoordPrepared, []bool{true})
	e := newTestEngine(t, Options{Shards: 4, Seq: true, Durable: true, Plan: &plan})
	keys := keysOnDistinctShards(t, e, 2)

	if _, _, err := e.Do([]Op{{Kind: OpPut, Key: keys[0], Val: 1}}); err != nil {
		t.Fatal(err)
	}
	_, _, err := e.Do([]Op{
		{Kind: OpPut, Key: keys[0], Val: 2},
		{Kind: OpPut, Key: keys[1], Val: 3},
	})
	if !errors.Is(err, ErrCoordCrashed) {
		t.Fatalf("want ErrCoordCrashed, got %v", err)
	}
	img := e.Image()

	e2 := newTestEngine(t, Options{Shards: 4, Seq: true, Durable: true, RecoverFrom: img})
	rep := e2.Recovered()
	if rep.InDoubt != 0 || rep.InDoubtResolved != 0 || len(rep.Redos) != 0 {
		t.Fatalf("presumed abort should need no resolution: %+v", rep)
	}
	if rep.CoordCommits != 0 || rep.CoordBatches != 0 {
		t.Fatalf("no decision should be durable: %+v", rep)
	}
	if v, ok := e2.ReadKey(keys[0]); !ok || v != 1 {
		t.Fatalf("pre-crash value: %d,%v", v, ok)
	}
	if v, _ := e2.ReadKey(keys[1]); v == 3 {
		t.Fatal("aborted write resurrected")
	}
	finishEngine(t, e2)
	_ = e.Close()
}
