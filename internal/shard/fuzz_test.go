package shard

import (
	"testing"
)

// FuzzShardRouter asserts the router's partition laws: key→shard is
// deterministic, every key lands inside [0, n), and resharding a key
// set neither loses nor duplicates keys — the union of the new
// partitions is exactly the old set.
func FuzzShardRouter(f *testing.F) {
	f.Add(uint64(0), uint64(1), 2, 4)
	f.Add(uint64(17), uint64(1000003), 4, 1)
	f.Add(uint64(1)<<63, uint64(42), 8, 3)
	f.Add(uint64(255), uint64(256), 1, 16)

	f.Fuzz(func(t *testing.T, base, stride uint64, n, m int) {
		if n <= 0 || n > 64 || m <= 0 || m > 64 {
			t.Skip()
		}
		if stride == 0 {
			stride = 1
		}
		rOld, rNew := NewRouter(n), NewRouter(m)
		const keys = 128
		oldParts := make([]map[uint64]bool, n)
		for i := range oldParts {
			oldParts[i] = make(map[uint64]bool)
		}
		newParts := make([]map[uint64]bool, m)
		for i := range newParts {
			newParts[i] = make(map[uint64]bool)
		}
		seen := make(map[uint64]bool, keys)
		for i := uint64(0); i < keys; i++ {
			k := base + i*stride
			if seen[k] {
				continue
			}
			seen[k] = true
			s := rOld.Shard(k)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", k, n, s)
			}
			if again := rOld.Shard(k); again != s {
				t.Fatalf("ShardOf(%d, %d) unstable: %d then %d", k, n, s, again)
			}
			oldParts[s][k] = true
			newParts[rNew.Shard(k)][k] = true
		}
		// Resharding: the union of the new partitions equals the key
		// set — nothing lost, nothing duplicated.
		total := 0
		for _, p := range newParts {
			total += len(p)
			for k := range p {
				if !seen[k] {
					t.Fatalf("resharding invented key %d", k)
				}
			}
		}
		if total != len(seen) {
			t.Fatalf("resharding kept %d of %d keys", total, len(seen))
		}
		// Same-count resharding is the identity.
		if n == m {
			for k := range seen {
				if rOld.Shard(k) != rNew.Shard(k) {
					t.Fatalf("same shard count moved key %d", k)
				}
			}
		}
	})
}

// FuzzCrossShardCommitOrder drives a random mix of single- and
// cross-shard transactions through a small engine and asserts the
// full certificate: per-shard shadow machines and commit orders, the
// runtime cross-order invariant, and the recovery-time merged order
// over the durable image.
func FuzzCrossShardCommitOrder(f *testing.F) {
	f.Add(int64(1), []byte{0x01, 0x82, 0x13, 0xff, 0x40})
	f.Add(int64(7), []byte{0xaa, 0x55, 0x00, 0x11, 0x22, 0x33, 0x44})
	f.Add(int64(99), []byte{})

	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) > 64 {
			script = script[:64]
		}
		if seed == 0 {
			seed = 1
		}
		e, err := New(Options{Shards: 3, Substrate: "tl2", Keys: 96, Seed: seed, Durable: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range script {
			k1 := uint64(b) % 96
			k2 := uint64(b>>3+uint8(i)) % 96
			val := int64(i + 1)
			switch b % 3 {
			case 0: // single-shard write
				_, _, err = e.Do([]Op{{Kind: OpPut, Key: k1, Val: val}})
			case 1: // possibly-cross write pair
				_, _, err = e.Do([]Op{
					{Kind: OpPut, Key: k1, Val: val},
					{Kind: OpPut, Key: k2, Val: -val},
				})
			case 2: // read-modify-write pair
				_, _, err = e.Do([]Op{
					{Kind: OpGet, Key: k1},
					{Kind: OpPut, Key: k2, Val: val},
				})
			}
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		if err := e.LeakCheck(); err != nil {
			t.Fatal(err)
		}
		if err := e.FinalCheck(); err != nil {
			t.Fatal(err)
		}
		// Recovery over the durable image must re-certify and merge.
		img := e.Image()
		rep, err := RecoverAndCertifyImage(img, "tl2")
		if err != nil {
			t.Fatalf("recovery certification: %v", err)
		}
		if rep.InDoubt != 0 || rep.InDoubtResolved != 0 {
			t.Fatalf("clean run left doubt: %+v", rep)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
