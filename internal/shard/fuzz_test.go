package shard

import (
	"testing"
)

// FuzzShardRouter asserts the router's partition laws: key→shard is
// deterministic, every key lands inside [0, n), and resharding a key
// set neither loses nor duplicates keys — the union of the new
// partitions is exactly the old set.
func FuzzShardRouter(f *testing.F) {
	f.Add(uint64(0), uint64(1), 2, 4)
	f.Add(uint64(17), uint64(1000003), 4, 1)
	f.Add(uint64(1)<<63, uint64(42), 8, 3)
	f.Add(uint64(255), uint64(256), 1, 16)

	f.Fuzz(func(t *testing.T, base, stride uint64, n, m int) {
		if n <= 0 || n > 64 || m <= 0 || m > 64 {
			t.Skip()
		}
		if stride == 0 {
			stride = 1
		}
		rOld, rNew := NewRouter(n), NewRouter(m)
		const keys = 128
		oldParts := make([]map[uint64]bool, n)
		for i := range oldParts {
			oldParts[i] = make(map[uint64]bool)
		}
		newParts := make([]map[uint64]bool, m)
		for i := range newParts {
			newParts[i] = make(map[uint64]bool)
		}
		seen := make(map[uint64]bool, keys)
		for i := uint64(0); i < keys; i++ {
			k := base + i*stride
			if seen[k] {
				continue
			}
			seen[k] = true
			s := rOld.Shard(k)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", k, n, s)
			}
			if again := rOld.Shard(k); again != s {
				t.Fatalf("ShardOf(%d, %d) unstable: %d then %d", k, n, s, again)
			}
			oldParts[s][k] = true
			newParts[rNew.Shard(k)][k] = true
		}
		// Resharding: the union of the new partitions equals the key
		// set — nothing lost, nothing duplicated.
		total := 0
		for _, p := range newParts {
			total += len(p)
			for k := range p {
				if !seen[k] {
					t.Fatalf("resharding invented key %d", k)
				}
			}
		}
		if total != len(seen) {
			t.Fatalf("resharding kept %d of %d keys", total, len(seen))
		}
		// Same-count resharding is the identity.
		if n == m {
			for k := range seen {
				if rOld.Shard(k) != rNew.Shard(k) {
					t.Fatalf("same shard count moved key %d", k)
				}
			}
		}
	})
}

// FuzzCrossShardCommitOrder drives a random mix of single- and
// cross-shard transactions through a small engine and asserts the
// full certificate: per-shard shadow machines and commit orders, the
// runtime cross-order invariant, and the recovery-time merged order
// over the durable image.
func FuzzCrossShardCommitOrder(f *testing.F) {
	f.Add(int64(1), []byte{0x01, 0x82, 0x13, 0xff, 0x40})
	f.Add(int64(7), []byte{0xaa, 0x55, 0x00, 0x11, 0x22, 0x33, 0x44})
	f.Add(int64(99), []byte{})

	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) > 64 {
			script = script[:64]
		}
		if seed == 0 {
			seed = 1
		}
		e, err := New(Options{Shards: 3, Substrate: "tl2", Keys: 96, Seed: seed, Durable: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range script {
			k1 := uint64(b) % 96
			k2 := uint64(b>>3+uint8(i)) % 96
			val := int64(i + 1)
			switch b % 3 {
			case 0: // single-shard write
				_, _, err = e.Do([]Op{{Kind: OpPut, Key: k1, Val: val}})
			case 1: // possibly-cross write pair
				_, _, err = e.Do([]Op{
					{Kind: OpPut, Key: k1, Val: val},
					{Kind: OpPut, Key: k2, Val: -val},
				})
			case 2: // read-modify-write pair
				_, _, err = e.Do([]Op{
					{Kind: OpGet, Key: k1},
					{Kind: OpPut, Key: k2, Val: val},
				})
			}
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		if err := e.LeakCheck(); err != nil {
			t.Fatal(err)
		}
		if err := e.FinalCheck(); err != nil {
			t.Fatal(err)
		}
		// Recovery over the durable image must re-certify and merge.
		img := e.Image()
		rep, err := RecoverAndCertifyImage(img, "tl2")
		if err != nil {
			t.Fatalf("recovery certification: %v", err)
		}
		if rep.InDoubt != 0 || rep.InDoubtResolved != 0 {
			t.Fatalf("clean run left doubt: %+v", rep)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzCoordBatchDecode hammers the coordinator-log decoder with
// mutated images seeded from real batch records: decode must never
// panic, must only report commits with intact framing (longest valid
// prefix), and a re-encode of an untampered decode must round-trip.
func FuzzCoordBatchDecode(f *testing.F) {
	seedLog := func(batches ...BatchRec) []byte {
		l, err := OpenCoordLog("")
		if err != nil {
			f.Fatal(err)
		}
		for _, b := range batches {
			if err := l.AppendBatch(b); err != nil {
				f.Fatal(err)
			}
		}
		return l.Image()
	}
	f.Add(seedLog(BatchRec{Epoch: 1, Commits: []CommitRec{
		{GSN: 1, Name: "g1", Branches: []BranchRec{
			{Shard: 0, Puts: []KV{{Key: 1, Val: 10}}},
			{Shard: 1, Puts: []KV{{Key: 2, Val: -20}}},
		}},
		{GSN: 2, Name: "g2", Branches: []BranchRec{
			{Shard: 1, Puts: nil},
			{Shard: 2, Puts: []KV{{Key: 3, Val: 30}}},
		}},
	}}))
	f.Add(seedLog(
		BatchRec{Epoch: 1, Commits: []CommitRec{{GSN: 1, Name: "a"}}},
		BatchRec{Epoch: 2, Commits: []CommitRec{{GSN: 2, Name: "b"}, {GSN: 3, Name: "c"}}},
	))
	f.Add(seedLog())
	f.Add([]byte(nil))
	f.Add([]byte("PPCRD\x01\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		cr := DecodeCoordLogFull(data)
		// The decoded prefix must be internally consistent regardless of
		// input: batch counters only with batches present, and every
		// commit re-encodable.
		if cr.Batches == 0 && cr.SeqEpoch != 0 {
			t.Fatalf("sequencer epoch %d without a batch record", cr.SeqEpoch)
		}
		for _, c := range cr.Commits {
			_ = encodeCommitRec(c)
		}
		// An intact image must round-trip exactly: re-encoding the
		// decoded batches reproduces the same commit fold.
		if cr.Truncated == nil && cr.Batches > 0 {
			l, err := OpenCoordLog("")
			if err != nil {
				t.Fatal(err)
			}
			if err := l.AppendBatch(BatchRec{Epoch: cr.SeqEpoch, Commits: cr.Commits}); err != nil {
				t.Fatal(err)
			}
			again := DecodeCoordLogFull(l.Image())
			if again.Truncated != nil || len(again.Commits) != len(cr.Commits) {
				t.Fatalf("re-encode lost commits: %d -> %d (%v)",
					len(cr.Commits), len(again.Commits), again.Truncated)
			}
		}
	})
}
