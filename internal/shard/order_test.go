package shard

import (
	"strings"
	"testing"
)

func TestMergeOrdersConsistent(t *testing.T) {
	// Two shards agree on cross-shard x1 < x2; local-only transactions
	// interleave freely.
	chains := [][]string{
		{"a1", "x1", "a2", "x2"},
		{"x1", "b1", "x2", "b2"},
		{"x1", "x2"}, // coordinator chain
	}
	out, err := MergeOrders(chains)
	if err != nil {
		t.Fatalf("MergeOrders: %v", err)
	}
	pos := make(map[string]int, len(out))
	for i, n := range out {
		pos[n] = i
	}
	if len(out) != 6 {
		t.Fatalf("merged %d names, want 6: %v", len(out), out)
	}
	for _, chain := range chains {
		for i := 1; i < len(chain); i++ {
			if pos[chain[i-1]] >= pos[chain[i]] {
				t.Fatalf("merged order %v violates chain %v", out, chain)
			}
		}
	}
}

func TestMergeOrdersDeterministic(t *testing.T) {
	chains := [][]string{{"c", "x"}, {"a", "x"}, {"b", "x"}}
	first, err := MergeOrders(chains)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := MergeOrders(chains)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(again, ",") != strings.Join(first, ",") {
			t.Fatalf("non-deterministic merge: %v vs %v", again, first)
		}
	}
}

func TestMergeOrdersCycle(t *testing.T) {
	// Shard 0 commits x1 before x2; shard 1 the other way — the classic
	// non-serializable cross-shard history.
	_, err := MergeOrders([][]string{
		{"x1", "x2"},
		{"x2", "x1"},
	})
	if err == nil {
		t.Fatal("expected cycle error")
	}
	if !strings.Contains(err.Error(), "x1") || !strings.Contains(err.Error(), "x2") {
		t.Fatalf("cycle error should name its members: %v", err)
	}
}

func TestMergeOrdersDuplicate(t *testing.T) {
	if _, err := MergeOrders([][]string{{"a", "b", "a"}}); err == nil {
		t.Fatal("expected duplicate-in-chain error")
	}
}

func TestMergeOrdersEmpty(t *testing.T) {
	out, err := MergeOrders(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty merge: %v, %v", out, err)
	}
	out, err = MergeOrders([][]string{nil, {}, nil})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty chains: %v, %v", out, err)
	}
}
