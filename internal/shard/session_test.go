package shard

import (
	"errors"
	"testing"

	"pushpull/internal/wal"
)

// TestSessionDedupInMemory exercises the live dedup path: a retry of
// the latest committed sequence number replays the stored results
// without re-executing, a stale sequence number is refused, and a
// fresh one advances the table.
func TestSessionDedupInMemory(t *testing.T) {
	e := newTestEngine(t, Options{Shards: 4})
	keys := keysOnDistinctShards(t, e, 2)
	ops := []Op{
		{Kind: OpPut, Key: keys[0], Val: 7},
		{Kind: OpPut, Key: keys[1], Val: 8},
		{Kind: OpGet, Key: keys[0]},
	}
	res, _, dedup, err := e.DoSession(5, 1, ops)
	if err != nil || dedup {
		t.Fatalf("first request: dedup=%v err=%v", dedup, err)
	}
	commits := e.Stats().Commits
	res2, _, dedup, err := e.DoSession(5, 1, ops)
	if err != nil || !dedup {
		t.Fatalf("retry: dedup=%v err=%v", dedup, err)
	}
	if len(res2) != len(res) || res2[2] != res[2] {
		t.Fatalf("replayed results differ: %+v vs %+v", res2, res)
	}
	if got := e.Stats().Commits; got != commits {
		t.Fatalf("dedup retry re-executed: commits %d -> %d", commits, got)
	}
	if e.DedupHits() != 1 {
		t.Fatalf("dedup hits = %d, want 1", e.DedupHits())
	}
	if _, _, _, err := e.DoSession(5, 0, ops); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("stale seq: %v", err)
	}
	if _, _, dedup, err := e.DoSession(5, 2, []Op{{Kind: OpPut, Key: keys[0], Val: 9}}); err != nil || dedup {
		t.Fatalf("next seq: dedup=%v err=%v", dedup, err)
	}
	finishEngine(t, e)
}

// TestSessionDedupSurvivesCrash is the tentpole property at the engine
// level: a committed request's dedup entry is recovered from the
// durable image — for both the single-shard (TSession in the shard
// WAL) and cross-shard (cRecSession in the coordinator log) paths —
// and a retry against the restarted engine replays the original
// results with zero new commits. A second restart proves the boot-time
// checkpoint re-log carries the table across timelines.
func TestSessionDedupSurvivesCrash(t *testing.T) {
	e := newTestEngine(t, Options{Shards: 4, Durable: true})
	keys := keysOnDistinctShards(t, e, 2)
	single := []Op{{Kind: OpPut, Key: keys[0], Val: 10}, {Kind: OpGet, Key: keys[0]}}
	cross := []Op{{Kind: OpPut, Key: keys[0], Val: 11}, {Kind: OpPut, Key: keys[1], Val: 12}}
	if _, _, _, err := e.DoSession(3, 1, single); err != nil {
		t.Fatalf("single-shard request: %v", err)
	}
	if _, _, _, err := e.DoSession(4, 9, cross); err != nil {
		t.Fatalf("cross-shard request: %v", err)
	}
	e.Kill()
	img := e.Image()

	e2 := newTestEngine(t, Options{Shards: 4, Durable: true, RecoverFrom: img})
	sess := e2.Sessions()
	if sess[3].SeqNo != 1 || sess[4].SeqNo != 9 {
		t.Fatalf("recovered table %v", sess)
	}
	commits := e2.Stats().Commits
	res, _, dedup, err := e2.DoSession(3, 1, single)
	if err != nil || !dedup {
		t.Fatalf("single retry after crash: dedup=%v err=%v", dedup, err)
	}
	if !res[1].Found || res[1].Val != 10 {
		t.Fatalf("single retry replayed %+v", res[1])
	}
	if _, _, dedup, err := e2.DoSession(4, 9, cross); err != nil || !dedup {
		t.Fatalf("cross retry after crash: dedup=%v err=%v", dedup, err)
	}
	if got := e2.Stats().Commits; got != commits {
		t.Fatalf("retries re-executed: commits %d -> %d", commits, got)
	}

	// Second crash/restart: the first restart re-logged the table as
	// checkpoint entries on its fresh timeline.
	e2.Kill()
	e3 := newTestEngine(t, Options{Shards: 4, Durable: true, RecoverFrom: e2.Image()})
	if sess := e3.Sessions(); sess[3].SeqNo != 1 || sess[4].SeqNo != 9 {
		t.Fatalf("table lost across second restart: %v", sess)
	}
	if _, _, dedup, err := e3.DoSession(4, 9, cross); err != nil || !dedup {
		t.Fatalf("retry after second restart: dedup=%v err=%v", dedup, err)
	}
}

// TestSessionEntryDiesWithLostCommit drives the crash window between
// "session record durable" and "commit durable": the recovered table
// must not contain the entry, so the retry re-executes — sound,
// because the original was never acknowledged.
func TestSessionEntryDiesWithLostCommit(t *testing.T) {
	e := newTestEngine(t, Options{Shards: 1, Durable: true})
	// Commit one request but kill the engine before the group-commit
	// barrier under SyncNever would have synced anything: with the
	// default policy the commit is durable, so instead build the window
	// by hand — append a session record naming a transaction that never
	// commits.
	if _, _, _, err := e.DoSession(6, 1, []Op{{Kind: OpPut, Key: 1, Val: 5}}); err != nil {
		t.Fatalf("request: %v", err)
	}
	st := e.shards[0]
	orphan := wal.Record{
		Type: wal.TSession, Tx: 6, Session: 6, SeqNo: 2,
		Name:    "never-commits",
		Results: []wal.SessResult{{Val: 6, Found: true}},
	}
	if err := st.log.Append(orphan); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := st.log.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	e.Kill()
	e2 := newTestEngine(t, Options{Shards: 1, Durable: true, RecoverFrom: e.Image()})
	if got := e2.Sessions()[6].SeqNo; got != 1 {
		t.Fatalf("session 6 seq = %d, want 1 (the orphan seq-2 record must be discarded)", got)
	}
	if _, _, dedup, err := e2.DoSession(6, 2, []Op{{Kind: OpPut, Key: 1, Val: 6}}); err != nil || dedup {
		t.Fatalf("retry of the lost request must re-execute: dedup=%v err=%v", dedup, err)
	}
}

// TestBrandLease checks the lease epoch brand: monotone, durable, and
// recovered as the floor for successor grants.
func TestBrandLease(t *testing.T) {
	e := newTestEngine(t, Options{Shards: 2, Durable: true})
	if err := e.BrandLease(3); err != nil {
		t.Fatalf("brand: %v", err)
	}
	if err := e.BrandLease(3); err == nil {
		t.Fatal("regressing lease brand must fail")
	}
	if e.LeaseEpoch() != 3 {
		t.Fatalf("lease epoch = %d", e.LeaseEpoch())
	}
	e.Kill()
	e2 := newTestEngine(t, Options{Shards: 2, Durable: true, RecoverFrom: e.Image()})
	if e2.Recovered().LeaseEpoch != 3 || e2.LeaseEpoch() != 3 {
		t.Fatalf("recovered lease epoch %d / %d, want 3", e2.Recovered().LeaseEpoch, e2.LeaseEpoch())
	}
	if err := e2.BrandLease(2); err == nil {
		t.Fatal("lease brand below the recovered floor must fail")
	}
	if err := e2.BrandLease(4); err != nil {
		t.Fatalf("successor brand: %v", err)
	}
}

// TestAckCheckWithholdsAck proves the ack gate: with a failing
// AckCheck the commit happens (and the dedup entry lands) but the
// client is told "commit state unknown"; once the gate opens, the
// retry is answered from the table without re-executing.
func TestAckCheckWithholdsAck(t *testing.T) {
	gateErr := errors.New("lease expired")
	var gate error
	e := newTestEngine(t, Options{Shards: 1, AckCheck: func() error { return gate }})
	gate = gateErr
	if _, _, _, err := e.DoSession(2, 1, []Op{{Kind: OpPut, Key: 1, Val: 9}}); !errors.Is(err, gateErr) {
		t.Fatalf("gated request: %v", err)
	}
	commits := e.Stats().Commits
	if commits == 0 {
		t.Fatal("the gated request should still have committed locally")
	}
	gate = nil
	res, _, dedup, err := e.DoSession(2, 1, []Op{{Kind: OpPut, Key: 1, Val: 9}})
	if err != nil || !dedup {
		t.Fatalf("retry after gate opened: dedup=%v err=%v", dedup, err)
	}
	_ = res
	if got := e.Stats().Commits; got != commits {
		t.Fatalf("retry re-executed: commits %d -> %d", commits, got)
	}
	finishEngine(t, e)
}
