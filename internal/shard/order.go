package shard

import (
	"fmt"
	"sort"
	"strings"
)

// The merged-commit-order obligation: each shard's shadow machine
// certifies its own commit order (serial.CheckCommitOrder per shard),
// but cross-shard transactions appear in several local orders at once.
// The global history is serializable iff one total order embeds every
// local commit order — equivalently, iff the union of the local order
// edges is acyclic. MergeOrders checks exactly that; at runtime the
// engine additionally enforces the stronger invariant that every
// shard's cross-shard commit subsequence equals the coordinator's GSN
// order (checkCrossOrder in engine.go), which makes the merge trivially
// acyclic — MergeOrders is the recovery-time check, where only the logs
// survive.

// MergeOrders topologically merges commit-order chains (one per shard,
// plus optionally the coordinator's GSN chain) into a single total
// order. Each chain lists transaction names in local commit order; a
// name may appear in several chains (a cross-shard transaction) but at
// most once per chain. The merge fails iff the chains are inconsistent
// — two shards committed a pair of cross-shard transactions in opposite
// orders — which is exactly a non-serializable global history.
func MergeOrders(chains [][]string) ([]string, error) {
	// Build the union precedence graph.
	succ := make(map[string]map[string]bool)
	indeg := make(map[string]int)
	node := func(n string) {
		if _, ok := succ[n]; !ok {
			succ[n] = make(map[string]bool)
			indeg[n] = 0
		}
	}
	for ci, chain := range chains {
		seen := make(map[string]bool, len(chain))
		for i, n := range chain {
			if seen[n] {
				return nil, fmt.Errorf("shard: transaction %q committed twice in chain %d", n, ci)
			}
			seen[n] = true
			node(n)
			if i > 0 {
				prev := chain[i-1]
				if !succ[prev][n] {
					succ[prev][n] = true
					indeg[n]++
				}
			}
		}
	}
	// Kahn with a deterministic (lexicographic) tie-break, so the merged
	// order is reproducible.
	ready := make([]string, 0, len(succ))
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	sort.Strings(ready)
	out := make([]string, 0, len(succ))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		unlocked := make([]string, 0, len(succ[n]))
		for m := range succ[n] {
			indeg[m]--
			if indeg[m] == 0 {
				unlocked = append(unlocked, m)
			}
		}
		sort.Strings(unlocked)
		ready = mergeSorted(ready, unlocked)
	}
	if len(out) != len(succ) {
		// A cycle: report its members so the failure is actionable.
		var cyc []string
		for n, d := range indeg {
			if d > 0 {
				cyc = append(cyc, n)
			}
		}
		sort.Strings(cyc)
		if len(cyc) > 8 {
			cyc = append(cyc[:8], "...")
		}
		return nil, fmt.Errorf("shard: commit orders not mergeable (cross-shard cycle through %s)",
			strings.Join(cyc, ", "))
	}
	return out, nil
}

// mergeSorted merges two sorted string slices.
func mergeSorted(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return append(append(out, a[i:]...), b[j:]...)
}
