// Package atomicsem implements the atomic (uninterleaved) semantics of
// Figure 3: transactions execute instantly against the shared log via
// the big-step relation ⇓, which scans the language nondeterminism with
// step()/fin() (rules BSSTEP and BSFIN) and extends the log only with
// operations the sequential specification allows.
//
// The Push/Pull machine of internal/core simulates this machine
// (Theorem 5.17); internal/serial uses this package as the reference
// side of that simulation.
package atomicsem

import (
	"fmt"

	"pushpull/internal/lang"
	"pushpull/internal/spec"
)

// Result is one successful big-step outcome (σ′, ℓ′) of running a
// transaction from (σ, ℓ), together with the operations it appended.
type Result struct {
	Stack lang.Stack
	Log   spec.Log
	Ops   spec.Log
}

// RunTxn executes tx c atomically from stack sigma and shared log l,
// resolving nondeterminism by depth-first search: the first reduction
// to skip wins (AM_RUNTX with ⇓). ok=false means no path through the
// transaction is allowed by the specification.
func RunTxn(reg *spec.Registry, txn lang.Txn, sigma lang.Stack, l spec.Log) (Result, bool) {
	return RunTxnFrom(reg, reg.InitState(), txn, sigma, l)
}

// RunTxnFrom is RunTxn with the log replayed from an explicit start
// state (a compacted machine baseline).
func RunTxnFrom(reg *spec.Registry, start spec.Composite, txn lang.Txn, sigma lang.Stack, l spec.Log) (Result, bool) {
	if sigma == nil {
		sigma = lang.Stack{}
	}
	return bigStep(reg, start, txn.Body, sigma.Clone(), l, nil)
}

func bigStep(reg *spec.Registry, start spec.Composite, c lang.Code, sigma lang.Stack, l, ops spec.Log) (Result, bool) {
	// BSFIN: a path to skip with no further methods.
	if lang.Fin(c, sigma) {
		return Result{Stack: sigma, Log: l, Ops: ops}, true
	}
	// BSSTEP: pick any next reachable method the specification allows.
	for _, s := range lang.StepSet(c, sigma) {
		ret, ok := reg.EvalFrom(start, l, s.Call.Obj, s.Call.Method, s.Args)
		if !ok {
			continue
		}
		op := spec.Op{
			ID:     spec.FreshID(),
			Obj:    s.Call.Obj,
			Method: s.Call.Method,
			Args:   append([]int64(nil), s.Args...),
			Ret:    ret,
		}
		sigma2 := sigma
		if s.Call.Dst != "" {
			sigma2 = sigma.Clone()
			sigma2[s.Call.Dst] = ret
		}
		if r, ok := bigStep(reg, start, s.Cont, sigma2, l.Append(op), ops.Append(op)); ok {
			return r, true
		}
	}
	return Result{}, false
}

// RunProgram runs a list of transactions atomically, in order, each
// with its own initial stack (AMS_TRANS over AMACH_ONE). It returns the
// final shared log and per-transaction results.
func RunProgram(reg *spec.Registry, txns []lang.Txn, stacks []lang.Stack, l spec.Log) ([]Result, spec.Log, error) {
	results := make([]Result, 0, len(txns))
	for i, txn := range txns {
		var sigma lang.Stack
		if i < len(stacks) {
			sigma = stacks[i]
		}
		r, ok := RunTxn(reg, txn, sigma, l)
		if !ok {
			return nil, nil, fmt.Errorf("atomicsem: transaction %q has no allowed path from log %v", txn.Name, l)
		}
		results = append(results, r)
		l = r.Log
	}
	return results, l, nil
}

// ReplayOps extends l with a recorded operation sequence, recomputing
// each return value against the growing log. ok=false if some
// operation is undefined. The recomputed returns may differ from the
// recorded ones — callers compare.
func ReplayOps(reg *spec.Registry, l spec.Log, ops spec.Log) (spec.Log, bool) {
	for _, op := range ops {
		ret, ok := reg.Eval(l, op.Obj, op.Method, op.Args)
		if !ok {
			return nil, false
		}
		replayed := op
		replayed.Ret = ret
		l = l.Append(replayed)
	}
	return l, true
}
