package atomicsem_test

import (
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/atomicsem"
	"pushpull/internal/lang"
	"pushpull/internal/spec"
)

func reg() *spec.Registry {
	r := spec.NewRegistry()
	r.Register("ht", adt.Map{})
	r.Register("set", adt.Set{})
	r.Register("ctr", adt.Counter{})
	return r
}

func TestRunTxnStraightLine(t *testing.T) {
	r := reg()
	txn := lang.MustParseTxn(`tx a { ht.put(1, 10); v := ht.get(1); }`)
	res, ok := atomicsem.RunTxn(r, txn, nil, nil)
	if !ok {
		t.Fatal("straight-line txn must run")
	}
	if len(res.Ops) != 2 || res.Ops[1].Ret != 10 {
		t.Fatalf("ops = %v", res.Ops)
	}
	if res.Stack["v"] != 10 {
		t.Fatalf("stack = %v", res.Stack)
	}
	if !r.Allowed(res.Log) {
		t.Fatal("result log must be allowed")
	}
}

func TestRunTxnResolvesNondeterminism(t *testing.T) {
	r := reg()
	// The first branch is disallowed (put of absent); the search must
	// find the second.
	txn := lang.MustParseTxn(`tx a { choice { ht.put(1, absent); } or { ht.put(1, 5); } }`)
	res, ok := atomicsem.RunTxn(r, txn, nil, nil)
	if !ok {
		t.Fatal("second branch must be found")
	}
	if len(res.Ops) != 1 || res.Ops[0].Args[1] != 5 {
		t.Fatalf("ops = %v", res.Ops)
	}
}

func TestRunTxnNoAllowedPath(t *testing.T) {
	r := reg()
	txn := lang.MustParseTxn(`tx a { ht.put(1, absent); }`)
	if _, ok := atomicsem.RunTxn(r, txn, nil, nil); ok {
		t.Fatal("disallowed-only txn must fail")
	}
}

func TestRunTxnFromLogContext(t *testing.T) {
	r := reg()
	seed := lang.MustParseTxn(`tx s { ctr.inc(); ctr.inc(); }`)
	res1, ok := atomicsem.RunTxn(r, seed, nil, nil)
	if !ok {
		t.Fatal("seed failed")
	}
	reader := lang.MustParseTxn(`tx r { v := ctr.get(); }`)
	res2, ok := atomicsem.RunTxn(r, reader, nil, res1.Log)
	if !ok || res2.Stack["v"] != 2 {
		t.Fatalf("reader saw %v", res2.Stack)
	}
}

func TestRunProgramSequences(t *testing.T) {
	r := reg()
	txns := []lang.Txn{
		lang.MustParseTxn(`tx a { set.add(1); }`),
		lang.MustParseTxn(`tx b { v := set.contains(1); if v == 1 { set.add(2); } }`),
	}
	results, l, err := atomicsem.RunProgram(r, txns, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(l) != 3 {
		t.Fatalf("results=%d log=%v", len(results), l)
	}
	c, _ := r.Denote(l)
	s, _ := c.StateOf("set")
	if s.String() != "{1,2}" {
		t.Fatalf("final set = %v", s)
	}
}

func TestRunProgramFailsLoudly(t *testing.T) {
	r := reg()
	txns := []lang.Txn{lang.MustParseTxn(`tx bad { ht.put(1, absent); }`)}
	if _, _, err := atomicsem.RunProgram(r, txns, nil, nil); err == nil {
		t.Fatal("disallowed program must error")
	}
}

func TestReplayOps(t *testing.T) {
	r := reg()
	ops := spec.Log{
		{ID: spec.FreshID(), Obj: "ctr", Method: adt.MInc, Ret: 0},
		{ID: spec.FreshID(), Obj: "ctr", Method: adt.MGet, Ret: 999}, // stale ret
	}
	l, ok := atomicsem.ReplayOps(r, nil, ops)
	if !ok {
		t.Fatal("replay must succeed (returns recomputed)")
	}
	if l[1].Ret != 1 {
		t.Fatalf("recomputed get = %d, want 1", l[1].Ret)
	}
}

func TestLoopBoundedByFin(t *testing.T) {
	r := reg()
	// (ctr.inc())*: the DFS must take the fin exit, not unroll forever.
	txn := lang.MustParseTxn(`tx a { loop { ctr.inc(); } }`)
	res, ok := atomicsem.RunTxn(r, txn, nil, nil)
	if !ok {
		t.Fatal("loop txn must terminate via BSFIN")
	}
	if len(res.Ops) != 0 {
		t.Fatalf("fin-first search must take zero iterations, got %v", res.Ops)
	}
}
