package mvcc

import (
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/ops"
	"pushpull/internal/spec"
)

// TestTranslateTypedOps pins the typed-op projection onto the
// version-store write-set: arithmetic folds as namespaced deltas, an
// installed cas as a namespaced absolute, a refused cas and every
// set/queue method (no snapshot surface) to nothing.
func TestTranslateTypedOps(t *testing.T) {
	mk := func(method string, ret int64, args ...int64) spec.Op {
		return spec.Op{Obj: ops.Obj, Method: method, Args: args, Ret: ret}
	}
	for _, tc := range []struct {
		name string
		op   spec.Op
		want Write
		ok   bool
	}{
		{"add folds as delta", mk(adt.MOpsAdd, 0, 7, 5),
			Write{Key: ops.KeyBit | 7, Val: 5, Present: true, Delta: true}, true},
		{"wd folds as negative delta", mk(adt.MOpsWd, 0, 7, 3),
			Write{Key: ops.KeyBit | 7, Val: -3, Present: true, Delta: true}, true},
		{"installed cas folds absolute", mk(adt.MOpsCAS, 10, 7, 10, 99),
			Write{Key: ops.KeyBit | 7, Val: 99, Present: true}, true},
		{"refused cas folds to nothing", mk(adt.MOpsCAS, 4, 7, 10, 99), Write{}, false},
		{"cget folds to nothing", mk(adt.MOpsGet, 12, 7), Write{}, false},
		{"sadd folds to nothing", mk(adt.MOpsSAdd, 0, 7, 1), Write{}, false},
		{"qpush folds to nothing", mk(adt.MOpsQPush, 0, 7, 1), Write{}, false},
	} {
		got, ok := TranslateOp(ModeMap, tc.op)
		if ok != tc.ok || got != tc.want {
			t.Errorf("%s: TranslateOp = (%+v, %v), want (%+v, %v)",
				tc.name, got, ok, tc.want, tc.ok)
		}
	}
}

// TestDeltaFoldResolve pins the commit-order delta resolution: deltas
// accumulate into running absolutes, an absolute write into the typed
// namespace (an installed cas) resets the running total, and writes
// outside the namespace pass through untouched.
func TestDeltaFoldResolve(t *testing.T) {
	k := ops.KeyBit | 7
	var f DeltaFold
	steps := []struct {
		in      Write
		wantVal int64
	}{
		{Write{Key: k, Val: 5, Present: true, Delta: true}, 5},
		{Write{Key: k, Val: 3, Present: true, Delta: true}, 8},
		{Write{Key: k, Val: -2, Present: true, Delta: true}, 6},
		{Write{Key: k, Val: 100, Present: true}, 100}, // cas reset
		{Write{Key: k, Val: 1, Present: true, Delta: true}, 101},
		{Write{Key: 7, Val: 42, Present: true}, 42}, // plain map key: untouched
	}
	for i, st := range steps {
		ws := []Write{st.in}
		f.Resolve(ws)
		if ws[0].Delta {
			t.Fatalf("step %d: delta survived resolution", i)
		}
		if ws[0].Val != st.wantVal {
			t.Fatalf("step %d: resolved to %d, want %d", i, ws[0].Val, st.wantVal)
		}
	}

	// Independent folds on independent keys, resolved in one batch.
	var g DeltaFold
	batch := []Write{
		{Key: ops.KeyBit | 1, Val: 4, Present: true, Delta: true},
		{Key: ops.KeyBit | 2, Val: 9, Present: true, Delta: true},
		{Key: ops.KeyBit | 1, Val: 4, Present: true, Delta: true},
	}
	g.Resolve(batch)
	if batch[0].Val != 4 || batch[1].Val != 9 || batch[2].Val != 8 {
		t.Fatalf("batch resolved to %v", batch)
	}
}
