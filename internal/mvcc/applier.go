package mvcc

import (
	"sync"

	"pushpull/internal/adt"
	"pushpull/internal/core"
	"pushpull/internal/ops"
	"pushpull/internal/spec"
)

// Applier folds the shadow machine's event stream into a Store and a
// Shadow certifier. It is a core.EventSink attached next to the
// metrics suite on the certifying recorder: PUSH buffers a
// transaction's write operations, UNPUSH retracts them (substrate
// rollback), CMT applies the buffered write-set at the machine's
// commit stamp, ABORT discards it. Because the recorder mutex
// serializes dispatch, commits arrive here in true commit order and
// the stamps are strictly monotonic — the version store inherits the
// WAL's serialization-witness property for free.
type Applier struct {
	mode Mode
	st   *Store
	sh   *Shadow

	mu      sync.Mutex
	pending map[uint64][]pendingWrite // machine thread -> buffered writes
	fold    DeltaFold                 // typed-counter delta resolution, in commit order
}

type pendingWrite struct {
	opID uint64
	w    Write
}

// NewApplier builds the sink feeding st (and sh, which may be nil).
func NewApplier(mode Mode, st *Store, sh *Shadow) *Applier {
	a := &Applier{mode: mode, st: st, sh: sh, pending: make(map[uint64][]pendingWrite)}
	if sh != nil {
		st.OnTruncate(sh.TrimTo)
	}
	return a
}

var _ core.EventSink = (*Applier)(nil)

// TranslateOp projects one operation of the shadow-machine op
// alphabet onto the KV write-set. Reads and non-KV objects (the
// hybrid's "htm" counter register) fold to nothing. The recovery
// replay and the live event stream share this projection, so a
// follower folding shipped WAL bytes builds the same version chains
// the primary's applier does.
func TranslateOp(mode Mode, op spec.Op) (Write, bool) {
	switch mode {
	case ModeRegister:
		if op.Obj == "mem" && op.Method == adt.MWrite && len(op.Args) >= 2 {
			return Write{Key: uint64(op.Args[0]), Val: op.Args[1], Present: true}, true
		}
	case ModeMap:
		switch op.Obj {
		case "ht":
			switch op.Method {
			case adt.MMapPut:
				if len(op.Args) >= 2 {
					return Write{Key: uint64(op.Args[0]), Val: op.Args[1], Present: true}, true
				}
			case adt.MMapRemove:
				if len(op.Args) >= 1 {
					return Write{Key: uint64(op.Args[0]), Present: false}, true
				}
			}
		case ops.Obj:
			// Typed counter cells fold at ops.KeyBit|k so snapshot reads
			// of counters never collide with the blind map's keys. Adds
			// and approved withdraws fold as deltas (two commuting
			// increments must both land, whichever order they commit);
			// a cas that installed folds as the absolute it wrote. Set
			// and queue methods have no snapshot surface and fold to
			// nothing, as do reads.
			switch op.Method {
			case adt.MOpsAdd:
				if len(op.Args) >= 2 {
					return Write{Key: ops.KeyBit | uint64(op.Args[0]), Val: op.Args[1], Present: true, Delta: true}, true
				}
			case adt.MOpsWd:
				if len(op.Args) >= 2 {
					return Write{Key: ops.KeyBit | uint64(op.Args[0]), Val: -op.Args[1], Present: true, Delta: true}, true
				}
			case adt.MOpsCAS:
				if len(op.Args) >= 3 && op.Ret == op.Args[1] {
					return Write{Key: ops.KeyBit | uint64(op.Args[0]), Val: op.Args[2], Present: true}, true
				}
			}
		}
	}
	return Write{}, false
}

// DeltaFold resolves delta writes (typed counter arithmetic) to the
// absolute values the Store and Shadow require, accumulating per-key
// running totals. Callers must feed it committed write-sets in commit
// order under their own serialization (the applier resolves under the
// recorder-serialized commit stream, the replica under its fold lock).
type DeltaFold struct {
	vals map[uint64]int64
}

// Resolve rewrites writes in place: each delta becomes the new absolute
// value of its key, and absolute writes into the typed-counter
// namespace (a resolved cas) reset the running total.
func (f *DeltaFold) Resolve(writes []Write) {
	for i := range writes {
		w := &writes[i]
		switch {
		case w.Delta:
			if f.vals == nil {
				f.vals = make(map[uint64]int64)
			}
			nv := f.vals[w.Key] + w.Val
			f.vals[w.Key] = nv
			w.Val, w.Delta = nv, false
		case w.Present && w.Key&ops.KeyBit != 0:
			if f.vals == nil {
				f.vals = make(map[uint64]int64)
			}
			f.vals[w.Key] = w.Val
		}
	}
}

// Emit observes one rule transition. Cheap by contract: a map append
// per pushed write, one Apply per commit.
func (a *Applier) Emit(e core.SinkEvent) {
	switch e.Rule {
	case core.RPush:
		w, ok := TranslateOp(a.mode, e.Op)
		if !ok {
			return
		}
		a.mu.Lock()
		a.pending[e.Tx] = append(a.pending[e.Tx], pendingWrite{opID: e.Op.ID, w: w})
		a.mu.Unlock()
	case core.RUnpush:
		a.mu.Lock()
		buf := a.pending[e.Tx]
		for i := len(buf) - 1; i >= 0; i-- {
			if buf[i].opID == e.Op.ID {
				a.pending[e.Tx] = append(buf[:i], buf[i+1:]...)
				break
			}
		}
		a.mu.Unlock()
	case core.RCmt:
		a.mu.Lock()
		buf := a.pending[e.Tx]
		delete(a.pending, e.Tx)
		writes := make([]Write, len(buf))
		for i, pw := range buf {
			writes[i] = pw.w
		}
		// Commits arrive serialized by the recorder mutex, so the delta
		// fold accumulates in true commit order; a.mu keeps it visible.
		a.fold.Resolve(writes)
		a.mu.Unlock()
		// Shadow first: Apply may cross the GC-debt threshold and call
		// TrimTo(watermark) through the truncation hook — the shadow
		// must already hold this commit before the bound reaches it.
		if a.sh != nil {
			a.sh.Append(e.Stamp, writes)
		}
		a.st.Apply(e.Stamp, writes)
	case core.RAbort:
		a.mu.Lock()
		delete(a.pending, e.Tx)
		a.mu.Unlock()
	}
}
