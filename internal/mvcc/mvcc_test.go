package mvcc

import (
	"testing"
)

// apply pushes one committed write-set through the shadow-then-store
// order the applier uses.
func apply(st *Store, sh *Shadow, seq uint64, writes ...Write) {
	sh.Append(seq, writes)
	st.Apply(seq, writes)
}

// TestSIAnomalyTable pins the isolation boundary the read-only class
// lives on. Classic write skew: x and y start at 50 under the
// constraint x+y >= 0; two concurrent transactions each read both
// keys at the same snapshot, see 100 total, and each withdraws 60
// from a different key. Their write sets are disjoint, so snapshot
// isolation admits both — the committed state violates the constraint
// (-10 + -10). That anomaly needs a write: a read-only transaction at
// ANY watermark observes exactly one committed prefix state and
// certifies against the full history, so no interleaving of its reads
// can witness a state off the committed chain.
func TestSIAnomalyTable(t *testing.T) {
	st := NewStore(ModeRegister, 8)
	sh := NewShadow(ModeRegister, 8)
	st.OnTruncate(sh.TrimTo)
	const x, y = 0, 1
	apply(st, sh, 1, Write{Key: x, Val: 50, Present: true})
	apply(st, sh, 2, Write{Key: y, Val: 50, Present: true})

	// Both RW transactions read {x, y} at watermark 2.
	snap := st.Snapshot()
	xv, _ := snap.Get(x)
	yv, _ := snap.Get(y)
	if xv+yv < 60 {
		t.Fatalf("setup broken: x+y = %d", xv+yv)
	}
	reads := []ReadObs{{Key: x, Val: xv, Found: true}, {Key: y, Val: yv, Found: true}}
	// Each transaction's read set certifies at the shared snapshot —
	// snapshot isolation sees nothing wrong with either...
	if err := sh.Certify(snap.Watermark(), reads); err != nil {
		t.Fatalf("txn A reads failed SI certification: %v", err)
	}
	if err := sh.Certify(snap.Watermark(), reads); err != nil {
		t.Fatalf("txn B reads failed SI certification: %v", err)
	}
	snap.Close()
	// ...so both commit, with disjoint write sets.
	apply(st, sh, 3, Write{Key: x, Val: xv - 60, Present: true})
	apply(st, sh, 4, Write{Key: y, Val: yv - 60, Present: true})
	final := st.Snapshot()
	defer final.Close()
	fx, _ := final.Get(x)
	fy, _ := final.Get(y)
	if fx+fy >= 0 {
		t.Fatalf("expected the write-skew anomaly to materialize, got x+y = %d", fx+fy)
	}

	// The read-only class cannot witness any such anomaly: at every
	// watermark along the history, the observable {x, y} state is
	// exactly one committed-prefix state, and certification agrees.
	wantStates := map[uint64][2]int64{
		0: {0, 0}, 1: {50, 0}, 2: {50, 50}, 3: {-10, 50}, 4: {-10, -10},
	}
	for w := uint64(0); w <= 4; w++ {
		gx, _ := sh.lookup(x, w)
		gy, _ := sh.lookup(y, w)
		want := wantStates[w]
		if gx != want[0] || gy != want[1] {
			t.Fatalf("watermark %d: read-only view (%d,%d), want committed prefix state %v", w, gx, gy, want)
		}
		obs := []ReadObs{{Key: x, Val: gx, Found: true}, {Key: y, Val: gy, Found: true}}
		if err := sh.Certify(w, obs); err != nil {
			t.Fatalf("watermark %d: consistent prefix read failed certification: %v", w, err)
		}
		// A torn read — x from one prefix, y from another — must be
		// rejected: that is the anomaly shape the RO class excludes.
		if w >= 2 {
			torn := []ReadObs{
				{Key: x, Val: wantStates[w][0], Found: true},
				{Key: y, Val: wantStates[w-2][1], Found: true},
			}
			if torn[1].Val != wantStates[w][1] {
				if err := sh.Certify(w, torn); err == nil {
					t.Fatalf("watermark %d: torn read %v passed certification", w, torn)
				}
			}
		}
	}
}

// lookup exposes lookupLocked for the anomaly table.
func (sh *Shadow) lookup(key, w uint64) (int64, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.lookupLocked(key, w)
}

// TestGCBoundRespectsPins pins the truncation contract: while a
// snapshot holds a watermark, every version it can see survives GC;
// once the pin closes, chains truncate to the newest version at or
// below the new bound.
func TestGCBoundRespectsPins(t *testing.T) {
	st := NewStore(ModeRegister, 4)
	const key = 2
	// Build a long chain on one key, pinning early.
	apply2 := func(seq uint64, val int64) {
		st.Apply(seq, []Write{{Key: key, Val: val, Present: true}})
	}
	apply2(1, 100)
	snap := st.Snapshot() // pins watermark 1
	for seq := uint64(2); seq <= 2*gcEvery; seq++ {
		apply2(seq, int64(100+seq))
	}
	// The debt-triggered sweeps have run by now (2*gcEvery applies),
	// but the pin holds the bound at 1: the pinned version survives.
	if got, _ := snap.Get(key); got != 100 {
		t.Fatalf("pinned snapshot read %d, want 100 (GC ate a pinned version)", got)
	}
	stats := st.StoreStats()
	if stats.Versions < 2 {
		t.Fatalf("pin not respected: only %d versions survive", stats.Versions)
	}
	snap.Close()
	st.TruncateNow()
	stats = st.StoreStats()
	if stats.Versions != 1 {
		t.Fatalf("after unpin + GC: %d versions, want exactly the newest", stats.Versions)
	}
	if stats.Truncated == 0 {
		t.Fatal("truncation counter never moved")
	}
	final := st.Snapshot()
	defer final.Close()
	if got, _ := final.Get(key); got != int64(100+2*gcEvery) {
		t.Fatalf("newest version lost: read %d", got)
	}
}

// TestGCTrimsShadowWindow pins the certifier side of the bound: the
// store's truncation hook trims the shadow window to the same bound,
// so a watermark below it is refused (pin outlived GC) while live
// watermarks stay certifiable.
func TestGCTrimsShadowWindow(t *testing.T) {
	st := NewStore(ModeRegister, 4)
	sh := NewShadow(ModeRegister, 4)
	st.OnTruncate(sh.TrimTo)
	for seq := uint64(1); seq <= gcEvery+8; seq++ {
		apply(st, sh, seq, Write{Key: 1, Val: int64(seq), Present: true})
	}
	st.TruncateNow()
	// The bound is the watermark (no pins): old watermarks are gone.
	if err := sh.Certify(1, []ReadObs{{Key: 1, Val: 1, Found: true}}); err == nil {
		t.Fatal("certification at a truncated watermark must fail")
	}
	// The current watermark still certifies.
	w := st.Watermark()
	if err := sh.Certify(w, []ReadObs{{Key: 1, Val: int64(w), Found: true}}); err != nil {
		t.Fatalf("live watermark refused: %v", err)
	}
}

// TestMapModeTombstones pins map-substrate semantics through the
// version chains: a remove is a tombstone version (found=false), and
// GC deletes chains whose sole surviving version is a tombstone.
func TestMapModeTombstones(t *testing.T) {
	st := NewStore(ModeMap, 0)
	sh := NewShadow(ModeMap, 0)
	st.OnTruncate(sh.TrimTo)
	apply(st, sh, 1, Write{Key: 7, Val: 42, Present: true})
	apply(st, sh, 2, Write{Key: 7, Present: false})
	snap := st.Snapshot()
	if _, found := snap.Get(7); found {
		t.Fatal("removed key still found at the remove's watermark")
	}
	snap.Close()
	if err := sh.Certify(2, []ReadObs{{Key: 7, Found: false}}); err != nil {
		t.Fatalf("tombstone read failed certification: %v", err)
	}
	st.TruncateNow()
	if stats := st.StoreStats(); stats.Chains != 0 {
		t.Fatalf("lone-tombstone chain survived GC: %d chains", stats.Chains)
	}
}

// FuzzSnapshotVisibility drives a random committed history through
// both substrate modes and checks that every pinned snapshot agrees
// with a reference fold of the prefix at its watermark, and that the
// observed reads always certify. Bytes decode as (key, val, present,
// pin?) commit tuples; register mode forces present writes (its
// applier never emits tombstones), map mode uses the presence bit.
func FuzzSnapshotVisibility(f *testing.F) {
	f.Add([]byte{1, 5, 1, 0, 2, 9, 0, 1, 1, 3, 1, 1})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{9, 200, 1, 1, 9, 201, 1, 1, 9, 202, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mode := range []Mode{ModeRegister, ModeMap} {
			fuzzOneMode(t, mode, data)
		}
	})
}

func fuzzOneMode(t *testing.T, mode Mode, data []byte) {
	const keys = 8
	st := NewStore(mode, keys)
	sh := NewShadow(mode, keys)
	st.OnTruncate(sh.TrimTo)

	type image struct {
		val   int64
		found bool
	}
	type pinned struct {
		snap *Snapshot
		ref  map[uint64]image // committed image at pin time
	}
	var pins []pinned
	ref := make(map[uint64]image)
	seq := uint64(0)
	for i := 0; i+4 <= len(data); i += 4 {
		key := uint64(data[i]) % keys
		val := int64(data[i+1])
		present := mode == ModeRegister || data[i+2]%2 == 1
		seq++
		w := Write{Key: key, Val: val, Present: present}
		apply(st, sh, seq, w)
		if present {
			ref[key] = image{val: val, found: true}
		} else {
			delete(ref, key)
		}
		if data[i+3]%2 == 1 {
			cp := make(map[uint64]image, len(ref))
			for k, v := range ref {
				cp[k] = v
			}
			pins = append(pins, pinned{snap: st.Snapshot(), ref: cp})
		}
	}
	for _, p := range pins {
		var obs []ReadObs
		for k := uint64(0); k < keys; k++ {
			got, found := p.snap.Get(k)
			want := p.ref[k]
			if mode == ModeRegister {
				// Registers always exist; unwritten slots read zero.
				want.found = true
			}
			if found != want.found || (found && got != want.val) {
				t.Fatalf("mode %d snapshot@%d key %d: got (%d, found=%v), want (%d, found=%v)",
					mode, p.snap.Watermark(), k, got, found, want.val, want.found)
			}
			obs = append(obs, ReadObs{Key: k, Val: got, Found: found})
		}
		if err := sh.Certify(p.snap.Watermark(), obs); err != nil {
			t.Fatalf("mode %d snapshot@%d: %v", mode, p.snap.Watermark(), err)
		}
		p.snap.Close()
	}
	st.TruncateNow()
	if st.StoreStats().SnapshotsOpen != 0 {
		t.Fatal("pins leaked")
	}
}
