package mvcc

import (
	"fmt"
	"sync"
)

// Shadow is the read-only transaction certifier: an independent,
// flat materialization of the committed write history, fed from the
// same CMT events as the Store but kept as an ordered window of
// (seq, write-set) records over a folded base image. Certify replays
// a read-only transaction's observed result set against this history
// and demands that every read equals the latest committed write at or
// below the transaction's snapshot watermark.
//
// Under snapshot isolation a read-only transaction that reads a single
// committed prefix is serializable (the read-only serializability
// theorem for SI — see PAPERS.md, "On the Semantics of Snapshot
// Isolation"), so a transaction that passes Certify is not merely
// SI-consistent but has a serial position: immediately after the
// commit it pinned. The certifier is deliberately redundant with the
// Store — two independent folds of the same event stream must agree,
// or one of them is broken.
type Shadow struct {
	mu   sync.Mutex
	mode Mode
	keys uint64

	base    map[uint64]entry // folded image of commits <= baseSeq
	baseSeq uint64
	window  []commitRec // commits in (baseSeq, head], ascending seq
	head    uint64

	certified uint64
	failed    uint64
}

type entry struct {
	val     int64
	present bool
}

type commitRec struct {
	seq    uint64
	writes []Write
}

// ReadObs is one observed read of a read-only transaction: the key the
// client asked for and the (value, found) the server answered.
type ReadObs struct {
	Key   uint64
	Val   int64
	Found bool
}

// NewShadow builds an empty certifier with the same key semantics as
// the store it mirrors.
func NewShadow(mode Mode, keys int) *Shadow {
	if keys <= 0 {
		keys = 1
	}
	return &Shadow{
		mode: mode,
		keys: uint64(keys),
		base: make(map[uint64]entry),
	}
}

func (sh *Shadow) slot(key uint64) uint64 {
	if sh.mode == ModeRegister {
		return key % sh.keys
	}
	return key
}

// Append records one committed transaction. Seqs must arrive in
// strictly increasing order (they do: the recorder mutex serializes
// CMT dispatch).
func (sh *Shadow) Append(seq uint64, writes []Write) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if seq <= sh.head {
		panic(fmt.Sprintf("mvcc: shadow commit seq %d not above head %d", seq, sh.head))
	}
	if len(writes) != 0 {
		cp := make([]Write, len(writes))
		copy(cp, writes)
		sh.window = append(sh.window, commitRec{seq: seq, writes: cp})
	}
	sh.head = seq
}

// TrimTo folds every windowed commit at or below bound into the base
// image. The store's GC calls this with its own truncation bound, so
// any watermark a live snapshot can hold stays certifiable.
func (sh *Shadow) TrimTo(bound uint64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	i := 0
	for i < len(sh.window) && sh.window[i].seq <= bound {
		for _, w := range sh.window[i].writes {
			sh.base[w.Key] = entry{val: w.Val, present: w.Present}
		}
		i++
	}
	if i > 0 {
		sh.window = append(sh.window[:0:0], sh.window[i:]...)
	}
	if bound > sh.baseSeq {
		sh.baseSeq = bound
	}
	if sh.baseSeq > sh.head {
		sh.head = sh.baseSeq
	}
}

// lookupLocked resolves the committed value of key at watermark w.
func (sh *Shadow) lookupLocked(key uint64, w uint64) (int64, bool) {
	k := sh.slot(key)
	// Newest window commit at or below w wins; within one commit the
	// last write to the key wins.
	for i := len(sh.window) - 1; i >= 0; i-- {
		rec := sh.window[i]
		if rec.seq > w {
			continue
		}
		for j := len(rec.writes) - 1; j >= 0; j-- {
			if rec.writes[j].Key == k {
				return rec.writes[j].Val, rec.writes[j].Present
			}
		}
	}
	if e, ok := sh.base[k]; ok {
		return e.val, e.present
	}
	if sh.mode == ModeRegister {
		return 0, true
	}
	return 0, false
}

// Certify checks a read-only transaction's full result set against the
// committed history at watermark w. A nil return means every read is
// exactly the latest committed write at or below w — the transaction
// read a single committed prefix and is serializable at position w.
func (sh *Shadow) Certify(w uint64, reads []ReadObs) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if w < sh.baseSeq {
		sh.failed++
		return fmt.Errorf("mvcc: snapshot watermark %d below certifiable window (base %d): pin outlived GC bound", w, sh.baseSeq)
	}
	if w > sh.head {
		sh.failed++
		return fmt.Errorf("mvcc: snapshot watermark %d above committed head %d: read an uncommitted future", w, sh.head)
	}
	for _, r := range reads {
		val, present := sh.lookupLocked(r.Key, w)
		if r.Found != present || (present && r.Val != val) {
			sh.failed++
			return fmt.Errorf("mvcc: read-only txn at watermark %d read key %d = (%d, found=%v), committed history says (%d, found=%v): not a committed prefix",
				w, r.Key, r.Val, r.Found, val, present)
		}
	}
	sh.certified++
	return nil
}

// CertStats returns how many read-only transactions were certified and
// how many failed certification.
func (sh *Shadow) CertStats() (certified, failed uint64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.certified, sh.failed
}
