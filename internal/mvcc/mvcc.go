// Package mvcc is the multi-version store under the serving
// substrates: the committed global log G, materialized per key.
//
// Every substrate in this repository already certifies its commits
// against a shadow Push/Pull machine, and that machine dispatches one
// CMT event per committed transaction — with the machine's monotonic
// commit stamp — through the core.EventSink seam. This package folds
// exactly that stream: an Applier buffers each transaction's PUSHed
// write operations and, at CMT, appends one version per written key
// (value, commit seq, prev pointer) to a Store. The store is therefore
// structurally a fold of the same committed log the WAL and the
// replicas see; nothing is written that was not pushed and committed
// through the eight rules.
//
// A Snapshot pins a commit watermark and serves Get/Fold at that
// watermark: in Push/Pull terms it is a PULL-only transaction — it
// pulls a consistent committed prefix of G and never pushes, so it can
// never conflict, never validates, and never aborts. A watermark-based
// garbage collector truncates version chains below the oldest pinned
// snapshot, bounding memory by the span between the oldest live reader
// and the head of the log.
package mvcc

import (
	"fmt"
	"sync"
)

// Mode selects the key semantics of the substrate the store shadows.
type Mode int

const (
	// ModeRegister mirrors the word substrates (tl2, pess, htmsim,
	// dep): keys map onto a register array modulo Keys, every slot
	// exists (default zero), writes are total.
	ModeRegister Mode = iota
	// ModeMap mirrors the boosted substrates (boost, hybrid): full
	// uint64 keys with presence semantics (put/remove).
	ModeMap
)

// ModeFor returns the store mode matching a substrate name.
func ModeFor(substrate string) Mode {
	switch substrate {
	case "boost", "hybrid":
		return ModeMap
	default:
		return ModeRegister
	}
}

// Write is one committed mutation: key (a register address in
// ModeRegister, a full key in ModeMap), the value, and whether the key
// is present afterwards (false = map remove, a tombstone). Delta marks
// a typed-counter increment whose Val is a relative amount rather than
// an absolute value; a DeltaFold must resolve it before the write
// reaches a Store or Shadow (both are absolute-only).
type Write struct {
	Key     uint64
	Val     int64
	Present bool
	Delta   bool
}

// Observer receives gauge deltas (version count, open snapshots) so a
// metrics suite can export pushpull_mvcc_* without polling the store.
type Observer interface {
	MVCCVersionsAdd(delta int64)
	MVCCSnapshotsAdd(delta int64)
}

// version is one link of a key's chain, newest first.
type version struct {
	seq     uint64
	val     int64
	present bool
	prev    *version
}

// gcEvery bounds how many versions may accumulate between truncation
// sweeps; a sweep walks every chain, so amortize it.
const gcEvery = 512

const noPin = ^uint64(0)

// Store holds one version chain per key plus the pin table of open
// snapshots. All methods are safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	mode   Mode
	keys   uint64 // register modulus (ModeRegister only)
	chains map[uint64]*version

	watermark uint64         // highest commit seq applied
	versions  int64          // live version count
	truncated uint64         // versions dropped by GC, cumulative
	pins      map[uint64]int // watermark -> open snapshot count
	minPin    uint64         // cached min of pins, noPin when empty
	snaps     int            // open snapshots
	gcDebt    int64          // versions appended since last sweep

	obs       Observer
	truncHook func(bound uint64)
}

// NewStore builds an empty store. keys is the register modulus for
// ModeRegister (ignored for ModeMap).
func NewStore(mode Mode, keys int) *Store {
	if keys <= 0 {
		keys = 1
	}
	return &Store{
		mode:   mode,
		keys:   uint64(keys),
		chains: make(map[uint64]*version),
		pins:   make(map[uint64]int),
		minPin: noPin,
	}
}

// SetObserver attaches the gauge observer. Call before serving.
func (s *Store) SetObserver(o Observer) { s.obs = o }

// OnTruncate registers a hook receiving each GC sweep's truncation
// bound — the certifier trims its window to the same bound, so the
// two folds stay certifiable over exactly the same span. Call before
// serving.
func (s *Store) OnTruncate(fn func(bound uint64)) { s.truncHook = fn }

// slot maps a service key to its chain key under the store's mode.
func (s *Store) slot(key uint64) uint64 {
	if s.mode == ModeRegister {
		return key % s.keys
	}
	return key
}

// Apply appends one committed transaction's write-set at commit seq.
// Seqs must be strictly monotonic — they are machine commit stamps,
// dispatched in order under the recorder mutex; a violation here means
// the commit-order witness is broken, so fail loudly.
func (s *Store) Apply(seq uint64, writes []Write) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq <= s.watermark {
		panic(fmt.Sprintf("mvcc: commit seq %d not above watermark %d (commit order witness broken)", seq, s.watermark))
	}
	for _, w := range writes {
		k := w.Key // applier feeds slot keys already
		s.chains[k] = &version{seq: seq, val: w.Val, present: w.Present, prev: s.chains[k]}
	}
	n := int64(len(writes))
	s.versions += n
	s.gcDebt += n
	s.watermark = seq
	if s.obs != nil && n != 0 {
		s.obs.MVCCVersionsAdd(n)
	}
	if s.gcDebt >= gcEvery {
		s.gcLocked()
	}
}

// Watermark returns the highest applied commit seq.
func (s *Store) Watermark() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.watermark
}

// Snapshot pins the current watermark and returns a handle serving
// reads at it. The caller must Close it to release the pin (and let
// the garbage collector advance).
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.watermark
	s.pins[w]++
	if w < s.minPin {
		s.minPin = w
	}
	s.snaps++
	if s.obs != nil {
		s.obs.MVCCSnapshotsAdd(1)
	}
	return &Snapshot{st: s, w: w}
}

// unpin releases one snapshot at watermark w.
func (s *Store) unpin(w uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pins[w]--
	if s.pins[w] <= 0 {
		delete(s.pins, w)
		if w == s.minPin {
			s.minPin = noPin
			for p := range s.pins {
				if p < s.minPin {
					s.minPin = p
				}
			}
		}
	}
	s.snaps--
	if s.obs != nil {
		s.obs.MVCCSnapshotsAdd(-1)
	}
	// A closing snapshot may have been the oldest pin holding history
	// back; sweep if enough garbage accrued while it was open.
	if s.gcDebt >= gcEvery {
		s.gcLocked()
	}
}

// gcBoundLocked is the truncation watermark: nothing below the oldest
// pinned snapshot (or the head, when no snapshot is open) is
// reachable by any current or future reader.
func (s *Store) gcBoundLocked() uint64 {
	if s.minPin != noPin {
		return s.minPin
	}
	return s.watermark
}

// gcLocked truncates every chain below the GC bound: the newest
// version at-or-below the bound is kept (it is the visible version for
// the oldest possible reader), everything older is cut. Map-mode
// chains whose only surviving version is a tombstone are dropped
// entirely.
func (s *Store) gcLocked() {
	bound := s.gcBoundLocked()
	var dropped int64
	for k, head := range s.chains {
		// Find the first (newest) version at or below the bound.
		v := head
		for v != nil && v.seq > bound {
			v = v.prev
		}
		if v == nil {
			continue // whole chain above the bound: all reachable
		}
		for p := v.prev; p != nil; p = p.prev {
			dropped++
		}
		v.prev = nil
		if v == head && s.mode == ModeMap && !v.present {
			// The chain is a single unreferenced tombstone: the key is
			// absent at every reachable watermark, same as no chain.
			delete(s.chains, k)
			dropped++
		}
	}
	s.versions -= dropped
	s.truncated += uint64(dropped)
	s.gcDebt = 0
	if s.obs != nil && dropped != 0 {
		s.obs.MVCCVersionsAdd(-dropped)
	}
	if s.truncHook != nil {
		s.truncHook(bound)
	}
}

// TruncateNow forces a GC sweep (tests and shutdown).
func (s *Store) TruncateNow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked()
}

// Stats is a point-in-time census of the store.
type Stats struct {
	Versions      int64  `json:"versions"`
	Chains        int    `json:"chains"`
	SnapshotsOpen int    `json:"snapshots_open"`
	Watermark     uint64 `json:"watermark"`
	Truncated     uint64 `json:"truncated"`
}

// StoreStats returns the census.
func (s *Store) StoreStats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Versions:      s.versions,
		Chains:        len(s.chains),
		SnapshotsOpen: s.snaps,
		Watermark:     s.watermark,
		Truncated:     s.truncated,
	}
}

// Snapshot is a pinned read view: a PULL-only transaction over the
// committed prefix of G at watermark w. Reads never block writers
// beyond the store's RLock and can never abort.
type Snapshot struct {
	st     *Store
	w      uint64
	closed bool
	mu     sync.Mutex // guards closed
}

// Watermark returns the pinned commit seq.
func (sn *Snapshot) Watermark() uint64 { return sn.w }

// Get reads key at the pinned watermark. In ModeRegister every key is
// found (registers default to zero); in ModeMap found reflects map
// presence at the watermark.
func (sn *Snapshot) Get(key uint64) (int64, bool) {
	s := sn.st
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := s.chains[s.slot(key)]
	for v != nil && v.seq > sn.w {
		v = v.prev
	}
	if v == nil || !v.present {
		if s.mode == ModeRegister {
			return 0, true
		}
		return 0, false
	}
	return v.val, true
}

// Fold visits every key present at the pinned watermark. ModeRegister
// visits only slots that have been written (unwritten slots are zero).
// Iteration order is unspecified.
func (sn *Snapshot) Fold(fn func(key uint64, val int64)) {
	s := sn.st
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, head := range s.chains {
		v := head
		for v != nil && v.seq > sn.w {
			v = v.prev
		}
		if v != nil && v.present {
			fn(k, v.val)
		}
	}
}

// Close releases the pin. Idempotent.
func (sn *Snapshot) Close() {
	sn.mu.Lock()
	if sn.closed {
		sn.mu.Unlock()
		return
	}
	sn.closed = true
	sn.mu.Unlock()
	sn.st.unpin(sn.w)
}
