// Package boost implements transactional boosting (Herlihy & Koskinen,
// PPoPP'08) — the running example of the paper's Figure 2: transactions
// over linearizable base objects (our concurrent skiplist), made atomic
// by abstract per-key locks and undo logs of inverse operations.
//
// The Figure 2 decomposition, reproduced literally:
//
//	atomic {                     // BEGIN (implicit PULL of shared view)
//	  abstractLock(key).lock()   // ensures PUSH criterion (ii)
//	  old = map.put(key, value)  // APP + PUSH at the linearization point
//	  onAbort:                   //
//	    if (old defined) map.put(key, old)    // UNPUSH via inverse
//	    else             map.remove(key)      // UNPUSH via inverse
//	                                          // ... then UNAPP
//	}                            // CMT, release abstract locks
//
// With a trace.Recorder attached, every operation is certified at its
// linearization point (while the abstract lock is held) as the
// PULL*;APP;PUSH rule sequence, aborts as UNPUSH;UNAPP, and commits as
// CMT — all rule criteria checked by the shadow machine.
package boost

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"pushpull/internal/chaos"
	"pushpull/internal/core"
	"pushpull/internal/locks"
	"pushpull/internal/skiplist"
	"pushpull/internal/spec"
	"pushpull/internal/trace"
)

// ErrConflict reports an abstract-lock timeout (deadlock avoidance);
// Atomic aborts, runs inverses, and retries.
var ErrConflict = errors.New("boost: abstract lock timeout")

// Stats counts runtime-wide activity.
type Stats struct {
	Commits uint64
	Aborts  uint64
	// TypedOps counts executed typed operations (internal/ops codes).
	TypedOps uint64
	// CommuteHits counts abstract-lock acquisitions that JOINED other
	// live holders under a shared commute class — each one is an
	// operation that would have conflicted on an exclusive-only table.
	CommuteHits uint64
}

// Runtime coordinates boosted transactions: the abstract lock table,
// transaction identities, and optional certification.
type Runtime struct {
	lm  *locks.Manager
	ids atomic.Uint64

	// Recorder, when non-nil, certifies all boosted operations on a
	// shadow Push/Pull machine.
	Recorder *trace.Recorder
	// LockSpins bounds acquisition attempts before a deadlock-avoidance
	// abort. Defaults to 256.
	LockSpins int
	// Injector, when non-nil, is consulted at SiteBoostTimeout on every
	// abstract-lock acquisition; injected timeouts surface as ErrConflict
	// aborts, forcing the inverse-log (UNPUSH) recovery path.
	Injector chaos.Injector
	// Retry, when non-nil, bounds retries and shapes backoff in Atomic;
	// an exhausted budget returns ErrRetriesExhausted (wrapped).
	Retry *chaos.RetryPolicy
	// Durable, when non-nil, is the commit-path durability barrier:
	// the write-ahead log is flushed before a commit is acknowledged.
	Durable core.Durable

	commits     atomic.Uint64
	aborts      atomic.Uint64
	typedOps    atomic.Uint64
	commuteHits atomic.Uint64
}

// NewRuntime returns a fresh boosting runtime.
func NewRuntime() *Runtime {
	return &Runtime{lm: locks.NewManager(), LockSpins: 256}
}

// Stats returns commit/abort counts.
func (rt *Runtime) Stats() Stats {
	return Stats{
		Commits:     rt.commits.Load(),
		Aborts:      rt.aborts.Load(),
		TypedOps:    rt.typedOps.Load(),
		CommuteHits: rt.commuteHits.Load(),
	}
}

// LeakCheck asserts, at quiescence, that no abstract lock survived its
// transaction — the goroutine-substrate analogue of
// strategy.Env.LeakCheck, over the same locks.Manager accounting.
// Every Atomic exit path (commit, abort, foreign error) runs
// ReleaseAll, so a non-zero count here means a transaction escaped
// those paths: exactly what a dropped client connection mid-session
// would cause if the server failed to abort it.
func (rt *Runtime) LeakCheck() error {
	if n := rt.lm.HeldCount(); n != 0 {
		return fmt.Errorf("boost: %d abstract lock hold(s) leaked (owners %v)",
			n, rt.lm.HeldOwners())
	}
	return nil
}

// Txn is one boosted transaction attempt.
type Txn struct {
	rt    *Runtime
	owner locks.Owner
	undo  []func()
	hooks []func()
	sess  *trace.Session
}

// onCommit registers fn to run iff the transaction commits, after
// certification succeeds and BEFORE the abstract locks release — the
// window where typed objects fold their pending per-owner effects
// (counter deltas, set support entries) into committed state. Commuting
// transactions fold in whichever order they commit; by construction of
// the commute classes the orders agree.
func (t *Txn) onCommit(fn func()) { t.hooks = append(t.hooks, fn) }

func (t *Txn) lock(k locks.Key) error {
	_, err := t.lockClass(k, locks.Exclusive)
	return err
}

// lockClass acquires k under a commute class (locks.TryAcquireClass),
// spinning LockSpins times before the deadlock-avoidance ErrConflict
// abort. shared reports a commute hit: the acquisition joined other
// live holders instead of conflicting with them.
func (t *Txn) lockClass(k locks.Key, class string) (shared bool, err error) {
	if inj := t.rt.Injector; inj != nil && inj.Fire(chaos.SiteBoostTimeout) {
		return false, ErrConflict
	}
	spins := t.rt.LockSpins
	if spins <= 0 {
		spins = 256
	}
	for i := 0; i < spins; i++ {
		if ok, sh := t.rt.lm.TryAcquireClass(t.owner, k, class); ok {
			return sh, nil
		}
		runtime.Gosched()
	}
	return false, ErrConflict
}

func (t *Txn) certify(obj, method string, args []int64, ret int64) error {
	if t.sess == nil {
		return nil
	}
	if !t.sess.Op(obj, method, args, ret) {
		return fmt.Errorf("boost: certification failed: %w", t.rt.Recorder.Err())
	}
	return nil
}

// Atomic runs fn as a boosted transaction, retrying lock-timeout
// aborts. Any other error aborts (running the undo log) and returns.
func (rt *Runtime) Atomic(name string, fn func(*Txn) error) error {
	for attempt := 0; ; attempt++ {
		t := &Txn{rt: rt, owner: locks.Owner(rt.ids.Add(1))}
		if rt.Recorder != nil {
			t.sess = rt.Recorder.Begin(name)
		}
		err := fn(t)
		if err == nil {
			if t.sess != nil && !t.sess.Commit() {
				rt.lm.ReleaseAll(t.owner)
				return fmt.Errorf("boost: commit certification failed: %w", rt.Recorder.Err())
			}
			for _, h := range t.hooks {
				h()
			}
			rt.lm.ReleaseAll(t.owner)
			_ = core.Barrier(rt.Durable, name)
			rt.commits.Add(1)
			return nil
		}
		// Abort: inverses in reverse order (Figure 2's onAbort cases),
		// then UNAPP on the shadow, then release the abstract locks.
		for i := len(t.undo) - 1; i >= 0; i-- {
			t.undo[i]()
		}
		if t.sess != nil {
			t.sess.Abort()
		}
		rt.lm.ReleaseAll(t.owner)
		rt.aborts.Add(1)
		if !errors.Is(err, ErrConflict) {
			return err
		}
		if rt.Retry != nil {
			if !rt.Retry.Allow(attempt + 1) {
				return fmt.Errorf("boost: %w", chaos.ErrRetriesExhausted)
			}
			rt.Retry.Backoff(attempt + 1)
			continue
		}
		runtime.Gosched()
	}
}

// BaseMap is the linearizable object a boosted map or set wraps —
// Figure 2's "ConcurrentSkipListMap" slot. internal/skiplist (lazy
// skiplist) and internal/stripedmap (lock-striped hash table) both
// satisfy it; any other linearizable map does too.
type BaseMap interface {
	Put(key, value int64) (old int64, existed bool)
	Get(key int64) (int64, bool)
	Remove(key int64) (old int64, existed bool)
	Contains(key int64) bool
	Len() int
	Range(f func(key, value int64) bool)
}

// Map is a boosted hashtable over a linearizable base object (Figure
// 2's BoostedConcurrentHashTable backed by a ConcurrentSkipListMap).
type Map struct {
	rt   *Runtime
	base BaseMap
	// Name is the certification object name (an adt.Map binding).
	Name string
}

// NewMap builds a boosted map over a fresh concurrent skiplist.
func NewMap(rt *Runtime, name string, seed int64) *Map {
	return NewMapOn(rt, name, skiplist.New(seed))
}

// NewMapOn builds a boosted map over the given linearizable base.
func NewMapOn(rt *Runtime, name string, base BaseMap) *Map {
	return &Map{rt: rt, base: base, Name: name}
}

// Base exposes the underlying linearizable map (quiescent verification).
func (m *Map) Base() BaseMap { return m.base }

// Put maps key→value inside t, returning the previous value (present
// reports whether one existed).
func (m *Map) Put(t *Txn, key, value int64) (old int64, present bool, err error) {
	if err := t.lock(locks.Key{Obj: m.Name, K: key}); err != nil {
		return 0, false, err
	}
	old, present = m.base.Put(key, value)
	if present {
		t.undo = append(t.undo, func() { m.base.Put(key, old) })
	} else {
		t.undo = append(t.undo, func() { m.base.Remove(key) })
	}
	ret := spec.Absent
	if present {
		ret = old
	}
	if err := t.certify(m.Name, "put", []int64{key, value}, ret); err != nil {
		return 0, false, err
	}
	return old, present, nil
}

// Get reads key inside t.
func (m *Map) Get(t *Txn, key int64) (val int64, present bool, err error) {
	if err := t.lock(locks.Key{Obj: m.Name, K: key}); err != nil {
		return 0, false, err
	}
	val, present = m.base.Get(key)
	ret := spec.Absent
	if present {
		ret = val
	}
	if err := t.certify(m.Name, "get", []int64{key}, ret); err != nil {
		return 0, false, err
	}
	return val, present, nil
}

// Remove deletes key inside t, returning the removed value.
func (m *Map) Remove(t *Txn, key int64) (old int64, present bool, err error) {
	if err := t.lock(locks.Key{Obj: m.Name, K: key}); err != nil {
		return 0, false, err
	}
	old, present = m.base.Remove(key)
	if present {
		t.undo = append(t.undo, func() { m.base.Put(key, old) })
	}
	ret := spec.Absent
	if present {
		ret = old
	}
	if err := t.certify(m.Name, "remove", []int64{key}, ret); err != nil {
		return 0, false, err
	}
	return old, present, nil
}

// Set is a boosted set over a linearizable base object (Figure 2's
// BoostedConcurrentSkipList Set).
type Set struct {
	rt   *Runtime
	base BaseMap
	// Name is the certification object name (an adt.Set binding).
	Name string
}

// NewSet builds a boosted set over a fresh concurrent skiplist.
func NewSet(rt *Runtime, name string, seed int64) *Set {
	return NewSetOn(rt, name, skiplist.New(seed))
}

// NewSetOn builds a boosted set over the given linearizable base.
func NewSetOn(rt *Runtime, name string, base BaseMap) *Set {
	return &Set{rt: rt, base: base, Name: name}
}

// Base exposes the underlying linearizable map.
func (s *Set) Base() BaseMap { return s.base }

// Add inserts key inside t; inserted reports whether it was new.
func (s *Set) Add(t *Txn, key int64) (inserted bool, err error) {
	if err := t.lock(locks.Key{Obj: s.Name, K: key}); err != nil {
		return false, err
	}
	_, existed := s.base.Put(key, 1)
	if !existed {
		t.undo = append(t.undo, func() { s.base.Remove(key) })
	}
	ret := int64(0)
	if !existed {
		ret = 1
	}
	if err := t.certify(s.Name, "add", []int64{key}, ret); err != nil {
		return false, err
	}
	return !existed, nil
}

// Remove deletes key inside t; removed reports whether it was present.
func (s *Set) Remove(t *Txn, key int64) (removed bool, err error) {
	if err := t.lock(locks.Key{Obj: s.Name, K: key}); err != nil {
		return false, err
	}
	_, existed := s.base.Remove(key)
	if existed {
		t.undo = append(t.undo, func() { s.base.Put(key, 1) })
	}
	ret := int64(0)
	if existed {
		ret = 1
	}
	if err := t.certify(s.Name, "remove", []int64{key}, ret); err != nil {
		return false, err
	}
	return existed, nil
}

// Contains reads key's membership inside t.
func (s *Set) Contains(t *Txn, key int64) (present bool, err error) {
	if err := t.lock(locks.Key{Obj: s.Name, K: key}); err != nil {
		return false, err
	}
	present = s.base.Contains(key)
	ret := int64(0)
	if present {
		ret = 1
	}
	if err := t.certify(s.Name, "contains", []int64{key}, ret); err != nil {
		return false, err
	}
	return present, nil
}

// Counter is a boosted counter whose mutators commute abstractly. It
// takes the whole-object abstract lock for reads (get conflicts with
// everything) but only the shared intent side for updates — realized
// here conservatively as the whole-object lock, see DESIGN.md.
type Counter struct {
	rt  *Runtime
	val atomic.Int64
	// Name is the certification object name (an adt.Counter binding).
	Name string
}

// NewCounter builds a boosted counter in the runtime.
func NewCounter(rt *Runtime, name string) *Counter {
	return &Counter{rt: rt, Name: name}
}

// Value reads the counter non-transactionally (quiescent verification).
func (c *Counter) Value() int64 { return c.val.Load() }

// Inc increments inside t.
func (c *Counter) Inc(t *Txn) error {
	if err := t.lock(locks.Key{Obj: c.Name, WholeObject: true}); err != nil {
		return err
	}
	c.val.Add(1)
	t.undo = append(t.undo, func() { c.val.Add(-1) })
	return t.certify(c.Name, "inc", nil, 0)
}

// Get reads inside t.
func (c *Counter) Get(t *Txn) (int64, error) {
	if err := t.lock(locks.Key{Obj: c.Name, WholeObject: true}); err != nil {
		return 0, err
	}
	v := c.val.Load()
	if err := t.certify(c.Name, "get", nil, v); err != nil {
		return 0, err
	}
	return v, nil
}

// Session exposes the transaction's certification session (nil when the
// runtime has no Recorder). Hybrid runtimes feed their non-boosted
// (e.g. HTM) operations into the same session so the whole transaction
// certifies as one Push/Pull transaction.
func (t *Txn) Session() *trace.Session { return t.sess }
