package boost_test

import (
	"fmt"
	"sync"
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/spec"
	"pushpull/internal/stm/boost"
	"pushpull/internal/stripedmap"
	"pushpull/internal/trace"
)

// TestStripedBaseCertifiedRun re-runs the certified boosting workload
// with the lock-striped hash map as the base object instead of the
// skiplist: boosting is agnostic to its linearizable base, and both
// bases must certify identically against the Push/Pull model.
func TestStripedBaseCertifiedRun(t *testing.T) {
	reg := spec.NewRegistry()
	reg.Register("ht", adt.Map{})
	rt := boost.NewRuntime()
	rt.Recorder = trace.NewRecorder(reg)
	ht := boost.NewMapOn(rt, "ht", stripedmap.New())

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := int64((g*5 + i) % 12)
				err := rt.Atomic(fmt.Sprintf("sm%d-%d", g, i), func(tx *boost.Txn) error {
					v, present, err := ht.Get(tx, k)
					if err != nil {
						return err
					}
					if !present {
						v = 0
					}
					_, _, err2 := ht.Put(tx, k, v+1)
					return err2
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := rt.Recorder.FinalCheck(); err != nil {
		for _, v := range rt.Recorder.Violations() {
			t.Log(v)
		}
		t.Fatal(err)
	}
	var sum int64
	ht.Base().Range(func(_, v int64) bool { sum += v; return true })
	if sum != 4*40 {
		t.Fatalf("sum = %d, want %d", sum, 4*40)
	}
}

// TestStripedBaseAbortInverses: the Figure 2 inverse-operations abort
// works identically over the striped base.
func TestStripedBaseAbortInverses(t *testing.T) {
	rt := boost.NewRuntime()
	ht := boost.NewMapOn(rt, "ht", stripedmap.New())
	if err := rt.Atomic("seed", func(tx *boost.Txn) error {
		_, _, err := ht.Put(tx, 1, 100)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	if err := rt.Atomic("ab", func(tx *boost.Txn) error {
		if _, _, err := ht.Put(tx, 1, 999); err != nil {
			return err
		}
		if _, _, err := ht.Put(tx, 2, 2); err != nil {
			return err
		}
		return boom
	}); err != boom {
		t.Fatalf("err = %v", err)
	}
	if v, ok := ht.Base().Get(1); !ok || v != 100 {
		t.Fatalf("key 1 = %d,%v, want restored 100", v, ok)
	}
	if ht.Base().Contains(2) {
		t.Fatal("key 2 not removed by inverse")
	}
}
