package boost_test

import (
	"errors"
	"sync"
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/chaos"
	"pushpull/internal/ops"
	"pushpull/internal/spec"
	"pushpull/internal/stm/boost"
	"pushpull/internal/trace"
)

// newTypedRuntime boots a certified boosting runtime with the typed
// keyspace bound to its spec object, the configuration every typed
// transaction on a server runs under.
func newTypedRuntime(t *testing.T) (*boost.Runtime, *boost.Typed) {
	t.Helper()
	rt := boost.NewRuntime()
	reg := spec.NewRegistry()
	reg.Register(ops.Obj, adt.TypedKV{})
	rt.Recorder = trace.NewRecorder(reg)
	ob := boost.NewTyped(rt, ops.Obj)
	t.Cleanup(func() {
		if err := rt.LeakCheck(); err != nil {
			t.Errorf("lock leak: %v", err)
		}
		if err := rt.Recorder.FinalCheck(); err != nil {
			t.Errorf("final certification: %v", err)
		}
	})
	return rt, ob
}

// TestLimitsBoundary is the Limits-of-boosting boundary table
// (Koskinen & Herlihy): an operation commutes only on states where it
// is TOTAL. Partial operations (withdraw below balance, pop on empty)
// must surface the boundary as a conflict — abort, retry, and exhaust
// the budget if the state never allows them — while the total fragment
// of the same ADT commits concurrently under shared locks.
func TestLimitsBoundary(t *testing.T) {
	for _, tc := range []struct {
		name string
		seed func(tx *boost.Txn, ob *boost.Typed) error // committed first
		op   func(tx *boost.Txn, ob *boost.Typed) error // then attempted
		ok   bool                                       // commits vs exhausts retries
	}{
		{
			name: "wd within balance is total",
			seed: func(tx *boost.Txn, ob *boost.Typed) error {
				_, _, err := ob.Do(tx, ops.Add, 1, 10, 0)
				return err
			},
			op: func(tx *boost.Txn, ob *boost.Typed) error {
				_, _, err := ob.Do(tx, ops.Wd, 1, 7, 0)
				return err
			},
			ok: true,
		},
		{
			name: "wd below balance is partial",
			seed: func(tx *boost.Txn, ob *boost.Typed) error {
				_, _, err := ob.Do(tx, ops.Add, 1, 5, 0)
				return err
			},
			op: func(tx *boost.Txn, ob *boost.Typed) error {
				_, _, err := ob.Do(tx, ops.Wd, 1, 10, 0)
				return err
			},
			ok: false,
		},
		{
			name: "qpop on filled queue is total",
			seed: func(tx *boost.Txn, ob *boost.Typed) error {
				_, _, err := ob.Do(tx, ops.QPush, 2, 42, 0)
				return err
			},
			op: func(tx *boost.Txn, ob *boost.Typed) error {
				ret, _, err := ob.Do(tx, ops.QPop, 2, 0, 0)
				if err == nil && ret != 42 {
					t.Errorf("qpop = %d, want 42", ret)
				}
				return err
			},
			ok: true,
		},
		{
			name: "qpop on empty queue is partial",
			seed: func(tx *boost.Txn, ob *boost.Typed) error {
				_, _, err := ob.Do(tx, ops.QPush, 2, 42, 0)
				if err != nil {
					return err
				}
				_, _, err = ob.Do(tx, ops.QPop, 2, 0, 0)
				return err
			},
			op: func(tx *boost.Txn, ob *boost.Typed) error {
				_, _, err := ob.Do(tx, ops.QPop, 2, 0, 0)
				return err
			},
			ok: false,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt, ob := newTypedRuntime(t)
			rt.Retry = &chaos.RetryPolicy{MaxRetries: 3}
			if err := rt.Atomic("seed", func(tx *boost.Txn) error {
				return tc.seed(tx, ob)
			}); err != nil {
				t.Fatalf("seed: %v", err)
			}
			err := rt.Atomic("probe", func(tx *boost.Txn) error {
				return tc.op(tx, ob)
			})
			if tc.ok && err != nil {
				t.Fatalf("total op aborted: %v", err)
			}
			if !tc.ok && !errors.Is(err, chaos.ErrRetriesExhausted) {
				t.Fatalf("partial op err = %v, want retries exhausted", err)
			}
		})
	}
}

// TestTotalOpsCommitConcurrently forces true lock-hold overlap — each
// transaction parks inside Atomic until its peer has acquired the same
// cell's lock — and asserts the total commuting fragment commits on
// both sides with the overlap counted as commute hits. The same
// schedule with exclusive locks would deadlock-abort one side.
func TestTotalOpsCommitConcurrently(t *testing.T) {
	for _, tc := range []struct {
		name string
		do   func(tx *boost.Txn, ob *boost.Typed, v int64) error
	}{
		{"incr-incr", func(tx *boost.Txn, ob *boost.Typed, v int64) error {
			_, _, err := ob.Do(tx, ops.Add, 5, v, 0)
			return err
		}},
		{"sadd-sadd", func(tx *boost.Txn, ob *boost.Typed, v int64) error {
			_, _, err := ob.Do(tx, ops.SAdd, 6, v, 0)
			return err
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt, ob := newTypedRuntime(t)
			var (
				wg     sync.WaitGroup
				errs   [2]error
				rendez sync.WaitGroup
			)
			rendez.Add(2)
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					first := true
					errs[id] = rt.Atomic("peer", func(tx *boost.Txn) error {
						if err := tc.do(tx, ob, int64(id+1)); err != nil {
							return err
						}
						if first {
							// Hold the lock until the peer holds it too —
							// only possible because the class is shared.
							first = false
							rendez.Done()
							rendez.Wait()
						}
						return nil
					})
				}(i)
			}
			wg.Wait()
			for id, err := range errs {
				if err != nil {
					t.Fatalf("peer %d: %v", id, err)
				}
			}
			st := rt.Stats()
			if st.Commits != 2 {
				t.Fatalf("commits = %d, want 2", st.Commits)
			}
			if st.CommuteHits == 0 {
				t.Fatal("no commute hits despite forced lock-hold overlap")
			}
		})
	}
}

// TestEscrowGuardSpansHolders pins the escrow rule across concurrent
// holders: with balance 10 and one holder's pending wd 6 live, a
// second holder's wd 6 must abort (it would overdraw in the order that
// commits the first one first), while a wd 4 must succeed.
func TestEscrowGuardSpansHolders(t *testing.T) {
	for _, tc := range []struct {
		name   string
		second int64
		ok     bool
	}{
		{"within remaining escrow", 4, true},
		{"overdraws against peer wd", 6, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt, ob := newTypedRuntime(t)
			rt.Retry = &chaos.RetryPolicy{MaxRetries: 2}
			if err := rt.Atomic("seed", func(tx *boost.Txn) error {
				_, _, err := ob.Do(tx, ops.Add, 9, 10, 0)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			held := make(chan struct{})
			release := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			var firstErr error
			go func() {
				defer wg.Done()
				parked := false
				firstErr = rt.Atomic("first-wd", func(tx *boost.Txn) error {
					_, _, err := ob.Do(tx, ops.Wd, 9, 6, 0)
					if err != nil {
						return err
					}
					if !parked {
						parked = true
						close(held)
						<-release
					}
					return nil
				})
			}()
			<-held
			err := rt.Atomic("second-wd", func(tx *boost.Txn) error {
				_, _, err := ob.Do(tx, ops.Wd, 9, tc.second, 0)
				return err
			})
			close(release)
			wg.Wait()
			if firstErr != nil {
				t.Fatalf("first wd: %v", firstErr)
			}
			if tc.ok && err != nil {
				t.Fatalf("second wd aborted: %v", err)
			}
			if !tc.ok && !errors.Is(err, chaos.ErrRetriesExhausted) {
				t.Fatalf("second wd err = %v, want retries exhausted", err)
			}
		})
	}
}
