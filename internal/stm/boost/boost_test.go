package boost_test

import (
	"fmt"
	"sync"
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/spec"
	"pushpull/internal/stm/boost"
	"pushpull/internal/trace"
)

func TestFig2PutGetSemantics(t *testing.T) {
	rt := boost.NewRuntime()
	ht := boost.NewMap(rt, "ht", 1)
	err := rt.Atomic("fig2", func(tx *boost.Txn) error {
		old, present, err := ht.Put(tx, 1, 10)
		if err != nil {
			return err
		}
		if present {
			return fmt.Errorf("fresh key reported present (old=%d)", old)
		}
		v, present, err := ht.Get(tx, 1)
		if err != nil {
			return err
		}
		if !present || v != 10 {
			return fmt.Errorf("get = %d,%v", v, present)
		}
		old, present, err = ht.Put(tx, 1, 20)
		if err != nil {
			return err
		}
		if !present || old != 10 {
			return fmt.Errorf("overwrite old = %d,%v", old, present)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := ht.Base().Get(1); !ok || v != 20 {
		t.Fatalf("base map = %d,%v", v, ok)
	}
}

func TestAbortRunsInverses(t *testing.T) {
	rt := boost.NewRuntime()
	ht := boost.NewMap(rt, "ht", 1)
	// Pre-populate key 1.
	if err := rt.Atomic("seed", func(tx *boost.Txn) error {
		_, _, err := ht.Put(tx, 1, 100)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	// Both Figure 2 abort cases: overwrite (restore old) and fresh
	// insert (remove).
	err := rt.Atomic("aborter", func(tx *boost.Txn) error {
		if _, _, err := ht.Put(tx, 1, 999); err != nil { // overwrite case
			return err
		}
		if _, _, err := ht.Put(tx, 2, 222); err != nil { // fresh case
			return err
		}
		return boom
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if v, ok := ht.Base().Get(1); !ok || v != 100 {
		t.Fatalf("key 1 not restored: %d,%v", v, ok)
	}
	if ht.Base().Contains(2) {
		t.Fatal("key 2 not removed by inverse")
	}
	if rt.Stats().Aborts != 1 {
		t.Fatalf("stats %+v", rt.Stats())
	}
}

func TestConcurrentDistinctKeysProceed(t *testing.T) {
	rt := boost.NewRuntime()
	s := boost.NewSet(rt, "set", 2)
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := int64(g*perG + i)
				if err := rt.Atomic("adder", func(tx *boost.Txn) error {
					ins, err := s.Add(tx, k)
					if err != nil {
						return err
					}
					if !ins {
						return fmt.Errorf("key %d already present", k)
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Base().Len(); got != goroutines*perG {
		t.Fatalf("set size = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterAtomicity(t *testing.T) {
	rt := boost.NewRuntime()
	ctr := boost.NewCounter(rt, "ctr")
	const goroutines = 6
	const perG = 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := rt.Atomic("inc", func(tx *boost.Txn) error {
					return ctr.Inc(tx)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ctr.Value() != goroutines*perG {
		t.Fatalf("counter = %d", ctr.Value())
	}
}

// TestDeadlockAvoidance: opposite lock orders on two keys; abstract
// lock timeouts must abort-and-retry through to completion.
func TestDeadlockAvoidance(t *testing.T) {
	rt := boost.NewRuntime()
	rt.LockSpins = 8
	ht := boost.NewMap(rt, "ht", 3)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a, b := int64(g), int64(1-g)
			for i := 0; i < 200; i++ {
				if err := rt.Atomic("xfer", func(tx *boost.Txn) error {
					va, _, err := ht.Get(tx, a)
					if err != nil {
						return err
					}
					vb, _, err := ht.Get(tx, b)
					if err != nil {
						return err
					}
					if _, _, err := ht.Put(tx, a, va+1); err != nil {
						return err
					}
					_, _, err = ht.Put(tx, b, vb+1)
					return err
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	v0, _ := ht.Base().Get(0)
	v1, _ := ht.Base().Get(1)
	if v0+v1 != 2*2*200 {
		t.Fatalf("sum = %d (lost updates under deadlock recovery)", v0+v1)
	}
	t.Logf("aborts due to lock timeout: %d", rt.Stats().Aborts)
}

// TestCertifiedRun: a concurrent boosted workload certified operation
// by operation on the shadow Push/Pull machine — the mechanical Figure
// 2 correctness argument.
func TestCertifiedRun(t *testing.T) {
	reg := spec.NewRegistry()
	reg.Register("ht", adt.Map{})
	reg.Register("set", adt.Set{})
	rt := boost.NewRuntime()
	rt.Recorder = trace.NewRecorder(reg)
	ht := boost.NewMap(rt, "ht", 4)
	s := boost.NewSet(rt, "set", 5)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := int64((g*3 + i) % 10)
				err := rt.Atomic(fmt.Sprintf("b%d-%d", g, i), func(tx *boost.Txn) error {
					v, present, err := ht.Get(tx, k)
					if err != nil {
						return err
					}
					if !present {
						v = 0
					}
					if _, _, err := ht.Put(tx, k, v+1); err != nil {
						return err
					}
					_, err = s.Add(tx, k)
					return err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := rt.Recorder.FinalCheck(); err != nil {
		for _, v := range rt.Recorder.Violations() {
			t.Log(v)
		}
		t.Fatal(err)
	}
	t.Logf("certified %d commits; stats %+v", rt.Recorder.Commits(), rt.Stats())
}

func BenchmarkBoostDistinctKeys(b *testing.B) {
	rt := boost.NewRuntime()
	s := boost.NewSet(rt, "set", 6)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := int64(i % 4096)
			i++
			_ = rt.Atomic("bench", func(tx *boost.Txn) error {
				_, err := s.Add(tx, k)
				return err
			})
		}
	})
}
