package boost

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"pushpull/internal/locks"
	"pushpull/internal/ops"
)

// ErrKindMismatch reports a typed operation against a cell of another
// kind (qpush on a counter, incr on a set). It is a permanent client
// error, not a conflict: Atomic aborts without retrying.
var ErrKindMismatch = errors.New("boost: typed operation against cell of another kind")

// Typed is the boosted realization of adt.TypedKV — the "ops" keyspace
// of counter, set, and queue cells whose commuting operations share
// their cells' abstract locks instead of conflicting on them.
//
// Isolation comes from the lock classes (internal/ops): one cell is
// held either exclusively or by owners who all declared the same
// commute class. Concurrency-safe bookkeeping under that sharing:
//
//   - counter cells keep a committed value plus per-owner pending
//     deltas; add/wd accumulate a delta, commit folds it in, abort
//     subtracts it back. Withdraw guards with classic escrow: the
//     balance minus every OTHER owner's pending withdrawals must cover
//     the amount, so the operation stays allowed in every commit order
//     of its commuting peers (the shadow machine re-checks this at
//     certification).
//   - set cells keep committed membership plus per-owner pending
//     membership overrides (+1 add / -1 remove) per member — the
//     support sets that rewind blind sadd/srem, which have no
//     syntactic inverse. Classes make concurrent holders single-method,
//     so every live override on a member agrees and commit folds
//     commute.
//   - queue cells are exclusive-only: push/pop mutate eagerly with undo
//     closures, exactly like the boosted Map.
//
// Partial operations surface their boundary as ErrConflict — a wd
// below balance or a qpop on empty aborts and retries, and exhausts the
// retry budget if the state never allows it. That is the Limits-paper
// behavior: partiality is a conflict, not a commute.
type Typed struct {
	rt *Runtime
	// Name is the certification object name (the adt.TypedKV binding,
	// normally ops.Obj).
	Name string

	mu    sync.Mutex
	cells map[int64]*tcell
}

type cellKind uint8

const (
	kindCtr cellKind = iota + 1
	kindSet
	kindQueue
)

// tcell is one typed cell. ever marks that at least one transaction
// committed an effect here: cells created only by in-flight (later
// aborted) transactions are garbage-collected back to absence so an
// aborted creator does not leak its kind choice into the spec state.
type tcell struct {
	kind cellKind
	ever bool

	// Counter: committed value + per-owner pending deltas.
	val    int64
	deltas map[locks.Owner]int64

	// Set: per-member support entries.
	members map[int64]*tmember

	// Queue: eager contents (exclusive lock ⇒ no pending split needed).
	q []int64
}

// tmember is one set member's support entry: committed membership plus
// per-owner pending overrides (+1 after a pending sadd, -1 after a
// pending srem; an owner's later op overwrites its earlier one).
type tmember struct {
	committed bool
	pend      map[locks.Owner]int8
}

// NewTyped builds the boosted typed keyspace in the runtime.
func NewTyped(rt *Runtime, name string) *Typed {
	return &Typed{rt: rt, Name: name, cells: make(map[int64]*tcell)}
}

func opsKind(c ops.Code) cellKind {
	switch c {
	case ops.Add, ops.CGet, ops.Wd, ops.CAS:
		return kindCtr
	case ops.SAdd, ops.SRem, ops.SCont:
		return kindSet
	default:
		return kindQueue
	}
}

// cellLocked fetches key's cell, creating it with the wanted kind when
// create is set. Callers hold ob.mu.
func (ob *Typed) cellLocked(key int64, kind cellKind, create bool) (*tcell, error) {
	c := ob.cells[key]
	if c == nil {
		if !create {
			return nil, nil
		}
		c = &tcell{kind: kind}
		switch kind {
		case kindCtr:
			c.deltas = make(map[locks.Owner]int64)
		case kindSet:
			c.members = make(map[int64]*tmember)
		}
		ob.cells[key] = c
		return c, nil
	}
	if c.kind != kind {
		return nil, fmt.Errorf("%w: cell %d", ErrKindMismatch, key)
	}
	return c, nil
}

// gcLocked drops a cell no committed transaction ever touched once its
// pending state empties — the runtime mirror of an UNPUSHed creation.
func (ob *Typed) gcLocked(key int64, c *tcell) {
	if c.ever || len(c.deltas) > 0 || len(c.members) > 0 || len(c.q) > 0 {
		return
	}
	delete(ob.cells, key)
}

// Do executes one typed operation inside t: acquire the cell's
// abstract lock under the op's commute class, mutate/pend with undo and
// commit-fold hooks, then certify the spec operation at its
// linearization point. shared reports a commute hit.
func (ob *Typed) Do(t *Txn, c ops.Code, key uint64, a, b int64) (ret int64, shared bool, err error) {
	d, ok := ops.ByCode(c)
	if !ok || d.Method == "" {
		return 0, false, fmt.Errorf("boost: code %d is not a typed operation", c)
	}
	shared, err = t.lockClass(locks.Key{Obj: ob.Name, K: int64(key)}, d.Class)
	if err != nil {
		return 0, false, err
	}
	t.rt.typedOps.Add(1)
	if shared {
		t.rt.commuteHits.Add(1)
	}
	k := int64(key)
	switch c {
	case ops.Add:
		err = ob.ctrPend(t, k, a)
	case ops.CGet:
		ret, err = ob.ctrGet(t, k)
	case ops.Wd:
		err = ob.ctrWd(t, k, a)
	case ops.CAS:
		ret, err = ob.ctrCAS(t, k, a, b)
	case ops.SAdd:
		err = ob.setPend(t, k, a, +1)
	case ops.SRem:
		err = ob.setPend(t, k, a, -1)
	case ops.SCont:
		ret, err = ob.setContains(t, k, a)
	case ops.QPush:
		err = ob.qPush(t, k, a)
	case ops.QPop:
		ret, err = ob.qPop(t, k)
	default:
		err = fmt.Errorf("boost: unhandled typed code %d", c)
	}
	if err != nil {
		return 0, false, err
	}
	method, args, _ := ops.SpecOp(c, key, a, b)
	if err := t.certify(ob.Name, method, args, ret); err != nil {
		return 0, false, err
	}
	return ret, shared, nil
}

// ctrPend accumulates a pending delta for t on key's counter, with the
// undo and commit-fold bookkeeping shared by add, wd, and cas.
func (ob *Typed) ctrPend(t *Txn, key, d int64) error {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	c, err := ob.cellLocked(key, kindCtr, true)
	if err != nil {
		return err
	}
	ob.ctrPendLocked(t, key, c, d)
	return nil
}

func (ob *Typed) ctrPendLocked(t *Txn, key int64, c *tcell, d int64) {
	o := t.owner
	if _, live := c.deltas[o]; !live {
		// First pending op by this owner: fold on commit.
		t.onCommit(func() {
			ob.mu.Lock()
			defer ob.mu.Unlock()
			if dv, ok := c.deltas[o]; ok {
				c.val += dv
				delete(c.deltas, o)
			}
			c.ever = true
		})
	}
	c.deltas[o] += d
	t.undo = append(t.undo, func() {
		ob.mu.Lock()
		defer ob.mu.Unlock()
		c.deltas[o] -= d
		ob.unpendCtrLocked(key, c, o)
	})
}

// unpendCtrLocked clears a zeroed delta entry (aborts only: the commit
// hook never ran) and garbage-collects a cell left untouched.
func (ob *Typed) unpendCtrLocked(key int64, c *tcell, o locks.Owner) {
	if c.deltas[o] == 0 {
		delete(c.deltas, o)
	}
	ob.gcLocked(key, c)
}

func (ob *Typed) ctrGet(t *Txn, key int64) (int64, error) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	c, err := ob.cellLocked(key, kindCtr, false)
	if err != nil {
		return 0, err
	}
	if c == nil {
		return 0, nil
	}
	return c.val + c.deltas[t.owner], nil
}

func (ob *Typed) ctrWd(t *Txn, key, n int64) error {
	if n < 0 {
		return fmt.Errorf("boost: wd of negative amount %d", n)
	}
	ob.mu.Lock()
	defer ob.mu.Unlock()
	c, err := ob.cellLocked(key, kindCtr, true)
	if err != nil {
		return err
	}
	// Escrow guard: our own pending delta counts in full (our ops
	// serialize with us), other holders' pending deposits count for
	// NOTHING and their pending withdrawals in full — so the withdraw
	// stays allowed in every commit order of the commuting holders.
	avail := c.val + c.deltas[t.owner]
	for o, d := range c.deltas {
		if o != t.owner && d < 0 {
			avail += d
		}
	}
	if avail < n {
		ob.gcLocked(key, c)
		return ErrConflict
	}
	ob.ctrPendLocked(t, key, c, -n)
	return nil
}

func (ob *Typed) ctrCAS(t *Txn, key, expect, newv int64) (int64, error) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	c, err := ob.cellLocked(key, kindCtr, false)
	if err != nil {
		return 0, err
	}
	old := int64(0)
	if c != nil {
		old = c.val + c.deltas[t.owner]
	}
	if old != expect {
		// No write: a failed cas does not even create the cell (the
		// spec's Apply leaves the state untouched).
		return old, nil
	}
	if c == nil {
		if c, err = ob.cellLocked(key, kindCtr, true); err != nil {
			return 0, err
		}
	}
	ob.ctrPendLocked(t, key, c, newv-old)
	return old, nil
}

func (ob *Typed) setPend(t *Txn, key, member int64, dir int8) error {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	c, err := ob.cellLocked(key, kindSet, true)
	if err != nil {
		return err
	}
	m := c.members[member]
	if m == nil {
		m = &tmember{pend: make(map[locks.Owner]int8)}
		c.members[member] = m
	}
	o := t.owner
	old, had := m.pend[o]
	if !had {
		// First pending override by this owner on this member.
		t.onCommit(func() {
			ob.mu.Lock()
			defer ob.mu.Unlock()
			if p, ok := m.pend[o]; ok {
				m.committed = p > 0
				delete(m.pend, o)
			}
			ob.gcMemberLocked(c, member, m)
			c.ever = true
		})
	}
	m.pend[o] = dir
	t.undo = append(t.undo, func() {
		ob.mu.Lock()
		defer ob.mu.Unlock()
		if had {
			m.pend[o] = old
		} else {
			delete(m.pend, o)
		}
		ob.gcMemberLocked(c, member, m)
		ob.gcLocked(key, c)
	})
	return nil
}

func (ob *Typed) gcMemberLocked(c *tcell, member int64, m *tmember) {
	if !m.committed && len(m.pend) == 0 {
		delete(c.members, member)
	}
}

func (ob *Typed) setContains(t *Txn, key, member int64) (int64, error) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	c, err := ob.cellLocked(key, kindSet, false)
	if err != nil {
		return 0, err
	}
	if c == nil {
		return 0, nil
	}
	m := c.members[member]
	if m == nil {
		return 0, nil
	}
	in := m.committed
	if p, ok := m.pend[t.owner]; ok {
		in = p > 0
	}
	if in {
		return 1, nil
	}
	return 0, nil
}

func (ob *Typed) qPush(t *Txn, key, v int64) error {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	c, err := ob.cellLocked(key, kindQueue, true)
	if err != nil {
		return err
	}
	c.q = append(c.q, v)
	t.undo = append(t.undo, func() {
		ob.mu.Lock()
		defer ob.mu.Unlock()
		c.q = c.q[:len(c.q)-1]
		ob.gcLocked(key, c)
	})
	t.onCommit(func() {
		ob.mu.Lock()
		defer ob.mu.Unlock()
		c.ever = true
	})
	return nil
}

func (ob *Typed) qPop(t *Txn, key int64) (int64, error) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	c, err := ob.cellLocked(key, kindQueue, false)
	if err != nil {
		return 0, err
	}
	if c == nil || len(c.q) == 0 {
		// Pop on empty is partial: conflict, retry, and exhaust the
		// budget if the queue never fills.
		return 0, ErrConflict
	}
	front := c.q[0]
	c.q = append([]int64(nil), c.q[1:]...)
	t.undo = append(t.undo, func() {
		ob.mu.Lock()
		defer ob.mu.Unlock()
		c.q = append([]int64{front}, c.q...)
	})
	t.onCommit(func() {
		ob.mu.Lock()
		defer ob.mu.Unlock()
		c.ever = true
	})
	return front, nil
}

// Dump serializes the committed state in the canonical format of
// adt.TypedKV's spec state String() — "{k:c<v> k:s{m,...} k:q[v,...]}"
// sorted by key — so quiescent runtime state compares byte-for-byte
// with a spec-side replay (recovery images, follower folds).
func (ob *Typed) Dump() string {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	keys := make([]int64, 0, len(ob.cells))
	for k := range ob.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		c := ob.cells[k]
		switch c.kind {
		case kindCtr:
			parts = append(parts, fmt.Sprintf("%d:c%d", k, c.val))
		case kindSet:
			ms := make([]int64, 0, len(c.members))
			for m, e := range c.members {
				if e.committed {
					ms = append(ms, m)
				}
			}
			sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
			b := make([]string, len(ms))
			for i, m := range ms {
				b[i] = fmt.Sprintf("%d", m)
			}
			parts = append(parts, fmt.Sprintf("%d:s{%s}", k, strings.Join(b, ",")))
		case kindQueue:
			b := make([]string, len(c.q))
			for i, v := range c.q {
				b[i] = fmt.Sprintf("%d", v)
			}
			parts = append(parts, fmt.Sprintf("%d:q[%s]", k, strings.Join(b, ",")))
		}
	}
	return "{" + strings.Join(parts, " ") + "}"
}
