package boost_test

import (
	"fmt"
	"sync"
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/spec"
	"pushpull/internal/stm/boost"
	"pushpull/internal/trace"
)

func TestSetRemoveContainsSurface(t *testing.T) {
	rt := boost.NewRuntime()
	s := boost.NewSet(rt, "set", 1)
	err := rt.Atomic("surface", func(tx *boost.Txn) error {
		ins, err := s.Add(tx, 5)
		if err != nil || !ins {
			return fmt.Errorf("add: %v %v", ins, err)
		}
		present, err := s.Contains(tx, 5)
		if err != nil || !present {
			return fmt.Errorf("contains: %v %v", present, err)
		}
		removed, err := s.Remove(tx, 5)
		if err != nil || !removed {
			return fmt.Errorf("remove: %v %v", removed, err)
		}
		removed, err = s.Remove(tx, 5)
		if err != nil || removed {
			return fmt.Errorf("second remove: %v %v", removed, err)
		}
		present, err = s.Contains(tx, 5)
		if err != nil || present {
			return fmt.Errorf("contains after remove: %v %v", present, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Base().Len() != 0 {
		t.Fatal("set not empty")
	}
}

func TestSetAbortRestoresRemove(t *testing.T) {
	rt := boost.NewRuntime()
	s := boost.NewSet(rt, "set", 2)
	if err := rt.Atomic("seed", func(tx *boost.Txn) error {
		_, err := s.Add(tx, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	if err := rt.Atomic("ab", func(tx *boost.Txn) error {
		if _, err := s.Remove(tx, 1); err != nil {
			return err
		}
		return boom
	}); err != boom {
		t.Fatalf("err = %v", err)
	}
	if !s.Base().Contains(1) {
		t.Fatal("aborted remove not undone")
	}
}

func TestMapRemoveSurface(t *testing.T) {
	rt := boost.NewRuntime()
	m := boost.NewMap(rt, "ht", 3)
	err := rt.Atomic("rm", func(tx *boost.Txn) error {
		if _, _, err := m.Put(tx, 1, 10); err != nil {
			return err
		}
		old, present, err := m.Remove(tx, 1)
		if err != nil || !present || old != 10 {
			return fmt.Errorf("remove: %d %v %v", old, present, err)
		}
		_, present, err = m.Remove(tx, 1)
		if err != nil || present {
			return fmt.Errorf("second remove: %v %v", present, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCounterGetAndAbort(t *testing.T) {
	rt := boost.NewRuntime()
	c := boost.NewCounter(rt, "ctr")
	boom := fmt.Errorf("boom")
	if err := rt.Atomic("ab", func(tx *boost.Txn) error {
		if err := c.Inc(tx); err != nil {
			return err
		}
		v, err := c.Get(tx)
		if err != nil {
			return err
		}
		if v != 1 {
			return fmt.Errorf("get = %d", v)
		}
		return boom
	}); err != boom {
		t.Fatalf("err = %v", err)
	}
	if c.Value() != 0 {
		t.Fatalf("counter = %d after abort", c.Value())
	}
}

// TestCertifiedMixedObjects runs set+map+counter in one certified
// transaction stream under concurrency.
func TestCertifiedMixedObjects(t *testing.T) {
	reg := spec.NewRegistry()
	reg.Register("set", adt.Set{})
	reg.Register("ht", adt.Map{})
	reg.Register("ctr", adt.Counter{})
	rt := boost.NewRuntime()
	rt.Recorder = trace.NewRecorder(reg)
	s := boost.NewSet(rt, "set", 4)
	m := boost.NewMap(rt, "ht", 5)
	c := boost.NewCounter(rt, "ctr")

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := int64((g*4 + i) % 9)
				err := rt.Atomic(fmt.Sprintf("mix%d-%d", g, i), func(tx *boost.Txn) error {
					if _, err := s.Add(tx, k); err != nil {
						return err
					}
					if _, _, err := m.Put(tx, k, k*2); err != nil {
						return err
					}
					return c.Inc(tx)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := rt.Recorder.FinalCheck(); err != nil {
		for _, v := range rt.Recorder.Violations() {
			t.Log(v)
		}
		t.Fatal(err)
	}
	if c.Value() != 3*25 {
		t.Fatalf("counter = %d", c.Value())
	}
}

// TestLockTimeoutSurfacesAsRetry: with minimal spins, two whole-object
// counter transactions force timeouts that resolve by retry.
func TestLockTimeoutSurfacesAsRetry(t *testing.T) {
	rt := boost.NewRuntime()
	rt.LockSpins = 1
	c := boost.NewCounter(rt, "ctr")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := rt.Atomic("inc", func(tx *boost.Txn) error {
					return c.Inc(tx)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 400 {
		t.Fatalf("counter = %d (stats %+v)", c.Value(), rt.Stats())
	}
}
