// Package irrevoc implements irrevocable transactions (Welc, Saha,
// Adl-Tabatabai, SPAA'08) — the §6.4 mixed model: at most one
// pessimistic, never-aborting ("irrevocable") transaction runs among
// ordinary optimistic transactions over the same versioned-lock word
// memory.
//
//   - Optimistic transactions follow the TL2 protocol: snapshot reads,
//     buffered writes, commit-time lock/validate/apply. In Push/Pull
//     terms they PUSH at commit and abort by UNAPP.
//   - The irrevocable transaction holds the global irrevocability token
//     and runs eagerly: it acquires each word's versioned lock at first
//     access and writes in place with an undo log kept only for
//     user-initiated failures. The TM never aborts it; conflicting
//     optimists see locked words or bumped versions and retry. In
//     Push/Pull terms it "PUSHes its effects instantaneously after APP".
package irrevoc

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pushpull/internal/trace"
)

// ErrConflict aborts an optimistic attempt; Atomic retries it.
var ErrConflict = errors.New("irrevoc: conflict")

const lockBit = uint64(1)

func isLocked(v uint64) bool      { return v&lockBit != 0 }
func versionOf(v uint64) uint64   { return v >> 1 }
func makeVersion(v uint64) uint64 { return v << 1 }

type word struct {
	vlock atomic.Uint64
	value atomic.Int64
}

// Stats counts memory activity.
type Stats struct {
	OptCommits  uint64
	OptAborts   uint64
	IrrevRuns   uint64
	IrrevAborts uint64 // user errors only; the TM itself never aborts one
}

// Memory is the shared word array.
type Memory struct {
	clock atomic.Uint64
	words []word
	token sync.Mutex // the single irrevocability token

	// Name is the certification object name (an adt.Register binding).
	Name string
	// Recorder, when non-nil, certifies commits on a shadow machine.
	Recorder *trace.Recorder

	optCommits  atomic.Uint64
	optAborts   atomic.Uint64
	irrevRuns   atomic.Uint64
	irrevAborts atomic.Uint64
}

// New allocates a memory of n words.
func New(n int) *Memory {
	return &Memory{words: make([]word, n), Name: "mem"}
}

// Stats returns activity counters.
func (m *Memory) Stats() Stats {
	return Stats{OptCommits: m.optCommits.Load(), OptAborts: m.optAborts.Load(),
		IrrevRuns: m.irrevRuns.Load(), IrrevAborts: m.irrevAborts.Load()}
}

// ReadNoTx reads a word non-transactionally.
func (m *Memory) ReadNoTx(addr int) int64 { return m.words[addr].value.Load() }

// ---------- optimistic side (TL2 protocol) ----------

// Tx is one optimistic attempt.
type Tx struct {
	mem     *Memory
	rv      uint64
	reads   []readRec
	writes  map[int]int64
	program []progOp
}

type readRec struct {
	addr int
	val  int64
}

type progOp struct {
	isWrite bool
	addr    int
	val     int64
}

// Read returns the snapshot value of addr.
func (tx *Tx) Read(addr int) (int64, error) {
	if v, ok := tx.writes[addr]; ok {
		tx.program = append(tx.program, progOp{addr: addr, val: v})
		return v, nil
	}
	w := &tx.mem.words[addr]
	v1 := w.vlock.Load()
	if isLocked(v1) || versionOf(v1) > tx.rv {
		return 0, ErrConflict
	}
	val := w.value.Load()
	if w.vlock.Load() != v1 {
		return 0, ErrConflict
	}
	tx.reads = append(tx.reads, readRec{addr: addr, val: val})
	tx.program = append(tx.program, progOp{addr: addr, val: val})
	return val, nil
}

// Write buffers a store.
func (tx *Tx) Write(addr int, val int64) error {
	if tx.writes == nil {
		tx.writes = make(map[int]int64)
	}
	tx.writes[addr] = val
	tx.program = append(tx.program, progOp{isWrite: true, addr: addr, val: val})
	return nil
}

// Atomic runs fn optimistically with retry; it coexists with (and
// defers to) any running irrevocable transaction purely through word
// versions and locks.
func (m *Memory) Atomic(name string, fn func(*Tx) error) error {
	for {
		tx := &Tx{mem: m, rv: m.clock.Load()}
		err := fn(tx)
		if err == nil {
			err = m.commitOpt(name, tx)
		}
		if err == nil {
			m.optCommits.Add(1)
			return nil
		}
		if !errors.Is(err, ErrConflict) {
			m.optAborts.Add(1)
			return err
		}
		m.optAborts.Add(1)
		runtime.Gosched()
	}
}

func (m *Memory) commitOpt(name string, tx *Tx) error {
	if len(tx.writes) == 0 {
		validate := func() ([]trace.OpRecord, bool) {
			for _, r := range tx.reads {
				v := m.words[r.addr].vlock.Load()
				if isLocked(v) || versionOf(v) > tx.rv {
					return nil, false
				}
			}
			return m.certOps(tx), true
		}
		if m.Recorder != nil {
			if !m.Recorder.AtomicTxnFunc(name, validate) {
				return ErrConflict
			}
			return nil
		}
		if _, ok := validate(); !ok {
			return ErrConflict
		}
		return nil
	}
	addrs := make([]int, 0, len(tx.writes))
	for a := range tx.writes {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)
	var locked []int
	unlock := func(apply bool, ver uint64) {
		for _, a := range locked {
			w := &m.words[a]
			if apply {
				w.value.Store(tx.writes[a])
				w.vlock.Store(makeVersion(ver))
			} else {
				w.vlock.Store(w.vlock.Load() &^ lockBit)
			}
		}
	}
	for _, a := range addrs {
		w := &m.words[a]
		ok := false
		for spin := 0; spin < 32; spin++ {
			v := w.vlock.Load()
			if isLocked(v) {
				runtime.Gosched()
				continue
			}
			if versionOf(v) > tx.rv {
				unlock(false, 0)
				return ErrConflict
			}
			if w.vlock.CompareAndSwap(v, v|lockBit) {
				ok = true
				break
			}
		}
		if !ok {
			unlock(false, 0)
			return ErrConflict
		}
		locked = append(locked, a)
	}
	wv := m.clock.Add(1)
	if wv != tx.rv+1 {
		for _, r := range tx.reads {
			v := m.words[r.addr].vlock.Load()
			if versionOf(v) > tx.rv {
				unlock(false, 0)
				return ErrConflict
			}
			if isLocked(v) {
				if _, mine := tx.writes[r.addr]; !mine {
					unlock(false, 0)
					return ErrConflict
				}
			}
		}
	}
	if m.Recorder != nil {
		// Revalidate the read set inside the recorder's critical section
		// so the certified order matches the lock-protocol serialization
		// order (see the same pattern in internal/stm/tl2).
		revalidated := false
		certified := m.Recorder.AtomicTxnFunc(name, func() ([]trace.OpRecord, bool) {
			for _, r := range tx.reads {
				v := m.words[r.addr].vlock.Load()
				if versionOf(v) > tx.rv {
					return nil, false
				}
				if isLocked(v) {
					if _, mine := tx.writes[r.addr]; !mine {
						return nil, false
					}
				}
			}
			revalidated = true
			return m.certOps(tx), true
		})
		if !certified {
			if revalidated {
				unlock(true, wv)
				return fmt.Errorf("irrevoc: optimistic certification failed: %w", m.Recorder.Err())
			}
			unlock(false, 0)
			return ErrConflict
		}
	}
	unlock(true, wv)
	return nil
}

func (m *Memory) certOps(tx *Tx) []trace.OpRecord {
	current := make(map[int]int64)
	ops := make([]trace.OpRecord, 0, len(tx.program))
	lookup := func(addr int) int64 {
		if v, ok := current[addr]; ok {
			return v
		}
		return m.words[addr].value.Load()
	}
	for _, p := range tx.program {
		if p.isWrite {
			old := lookup(p.addr)
			current[p.addr] = p.val
			ops = append(ops, trace.OpRecord{Obj: m.Name, Method: "write",
				Args: []int64{int64(p.addr), p.val}, Ret: old})
		} else {
			ops = append(ops, trace.OpRecord{Obj: m.Name, Method: "read",
				Args: []int64{int64(p.addr)}, Ret: p.val})
		}
	}
	return ops
}

// ---------- irrevocable side ----------

// IrrevTx is the running irrevocable transaction: eager word locking,
// in-place writes, no TM-initiated aborts.
type IrrevTx struct {
	mem  *Memory
	held map[int]uint64 // addr -> pre-lock version
	undo []readRec
	sess *trace.Session
}

// Read acquires addr's lock (waiting out optimistic committers) and
// reads in place.
func (tx *IrrevTx) Read(addr int) (int64, error) {
	if err := tx.lockWord(addr); err != nil {
		return 0, err
	}
	v := tx.mem.words[addr].value.Load()
	if tx.sess != nil {
		if !tx.sess.Op(tx.mem.Name, "read", []int64{int64(addr)}, v) {
			return 0, fmt.Errorf("irrevoc: read certification failed: %w", tx.mem.Recorder.Err())
		}
	}
	return v, nil
}

// Write acquires addr's lock and writes in place, logging the old value
// for user-error rollback.
func (tx *IrrevTx) Write(addr int, val int64) error {
	if err := tx.lockWord(addr); err != nil {
		return err
	}
	w := &tx.mem.words[addr]
	old := w.value.Load()
	tx.undo = append(tx.undo, readRec{addr: addr, val: old})
	w.value.Store(val)
	if tx.sess != nil {
		if !tx.sess.Op(tx.mem.Name, "write", []int64{int64(addr), val}, old) {
			return fmt.Errorf("irrevoc: write certification failed: %w", tx.mem.Recorder.Err())
		}
	}
	return nil
}

// lockWord spins until the word's versioned lock is ours. The
// irrevocable transaction never gives up: optimistic holders release
// their commit locks in bounded time.
func (tx *IrrevTx) lockWord(addr int) error {
	if _, mine := tx.held[addr]; mine {
		return nil
	}
	w := &tx.mem.words[addr]
	for {
		v := w.vlock.Load()
		if !isLocked(v) && w.vlock.CompareAndSwap(v, v|lockBit) {
			tx.held[addr] = versionOf(v)
			return nil
		}
		runtime.Gosched()
	}
}

// AtomicIrrevocable runs fn as the (single) irrevocable transaction.
// The TM never aborts it; only a user error rolls it back (via the undo
// log) before the error is returned.
func (m *Memory) AtomicIrrevocable(name string, fn func(*IrrevTx) error) error {
	m.token.Lock()
	defer m.token.Unlock()
	m.irrevRuns.Add(1)
	tx := &IrrevTx{mem: m, held: make(map[int]uint64)}
	if m.Recorder != nil {
		tx.sess = m.Recorder.Begin(name)
	}
	err := fn(tx)
	if err != nil {
		// User failure: roll back in place, release with old versions.
		for i := len(tx.undo) - 1; i >= 0; i-- {
			m.words[tx.undo[i].addr].value.Store(tx.undo[i].val)
		}
		if tx.sess != nil {
			tx.sess.Abort()
		}
		for addr, ver := range tx.held {
			m.words[addr].vlock.Store(makeVersion(ver))
		}
		m.irrevAborts.Add(1)
		return err
	}
	if tx.sess != nil && !tx.sess.Commit() {
		err = fmt.Errorf("irrevoc: commit certification failed: %w", m.Recorder.Err())
	}
	// Release every held word with a fresh version so optimistic
	// snapshots that overlapped us revalidate.
	wv := m.clock.Add(1)
	for addr := range tx.held {
		m.words[addr].vlock.Store(makeVersion(wv))
	}
	return err
}
