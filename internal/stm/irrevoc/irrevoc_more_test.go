package irrevoc_test

import (
	"sync"
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/spec"
	"pushpull/internal/stm/irrevoc"
	"pushpull/internal/trace"
)

// TestReadOnlyOptimisticPath: read-only transactions skip the write
// protocol entirely and still observe consistent snapshots.
func TestReadOnlyOptimisticPath(t *testing.T) {
	m := irrevoc.New(4)
	if err := m.Atomic("w", func(tx *irrevoc.Tx) error {
		if err := tx.Write(0, 10); err != nil {
			return err
		}
		return tx.Write(1, 20)
	}); err != nil {
		t.Fatal(err)
	}
	var a, b int64
	if err := m.Atomic("ro", func(tx *irrevoc.Tx) error {
		var err error
		if a, err = tx.Read(0); err != nil {
			return err
		}
		b, err = tx.Read(1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if a != 10 || b != 20 {
		t.Fatalf("snapshot = %d,%d", a, b)
	}
	if m.Stats().OptCommits != 2 {
		t.Fatalf("stats %+v", m.Stats())
	}
}

// TestReadOnlyCertifiedSnapshot: read-only commits certify through the
// recorder's critical section (the consistent-snapshot discipline).
func TestReadOnlyCertifiedSnapshot(t *testing.T) {
	reg := spec.NewRegistry()
	reg.Register("mem", adt.Register{})
	m := irrevoc.New(8)
	m.Recorder = trace.NewRecorder(reg)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if err := m.AtomicIrrevocable("irr", func(tx *irrevoc.IrrevTx) error {
				v, err := tx.Read(0)
				if err != nil {
					return err
				}
				if err := tx.Write(0, v+1); err != nil {
					return err
				}
				w, err := tx.Read(1)
				if err != nil {
					return err
				}
				return tx.Write(1, w+1)
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			if err := m.Atomic("ro", func(tx *irrevoc.Tx) error {
				a, err := tx.Read(0)
				if err != nil {
					return err
				}
				b, err := tx.Read(1)
				if err != nil {
					return err
				}
				if a != b {
					t.Errorf("torn snapshot: %d vs %d", a, b)
				}
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := m.Recorder.FinalCheck(); err != nil {
		for _, v := range m.Recorder.Violations() {
			t.Log(v)
		}
		t.Fatal(err)
	}
}

// TestIrrevocableSerializesWithItself: the token admits one irrevocable
// transaction at a time; totals stay exact under parallelism.
func TestIrrevocableSerializesWithItself(t *testing.T) {
	m := irrevoc.New(2)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := m.AtomicIrrevocable("irr", func(tx *irrevoc.IrrevTx) error {
					v, err := tx.Read(0)
					if err != nil {
						return err
					}
					return tx.Write(0, v+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := m.ReadNoTx(0); got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
}
