package irrevoc_test

import (
	"fmt"
	"sync"
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/spec"
	"pushpull/internal/stm/irrevoc"
	"pushpull/internal/trace"
)

func TestOptimisticBasics(t *testing.T) {
	m := irrevoc.New(4)
	if err := m.Atomic("a", func(tx *irrevoc.Tx) error {
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		return tx.Write(0, v+41)
	}); err != nil {
		t.Fatal(err)
	}
	if m.ReadNoTx(0) != 41 {
		t.Fatalf("mem[0] = %d", m.ReadNoTx(0))
	}
}

func TestIrrevocableBasics(t *testing.T) {
	m := irrevoc.New(4)
	if err := m.AtomicIrrevocable("irr", func(tx *irrevoc.IrrevTx) error {
		v, err := tx.Read(1)
		if err != nil {
			return err
		}
		return tx.Write(1, v+7)
	}); err != nil {
		t.Fatal(err)
	}
	if m.ReadNoTx(1) != 7 {
		t.Fatalf("mem[1] = %d", m.ReadNoTx(1))
	}
	if m.Stats().IrrevRuns != 1 {
		t.Fatalf("stats %+v", m.Stats())
	}
}

func TestIrrevocableUserErrorRollsBack(t *testing.T) {
	m := irrevoc.New(4)
	boom := fmt.Errorf("boom")
	if err := m.AtomicIrrevocable("irr", func(tx *irrevoc.IrrevTx) error {
		if err := tx.Write(0, 99); err != nil {
			return err
		}
		return boom
	}); err != boom {
		t.Fatalf("err = %v", err)
	}
	if m.ReadNoTx(0) != 0 {
		t.Fatal("user-error rollback failed")
	}
	// Memory remains usable by optimists afterwards.
	if err := m.Atomic("after", func(tx *irrevoc.Tx) error {
		return tx.Write(0, 1)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMixedWorkloadNeverAbortsIrrevocable: optimists hammer the words
// the irrevocable transaction walks through; the irrevocable side must
// complete every run with zero TM aborts and totals must be exact.
func TestMixedWorkloadNeverAbortsIrrevocable(t *testing.T) {
	m := irrevoc.New(8)
	var wg sync.WaitGroup
	const irrRuns = 20
	const optG = 4
	const optIters = 100

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < irrRuns; i++ {
			if err := m.AtomicIrrevocable("irr", func(tx *irrevoc.IrrevTx) error {
				for a := 0; a < 4; a++ {
					v, err := tx.Read(a)
					if err != nil {
						return err
					}
					if err := tx.Write(a, v+1); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < optG; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < optIters; i++ {
				if err := m.Atomic("opt", func(tx *irrevoc.Tx) error {
					v, err := tx.Read(g % 4)
					if err != nil {
						return err
					}
					return tx.Write(g%4, v+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := m.Stats()
	if st.IrrevAborts != 0 {
		t.Fatalf("irrevocable suffered TM aborts: %+v", st)
	}
	var total int64
	for a := 0; a < 4; a++ {
		total += m.ReadNoTx(a)
	}
	want := int64(irrRuns*4 + optG*optIters)
	if total != want {
		t.Fatalf("total = %d, want %d (lost updates)", total, want)
	}
}

func TestCertifiedMixedRun(t *testing.T) {
	reg := spec.NewRegistry()
	reg.Register("mem", adt.Register{})
	m := irrevoc.New(8)
	m.Recorder = trace.NewRecorder(reg)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			if err := m.AtomicIrrevocable(fmt.Sprintf("irr%d", i), func(tx *irrevoc.IrrevTx) error {
				v, err := tx.Read(i % 8)
				if err != nil {
					return err
				}
				return tx.Write(i%8, v+10)
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if err := m.Atomic(fmt.Sprintf("opt%d-%d", g, i), func(tx *irrevoc.Tx) error {
					v, err := tx.Read((g + i) % 8)
					if err != nil {
						return err
					}
					return tx.Write((g+i)%8, v+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := m.Recorder.FinalCheck(); err != nil {
		for _, v := range m.Recorder.Violations() {
			t.Log(v)
		}
		t.Fatal(err)
	}
	t.Logf("certified %d commits; stats %+v", m.Recorder.Commits(), m.Stats())
}
