package pess_test

import (
	"fmt"
	"sync"
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/spec"
	"pushpull/internal/stm/pess"
	"pushpull/internal/trace"
)

func TestSequential(t *testing.T) {
	m := pess.New(8)
	err := m.Atomic(func(tx *pess.Tx) error {
		if err := tx.Write(0, 7); err != nil {
			return err
		}
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		return tx.Write(1, v*2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.ReadNoTx(0) != 7 || m.ReadNoTx(1) != 14 {
		t.Fatalf("memory = %d,%d", m.ReadNoTx(0), m.ReadNoTx(1))
	}
}

func TestAbortRollsBack(t *testing.T) {
	m := pess.New(4)
	boom := fmt.Errorf("boom")
	if err := m.Atomic(func(tx *pess.Tx) error {
		if err := tx.Write(0, 99); err != nil {
			return err
		}
		return boom
	}); err != boom {
		t.Fatalf("err = %v", err)
	}
	if m.ReadNoTx(0) != 0 {
		t.Fatal("undo log failed to roll back in-place write")
	}
}

func TestConcurrentCounter(t *testing.T) {
	m := pess.New(2)
	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := m.Atomic(func(tx *pess.Tx) error {
					v, err := tx.Read(0)
					if err != nil {
						return err
					}
					return tx.Write(0, v+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := m.ReadNoTx(0); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
}

func TestWaitDieMakesProgress(t *testing.T) {
	// Cross-locking pattern that would deadlock naive 2PL: t1 locks
	// 0→1, t2 locks 1→0; wait-die must resolve it.
	m := pess.New(2)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a, b := g, 1-g
			for i := 0; i < 300; i++ {
				if err := m.Atomic(func(tx *pess.Tx) error {
					va, err := tx.Read(a)
					if err != nil {
						return err
					}
					vb, err := tx.Read(b)
					if err != nil {
						return err
					}
					if err := tx.Write(a, va+1); err != nil {
						return err
					}
					return tx.Write(b, vb+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m.ReadNoTx(0)+m.ReadNoTx(1) != 2*2*300 {
		t.Fatalf("sum = %d", m.ReadNoTx(0)+m.ReadNoTx(1))
	}
}

// TestCertifiedRun: every read/write/commit/abort replayed on the
// shadow Push/Pull machine as the eager APP;PUSH decomposition.
func TestCertifiedRun(t *testing.T) {
	reg := spec.NewRegistry()
	reg.Register("mem", adt.Register{})
	m := pess.New(8)
	m.Recorder = trace.NewRecorder(reg)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				addr := (g + i) % 8
				if err := m.AtomicNamed(fmt.Sprintf("p%d-%d", g, i), func(tx *pess.Tx) error {
					v, err := tx.Read(addr)
					if err != nil {
						return err
					}
					return tx.Write(addr, v+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := m.Recorder.FinalCheck(); err != nil {
		for _, v := range m.Recorder.Violations() {
			t.Log(v)
		}
		t.Fatal(err)
	}
	t.Logf("certified %d commits; stats %+v", m.Recorder.Commits(), m.Stats())
}

func BenchmarkPessHighContention(b *testing.B) {
	m := pess.New(4)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = m.Atomic(func(tx *pess.Tx) error {
				v, err := tx.Read(0)
				if err != nil {
					return err
				}
				return tx.Write(0, v+1)
			})
		}
	})
}
