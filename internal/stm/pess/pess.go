// Package pess is a pessimistic two-phase-locking word STM: reader/
// writer locks per word, in-place (eager) writes with an undo log, and
// wait-die deadlock avoidance. It is the memory-level pessimistic
// counterpart of §6.3.
//
// In Push/Pull terms every operation is published at its linearization
// point — APP immediately followed by PUSH, like boosting — because
// in-place writes are visible in the shared state the moment they
// happen; strict 2PL guarantees PUSH criterion (ii) (concurrent
// uncommitted operations hold disjoint or read-shared words, hence
// commute). Abort runs the undo log: UNPUSH (write back the old value)
// then UNAPP, tail first. Instrumented runs certify that decomposition
// per operation via trace.Session.
package pess

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pushpull/internal/chaos"
	"pushpull/internal/core"
	"pushpull/internal/trace"
)

// ErrConflict aborts the current attempt (wait-die "die"); Atomic
// retries with the original timestamp so the transaction ages and
// eventually wins.
var ErrConflict = errors.New("pess: conflict (die)")

type wordLock struct {
	mu      sync.Mutex
	writer  uint64          // transaction ts holding the write lock (0 none)
	readers map[uint64]bool // transaction ts holding read locks
}

// Stats counts memory-wide activity.
type Stats struct {
	Commits uint64
	Aborts  uint64
}

// Memory is a transactional array of words under strict 2PL.
type Memory struct {
	locks  []wordLock
	values []atomic.Int64

	tsCounter atomic.Uint64

	// Name is the certification object name (an adt.Register binding).
	Name string
	// Recorder, when non-nil, certifies every operation eagerly on a
	// shadow Push/Pull machine.
	Recorder *trace.Recorder
	// Injector, when non-nil, is consulted at SitePessTimeout on every
	// lock acquisition; injected timeouts surface as wait-die "die"
	// (ErrConflict) aborts, forcing the undo-log recovery path.
	Injector chaos.Injector
	// Retry, when non-nil, bounds retries and shapes backoff in
	// AtomicNamed; an exhausted budget returns ErrRetriesExhausted
	// (wrapped).
	Retry *chaos.RetryPolicy
	// Durable, when non-nil, is the commit-path durability barrier:
	// the write-ahead log is flushed before a commit is acknowledged.
	Durable core.Durable

	commits atomic.Uint64
	aborts  atomic.Uint64
}

// New allocates a memory of n words, all zero.
func New(n int) *Memory {
	m := &Memory{locks: make([]wordLock, n), values: make([]atomic.Int64, n), Name: "mem"}
	for i := range m.locks {
		m.locks[i].readers = make(map[uint64]bool)
	}
	return m
}

// Stats returns commit/abort counts.
func (m *Memory) Stats() Stats {
	return Stats{Commits: m.commits.Load(), Aborts: m.aborts.Load()}
}

// ReadNoTx reads a word non-transactionally (quiescent verification).
func (m *Memory) ReadNoTx(addr int) int64 { return m.values[addr].Load() }

type undoRec struct {
	addr int
	old  int64
}

// Tx is one transaction attempt.
type Tx struct {
	mem *Memory
	ts  uint64 // wait-die age, stable across retries

	readLocks  map[int]bool
	writeLocks map[int]bool
	undo       []undoRec
	sess       *trace.Session
}

// lockResult of one acquisition try.
type lockResult int

const (
	lockOK lockResult = iota
	lockWait
	lockDie
)

// tryReadLock implements wait-die for shared acquisition.
func (tx *Tx) tryReadLock(addr int) lockResult {
	wl := &tx.mem.locks[addr]
	wl.mu.Lock()
	defer wl.mu.Unlock()
	if tx.writeLocks[addr] || wl.readers[tx.ts] {
		return lockOK
	}
	if wl.writer == 0 {
		wl.readers[tx.ts] = true
		tx.readLocks[addr] = true
		return lockOK
	}
	if tx.ts < wl.writer {
		return lockWait // older waits
	}
	return lockDie // younger dies
}

// tryWriteLock implements wait-die for exclusive acquisition, including
// read→write upgrade.
func (tx *Tx) tryWriteLock(addr int) lockResult {
	wl := &tx.mem.locks[addr]
	wl.mu.Lock()
	defer wl.mu.Unlock()
	if wl.writer == tx.ts {
		return lockOK
	}
	if wl.writer != 0 {
		if tx.ts < wl.writer {
			return lockWait
		}
		return lockDie
	}
	// Need no other readers (our own read lock upgrades).
	oldest := uint64(0)
	for r := range wl.readers {
		if r != tx.ts && (oldest == 0 || r < oldest) {
			oldest = r
		}
	}
	if oldest != 0 {
		if tx.ts < oldest {
			return lockWait
		}
		return lockDie
	}
	delete(wl.readers, tx.ts)
	delete(tx.readLocks, addr)
	wl.writer = tx.ts
	tx.writeLocks[addr] = true
	return lockOK
}

func (tx *Tx) acquire(addr int, write bool) error {
	if inj := tx.mem.Injector; inj != nil && inj.Fire(chaos.SitePessTimeout) {
		return ErrConflict
	}
	for {
		var res lockResult
		if write {
			res = tx.tryWriteLock(addr)
		} else {
			res = tx.tryReadLock(addr)
		}
		switch res {
		case lockOK:
			return nil
		case lockDie:
			return ErrConflict
		case lockWait:
			runtime.Gosched()
		}
	}
}

// Read acquires a read lock and returns the word.
func (tx *Tx) Read(addr int) (int64, error) {
	if err := tx.acquire(addr, false); err != nil {
		return 0, err
	}
	v := tx.mem.values[addr].Load()
	if tx.sess != nil {
		// The read's linearization point: we hold (at least) the read
		// lock, so no writer can move the value under us.
		if !tx.sess.Op(tx.mem.Name, "read", []int64{int64(addr)}, v) {
			return 0, fmt.Errorf("pess: read certification failed: %w", tx.mem.Recorder.Err())
		}
	}
	return v, nil
}

// Write acquires the write lock, logs the old value, and updates the
// word in place (visible to no one: all readers are excluded by 2PL).
func (tx *Tx) Write(addr int, val int64) error {
	if err := tx.acquire(addr, true); err != nil {
		return err
	}
	old := tx.mem.values[addr].Load()
	tx.undo = append(tx.undo, undoRec{addr: addr, old: old})
	tx.mem.values[addr].Store(val)
	if tx.sess != nil {
		if !tx.sess.Op(tx.mem.Name, "write", []int64{int64(addr), val}, old) {
			return fmt.Errorf("pess: write certification failed: %w", tx.mem.Recorder.Err())
		}
	}
	return nil
}

func (tx *Tx) releaseAll() {
	for addr := range tx.writeLocks {
		wl := &tx.mem.locks[addr]
		wl.mu.Lock()
		if wl.writer == tx.ts {
			wl.writer = 0
		}
		wl.mu.Unlock()
	}
	for addr := range tx.readLocks {
		wl := &tx.mem.locks[addr]
		wl.mu.Lock()
		delete(wl.readers, tx.ts)
		wl.mu.Unlock()
	}
}

func (tx *Tx) rollback() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.mem.values[tx.undo[i].addr].Store(tx.undo[i].old)
	}
	tx.undo = nil
}

// Atomic runs fn under strict two-phase locking, retrying wait-die
// aborts with the transaction's original timestamp.
func (m *Memory) Atomic(fn func(*Tx) error) error {
	return m.AtomicNamed("", fn)
}

// AtomicNamed is Atomic with a certification name.
func (m *Memory) AtomicNamed(name string, fn func(*Tx) error) error {
	ts := m.tsCounter.Add(1)
	for attempt := 0; ; attempt++ {
		tx := &Tx{mem: m, ts: ts, readLocks: map[int]bool{}, writeLocks: map[int]bool{}}
		if m.Recorder != nil {
			tx.sess = m.Recorder.Begin(name)
		}
		err := fn(tx)
		if err == nil {
			// Strict 2PL commit: nothing to validate; effects are in
			// place. Certify CMT, then release.
			if tx.sess != nil && !tx.sess.Commit() {
				tx.releaseAll()
				return fmt.Errorf("pess: commit certification failed: %w", m.Recorder.Err())
			}
			tx.releaseAll()
			_ = core.Barrier(m.Durable, name)
			m.commits.Add(1)
			return nil
		}
		// Abort: undo in place (the UNPUSH inverses), then release.
		tx.rollback()
		if tx.sess != nil {
			tx.sess.Abort()
		}
		tx.releaseAll()
		m.aborts.Add(1)
		if !errors.Is(err, ErrConflict) {
			return err
		}
		if m.Retry != nil {
			if !m.Retry.Allow(attempt + 1) {
				return fmt.Errorf("pess: %w", chaos.ErrRetriesExhausted)
			}
			m.Retry.Backoff(attempt + 1)
			continue
		}
		// Wait-die storms (read→write upgrades on hot words) thrash
		// without backoff: yield proportionally to the retry count.
		backoff := attempt
		if backoff > 64 {
			backoff = 64
		}
		for i := 0; i <= backoff; i++ {
			runtime.Gosched()
		}
	}
}
