package hybrid_test

import (
	"sync"
	"testing"

	"pushpull/internal/chaos"
)

// TestDegradeOnInjectedCapacityAborts: injected HTM capacity aborts
// push the runtime over its DegradeAfter threshold; it falls back to
// running HTM sections under the fallback lock (boosting plus a global
// lock), every commit still lands, and the shadow recorder certifies
// the whole run — the ISSUE's graceful-degradation acceptance check.
func TestDegradeOnInjectedCapacityAborts(t *testing.T) {
	rt, sl, ht := newRuntime(true)
	rt.DegradeAfter = 4
	inj := chaos.NewPlan(11).WithRate(chaos.SiteHTMCapacity, 0.2).Injector()
	rt.HTM.Injector = inj

	const goroutines = 4
	const perG = 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				foo := int64(g*perG + i)
				if err := section7Txn(rt, sl, ht, foo, foo+500, i%2 == 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if inj.Injected(chaos.SiteHTMCapacity) == 0 {
		t.Fatal("no capacity aborts injected; raise the rate")
	}
	if !rt.DegradedMode() {
		t.Fatalf("runtime never degraded (capacity injections: %d)",
			inj.Injected(chaos.SiteHTMCapacity))
	}
	st := rt.Stats()
	if st.Degraded == 0 {
		t.Fatal("no degraded commits counted")
	}
	total := int64(goroutines * perG)
	if got := rt.HTM.ReadNoTx(addrSize); got != total {
		t.Fatalf("size = %d, want %d (lost updates across degradation)", got, total)
	}
	if x, y := rt.HTM.ReadNoTx(addrX), rt.HTM.ReadNoTx(addrY); x+y != total {
		t.Fatalf("x+y = %d, want %d", x+y, total)
	}
	if err := rt.Boost.Recorder.FinalCheck(); err != nil {
		for _, v := range rt.Boost.Recorder.Violations() {
			t.Log(v)
		}
		t.Fatal(err)
	}
	t.Logf("degraded after %d capacity injections; %d/%d commits degraded; faults: %s",
		rt.DegradeAfter, st.Degraded, st.Commits, inj.Stats())
}

// TestSpeculativeFaultsRecover: conflict/commit-site injections at
// moderate rates never break a certified concurrent run — they only
// force replays.
func TestSpeculativeFaultsRecover(t *testing.T) {
	rt, sl, ht := newRuntime(true)
	rt.HTM.Injector = chaos.NewPlan(23).
		WithRate(chaos.SiteHTMConflict, 0.1).
		WithRate(chaos.SiteHTMCommit, 0.1).Injector()

	const goroutines = 4
	const perG = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				foo := int64(g*perG + i)
				if err := section7Txn(rt, sl, ht, foo, foo, i%2 == 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := rt.HTM.ReadNoTx(addrSize); got != goroutines*perG {
		t.Fatalf("size = %d, want %d", got, goroutines*perG)
	}
	if err := rt.Boost.Recorder.FinalCheck(); err != nil {
		t.Fatal(err)
	}
	if rt.DegradedMode() {
		t.Fatal("conflict faults must not trigger capacity degradation")
	}
}
