package hybrid_test

import (
	"fmt"
	"sync"
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/spec"
	"pushpull/internal/stm/boost"
	"pushpull/internal/stm/htmsim"
	"pushpull/internal/stm/hybrid"
	"pushpull/internal/trace"
)

// newRuntime wires the Section 7 object set: a boosted skiplist set, a
// boosted hashtable, and HTM-controlled words (size at addr 0, x at 1,
// y at 2).
func newRuntime(withRecorder bool) (*hybrid.Runtime, *boost.Set, *boost.Map) {
	b := boost.NewRuntime()
	h := htmsim.New(16)
	h.Name = "htm"
	if withRecorder {
		reg := spec.NewRegistry()
		reg.Register("skiplist", adt.Set{})
		reg.Register("hashT", adt.Map{})
		reg.Register("htm", adt.Register{})
		b.Recorder = trace.NewRecorder(reg)
	}
	rt := hybrid.New(b, h)
	sl := boost.NewSet(b, "skiplist", 1)
	ht := boost.NewMap(b, "hashT", 2)
	return rt, sl, ht
}

const (
	addrSize = 0
	addrX    = 1
	addrY    = 2
)

// section7Txn is the Section 7 example transaction: boosted skiplist
// insert, HTM size++, boosted hashtable map, HTM x++ or y++.
func section7Txn(rt *hybrid.Runtime, sl *boost.Set, ht *boost.Map, foo, bar int64, branchX bool) error {
	return rt.Atomic(fmt.Sprintf("s7-%d", foo), func(tx *hybrid.Tx) error {
		if _, err := sl.Add(tx.Boosted(), foo); err != nil {
			return err
		}
		tx.HTMSection(func(h *htmsim.Tx) error { // size++
			v, err := h.Read(addrSize)
			if err != nil {
				return err
			}
			return h.Write(addrSize, v+1)
		})
		if _, _, err := ht.Put(tx.Boosted(), foo, bar); err != nil {
			return err
		}
		tx.HTMSection(func(h *htmsim.Tx) error { // x++ or y++
			addr := addrY
			if branchX {
				addr = addrX
			}
			v, err := h.Read(addr)
			if err != nil {
				return err
			}
			return h.Write(addr, v+1)
		})
		return nil
	})
}

func TestSection7Sequential(t *testing.T) {
	rt, sl, ht := newRuntime(false)
	if err := section7Txn(rt, sl, ht, 7, 70, true); err != nil {
		t.Fatal(err)
	}
	if !sl.Base().Contains(7) {
		t.Fatal("skiplist insert missing")
	}
	if v, ok := ht.Base().Get(7); !ok || v != 70 {
		t.Fatalf("hashT = %d,%v", v, ok)
	}
	if rt.HTM.ReadNoTx(addrSize) != 1 || rt.HTM.ReadNoTx(addrX) != 1 || rt.HTM.ReadNoTx(addrY) != 0 {
		t.Fatalf("HTM words = %d,%d,%d", rt.HTM.ReadNoTx(addrSize), rt.HTM.ReadNoTx(addrX), rt.HTM.ReadNoTx(addrY))
	}
}

func TestConcurrentSection7(t *testing.T) {
	rt, sl, ht := newRuntime(false)
	const goroutines = 6
	const perG = 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				foo := int64(g*perG + i)
				if err := section7Txn(rt, sl, ht, foo, foo*10, i%2 == 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total := int64(goroutines * perG)
	if got := rt.HTM.ReadNoTx(addrSize); got != total {
		t.Fatalf("size = %d, want %d (HTM part lost updates)", got, total)
	}
	if got := int64(sl.Base().Len()); got != total {
		t.Fatalf("skiplist size = %d, want %d", got, total)
	}
	if x, y := rt.HTM.ReadNoTx(addrX), rt.HTM.ReadNoTx(addrY); x+y != total {
		t.Fatalf("x+y = %d, want %d", x+y, total)
	}
	t.Logf("stats: %+v", rt.Stats())
}

// TestBoostedEffectsSurviveHTMReplay: the HTM part aborts (explicitly,
// first attempt) and is replayed; the boosted effects must not be
// re-executed.
func TestBoostedEffectsSurviveHTMReplay(t *testing.T) {
	rt, sl, _ := newRuntime(false)
	boostedRuns := 0
	htmRuns := 0
	err := rt.Atomic("replay", func(tx *hybrid.Tx) error {
		if _, err := sl.Add(tx.Boosted(), 42); err != nil {
			return err
		}
		boostedRuns++
		tx.HTMSection(func(h *htmsim.Tx) error {
			htmRuns++
			v, err := h.Read(addrSize)
			if err != nil {
				return err
			}
			if err := h.Write(addrSize, v+1); err != nil {
				return err
			}
			if htmRuns == 1 {
				return h.Abort() // simulated conflict on first attempt
			}
			return nil
		})
		return nil
	})
	// An explicit abort is not retried by the HTM layer itself, but the
	// hybrid layer replays sections... Explicit aborts propagate as
	// aborts, so the section re-runs.
	if err != nil {
		t.Fatal(err)
	}
	if boostedRuns != 1 {
		t.Fatalf("boosted part ran %d times; must run exactly once", boostedRuns)
	}
	if htmRuns < 2 {
		t.Fatalf("HTM section ran %d times; expected a replay", htmRuns)
	}
	if rt.HTM.ReadNoTx(addrSize) != 1 {
		t.Fatalf("size = %d", rt.HTM.ReadNoTx(addrSize))
	}
	if rt.Stats().HTMReplays == 0 {
		t.Fatal("replay not counted")
	}
}

// TestCertifiedHybridRun: the whole mixed transaction — eager boosted
// pushes plus commit-time HTM pushes — certifies as one Push/Pull
// transaction per run.
func TestCertifiedHybridRun(t *testing.T) {
	rt, sl, ht := newRuntime(true)
	var wg sync.WaitGroup
	const goroutines = 3
	const perG = 25
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				foo := int64(g*perG + i)
				if err := section7Txn(rt, sl, ht, foo, foo+1000, i%2 == 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := rt.Boost.Recorder.FinalCheck(); err != nil {
		for _, v := range rt.Boost.Recorder.Violations() {
			t.Log(v)
		}
		t.Fatal(err)
	}
	if got := rt.HTM.ReadNoTx(addrSize); got != goroutines*perG {
		t.Fatalf("size = %d", got)
	}
	t.Logf("certified %d commits; stats %+v", rt.Boost.Recorder.Commits(), rt.Stats())
}
