// Package hybrid combines transactional boosting with the simulated
// best-effort HTM — the Section 7 interaction. One atomic block mixes
//
//   - boosted data-structure operations (skiplist/hashtable/counter):
//     executed eagerly under abstract locks, expensive to replay, and
//   - HTM word operations (the paper's size/x/y variables): executed
//     speculatively, cheap to replay.
//
// When the HTM part aborts, the boosted effects stay in the shared view
// (their abstract locks are still held); only the HTM operations are
// retracted and re-executed — the UNPUSH/UNAPP-then-march-forward of
// Figure 7. The combined transaction commits at an uninterleaved moment
// (Figure 7's "Uninterleaved commit"): a runtime-wide commit section
// applies the final HTM attempt and the boosted CMT back-to-back.
//
// Certification: boosted operations enter the shared trace.Session
// eagerly; the final HTM attempt's operations enter it at commit as
// deferred APPs whose PUSHes precede CMT — so the whole mixed
// transaction certifies as one Push/Pull transaction.
package hybrid

import (
	"errors"
	"fmt"
	"sync"

	"pushpull/internal/core"
	"pushpull/internal/stm/boost"
	"pushpull/internal/stm/htmsim"
)

// Stats counts hybrid activity.
type Stats struct {
	Commits    uint64
	HTMReplays uint64
	// Degraded counts commits that ran their HTM sections under the
	// fallback lock after the runtime degraded to boosting-plus-lock.
	Degraded uint64
	Boost    boost.Stats
	HTM      htmsim.Stats
}

// Runtime couples a boosting runtime and an HTM instance. The HTM
// instance must be exclusive to this runtime.
type Runtime struct {
	Boost *boost.Runtime
	HTM   *htmsim.HTM

	// HTMRetries bounds speculative replays of the HTM part before the
	// whole hybrid transaction aborts and retries (default 16).
	HTMRetries int
	// Durable, when non-nil, is the commit-path durability barrier:
	// the write-ahead log is flushed after the commit section releases
	// commitMu and the boosting layer drops its abstract locks, so
	// concurrent committers can share one group-commit sync. When the
	// boosting runtime carries the same Durable it already runs the
	// barrier on its own commit path and this one is skipped.
	Durable core.Durable
	// DegradeAfter, when > 0, is the graceful-degradation threshold:
	// after that many capacity aborts observed across commit sections the
	// runtime stops speculating and runs every HTM section under the
	// fallback lock — hybrid degrades to boosting plus a global lock,
	// still certified through the shared session.
	DegradeAfter int

	commitMu   sync.Mutex
	commits    uint64
	htmReplays uint64
	degraded   uint64
	capAborts  uint64
	inDegraded bool
	statsMu    sync.Mutex
}

// New builds a hybrid runtime. Attach a shared trace.Recorder through
// rt.Boost.Recorder; the HTM's own Recorder must stay nil (its
// operations certify inside the boosted session instead).
func New(b *boost.Runtime, h *htmsim.HTM) *Runtime {
	return &Runtime{Boost: b, HTM: h, HTMRetries: 16}
}

// Stats returns activity counters.
func (rt *Runtime) Stats() Stats {
	rt.statsMu.Lock()
	defer rt.statsMu.Unlock()
	return Stats{Commits: rt.commits, HTMReplays: rt.htmReplays, Degraded: rt.degraded,
		Boost: rt.Boost.Stats(), HTM: rt.HTM.Stats()}
}

// DegradedMode reports whether the runtime has fallen back to
// boosting-plus-lock for its HTM sections.
func (rt *Runtime) DegradedMode() bool {
	rt.statsMu.Lock()
	defer rt.statsMu.Unlock()
	return rt.inDegraded
}

// noteCapacityAbort counts a commit-section capacity abort and flips
// the runtime into degraded mode once the threshold is crossed.
func (rt *Runtime) noteCapacityAbort() {
	rt.statsMu.Lock()
	defer rt.statsMu.Unlock()
	rt.capAborts++
	if rt.DegradeAfter > 0 && rt.capAborts >= uint64(rt.DegradeAfter) {
		rt.inDegraded = true
	}
}

// ErrHTMExhausted aborts the hybrid transaction after the HTM part
// failed every speculative replay; the boosting layer retries the whole
// transaction.
var ErrHTMExhausted = errors.New("hybrid: HTM retries exhausted")

// Tx is one hybrid transaction attempt.
type Tx struct {
	rt       *Runtime
	bt       *boost.Txn
	sections []func(h *htmsim.Tx) error
}

// Boosted exposes the boosting transaction for boosted object calls.
func (tx *Tx) Boosted() *boost.Txn { return tx.bt }

// HTMSection registers speculative word-level work. Sections run (and
// re-run, on HTM aborts) against the HTM; values read inside a section
// must not flow into boosted operations — boosted effects are never
// replayed (that asymmetry is the whole point of Section 7).
func (tx *Tx) HTMSection(section func(h *htmsim.Tx) error) {
	tx.sections = append(tx.sections, section)
}

// Atomic runs fn as one hybrid transaction.
func (rt *Runtime) Atomic(name string, fn func(*Tx) error) error {
	err := rt.Boost.Atomic(name, func(bt *boost.Txn) error {
		tx := &Tx{rt: rt, bt: bt}
		if err := fn(tx); err != nil {
			return err
		}
		return rt.commitHTM(name, tx)
	})
	// Durability barrier outside commitMu and the boosting layer's
	// locks (mirroring tl2): the commit's WAL records were appended
	// inside the serialized section, so a sync that starts now covers
	// them, and holding no locks lets concurrent committers share it.
	// Skip when the boosting runtime owns the same barrier — it has
	// already run it on its own unlocked commit path.
	if err == nil && rt.Durable != nil && rt.Durable != rt.Boost.Durable {
		_ = core.Barrier(rt.Durable, name)
	}
	return err
}

// commitHTM is the uninterleaved commit section: execute the HTM
// sections speculatively (replaying on aborts — boosted effects stay
// put), certify the successful attempt's operations into the shared
// session, and let the boosting layer CMT.
func (rt *Runtime) commitHTM(name string, tx *Tx) error {
	if len(tx.sections) == 0 {
		return nil
	}
	rt.commitMu.Lock()
	defer rt.commitMu.Unlock()
	if rt.DegradedMode() {
		return rt.commitDegraded(tx)
	}
	for attempt := 0; attempt < rt.HTMRetries; attempt++ {
		htx := rt.HTM.Begin()
		err := runSections(htx, tx.sections)
		if err == nil {
			err = htx.Commit(name)
			if err == nil {
				if sess := tx.bt.Session(); sess != nil {
					for _, op := range htx.Ops() {
						if !sess.OpDeferred(op.Obj, op.Method, op.Args, op.Ret) {
							return fmt.Errorf("hybrid: HTM certification failed")
						}
					}
					// Commit the shared session here, inside the
					// serialized commit section, so no other hybrid
					// commit interleaves between the HTM application and
					// the shadow CMT. The boosting layer's own
					// sess.Commit is then an idempotent no-op.
					if !sess.Commit() {
						return fmt.Errorf("hybrid: commit certification failed")
					}
				}
				rt.statsMu.Lock()
				rt.commits++
				rt.htmReplays += uint64(attempt)
				rt.statsMu.Unlock()
				return nil
			}
		} else {
			htx.Cancel()
		}
		code, isAbort := htmsim.IsAbort(err)
		if !isAbort {
			return err // user error from a section: abort the hybrid txn
		}
		if code == htmsim.Capacity {
			rt.noteCapacityAbort()
			if rt.DegradedMode() {
				return rt.commitDegraded(tx)
			}
		}
		// HTM abort: Figure 7's UNPUSH of the HTM ops; the boosted
		// effects remain. March forward again (replay the sections).
	}
	// Abort-and-retry the whole hybrid transaction through the boosting
	// layer's conflict path.
	return fmt.Errorf("%w: %w", ErrHTMExhausted, boost.ErrConflict)
}

// commitDegraded runs the HTM sections non-speculatively under the
// fallback lock (graceful degradation: boosting plus a global lock).
// Certification is unchanged — the section ops still enter the shared
// session as deferred APPs before the CMT — so degraded commits stay
// certified. Called with commitMu held.
func (rt *Runtime) commitDegraded(tx *Tx) error {
	htx := rt.HTM.BeginFallback()
	if err := runSections(htx, tx.sections); err != nil {
		htx.EndFallback(false)
		if _, isAbort := htmsim.IsAbort(err); isAbort {
			// An explicit section abort under fallback: retry the whole
			// hybrid transaction through the boosting conflict path.
			return fmt.Errorf("hybrid: degraded section abort: %w", boost.ErrConflict)
		}
		return err
	}
	if sess := tx.bt.Session(); sess != nil {
		// Ops are captured before EndFallback applies the buffered
		// stores, so write old-values reflect pre-commit memory.
		for _, op := range htx.Ops() {
			if !sess.OpDeferred(op.Obj, op.Method, op.Args, op.Ret) {
				htx.EndFallback(false)
				return fmt.Errorf("hybrid: degraded HTM certification failed")
			}
		}
		if !sess.Commit() {
			htx.EndFallback(false)
			return fmt.Errorf("hybrid: degraded commit certification failed")
		}
	}
	htx.EndFallback(true)
	rt.statsMu.Lock()
	rt.commits++
	rt.degraded++
	rt.statsMu.Unlock()
	return nil
}

func runSections(htx *htmsim.Tx, sections []func(h *htmsim.Tx) error) error {
	for _, s := range sections {
		if err := s(htx); err != nil {
			return err
		}
	}
	return nil
}
