package htmsim_test

import (
	"sync"
	"testing"

	"pushpull/internal/stm/htmsim"
)

// TestManualTxnLifecycle drives the raw XBEGIN/XEND interface.
func TestManualTxnLifecycle(t *testing.T) {
	h := htmsim.New(8)
	tx := h.Begin()
	if err := tx.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	if v, err := tx.Read(0); err != nil || v != 5 {
		t.Fatalf("read own buffer: %d %v", v, err)
	}
	ops := tx.Ops()
	if len(ops) != 2 || ops[0].Method != "write" || ops[1].Ret != 5 {
		t.Fatalf("ops %v", ops)
	}
	if err := tx.Commit("m"); err != nil {
		t.Fatal(err)
	}
	if h.ReadNoTx(0) != 5 {
		t.Fatal("manual commit missing")
	}
	// Ops after commit return the snapshot with pre-commit old values.
	ops = tx.Ops()
	if ops[0].Ret != 0 {
		t.Fatalf("snapshotted write old-value = %d, want 0", ops[0].Ret)
	}
}

func TestManualCancelDiscards(t *testing.T) {
	h := htmsim.New(4)
	tx := h.Begin()
	if err := tx.Write(1, 9); err != nil {
		t.Fatal(err)
	}
	tx.Cancel()
	if h.ReadNoTx(1) != 0 {
		t.Fatal("cancelled buffer leaked")
	}
	// The word is free for others.
	tx2 := h.Begin()
	if err := tx2.Write(1, 3); err != nil {
		t.Fatalf("ownership not released: %v", err)
	}
	if err := tx2.Commit("m2"); err != nil {
		t.Fatal(err)
	}
}

// TestEagerConflictReaderVsWriter: a writer touching a word with a
// foreign reader aborts immediately (requester loses), and vice versa.
func TestEagerConflictReaderVsWriter(t *testing.T) {
	h := htmsim.New(4)
	reader := h.Begin()
	if _, err := reader.Read(2); err != nil {
		t.Fatal(err)
	}
	writer := h.Begin()
	err := writer.Write(2, 1)
	if code, ok := htmsim.IsAbort(err); !ok || code != htmsim.Conflict {
		t.Fatalf("writer vs reader: %v", err)
	}
	writer.Cancel()
	// Reader may proceed and commit.
	if err := reader.Commit("r"); err != nil {
		t.Fatal(err)
	}

	// Now writer first, reader second.
	w2 := h.Begin()
	if err := w2.Write(2, 7); err != nil {
		t.Fatal(err)
	}
	r2 := h.Begin()
	_, err = r2.Read(2)
	if code, ok := htmsim.IsAbort(err); !ok || code != htmsim.Conflict {
		t.Fatalf("reader vs writer: %v", err)
	}
	r2.Cancel()
	if err := w2.Commit("w"); err != nil {
		t.Fatal(err)
	}
	if h.ReadNoTx(2) != 7 {
		t.Fatal("writer commit missing")
	}
}

// TestSharedReaders: two concurrent readers of one word coexist.
func TestSharedReaders(t *testing.T) {
	h := htmsim.New(4)
	r1, r2 := h.Begin(), h.Begin()
	if _, err := r1.Read(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Read(0); err != nil {
		t.Fatalf("shared read refused: %v", err)
	}
	if err := r1.Commit("r1"); err != nil {
		t.Fatal(err)
	}
	if err := r2.Commit("r2"); err != nil {
		t.Fatal(err)
	}
}

// TestFallbackEpochAbortsSpeculation: a speculative transaction begun
// before a fallback ran must abort at commit (epoch subscription).
func TestFallbackEpochAbortsSpeculation(t *testing.T) {
	h := htmsim.New(8)
	spec := h.Begin()
	if _, err := spec.Read(0); err != nil {
		t.Fatal(err)
	}
	// A fallback runs (forced by an always-capacity workload).
	h.Capacity = 1
	if err := h.Atomic("big", func(tx *htmsim.Tx) error {
		for i := 1; i < 4; i++ {
			if err := tx.Write(i, int64(i)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if h.Stats().Fallbacks == 0 {
		t.Fatal("fallback expected")
	}
	err := spec.Commit("stale")
	if code, ok := htmsim.IsAbort(err); !ok || code != htmsim.Conflict {
		t.Fatalf("stale speculation must abort at commit: %v", err)
	}
}

// TestConcurrentMixedSpeculativeAndFallback hammers both paths together.
func TestConcurrentMixedSpeculativeAndFallback(t *testing.T) {
	h := htmsim.New(64)
	h.Capacity = 4
	h.MaxRetries = 2
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				big := i%5 == 0
				if err := h.Atomic("mx", func(tx *htmsim.Tx) error {
					n := 1
					if big {
						n = 8 // exceeds capacity → fallback path
					}
					for k := 0; k < n; k++ {
						addr := (g*7 + i + k) % 64
						v, err := tx.Read(addr)
						if err != nil {
							return err
						}
						if err := tx.Write(addr, v+1); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	var sum int64
	for a := 0; a < 64; a++ {
		sum += h.ReadNoTx(a)
	}
	// 6 goroutines × 100 txns: 20 big (8 increments) + 80 small (1).
	want := int64(6 * (20*8 + 80*1))
	if sum != want {
		t.Fatalf("sum = %d, want %d (atomicity across fallback boundary broken)", sum, want)
	}
}
