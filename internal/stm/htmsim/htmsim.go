// Package htmsim simulates a best-effort hardware transactional memory
// (Intel Haswell RTM / IBM zEC12 class) in software — the documented
// substitution for real HTM hardware (see DESIGN.md):
//
//   - speculative read/write sets with buffered (write-back) stores:
//     effects are invisible until commit, like L1-buffered HTM lines;
//   - eager conflict detection through a per-word ownership table:
//     touching a word owned conflictingly by another active transaction
//     aborts immediately with Conflict, the analogue of a coherence
//     invalidation killing a transactional cache line;
//   - capacity aborts past a configurable read+write-set budget, the
//     analogue of cache-geometry overflow;
//   - a global fallback lock (classic lock elision): after MaxRetries
//     speculative attempts, Atomic runs the body non-speculatively under
//     the lock, which every speculative attempt subscribes to.
//
// In Push/Pull terms (§6.2 applied to HTM): a speculative transaction
// APPlies privately and PUSHes everything at the commit instant (while
// owning every touched word exclusively enough); an abort is pure
// UNAPP. Certified runs replay exactly that on the shadow machine.
package htmsim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pushpull/internal/chaos"
	"pushpull/internal/core"
	"pushpull/internal/trace"
)

// AbortCode classifies hardware aborts.
type AbortCode int

// Abort codes.
const (
	// Conflict: another active transaction owns a touched word.
	Conflict AbortCode = iota
	// Capacity: the read+write set exceeded the speculative budget.
	Capacity
	// Explicit: the user called Tx.Abort (XABORT).
	Explicit
)

func (c AbortCode) String() string {
	switch c {
	case Conflict:
		return "conflict"
	case Capacity:
		return "capacity"
	case Explicit:
		return "explicit"
	default:
		return "unknown"
	}
}

// AbortError is the "hardware" abort status, retryable or not by the
// caller's policy.
type AbortError struct{ Code AbortCode }

func (e *AbortError) Error() string { return "htmsim: abort (" + e.Code.String() + ")" }

// IsAbort extracts the abort code from an error.
func IsAbort(err error) (AbortCode, bool) {
	var ae *AbortError
	if errors.As(err, &ae) {
		return ae.Code, true
	}
	return 0, false
}

type ownerEntry struct {
	mu      sync.Mutex
	writer  uint64
	readers map[uint64]bool
}

// Stats counts HTM activity.
type Stats struct {
	Commits        uint64
	ConflictAborts uint64
	CapacityAborts uint64
	Fallbacks      uint64
}

// HTM is a simulated transactional memory over a word array.
type HTM struct {
	values []atomic.Int64
	owners []ownerEntry
	ids    atomic.Uint64

	// Capacity bounds |readSet ∪ writeSet| per transaction (default 64).
	Capacity int
	// MaxRetries bounds speculative attempts before the fallback lock
	// (default 8).
	MaxRetries int
	// Name is the certification object name (an adt.Register binding).
	Name string
	// Recorder, when non-nil, certifies commits on a shadow machine.
	Recorder *trace.Recorder
	// Injector, when non-nil, is consulted at the speculative fault
	// sites (SiteHTMConflict/SiteHTMCapacity on reads and writes,
	// SiteHTMCommit at the commit instant). Injected aborts are
	// indistinguishable from organic ones to callers.
	Injector chaos.Injector
	// Retry, when non-nil, shapes the backoff between speculative
	// attempts in Atomic (the retry count itself stays MaxRetries).
	Retry *chaos.RetryPolicy
	// Durable, when non-nil, is the commit-path durability barrier:
	// the write-ahead log is flushed before a commit is acknowledged.
	Durable core.Durable

	// fbLock serializes fallback execution against speculative commits
	// (speculative commits hold it shared). fbEpoch is odd while a
	// fallback runs; a speculative attempt records the epoch at begin
	// and aborts at commit if it changed — the software analogue of
	// lock-elision subscription.
	fbLock  sync.RWMutex
	fbEpoch atomic.Uint64

	commits   atomic.Uint64
	conflicts atomic.Uint64
	capacity  atomic.Uint64
	fallbacks atomic.Uint64
}

// New allocates an HTM over n words.
func New(n int) *HTM {
	h := &HTM{values: make([]atomic.Int64, n), owners: make([]ownerEntry, n),
		Capacity: 64, MaxRetries: 8, Name: "mem"}
	for i := range h.owners {
		h.owners[i].readers = make(map[uint64]bool)
	}
	return h
}

// Stats returns activity counters.
func (h *HTM) Stats() Stats {
	return Stats{Commits: h.commits.Load(), ConflictAborts: h.conflicts.Load(),
		CapacityAborts: h.capacity.Load(), Fallbacks: h.fallbacks.Load()}
}

// ReadNoTx reads a word non-transactionally.
// durableBarrier flushes the write-ahead log (when attached) so an
// acknowledged commit is on stable storage. The committing
// transaction's name routes through the name-aware barrier when the
// attached Durable implements it (see core.Barrier).
func (h *HTM) durableBarrier(name string) {
	_ = core.Barrier(h.Durable, name)
}

func (h *HTM) ReadNoTx(addr int) int64 { return h.values[addr].Load() }

func (h *HTM) inject(site chaos.Site) bool {
	return h.Injector != nil && h.Injector.Fire(site)
}

// injectSpec checks the speculative fault sites for tx; fallback
// (direct) transactions cannot abort and are never injected.
func (tx *Tx) injectSpec() *AbortError {
	if tx.direct || tx.h.Injector == nil {
		return nil
	}
	if tx.h.inject(chaos.SiteHTMCapacity) {
		tx.abort(Capacity)
		return tx.dead
	}
	if tx.h.inject(chaos.SiteHTMConflict) {
		tx.abort(Conflict)
		return tx.dead
	}
	return nil
}

// Tx is one speculative attempt.
type Tx struct {
	h     *HTM
	id    uint64
	epoch uint64
	// direct marks the fallback (non-speculative) mode: ownership and
	// capacity checks are bypassed — the global lock plus the epoch
	// subscription make that safe.
	direct bool

	reads   map[int]int64 // first-read values (for certification)
	writes  map[int]int64 // buffered stores
	program []progOp
	dead    *AbortError
	// captured holds the certification records snapshotted at the commit
	// point (before the buffered stores were applied), so write
	// old-values are reconstructed against the pre-commit memory.
	captured []trace.OpRecord
}

type progOp struct {
	isWrite bool
	addr    int
	val     int64
}

func (tx *Tx) abort(code AbortCode) error {
	tx.dead = &AbortError{Code: code}
	return tx.dead
}

func (tx *Tx) footprint() int {
	seen := make(map[int]bool, len(tx.reads)+len(tx.writes))
	for a := range tx.reads {
		seen[a] = true
	}
	for a := range tx.writes {
		seen[a] = true
	}
	return len(seen)
}

// inFootprint reports whether addr is already a tracked line.
func (tx *Tx) inFootprint(addr int) bool {
	if _, ok := tx.reads[addr]; ok {
		return true
	}
	_, ok := tx.writes[addr]
	return ok
}

// Read speculatively loads a word, registering read ownership.
func (tx *Tx) Read(addr int) (int64, error) {
	if tx.dead != nil {
		return 0, tx.dead
	}
	if ae := tx.injectSpec(); ae != nil {
		return 0, ae
	}
	if v, ok := tx.writes[addr]; ok {
		tx.program = append(tx.program, progOp{addr: addr, val: v})
		return v, nil
	}
	if v, ok := tx.reads[addr]; ok {
		tx.program = append(tx.program, progOp{addr: addr, val: v})
		return v, nil
	}
	if tx.direct {
		v := tx.h.values[addr].Load()
		tx.reads[addr] = v
		tx.program = append(tx.program, progOp{addr: addr, val: v})
		return v, nil
	}
	if !tx.inFootprint(addr) && tx.footprint()+1 > tx.h.Capacity {
		return 0, tx.abort(Capacity)
	}
	oe := &tx.h.owners[addr]
	oe.mu.Lock()
	if oe.writer != 0 && oe.writer != tx.id {
		oe.mu.Unlock()
		return 0, tx.abort(Conflict)
	}
	oe.readers[tx.id] = true
	v := tx.h.values[addr].Load()
	oe.mu.Unlock()
	tx.reads[addr] = v
	tx.program = append(tx.program, progOp{addr: addr, val: v})
	return v, nil
}

// Write speculatively buffers a store, taking exclusive ownership.
func (tx *Tx) Write(addr int, val int64) error {
	if tx.dead != nil {
		return tx.dead
	}
	if ae := tx.injectSpec(); ae != nil {
		return ae
	}
	if _, mine := tx.writes[addr]; !mine && !tx.direct {
		if !tx.inFootprint(addr) && tx.footprint()+1 > tx.h.Capacity {
			return tx.abort(Capacity)
		}
		oe := &tx.h.owners[addr]
		oe.mu.Lock()
		if oe.writer != 0 && oe.writer != tx.id {
			oe.mu.Unlock()
			return tx.abort(Conflict)
		}
		for r := range oe.readers {
			if r != tx.id {
				oe.mu.Unlock()
				return tx.abort(Conflict)
			}
		}
		oe.writer = tx.id
		oe.mu.Unlock()
	}
	tx.writes[addr] = val
	tx.program = append(tx.program, progOp{isWrite: true, addr: addr, val: val})
	return nil
}

// Abort explicitly aborts the attempt (XABORT).
func (tx *Tx) Abort() error { return tx.abort(Explicit) }

func (tx *Tx) releaseOwnership() {
	for a := range tx.reads {
		oe := &tx.h.owners[a]
		oe.mu.Lock()
		delete(oe.readers, tx.id)
		oe.mu.Unlock()
	}
	for a := range tx.writes {
		oe := &tx.h.owners[a]
		oe.mu.Lock()
		if oe.writer == tx.id {
			oe.writer = 0
		}
		delete(oe.readers, tx.id)
		oe.mu.Unlock()
	}
}

// commit applies the buffered stores. Ownership guarantees exclusivity
// against other speculative transactions; the shared fallback lock plus
// the epoch check guarantee no fallback ran (or runs) across us.
func (tx *Tx) commit(name string) error {
	if tx.dead != nil {
		return tx.dead
	}
	if !tx.direct && tx.h.inject(chaos.SiteHTMCommit) {
		return tx.abort(Conflict)
	}
	tx.h.fbLock.RLock()
	defer tx.h.fbLock.RUnlock()
	if tx.h.fbEpoch.Load() != tx.epoch {
		return tx.abort(Conflict)
	}
	tx.captured = tx.certOps()
	if tx.h.Recorder != nil {
		if !tx.h.Recorder.AtomicTxn(name, tx.captured) {
			return fmt.Errorf("htmsim: certification failed: %w", tx.h.Recorder.Err())
		}
	}
	for a, v := range tx.writes {
		tx.h.values[a].Store(v)
	}
	return nil
}

func (tx *Tx) certOps() []trace.OpRecord {
	current := make(map[int]int64)
	ops := make([]trace.OpRecord, 0, len(tx.program))
	lookup := func(addr int) int64 {
		if v, ok := current[addr]; ok {
			return v
		}
		return tx.h.values[addr].Load()
	}
	for _, p := range tx.program {
		if p.isWrite {
			old := lookup(p.addr)
			current[p.addr] = p.val
			ops = append(ops, trace.OpRecord{Obj: tx.h.Name, Method: "write",
				Args: []int64{int64(p.addr), p.val}, Ret: old})
		} else {
			ops = append(ops, trace.OpRecord{Obj: tx.h.Name, Method: "read",
				Args: []int64{int64(p.addr)}, Ret: p.val})
		}
	}
	return ops
}

// TxnOnce runs one speculative attempt without retry or fallback,
// returning the abort status — the raw XBEGIN/XEND interface the hybrid
// runtime of Section 7 needs.
func (h *HTM) TxnOnce(name string, fn func(*Tx) error) error {
	epoch := h.fbEpoch.Load()
	if epoch%2 == 1 {
		return &AbortError{Code: Conflict} // fallback in progress
	}
	tx := &Tx{h: h, id: h.ids.Add(1), epoch: epoch, reads: map[int]int64{}, writes: map[int]int64{}}
	err := fn(tx)
	if err == nil {
		err = tx.commit(name)
	}
	tx.releaseOwnership()
	if err == nil {
		h.durableBarrier(name)
		h.commits.Add(1)
		return nil
	}
	if code, ok := IsAbort(err); ok {
		switch code {
		case Conflict:
			h.conflicts.Add(1)
		case Capacity:
			h.capacity.Add(1)
		}
	}
	return err
}

// Atomic runs fn with retry and lock-elision fallback: speculative
// attempts up to MaxRetries, then the global lock.
func (h *HTM) Atomic(name string, fn func(*Tx) error) error {
	for attempt := 0; attempt < h.MaxRetries; attempt++ {
		err := h.TxnOnce(name, fn)
		if err == nil {
			return nil
		}
		code, ok := IsAbort(err)
		if !ok {
			return err // user error: no retry
		}
		if code == Capacity || code == Explicit {
			break // retrying cannot help
		}
		if h.Retry != nil {
			h.Retry.Backoff(attempt + 1)
		} else {
			for i := 0; i <= attempt; i++ {
				runtime.Gosched()
			}
		}
	}
	return h.runFallback(name, fn)
}

// runFallback executes fn non-speculatively under the global lock.
// Speculative transactions subscribe to the lock (abort when it is
// held), so direct reads and writes are safe.
func (h *HTM) runFallback(name string, fn func(*Tx) error) error {
	h.fbLock.Lock()
	h.fbEpoch.Add(1) // odd: fallback active
	defer func() {
		h.fbEpoch.Add(1) // even: idle again, but epoch moved on
		h.fbLock.Unlock()
	}()
	h.fallbacks.Add(1)
	tx := &Tx{h: h, id: h.ids.Add(1), direct: true, reads: map[int]int64{}, writes: map[int]int64{}}
	if err := fn(tx); err != nil {
		if code, ok := IsAbort(err); ok && code == Explicit {
			return err
		}
		return err
	}
	if h.Recorder != nil {
		if !h.Recorder.AtomicTxn(name, tx.certOps()) {
			return fmt.Errorf("htmsim: fallback certification failed: %w", h.Recorder.Err())
		}
	}
	for a, v := range tx.writes {
		h.values[a].Store(v)
	}
	h.durableBarrier(name)
	h.commits.Add(1)
	return nil
}

// Begin opens a manual speculative transaction (XBEGIN). The caller
// drives Read/Write and must end it with Commit or Cancel — the raw
// interface hybrid runtimes (Section 7) build on.
func (h *HTM) Begin() *Tx {
	return &Tx{h: h, id: h.ids.Add(1), epoch: h.fbEpoch.Load(),
		reads: map[int]int64{}, writes: map[int]int64{}}
}

// Commit ends a manual transaction (XEND), applying its buffered
// stores. On failure the transaction is cancelled and the abort status
// returned.
func (tx *Tx) Commit(name string) error {
	err := tx.commit(name)
	tx.releaseOwnership()
	if err == nil {
		tx.h.durableBarrier(name)
		tx.h.commits.Add(1)
		return nil
	}
	if code, ok := IsAbort(err); ok {
		switch code {
		case Conflict:
			tx.h.conflicts.Add(1)
		case Capacity:
			tx.h.capacity.Add(1)
		}
	}
	return err
}

// Cancel ends a manual transaction without applying it (XABORT at the
// runtime's initiative): buffered effects vanish, ownership is
// released.
func (tx *Tx) Cancel() {
	tx.releaseOwnership()
}

// BeginFallback opens a manual non-speculative transaction under the
// global fallback lock — the degraded-mode interface a hybrid runtime
// switches to after repeated capacity aborts. It blocks until the lock
// is free, kills in-flight speculators via the epoch subscription, and
// must be ended with EndFallback. Reads and writes on the returned Tx
// never abort.
func (h *HTM) BeginFallback() *Tx {
	h.fbLock.Lock()
	h.fbEpoch.Add(1) // odd: fallback active
	h.fallbacks.Add(1)
	return &Tx{h: h, id: h.ids.Add(1), direct: true, reads: map[int]int64{}, writes: map[int]int64{}}
}

// EndFallback ends a manual fallback transaction, applying its buffered
// stores when commit is true, then releases the lock and advances the
// epoch so speculative subscribers notice.
func (tx *Tx) EndFallback(commit bool) {
	if commit {
		tx.captured = tx.certOps()
		for a, v := range tx.writes {
			tx.h.values[a].Store(v)
		}
		tx.h.durableBarrier("") // manual fallback: no transaction name
		tx.h.commits.Add(1)
	}
	tx.h.fbEpoch.Add(1)
	tx.h.fbLock.Unlock()
}

// Ops exposes the attempt's program-order operation records with
// reconstructed write returns — what a hybrid runtime feeds into a
// shared certification session at the commit linearization point. After
// Commit it returns the records snapshotted at the commit point.
func (tx *Tx) Ops() []trace.OpRecord {
	if tx.captured != nil {
		return tx.captured
	}
	return tx.certOps()
}
