package htmsim_test

import (
	"fmt"
	"sync"
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/spec"
	"pushpull/internal/stm/htmsim"
	"pushpull/internal/trace"
)

func TestSequentialBufferedWrites(t *testing.T) {
	h := htmsim.New(8)
	err := h.Atomic("a", func(tx *htmsim.Tx) error {
		if err := tx.Write(0, 5); err != nil {
			return err
		}
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		if v != 5 {
			return fmt.Errorf("read own buffered write = %d", v)
		}
		// Invisible before commit.
		if h.ReadNoTx(0) != 0 {
			return fmt.Errorf("buffered write leaked early")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.ReadNoTx(0) != 5 {
		t.Fatal("commit did not apply buffered write")
	}
}

func TestCapacityAbort(t *testing.T) {
	h := htmsim.New(128)
	h.Capacity = 4
	h.MaxRetries = 2
	var sawCapacity bool
	err := h.TxnOnce("big", func(tx *htmsim.Tx) error {
		for i := 0; i < 10; i++ {
			if err := tx.Write(i, 1); err != nil {
				if code, ok := htmsim.IsAbort(err); ok && code == htmsim.Capacity {
					sawCapacity = true
				}
				return err
			}
		}
		return nil
	})
	if err == nil || !sawCapacity {
		t.Fatalf("err=%v sawCapacity=%v", err, sawCapacity)
	}
	if h.Stats().CapacityAborts == 0 {
		t.Fatal("capacity abort not counted")
	}
	// Atomic falls back to the lock and succeeds.
	if err := h.Atomic("big2", func(tx *htmsim.Tx) error {
		for i := 0; i < 10; i++ {
			if err := tx.Write(i, 2); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if h.ReadNoTx(9) != 2 {
		t.Fatal("fallback writes missing")
	}
	if h.Stats().Fallbacks == 0 {
		t.Fatal("fallback not counted")
	}
}

func TestExplicitAbort(t *testing.T) {
	h := htmsim.New(4)
	err := h.TxnOnce("x", func(tx *htmsim.Tx) error {
		if err := tx.Write(0, 9); err != nil {
			return err
		}
		return tx.Abort()
	})
	if code, ok := htmsim.IsAbort(err); !ok || code != htmsim.Explicit {
		t.Fatalf("err = %v", err)
	}
	if h.ReadNoTx(0) != 0 {
		t.Fatal("explicitly aborted write leaked")
	}
}

func TestConcurrentCounter(t *testing.T) {
	h := htmsim.New(4)
	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := h.Atomic("inc", func(tx *htmsim.Tx) error {
					v, err := tx.Read(0)
					if err != nil {
						return err
					}
					return tx.Write(0, v+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := h.ReadNoTx(0); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d (stats %+v)", got, goroutines*iters, h.Stats())
	}
}

func TestCertifiedRun(t *testing.T) {
	reg := spec.NewRegistry()
	reg.Register("mem", adt.Register{})
	h := htmsim.New(16)
	h.Recorder = trace.NewRecorder(reg)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				addr := (g*5 + i) % 16
				if err := h.Atomic(fmt.Sprintf("h%d-%d", g, i), func(tx *htmsim.Tx) error {
					v, err := tx.Read(addr)
					if err != nil {
						return err
					}
					return tx.Write(addr, v+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := h.Recorder.FinalCheck(); err != nil {
		for _, v := range h.Recorder.Violations() {
			t.Log(v)
		}
		t.Fatal(err)
	}
	t.Logf("certified %d commits; stats %+v", h.Recorder.Commits(), h.Stats())
}

func BenchmarkHTMSmallFootprint(b *testing.B) {
	h := htmsim.New(1024)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			addr := (i * 17) % 1024
			i++
			_ = h.Atomic("bench", func(tx *htmsim.Tx) error {
				v, err := tx.Read(addr)
				if err != nil {
					return err
				}
				return tx.Write(addr, v+1)
			})
		}
	})
}

func BenchmarkHTMCapacityOverflow(b *testing.B) {
	h := htmsim.New(1024)
	h.Capacity = 8
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			base := (i * 31) % 512
			i++
			_ = h.Atomic("bench", func(tx *htmsim.Tx) error {
				for k := 0; k < 16; k++ { // footprint 16 > capacity 8
					v, err := tx.Read(base + k)
					if err != nil {
						return err
					}
					if err := tx.Write(base+k, v+1); err != nil {
						return err
					}
				}
				return nil
			})
		}
	})
}
