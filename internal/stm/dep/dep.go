// Package dep implements dependent transactions (Ramadan, Roy, Herlihy,
// Witchel, PPoPP'09) with early release of writes (Herlihy et al.,
// PODC'03) — the §6.5 non-opaque model: a transaction's speculative
// writes are visible in place before it commits; a reader of such a
// value becomes *dependent* on the writer and
//
//	"does not commit until T′ has committed. If T′ aborts, then T must
//	abort" — the cascading abort.
//
// In Push/Pull terms: writers APP and PUSH eagerly; a dependent reader
// PULLs the uncommitted write, APPlies its read, and must defer the
// PUSH of that read until the writer commits (PUSH criterion (ii)
// forbids publishing an operation that uncommitted effects cannot move
// across); CMT criterion (iii) then enforces the commit ordering, and a
// writer abort forces the reader to detangle (UNPULL after rewinding) —
// realized here as a cascading abort and retry.
package dep

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pushpull/internal/chaos"
	"pushpull/internal/core"
	"pushpull/internal/trace"
)

// ErrConflict aborts the attempt for retry (write-write conflict, or
// dependency timeout breaking a potential cycle).
var ErrConflict = errors.New("dep: conflict")

// ErrCascade aborts the attempt because a transaction it depends on
// aborted.
var ErrCascade = errors.New("dep: cascading abort")

type txState int32

const (
	stActive txState = iota
	stCommitted
	stAborted
)

// txnRec is the shared record other transactions hold dependencies on.
type txnRec struct {
	id    uint64
	state atomic.Int32
}

type word struct {
	mu      sync.Mutex
	value   int64
	writer  *txnRec          // uncommitted writer, nil when value is committed
	readers map[*txnRec]bool // active transactions that have read this word
}

// Stats counts memory activity.
type Stats struct {
	Commits  uint64
	Aborts   uint64
	Cascades uint64
	DepWaits uint64
}

// Memory is the shared word array with early release.
type Memory struct {
	words []word
	ids   atomic.Uint64

	// DepSpins bounds commit-time waiting for dependencies before the
	// transaction aborts to break potential dependency cycles
	// (default 4096).
	DepSpins int
	// Name is the certification object name (an adt.Register binding).
	Name string
	// Recorder, when non-nil, certifies runs on a shadow machine
	// (sessions pull uncommitted effects — the non-opaque fragment).
	Recorder *trace.Recorder
	// Injector, when non-nil, is consulted at SiteDepConflict on every
	// transactional read; injected conflicts surface as ErrConflict,
	// forcing rollbacks that cascade into dependents.
	Injector chaos.Injector
	// Retry, when non-nil, bounds retries and shapes backoff in Atomic;
	// an exhausted budget returns ErrRetriesExhausted (wrapped).
	Retry *chaos.RetryPolicy
	// Durable, when non-nil, is the commit-path durability barrier:
	// the write-ahead log is flushed before a commit is acknowledged.
	Durable core.Durable

	commits  atomic.Uint64
	aborts   atomic.Uint64
	cascades atomic.Uint64
	depWaits atomic.Uint64
}

// New allocates a memory of n words.
func New(n int) *Memory {
	return &Memory{words: make([]word, n), DepSpins: 4096, Name: "mem"}
}

// Stats returns activity counters.
func (m *Memory) Stats() Stats {
	return Stats{Commits: m.commits.Load(), Aborts: m.aborts.Load(),
		Cascades: m.cascades.Load(), DepWaits: m.depWaits.Load()}
}

// ReadNoTx reads a word non-transactionally (quiescent verification).
func (m *Memory) ReadNoTx(addr int) int64 {
	m.words[addr].mu.Lock()
	defer m.words[addr].mu.Unlock()
	return m.words[addr].value
}

type undoRec struct {
	addr      int
	old       int64
	oldWriter *txnRec
}

// Tx is one dependent-transaction attempt.
type Tx struct {
	mem       *Memory
	rec       *txnRec
	deps      map[*txnRec]bool
	readAddrs map[int]bool
	undo      []undoRec
	sess      *trace.Session
}

// Read returns the word's current value — possibly a speculative value
// released early by an uncommitted writer, in which case this
// transaction becomes dependent on that writer.
func (tx *Tx) Read(addr int) (int64, error) {
	if tx.rec.state.Load() != int32(stActive) {
		return 0, ErrCascade
	}
	if inj := tx.mem.Injector; inj != nil && inj.Fire(chaos.SiteDepConflict) {
		return 0, ErrConflict
	}
	w := &tx.mem.words[addr]
	w.mu.Lock()
	defer w.mu.Unlock()
	v := w.value
	// Visible read: writers must not overtake us before we commit, or
	// the commit order would no longer be a serialization order.
	if w.readers == nil {
		w.readers = make(map[*txnRec]bool)
	}
	w.readers[tx.rec] = true
	tx.readAddrs[addr] = true
	if w.writer != nil && w.writer != tx.rec {
		switch txState(w.writer.state.Load()) {
		case stActive:
			tx.deps[w.writer] = true // dependency established
		case stAborted:
			// Defensive: rollback restores write marks under the word lock
			// before publishing the aborted state, so a dead writer mark
			// should never be observed here — but if it is, retry.
			return 0, ErrConflict
		}
	}
	if tx.sess != nil {
		// A read of committed state publishes eagerly (it must precede
		// any of our own later writes in the shared log); a dependent
		// read — one observing an uncommitted foreign write — cannot be
		// published over that write (PUSH criterion (ii)) and is
		// deferred to commit, after the dependency commits. OpTryEager
		// implements exactly that dichotomy. The certification runs
		// under the word lock — the read's linearization point.
		if !tx.sess.OpTryEager(tx.mem.Name, "read", []int64{int64(addr)}, v) {
			return 0, fmt.Errorf("dep: read certification failed: %w", tx.mem.Recorder.Err())
		}
	}
	return v, nil
}

// Write stores in place, releasing the value early. Overwriting another
// transaction's uncommitted write is a plain conflict (dependencies
// flow through reads only).
func (tx *Tx) Write(addr int, val int64) error {
	if tx.rec.state.Load() != int32(stActive) {
		return ErrCascade
	}
	// A transaction with a live dependency may keep reading (extending
	// the dependence chain) but may not release writes of its own until
	// the dependency commits: its writes are functions of speculative
	// values, and releasing them would chain speculation through
	// *different* addresses, which the commit-ordering protocol (and the
	// Push/Pull publication order) does not track. Conflict-and-retry;
	// by the retry the dependency has usually resolved.
	for dep := range tx.deps {
		if txState(dep.state.Load()) == stActive {
			return ErrConflict
		}
	}
	w := &tx.mem.words[addr]
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.writer != nil && w.writer != tx.rec && w.writer.state.Load() == int32(stActive) {
		return ErrConflict
	}
	// Visible readers: an active foreign reader has this word in its
	// snapshot; writing over it would force that reader to serialize
	// before us despite committing after us. Conflict-and-retry.
	for r := range w.readers {
		if r != tx.rec && txState(r.state.Load()) == stActive {
			return ErrConflict
		}
	}
	old := w.value
	oldWriter := w.writer
	tx.undo = append(tx.undo, undoRec{addr: addr, old: old, oldWriter: oldWriter})
	w.value = val
	w.writer = tx.rec
	if tx.sess != nil {
		// Early-released writes PUSH eagerly (the release), under the
		// word lock — the write's linearization point.
		if !tx.sess.Op(tx.mem.Name, "write", []int64{int64(addr), val}, old) {
			return fmt.Errorf("dep: write certification failed: %w", tx.mem.Recorder.Err())
		}
	}
	return nil
}

// Atomic runs fn as a dependent transaction, retrying conflicts and
// cascades.
func (m *Memory) Atomic(name string, fn func(*Tx) error) error {
	for attempt := 0; ; attempt++ {
		tx := &Tx{mem: m, rec: &txnRec{id: m.ids.Add(1)}, deps: make(map[*txnRec]bool), readAddrs: make(map[int]bool)}
		if m.Recorder != nil {
			tx.sess = m.Recorder.Begin(name)
			tx.sess.PullUncommitted = true
		}
		err := fn(tx)
		if err == nil {
			err = m.commit(tx)
		}
		if err == nil {
			_ = core.Barrier(m.Durable, name)
			m.commits.Add(1)
			return nil
		}
		m.rollback(tx)
		m.aborts.Add(1)
		if errors.Is(err, ErrCascade) {
			m.cascades.Add(1)
		} else if !errors.Is(err, ErrConflict) {
			return err
		}
		if m.Retry != nil {
			if !m.Retry.Allow(attempt + 1) {
				return fmt.Errorf("dep: %w", chaos.ErrRetriesExhausted)
			}
			m.Retry.Backoff(attempt + 1)
			continue
		}
		// Visible-reader/writer storms on hot words thrash without
		// backoff: yield proportionally to the retry count.
		backoff := attempt
		if backoff > 64 {
			backoff = 64
		}
		for i := 0; i <= backoff; i++ {
			runtime.Gosched()
		}
	}
}

// commit waits for every dependency to commit (aborting on a dependency
// abort or timeout), then atomically commits: its own words lose their
// uncommitted-writer mark.
func (m *Memory) commit(tx *Tx) error {
	spins := m.DepSpins
	if spins <= 0 {
		spins = 4096
	}
	for i := 0; ; i++ {
		pending := false
		for dep := range tx.deps {
			switch txState(dep.state.Load()) {
			case stAborted:
				return ErrCascade
			case stActive:
				pending = true
			}
		}
		if tx.rec.state.Load() != int32(stActive) {
			return ErrCascade
		}
		if !pending {
			break
		}
		if i >= spins {
			m.depWaits.Add(1)
			return ErrConflict // dependency cycle / starvation breaker
		}
		runtime.Gosched()
	}
	// Shadow commit first: every dependency has already shadow-committed
	// (a writer's shadow CMT precedes its runtime commit flag), so the
	// deferred read pushes and CMT criterion (iii) go through; readers
	// that observe our runtime commit afterwards find our shadow ops
	// committed too.
	if tx.sess != nil && !tx.sess.Commit() {
		return fmt.Errorf("dep: commit certification failed: %w", m.Recorder.Err())
	}
	tx.rec.state.Store(int32(stCommitted))
	m.unregisterReads(tx)
	// Clear writer marks on our words.
	seen := map[int]bool{}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		addr := tx.undo[i].addr
		if seen[addr] {
			continue
		}
		seen[addr] = true
		w := &m.words[addr]
		w.mu.Lock()
		if w.writer == tx.rec {
			w.writer = nil
		}
		w.mu.Unlock()
	}
	return nil
}

func (m *Memory) unregisterReads(tx *Tx) {
	for addr := range tx.readAddrs {
		w := &m.words[addr]
		w.mu.Lock()
		delete(w.readers, tx.rec)
		w.mu.Unlock()
	}
}

// rollback restores the transaction's words' previous values and
// writers, newest first, rewinds the shadow session, and only then
// marks the transaction aborted (cascading to dependents, who observe
// the state change) and unregisters its visible reads. All written-word
// locks are held across the restore AND the shadow rewind so no reader
// can observe memory and shadow disagreeing. The ordering of the
// aborted mark is load-bearing: while the transaction still looks
// active, writers conflict on its visible reads and write marks; were
// it marked dead before the shadow rewind, a writer could pass those
// checks and eagerly PUSH a shadow write over this transaction's
// still-uncommitted shadow reads — a PUSH criterion (ii) violation
// against a run that is in fact serializable.
func (m *Memory) rollback(tx *Tx) {
	addrs := make([]int, 0, len(tx.undo))
	seen := map[int]bool{}
	for _, u := range tx.undo {
		if !seen[u.addr] {
			seen[u.addr] = true
			addrs = append(addrs, u.addr)
		}
	}
	sort.Ints(addrs)
	for _, a := range addrs {
		m.words[a].mu.Lock()
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		w := &m.words[u.addr]
		if w.writer == tx.rec {
			w.value = u.old
			w.writer = u.oldWriter
		}
	}
	if tx.sess != nil {
		tx.sess.Abort()
	}
	tx.rec.state.Store(int32(stAborted))
	for i := len(addrs) - 1; i >= 0; i-- {
		m.words[addrs[i]].mu.Unlock()
	}
	m.unregisterReads(tx)
}
