package dep_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/serial"
	"pushpull/internal/spec"
	"pushpull/internal/stm/dep"
	"pushpull/internal/trace"
)

func TestSequential(t *testing.T) {
	m := dep.New(4)
	if err := m.Atomic("a", func(tx *dep.Tx) error {
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		return tx.Write(0, v+5)
	}); err != nil {
		t.Fatal(err)
	}
	if m.ReadNoTx(0) != 5 {
		t.Fatalf("mem[0] = %d", m.ReadNoTx(0))
	}
}

// TestEarlyReleaseVisible: a reader observes a writer's uncommitted
// value and becomes dependent; dependency forces commit ordering.
func TestEarlyReleaseVisible(t *testing.T) {
	m := dep.New(4)
	var stage sync.WaitGroup
	stage.Add(1)
	var release sync.WaitGroup
	release.Add(1)
	var observed atomic.Int64
	var writerCommitted atomic.Bool
	var readerCommitted atomic.Bool
	var orderOK atomic.Bool

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: writes early, holds the transaction open
		defer wg.Done()
		err := m.Atomic("writer", func(tx *dep.Tx) error {
			if err := tx.Write(0, 77); err != nil {
				return err
			}
			stage.Done()   // value released
			release.Wait() // keep uncommitted until reader observed it
			return nil
		})
		if err != nil {
			t.Error(err)
		}
		writerCommitted.Store(true)
	}()
	go func() { // reader: sees the speculative value, commits after writer
		defer wg.Done()
		stage.Wait()
		err := m.Atomic("reader", func(tx *dep.Tx) error {
			v, err := tx.Read(0)
			if err != nil {
				return err
			}
			observed.Store(v)
			release.Done() // let the writer commit
			return nil
		})
		if err != nil {
			t.Error(err)
		}
		// The dependency must have delayed us past the writer's commit.
		orderOK.Store(writerCommitted.Load())
		readerCommitted.Store(true)
	}()
	wg.Wait()
	if observed.Load() != 77 {
		t.Fatalf("reader observed %d, want the early-released 77", observed.Load())
	}
	if !orderOK.Load() {
		t.Fatal("reader committed before its dependency")
	}
}

// TestCascadingAbort: the writer aborts after the reader became
// dependent; the reader must cascade (observed via stats) and retry to
// a consistent result.
func TestCascadingAbort(t *testing.T) {
	m := dep.New(4)
	var stage, release sync.WaitGroup
	stage.Add(1)
	release.Add(1)
	boom := fmt.Errorf("boom")

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		err := m.Atomic("writer", func(tx *dep.Tx) error {
			if err := tx.Write(0, 99); err != nil {
				return err
			}
			stage.Done()
			release.Wait()
			return boom // abort after the reader is entangled
		})
		if err != boom {
			t.Errorf("writer err = %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		stage.Wait()
		first := true
		err := m.Atomic("reader", func(tx *dep.Tx) error {
			v, err := tx.Read(0)
			if err != nil {
				return err
			}
			if first {
				first = false
				if v != 99 {
					t.Errorf("first attempt read %d, want speculative 99", v)
				}
				release.Done()
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if m.ReadNoTx(0) != 0 {
		t.Fatalf("mem[0] = %d after writer abort", m.ReadNoTx(0))
	}
	if m.Stats().Cascades == 0 {
		t.Fatalf("no cascade recorded: %+v", m.Stats())
	}
}

func TestConcurrentCounter(t *testing.T) {
	m := dep.New(2)
	const goroutines = 6
	const iters = 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := m.Atomic("inc", func(tx *dep.Tx) error {
					v, err := tx.Read(0)
					if err != nil {
						return err
					}
					return tx.Write(0, v+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := m.ReadNoTx(0); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d (stats %+v)", got, goroutines*iters, m.Stats())
	}
}

// TestCertifiedRun: dependent transactions certified on the shadow
// machine — the non-opaque fragment. The run must be serializable and,
// whenever an early release was actually observed, strictly non-opaque.
func TestCertifiedRun(t *testing.T) {
	reg := spec.NewRegistry()
	reg.Register("mem", adt.Register{})
	m := dep.New(8)
	m.Recorder = trace.NewRecorder(reg)
	m.Recorder.CompactEvery = 0 // keep the full log to inspect opacity

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				addr := (g + i) % 8
				if err := m.Atomic(fmt.Sprintf("d%d-%d", g, i), func(tx *dep.Tx) error {
					v, err := tx.Read(addr)
					if err != nil {
						return err
					}
					return tx.Write(addr, v+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := m.Recorder.FinalCheck(); err != nil {
		for _, v := range m.Recorder.Violations() {
			t.Log(v)
		}
		t.Fatal(err)
	}
	var sum int64
	for a := 0; a < 8; a++ {
		sum += m.ReadNoTx(a)
	}
	if sum != 4*40 {
		t.Fatalf("sum = %d, want %d", sum, 4*40)
	}
	violations := serial.CheckOpacity(m.Recorder.Machine().Events())
	t.Logf("certified %d commits; stats %+v; opacity violations (expected under early release): %d",
		m.Recorder.Commits(), m.Stats(), len(violations))
}
