// Package tl2 is a word-based optimistic software transactional memory
// in the style of Transactional Locking II (Dice, Shalev, Shavit,
// DISC'06) — the canonical §6.2 substrate: a global version clock,
// per-word versioned write-locks, invisible reads validated against a
// read version, and commit-time lock-validate-write-release.
//
// In Push/Pull terms (Section 6.2): a transaction PULLs the committed
// state (its read snapshot), APPlies reads and writes locally, and at
// an uninterleaved moment (write locks held, read set validated)
// PUSHes everything and CMTs; a conflicted transaction UNAPPlies and
// retries — it never needs UNPUSH. Instrumented runs certify exactly
// that decomposition on a shadow machine (internal/trace).
package tl2

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"pushpull/internal/chaos"
	"pushpull/internal/core"
	"pushpull/internal/trace"
)

// ErrConflict aborts the current attempt; Atomic retries it.
var ErrConflict = errors.New("tl2: conflict")

// lockBit marks a word's version-lock as held.
const lockBit = uint64(1)

func isLocked(v uint64) bool        { return v&lockBit != 0 }
func versionOf(v uint64) uint64     { return v >> 1 }
func makeVersion(ver uint64) uint64 { return ver << 1 }

type word struct {
	vlock atomic.Uint64 // version<<1 | lockBit
	value atomic.Int64
}

// Stats counts memory-wide commit activity.
type Stats struct {
	Commits uint64
	Aborts  uint64
}

// Memory is a transactional array of words.
type Memory struct {
	clock atomic.Uint64
	words []word

	// Name is the object instance name used in certification records
	// (must match the registry binding of an adt.Register).
	Name string
	// Recorder, when non-nil, certifies every commit on a shadow
	// Push/Pull machine.
	Recorder *trace.Recorder
	// Injector, when non-nil, is consulted at the fault sites
	// (SiteTL2Read per transactional read, SiteTL2Commit per commit);
	// injected faults surface as ordinary ErrConflict aborts.
	Injector chaos.Injector
	// Retry, when non-nil, bounds retries and shapes backoff in
	// AtomicNamed; an exhausted budget returns ErrRetriesExhausted
	// (wrapped).
	Retry *chaos.RetryPolicy
	// Durable, when non-nil, is the commit-path durability barrier:
	// the write-ahead log is flushed before a commit is acknowledged.
	Durable core.Durable

	commits atomic.Uint64
	aborts  atomic.Uint64
}

// New allocates a memory of n words, all zero.
func New(n int) *Memory {
	return &Memory{words: make([]word, n), Name: "mem"}
}

// Stats returns commit/abort counts.
func (m *Memory) Stats() Stats {
	return Stats{Commits: m.commits.Load(), Aborts: m.aborts.Load()}
}

// ReadNoTx reads a word non-transactionally (for test verification on
// quiescent memory).
func (m *Memory) ReadNoTx(addr int) int64 { return m.words[addr].value.Load() }

type writeRec struct {
	addr int
	val  int64
}

// Tx is one transaction attempt.
type Tx struct {
	mem *Memory
	rv  uint64

	reads   []writeRec    // addr/value pairs observed
	writes  map[int]int64 // final value per address
	program []progOp      // full program-order op list, for certification
}

type progOp struct {
	isWrite bool
	addr    int
	val     int64 // read: observed value; write: written value
}

// Read returns the word at addr as of the transaction's snapshot.
func (tx *Tx) Read(addr int) (int64, error) {
	if inj := tx.mem.Injector; inj != nil && inj.Fire(chaos.SiteTL2Read) {
		return 0, ErrConflict
	}
	if v, ok := tx.writes[addr]; ok {
		tx.program = append(tx.program, progOp{addr: addr, val: v})
		return v, nil
	}
	w := &tx.mem.words[addr]
	v1 := w.vlock.Load()
	if isLocked(v1) || versionOf(v1) > tx.rv {
		return 0, ErrConflict
	}
	val := w.value.Load()
	if w.vlock.Load() != v1 {
		return 0, ErrConflict
	}
	tx.reads = append(tx.reads, writeRec{addr: addr, val: val})
	tx.program = append(tx.program, progOp{addr: addr, val: val})
	return val, nil
}

// Write buffers a write of val to addr (redo-log style: invisible until
// commit).
func (tx *Tx) Write(addr int, val int64) error {
	if tx.writes == nil {
		tx.writes = make(map[int]int64)
	}
	tx.writes[addr] = val
	tx.program = append(tx.program, progOp{isWrite: true, addr: addr, val: val})
	return nil
}

// Atomic runs fn transactionally, retrying on conflicts until commit.
// A non-ErrConflict error from fn aborts without retry and is returned.
func (m *Memory) Atomic(fn func(*Tx) error) error {
	return m.AtomicNamed("", fn)
}

// AtomicNamed is Atomic with a transaction name for certification.
func (m *Memory) AtomicNamed(name string, fn func(*Tx) error) error {
	for attempt := 0; ; attempt++ {
		tx := &Tx{mem: m, rv: m.clock.Load()}
		err := fn(tx)
		if err == nil {
			err = m.commit(name, tx)
		}
		if err == nil {
			_ = core.Barrier(m.Durable, name)
			m.commits.Add(1)
			return nil
		}
		if !errors.Is(err, ErrConflict) {
			m.aborts.Add(1)
			return err
		}
		m.aborts.Add(1)
		if m.Retry != nil {
			if !m.Retry.Allow(attempt + 1) {
				return fmt.Errorf("tl2: %w", chaos.ErrRetriesExhausted)
			}
			m.Retry.Backoff(attempt + 1)
			continue
		}
		// Bounded backoff keeps the single-CPU cooperative case live.
		for i := 0; i < attempt%8; i++ {
			runtime.Gosched()
		}
	}
}

// commit is the TL2 commit protocol: lock the write set in address
// order, increment the clock, validate the read set against rv, apply,
// and release with the new version. The shadow certification runs while
// the locks are held (the linearization point).
func (m *Memory) commit(name string, tx *Tx) error {
	if m.Injector != nil && m.Injector.Fire(chaos.SiteTL2Commit) {
		return ErrConflict
	}
	if len(tx.writes) == 0 {
		// Read-only: reads were validated individually against rv; the
		// serialization point is the final revalidation, which runs
		// inside the recorder's critical section when certifying.
		if m.Recorder != nil {
			okCert := m.Recorder.AtomicTxnFunc(name, func() ([]trace.OpRecord, bool) {
				if !m.validateReads(tx, 0, false) {
					return nil, false
				}
				return m.certOps(tx), true
			})
			if !okCert {
				return ErrConflict
			}
			return nil
		}
		if !m.validateReads(tx, 0, false) {
			return ErrConflict
		}
		return nil
	}

	addrs := make([]int, 0, len(tx.writes))
	for a := range tx.writes {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)

	locked := make([]int, 0, len(addrs))
	release := func(ver uint64, apply bool) {
		for _, a := range locked {
			w := &m.words[a]
			if apply {
				w.value.Store(tx.writes[a])
				w.vlock.Store(makeVersion(ver))
			} else {
				// Restore the pre-lock version.
				w.vlock.Store(w.vlock.Load() &^ lockBit)
			}
		}
	}
	for _, a := range addrs {
		w := &m.words[a]
		acquired := false
		for spin := 0; spin < 64; spin++ {
			v := w.vlock.Load()
			if isLocked(v) {
				runtime.Gosched()
				continue
			}
			if versionOf(v) > tx.rv {
				// A committed write since our snapshot: even our write
				// may be based on a stale read of this word; abort.
				release(0, false)
				return ErrConflict
			}
			if w.vlock.CompareAndSwap(v, v|lockBit) {
				acquired = true
				break
			}
		}
		if !acquired {
			release(0, false)
			return ErrConflict
		}
		locked = append(locked, a)
	}

	wv := m.clock.Add(1)
	if wv != tx.rv+1 {
		if !m.validateReads(tx, 0, true) {
			release(0, false)
			return ErrConflict
		}
	}

	if m.Recorder != nil {
		// The recorder serializes shadow commits; our write locks protect
		// the write set, but the read set is only protected by the
		// validation instant. A conflicting writer may shadow-commit
		// between our validation above and our turn on the recorder, so
		// the reads are REVALIDATED inside the recorder's critical
		// section: the certified order then agrees with the lock-protocol
		// serialization order. (A still-locked read word means such a
		// writer is mid-commit; we abort and retry.)
		revalidated := false
		certified := m.Recorder.AtomicTxnFunc(name, func() ([]trace.OpRecord, bool) {
			if !m.validateReads(tx, 0, true) {
				return nil, false
			}
			revalidated = true
			return m.certOps(tx), true
		})
		if !certified {
			if revalidated {
				// Model violation: surface loudly. Apply anyway so the
				// substrate's own invariants stay intact; the recorder
				// has logged the violation.
				release(wv, true)
				return fmt.Errorf("tl2: certification failed: %w", m.Recorder.Err())
			}
			// Revalidation failed: a plain conflict.
			release(0, false)
			return ErrConflict
		}
	}
	release(wv, true)
	return nil
}

// validateReads re-checks every read word: unlocked (or locked by us —
// selfLocked when we hold write locks) and version ≤ rv.
func (m *Memory) validateReads(tx *Tx, _ uint64, selfLocked bool) bool {
	for _, r := range tx.reads {
		w := &m.words[r.addr]
		v := w.vlock.Load()
		if versionOf(v) > tx.rv {
			return false
		}
		if isLocked(v) {
			if !selfLocked {
				return false
			}
			if _, mine := tx.writes[r.addr]; !mine {
				return false
			}
		}
	}
	return true
}

// certOps converts the attempt's program-order operations to
// certification records: reads carry the observed value; each write's
// return (the overwritten value) is reconstructed left to right from
// the committed values at the linearization point.
func (m *Memory) certOps(tx *Tx) []trace.OpRecord {
	current := make(map[int]int64)
	ops := make([]trace.OpRecord, 0, len(tx.program))
	lookup := func(addr int) int64 {
		if v, ok := current[addr]; ok {
			return v
		}
		return m.words[addr].value.Load()
	}
	for _, p := range tx.program {
		if p.isWrite {
			old := lookup(p.addr)
			current[p.addr] = p.val
			ops = append(ops, trace.OpRecord{
				Obj: m.Name, Method: "write", Args: []int64{int64(p.addr), p.val}, Ret: old,
			})
		} else {
			// The observed value, NOT the current committed one: the
			// shadow machine recomputes the read against the committed
			// view and flags any divergence — a stale read slipping past
			// validation would fail certification here.
			ops = append(ops, trace.OpRecord{
				Obj: m.Name, Method: "read", Args: []int64{int64(p.addr)}, Ret: p.val,
			})
		}
	}
	return ops
}
