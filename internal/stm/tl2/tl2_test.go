package tl2_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"pushpull/internal/adt"
	"pushpull/internal/spec"
	"pushpull/internal/stm/tl2"
	"pushpull/internal/trace"
)

func TestSequentialReadWrite(t *testing.T) {
	m := tl2.New(8)
	err := m.Atomic(func(tx *tl2.Tx) error {
		if err := tx.Write(0, 42); err != nil {
			return err
		}
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		if v != 42 {
			return fmt.Errorf("read own write = %d", v)
		}
		return tx.Write(1, v+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.ReadNoTx(0) != 42 || m.ReadNoTx(1) != 43 {
		t.Fatalf("memory = %d,%d", m.ReadNoTx(0), m.ReadNoTx(1))
	}
	st := m.Stats()
	if st.Commits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestUserErrorAbortsWithoutRetry(t *testing.T) {
	m := tl2.New(4)
	boom := errors.New("boom")
	err := m.Atomic(func(tx *tl2.Tx) error {
		if err := tx.Write(0, 1); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if m.ReadNoTx(0) != 0 {
		t.Fatal("aborted write leaked")
	}
}

// TestConcurrentCounter: N goroutines increment one word; the final
// value must be exactly N*iters (atomicity), a test lost updates fail.
func TestConcurrentCounter(t *testing.T) {
	m := tl2.New(4)
	const goroutines = 8
	const iters = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := m.Atomic(func(tx *tl2.Tx) error {
					v, err := tx.Read(0)
					if err != nil {
						return err
					}
					return tx.Write(0, v+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := m.ReadNoTx(0); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d (lost updates!)", got, goroutines*iters)
	}
}

// TestBankTransferInvariant: concurrent transfers conserve the total —
// the canonical serializability smoke test.
func TestBankTransferInvariant(t *testing.T) {
	const accounts = 8
	const total = int64(8000)
	m := tl2.New(accounts)
	if err := m.Atomic(func(tx *tl2.Tx) error {
		for a := 0; a < accounts; a++ {
			if err := tx.Write(a, total/accounts); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				from := (g + i) % accounts
				to := (g + i + 1) % accounts
				err := m.Atomic(func(tx *tl2.Tx) error {
					fv, err := tx.Read(from)
					if err != nil {
						return err
					}
					tv, err := tx.Read(to)
					if err != nil {
						return err
					}
					if err := tx.Write(from, fv-1); err != nil {
						return err
					}
					return tx.Write(to, tv+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	var sum int64
	for a := 0; a < accounts; a++ {
		sum += m.ReadNoTx(a)
	}
	if sum != total {
		t.Fatalf("total = %d, want %d", sum, total)
	}
}

// TestCertifiedRun attaches a shadow Push/Pull machine: every commit is
// replayed as PULL*,APP*,PUSH*,CMT with all criteria checked. The run
// must certify with zero violations (Theorem 5.17 instantiated for a
// real concurrent TL2 execution).
func TestCertifiedRun(t *testing.T) {
	reg := spec.NewRegistry()
	reg.Register("mem", adt.Register{})
	m := tl2.New(16)
	m.Name = "mem"
	m.Recorder = trace.NewRecorder(reg)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				addr := (g*7 + i) % 16
				err := m.AtomicNamed(fmt.Sprintf("g%d-%d", g, i), func(tx *tl2.Tx) error {
					v, err := tx.Read(addr)
					if err != nil {
						return err
					}
					if err := tx.Write(addr, v+1); err != nil {
						return err
					}
					// A read-mostly tail to exercise pulls.
					_, err = tx.Read((addr + 1) % 16)
					return err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Read-only transactions certify through AtomicTxnFunc.
	for i := 0; i < 40; i++ {
		err := m.AtomicNamed(fmt.Sprintf("ro-%d", i), func(tx *tl2.Tx) error {
			_, err := tx.Read(i % 16)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := m.Recorder.FinalCheck(); err != nil {
		for _, v := range m.Recorder.Violations() {
			t.Log(v)
		}
		t.Fatal(err)
	}
	if m.Recorder.Commits() == 0 {
		t.Fatal("nothing certified")
	}
	t.Logf("certified %d commits; stats %+v", m.Recorder.Commits(), m.Stats())
}

func BenchmarkTL2LowContention(b *testing.B) {
	m := tl2.New(1024)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			addr := (i * 31) % 1024
			i++
			_ = m.Atomic(func(tx *tl2.Tx) error {
				v, err := tx.Read(addr)
				if err != nil {
					return err
				}
				return tx.Write(addr, v+1)
			})
		}
	})
}

func BenchmarkTL2HighContention(b *testing.B) {
	m := tl2.New(4)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = m.Atomic(func(tx *tl2.Tx) error {
				v, err := tx.Read(0)
				if err != nil {
					return err
				}
				return tx.Write(0, v+1)
			})
		}
	})
}
