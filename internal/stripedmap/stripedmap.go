// Package stripedmap is a linearizable concurrent hash map with lock
// striping — a second base object for transactional boosting (the
// "ConcurrentHashTable" flavour of Figure 2, next to the skiplist).
//
// The table is an array of buckets; each bucket chain is guarded by one
// of a fixed pool of stripe mutexes (bucketIndex mod stripes). Resizing
// doubles the bucket array under all stripe locks (acquired in index
// order), a classic design that keeps the per-operation path short
// while allowing the table to grow; the stripe count is fixed, so locks
// never need to be rehashed.
//
// Linearization points: Put/Remove/Get at their bucket-lock critical
// sections; Len via an atomic counter maintained inside them.
package stripedmap

import (
	"sync"
	"sync/atomic"
)

const (
	defaultStripes     = 32
	initialBuckets     = 64
	maxLoadNumerator   = 3 // resize when size > buckets * 3/2
	maxLoadDenominator = 2
)

type entry struct {
	key   int64
	value int64
	next  *entry
}

// Map is a concurrent int64→int64 hash map. Use New.
type Map struct {
	stripes []sync.Mutex

	// buckets is swapped wholesale during resize; readers load it after
	// taking their stripe lock, so they always see a consistent table.
	buckets atomic.Pointer[[]*entry]

	size     atomic.Int64
	resizeMu sync.Mutex // serializes resizes (not ordinary ops)
}

// New returns an empty map with the default stripe pool.
func New() *Map {
	return NewWithStripes(defaultStripes)
}

// NewWithStripes returns an empty map with n stripe locks (n ≥ 1).
func NewWithStripes(n int) *Map {
	if n < 1 {
		n = 1
	}
	m := &Map{stripes: make([]sync.Mutex, n)}
	b := make([]*entry, initialBuckets)
	m.buckets.Store(&b)
	return m
}

// mix is a 64-bit finalizer (splitmix64) so adversarial keys spread.
func mix(k int64) uint64 {
	z := uint64(k) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// lockFor locks the stripe guarding key's bucket in the CURRENT table
// and returns the table and bucket index. Because a resize takes every
// stripe lock, the table cannot change while we hold ours.
func (m *Map) lockFor(key int64) (tab []*entry, idx int, stripe *sync.Mutex) {
	h := mix(key)
	for {
		tabPtr := m.buckets.Load()
		tab := *tabPtr
		idx := int(h % uint64(len(tab)))
		stripe := &m.stripes[idx%len(m.stripes)]
		stripe.Lock()
		// Revalidate: a resize may have swapped the table between our
		// load and the lock. The stripe set differs per table size, so
		// re-deriving from the current table is required.
		if m.buckets.Load() == tabPtr {
			return tab, idx, stripe
		}
		stripe.Unlock()
	}
}

// Get returns the value mapped to key.
func (m *Map) Get(key int64) (int64, bool) {
	_, idx, stripe := m.lockFor(key)
	defer stripe.Unlock()
	tab := *m.buckets.Load()
	for e := tab[idx]; e != nil; e = e.next {
		if e.key == key {
			return e.value, true
		}
	}
	return 0, false
}

// Contains reports whether key is present.
func (m *Map) Contains(key int64) bool {
	_, ok := m.Get(key)
	return ok
}

// Put maps key to value, returning the previous value if one existed.
func (m *Map) Put(key, value int64) (old int64, existed bool) {
	tab, idx, stripe := m.lockFor(key)
	for e := tab[idx]; e != nil; e = e.next {
		if e.key == key {
			old = e.value
			e.value = value
			stripe.Unlock()
			return old, true
		}
	}
	tab[idx] = &entry{key: key, value: value, next: tab[idx]}
	n := m.size.Add(1)
	stripe.Unlock()
	if int(n)*maxLoadDenominator > len(tab)*maxLoadNumerator {
		m.resize(len(tab))
	}
	return 0, false
}

// Remove deletes key, returning the removed value if it was present.
func (m *Map) Remove(key int64) (old int64, existed bool) {
	tab, idx, stripe := m.lockFor(key)
	defer stripe.Unlock()
	var prev *entry
	for e := tab[idx]; e != nil; e = e.next {
		if e.key == key {
			if prev == nil {
				tab[idx] = e.next
			} else {
				prev.next = e.next
			}
			m.size.Add(-1)
			return e.value, true
		}
		prev = e
	}
	return 0, false
}

// Len returns the number of present keys.
func (m *Map) Len() int { return int(m.size.Load()) }

// Range calls f for each key/value until it returns false. The
// traversal locks one stripe at a time: weakly consistent, like the
// java.util.concurrent views boosting builds on.
func (m *Map) Range(f func(key, value int64) bool) {
	tabPtr := m.buckets.Load()
	tab := *tabPtr
	for idx := range tab {
		stripe := &m.stripes[idx%len(m.stripes)]
		stripe.Lock()
		// Skip buckets whose table vanished under a resize; the caller
		// gets the weakly-consistent view contract either way.
		if m.buckets.Load() != tabPtr {
			stripe.Unlock()
			return
		}
		for e := tab[idx]; e != nil; e = e.next {
			k, v := e.key, e.value
			if !f(k, v) {
				stripe.Unlock()
				return
			}
		}
		stripe.Unlock()
	}
}

// resize doubles the bucket array if it still has the expected size.
// All stripes are locked in index order (total order: no deadlock with
// lockFor, which holds at most one).
func (m *Map) resize(expect int) {
	m.resizeMu.Lock()
	defer m.resizeMu.Unlock()
	old := *m.buckets.Load()
	if len(old) != expect {
		return // someone else already resized
	}
	for i := range m.stripes {
		m.stripes[i].Lock()
	}
	defer func() {
		for i := len(m.stripes) - 1; i >= 0; i-- {
			m.stripes[i].Unlock()
		}
	}()
	next := make([]*entry, len(old)*2)
	for _, head := range old {
		for e := head; e != nil; e = e.next {
			idx := int(mix(e.key) % uint64(len(next)))
			next[idx] = &entry{key: e.key, value: e.value, next: next[idx]}
		}
	}
	m.buckets.Store(&next)
}
