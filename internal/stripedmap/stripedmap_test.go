package stripedmap_test

import (
	"math/rand"
	"sync"
	"testing"

	"pushpull/internal/stripedmap"
)

func TestSequentialBasics(t *testing.T) {
	m := stripedmap.New()
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map contains 1")
	}
	if old, existed := m.Put(1, 10); existed || old != 0 {
		t.Fatalf("put: %d,%v", old, existed)
	}
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatalf("get: %d,%v", v, ok)
	}
	if old, existed := m.Put(1, 20); !existed || old != 10 {
		t.Fatalf("overwrite: %d,%v", old, existed)
	}
	if old, existed := m.Remove(1); !existed || old != 20 {
		t.Fatalf("remove: %d,%v", old, existed)
	}
	if m.Contains(1) || m.Len() != 0 {
		t.Fatal("remove incomplete")
	}
}

func TestResizeKeepsContents(t *testing.T) {
	m := stripedmap.NewWithStripes(4)
	const n = 5000 // far past the initial 64 buckets
	for k := int64(0); k < n; k++ {
		m.Put(k, k*3)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d", m.Len())
	}
	for k := int64(0); k < n; k++ {
		if v, ok := m.Get(k); !ok || v != k*3 {
			t.Fatalf("key %d: %d,%v", k, v, ok)
		}
	}
}

func TestAgainstReference(t *testing.T) {
	m := stripedmap.New()
	ref := map[int64]int64{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30000; i++ {
		k := int64(rng.Intn(500))
		switch rng.Intn(3) {
		case 0:
			v := int64(rng.Intn(1000))
			old, existed := m.Put(k, v)
			rold, rex := ref[k]
			if existed != rex || (existed && old != rold) {
				t.Fatalf("put(%d,%d): (%d,%v) want (%d,%v)", k, v, old, existed, rold, rex)
			}
			ref[k] = v
		case 1:
			old, existed := m.Remove(k)
			rold, rex := ref[k]
			if existed != rex || (existed && old != rold) {
				t.Fatalf("remove(%d): (%d,%v) want (%d,%v)", k, old, existed, rold, rex)
			}
			delete(ref, k)
		default:
			v, ok := m.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("get(%d): (%d,%v) want (%d,%v)", k, v, ok, rv, rok)
			}
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len=%d want %d", m.Len(), len(ref))
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	m := stripedmap.New()
	const writers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * per)
			for i := int64(0); i < per; i++ {
				m.Put(base+i, base+i)
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != writers*per {
		t.Fatalf("Len = %d", m.Len())
	}
	for k := int64(0); k < writers*per; k++ {
		if v, ok := m.Get(k); !ok || v != k {
			t.Fatalf("key %d missing", k)
		}
	}
}

func TestConcurrentMixedWithResizes(t *testing.T) {
	m := stripedmap.NewWithStripes(8)
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 4000; i++ {
				k := int64(rng.Intn(3000))
				switch rng.Intn(3) {
				case 0:
					m.Put(k, int64(i))
				case 1:
					m.Remove(k)
				default:
					m.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	// Structural sanity: Len matches a full traversal on the quiescent
	// table.
	count := 0
	m.Range(func(k, v int64) bool {
		count++
		return true
	})
	if count != m.Len() {
		t.Fatalf("Len=%d traversal=%d", m.Len(), count)
	}
}

func BenchmarkStripedMapPutGet(b *testing.B) {
	m := stripedmap.New()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(rng.Intn(4096))
		if i%2 == 0 {
			m.Put(k, int64(i))
		} else {
			m.Get(k)
		}
	}
}
