package seq

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// harness collects forced batches, per-shard retire orders, and
// settled outcomes behind one mutex.
type harness struct {
	mu       sync.Mutex
	batches  [][]uint64 // forced GSNs per epoch
	epochs   []uint64
	retired  map[int][]uint64 // shard -> GSNs in retire order
	done     map[uint64]error // GSN -> settle error (nil = committed)
	forceErr error
}

func newHarness() *harness {
	return &harness{retired: make(map[int][]uint64), done: make(map[uint64]error)}
}

func (h *harness) options(shards int) Options {
	return Options{
		Shards: shards,
		Force: func(epoch uint64, items []Item) error {
			h.mu.Lock()
			defer h.mu.Unlock()
			if h.forceErr != nil {
				return h.forceErr
			}
			var gsns []uint64
			for _, it := range items {
				gsns = append(gsns, it.GSN)
			}
			h.batches = append(h.batches, gsns)
			h.epochs = append(h.epochs, epoch)
			return nil
		},
		Retire: func(shard int, it Item) {
			h.mu.Lock()
			h.retired[shard] = append(h.retired[shard], it.GSN)
			h.mu.Unlock()
		},
		Done: func(it Item, committed bool, err error) {
			h.mu.Lock()
			if committed {
				h.done[it.GSN] = nil
			} else {
				if err == nil {
					err = errors.New("aborted without cause")
				}
				h.done[it.GSN] = err
			}
			h.mu.Unlock()
		},
	}
}

func waitSettled(t *testing.T, h *harness, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h.mu.Lock()
		got := len(h.done)
		h.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d/%d settled", got, n)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// ascending asserts a slice is strictly increasing.
func ascending(t *testing.T, label string, gsns []uint64) {
	t.Helper()
	for i := 1; i < len(gsns); i++ {
		if gsns[i] <= gsns[i-1] {
			t.Fatalf("%s out of GSN order: %v", label, gsns)
		}
	}
}

// TestRetireOrderIsGSNOrder readies admissions out of order from many
// goroutines and asserts every shard retires its subsequence in
// strictly ascending GSN order, with every epoch's batch ascending and
// epoch numbers consecutive.
func TestRetireOrderIsGSNOrder(t *testing.T) {
	h := newHarness()
	s := New(h.options(3))
	const n = 200
	rng := rand.New(rand.NewSource(7))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		tk, err := s.Admit()
		if err != nil {
			t.Fatalf("admit: %v", err)
		}
		shards := []int{int(tk.GSN % 3), int((tk.GSN + 1) % 3)}
		wg.Add(1)
		go func(tk Ticket, d time.Duration) {
			defer wg.Done()
			time.Sleep(d) // scramble readiness order
			s.Ready(tk, shards, nil)
		}(tk, time.Duration(rng.Intn(300))*time.Microsecond)
	}
	wg.Wait()
	waitSettled(t, h, n)
	s.Close()

	h.mu.Lock()
	defer h.mu.Unlock()
	for sid, got := range h.retired {
		ascending(t, "shard retire order", got)
		_ = sid
	}
	var all []uint64
	for i, b := range h.batches {
		ascending(t, "batch", b)
		if h.epochs[i] != uint64(i+1) {
			t.Fatalf("epoch %d sealed as %d", i+1, h.epochs[i])
		}
		all = append(all, b...)
	}
	ascending(t, "cross-batch order", all)
	if len(all) != n {
		t.Fatalf("forced %d items, want %d", len(all), n)
	}
	for gsn, err := range h.done {
		if err != nil {
			t.Fatalf("gsn %d aborted: %v", gsn, err)
		}
	}
}

// TestAbortSkipsGSN aborts the head admission and asserts the rest
// still seal (the cursor advances past the hole).
func TestAbortSkipsGSN(t *testing.T) {
	h := newHarness()
	s := New(h.options(2))
	first, _ := s.Admit()
	second, _ := s.Admit()
	third, _ := s.Admit()
	s.Ready(second, []int{0}, nil)
	s.Ready(third, []int{1}, nil)
	// Nothing can seal while GSN 1 is unresolved.
	time.Sleep(2 * time.Millisecond)
	h.mu.Lock()
	if len(h.batches) != 0 {
		t.Fatalf("sealed %v before the head resolved", h.batches)
	}
	h.mu.Unlock()
	s.Abort(first)
	waitSettled(t, h, 2)
	s.Close()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done[second.GSN] != nil || h.done[third.GSN] != nil {
		t.Fatalf("ready items aborted: %v", h.done)
	}
	st := s.Stats()
	if st.Aborted != 1 || st.Batched != 2 || st.Queue != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestForceFailureAbortsBatch fails the force and asserts every item
// of the batch settles aborted with the force error, nothing retired.
func TestForceFailureAbortsBatch(t *testing.T) {
	h := newHarness()
	boom := errors.New("log crashed")
	h.forceErr = boom
	s := New(h.options(2))
	a, _ := s.Admit()
	b, _ := s.Admit()
	s.Ready(a, []int{0, 1}, nil)
	s.Ready(b, []int{1}, nil)
	waitSettled(t, h, 2)
	s.Close()
	h.mu.Lock()
	defer h.mu.Unlock()
	for gsn, err := range h.done {
		if !errors.Is(err, boom) {
			t.Fatalf("gsn %d settled with %v, want the force error", gsn, err)
		}
	}
	if len(h.retired) != 0 {
		t.Fatalf("retired %v after a failed force", h.retired)
	}
}

// TestCloseAbortsStuckItems closes with GSN 1 unreported and asserts
// the ready-but-blocked items settle with ErrClosed, and that Ready
// and Admit after Close fail fast.
func TestCloseAbortsStuckItems(t *testing.T) {
	h := newHarness()
	s := New(h.options(1))
	stuck, _ := s.Admit()
	blocked, _ := s.Admit()
	s.Ready(blocked, []int{0}, nil)
	s.Close()
	waitSettled(t, h, 1)
	h.mu.Lock()
	if !errors.Is(h.done[blocked.GSN], ErrClosed) {
		t.Fatalf("blocked item settled with %v, want ErrClosed", h.done[blocked.GSN])
	}
	h.mu.Unlock()
	// The unreported admission can still report; it settles closed.
	s.Ready(stuck, []int{0}, nil)
	waitSettled(t, h, 2)
	h.mu.Lock()
	if !errors.Is(h.done[stuck.GSN], ErrClosed) {
		t.Fatalf("late ready settled with %v, want ErrClosed", h.done[stuck.GSN])
	}
	h.mu.Unlock()
	if _, err := s.Admit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("admit after close: %v, want ErrClosed", err)
	}
}

// TestAdaptiveBatching stalls the force and asserts transactions
// arriving during it accumulate into one later epoch (group commit:
// batch size grows with force latency).
func TestAdaptiveBatching(t *testing.T) {
	h := newHarness()
	opts := h.options(1)
	slow := make(chan struct{})
	first := true
	inner := opts.Force
	opts.Force = func(epoch uint64, items []Item) error {
		if first {
			first = false
			<-slow // hold epoch 1 open while more admissions arrive
		}
		return inner(epoch, items)
	}
	s := New(opts)
	head, _ := s.Admit()
	s.Ready(head, []int{0}, nil)
	// Wait for the sealer to enter the stalled force, then pile on.
	time.Sleep(time.Millisecond)
	const pile = 20
	for i := 0; i < pile; i++ {
		tk, _ := s.Admit()
		s.Ready(tk, []int{0}, nil)
	}
	close(slow)
	waitSettled(t, h, pile+1)
	s.Close()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.batches) < 2 {
		t.Fatalf("want >= 2 epochs, got %v", h.batches)
	}
	if got := s.Stats().MaxBatch; got < 2 {
		t.Fatalf("accumulation never batched: max batch %d", got)
	}
}

// TestMaxBatchCapsEpoch seals 10 ready items with MaxBatch 4 and
// asserts no epoch exceeds the cap while all items commit.
func TestMaxBatchCapsEpoch(t *testing.T) {
	h := newHarness()
	opts := h.options(1)
	opts.MaxBatch = 4
	s := New(opts)
	const n = 10
	for i := 0; i < n; i++ {
		tk, _ := s.Admit()
		s.Ready(tk, []int{0}, nil)
	}
	waitSettled(t, h, n)
	s.Close()
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for _, b := range h.batches {
		if len(b) > 4 {
			t.Fatalf("epoch exceeded MaxBatch: %v", b)
		}
		total += len(b)
	}
	if total != n {
		t.Fatalf("committed %d, want %d", total, n)
	}
}

// TestGateRunsBeforeDispatch asserts the gate observes each batch
// before any of its retires run.
func TestGateRunsBeforeDispatch(t *testing.T) {
	h := newHarness()
	opts := h.options(2)
	var mu sync.Mutex
	retiredAtGate := -1
	opts.Gate = func(items int) {
		mu.Lock()
		defer mu.Unlock()
		h.mu.Lock()
		n := 0
		for _, r := range h.retired {
			n += len(r)
		}
		h.mu.Unlock()
		if retiredAtGate == -1 {
			retiredAtGate = n
		}
	}
	s := New(opts)
	tk, _ := s.Admit()
	s.Ready(tk, []int{0, 1}, nil)
	waitSettled(t, h, 1)
	s.Close()
	mu.Lock()
	defer mu.Unlock()
	if retiredAtGate != 0 {
		t.Fatalf("gate ran after %d retires", retiredAtGate)
	}
}
