// Package seq is the deterministic ordered-commit subsystem: a
// sequencer that admits cross-shard transactions into numbered epochs,
// assigns the global serial number (GSN) at admission — before
// execution — and retires them in exactly that order through one
// durable batch force per epoch plus per-shard ordered release queues.
//
// This is the Calvin-shaped alternative to a coordinator mutex, mapped
// onto Push/Pull: the PUSH order is pinned up front (the GSN), the CMT
// criterion is checked per batch (the single forced batch record is
// the durable commit point for every transaction in the epoch), and
// each shard's executor releases branch CMTs strictly in GSN order —
// so every shard's cross-commit subsequence equals the global order by
// construction, commits on different shards proceed concurrently, and
// the per-transaction forced log write plus global mutex hold of the
// 2PC coordinator collapse into one log force per epoch.
//
// Lifecycle of one transaction:
//
//	tk, _ := s.Admit()          // GSN assigned; order now fixed
//	  ... execute + prepare on every participant shard ...
//	s.Ready(tk, shards, load)   // prepared: eligible for the next epoch
//	  — or —
//	s.Abort(tk)                 // never prepared: the GSN is skipped
//
// The sealer goroutine advances a cursor through contiguous
// resolved GSNs (ready or aborted); the unresolved head blocks the
// epoch — head-of-line blocking is the price of a predetermined order.
// Each sealed epoch is forced durable as one batch (Force), then its
// items are dispatched, in GSN order, to every participant shard's
// ordered queue; executors call Retire sequentially per shard, and
// Done fires once per item when its last shard has retired it.
//
// Batching is adaptive group commit: the sealer seals whatever
// accumulated while the previous force was in flight, so batch size
// grows with load and idle latency stays at one force. BatchInterval
// optionally stretches the accumulation window; MaxBatch caps an
// epoch.
package seq

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed reports an admission or readiness report against a closed
// sequencer; the transaction must abort (its epoch will never seal).
var ErrClosed = errors.New("seq: sequencer closed")

// Ticket is an admitted transaction's place in the global order.
type Ticket struct {
	GSN uint64
}

// Item is one ready transaction riding an epoch: its GSN, the
// participant shards whose executors must retire it, and the caller's
// payload (opaque to the sequencer).
type Item struct {
	GSN     uint64
	Shards  []int
	Payload any
}

// Observer receives sequencer telemetry. Implementations must be
// cheap and non-blocking; obs/metrics.Metrics satisfies it.
type Observer interface {
	// SeqBatchSealed fires once per sealed epoch with its size.
	SeqBatchSealed(size int, epoch uint64)
	// SeqQueueAdd moves the queue-depth gauge: +1 at admission, -1 when
	// the transaction settles (committed, aborted, or closed out).
	SeqQueueAdd(delta int64)
}

// Options configure a Sequencer.
type Options struct {
	// Shards is the executor count; Items may only name shards in
	// [0, Shards).
	Shards int
	// BatchInterval stretches the accumulation window after the first
	// retireable transaction of an epoch appears. Zero is pure adaptive
	// group commit: the epoch seals as soon as the sealer is free, and
	// batch size grows naturally with the duration of the previous
	// force.
	BatchInterval time.Duration
	// MaxBatch caps an epoch's size (default 256). The cap also keeps
	// the encoded batch record well under the coordinator log's frame
	// limit.
	MaxBatch int
	// Force durably journals one sealed epoch — the batch's single
	// commit point. A non-nil error aborts every item in the batch
	// (none was released, so the abort is consistent).
	Force func(epoch uint64, items []Item) error
	// Gate, when non-nil, runs after a successful Force and before any
	// item of the batch is dispatched — the engine's snapshot-cut
	// barrier hangs here. It may block; it must not call back into the
	// sequencer.
	Gate func(items int)
	// Retire releases one item's branch on one shard and drives its CMT
	// to completion. Called sequentially per shard, in GSN order.
	Retire func(shard int, it Item)
	// Done fires exactly once per admitted-and-reported item: committed
	// after every participant shard retired it, aborted (err non-nil)
	// when its batch force failed or the sequencer closed under it.
	Done func(it Item, committed bool, err error)
	// Observer receives telemetry (optional).
	Observer Observer
}

// Stats is a sequencer census.
type Stats struct {
	Epochs   uint64 // sealed epochs (batches forced)
	Batched  uint64 // transactions committed through sealed epochs
	Aborted  uint64 // admissions that settled without sealing
	MaxBatch int    // largest sealed epoch
	Queue    int64  // admitted minus settled (current depth)
}

// pending tracks one dispatched item across its participant shards.
type pending struct {
	it   Item
	left int32
}

// shardQueue is one shard's ordered release queue.
type shardQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  list.List // of *pending, GSN order
	closed bool
}

func newShardQueue() *shardQueue {
	q := &shardQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *shardQueue) push(p *pending) {
	q.mu.Lock()
	q.items.PushBack(p)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *shardQueue) pop() (*pending, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.items.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.items.Len() == 0 {
		return nil, false
	}
	front := q.items.Front()
	q.items.Remove(front)
	return front.Value.(*pending), true
}

func (q *shardQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *shardQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

// Sequencer is the deterministic ordered-commit core.
type Sequencer struct {
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond // wakes the sealer
	nextGSN uint64
	cursor  uint64 // lowest unretired GSN
	ready   map[uint64]Item
	aborted map[uint64]bool
	closed  bool

	epoch    uint64
	batched  atomic.Uint64
	abortCnt atomic.Uint64
	maxBatch int
	queue    atomic.Int64

	queues []*shardQueue
	sealWG sync.WaitGroup
	execWG sync.WaitGroup
}

// New starts a sequencer: one sealer goroutine plus one executor per
// shard. Close releases them.
func New(opts Options) *Sequencer {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 256
	}
	s := &Sequencer{
		opts:    opts,
		cursor:  1,
		ready:   make(map[uint64]Item),
		aborted: make(map[uint64]bool),
		queues:  make([]*shardQueue, opts.Shards),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.queues {
		s.queues[i] = newShardQueue()
		s.execWG.Add(1)
		go s.executor(i)
	}
	s.sealWG.Add(1)
	go s.run()
	return s
}

// Admit assigns the next GSN — the transaction's final place in the
// global commit order, fixed before it executes. Every admission must
// be resolved with exactly one Ready or Abort, or the cursor stalls.
func (s *Sequencer) Admit() (Ticket, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Ticket{}, ErrClosed
	}
	s.nextGSN++
	tk := Ticket{GSN: s.nextGSN}
	s.mu.Unlock()
	s.observeQueue(1)
	return tk, nil
}

// Ready reports the transaction prepared on every participant shard:
// it joins the next epoch its GSN is contiguous with. After Close the
// item is aborted immediately (Done with ErrClosed).
func (s *Sequencer) Ready(tk Ticket, shards []int, payload any) {
	it := Item{GSN: tk.GSN, Shards: shards, Payload: payload}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.settle(it, false, ErrClosed)
		return
	}
	s.ready[tk.GSN] = it
	s.mu.Unlock()
	s.cond.Signal()
}

// Abort reports the transaction dead before it prepared: its GSN is
// skipped and the cursor may advance past it.
func (s *Sequencer) Abort(tk Ticket) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.abortCnt.Add(1)
		s.observeQueue(-1)
		return
	}
	s.aborted[tk.GSN] = true
	s.mu.Unlock()
	s.abortCnt.Add(1)
	s.observeQueue(-1)
	s.cond.Signal()
}

// retireableLocked reports whether the cursor can advance (its GSN is
// resolved).
func (s *Sequencer) retireableLocked() bool {
	if s.aborted[s.cursor] {
		return true
	}
	_, ok := s.ready[s.cursor]
	return ok
}

// collectLocked advances the cursor through contiguous resolved GSNs,
// gathering up to MaxBatch ready items; aborted GSNs are skipped and
// forgotten. Returns the epoch number iff the batch is non-empty.
func (s *Sequencer) collectLocked() (uint64, []Item) {
	var batch []Item
	for len(batch) < s.opts.MaxBatch {
		if s.aborted[s.cursor] {
			delete(s.aborted, s.cursor)
			s.cursor++
			continue
		}
		it, ok := s.ready[s.cursor]
		if !ok {
			break
		}
		delete(s.ready, s.cursor)
		batch = append(batch, it)
		s.cursor++
	}
	if len(batch) == 0 {
		return 0, nil
	}
	s.epoch++
	if len(batch) > s.maxBatch {
		s.maxBatch = len(batch)
	}
	return s.epoch, batch
}

// run is the sealer: wait for a retireable head, optionally stretch
// the accumulation window, seal, force, dispatch; on Close, drain what
// can seal and abort the rest.
func (s *Sequencer) run() {
	defer s.sealWG.Done()
	for {
		s.mu.Lock()
		for !s.closed && !s.retireableLocked() {
			s.cond.Wait()
		}
		if s.closed {
			for s.retireableLocked() {
				epoch, batch := s.collectLocked()
				s.mu.Unlock()
				s.seal(epoch, batch)
				s.mu.Lock()
			}
			leftovers := make([]Item, 0, len(s.ready))
			for _, it := range s.ready {
				leftovers = append(leftovers, it)
			}
			s.ready = make(map[uint64]Item)
			s.mu.Unlock()
			for _, it := range leftovers {
				s.settle(it, false, ErrClosed)
			}
			return
		}
		grown := len(s.ready)
		s.mu.Unlock()
		if s.opts.BatchInterval > 0 && grown < s.opts.MaxBatch {
			time.Sleep(s.opts.BatchInterval)
		}
		s.mu.Lock()
		epoch, batch := s.collectLocked()
		s.mu.Unlock()
		if len(batch) > 0 {
			s.seal(epoch, batch)
		}
	}
}

// seal forces one epoch durable and dispatches it in GSN order; a
// failed force aborts the whole batch (nothing was released).
func (s *Sequencer) seal(epoch uint64, batch []Item) {
	if s.opts.Observer != nil {
		s.opts.Observer.SeqBatchSealed(len(batch), epoch)
	}
	if err := s.opts.Force(epoch, batch); err != nil {
		for _, it := range batch {
			s.settle(it, false, err)
		}
		return
	}
	if s.opts.Gate != nil {
		s.opts.Gate(len(batch))
	}
	for _, it := range batch {
		p := &pending{it: it, left: int32(len(it.Shards))}
		if p.left == 0 {
			s.settle(it, true, nil)
			continue
		}
		for _, sid := range it.Shards {
			s.queues[sid].push(p)
		}
	}
}

// executor retires one shard's queue strictly in arrival (= GSN)
// order; the last shard to retire an item settles it.
func (s *Sequencer) executor(sid int) {
	defer s.execWG.Done()
	q := s.queues[sid]
	for {
		p, ok := q.pop()
		if !ok {
			return
		}
		s.opts.Retire(sid, p.it)
		if atomic.AddInt32(&p.left, -1) == 0 {
			s.settle(p.it, true, nil)
		}
	}
}

// settle fires Done exactly once per reported item and moves the
// counters.
func (s *Sequencer) settle(it Item, committed bool, err error) {
	if committed {
		s.batched.Add(1)
	} else {
		s.abortCnt.Add(1)
	}
	s.observeQueue(-1)
	if s.opts.Done != nil {
		s.opts.Done(it, committed, err)
	}
}

func (s *Sequencer) observeQueue(delta int64) {
	s.queue.Add(delta)
	if s.opts.Observer != nil {
		s.opts.Observer.SeqQueueAdd(delta)
	}
}

// Flush blocks until every transaction reported before the call has
// settled (tests; the sealer needs no nudge, only time).
func (s *Sequencer) Flush() {
	for {
		s.mu.Lock()
		idle := len(s.ready) == 0 && len(s.aborted) == 0
		s.mu.Unlock()
		if idle {
			depth := 0
			for _, q := range s.queues {
				depth += q.depth()
			}
			if depth == 0 {
				return
			}
		}
		s.cond.Signal()
		time.Sleep(100 * time.Microsecond)
	}
}

// Close seals and dispatches everything retireable, aborts ready items
// stuck behind unreported GSNs, drains the executors, and stops. Ready
// and Abort remain safe to call after Close (the item settles with
// ErrClosed); Admit fails with ErrClosed.
func (s *Sequencer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.sealWG.Wait()
		s.execWG.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.sealWG.Wait()
	for _, q := range s.queues {
		q.close()
	}
	s.execWG.Wait()
}

// Epoch returns the latest sealed epoch number.
func (s *Sequencer) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Stats returns a census.
func (s *Sequencer) Stats() Stats {
	s.mu.Lock()
	epochs, maxBatch := s.epoch, s.maxBatch
	s.mu.Unlock()
	return Stats{
		Epochs:   epochs,
		Batched:  s.batched.Load(),
		Aborted:  s.abortCnt.Load(),
		MaxBatch: maxBatch,
		Queue:    s.queue.Load(),
	}
}
