// Package locks implements the abstract lock manager transactional
// boosting uses (Figure 2: "abstractLock(key).lock()"): two-level locks
// over (object, key) pairs so that only commutative operations proceed
// in parallel.
//
// Key operations take a shared intent lock on the object plus a lock on
// their key; whole-object operations (size) take the object lock
// exclusively. Acquisition is try-lock style with owner bookkeeping, so
// cooperative drivers implement timeout/wait-die abort policies on top,
// exactly as boosted transactions abort on lock timeout to avoid
// deadlock.
//
// Key locks come in two modes. The default (TryAcquire) is exclusive:
// one owner at a time, re-entrant. TryAcquireClass additionally admits
// commute classes: any number of owners may hold the same key
// concurrently provided they all declared the same non-empty class —
// the lock-level realization of an ADT commutativity judgment ("two
// unit-returning adds to one counter commute"), so commuting typed
// operations need not conflict while everything else still does.
//
// The manager is also usable under real concurrency (internal/stm/boost)
// — all state is guarded by an internal mutex and waiting is the
// caller's business (try/acquire-or-fail), which keeps the model-level
// cooperative scheduler and the goroutine-level substrate on the same
// code path.
package locks

import (
	"fmt"
	"sort"
	"sync"
)

// Owner identifies a lock holder (a transaction).
type Owner uint64

// None is the zero Owner, held by nobody.
const None Owner = 0

// Exclusive is the empty commute class: no sharing.
const Exclusive = ""

// Key identifies one abstract lock: an object instance and a key within
// it. Whole-object locks use the object's entry with WholeObject true.
type Key struct {
	Obj         string
	K           int64
	WholeObject bool
}

func (k Key) String() string {
	if k.WholeObject {
		return k.Obj + "/*"
	}
	return fmt.Sprintf("%s/%d", k.Obj, k.K)
}

// keyHold is one key's lock state: the commute class every current
// holder agreed on ("" = exclusive, at most one owner) and per-owner
// hold counts for re-entrancy.
type keyHold struct {
	class  string
	owners map[Owner]int
}

type objLocks struct {
	// exclusive whole-object owner, if any
	objOwner Owner
	// wholeHolds counts re-entrant whole-object holds.
	wholeHolds int
	// shared intent holders: owner -> count of key holds
	intent map[Owner]int
	// per-key lock state
	keys map[int64]*keyHold
}

// Manager is the abstract lock table.
type Manager struct {
	mu   sync.Mutex
	objs map[string]*objLocks
}

// NewManager returns an empty lock table.
func NewManager() *Manager {
	return &Manager{objs: make(map[string]*objLocks)}
}

func (m *Manager) obj(name string) *objLocks {
	ol, ok := m.objs[name]
	if !ok {
		ol = &objLocks{intent: make(map[Owner]int), keys: make(map[int64]*keyHold)}
		m.objs[name] = ol
	}
	return ol
}

// TryAcquire attempts to take the lock for owner in exclusive mode. It
// is re-entrant: re-acquiring a held lock succeeds and increments the
// hold count. It returns false (without blocking or partial effects)
// when the lock conflicts with another owner.
func (m *Manager) TryAcquire(o Owner, k Key) bool {
	ok, _ := m.TryAcquireClass(o, k, Exclusive)
	return ok
}

// TryAcquireClass attempts to take the lock for owner under a commute
// class. A non-empty class is a sharing ticket: owners whose operations
// commute declare the same class and hold the key together; class
// Exclusive ("") admits one owner only. Re-acquisition by the sole
// holder under a different class escalates the key to exclusive (the
// owner's operations no longer all commute with one class, so nobody
// else may join). shared reports whether the acquisition joined other
// live holders — a commute hit: the acquisition that would have
// conflicted on an exclusive-only table.
func (m *Manager) TryAcquireClass(o Owner, k Key, class string) (ok, shared bool) {
	if o == None {
		panic("locks: owner 0 is reserved")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ol := m.obj(k.Obj)
	if k.WholeObject {
		// Conflicts with any other owner's object lock or intent.
		if ol.objOwner != None && ol.objOwner != o {
			return false, false
		}
		for other, n := range ol.intent {
			if other != o && n > 0 {
				return false, false
			}
		}
		ol.objOwner = o
		ol.wholeHolds++
		return true, false
	}
	// Key lock: conflicts with another owner's whole-object lock, and
	// with the key's holders unless everyone shares one commute class.
	if ol.objOwner != None && ol.objOwner != o {
		return false, false
	}
	kh := ol.keys[k.K]
	if kh == nil {
		ol.keys[k.K] = &keyHold{class: class, owners: map[Owner]int{o: 1}}
		ol.intent[o]++
		return true, false
	}
	others := len(kh.owners)
	if kh.owners[o] > 0 {
		others--
	}
	if kh.owners[o] > 0 && others == 0 {
		// Sole holder re-entering: always allowed; a different class
		// escalates to exclusive.
		if kh.class != class {
			kh.class = Exclusive
		}
		kh.owners[o]++
		ol.intent[o]++
		return true, false
	}
	// Other owners hold the key: join only under the matching shared
	// class.
	if class == Exclusive || kh.class != class {
		return false, false
	}
	kh.owners[o]++
	ol.intent[o]++
	return true, true
}

// Release drops one hold of the lock. Releasing a lock not held by o
// panics: that is a driver bug, not a recoverable condition.
func (m *Manager) Release(o Owner, k Key) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ol := m.obj(k.Obj)
	if k.WholeObject {
		if ol.objOwner != o {
			panic(fmt.Sprintf("locks: %v releasing whole-object %s held by %v", o, k.Obj, ol.objOwner))
		}
		ol.wholeHolds--
		if ol.wholeHolds == 0 {
			ol.objOwner = None
		}
		return
	}
	kh := ol.keys[k.K]
	if kh == nil || kh.owners[o] == 0 {
		panic(fmt.Sprintf("locks: %v releasing %v it does not hold", o, k))
	}
	kh.owners[o]--
	ol.intent[o]--
	if kh.owners[o] == 0 {
		delete(kh.owners, o)
		if len(kh.owners) == 0 {
			delete(ol.keys, k.K)
		}
	}
	if ol.intent[o] == 0 {
		delete(ol.intent, o)
	}
}

// ReleaseAll drops every hold owner o has, in deterministic order,
// returning how many holds were released. Used on commit and abort.
func (m *Manager) ReleaseAll(o Owner) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	released := 0
	names := make([]string, 0, len(m.objs))
	for name := range m.objs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ol := m.objs[name]
		if ol.objOwner == o {
			released += ol.wholeHolds
			ol.wholeHolds = 0
			ol.objOwner = None
		}
		for key, kh := range ol.keys {
			if n := kh.owners[o]; n > 0 {
				released += n
				ol.intent[o] -= n
				delete(kh.owners, o)
				if len(kh.owners) == 0 {
					delete(ol.keys, key)
				}
			}
		}
		if ol.intent[o] <= 0 {
			delete(ol.intent, o)
		}
	}
	return released
}

// Holds reports whether o currently holds the lock.
func (m *Manager) Holds(o Owner, k Key) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ol, ok := m.objs[k.Obj]
	if !ok {
		return false
	}
	if k.WholeObject {
		return ol.objOwner == o
	}
	kh := ol.keys[k.K]
	return kh != nil && kh.owners[o] > 0
}

// OwnerOf returns the current sole owner of the lock (None if free or
// held by several commuting owners). Whole-object queries report the
// object owner.
func (m *Manager) OwnerOf(k Key) Owner {
	m.mu.Lock()
	defer m.mu.Unlock()
	ol, ok := m.objs[k.Obj]
	if !ok {
		return None
	}
	if k.WholeObject {
		return ol.objOwner
	}
	kh := ol.keys[k.K]
	if kh == nil || len(kh.owners) != 1 {
		return None
	}
	for o := range kh.owners {
		return o
	}
	return None
}

// HeldCount returns the total number of holds across all owners —
// zero on a quiescent table; the leak check schedulers and chaos
// campaigns assert after every run.
func (m *Manager) HeldCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ol := range m.objs {
		n += ol.wholeHolds
		for _, kh := range ol.keys {
			for _, c := range kh.owners {
				n += c
			}
		}
	}
	return n
}

// HeldOwners lists the owners currently holding any lock, sorted — the
// diagnostic companion of HeldCount.
func (m *Manager) HeldOwners() []Owner {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[Owner]bool{}
	for _, ol := range m.objs {
		if ol.objOwner != None {
			seen[ol.objOwner] = true
		}
		for _, kh := range ol.keys {
			for o := range kh.owners {
				seen[o] = true
			}
		}
	}
	out := make([]Owner, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone deep-copies the lock table (for exhaustive exploration).
func (m *Manager) Clone() *Manager {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewManager()
	for name, ol := range m.objs {
		col := c.obj(name)
		col.objOwner = ol.objOwner
		col.wholeHolds = ol.wholeHolds
		for o, n := range ol.intent {
			col.intent[o] = n
		}
		for k, kh := range ol.keys {
			ckh := &keyHold{class: kh.class, owners: make(map[Owner]int, len(kh.owners))}
			for o, n := range kh.owners {
				ckh.owners[o] = n
			}
			col.keys[k] = ckh
		}
	}
	return c
}
