// Package locks implements the abstract lock manager transactional
// boosting uses (Figure 2: "abstractLock(key).lock()"): two-level locks
// over (object, key) pairs so that only commutative operations proceed
// in parallel.
//
// Key operations take a shared intent lock on the object plus an
// exclusive lock on their key; whole-object operations (size) take the
// object lock exclusively. Acquisition is try-lock style with owner
// bookkeeping, so cooperative drivers implement timeout/wait-die abort
// policies on top, exactly as boosted transactions abort on lock
// timeout to avoid deadlock.
//
// The manager is also usable under real concurrency (internal/stm/boost)
// — all state is guarded by an internal mutex and waiting is the
// caller's business (try/acquire-or-fail), which keeps the model-level
// cooperative scheduler and the goroutine-level substrate on the same
// code path.
package locks

import (
	"fmt"
	"sort"
	"sync"
)

// Owner identifies a lock holder (a transaction).
type Owner uint64

// None is the zero Owner, held by nobody.
const None Owner = 0

// Key identifies one abstract lock: an object instance and a key within
// it. Whole-object locks use the object's entry with WholeObject true.
type Key struct {
	Obj         string
	K           int64
	WholeObject bool
}

func (k Key) String() string {
	if k.WholeObject {
		return k.Obj + "/*"
	}
	return fmt.Sprintf("%s/%d", k.Obj, k.K)
}

type objLocks struct {
	// exclusive whole-object owner, if any
	objOwner Owner
	// shared intent holders: owner -> count of key locks held
	intent map[Owner]int
	// per-key exclusive owners (re-entrant per owner)
	keys map[int64]Owner
	// per-key hold counts for re-entrancy
	holds map[int64]int
}

// Manager is the abstract lock table.
type Manager struct {
	mu   sync.Mutex
	objs map[string]*objLocks
}

// NewManager returns an empty lock table.
func NewManager() *Manager {
	return &Manager{objs: make(map[string]*objLocks)}
}

func (m *Manager) obj(name string) *objLocks {
	ol, ok := m.objs[name]
	if !ok {
		ol = &objLocks{intent: make(map[Owner]int), keys: make(map[int64]Owner), holds: make(map[int64]int)}
		m.objs[name] = ol
	}
	return ol
}

// TryAcquire attempts to take the lock for owner. It is re-entrant:
// re-acquiring a held lock succeeds and increments the hold count.
// It returns false (without blocking or partial effects) when the lock
// conflicts with another owner.
func (m *Manager) TryAcquire(o Owner, k Key) bool {
	if o == None {
		panic("locks: owner 0 is reserved")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ol := m.obj(k.Obj)
	if k.WholeObject {
		// Conflicts with any other owner's object lock or intent.
		if ol.objOwner != None && ol.objOwner != o {
			return false
		}
		for other, n := range ol.intent {
			if other != o && n > 0 {
				return false
			}
		}
		ol.objOwner = o
		ol.holds[allKeysSentinel]++
		return true
	}
	// Key lock: conflicts with another owner's whole-object lock or the
	// key's exclusive owner.
	if ol.objOwner != None && ol.objOwner != o {
		return false
	}
	if cur := ol.keys[k.K]; cur != None && cur != o {
		return false
	}
	ol.keys[k.K] = o
	ol.holds[k.K]++
	ol.intent[o]++
	return true
}

const allKeysSentinel = int64(-1) << 62

// Release drops one hold of the lock. Releasing a lock not held by o
// panics: that is a driver bug, not a recoverable condition.
func (m *Manager) Release(o Owner, k Key) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ol := m.obj(k.Obj)
	if k.WholeObject {
		if ol.objOwner != o {
			panic(fmt.Sprintf("locks: %v releasing whole-object %s held by %v", o, k.Obj, ol.objOwner))
		}
		ol.holds[allKeysSentinel]--
		if ol.holds[allKeysSentinel] == 0 {
			ol.objOwner = None
		}
		return
	}
	if ol.keys[k.K] != o {
		panic(fmt.Sprintf("locks: %v releasing %v held by %v", o, k, ol.keys[k.K]))
	}
	ol.holds[k.K]--
	ol.intent[o]--
	if ol.holds[k.K] == 0 {
		delete(ol.keys, k.K)
		delete(ol.holds, k.K)
	}
	if ol.intent[o] == 0 {
		delete(ol.intent, o)
	}
}

// ReleaseAll drops every hold owner o has, in deterministic order,
// returning how many holds were released. Used on commit and abort.
func (m *Manager) ReleaseAll(o Owner) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	released := 0
	names := make([]string, 0, len(m.objs))
	for name := range m.objs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ol := m.objs[name]
		if ol.objOwner == o {
			released += ol.holds[allKeysSentinel]
			ol.holds[allKeysSentinel] = 0
			ol.objOwner = None
		}
		for key, owner := range ol.keys {
			if owner == o {
				released += ol.holds[key]
				ol.intent[o] -= ol.holds[key]
				delete(ol.keys, key)
				delete(ol.holds, key)
			}
		}
		if ol.intent[o] <= 0 {
			delete(ol.intent, o)
		}
	}
	return released
}

// Holds reports whether o currently holds the lock.
func (m *Manager) Holds(o Owner, k Key) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ol, ok := m.objs[k.Obj]
	if !ok {
		return false
	}
	if k.WholeObject {
		return ol.objOwner == o
	}
	return ol.keys[k.K] == o
}

// OwnerOf returns the current exclusive owner of the lock (None if
// free). Whole-object queries report the object owner.
func (m *Manager) OwnerOf(k Key) Owner {
	m.mu.Lock()
	defer m.mu.Unlock()
	ol, ok := m.objs[k.Obj]
	if !ok {
		return None
	}
	if k.WholeObject {
		return ol.objOwner
	}
	return ol.keys[k.K]
}

// HeldCount returns the total number of holds across all owners —
// zero on a quiescent table; the leak check schedulers and chaos
// campaigns assert after every run.
func (m *Manager) HeldCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ol := range m.objs {
		for _, c := range ol.holds {
			n += c
		}
	}
	return n
}

// HeldOwners lists the owners currently holding any lock, sorted — the
// diagnostic companion of HeldCount.
func (m *Manager) HeldOwners() []Owner {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[Owner]bool{}
	for _, ol := range m.objs {
		if ol.objOwner != None {
			seen[ol.objOwner] = true
		}
		for _, o := range ol.keys {
			if o != None {
				seen[o] = true
			}
		}
	}
	out := make([]Owner, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone deep-copies the lock table (for exhaustive exploration).
func (m *Manager) Clone() *Manager {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewManager()
	for name, ol := range m.objs {
		col := c.obj(name)
		col.objOwner = ol.objOwner
		for o, n := range ol.intent {
			col.intent[o] = n
		}
		for k, o := range ol.keys {
			col.keys[k] = o
		}
		for k, n := range ol.holds {
			col.holds[k] = n
		}
	}
	return c
}
