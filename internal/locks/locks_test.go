package locks_test

import (
	"sync"
	"testing"

	"pushpull/internal/locks"
)

func TestKeyLockBasics(t *testing.T) {
	m := locks.NewManager()
	k1 := locks.Key{Obj: "ht", K: 1}
	k2 := locks.Key{Obj: "ht", K: 2}
	if !m.TryAcquire(1, k1) {
		t.Fatal("free key lock must acquire")
	}
	if m.TryAcquire(2, k1) {
		t.Fatal("held key lock must refuse another owner")
	}
	if !m.TryAcquire(2, k2) {
		t.Fatal("distinct key must be independent")
	}
	if !m.TryAcquire(1, k1) {
		t.Fatal("re-entrant acquire must succeed")
	}
	m.Release(1, k1)
	if m.TryAcquire(2, k1) {
		t.Fatal("one release of a doubly-held lock must not free it")
	}
	m.Release(1, k1)
	if !m.TryAcquire(2, k1) {
		t.Fatal("fully released lock must be acquirable")
	}
}

func TestWholeObjectLock(t *testing.T) {
	m := locks.NewManager()
	key := locks.Key{Obj: "set", K: 5}
	whole := locks.Key{Obj: "set", WholeObject: true}
	// Key lock blocks whole-object lock by another owner.
	if !m.TryAcquire(1, key) {
		t.Fatal(err1("key"))
	}
	if m.TryAcquire(2, whole) {
		t.Fatal("whole-object lock must conflict with a foreign key lock")
	}
	// Same owner may escalate.
	if !m.TryAcquire(1, whole) {
		t.Fatal("same owner must escalate to whole-object")
	}
	// Whole-object lock blocks foreign key locks.
	if m.TryAcquire(2, locks.Key{Obj: "set", K: 9}) {
		t.Fatal("foreign key lock must conflict with whole-object")
	}
	m.Release(1, whole)
	m.Release(1, key)
	if !m.TryAcquire(2, whole) {
		t.Fatal("released object must be lockable")
	}
	// Whole-object holder may take its own key locks.
	if !m.TryAcquire(2, locks.Key{Obj: "set", K: 9}) {
		t.Fatal("whole-object holder must take its own key locks")
	}
}

func err1(what string) string { return "setup: could not acquire " + what + " lock" }

func TestReleaseAll(t *testing.T) {
	m := locks.NewManager()
	m.TryAcquire(1, locks.Key{Obj: "a", K: 1})
	m.TryAcquire(1, locks.Key{Obj: "a", K: 2})
	m.TryAcquire(1, locks.Key{Obj: "b", WholeObject: true})
	m.TryAcquire(1, locks.Key{Obj: "a", K: 1}) // re-entrant
	if n := m.ReleaseAll(1); n != 4 {
		t.Fatalf("ReleaseAll released %d holds, want 4", n)
	}
	for _, k := range []locks.Key{{Obj: "a", K: 1}, {Obj: "a", K: 2}, {Obj: "b", WholeObject: true}} {
		if !m.TryAcquire(2, k) {
			t.Fatalf("lock %v not released", k)
		}
	}
}

func TestHoldsAndOwnerOf(t *testing.T) {
	m := locks.NewManager()
	k := locks.Key{Obj: "x", K: 3}
	if m.Holds(1, k) || m.OwnerOf(k) != locks.None {
		t.Fatal("fresh lock must be unowned")
	}
	m.TryAcquire(7, k)
	if !m.Holds(7, k) || m.OwnerOf(k) != 7 {
		t.Fatal("ownership not tracked")
	}
}

func TestReleaseForeignPanics(t *testing.T) {
	m := locks.NewManager()
	k := locks.Key{Obj: "x", K: 1}
	m.TryAcquire(1, k)
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a foreign lock must panic (driver bug)")
		}
	}()
	m.Release(2, k)
}

func TestClone(t *testing.T) {
	m := locks.NewManager()
	k := locks.Key{Obj: "x", K: 1}
	m.TryAcquire(1, k)
	c := m.Clone()
	// Clone sees the hold; releasing in the clone must not affect the
	// original.
	if !c.Holds(1, k) {
		t.Fatal("clone lost holds")
	}
	c.ReleaseAll(1)
	if !m.Holds(1, k) {
		t.Fatal("clone release leaked into original")
	}
	if !c.TryAcquire(2, k) {
		t.Fatal("clone not released")
	}
}

func TestConcurrentAcquisition(t *testing.T) {
	m := locks.NewManager()
	const goroutines = 8
	const iters = 2000
	var counter int64 // protected by the abstract lock
	var wg sync.WaitGroup
	k := locks.Key{Obj: "ctr", WholeObject: true}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			owner := locks.Owner(g + 1)
			for i := 0; i < iters; i++ {
				for !m.TryAcquire(owner, k) {
				}
				counter++
				m.Release(owner, k)
			}
		}(g)
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d: mutual exclusion broken", counter, goroutines*iters)
	}
}
