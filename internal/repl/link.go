package repl

import (
	"errors"
	"sync"

	"pushpull/internal/chaos"
)

// LinkStats counts one link's wire activity, faults included.
type LinkStats struct {
	Batches     uint64 `json:"batches"`
	Acked       uint64 `json:"acked"`
	Dropped     uint64 `json:"dropped"`
	Duplicated  uint64 `json:"duplicated"`
	Reordered   uint64 `json:"reordered"`
	GapRejects  uint64 `json:"gap_rejects"`
	Fenced      uint64 `json:"fenced_rejects"`
	Partitioned uint64 `json:"partitioned"`
	Healed      uint64 `json:"healed"`
	Pending     int    `json:"pending"`
	Detached    bool   `json:"detached,omitempty"`
}

// PartitionWindow cuts a link for a range of its batch indices: every
// batch whose index falls in [From, To) is held in the link's pending
// backlog instead of delivered, and flushed in order once the window
// passes (or Heal is called). Windows are batch-index based rather than
// wall-clock so a seeded run replays exactly.
//
// An asymmetric window models the nastier half-open failure: the batch
// IS delivered (the replica holds and folds the bytes) but the ack is
// lost on the way back, so the primary must treat it as outstanding.
// The heal-time retransmit lands as a pure duplicate, which the
// replica's overlap check trims — and any client retry of a commit
// acked-withheld during the window is the exactly-once session table's
// problem, not the replica's.
type PartitionWindow struct {
	From uint64 `json:"from"` // first cut batch index
	To   uint64 `json:"to"`   // first batch index past the window
	Asym bool   `json:"asym,omitempty"`
}

// Link ships batches from a primary to one replica with deterministic
// drop/duplicate/reorder faults (chaos.Hash01 over a per-link visit
// counter, so a seeded run replays exactly) and retransmits until the
// replica acks. Delivery is synchronous: ship returns only when the
// replica holds the batch — or has fenced the sender off.
type Link struct {
	mu      sync.Mutex
	rep     *Replica
	seed    int64
	drop    float64
	dup     float64
	reorder float64
	visit   uint64
	wins    []PartitionWindow
	pending []Batch
	stats   LinkStats
	err     error
	group   *Group
}

// Replica returns the link's target.
func (ln *Link) Replica() *Replica { return ln.rep }

// Stats snapshots the link counters.
func (ln *Link) Stats() LinkStats {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	return ln.stats
}

// Err returns the link's terminal error, if any (a gap or poison the
// retransmit protocol could not clear).
func (ln *Link) Err() error {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	return ln.err
}

// deliver hands one batch to the replica and classifies the outcome.
// Returns true when shipping of this batch is finished (acked, or
// terminally refused).
func (ln *Link) deliver(b Batch) bool {
	err := ln.rep.Apply(b)
	switch {
	case err == nil:
		ln.stats.Acked++
		return true
	case errors.Is(err, ErrFenced):
		// A successor reigns. Stop shipping; tell the engine so it
		// stops acking. The refused batch's commit is deliberately not
		// acknowledged (Engine.Do withholds the ack once fenced).
		ln.stats.Fenced++
		ln.stats.Detached = true
		if ln.group != nil {
			ln.group.fencedBy(ln.rep.Epoch())
		}
		return true
	case errors.Is(err, ErrGap):
		ln.stats.GapRejects++
		return false
	default:
		// Poisoned replica or malformed batch: no retry fixes it.
		ln.stats.Detached = true
		if ln.err == nil {
			ln.err = err
		}
		return true
	}
}

// Partition schedules a cut on the link. Windows may overlap; the link
// is cut at batch index i when any window covers i.
func (ln *Link) Partition(w PartitionWindow) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.wins = append(ln.wins, w)
}

// Partitioned reports whether batch index idx falls in a cut window
// (and the covering window, for the asymmetric flag).
func (ln *Link) window(idx uint64) *PartitionWindow {
	for i := range ln.wins {
		if idx >= ln.wins[i].From && idx < ln.wins[i].To {
			return &ln.wins[i]
		}
	}
	return nil
}

// Pending reports how many batches the link is holding behind a
// partition — the backlog a primary's ack gate must treat as
// not-yet-replicated.
func (ln *Link) Pending() int {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	return len(ln.pending)
}

// Heal clears every partition window and flushes the pending backlog
// now, without waiting for the next shipped batch to notice the window
// has passed.
func (ln *Link) Heal() {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.wins = nil
	ln.flushLocked()
}

// flushLocked retransmits the pending backlog in ship order through the
// fault model. Batches delivered during an asymmetric window land as
// pure duplicates and are trimmed; full-partition batches land as fresh
// bytes. Stops early if the link detaches mid-flush.
func (ln *Link) flushLocked() {
	for len(ln.pending) > 0 && !ln.stats.Detached {
		b := ln.pending[0]
		ln.pending = ln.pending[1:]
		ln.stats.Healed++
		ln.transmitLocked(b)
	}
	ln.stats.Pending = len(ln.pending)
}

// ship delivers one batch through the fault model: a batch landing in a
// partition window is held (asymmetric windows deliver it but lose the
// ack); once past the window, the pending backlog flushes first so
// bytes land in order.
func (ln *Link) ship(b Batch) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if ln.stats.Detached {
		return
	}
	idx := ln.stats.Batches
	ln.stats.Batches++
	if w := ln.window(idx); w != nil {
		ln.stats.Partitioned++
		if w.Asym {
			// The batch crosses; only the ack is lost. Fencing is still
			// observable (the refusal travels with the delivery attempt);
			// gaps and poison are not — the heal-time retransmit owns
			// resolving those.
			if err := ln.rep.Apply(b); errors.Is(err, ErrFenced) {
				ln.stats.Fenced++
				ln.stats.Detached = true
				if ln.group != nil {
					ln.group.fencedBy(ln.rep.Epoch())
				}
				return
			}
		}
		ln.pending = append(ln.pending, b)
		ln.stats.Pending = len(ln.pending)
		return
	}
	if len(ln.pending) > 0 {
		ln.flushLocked()
		if ln.stats.Detached {
			return
		}
	}
	ln.transmitLocked(b)
}

// transmitLocked runs the retransmit loop for one batch, retrying
// until acked. Faults are decided per transmission attempt; because a
// "drop" just burns an attempt and the protocol retransmits, shipping
// always terminates (a deterministic hash cannot drop forever below
// rate 1, and a hard cap forces the final attempt clean).
func (ln *Link) transmitLocked(b Batch) {
	for attempt := 0; ; attempt++ {
		h := chaos.Hash01(ln.seed, "repl/link", ln.visit)
		ln.visit++
		forced := attempt >= 64 // safety cap: final retransmit is clean
		switch {
		case !forced && h < ln.drop:
			// Lost on the wire: the shipper times out and retransmits.
			ln.stats.Dropped++
			continue
		case !forced && h < ln.drop+ln.dup:
			// Delivered twice: the second copy must be trimmed as a
			// pure duplicate by the replica's overlap check.
			ln.stats.Duplicated++
			if !ln.deliver(b) {
				continue
			}
			ln.deliver(b)
			return
		case !forced && h < ln.drop+ln.dup+ln.reorder && len(b.Data) > 1:
			// Split and deliver out of order: the second half arrives
			// first, which the replica must gap-reject; the retransmit
			// then lands both halves in order.
			ln.stats.Reordered++
			mid := len(b.Data) / 2
			first := Batch{Stream: b.Stream, Seg: b.Seg, Off: b.Off, Data: b.Data[:mid], Epoch: b.Epoch}
			second := Batch{Stream: b.Stream, Seg: b.Seg, Off: b.Off + mid, Data: b.Data[mid:], Epoch: b.Epoch}
			ln.deliver(second) // expected ErrGap (unless a duplicate overlap absorbs it)
			if ln.stats.Detached {
				return
			}
			if ln.deliver(first) && ln.deliver(second) {
				return
			}
			continue
		default:
			if ln.deliver(b) {
				return
			}
		}
		if ln.stats.Detached {
			return
		}
		if attempt > 80 {
			// A clean in-order transmission was still refused: the
			// replica is terminally behind (a gap retransmits cannot
			// close from here). Give up on this link.
			ln.stats.Detached = true
			if ln.err == nil {
				ln.err = errors.New("repl: link gave up after repeated refusals")
			}
			return
		}
	}
}

// Group fans one primary's ship seam out to every attached link —
// synchronously, inside the primary's durability barrier, so a commit
// is acked only after every live replica holds its bytes. Attach it
// via shard.Options.Ship before building the engine; replicas added
// before the engine boots see the stream from byte zero (the boot
// checkpoint re-log included).
type Group struct {
	mu       sync.Mutex
	epoch    uint64
	links    []*Link
	onFenced func(epoch uint64)
}

// NewGroup builds a shipper group stamping batches with epoch.
func NewGroup(epoch uint64) *Group {
	if epoch == 0 {
		epoch = 1
	}
	return &Group{epoch: epoch}
}

// Epoch returns the stamping epoch.
func (g *Group) Epoch() uint64 { return g.epoch }

// OnFenced installs the zombie-detection callback, invoked (once per
// refusing link, possibly from inside a WAL durability barrier) when a
// replica reports a higher epoch. Wire it to Engine.Fence.
func (g *Group) OnFenced(fn func(epoch uint64)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.onFenced = fn
}

func (g *Group) fencedBy(epoch uint64) {
	g.mu.Lock()
	fn := g.onFenced
	g.mu.Unlock()
	if fn != nil {
		fn(epoch)
	}
}

// Add attaches a replica behind a faulty link (rates in [0,1); zero
// rates make a perfect link).
func (g *Group) Add(r *Replica, seed int64, drop, dup, reorder float64) *Link {
	ln := &Link{rep: r, seed: seed, drop: drop, dup: dup, reorder: reorder, group: g}
	g.mu.Lock()
	g.links = append(g.links, ln)
	g.mu.Unlock()
	return ln
}

// Links snapshots the attached links.
func (g *Group) Links() []*Link {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Link(nil), g.links...)
}

// Lagging sums the pending partition backlog across live links — the
// number of shipped-but-unreplicated batches. Wire it into the
// engine's AckCheck: while any replica is behind a partition, a commit
// is durable locally but not on the replicas the ack contract
// promises, so the ack must be withheld (the exactly-once session
// table makes the client's blind retry safe).
func (g *Group) Lagging() int {
	n := 0
	for _, ln := range g.Links() {
		n += ln.Pending()
	}
	return n
}

// Heal clears partition windows and flushes backlogs on every link.
func (g *Group) Heal() {
	for _, ln := range g.Links() {
		ln.Heal()
	}
}

// Ship implements shard.Options.Ship: fan the byte range out to every
// link, synchronously. Called inside the owning log's durability
// barrier — it must not call back into the engine's logs (it doesn't:
// replicas are passive state).
func (g *Group) Ship(stream, seg, off int, data []byte) {
	b := Batch{Stream: stream, Seg: seg, Off: off, Data: data, Epoch: g.epoch}
	for _, ln := range g.Links() {
		ln.ship(b)
	}
}
