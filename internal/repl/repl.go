// Package repl is the replicated-serving layer: primary-side WAL
// shipping, follower replay, and certified failover.
//
// The design leans entirely on two facts the lower layers already
// guarantee:
//
//  1. The WAL (plus the coordinator log) is the whole truth. Recovery
//     is a pure fold over durable bytes (internal/recovery), and the
//     sharded consistency cut (internal/shard.RecoverAndCertifyImage)
//     resolves cross-shard doubt from the coordinator journal alone.
//     So replication is byte shipping: a replica that holds the same
//     durable bytes can recover to the same certified state — there is
//     no separate replication state machine to keep honest.
//
//  2. Durability has a single choke point: every byte becomes durable
//     inside one barrier (wal.Log/CoordLog syncLocked), and the commit
//     ack happens strictly after. Shipping synchronously at that seam
//     (shard.Options.Ship → Group.Ship) makes "no acknowledged commit
//     is lost on failover" structural: by the time any client sees OK,
//     the bytes were delivered to — and acked by — every live replica,
//     over a link that retransmits through drops, duplicates, and
//     reorders until the replica acks.
//
// A Replica continuously folds the stream through recovery.Replayer
// (per shard) plus the coordinator decoder — the same consistency cut
// as crash recovery, incrementally — and projects committed writes
// onto a KV image for stale-bounded read-only serving. On primary
// death, Promote runs the full shard.RecoverAndCertifyImage over the
// shipped bytes: per-shard certification, coordinator roll-forward,
// and the Kahn-merged global order, exactly as a local restart would.
//
// Fencing: the serving epoch is branded into the coordinator log
// (forced, so it ships and survives restart) and stamped on every
// batch. A replica that has seen epoch E refuses batches with a lower
// epoch (ErrFenced); the refusing link reports back through
// Group.OnFenced, which fences the zombie engine — its coordinator log
// refuses further decisions and its Do withholds acks. A zombie can
// scribble on its own dead branch, but it can neither ack a client nor
// corrupt a replica.
//
// The promotion certification obligation is per stream, deliberately:
// the promoted node's per-shard commit chains and coordinator GSN
// chain must each extend every follower's corresponding chain (see
// CheckPrefixExtension for why comparing Kahn-merged orders directly
// would be unsound). The merged order then embeds every chain by
// construction.
package repl

import "errors"

// Replication stream errors.
var (
	// ErrGap reports a batch whose offset is past the replica's
	// contiguous prefix for that stream — bytes in between are missing.
	// The shipper resends from the replica's watermark.
	ErrGap = errors.New("repl: batch beyond contiguous prefix (gap)")
	// ErrFenced reports a batch stamped with a lower epoch than the
	// replica has already seen: the sender is a zombie predecessor and
	// must stop.
	ErrFenced = errors.New("repl: batch epoch below replica epoch (fenced)")
	// ErrPoisoned reports a replica that has detected unrepairable
	// stream damage (corrupt record, diverged overlap, replay anomaly)
	// and refuses all further batches; it must be rebuilt from a fresh
	// checkpoint stream.
	ErrPoisoned = errors.New("repl: replica poisoned by stream damage")
)

// Config mirrors the primary's engine shape; a replica must fold the
// stream with the same substrate semantics, shard count, and per-shard
// key-space size.
type Config struct {
	Substrate string
	Shards    int
	Keys      int
}

func (c Config) withDefaults() Config {
	if c.Substrate == "" {
		c.Substrate = "tl2"
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Keys <= 0 {
		c.Keys = 64
	}
	return c
}

// CoordStream returns the coordinator log's stream index under this
// config (streams 0..Shards-1 are the shard WALs).
func (c Config) CoordStream() int { return c.Shards }

// Streams returns the stream count (shards + coordinator).
func (c Config) Streams() int { return c.Shards + 1 }

// Cursor is a position in one stream: segment index and byte offset
// within the segment (header included). The coordinator stream has a
// single segment (always Seg 0).
type Cursor struct {
	Seg int `json:"seg"`
	Off int `json:"off"`
}

// Batch is one shipped byte range of one stream, stamped with the
// sender's serving epoch. Off is the absolute offset of Data[0] within
// segment Seg.
type Batch struct {
	Stream int
	Seg    int
	Off    int
	Data   []byte
	Epoch  uint64
}
