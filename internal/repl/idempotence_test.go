package repl_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pushpull/internal/backend"
	"pushpull/internal/recovery"
	"pushpull/internal/repl"
	"pushpull/internal/shard"
	"pushpull/internal/wal"
)

// TestReplayIdempotence is the duplicated-batch satellite: applying the
// same WAL suffix twice (a retransmitted stream batch) must leave a
// replica's replayed state byte-for-byte unchanged, across all six
// substrates. Each substrate runs a workload through a WAL whose
// durability seam ships into two replicas — one over a perfect link,
// one over a duplication-heavy link — and then the last segment's
// suffix is explicitly re-applied. Both replicas must agree exactly
// with a from-scratch recovery of the log.
func TestReplayIdempotence(t *testing.T) {
	const keys = 24
	for _, sub := range backend.Substrates() {
		sub := sub
		t.Run(sub, func(t *testing.T) {
			cfg := repl.Config{Substrate: sub, Shards: 1, Keys: keys}
			clean := repl.NewReplica(cfg)
			duped := repl.NewReplica(cfg)
			g := repl.NewGroup(1)
			g.Add(clean, 1, 0, 0, 0)
			g.Add(duped, 33, 0, 0.6, 0)

			log := wal.MustOpen(wal.Options{
				Policy: wal.SyncEveryRecord, SegmentBytes: 2 << 10,
				OnDurable: func(seg, off int, data []byte) { g.Ship(0, seg, off, data) },
			})
			be, err := backend.NewBackend(backend.Config{
				Substrate: sub, Keys: keys, Seed: 7,
				Durable: backend.NewGroupCommit(log),
			})
			if err != nil {
				t.Fatal(err)
			}
			be.Recorder().AttachWAL(wal.NewMachineHook(log))

			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 120; i++ {
				k := uint64(rng.Intn(keys))
				if err := be.Atomic(fmt.Sprintf("t%d", i), func(v backend.View) error {
					old, _, err := v.Get(k)
					if err != nil {
						return err
					}
					return v.Put(k, old+int64(i)+1)
				}); err != nil {
					t.Fatalf("txn %d: %v", i, err)
				}
			}

			segs := log.Segments()
			if len(segs) < 2 {
				t.Fatalf("workload too small to rotate segments: %d", len(segs))
			}
			// Re-apply the same WAL suffix twice, explicitly: the whole
			// last segment, then a strict tail of it.
			last := len(segs) - 1
			before := duped.AppliedRecords(0)
			for _, b := range []repl.Batch{
				{Stream: 0, Seg: last, Off: 0, Data: segs[last], Epoch: 1},
				{Stream: 0, Seg: last, Off: len(segs[last]) / 2, Data: segs[last][len(segs[last])/2:], Epoch: 1},
			} {
				if err := duped.Apply(b); err != nil {
					t.Fatalf("duplicate suffix refused: %v", err)
				}
			}
			if got := duped.AppliedRecords(0); got != before {
				t.Fatalf("duplicate suffix changed replay: %d records -> %d", before, got)
			}
			if ds := duped.Stats(); ds.Duplicates < 2 {
				t.Fatalf("duplicates not counted: %+v", ds)
			}

			// Reference: from-scratch recovery + certification of the log.
			reg, err := backend.RegistryFor(sub)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := recovery.RecoverAndCertify(segs, reg)
			if err != nil {
				t.Fatal(err)
			}
			want := backend.FoldKV(rep.State, sub)

			for _, r := range []*repl.Replica{clean, duped} {
				if err := r.Poisoned(); err != nil {
					t.Fatal(err)
				}
				chain := r.Chains()[0]
				if len(chain) != len(rep.State.Txns) {
					t.Fatalf("replica chain %d commits, recovery has %d", len(chain), len(rep.State.Txns))
				}
				for i, txn := range rep.State.Txns {
					if chain[i] != txn.Name {
						t.Fatalf("chain[%d] = %q, recovery has %q", i, chain[i], txn.Name)
					}
				}
				for k := uint64(0); k < keys; k++ {
					wv, wok := want[k]
					gv, gok := r.Get(k)
					switch sub {
					case "boost", "hybrid":
						if gok != wok || (wok && gv != wv) {
							t.Fatalf("key %d: replica (%d,%v), recovery (%d,%v)", k, gv, gok, wv, wok)
						}
					default:
						if !gok || gv != wv {
							t.Fatalf("key %d: replica (%d,%v), recovery fold %d", k, gv, gok, wv)
						}
					}
				}
			}
		})
	}
}

// TestReplayIdempotenceSharded runs the same duplicated-suffix check
// against the sharded engine's full stream set: every shard WAL plus
// the coordinator log is re-applied in full to a replica that already
// holds it, and the replica must be unchanged, still certify, and
// still match a clean replica record for record.
func TestReplayIdempotenceSharded(t *testing.T) {
	for _, sub := range []string{"tl2", "boost"} {
		sub := sub
		t.Run(sub, func(t *testing.T) {
			const shards, keys = 3, 24
			cfg := repl.Config{Substrate: sub, Shards: shards, Keys: keys}
			clean := repl.NewReplica(cfg)
			duped := repl.NewReplica(cfg)
			g := repl.NewGroup(1)
			g.Add(clean, 1, 0, 0, 0)
			g.Add(duped, 77, 0, 0.5, 0)

			eng, err := shard.New(shard.Options{
				Shards: shards, Substrate: sub, Keys: keys, Seed: 11,
				Durable: true, Ship: g.Ship,
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(13))
			ka, kb := crossPair(eng.Router(), keys)
			for i := 0; i < 150; i++ {
				if rng.Intn(3) == 0 {
					_, _, err = eng.Do([]shard.Op{
						{Kind: shard.OpPut, Key: ka, Val: int64(i)},
						{Kind: shard.OpPut, Key: kb, Val: int64(i)},
					})
				} else {
					_, _, err = eng.Do([]shard.Op{{Kind: shard.OpPut, Key: uint64(rng.Intn(keys)), Val: int64(i)}})
				}
				if err != nil {
					t.Fatalf("txn %d: %v", i, err)
				}
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}

			// Re-apply the replica's entire held image — every shard
			// stream segment and the coordinator log — as duplicates.
			img := duped.Image()
			var before []uint64
			for s := 0; s < cfg.Streams(); s++ {
				before = append(before, duped.AppliedRecords(s))
			}
			for s, segs := range img.Shards {
				for seg, data := range segs {
					if err := duped.Apply(repl.Batch{Stream: s, Seg: seg, Off: 0, Data: data, Epoch: duped.Epoch()}); err != nil {
						t.Fatalf("stream %d seg %d duplicate refused: %v", s, seg, err)
					}
				}
			}
			if err := duped.Apply(repl.Batch{Stream: cfg.CoordStream(), Seg: 0, Off: 0, Data: img.Coord, Epoch: duped.Epoch()}); err != nil {
				t.Fatalf("coordinator duplicate refused: %v", err)
			}
			for s := 0; s < cfg.Streams(); s++ {
				if got := duped.AppliedRecords(s); got != before[s] {
					t.Fatalf("stream %d: duplicate replay changed records %d -> %d", s, before[s], got)
				}
			}

			if err := repl.CheckPrefixExtension(clean.Chains(), duped.Chains()); err != nil {
				t.Fatal(err)
			}
			if err := repl.CheckPrefixExtension(duped.Chains(), clean.Chains()); err != nil {
				t.Fatal(err)
			}
			for _, r := range []*repl.Replica{clean, duped} {
				if _, err := r.Certify(); err != nil {
					t.Fatal(err)
				}
				for k := uint64(0); k < keys; k++ {
					want, _ := eng.ReadKey(k)
					got, found := r.Get(k)
					if !found || got != want {
						t.Fatalf("key %d: replica (%d,%v), primary %d", k, got, found, want)
					}
				}
			}
		})
	}
}
