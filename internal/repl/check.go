package repl

import "fmt"

// CheckPrefixExtension verifies the promotion ordering obligation:
// every per-stream commit chain held by a follower must be a prefix of
// the promoted node's corresponding chain — per-shard commit chains in
// stamp order, plus the coordinator's GSN chain.
//
// The obligation is deliberately per stream, not over the Kahn-merged
// total orders: a merged order is not prefix-stable under extension.
// Counterexample — follower chains A=[b], B=[] merge to [b], while the
// fuller chains A=[b], B=[a] merge (lexicographic tie-break) to
// [a, b]; [b] is not a prefix of [a, b] even though the follower holds
// strictly less certified history. Per-stream prefixes are the real
// invariant shipping preserves (streams are appended to in order and
// delivered in order), and the merged order then embeds every chain by
// construction — so per-stream prefix extension plus the promoted
// node's own MergeOrders certificate is exactly "the new primary's
// global order extends everything any follower ever served".
func CheckPrefixExtension(promoted, follower [][]string) error {
	if len(promoted) != len(follower) {
		return fmt.Errorf("repl: stream count mismatch: promoted %d, follower %d", len(promoted), len(follower))
	}
	for s, fc := range follower {
		pc := promoted[s]
		if len(fc) > len(pc) {
			return fmt.Errorf("repl: stream %d: follower chain (%d commits) longer than promoted (%d)",
				s, len(fc), len(pc))
		}
		for i, name := range fc {
			if pc[i] != name {
				return fmt.Errorf("repl: stream %d: chains diverge at %d: follower %q, promoted %q",
					s, i, name, pc[i])
			}
		}
	}
	return nil
}
