package repl

import (
	"errors"
	"fmt"
	"sync"

	"pushpull/internal/shard"
)

// StreamChunk is one poll's answer: durable bytes at the requested
// cursor, segment-advance and backlog flags, the sender's serving
// epoch, and its lifetime appended-record count for the stream (the
// lag reference).
type StreamChunk struct {
	Data    []byte
	Next    bool // requested segment finished; advance to (Seg+1, 0)
	More    bool // durable bytes remain past this chunk
	Epoch   uint64
	Appends uint64
}

// Source is the poll side of a primary: anything that can answer
// cursor reads over the replication streams. shard.Engine satisfies it
// via EngineSource; the network server adapts MsgReplPoll responses.
type Source interface {
	// Streams returns the stream count (shards + coordinator).
	Streams() int
	// PollStream reads up to max durable bytes of one stream at (seg, off).
	PollStream(stream, seg, off, max int) (StreamChunk, error)
}

// engineSource adapts a local engine (in-process followers, tests).
type engineSource struct{ e *shard.Engine }

// EngineSource exposes a durable engine as a poll Source.
func EngineSource(e *shard.Engine) Source { return engineSource{e} }

func (s engineSource) Streams() int { return s.e.Streams() }

func (s engineSource) PollStream(stream, seg, off, max int) (StreamChunk, error) {
	data, next, more, err := s.e.ReadDurable(stream, seg, off, max)
	if err != nil {
		return StreamChunk{}, err
	}
	return StreamChunk{
		Data: data, Next: next, More: more,
		Epoch: s.e.Epoch(), Appends: s.e.StreamAppends(stream),
	}, nil
}

// Puller drives a replica by polling a Source: the follower half of
// the catch-up loop. It owns the per-stream cursors and the lag
// gauges. Safe for concurrent use, though one poll loop per puller is
// the intended shape.
type Puller struct {
	rep *Replica
	max int

	mu  sync.Mutex
	cur []Cursor
	lag []uint64
}

// NewPuller builds a puller resuming from the replica's watermarks
// (byte zero on a fresh replica). max bounds one poll's byte budget
// (default 64 KiB).
func NewPuller(rep *Replica, max int) *Puller {
	if max <= 0 {
		max = 64 << 10
	}
	p := &Puller{rep: rep, max: max}
	for s := 0; s < rep.Config().Streams(); s++ {
		p.cur = append(p.cur, rep.Watermark(s))
		p.lag = append(p.lag, 0)
	}
	return p
}

// Replica returns the puller's target.
func (p *Puller) Replica() *Replica { return p.rep }

// Lag returns the last observed per-stream record lag (primary appends
// minus replica applied), indexed by stream.
func (p *Puller) Lag() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]uint64(nil), p.lag...)
}

// Cursors snapshots the per-stream poll cursors.
func (p *Puller) Cursors() []Cursor {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Cursor(nil), p.cur...)
}

// Sync drains every stream's available durable bytes from src into the
// replica, advancing cursors and refreshing the lag gauges. It returns
// the bytes applied. A fenced replica surfaces ErrFenced; unrepairable
// stream damage surfaces the replica's poison.
func (p *Puller) Sync(src Source) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := src.Streams(); n != len(p.cur) {
		return 0, fmt.Errorf("repl: source has %d streams, replica %d", n, len(p.cur))
	}
	total := 0
	for s := range p.cur {
		for {
			ch, err := src.PollStream(s, p.cur[s].Seg, p.cur[s].Off, p.max)
			if err != nil {
				return total, err
			}
			if len(ch.Data) > 0 {
				err := p.rep.Apply(Batch{
					Stream: s, Seg: p.cur[s].Seg, Off: p.cur[s].Off,
					Data: ch.Data, Epoch: ch.Epoch,
				})
				switch {
				case err == nil:
					p.cur[s].Off += len(ch.Data)
					total += len(ch.Data)
				case errors.Is(err, ErrGap):
					// Cursor drifted (a restarted puller over a warm
					// replica): resync to the replica's watermark.
					p.cur[s] = p.rep.Watermark(s)
					continue
				default:
					return total, err
				}
			}
			if applied := p.rep.AppliedRecords(s); ch.Appends > applied {
				p.lag[s] = ch.Appends - applied
			} else {
				p.lag[s] = 0
			}
			if ch.Next {
				p.cur[s] = Cursor{Seg: p.cur[s].Seg + 1, Off: 0}
				continue
			}
			if !ch.More || len(ch.Data) == 0 {
				break
			}
		}
	}
	return total, nil
}
