package repl_test

import (
	"fmt"
	"testing"

	"pushpull/internal/chaos"
	"pushpull/internal/repl"
	"pushpull/internal/shard"
)

// TestPartitionedLinkWithholdsAcks drives the full partition contract:
// while a link is cut the backlog shows up in Group.Lagging, the
// engine's ack gate (wired to Lagging) withholds acks even though the
// commit is locally durable, and once the partition heals the backlog
// flushes in order, the replica converges byte-for-byte, and acks
// resume. Asymmetric windows deliver the bytes but lose the ack, so
// the heal-time retransmit must land as pure duplicates.
func TestPartitionedLinkWithholdsAcks(t *testing.T) {
	for _, asym := range []bool{false, true} {
		t.Run(fmt.Sprintf("asym=%v", asym), func(t *testing.T) {
			const shards, keys = 2, 16
			cfg := repl.Config{Substrate: "tl2", Shards: shards, Keys: keys}
			rep := repl.NewReplica(cfg)
			g := repl.NewGroup(1)
			ln := g.Add(rep, 1, 0, 0, 0)
			// Cut batches 2..1e6: the first transaction or two ship clean,
			// everything after queues until Heal.
			ln.Partition(repl.PartitionWindow{From: 2, To: 1 << 20, Asym: asym})

			eng, err := shard.New(shard.Options{
				Shards: shards, Substrate: "tl2", Keys: keys, Seed: 7,
				Durable: true, Ship: g.Ship,
				AckCheck: func() error {
					if n := g.Lagging(); n > 0 {
						return fmt.Errorf("replica lagging by %d batches", n)
					}
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			var acked, withheld int
			for i := 0; i < 20; i++ {
				_, _, err := eng.Do([]shard.Op{{Kind: shard.OpPut, Key: uint64(i % keys), Val: int64(i)}})
				if err != nil {
					withheld++
				} else {
					acked++
				}
			}
			if withheld == 0 {
				t.Fatal("no ack was withheld while the link was partitioned")
			}
			if ln.Pending() == 0 {
				t.Fatal("partitioned link holds no backlog")
			}
			if g.Lagging() != ln.Pending() {
				t.Fatalf("Lagging %d != link pending %d", g.Lagging(), ln.Pending())
			}

			g.Heal()
			if g.Lagging() != 0 {
				t.Fatalf("backlog after heal: %d", g.Lagging())
			}
			// Acks resume and the new write replicates synchronously.
			if _, _, err := eng.Do([]shard.Op{{Kind: shard.OpPut, Key: 3, Val: 99}}); err != nil {
				t.Fatalf("post-heal write not acked: %v", err)
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			if err := rep.Poisoned(); err != nil {
				t.Fatal(err)
			}
			for k := uint64(0); k < keys; k++ {
				want, _ := eng.ReadKey(k)
				if got, _ := rep.Get(k); got != want {
					t.Fatalf("key %d: replica %d, primary %d", k, got, want)
				}
			}
			ls := ln.Stats()
			if ls.Partitioned == 0 || ls.Healed == 0 {
				t.Fatalf("partition counters: %+v", ls)
			}
			if asym {
				// Every asym-delivered batch retransmits as a duplicate.
				if rs := rep.Stats(); rs.Duplicates == 0 {
					t.Fatalf("asymmetric heal produced no duplicates: %+v", rs)
				}
			}
			if _, err := rep.Certify(); err != nil {
				t.Fatalf("certify after heal: %v", err)
			}
		})
	}
}

// TestPartitionWindowPassesByIndex checks the batch-index flavor of
// healing: once shipping traffic moves past the window's To index, the
// pending backlog flushes on the next shipped batch with no explicit
// Heal call.
func TestPartitionWindowPassesByIndex(t *testing.T) {
	const shards, keys = 1, 8
	cfg := repl.Config{Substrate: "tl2", Shards: shards, Keys: keys}
	rep := repl.NewReplica(cfg)
	g := repl.NewGroup(1)
	ln := g.Add(rep, 1, 0, 0, 0)
	ln.Partition(repl.PartitionWindow{From: 0, To: 3})

	eng, err := shard.New(shard.Options{
		Shards: shards, Substrate: "tl2", Keys: keys, Seed: 7,
		Durable: true, Ship: g.Ship,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := eng.Do([]shard.Op{{Kind: shard.OpPut, Key: uint64(i % keys), Val: int64(i)}}); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if ln.Pending() != 0 {
		t.Fatalf("backlog did not flush after the window passed: %d pending", ln.Pending())
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < keys; k++ {
		want, _ := eng.ReadKey(k)
		if got, _ := rep.Get(k); got != want {
			t.Fatalf("key %d: replica %d, primary %d", k, got, want)
		}
	}
	if ls := ln.Stats(); ls.Partitioned != 3 || ls.Healed != 3 {
		t.Fatalf("expected 3 held + 3 flushed, got %+v", ls)
	}
}

// TestPartitionsForDeterminism pins the chaos derivation: the same
// (seed, link) yields the same schedule, different seeds vary it, and
// every window is well-formed.
func TestPartitionsForDeterminism(t *testing.T) {
	a := chaos.PartitionsFor(42, 1, 0.8, 100, 20, 4)
	b := chaos.PartitionsFor(42, 1, 0.8, 100, 20, 4)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d windows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for _, w := range a {
		if w.To <= w.From || w.From >= 100 || w.To > 100+20 {
			t.Fatalf("malformed window %+v", w)
		}
	}
	varied := false
	for seed := int64(0); seed < 20; seed++ {
		ws := chaos.PartitionsFor(seed, 0, 0.5, 100, 20, 4)
		if len(ws) != len(a) {
			varied = true
		}
		for _, w := range ws {
			if w.Asym {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("20 seeds produced identical schedules with no asym windows")
	}
}

// TestReplicaSessionFold checks that a replica folds the exactly-once
// session table from the shipped streams — both the single-shard
// (TSession in a shard WAL) and cross-shard (coordinator log) halves —
// and exposes the branded lease epoch, so a promoted follower can
// answer retries for commits it learned only over the wire.
func TestReplicaSessionFold(t *testing.T) {
	const shards, keys = 3, 32
	cfg := repl.Config{Substrate: "tl2", Shards: shards, Keys: keys}
	rep := repl.NewReplica(cfg)
	g := repl.NewGroup(1)
	g.Add(rep, 1, 0, 0, 0)

	eng, err := shard.New(shard.Options{
		Shards: shards, Substrate: "tl2", Keys: keys, Seed: 7,
		Durable: true, Ship: g.Ship,
	})
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := crossPair(eng.Router(), keys)
	if _, _, _, err := eng.DoSession(11, 1, []shard.Op{{Kind: shard.OpPut, Key: ka, Val: 5}}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := eng.DoSession(12, 7, []shard.Op{
		{Kind: shard.OpPut, Key: ka, Val: 6},
		{Kind: shard.OpPut, Key: kb, Val: 7},
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.BrandLease(4); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	sess := rep.Sessions()
	if sess[11].SeqNo != 1 || sess[12].SeqNo != 7 {
		t.Fatalf("replica session table %v", sess)
	}
	if rep.LeaseEpoch() != 4 {
		t.Fatalf("replica lease epoch %d, want 4", rep.LeaseEpoch())
	}
	// The certified promotion image carries the same table.
	mr, err := rep.Certify()
	if err != nil {
		t.Fatal(err)
	}
	if mr.Sessions[11].SeqNo != 1 || mr.Sessions[12].SeqNo != 7 {
		t.Fatalf("certified session table %v", mr.Sessions)
	}
	if mr.LeaseEpoch != 4 {
		t.Fatalf("certified lease epoch %d", mr.LeaseEpoch)
	}
	// A successor engine recovered from the replica's image dedups the
	// retry of a commit it never executed locally.
	e2, err := shard.New(shard.Options{
		Shards: shards, Substrate: "tl2", Keys: keys, Seed: 7,
		Durable: true, RecoverFrom: rep.Image(), Epoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	commits := e2.Stats().Commits
	res, _, dedup, err := e2.DoSession(12, 7, []shard.Op{
		{Kind: shard.OpPut, Key: ka, Val: 6},
		{Kind: shard.OpPut, Key: kb, Val: 7},
	})
	if err != nil || !dedup {
		t.Fatalf("retry on promoted engine: dedup=%v err=%v", dedup, err)
	}
	if len(res) != 2 {
		t.Fatalf("replayed results %v", res)
	}
	if got := e2.Stats().Commits; got != commits {
		t.Fatalf("retry re-executed on promoted engine: %d -> %d", commits, got)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
}
