package repl_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pushpull/internal/chaos"
	"pushpull/internal/repl"
	"pushpull/internal/shard"
)

// crossPair finds a pair of keys below limit living on different
// shards (so a two-key transaction is genuinely cross-shard).
func crossPair(router shard.Router, limit uint64) (uint64, uint64) {
	for a := uint64(0); a < limit; a++ {
		for b := a + 1; b < limit; b++ {
			if router.Shard(a) != router.Shard(b) {
				return a, b
			}
		}
	}
	panic("no cross-shard pair")
}

func TestShipAndServe(t *testing.T) {
	const shards, keys = 3, 32
	cfg := repl.Config{Substrate: "tl2", Shards: shards, Keys: keys}
	clean := repl.NewReplica(cfg)
	faulty := repl.NewReplica(cfg)
	g := repl.NewGroup(1)
	g.Add(clean, 1, 0, 0, 0)
	fl := g.Add(faulty, 99, 0.25, 0.2, 0.15)

	eng, err := shard.New(shard.Options{
		Shards: shards, Substrate: "tl2", Keys: keys, Seed: 7,
		Durable: true, Ship: g.Ship,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 1 {
		t.Fatalf("shipping engine epoch = %d, want 1", eng.Epoch())
	}
	rng := rand.New(rand.NewSource(11))
	ka, kb := crossPair(eng.Router(), keys)
	for i := 0; i < 300; i++ {
		if rng.Intn(3) == 0 {
			_, _, err = eng.Do([]shard.Op{
				{Kind: shard.OpPut, Key: ka, Val: int64(i)},
				{Kind: shard.OpPut, Key: kb, Val: int64(i)},
			})
		} else {
			_, _, err = eng.Do([]shard.Op{
				{Kind: shard.OpPut, Key: uint64(rng.Intn(keys)), Val: int64(i)},
			})
		}
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	for _, rep := range []*repl.Replica{clean, faulty} {
		if err := rep.Poisoned(); err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < keys; k++ {
			want, _ := eng.ReadKey(k)
			got, found := rep.Get(k)
			if !found || got != want {
				t.Fatalf("replica read key %d = (%d,%v), primary has %d", k, got, found, want)
			}
		}
		if _, err := rep.Certify(); err != nil {
			t.Fatalf("replica failed certification: %v", err)
		}
	}
	// Both replicas hold the full stream, so their chains must agree
	// exactly (each a prefix of the other).
	if err := repl.CheckPrefixExtension(clean.Chains(), faulty.Chains()); err != nil {
		t.Fatal(err)
	}
	if err := repl.CheckPrefixExtension(faulty.Chains(), clean.Chains()); err != nil {
		t.Fatal(err)
	}
	ls := fl.Stats()
	if ls.Dropped+ls.Duplicated+ls.Reordered == 0 {
		t.Fatalf("faulty link injected nothing: %+v", ls)
	}
	if fs := faulty.Stats(); fs.Duplicates+fs.Gaps == 0 {
		t.Fatalf("faulty stream exercised no dedup/gap handling: %+v", fs)
	}
	if cs := clean.Stats(); cs.Gaps != 0 || cs.Duplicates != 0 {
		t.Fatalf("clean link saw faults: %+v", cs)
	}
}

// TestFailover kills the primary mid-workload (deterministic WAL crash
// plus coordinator death sites armed) and drives the full promotion:
// certify both replicas, promote the most advanced one, check the
// per-stream prefix-extension obligation, restart an engine from the
// promoted image at the next epoch, and verify no acknowledged write
// was lost and no transaction is in doubt.
func TestFailover(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const shards, keys = 4, 32
			cfg := repl.Config{Substrate: "tl2", Shards: shards, Keys: keys}
			repA := repl.NewReplica(cfg)
			repB := repl.NewReplica(cfg)
			g := repl.NewGroup(1)
			g.Add(repA, seed, 0.2, 0.15, 0.1)
			g.Add(repB, seed+1000, 0.1, 0.1, 0.2)

			plan := chaos.NewPlan(seed).
				WithRate(chaos.SiteCoordPrepared, 0.02).
				WithRate(chaos.SiteCoordCommit, 0.02).
				WithCrash(uint64(40+seed*13), chaos.CrashClean)
			eng, err := shard.New(shard.Options{
				Shards: shards, Substrate: "tl2", Keys: keys, Seed: seed,
				Durable: true, Ship: g.Ship, Plan: &plan,
			})
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(seed))
			ka, kb := crossPair(eng.Router(), keys)
			acked := make(map[uint64]int64)
			for i := 1; i <= 400; i++ {
				v := int64(i)
				var ops []shard.Op
				if rng.Intn(3) == 0 {
					ops = []shard.Op{
						{Kind: shard.OpPut, Key: ka, Val: v},
						{Kind: shard.OpPut, Key: kb, Val: v},
					}
				} else {
					ops = []shard.Op{{Kind: shard.OpPut, Key: uint64(rng.Intn(keys)), Val: v}}
				}
				_, _, err := eng.Do(ops)
				// An ack only counts while the process lives: after the
				// simulated death the in-memory engine is a ghost whose
				// "acks" no real client would ever have received.
				if err == nil && !eng.Crashed() {
					for _, op := range ops {
						acked[op.Key] = op.Val
					}
				}
			}
			if !eng.Crashed() {
				t.Fatal("chaos plan never killed the primary; test exercised nothing")
			}
			eng.Kill()

			// The primary's own durable image must certify; it is the
			// reference for what the cluster durably committed.
			primaryRep, err := shard.RecoverAndCertifyImage(eng.Image(), "tl2")
			if err != nil {
				t.Fatalf("primary image: %v", err)
			}

			// Both replicas certify; promote the more advanced one.
			for _, r := range []*repl.Replica{repA, repB} {
				if err := r.Poisoned(); err != nil {
					t.Fatal(err)
				}
				if _, err := r.Certify(); err != nil {
					t.Fatalf("replica certification: %v", err)
				}
			}
			promoted, other := repA, repB
			if total(repB) > total(repA) {
				promoted, other = repB, repA
			}
			promRep, err := promoted.Certify()
			if err != nil {
				t.Fatal(err)
			}
			if promRep.InDoubt != 0 {
				t.Fatalf("%d transactions in doubt after promotion", promRep.InDoubt)
			}
			if err := repl.CheckPrefixExtension(promoted.Chains(), other.Chains()); err != nil {
				t.Fatal(err)
			}

			// Clean crash ⇒ the primary's durable image is exactly the
			// shipped prefix, so the promoted recovery must match the
			// primary's own recovery transaction for transaction.
			if got, want := promRep.RecoveredTxns(), primaryRep.RecoveredTxns(); got != want {
				t.Fatalf("promoted recovered %d txns, primary image has %d", got, want)
			}

			// Serve from the promoted image at the next epoch.
			eng2, err := shard.New(shard.Options{
				Shards: shards, Substrate: "tl2", Keys: keys, Seed: seed,
				Durable: true, RecoverFrom: promoted.Image(), Epoch: promRep.Epoch + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if eng2.Recovered().InDoubt != 0 {
				t.Fatalf("in-doubt after restart: %d", eng2.Recovered().InDoubt)
			}
			for k, v := range acked {
				got, _ := eng2.ReadKey(k)
				if got < v {
					t.Fatalf("acknowledged write lost: key %d = %d, acked %d", k, got, v)
				}
			}
			// The cross-shard pair must be atomic: both sides always
			// written together.
			va, _ := eng2.ReadKey(ka)
			vb, _ := eng2.ReadKey(kb)
			if va != vb {
				t.Fatalf("cross-shard pair torn after failover: %d vs %d", va, vb)
			}
			if _, _, err := eng2.Do([]shard.Op{{Kind: shard.OpPut, Key: 0, Val: 1}}); err != nil {
				t.Fatalf("promoted engine refuses writes: %v", err)
			}
			if err := eng2.FinalCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func total(r *repl.Replica) uint64 {
	var n uint64
	for s := 0; s < r.Config().Streams(); s++ {
		n += r.AppliedRecords(s)
	}
	return n
}

// TestFencing promotes a replica while the old primary is still alive
// (the false-suspicion / partition case) and verifies the zombie is
// fenced: the new generation's replica refuses its stale batches, the
// zombie engine stops acknowledging, and its coordinator log refuses
// further decisions.
func TestFencing(t *testing.T) {
	const shards, keys = 2, 16
	cfg := repl.Config{Substrate: "tl2", Shards: shards, Keys: keys}
	repA := repl.NewReplica(cfg)
	g := repl.NewGroup(1)
	g.Add(repA, 5, 0, 0, 0)
	eng, err := shard.New(shard.Options{
		Shards: shards, Substrate: "tl2", Keys: keys, Seed: 3,
		Durable: true, Ship: g.Ship,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.OnFenced(eng.Fence)
	for i := 0; i < 50; i++ {
		if _, _, err := eng.Do([]shard.Op{{Kind: shard.OpPut, Key: uint64(i % keys), Val: int64(i)}}); err != nil {
			t.Fatal(err)
		}
	}

	// Promote repA without killing the primary (it is partitioned away,
	// not dead). The new generation re-seeds fresh replicas from the new
	// primary's boot checkpoint stream.
	mr, err := repA.Certify()
	if err != nil {
		t.Fatal(err)
	}
	rep2 := repl.NewReplica(cfg)
	g2 := repl.NewGroup(mr.Epoch + 1)
	g2.Add(rep2, 6, 0, 0, 0)
	eng2, err := shard.New(shard.Options{
		Shards: shards, Substrate: "tl2", Keys: keys, Seed: 3,
		Durable: true, RecoverFrom: repA.Image(), Epoch: mr.Epoch + 1, Ship: g2.Ship,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Epoch() != mr.Epoch+1 {
		t.Fatalf("new-generation replica epoch = %d, want %d", rep2.Epoch(), mr.Epoch+1)
	}

	// The partition heals: the zombie's group now reaches the
	// new-generation replica — which fences it off.
	g.Add(rep2, 7, 0, 0, 0)
	_, _, err = eng.Do([]shard.Op{{Kind: shard.OpPut, Key: 1, Val: 999}})
	if !errors.Is(err, shard.ErrFenced) {
		t.Fatalf("zombie commit not fenced: %v", err)
	}
	if !eng.Fenced() {
		t.Fatal("zombie engine not marked fenced")
	}
	if _, _, err := eng.Do([]shard.Op{{Kind: shard.OpGet, Key: 1}}); !errors.Is(err, shard.ErrFenced) {
		t.Fatalf("fenced engine still serving: %v", err)
	}
	if rs := rep2.Stats(); rs.Fenced == 0 {
		t.Fatalf("replica recorded no fenced rejects: %+v", rs)
	}
	// The new primary keeps serving.
	if _, _, err := eng2.Do([]shard.Op{{Kind: shard.OpPut, Key: 2, Val: 7}}); err != nil {
		t.Fatal(err)
	}
	if err := eng2.FinalCheck(); err != nil {
		t.Fatal(err)
	}
	_ = mr
}
