package repl

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"pushpull/internal/mvcc"
	"pushpull/internal/recovery"
	"pushpull/internal/shard"
	"pushpull/internal/wal"
)

// streamState is one stream's replica-side image and fold cursor.
type streamState struct {
	segs    [][]byte
	decSeg  int  // segment the fold cursor is in
	decOff  int  // body bytes (past the header) already decoded in decSeg
	hdrOK   bool // decSeg's header validated
	rp      *recovery.Replayer
	folded  int // committed txns already projected onto the KV image
	rawRecs int // coordinator stream only: whole records decoded
	chain   []string
}

// StreamStat is one stream's replica-side progress snapshot.
type StreamStat struct {
	// Watermark is the contiguous durable prefix held (the ack point).
	Watermark Cursor `json:"watermark"`
	// Applied counts records folded (shard streams) or coordinator
	// records decoded (the coordinator stream).
	Applied uint64 `json:"applied"`
	// Committed counts committed transactions recovered so far.
	Committed int `json:"committed"`
}

// Stats snapshots a replica.
type Stats struct {
	Epoch      uint64       `json:"epoch"`
	Streams    []StreamStat `json:"streams"`
	Duplicates uint64       `json:"duplicates"`
	Gaps       uint64       `json:"gaps"`
	Fenced     uint64       `json:"fenced_rejects"`
	ReadTxns   uint64       `json:"read_txns"`
	Poisoned   bool         `json:"poisoned,omitempty"`
}

// Replica is a warm standby: it holds every shipped byte, continuously
// folds the stream through the recovery replay (per-shard Replayer
// plus the coordinator decoder — the same consistency cut as crash
// recovery, incrementally), and projects committed writes onto a KV
// image for read-only serving. All methods are safe for concurrent
// use.
type Replica struct {
	mu     sync.Mutex
	cfg    Config
	router shard.Router
	epoch  uint64

	streams    []*streamState // cfg.Shards shard streams + the coordinator
	coord      []shard.CommitRec
	coordSess  map[uint64]recovery.SessionEntry
	leaseEpoch uint64
	mode       mvcc.Mode
	stores     []*mvcc.Store     // per-shard committed version chains
	certs      []*mvcc.Shadow    // per-shard independent read certifiers
	folds      []*mvcc.DeltaFold // per-shard typed-counter delta resolution

	dups     uint64
	gaps     uint64
	fenced   uint64
	readTxns uint64
	poison   error
}

// NewReplica builds an empty replica for the given primary shape.
func NewReplica(cfg Config) *Replica {
	cfg = cfg.withDefaults()
	r := &Replica{
		cfg:    cfg,
		router: shard.NewRouter(cfg.Shards),
		mode:   mvcc.ModeFor(cfg.Substrate),
	}
	for i := 0; i < cfg.Shards; i++ {
		r.streams = append(r.streams, &streamState{rp: recovery.NewReplayer()})
		st := mvcc.NewStore(r.mode, cfg.Keys)
		sh := mvcc.NewShadow(r.mode, cfg.Keys)
		st.OnTruncate(sh.TrimTo)
		r.stores = append(r.stores, st)
		r.certs = append(r.certs, sh)
		r.folds = append(r.folds, &mvcc.DeltaFold{})
	}
	r.streams = append(r.streams, &streamState{}) // coordinator
	return r
}

// SetObserver wires o into every per-shard version store. Call before
// the replica starts ingesting batches.
func (r *Replica) SetObserver(o mvcc.Observer) {
	for _, st := range r.stores {
		st.SetObserver(o)
	}
}

// Config returns the replica's configuration.
func (r *Replica) Config() Config { return r.cfg }

// Epoch returns the highest serving epoch the replica has seen.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Poisoned returns the sticky stream-damage error, if any.
func (r *Replica) Poisoned() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.poison
}

func (r *Replica) poisonLocked(err error) error {
	if r.poison == nil {
		r.poison = fmt.Errorf("%w: %v", ErrPoisoned, err)
	}
	return r.poison
}

// Apply ingests one shipped batch: epoch fencing first, then
// contiguity (duplicates are trimmed and acked, gaps rejected for
// resend), then the incremental fold. A nil return is the replica's
// ack: the batch's bytes are held and folded.
func (r *Replica) Apply(b Batch) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.poison != nil {
		return r.poison
	}
	if b.Epoch < r.epoch {
		r.fenced++
		return fmt.Errorf("%w: batch epoch %d, replica at %d", ErrFenced, b.Epoch, r.epoch)
	}
	if b.Epoch > r.epoch {
		r.epoch = b.Epoch
	}
	if b.Stream < 0 || b.Stream >= len(r.streams) {
		return fmt.Errorf("repl: no stream %d (have %d)", b.Stream, len(r.streams))
	}
	st := r.streams[b.Stream]
	coord := b.Stream == r.cfg.CoordStream()
	if coord && b.Seg != 0 {
		return fmt.Errorf("repl: coordinator stream has one segment, got seg %d", b.Seg)
	}
	data := b.Data
	switch {
	case b.Seg < len(st.segs):
		// Into an existing segment: trim the overlap (retransmits and
		// duplicated batches), verifying it byte-matches what we hold —
		// a mismatch means the streams diverged, which no retry fixes.
		have := len(st.segs[b.Seg])
		if b.Off > have {
			r.gaps++
			return fmt.Errorf("%w: stream %d seg %d off %d, have %d", ErrGap, b.Stream, b.Seg, b.Off, have)
		}
		overlap := have - b.Off
		if overlap > len(data) {
			overlap = len(data)
		}
		if !bytes.Equal(st.segs[b.Seg][b.Off:b.Off+overlap], data[:overlap]) {
			return r.poisonLocked(fmt.Errorf("stream %d seg %d: overlap mismatch at off %d", b.Stream, b.Seg, b.Off))
		}
		if overlap == len(data) {
			r.dups++
			return nil // pure duplicate; already held — ack it
		}
		if b.Seg != len(st.segs)-1 {
			// New bytes for a rotated-away segment: the primary only
			// appends to its last segment, so this cannot happen on an
			// honest stream.
			return r.poisonLocked(fmt.Errorf("stream %d: append to finished segment %d", b.Stream, b.Seg))
		}
		st.segs[b.Seg] = append(st.segs[b.Seg], data[overlap:]...)
	case b.Seg == len(st.segs):
		if b.Off != 0 {
			r.gaps++
			return fmt.Errorf("%w: stream %d new seg %d starts at off %d", ErrGap, b.Stream, b.Seg, b.Off)
		}
		st.segs = append(st.segs, append([]byte(nil), data...))
	default:
		r.gaps++
		return fmt.Errorf("%w: stream %d seg %d, have %d segs", ErrGap, b.Stream, b.Seg, len(st.segs))
	}
	if coord {
		return r.advanceCoord(st)
	}
	return r.advanceShard(b.Stream, st)
}

// advanceShard folds every newly complete record of one shard stream.
// A torn tail at the end of the open segment is "wait for more bytes";
// the same tail mid-stream — or any ErrCorrupt — poisons the replica.
func (r *Replica) advanceShard(s int, st *streamState) error {
	for {
		if st.decSeg >= len(st.segs) {
			return nil
		}
		seg := st.segs[st.decSeg]
		last := st.decSeg == len(st.segs)-1
		if !st.hdrOK {
			if len(seg) < wal.SegHeaderLen {
				if last {
					return nil // header still arriving
				}
				return r.poisonLocked(fmt.Errorf("stream %d seg %d: short header mid-stream", s, st.decSeg))
			}
			idx, err := wal.CheckSegmentHeader(seg)
			if err != nil {
				return r.poisonLocked(fmt.Errorf("stream %d seg %d: %v", s, st.decSeg, err))
			}
			if idx != st.decSeg {
				return r.poisonLocked(fmt.Errorf("stream %d seg %d: header declares index %d", s, st.decSeg, idx))
			}
			st.hdrOK = true
		}
		body := seg[wal.SegHeaderLen:]
		recs, consumed, reason := wal.DecodeAll(body[st.decOff:])
		st.decOff += consumed
		before := len(st.rp.Anomalies())
		for _, rec := range recs {
			st.rp.Apply(rec)
		}
		if anoms := st.rp.Anomalies(); len(anoms) > before {
			return r.poisonLocked(fmt.Errorf("stream %d: replay anomaly: %s", s, anoms[len(anoms)-1]))
		}
		r.foldNewLocked(s, st)
		switch {
		case reason == nil:
			if last {
				return nil // caught up
			}
			st.decSeg, st.decOff, st.hdrOK = st.decSeg+1, 0, false
		case errors.Is(reason, wal.ErrTornTail):
			if last {
				return nil // the open segment's tail will grow past this
			}
			return r.poisonLocked(fmt.Errorf("stream %d seg %d: torn mid-stream: %v", s, st.decSeg, reason))
		default: // wal.ErrCorrupt
			return r.poisonLocked(fmt.Errorf("stream %d seg %d: %v", s, st.decSeg, reason))
		}
	}
}

// advanceCoord re-decodes the coordinator image (it is small — one
// frame per cross-shard decision). Truncation is tolerated exactly as
// recovery tolerates it: the torn tail is simply not yet decided. The
// full decode also yields the cross-shard half of the exactly-once
// session table and the branded lease epoch, so a promoted follower
// serves retries from the same table the primary did.
func (r *Replica) advanceCoord(st *streamState) error {
	cr := shard.DecodeCoordLogFull(st.segs[0])
	r.coord = cr.Commits
	r.coordSess = cr.Sessions
	r.leaseEpoch = cr.LeaseEpoch
	st.folded = len(cr.Commits)
	st.rawRecs = shard.CountCoordRecords(st.segs[0])
	if cr.Epoch > r.epoch {
		r.epoch = cr.Epoch
	}
	st.chain = st.chain[:0]
	for _, rec := range cr.Commits {
		st.chain = append(st.chain, rec.Name)
	}
	return nil
}

// foldNewLocked projects newly committed transactions of shard s onto
// the per-shard MVCC version store at their recovery commit stamps,
// mirroring the primary applier's projection (word substrates fold the
// register image, map substrates fold the "ht" put/remove stream). The
// replayer rejects stamp regressions as anomalies before this runs, so
// Apply's commit-order precondition holds by construction.
func (r *Replica) foldNewLocked(s int, st *streamState) {
	for _, t := range st.rp.CommittedSince(st.folded) {
		st.chain = append(st.chain, t.Name)
		var writes []mvcc.Write
		for _, op := range t.Ops {
			if w, ok := mvcc.TranslateOp(r.mode, op); ok {
				writes = append(writes, w)
			}
		}
		// Typed counter deltas resolve to absolutes under r.mu, in the
		// replayer's commit-stamp order — the same fold the primary's
		// applier runs, so both build identical version chains.
		r.folds[s].Resolve(writes)
		// Shadow first: Apply's GC may TrimTo the new watermark, and
		// the certifier must already hold this commit by then.
		r.certs[s].Append(t.Stamp, writes)
		r.stores[s].Apply(t.Stamp, writes)
	}
	st.folded = st.rp.CommittedLen()
}

// Get serves one key from a pinned snapshot of its home shard's
// version store — the follower's stale-bounded read path. Word
// substrates always report found (a register's default value is 0),
// map substrates report presence, matching the primary's semantics.
func (r *Replica) Get(key uint64) (int64, bool) {
	r.mu.Lock()
	r.readTxns++
	snap := r.stores[r.router.Shard(key)].Snapshot()
	r.mu.Unlock()
	defer snap.Close()
	return snap.Get(key)
}

// SnapshotCut pins one snapshot per shard under a single lock
// acquisition — a consistent cut of the folded committed prefix,
// stale-bounded but never straddling a half-applied batch — and
// returns the per-shard certifiers the reads must be checked against.
// The caller must Close every snapshot; until it does, GC holds every
// version the cut can see.
func (r *Replica) SnapshotCut() ([]*mvcc.Snapshot, []*mvcc.Shadow) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.readTxns++
	snaps := make([]*mvcc.Snapshot, r.cfg.Shards)
	for i := 0; i < r.cfg.Shards; i++ {
		snaps[i] = r.stores[i].Snapshot()
	}
	return snaps, r.certs
}

// Shard returns key's home shard (the router is immutable state).
func (r *Replica) Shard(key uint64) int { return r.router.Shard(key) }

// ReadTxn serves a read-only transaction from a pinned snapshot cut:
// reads happen outside the replica lock, then every observed read is
// certified against the shard's independent committed-history shadow.
// A certification error means the version store diverged from the
// shipped log — a bug, not a conflict — and the caller must refuse
// the response rather than serve an unserializable read.
func (r *Replica) ReadTxn(keys []uint64) (vals []int64, found []bool, err error) {
	snaps, certs := r.SnapshotCut()
	defer func() {
		for _, sn := range snaps {
			sn.Close()
		}
	}()
	vals = make([]int64, len(keys))
	found = make([]bool, len(keys))
	perShard := make([][]mvcc.ReadObs, len(snaps))
	for i, key := range keys {
		s := r.router.Shard(key)
		vals[i], found[i] = snaps[s].Get(key)
		perShard[s] = append(perShard[s], mvcc.ReadObs{Key: key, Val: vals[i], Found: found[i]})
	}
	for s, reads := range perShard {
		if len(reads) == 0 {
			continue
		}
		if err := certs[s].Certify(snaps[s].Watermark(), reads); err != nil {
			return nil, nil, fmt.Errorf("repl: shard %d: %w", s, err)
		}
	}
	return vals, found, nil
}

// MVCCStats sums the per-shard version-store censuses.
func (r *Replica) MVCCStats() mvcc.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out mvcc.Stats
	for _, st := range r.stores {
		s := st.StoreStats()
		out.Versions += s.Versions
		out.Chains += s.Chains
		out.SnapshotsOpen += s.SnapshotsOpen
		out.Truncated += s.Truncated
		if s.Watermark > out.Watermark {
			out.Watermark = s.Watermark
		}
	}
	return out
}

// Watermark returns one stream's contiguous durable prefix — the ack
// point a resending shipper resumes from.
func (r *Replica) Watermark(stream int) Cursor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.watermarkLocked(stream)
}

func (r *Replica) watermarkLocked(stream int) Cursor {
	if stream < 0 || stream >= len(r.streams) {
		return Cursor{}
	}
	st := r.streams[stream]
	if len(st.segs) == 0 {
		return Cursor{}
	}
	return Cursor{Seg: len(st.segs) - 1, Off: len(st.segs[len(st.segs)-1])}
}

// Chains returns the replica's per-stream commit chains: for each
// shard its committed transaction names in stamp order, and last the
// coordinator's decided names in GSN order — the prefix-extension
// obligation's operands.
func (r *Replica) Chains() [][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]string, len(r.streams))
	for i, st := range r.streams {
		out[i] = append([]string(nil), st.chain...)
	}
	return out
}

// Stats snapshots replication progress.
func (r *Replica) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := Stats{
		Epoch: r.epoch, Duplicates: r.dups, Gaps: r.gaps,
		Fenced: r.fenced, ReadTxns: r.readTxns, Poisoned: r.poison != nil,
	}
	for i, st := range r.streams {
		ss := StreamStat{Watermark: r.watermarkLocked(i), Committed: st.folded}
		if st.rp != nil {
			ss.Applied = uint64(st.rp.Records())
			ss.Committed = st.rp.CommittedLen()
		} else {
			ss.Applied = uint64(st.rawRecs)
			ss.Committed = len(r.coord)
		}
		out.Streams = append(out.Streams, ss)
	}
	return out
}

// AppliedRecords sums records applied across shard streams plus
// coordinator records decoded — the replica-side operand of the
// replication lag gauge.
func (r *Replica) AppliedRecords(stream int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if stream < 0 || stream >= len(r.streams) {
		return 0
	}
	st := r.streams[stream]
	if st.rp != nil {
		return uint64(st.rp.Records())
	}
	return uint64(st.rawRecs)
}

// Sessions merges the replica's view of the exactly-once session table:
// the single-shard half from the per-shard replayer folds and the
// cross-shard (and boot-checkpoint) half from the coordinator stream,
// latest sequence number winning — the same merge boot recovery runs.
func (r *Replica) Sessions() map[uint64]recovery.SessionEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[uint64]recovery.SessionEntry)
	merge := func(m map[uint64]recovery.SessionEntry) {
		for s, ent := range m {
			if cur, ok := out[s]; !ok || ent.SeqNo > cur.SeqNo {
				out[s] = ent
			}
		}
	}
	for i := 0; i < r.cfg.Shards; i++ {
		if rp := r.streams[i].rp; rp != nil {
			merge(rp.Sessions())
		}
	}
	merge(r.coordSess)
	return out
}

// LeaseEpoch returns the highest lease epoch the coordinator stream has
// branded — the floor for any lease granted to this replica after
// promotion.
func (r *Replica) LeaseEpoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaseEpoch
}

// Image snapshots the replica's shipped bytes as a shard.Image — the
// durable image promotion certifies and the successor engine recovers
// from.
func (r *Replica) Image() *shard.Image {
	r.mu.Lock()
	defer r.mu.Unlock()
	img := &shard.Image{Shards: make([][][]byte, r.cfg.Shards)}
	for i := 0; i < r.cfg.Shards; i++ {
		for _, seg := range r.streams[i].segs {
			img.Shards[i] = append(img.Shards[i], append([]byte(nil), seg...))
		}
	}
	if segs := r.streams[r.cfg.CoordStream()].segs; len(segs) > 0 {
		img.Coord = append([]byte(nil), segs[0]...)
	}
	return img
}

// Certify runs the full multi-log recovery certificate over the
// shipped bytes — per-shard recover-and-certify, coordinator
// resolution, merged commit order — without mutating the replica. This
// is the promotion obligation: a follower may only take over with a
// certificate in hand.
func (r *Replica) Certify() (shard.MultiReport, error) {
	return shard.RecoverAndCertifyImage(r.Image(), r.cfg.Substrate)
}
