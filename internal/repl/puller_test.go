package repl_test

import (
	"math/rand"
	"testing"

	"pushpull/internal/repl"
	"pushpull/internal/shard"
)

// TestPullerCatchUp drives the asynchronous pull path: a primary runs
// with no ship seam at all; a follower polls its durable streams
// through EngineSource and must converge to the primary's state, with
// lag gauges draining to zero at quiescence.
func TestPullerCatchUp(t *testing.T) {
	const shards, keys = 3, 32
	eng, err := shard.New(shard.Options{
		Shards: shards, Substrate: "tl2", Keys: keys, Seed: 9,
		Durable: true, SegmentBytes: 2 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := repl.Config{Substrate: "tl2", Shards: shards, Keys: keys}
	rep := repl.NewReplica(cfg)
	p := repl.NewPuller(rep, 512) // small budget: forces multi-chunk polls
	src := repl.EngineSource(eng)

	rng := rand.New(rand.NewSource(21))
	ka, kb := crossPair(eng.Router(), keys)
	for i := 0; i < 200; i++ {
		if rng.Intn(4) == 0 {
			_, _, err = eng.Do([]shard.Op{
				{Kind: shard.OpPut, Key: ka, Val: int64(i)},
				{Kind: shard.OpPut, Key: kb, Val: int64(i)},
			})
		} else {
			_, _, err = eng.Do([]shard.Op{{Kind: shard.OpPut, Key: uint64(rng.Intn(keys)), Val: int64(i)}})
		}
		if err != nil {
			t.Fatal(err)
		}
		if i%25 == 0 {
			if _, err := p.Sync(src); err != nil {
				t.Fatalf("mid-run sync: %v", err)
			}
		}
	}
	if _, err := p.Sync(src); err != nil {
		t.Fatal(err)
	}
	for s, lag := range p.Lag() {
		if lag != 0 {
			t.Fatalf("stream %d lag %d at quiescence", s, lag)
		}
	}
	for k := uint64(0); k < keys; k++ {
		want, _ := eng.ReadKey(k)
		got, found := rep.Get(k)
		if !found || got != want {
			t.Fatalf("key %d: follower (%d,%v), primary %d", k, got, found, want)
		}
	}
	if _, err := rep.Certify(); err != nil {
		t.Fatal(err)
	}
	// A second sync over a drained source applies nothing.
	n, err := p.Sync(src)
	if err != nil || n != 0 {
		t.Fatalf("idle sync applied %d bytes, err %v", n, err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}
