package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"pushpull/internal/chaos"
	"pushpull/internal/history"
	"pushpull/internal/repl"
	"pushpull/internal/server"
	"pushpull/internal/shard"
)

// The failover target: a replicated, lease-fenced primary (4-shard
// engine shipping to two replicas over faulty links that drop,
// duplicate, reorder, and PARTITION batches) dies mid-workload — a
// deterministic WAL crash plus armed coordinator death sites, so some
// seeds kill it between prepare and commit; seeds whose crash never
// fires lose their lease instead (the supervisor partitioned away) and
// must refuse every subsequent ack themselves. The sweep then promotes
// the more advanced replica and asserts the full self-healing
// contract: the promotion re-certifies the merged global order with
// zero transactions in doubt, the promoted chains prefix-extend the
// other replica's, no acknowledged write is lost, every ambiguous
// session request retried against the successor settles exactly once
// (a dedup hit never re-executes), at most one primary acks per lease
// epoch, and the promoted engine's histories replay clean through the
// offline certifier.

// failoverShards is the sweep's fixed partition count.
const failoverShards = 4

// failoverClients is the number of exactly-once session clients
// driving the sweep's load (each owns a disjoint key slice).
const failoverClients = 4

// Replication-link fault sites (plan-derivation labels only; the link
// injects by Hash01 draws, not through a chaos.Faults injector).
const (
	SiteReplDrop    chaos.Site = "repl/drop"
	SiteReplDup     chaos.Site = "repl/dup"
	SiteReplReorder chaos.Site = "repl/reorder"
)

// FailoverPlanFor builds one failover run's reproduction recipe:
// coordinator death armed in the prepare→commit window, a
// deterministic WAL crash whose append index is a pure function of the
// seed, and per-replica link fault rates drawn from the same seed.
func FailoverPlanFor(seed int64, p ChaosParams) chaos.Plan {
	p = p.WithDefaults()
	plan := chaos.NewPlan(seed).
		WithRate(chaos.SiteCoordPrepared, p.Rate/4).
		WithRate(chaos.SiteCoordCommit, p.Rate/4)
	est := estimatedAppends("tl2", p) / failoverShards
	if est == 0 {
		est = 1
	}
	frac := chaos.Hash01(seed, chaos.SiteWALAppend, 0)
	return plan.WithCrash(1+uint64(frac*float64(est)), chaos.CrashMode(uint64(seed)%3))
}

// linkRates derives one replica link's drop/dup/reorder probabilities
// from the seed (visit distinguishes the replicas).
func linkRates(seed int64, visit uint64) (drop, dup, reorder float64) {
	return 0.25 * chaos.Hash01(seed, SiteReplDrop, visit),
		0.25 * chaos.Hash01(seed, SiteReplDup, visit),
		0.25 * chaos.Hash01(seed, SiteReplReorder, visit)
}

// FailoverOutcome is one certified failover run.
type FailoverOutcome struct {
	Seed int64
	Plan string
	// CrashFired reports whether the plan's WAL crash killed the
	// primary mid-run (otherwise the run deposes it by lease expiry —
	// the failover machinery is exercised either way).
	CrashFired bool
	Commits    uint64
	Aborts     uint64
	GaveUp     uint64
	// Acked is the number of distinct keys with a client-acknowledged
	// write — the zero-loss ledger.
	Acked int
	// Partitions counts seeded partition windows installed on the
	// replication links; AckWithheld counts commits whose ack the
	// primary refused because a link lagged or its lease expired —
	// every one becomes an ambiguous outcome the session client
	// retries.
	Partitions  int
	AckWithheld uint64
	// ZombieRefused counts post-expiry writes the deposed primary
	// refused by itself; Retried and DedupHits describe the ambiguous
	// requests settled against the successor (a dedup hit answers from
	// the replicated table without re-executing).
	ZombieRefused uint64
	Retried       int
	DedupHits     int
	// LeaseEpoch is the successor's lease epoch (always 2: one
	// predecessor, one promotion).
	LeaseEpoch uint64
	// PromotedTxns is the promoted certificate's recovered transaction
	// count; InDoubt must be zero.
	PromotedTxns int
	InDoubt      int
	// HistoryTxns counts transactions replayed through the offline
	// history certifier on the promoted engine.
	HistoryTxns int
	Faults      chaos.Stats
	Err         error
}

// sessionClient is one exactly-once client in the sweep: it owns keys
// k with k % failoverClients == id, advances seq only on settled
// outcomes, and holds an ambiguous request for retry on the successor.
type sessionClient struct {
	id      uint64
	seq     uint64
	pending bool
	ops     []shard.Op // the held (unsettled) request
}

// RunFailoverOne runs one certified failover: load a shipping primary
// under chaos until it dies (or is deposed), promote the most advanced
// replica, and assert the full self-healing contract.
func RunFailoverOne(seed int64, p ChaosParams) FailoverOutcome {
	p = p.WithDefaults()
	out := FailoverOutcome{Seed: seed}
	out.Err = runFailoverCore(seed, p, &out)
	return out
}

func runFailoverCore(seed int64, p ChaosParams, out *FailoverOutcome) error {
	keys := p.Keys * failoverShards
	cfg := repl.Config{Substrate: "tl2", Shards: failoverShards, Keys: keys}
	repA := repl.NewReplica(cfg)
	repB := repl.NewReplica(cfg)
	g := repl.NewGroup(1)
	dropA, dupA, reA := linkRates(seed, 1)
	dropB, dupB, reB := linkRates(seed, 2)
	links := []*repl.Link{
		g.Add(repA, seed, dropA, dupA, reA),
		g.Add(repB, seed+1000, dropB, dupB, reB),
	}

	// Seeded partition windows — full and asymmetric — on each link,
	// on the batch-index axis so replay is deterministic.
	txns := p.Threads * p.OpsEach
	span := uint64(txns)
	for li, ln := range links {
		rate := p.Rate * 4
		if rate > 0.6 {
			rate = 0.6
		}
		for _, w := range chaos.PartitionsFor(seed, li, rate, span, span/4+1, 2) {
			ln.Partition(repl.PartitionWindow{From: w.From, To: w.To, Asym: w.Asym})
			out.Partitions++
		}
	}

	// The serving lease on a manual clock: the workload loop advances
	// time and renews while the supervisor is "reachable"; when the
	// crash fires (or the zombie phase starts) renewals stop and the
	// primary must silence itself.
	var nowNs atomic.Int64
	base := time.Unix(1_000_000, 0)
	clock := func() time.Time { return base.Add(time.Duration(nowNs.Load())) }
	lease := server.NewLease(50*time.Millisecond, clock)

	plan := FailoverPlanFor(seed, p)
	out.Plan = plan.String()
	ackCheck := func() error {
		if err := lease.Check(); err != nil {
			return err
		}
		if n := g.Lagging(); n > 0 {
			out.AckWithheld++
			return fmt.Errorf("replication lagging %d batch(es)", n)
		}
		return nil
	}
	eng, err := shard.New(shard.Options{
		Shards: failoverShards, Substrate: "tl2", Keys: keys, Seed: seed,
		Durable: true, Ship: g.Ship, Plan: &plan,
		Retry: chaos.Default(seed), Suite: p.Obs,
		AckCheck: ackCheck,
	})
	if err != nil {
		return err
	}
	if err := eng.BrandLease(1); err != nil {
		return err
	}
	if err := lease.Grant(1); err != nil {
		return err
	}
	clean := plan.CrashMode == chaos.CrashClean

	// ambiguous reports whether a DoSession outcome left the commit
	// state unknown to the client (withheld ack, fenced coordinator,
	// dead process) — the retried-on-successor cases — as opposed to a
	// settled abort.
	ambiguous := func(err error) bool {
		return errors.Is(err, shard.ErrAckUnknown) || errors.Is(err, shard.ErrCoordCrashed)
	}

	rng := rand.New(rand.NewSource(seed))
	clients := make([]*sessionClient, failoverClients)
	for c := range clients {
		clients[c] = &sessionClient{id: uint64(100 + c)}
	}
	// acked[key] is the value of the last client-acknowledged write —
	// values grow with issue order, so the final image must read >= the
	// acked value at every key (a stale double-apply would clobber a
	// newer write below its acked value and be caught).
	acked := make(map[uint64]int64)
	ownKey := func(c int) uint64 {
		return uint64(rng.Intn(keys)/failoverClients*failoverClients + c)
	}
	for i := 1; i <= txns; i++ {
		nowNs.Add(int64(time.Millisecond))
		lease.Renew()
		cl := clients[i%failoverClients]
		if cl.pending {
			continue // a real session client blocks until its retry settles
		}
		v := int64(i)
		ops := []shard.Op{{Kind: shard.OpPut, Key: ownKey(i % failoverClients), Val: v}}
		if rng.Intn(3) == 0 {
			ops = append(ops, shard.Op{Kind: shard.OpPut, Key: ownKey(i % failoverClients), Val: v})
		}
		cl.seq++
		_, _, _, err := eng.DoSession(cl.id, cl.seq, ops)
		alive := !eng.Crashed()
		switch {
		case err == nil && alive:
			for _, op := range ops {
				acked[op.Key] = op.Val
			}
		case err == nil || ambiguous(err) || !alive:
			// Committed-but-unacked, withheld, fenced, or the process
			// died under the request: the client holds (seq, ops) and
			// will re-issue them verbatim against the successor.
			cl.pending = true
			cl.ops = ops
		default:
			out.GaveUp++ // a settled abort; the seq is consumed
		}
	}
	out.CrashFired = eng.Crashed()

	// Seeds whose crash never fired depose the primary by lease expiry
	// instead: renewals stop, time passes, and the zombie must refuse
	// every ack itself — the "at most one acking primary per lease
	// epoch" half of the fencing invariant.
	if !out.CrashFired {
		nowNs.Add(int64(time.Second))
		if lease.Renew() {
			return errors.New("expired lease renewed — resurrected permit")
		}
		for z := 0; z < failoverClients; z++ {
			cl := clients[z]
			if cl.pending {
				continue
			}
			cl.seq++
			ops := []shard.Op{{Kind: shard.OpPut, Key: ownKey(z), Val: int64(txns + 1 + z)}}
			_, _, _, err := eng.DoSession(cl.id, cl.seq, ops)
			if err == nil {
				return fmt.Errorf("deposed primary acked client %d on an expired lease", cl.id)
			}
			if !ambiguous(err) {
				return fmt.Errorf("zombie refusal had wrong shape: %w", err)
			}
			out.ZombieRefused++
			cl.pending = true
			cl.ops = ops
		}
	}
	eng.Kill()
	st := eng.Stats()
	out.Commits, out.Aborts = st.Commits, st.Aborts
	out.Acked = len(acked)
	out.Faults = eng.FaultStats()

	// Partitions heal: pending backlogs flush (asymmetric windows land
	// as duplicates the replica's overlap check absorbs).
	g.Heal()

	// Both replicas must be undamaged and independently certifiable.
	for i, r := range []*repl.Replica{repA, repB} {
		if err := r.Poisoned(); err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
		if _, err := r.Certify(); err != nil {
			return fmt.Errorf("replica %d certification: %w", i, err)
		}
	}

	// Promote the more advanced replica; its chains must prefix-extend
	// the other's, per stream.
	promoted, other := repA, repB
	if appliedTotal(repB) > appliedTotal(repA) {
		promoted, other = repB, repA
	}
	promRep, err := promoted.Certify()
	if err != nil {
		return fmt.Errorf("promotion certificate: %w", err)
	}
	out.PromotedTxns = promRep.RecoveredTxns()
	out.InDoubt = promRep.InDoubt
	if promRep.InDoubt != 0 {
		return fmt.Errorf("%d transaction(s) in doubt after promotion", promRep.InDoubt)
	}
	if err := repl.CheckPrefixExtension(promoted.Chains(), other.Chains()); err != nil {
		return err
	}

	// A clean crash preserves exactly the durable prefix, so the
	// promoted recovery must match the primary image's recovery
	// transaction for transaction. (Torn and bitflip crashes may strip
	// the primary's never-durable tail — which was never shipped and
	// never acked — so only the zero-acked-loss check applies there.)
	if out.CrashFired && clean {
		primaryRep, err := shard.RecoverAndCertifyImage(eng.Image(), "tl2")
		if err != nil {
			return fmt.Errorf("primary image: %w", err)
		}
		if got, want := promRep.RecoveredTxns(), primaryRep.RecoveredTxns(); got != want {
			return fmt.Errorf("promoted recovered %d txns, primary image has %d", got, want)
		}
	}

	// The successor serves at the next engine epoch under lease epoch
	// 2, granted only after the predecessor's lease is provably dead.
	lease2 := server.NewLease(50*time.Millisecond, clock)
	eng2, err := shard.New(shard.Options{
		Shards: failoverShards, Substrate: "tl2", Keys: keys, Seed: seed + 1,
		Durable: true, RecoverFrom: promoted.Image(), Epoch: promRep.Epoch + 1,
		AckCheck: lease2.Check,
	})
	if err != nil {
		return fmt.Errorf("promotion boot: %w", err)
	}
	if n := eng2.Recovered().InDoubt; n != 0 {
		return fmt.Errorf("in-doubt after promoted restart: %d", n)
	}
	if err := eng2.BrandLease(2); err != nil {
		return err
	}
	if err := lease2.Grant(2); err != nil {
		return err
	}
	out.LeaseEpoch = 2

	// Every client with an ambiguous outcome blindly re-issues the held
	// (session, seq, ops) against the successor; each must settle
	// exactly once — a dedup hit proves the original committed and MUST
	// NOT re-execute (zero commits delta), a miss executes it now.
	for _, cl := range clients {
		if !cl.pending {
			continue
		}
		out.Retried++
		commits0 := eng2.Stats().Commits
		_, _, dedup, err := eng2.DoSession(cl.id, cl.seq, cl.ops)
		if err != nil {
			return fmt.Errorf("client %d retry on successor: %w", cl.id, err)
		}
		if dedup {
			out.DedupHits++
			if got := eng2.Stats().Commits; got != commits0 {
				return fmt.Errorf("client %d dedup hit re-executed: commits %d -> %d", cl.id, commits0, got)
			}
		}
		cl.pending = false
		for _, op := range cl.ops {
			// Settled now: the write is acked (at its original position
			// if dedup'd, at the tail otherwise — either way the key's
			// final value is >= its value under monotone values).
			if cur, ok := acked[op.Key]; !ok || op.Val > cur {
				acked[op.Key] = op.Val
			}
		}
	}

	// Zero acked loss: every acknowledged write is present.
	for k, v := range acked {
		if got, _ := eng2.ReadKey(k); got < v {
			return fmt.Errorf("acknowledged write lost: key %d = %d, acked %d", k, got, v)
		}
	}
	if _, _, err := eng2.Do([]shard.Op{{Kind: shard.OpPut, Key: 0, Val: int64(txns) + 100}}); err != nil {
		return fmt.Errorf("promoted engine refuses writes: %w", err)
	}
	if err := eng2.FinalCheck(); err != nil {
		return fmt.Errorf("promoted final check: %w", err)
	}

	// Offline cross-check: capture each promoted shard's certified
	// history and replay it through a fresh shadow machine.
	for i, rec := range eng2.Recorders() {
		if rec == nil {
			continue
		}
		f := history.Capture(rec, []history.ObjectDecl{{Name: "mem", Type: "register"}})
		rep, err := history.Replay(f)
		if err != nil {
			return fmt.Errorf("shard %d history replay: %w", i, err)
		}
		if err := rep.Err(); err != nil {
			return fmt.Errorf("shard %d history certificate: %w", i, err)
		}
		out.HistoryTxns += rep.Certified
	}
	return eng2.Close()
}

func appliedTotal(r *repl.Replica) uint64 {
	var n uint64
	for s := 0; s < r.Config().Streams(); s++ {
		n += r.AppliedRecords(s)
	}
	return n
}

// runChaosFailover adapts a failover run to the chaos-campaign shape.
func runChaosFailover(seed int64, p ChaosParams, out *ChaosOutcome) error {
	fo := RunFailoverOne(seed, p)
	out.Plan = fo.Plan
	out.Commits, out.Aborts = fo.Commits, fo.Aborts
	out.GaveUp = fo.GaveUp
	out.Faults = fo.Faults
	return fo.Err
}

// FailoverCampaign sweeps seeds over the failover target and returns
// the human-readable summary plus per-run outcomes; err is the first
// contract violation (nil means every promotion certified, no
// acknowledged write was lost, every ambiguous retry settled exactly
// once, and no deposed primary acked past its lease).
func FailoverCampaign(p ChaosParams) (string, []FailoverOutcome, error) {
	p = p.WithDefaults()
	var outcomes []FailoverOutcome
	var firstErr error
	var rows []Row
	crashed, failed, partitions, retried, dedup := 0, 0, 0, 0, 0
	var commits, acked, zombies uint64
	for s := 0; s < p.Seeds; s++ {
		o := RunFailoverOne(p.BaseSeed+int64(s), p)
		outcomes = append(outcomes, o)
		commits += o.Commits
		acked += uint64(o.Acked)
		partitions += o.Partitions
		retried += o.Retried
		dedup += o.DedupHits
		zombies += o.ZombieRefused
		if o.CrashFired {
			crashed++
		}
		if o.Err != nil {
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("failover: seed %d: %w (replay: %s)", o.Seed, o.Err, o.Plan)
			}
		}
	}
	rows = append(rows, Row{
		"failover", fmt.Sprintf("%d", p.Seeds), fmt.Sprintf("%d", crashed),
		fmt.Sprintf("%d", partitions), fmt.Sprintf("%d", commits),
		fmt.Sprintf("%d", acked), fmt.Sprintf("%d/%d", dedup, retried),
		fmt.Sprintf("%d", zombies), fmt.Sprintf("%d", failed),
	})
	report := Table(Row{"target", "seeds", "crashes", "partitions", "commits",
		"acked keys", "dedup/retried", "zombie refusals", "violations"}, rows)
	if firstErr != nil {
		report += "\nFIRST FAILURE: " + firstErr.Error() + "\n"
	}
	return report, outcomes, firstErr
}
