package bench

import (
	"fmt"
	"math/rand"

	"pushpull/internal/chaos"
	"pushpull/internal/repl"
	"pushpull/internal/shard"
)

// The failover target: a replicated primary (4-shard engine shipping
// to two replicas over faulty links that drop, duplicate, and reorder
// batches) dies mid-workload — a deterministic WAL crash plus armed
// coordinator death sites, so some seeds kill it between prepare and
// commit. The sweep then promotes the more advanced replica and
// asserts the failover contract: the promotion re-certifies the merged
// global order with zero transactions in doubt, the promoted chains
// prefix-extend the other replica's, and no acknowledged transaction
// is lost.

// failoverShards is the sweep's fixed partition count.
const failoverShards = 4

// Replication-link fault sites (plan-derivation labels only; the link
// injects by Hash01 draws, not through a chaos.Faults injector).
const (
	SiteReplDrop    chaos.Site = "repl/drop"
	SiteReplDup     chaos.Site = "repl/dup"
	SiteReplReorder chaos.Site = "repl/reorder"
)

// FailoverPlanFor builds one failover run's reproduction recipe:
// coordinator death armed in the prepare→commit window, a
// deterministic WAL crash whose append index is a pure function of the
// seed, and per-replica link fault rates drawn from the same seed.
func FailoverPlanFor(seed int64, p ChaosParams) chaos.Plan {
	p = p.WithDefaults()
	plan := chaos.NewPlan(seed).
		WithRate(chaos.SiteCoordPrepared, p.Rate/4).
		WithRate(chaos.SiteCoordCommit, p.Rate/4)
	est := estimatedAppends("tl2", p) / failoverShards
	if est == 0 {
		est = 1
	}
	frac := chaos.Hash01(seed, chaos.SiteWALAppend, 0)
	return plan.WithCrash(1+uint64(frac*float64(est)), chaos.CrashMode(uint64(seed)%3))
}

// linkRates derives one replica link's drop/dup/reorder probabilities
// from the seed (visit distinguishes the replicas).
func linkRates(seed int64, visit uint64) (drop, dup, reorder float64) {
	return 0.25 * chaos.Hash01(seed, SiteReplDrop, visit),
		0.25 * chaos.Hash01(seed, SiteReplDup, visit),
		0.25 * chaos.Hash01(seed, SiteReplReorder, visit)
}

// FailoverOutcome is one certified failover run.
type FailoverOutcome struct {
	Seed int64
	Plan string
	// CrashFired reports whether the plan's WAL crash killed the
	// primary mid-run (otherwise the run kills it at the end — the
	// failover machinery is exercised either way).
	CrashFired bool
	Commits    uint64
	Aborts     uint64
	GaveUp     uint64
	// Acked is the number of distinct keys with a client-acknowledged
	// write — the zero-loss ledger.
	Acked int
	// PromotedTxns is the promoted certificate's recovered transaction
	// count; InDoubt must be zero.
	PromotedTxns int
	InDoubt      int
	Faults       chaos.Stats
	Err          error
}

// RunFailoverOne runs one certified failover: load a shipping primary
// under chaos until it dies, promote the most advanced replica, and
// assert the full failover contract.
func RunFailoverOne(seed int64, p ChaosParams) FailoverOutcome {
	p = p.WithDefaults()
	out := FailoverOutcome{Seed: seed}
	out.Err = runFailoverCore(seed, p, &out)
	return out
}

func runFailoverCore(seed int64, p ChaosParams, out *FailoverOutcome) error {
	keys := p.Keys * failoverShards
	cfg := repl.Config{Substrate: "tl2", Shards: failoverShards, Keys: keys}
	repA := repl.NewReplica(cfg)
	repB := repl.NewReplica(cfg)
	g := repl.NewGroup(1)
	dropA, dupA, reA := linkRates(seed, 1)
	dropB, dupB, reB := linkRates(seed, 2)
	g.Add(repA, seed, dropA, dupA, reA)
	g.Add(repB, seed+1000, dropB, dupB, reB)

	plan := FailoverPlanFor(seed, p)
	out.Plan = plan.String()
	eng, err := shard.New(shard.Options{
		Shards: failoverShards, Substrate: "tl2", Keys: keys, Seed: seed,
		Durable: true, Ship: g.Ship, Plan: &plan,
		Retry: chaos.Default(seed), Suite: p.Obs,
	})
	if err != nil {
		return err
	}
	clean := plan.CrashMode == chaos.CrashClean

	rng := rand.New(rand.NewSource(seed))
	acked := make(map[uint64]int64)
	txns := p.Threads * p.OpsEach
	for i := 1; i <= txns; i++ {
		v := int64(i)
		var ops []shard.Op
		if rng.Intn(3) == 0 {
			k1, k2 := uint64(rng.Intn(keys)), uint64(rng.Intn(keys))
			ops = []shard.Op{
				{Kind: shard.OpPut, Key: k1, Val: v},
				{Kind: shard.OpPut, Key: k2, Val: v},
			}
		} else {
			ops = []shard.Op{{Kind: shard.OpPut, Key: uint64(rng.Intn(keys)), Val: v}}
		}
		_, _, err := eng.Do(ops)
		// An ack only counts while the process lives: after the
		// simulated death the in-memory engine is a ghost whose "acks"
		// no real client would ever have received.
		if err == nil && !eng.Crashed() {
			for _, op := range ops {
				acked[op.Key] = op.Val
			}
		} else if err != nil {
			out.GaveUp++
		}
	}
	out.CrashFired = eng.Crashed()
	eng.Kill()
	st := eng.Stats()
	out.Commits, out.Aborts = st.Commits, st.Aborts
	out.Acked = len(acked)
	out.Faults = eng.FaultStats()

	// Both replicas must be undamaged and independently certifiable.
	for i, r := range []*repl.Replica{repA, repB} {
		if err := r.Poisoned(); err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
		if _, err := r.Certify(); err != nil {
			return fmt.Errorf("replica %d certification: %w", i, err)
		}
	}

	// Promote the more advanced replica; its chains must prefix-extend
	// the other's, per stream.
	promoted, other := repA, repB
	if appliedTotal(repB) > appliedTotal(repA) {
		promoted, other = repB, repA
	}
	promRep, err := promoted.Certify()
	if err != nil {
		return fmt.Errorf("promotion certificate: %w", err)
	}
	out.PromotedTxns = promRep.RecoveredTxns()
	out.InDoubt = promRep.InDoubt
	if promRep.InDoubt != 0 {
		return fmt.Errorf("%d transaction(s) in doubt after promotion", promRep.InDoubt)
	}
	if err := repl.CheckPrefixExtension(promoted.Chains(), other.Chains()); err != nil {
		return err
	}

	// A clean crash preserves exactly the durable prefix, so the
	// promoted recovery must match the primary image's recovery
	// transaction for transaction. (Torn and bitflip crashes may strip
	// the primary's never-durable tail — which was never shipped and
	// never acked — so only the zero-acked-loss check applies there.)
	if clean {
		primaryRep, err := shard.RecoverAndCertifyImage(eng.Image(), "tl2")
		if err != nil {
			return fmt.Errorf("primary image: %w", err)
		}
		if got, want := promRep.RecoveredTxns(), primaryRep.RecoveredTxns(); got != want {
			return fmt.Errorf("promoted recovered %d txns, primary image has %d", got, want)
		}
	}

	// Serve from the promoted image at the next epoch; every
	// acknowledged write must be present.
	eng2, err := shard.New(shard.Options{
		Shards: failoverShards, Substrate: "tl2", Keys: keys, Seed: seed + 1,
		Durable: true, RecoverFrom: promoted.Image(), Epoch: promRep.Epoch + 1,
	})
	if err != nil {
		return fmt.Errorf("promotion boot: %w", err)
	}
	if n := eng2.Recovered().InDoubt; n != 0 {
		return fmt.Errorf("in-doubt after promoted restart: %d", n)
	}
	for k, v := range acked {
		if got, _ := eng2.ReadKey(k); got < v {
			return fmt.Errorf("acknowledged write lost: key %d = %d, acked %d", k, got, v)
		}
	}
	if _, _, err := eng2.Do([]shard.Op{{Kind: shard.OpPut, Key: 0, Val: 1}}); err != nil {
		return fmt.Errorf("promoted engine refuses writes: %w", err)
	}
	if err := eng2.FinalCheck(); err != nil {
		return fmt.Errorf("promoted final check: %w", err)
	}
	return eng2.Close()
}

func appliedTotal(r *repl.Replica) uint64 {
	var n uint64
	for s := 0; s < r.Config().Streams(); s++ {
		n += r.AppliedRecords(s)
	}
	return n
}

// runChaosFailover adapts a failover run to the chaos-campaign shape.
func runChaosFailover(seed int64, p ChaosParams, out *ChaosOutcome) error {
	fo := RunFailoverOne(seed, p)
	out.Plan = fo.Plan
	out.Commits, out.Aborts = fo.Commits, fo.Aborts
	out.GaveUp = fo.GaveUp
	out.Faults = fo.Faults
	return fo.Err
}

// FailoverCampaign sweeps seeds over the failover target and returns
// the human-readable summary plus per-run outcomes; err is the first
// contract violation (nil means every promotion certified and no
// acknowledged transaction was lost).
func FailoverCampaign(p ChaosParams) (string, []FailoverOutcome, error) {
	p = p.WithDefaults()
	var outcomes []FailoverOutcome
	var firstErr error
	var rows []Row
	crashed, failed := 0, 0
	var commits, acked uint64
	for s := 0; s < p.Seeds; s++ {
		o := RunFailoverOne(p.BaseSeed+int64(s), p)
		outcomes = append(outcomes, o)
		commits += o.Commits
		acked += uint64(o.Acked)
		if o.CrashFired {
			crashed++
		}
		if o.Err != nil {
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("failover: seed %d: %w (replay: %s)", o.Seed, o.Err, o.Plan)
			}
		}
	}
	rows = append(rows, Row{
		"failover", fmt.Sprintf("%d", p.Seeds), fmt.Sprintf("%d", crashed),
		fmt.Sprintf("%d", commits), fmt.Sprintf("%d", acked),
		fmt.Sprintf("%d", failed),
	})
	report := Table(Row{"target", "seeds", "mid-run crashes", "commits", "acked keys", "violations"}, rows)
	if firstErr != nil {
		report += "\nFIRST FAILURE: " + firstErr.Error() + "\n"
	}
	return report, outcomes, firstErr
}
