package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"pushpull/internal/adt"
	"pushpull/internal/chaos"
	"pushpull/internal/core"
	"pushpull/internal/lang"
	"pushpull/internal/obs"
	"pushpull/internal/sched"
	"pushpull/internal/serial"
	"pushpull/internal/spec"
	"pushpull/internal/stm/boost"
	"pushpull/internal/stm/dep"
	"pushpull/internal/stm/htmsim"
	"pushpull/internal/stm/hybrid"
	"pushpull/internal/stm/pess"
	"pushpull/internal/stm/tl2"
	"pushpull/internal/strategy"
	"pushpull/internal/trace"
	"pushpull/internal/wal"
)

// ChaosParams configures a fault-injection campaign: a seed sweep over
// every target, each run certified end to end.
type ChaosParams struct {
	// Targets to sweep; nil means ChaosTargets().
	Targets []string
	// Seeds is the number of plan seeds per target (BaseSeed,
	// BaseSeed+1, ...).
	Seeds    int
	BaseSeed int64
	Threads  int
	OpsEach  int
	Keys     int
	// Rate is the reference per-site fault probability; per-target plans
	// scale it per site (see ChaosPlanFor).
	Rate float64
	// WAL, when non-nil, makes the run durable: the recorder's shadow
	// machine (or the model machine) writes every global-log transition
	// ahead, and the substrate's commit path flushes it before
	// acknowledging. Crash campaigns (RunCrashOne) set this.
	WAL *wal.Log
	// Obs, when non-nil, streams the run into the observability suite:
	// every rule transition of the certifying shadow machine (or the
	// model machine), chaos injections, retry draws, scheduler
	// stalls/kills, and — on crash runs — WAL sync latency.
	Obs *obs.Suite
}

func (p ChaosParams) WithDefaults() ChaosParams {
	if p.Targets == nil {
		p.Targets = ChaosTargets()
	}
	if p.Seeds <= 0 {
		p.Seeds = 50
	}
	if p.BaseSeed == 0 {
		p.BaseSeed = 1
	}
	if p.Threads <= 0 {
		p.Threads = 4
	}
	if p.OpsEach <= 0 {
		p.OpsEach = 40
	}
	if p.Keys <= 0 {
		p.Keys = 16
	}
	if p.Rate <= 0 {
		p.Rate = 0.08
	}
	return p
}

// ChaosTargets lists the chaos-campaign targets: the five goroutine
// substrates, the hybrid runtime, the cooperative model under the
// chaos scheduler, the sharded engine with coordinator death and
// per-shard WAL crashes (both cross-shard commit paths: "shard" is the
// mutex coordinator, "shardseq" the deterministic sequencer), and the
// replicated failover target (primary death under faulty replication
// links, certified promotion).
func ChaosTargets() []string {
	return []string{"tl2", "pess", "boost", "htmsim", "dep", "hybrid", "model", "shard", "shardseq", "failover"}
}

// CrashTargets lists the crash-campaign targets: every single-machine
// target whose durable image is one WAL segment stream. The sharded
// engine crash-restarts inside its own chaos target instead
// (runChaosShard) — its image is multi-log (per-shard streams plus the
// coordinator log), which RunCrashOne's single-stream recovery
// interface cannot express.
func CrashTargets() []string {
	return []string{"tl2", "pess", "boost", "htmsim", "dep", "hybrid", "model"}
}

// ChaosPlanFor builds the fault plan a campaign uses for one target and
// seed — the reproduction recipe: rerunning the same target with the
// same plan replays the same injection decisions.
func ChaosPlanFor(target string, seed int64, rate float64) chaos.Plan {
	p := chaos.NewPlan(seed)
	switch target {
	case "tl2":
		p = p.WithRate(chaos.SiteTL2Read, rate/4).WithRate(chaos.SiteTL2Commit, rate)
	case "pess":
		p = p.WithRate(chaos.SitePessTimeout, rate)
	case "boost":
		p = p.WithRate(chaos.SiteBoostTimeout, rate)
	case "htmsim":
		p = p.WithRate(chaos.SiteHTMConflict, rate).
			WithRate(chaos.SiteHTMCapacity, rate/4).
			WithRate(chaos.SiteHTMCommit, rate)
	case "dep":
		p = p.WithRate(chaos.SiteDepConflict, rate/2)
	case "hybrid":
		p = p.WithRate(chaos.SiteHTMConflict, rate).
			WithRate(chaos.SiteHTMCapacity, rate/2).
			WithRate(chaos.SiteHTMCommit, rate).
			WithRate(chaos.SiteBoostTimeout, rate/4)
	case "model":
		p = p.WithRate(chaos.SiteSchedStall, rate).
			WithRate(chaos.SiteSchedKill, rate/20).WithBudget(chaos.SiteSchedKill, 1)
	}
	return p
}

// ChaosOutcome is one certified chaos run.
type ChaosOutcome struct {
	Target string
	Seed   int64
	Plan   string
	Faults chaos.Stats
	// Commits/Aborts from the target's own counters; GaveUp counts
	// controlled retry-budget exhaustions (not failures).
	Commits uint64
	Aborts  uint64
	GaveUp  uint64
	// Degraded (hybrid): commits that ran HTM sections under the
	// fallback lock after graceful degradation.
	Degraded uint64
	// Kills/Stalls (model): scheduler-level injections.
	Kills  int
	Stalls int
	// Halted (model): the scheduler detected livelock or deadlock and
	// halted the run — a controlled outcome, certified like any other.
	Halted bool
	// Err is a certification, invariant, serializability, or leak
	// violation — nil means the run recovered from every fault cleanly.
	Err error
}

// RunChaosOne runs one certified chaos run. Every path asserts full
// recovery: substrate runs certify each commit on the shadow machine
// and pass FinalCheck; the model run passes machine invariants, the
// commit-order serializability check, and the Env leak check.
func RunChaosOne(target string, seed int64, p ChaosParams) ChaosOutcome {
	p = p.WithDefaults()
	plan := ChaosPlanFor(target, seed, p.Rate)
	inj := plan.Injector()
	out := ChaosOutcome{Target: target, Seed: seed, Plan: plan.String()}

	switch target {
	case "tl2", "pess", "htmsim", "dep":
		out.Err = runChaosWords(target, seed, p, inj, &out)
	case "boost":
		out.Err = runChaosBoost(seed, p, inj, &out)
	case "hybrid":
		out.Err = runChaosHybrid(seed, p, inj, &out)
	case "model":
		out.Err = runChaosModel(seed, p, inj, &out)
	case "shard":
		// The sharded engine derives per-shard injectors and its own
		// coordinator injector from the plan; it fills out.Plan and
		// out.Faults itself.
		out.Err = runChaosShard(seed, p, &out, false)
		return out
	case "shardseq":
		// Same sweep, same murder window, but cross-shard commits run
		// through the deterministic sequencer's batch path.
		out.Err = runChaosShard(seed, p, &out, true)
		return out
	case "failover":
		// Replicated primary death and certified promotion; derives its
		// own plan (crash + link faults) and fills out.Plan itself.
		out.Err = runChaosFailover(seed, p, &out)
		return out
	default:
		out.Err = fmt.Errorf("bench: unknown chaos target %q", target)
	}
	out.Faults = inj.Stats()
	return out
}

// spawnWorkers runs the transaction closure across p.Threads
// goroutines, counting retry-budget exhaustions as give-ups and
// returning the first unexpected error.
func spawnWorkers(p ChaosParams, gaveUp *atomic.Uint64, txn func(g, i int, rng *rand.Rand) error) error {
	var wg sync.WaitGroup
	errCh := make(chan error, p.Threads)
	for g := 0; g < p.Threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for i := 0; i < p.OpsEach; i++ {
				err := txn(g, i, rng)
				if err == nil {
					continue
				}
				if errors.Is(err, chaos.ErrRetriesExhausted) {
					gaveUp.Add(1)
					continue
				}
				errCh <- err
				return
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// attachWAL wires the write-ahead hook into a recorder when the params
// carry a log, returning the hook for the post-run I/O-error check.
func attachWAL(rec *trace.Recorder, p ChaosParams) *wal.MachineHook {
	if p.WAL == nil {
		return nil
	}
	hook := wal.NewMachineHook(p.WAL)
	rec.AttachWAL(hook)
	return hook
}

// durableOf avoids the typed-nil interface trap when no WAL is set.
func durableOf(p ChaosParams) core.Durable {
	if p.WAL == nil {
		return nil
	}
	return p.WAL
}

// walErr surfaces a real (non-crash) WAL I/O failure after a run.
func walErr(hook *wal.MachineHook) error {
	if hook == nil {
		return nil
	}
	return hook.Err()
}

func registerReg() (*spec.Registry, *trace.Recorder) {
	reg := spec.NewRegistry()
	reg.Register("mem", adt.Register{})
	return reg, trace.NewRecorder(reg)
}

// wireObs attaches the observability suite to one run's seams: the
// certifying recorder (site-labelled rule stream), the fault injector
// (injections by site), and the retry policy (depth/exhaustion). Nil
// suite means zero wiring — the uninstrumented paths are untouched.
func wireObs(p ChaosParams, rec *trace.Recorder, site string, inj *chaos.Faults, retry *chaos.RetryPolicy) {
	if p.Obs == nil {
		return
	}
	if rec != nil {
		rec.SetSite(site)
		rec.AttachSink(p.Obs)
	}
	if inj != nil {
		inj.SetObserver(func(s chaos.Site) { p.Obs.Metrics.FaultFired(string(s)) })
	}
	if retry != nil {
		retry.OnRetry = p.Obs.Metrics.RetryObserved
	}
}

// schedObserver avoids the typed-nil interface trap when no suite is
// attached.
func schedObserver(p ChaosParams) sched.Observer {
	if p.Obs == nil {
		return nil
	}
	return p.Obs.Metrics
}

// runChaosWords drives the word substrates (tl2/pess/htmsim/dep) with
// the shared read-modify-write workload under injection, certified.
func runChaosWords(target string, seed int64, p ChaosParams, inj *chaos.Faults, out *ChaosOutcome) error {
	_, rec := registerReg()
	hook := attachWAL(rec, p)
	retry := chaos.Default(seed)
	wireObs(p, rec, target, inj, retry)
	var gaveUp atomic.Uint64

	var atomicRMW func(addr int, readOnly bool, yield int) error
	var stats func() (commits, aborts uint64)

	switch target {
	case "tl2":
		m := tl2.New(p.Keys)
		m.Recorder, m.Injector, m.Retry = rec, inj, retry
		m.Durable = durableOf(p)
		atomicRMW = func(addr int, readOnly bool, yield int) error {
			return m.AtomicNamed("t", func(tx *tl2.Tx) error {
				v, err := tx.Read(addr)
				if err != nil || readOnly {
					return err
				}
				yieldN(yield)
				return tx.Write(addr, v+1)
			})
		}
		stats = func() (uint64, uint64) { s := m.Stats(); return s.Commits, s.Aborts }
	case "pess":
		m := pess.New(p.Keys)
		m.Recorder, m.Injector, m.Retry = rec, inj, retry
		m.Durable = durableOf(p)
		atomicRMW = func(addr int, readOnly bool, yield int) error {
			return m.AtomicNamed("t", func(tx *pess.Tx) error {
				v, err := tx.Read(addr)
				if err != nil || readOnly {
					return err
				}
				yieldN(yield)
				return tx.Write(addr, v+1)
			})
		}
		stats = func() (uint64, uint64) { s := m.Stats(); return s.Commits, s.Aborts }
	case "htmsim":
		h := htmsim.New(p.Keys)
		h.Recorder, h.Injector, h.Retry = rec, inj, retry
		h.Durable = durableOf(p)
		atomicRMW = func(addr int, readOnly bool, yield int) error {
			return h.Atomic("t", func(tx *htmsim.Tx) error {
				v, err := tx.Read(addr)
				if err != nil || readOnly {
					return err
				}
				yieldN(yield)
				return tx.Write(addr, v+1)
			})
		}
		stats = func() (uint64, uint64) {
			s := h.Stats()
			return s.Commits, s.ConflictAborts + s.CapacityAborts
		}
	case "dep":
		m := dep.New(p.Keys)
		m.Recorder, m.Injector, m.Retry = rec, inj, retry
		m.Durable = durableOf(p)
		atomicRMW = func(addr int, readOnly bool, yield int) error {
			return m.Atomic("t", func(tx *dep.Tx) error {
				v, err := tx.Read(addr)
				if err != nil || readOnly {
					return err
				}
				yieldN(yield)
				return tx.Write(addr, v+1)
			})
		}
		stats = func() (uint64, uint64) { s := m.Stats(); return s.Commits, s.Aborts }
	}

	err := spawnWorkers(p, &gaveUp, func(g, i int, rng *rand.Rand) error {
		return atomicRMW(rng.Intn(p.Keys), rng.Intn(100) < 30, 2)
	})
	out.Commits, out.Aborts = stats()
	out.GaveUp = gaveUp.Load()
	if err != nil {
		return err
	}
	if err := walErr(hook); err != nil {
		return err
	}
	return rec.FinalCheck()
}

// runChaosBoost drives the boosting substrate under lock-timeout
// injection, certified.
func runChaosBoost(seed int64, p ChaosParams, inj *chaos.Faults, out *ChaosOutcome) error {
	reg := spec.NewRegistry()
	reg.Register("ht", adt.Map{})
	rt := boost.NewRuntime()
	rt.Recorder = trace.NewRecorder(reg)
	hook := attachWAL(rt.Recorder, p)
	rt.Injector, rt.Retry = inj, chaos.Default(seed)
	wireObs(p, rt.Recorder, "boost", inj, rt.Retry)
	rt.Durable = durableOf(p)
	ht := boost.NewMap(rt, "ht", seed)
	var gaveUp atomic.Uint64

	err := spawnWorkers(p, &gaveUp, func(g, i int, rng *rand.Rand) error {
		key := int64(rng.Intn(p.Keys))
		readOnly := rng.Intn(100) < 30
		return rt.Atomic("b", func(tx *boost.Txn) error {
			v, present, err := tx2val(ht.Get(tx, key))
			if err != nil || readOnly {
				return err
			}
			if !present {
				v = 0
			}
			yieldN(2)
			_, _, err = ht.Put(tx, key, v+1)
			return err
		})
	})
	s := rt.Stats()
	out.Commits, out.Aborts, out.GaveUp = s.Commits, s.Aborts, gaveUp.Load()
	if err != nil {
		return err
	}
	if err := walErr(hook); err != nil {
		return err
	}
	return rt.Recorder.FinalCheck()
}

// runChaosHybrid drives the Section 7 hybrid under capacity/conflict
// injection: the run must stay certified across graceful degradation to
// boosting-plus-lock.
func runChaosHybrid(seed int64, p ChaosParams, inj *chaos.Faults, out *ChaosOutcome) error {
	reg := spec.NewRegistry()
	reg.Register("skiplist", adt.Set{})
	reg.Register("hashT", adt.Map{})
	reg.Register("htm", adt.Register{})
	b := boost.NewRuntime()
	b.Recorder = trace.NewRecorder(reg)
	hook := attachWAL(b.Recorder, p)
	b.Injector, b.Retry = inj, chaos.Default(seed)
	wireObs(p, b.Recorder, "hybrid", inj, b.Retry)
	b.Durable = durableOf(p)
	h := htmsim.New(16)
	h.Name = "htm"
	h.Injector = inj
	rt := hybrid.New(b, h)
	rt.DegradeAfter = 8
	rt.Durable = durableOf(p)
	sl := boost.NewSet(b, "skiplist", seed)
	ht := boost.NewMap(b, "hashT", seed+1)
	var gaveUp atomic.Uint64

	err := spawnWorkers(p, &gaveUp, func(g, i int, rng *rand.Rand) error {
		// Bounded key range: shadow-machine certification clones ADT
		// state per op, so unbounded unique keys would go quadratic.
		foo := int64(rng.Intn(p.Keys * 4))
		branchX := rng.Intn(2) == 0
		return rt.Atomic(fmt.Sprintf("s7-%d", foo), func(tx *hybrid.Tx) error {
			if _, err := sl.Add(tx.Boosted(), foo); err != nil {
				return err
			}
			tx.HTMSection(func(htx *htmsim.Tx) error { // size++
				v, err := htx.Read(0)
				if err != nil {
					return err
				}
				return htx.Write(0, v+1)
			})
			if _, _, err := ht.Put(tx.Boosted(), foo, foo*10); err != nil {
				return err
			}
			tx.HTMSection(func(htx *htmsim.Tx) error { // x++ or y++
				addr := 2
				if branchX {
					addr = 1
				}
				v, err := htx.Read(addr)
				if err != nil {
					return err
				}
				return htx.Write(addr, v+1)
			})
			return nil
		})
	})
	s := rt.Stats()
	out.Commits, out.Aborts, out.Degraded = s.Commits, s.Boost.Aborts, s.Degraded
	out.GaveUp = gaveUp.Load()
	if err != nil {
		return err
	}
	if err := walErr(hook); err != nil {
		return err
	}
	if err := b.Recorder.FinalCheck(); err != nil {
		return err
	}
	// Conservation across degradation: size must equal the committed
	// transaction count (each commit increments word 0 exactly once).
	want := int64(s.Commits)
	if got := h.ReadNoTx(0); got != want {
		return fmt.Errorf("hybrid: size=%d after %d commits (lost updates)", got, want)
	}
	return nil
}

// runChaosModel drives mixed strategy drivers on the cooperative
// machine under the chaos scheduler (stalls + forced thread death),
// then checks machine invariants, serializability, and lock/token
// leaks.
func runChaosModel(seed int64, p ChaosParams, inj *chaos.Faults, out *ChaosOutcome) error {
	reg := Registry()
	m := core.NewMachine(reg, core.Options{Mode: spec.MoverHybrid, EnforceGray: true})
	var hook *wal.MachineHook
	if p.WAL != nil {
		hook = wal.NewMachineHook(p.WAL)
		m.SetLogHook(hook)
	}
	env := strategy.NewEnv()
	rng := rand.New(rand.NewSource(seed))
	cfg := strategy.Config{Retry: chaos.Default(seed)}
	if p.Obs != nil {
		m.SetSite("model")
		m.AddEventSink(p.Obs)
		cfg.Retry.OnRetry = p.Obs.Metrics.RetryObserved
		inj.SetObserver(func(s chaos.Site) { p.Obs.Metrics.FaultFired(string(s)) })
	}
	kinds := []string{"boosting", "optimistic", "dependent", "matveev"}

	var drivers []strategy.Driver
	for i := 0; i < p.Threads; i++ {
		kind := kinds[i%len(kinds)]
		th := m.Spawn(fmt.Sprintf("%s%d", kind, i))
		var txns []lang.Txn
		for j := 0; j < 4; j++ {
			txns = append(txns, genTxn(rng, fmt.Sprintf("t%d_%d", i, j),
				ModelParams{Keys: p.Keys, ReadPct: 30, OpsPerTxn: 3}))
		}
		d, err := NewDriver(kind, th, txns, cfg, env)
		if err != nil {
			return err
		}
		drivers = append(drivers, d)
	}

	res, err := sched.RunChaosObserved(m, drivers, seed, 400_000, inj, durableOf(p), schedObserver(p))
	out.Kills, out.Stalls = res.Kills, res.Stalls
	for _, d := range drivers {
		st := d.Stats()
		out.Commits += uint64(st.Commits)
		out.Aborts += uint64(st.Aborts)
		out.GaveUp += uint64(st.GaveUp)
	}
	// Livelock/deadlock under heavy injection is a controlled halt, not a
	// recovery failure (RunChaos has already released everything): note it
	// and certify the survivors like any other run. Any other error is a
	// genuine violation.
	if err != nil {
		if !errors.Is(err, sched.ErrLivelock) && !errors.Is(err, sched.ErrDeadlock) {
			return err
		}
		out.Halted = true
	}
	if err := walErr(hook); err != nil {
		return err
	}
	if err := m.Verify(); err != nil {
		return fmt.Errorf("machine invariants: %w", err)
	}
	if rep := serial.CheckCommitOrder(m); !rep.Serializable {
		return fmt.Errorf("not serializable: %s", rep.Reason)
	}
	if err := env.LeakCheck(); err != nil {
		return err
	}
	return nil
}

// ChaosCampaign sweeps Seeds plan seeds over every target, certifying
// each run, and renders the fault/recovery report. The returned error
// is non-nil if ANY run had a violation; the report always includes the
// failing plans (the reproduction recipes).
func ChaosCampaign(p ChaosParams) (string, []ChaosOutcome, error) {
	p = p.WithDefaults()
	var outcomes []ChaosOutcome
	type agg struct {
		runs, failed            int
		injected                uint64
		commits, aborts, gaveUp uint64
		degraded                uint64
		kills, stalls, halted   int
		firstFail               string
	}
	aggs := make(map[string]*agg)
	var firstErr error

	for _, target := range p.Targets {
		a := &agg{}
		aggs[target] = a
		for s := 0; s < p.Seeds; s++ {
			o := RunChaosOne(target, p.BaseSeed+int64(s), p)
			outcomes = append(outcomes, o)
			a.runs++
			a.injected += o.Faults.TotalInjected()
			a.commits += o.Commits
			a.aborts += o.Aborts
			a.gaveUp += o.GaveUp
			a.degraded += o.Degraded
			a.kills += o.Kills
			a.stalls += o.Stalls
			if o.Halted {
				a.halted++
			}
			if o.Err != nil {
				a.failed++
				if a.firstFail == "" {
					a.firstFail = fmt.Sprintf("%s: %v", o.Plan, o.Err)
				}
				if firstErr == nil {
					firstErr = fmt.Errorf("chaos: %s seed %d: %w (replay: %s)", target, o.Seed, o.Err, o.Plan)
				}
			}
		}
	}

	var rows []Row
	for _, target := range p.Targets {
		a := aggs[target]
		notes := ""
		if a.degraded > 0 {
			notes = fmt.Sprintf("degraded=%d", a.degraded)
		}
		if a.kills > 0 || a.stalls > 0 {
			if notes != "" {
				notes += " "
			}
			notes += fmt.Sprintf("kills=%d stalls=%d", a.kills, a.stalls)
		}
		if a.halted > 0 {
			if notes != "" {
				notes += " "
			}
			notes += fmt.Sprintf("halted=%d", a.halted)
		}
		abortRatio := 0.0
		if a.commits > 0 {
			abortRatio = float64(a.aborts) / float64(a.commits)
		}
		rows = append(rows, Row{
			target, fmt.Sprintf("%d", a.runs), fmt.Sprintf("%d", a.injected),
			fmt.Sprintf("%d", a.commits), fmt.Sprintf("%d", a.aborts),
			fmt.Sprintf("%.3f", abortRatio), fmt.Sprintf("%d", a.gaveUp),
			fmt.Sprintf("%d", a.failed), notes,
		})
	}
	report := Table(Row{"target", "seeds", "faults", "commits", "aborts", "aborts/commit", "gaveup", "violations", "notes"}, rows)
	for _, target := range p.Targets {
		if f := aggs[target].firstFail; f != "" {
			report += fmt.Sprintf("\nFAIL %s %s\n", target, f)
		}
	}
	return report, outcomes, firstErr
}
