package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pushpull/internal/repl"
	"pushpull/internal/shard"
)

// The replication bench: a durable sharded primary under write load,
// N followers catching up over the asynchronous pull path, reader
// goroutines hammering the followers' committed read images. Measures
// follower-read throughput and replication lag (records behind the
// primary's durable promise), then certifies everything: each follower
// converges to the primary's exact KV state and passes the full
// recovery certificate.

// ReplBenchParams configures RunReplBench. Zero values get defaults.
type ReplBenchParams struct {
	Shards   int           // partitions on the primary (default 4)
	Keys     int           // keys per shard (default 64)
	Replicas int           // pull-path followers (default 2)
	Writers  int           // primary write goroutines (default 4)
	Readers  int           // follower read goroutines, round-robin (default 4)
	Duration time.Duration // load window (default 2s)
	Seed     int64
}

func (p ReplBenchParams) withDefaults() ReplBenchParams {
	if p.Shards <= 0 {
		p.Shards = 4
	}
	if p.Keys <= 0 {
		p.Keys = 64
	}
	if p.Replicas <= 0 {
		p.Replicas = 2
	}
	if p.Writers <= 0 {
		p.Writers = 4
	}
	if p.Readers <= 0 {
		p.Readers = 4
	}
	if p.Duration <= 0 {
		p.Duration = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// ReplBenchResult is one certified replication bench run.
type ReplBenchResult struct {
	Params   ReplBenchParams
	Duration time.Duration
	// Primary-side committed writes during the load window.
	Commits uint64
	// Follower-side reads served from committed prefixes.
	Reads uint64
	// MaxLag is the worst per-stream record lag any follower observed
	// during the window; LagAtStop is the worst follower's summed lag
	// at the instant the write load stopped. After quiescence the lag
	// must drain to zero — asserted, not reported.
	MaxLag    uint64
	LagAtStop uint64
	// Syncs counts pull rounds across all followers.
	Syncs uint64
}

// WriteTps returns primary commits per second.
func (r ReplBenchResult) WriteTps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Commits) / r.Duration.Seconds()
}

// ReadTps returns follower reads per second.
func (r ReplBenchResult) ReadTps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Reads) / r.Duration.Seconds()
}

// RunReplBench runs the replication bench and certifies the result.
func RunReplBench(p ReplBenchParams) (ReplBenchResult, error) {
	p = p.withDefaults()
	res := ReplBenchResult{Params: p}
	keys := p.Keys * p.Shards

	eng, err := shard.New(shard.Options{
		Shards: p.Shards, Substrate: "tl2", Keys: keys, Seed: p.Seed,
		Durable: true, Epoch: 1,
	})
	if err != nil {
		return res, err
	}
	src := repl.EngineSource(eng)
	cfg := repl.Config{Substrate: "tl2", Shards: p.Shards, Keys: keys}

	type follower struct {
		rep    *repl.Replica
		puller *repl.Puller
	}
	followers := make([]follower, p.Replicas)
	for i := range followers {
		rep := repl.NewReplica(cfg)
		followers[i] = follower{rep: rep, puller: repl.NewPuller(rep, 0)}
	}

	var (
		commits, reads, syncs atomic.Uint64
		maxLag                atomic.Uint64
		stopWrite, stopRead   = make(chan struct{}), make(chan struct{})
		wg, rg, pg            sync.WaitGroup
		writeErr              atomic.Value
	)
	// Writers: mixed single-shard and cross-shard puts.
	for w := 0; w < p.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.Seed + int64(w)*101))
			for i := 0; ; i++ {
				select {
				case <-stopWrite:
					return
				default:
				}
				var ops []shard.Op
				v := int64(i + 1)
				if i%4 == 0 {
					ops = []shard.Op{
						{Kind: shard.OpPut, Key: uint64(rng.Intn(keys)), Val: v},
						{Kind: shard.OpPut, Key: uint64(rng.Intn(keys)), Val: v},
					}
				} else {
					ops = []shard.Op{{Kind: shard.OpPut, Key: uint64(rng.Intn(keys)), Val: v}}
				}
				if _, _, err := eng.Do(ops); err != nil {
					writeErr.Store(err)
					return
				}
				commits.Add(1)
			}
		}(w)
	}
	// Pull loops: one per follower, continuously draining the primary.
	for i := range followers {
		pg.Add(1)
		go func(f follower) {
			defer pg.Done()
			for {
				select {
				case <-stopWrite:
					return
				default:
				}
				if _, err := f.puller.Sync(src); err != nil {
					writeErr.Store(err)
					return
				}
				syncs.Add(1)
				for _, lag := range f.puller.Lag() {
					for {
						cur := maxLag.Load()
						if lag <= cur || maxLag.CompareAndSwap(cur, lag) {
							break
						}
					}
				}
			}
		}(followers[i])
	}
	// Readers: round-robin over followers' committed read images.
	for r := 0; r < p.Readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			rng := rand.New(rand.NewSource(p.Seed + 7919 + int64(r)*211))
			rep := followers[r%len(followers)].rep
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				rep.Get(uint64(rng.Intn(keys)))
				reads.Add(1)
			}
		}(r)
	}

	t0 := time.Now()
	time.Sleep(p.Duration)
	close(stopWrite)
	wg.Wait()
	pg.Wait()
	res.Duration = time.Since(t0)
	close(stopRead)
	rg.Wait()
	if err, _ := writeErr.Load().(error); err != nil {
		return res, err
	}
	res.Commits = commits.Load()
	res.Reads = reads.Load()
	res.MaxLag = maxLag.Load()
	for _, f := range followers {
		var lag uint64
		for _, l := range f.puller.Lag() {
			lag += l
		}
		if lag > res.LagAtStop {
			res.LagAtStop = lag
		}
	}

	// Quiesce: every follower drains to zero lag, then certifies and
	// must hold the primary's exact KV image.
	for i := range followers {
		f := followers[i]
		for attempt := 0; ; attempt++ {
			if _, err := f.puller.Sync(src); err != nil {
				return res, fmt.Errorf("follower %d drain: %w", i, err)
			}
			syncs.Add(1)
			var lag uint64
			for _, l := range f.puller.Lag() {
				lag += l
			}
			if lag == 0 {
				break
			}
			if attempt > 1000 {
				return res, fmt.Errorf("follower %d never drained: lag %d", i, lag)
			}
		}
		if _, err := f.rep.Certify(); err != nil {
			return res, fmt.Errorf("follower %d certification: %w", i, err)
		}
		for k := uint64(0); k < uint64(keys); k++ {
			want, _ := eng.ReadKey(k)
			if got, _ := f.rep.Get(k); got != want {
				return res, fmt.Errorf("follower %d key %d: got %d, primary has %d", i, k, got, want)
			}
		}
	}
	res.Syncs = syncs.Load()
	if err := eng.FinalCheck(); err != nil {
		return res, err
	}
	return res, eng.Close()
}
