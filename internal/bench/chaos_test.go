package bench

import (
	"strings"
	"testing"
)

// TestChaosSmoke is the CI chaos tier: a small seed sweep over every
// target with faults enabled, each run certified. The full ≥50-seed
// campaign runs through cmd/pushpull-chaos.
func TestChaosSmoke(t *testing.T) {
	p := ChaosParams{Seeds: 3, BaseSeed: 1, Threads: 3, OpsEach: 12, Keys: 8, Rate: 0.1}
	report, outcomes, err := ChaosCampaign(p)
	if err != nil {
		t.Fatalf("%v\n%s", err, report)
	}
	injected := uint64(0)
	for _, o := range outcomes {
		if o.Err != nil {
			t.Errorf("%s seed %d: %v (replay: %s)", o.Target, o.Seed, o.Err, o.Plan)
		}
		injected += o.Faults.TotalInjected()
	}
	if injected == 0 {
		t.Fatal("smoke campaign injected no faults; raise the rate")
	}
	for _, target := range ChaosTargets() {
		if !strings.Contains(report, target) {
			t.Fatalf("report missing target %s:\n%s", target, report)
		}
	}
	t.Logf("\n%s", report)
}

// TestChaosOutcomeReproducible: rerunning one target from its printed
// plan seed reproduces the same plan (the injection decision sequence).
// Goroutine targets revisit sites a timing-dependent number of times
// (retries), so their fault tallies may differ run to run; the
// cooperative model target is fully deterministic and must reproduce
// its exact fault and commit counts.
func TestChaosOutcomeReproducible(t *testing.T) {
	p := ChaosParams{Threads: 2, OpsEach: 20, Keys: 8, Rate: 0.1}
	for _, target := range []string{"tl2", "hybrid", "model"} {
		a := RunChaosOne(target, 5, p)
		b := RunChaosOne(target, 5, p)
		if a.Err != nil || b.Err != nil {
			t.Fatalf("%s: %v / %v", target, a.Err, b.Err)
		}
		if a.Plan != b.Plan {
			t.Fatalf("%s: plans diverged: %s vs %s", target, a.Plan, b.Plan)
		}
	}
	a := RunChaosOne("model", 5, p)
	b := RunChaosOne("model", 5, p)
	if a.Faults.TotalInjected() != b.Faults.TotalInjected() || a.Commits != b.Commits ||
		a.Kills != b.Kills || a.Stalls != b.Stalls {
		t.Fatalf("model runs diverged: %+v vs %+v", a, b)
	}
}

// TestChaosDepRollbackShadowOrder pins the campaign plan (the full
// campaign's exact parameters, seed 17) that exposed a
// rollback-ordering race in the dependent-transactions substrate:
// marking a transaction aborted before rewinding its shadow session let
// a concurrent writer treat its visible reads as dead and eagerly PUSH
// a shadow write over a still-uncommitted shadow read — a false PUSH
// criterion (ii) violation. Rollback must publish the aborted state
// only after the shadow rewind.
func TestChaosDepRollbackShadowOrder(t *testing.T) {
	p := ChaosParams{Threads: 4, OpsEach: 40, Keys: 16, Rate: 0.08}
	o := RunChaosOne("dep", 17, p)
	if o.Err != nil {
		t.Errorf("seed 17: %v (replay: %s)", o.Err, o.Plan)
	}
}

// TestChaosHybridDegrades: the hybrid target's capacity injections push
// the runtime into degraded mode within the campaign workload, and the
// degraded commits stay certified (RunChaosOne errors otherwise).
func TestChaosHybridDegrades(t *testing.T) {
	p := ChaosParams{Threads: 4, OpsEach: 40, Keys: 8, Rate: 0.2}
	degraded := uint64(0)
	for seed := int64(1); seed <= 5; seed++ {
		o := RunChaosOne("hybrid", seed, p)
		if o.Err != nil {
			t.Fatalf("seed %d: %v (replay: %s)", seed, o.Err, o.Plan)
		}
		degraded += o.Degraded
	}
	if degraded == 0 {
		t.Fatal("no hybrid run degraded under capacity injection")
	}
}
