package bench_test

import (
	"strings"
	"testing"

	"pushpull/internal/bench"
)

func TestRunModelAllStrategies(t *testing.T) {
	for _, s := range append(bench.StrategyNames(), "irrevocable-mix") {
		res, err := bench.RunModel(bench.ModelParams{
			Strategy: s, Threads: 3, TxnsEach: 3, Keys: 4, ReadPct: 30, Seed: 11,
		})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !res.Serializable {
			t.Fatalf("%s: run not serializable", s)
		}
		if res.Commits+res.GaveUp != 9 {
			t.Fatalf("%s: commits=%d gaveup=%d", s, res.Commits, res.GaveUp)
		}
	}
}

func TestSweepModelShapes(t *testing.T) {
	table, results, err := bench.SweepModel(3, 4, []int{2, 16}, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "optimistic") || !strings.Contains(table, "boosting") {
		t.Fatalf("table missing strategies:\n%s", table)
	}
	for _, r := range results {
		if !r.Serializable {
			t.Fatalf("unserializable cell: %+v", r)
		}
	}
	t.Logf("\n%s", table)
}

func TestRunSubstrateAll(t *testing.T) {
	for _, s := range bench.SubstrateNames() {
		res, err := bench.RunSubstrate(bench.SubstrateParams{
			Substrate: s, Threads: 4, OpsEach: 200, Keys: 8, ReadPct: 30, Seed: 5,
		})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.Commits < uint64(4*200) {
			t.Fatalf("%s: only %d commits, want >= %d", s, res.Commits, 4*200)
		}
	}
}

// TestContentionShape asserts the paper-adjacent qualitative claim the
// benchmarks exist to reproduce: under hot-key contention the
// optimistic word STM aborts much more than lock-based boosting, and
// under low contention everyone's abort ratio collapses.
func TestContentionShape(t *testing.T) {
	hotTL2, err := bench.RunSubstrate(bench.SubstrateParams{
		Substrate: "tl2", Threads: 8, OpsEach: 400, Keys: 2, ReadPct: 0, Seed: 3, Yield: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	coldTL2, err := bench.RunSubstrate(bench.SubstrateParams{
		Substrate: "tl2", Threads: 8, OpsEach: 400, Keys: 4096, ReadPct: 0, Seed: 3, Yield: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hotTL2.AbortRatio() <= coldTL2.AbortRatio() {
		t.Fatalf("TL2 abort ratio must grow with contention: hot=%.3f cold=%.3f",
			hotTL2.AbortRatio(), coldTL2.AbortRatio())
	}
	hotBoost, err := bench.RunSubstrate(bench.SubstrateParams{
		Substrate: "boost", Threads: 8, OpsEach: 400, Keys: 2, ReadPct: 0, Seed: 3, Yield: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hotBoost.AbortRatio() >= hotTL2.AbortRatio() {
		t.Fatalf("boosting must abort less than TL2 under hot keys: boost=%.3f tl2=%.3f",
			hotBoost.AbortRatio(), hotTL2.AbortRatio())
	}
}

func TestHTMCapacitySweep(t *testing.T) {
	table, err := bench.HTMCapacitySweep(8, []int{2, 8, 16}, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 5 { // header + rule + 3 rows
		t.Fatalf("table:\n%s", table)
	}
	// Footprint 2 and 8 fit (capacity 8 counts distinct words); 16 must
	// fall back every time.
	if !strings.HasSuffix(strings.TrimSpace(lines[2]), "0.00") {
		t.Fatalf("footprint 2 should never fall back:\n%s", table)
	}
	if !strings.HasSuffix(strings.TrimSpace(lines[4]), "1.00") {
		t.Fatalf("footprint 16 should always fall back:\n%s", table)
	}
	t.Logf("\n%s", table)
}

func TestTableFormat(t *testing.T) {
	out := bench.Table(bench.Row{"a", "bb"}, []bench.Row{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "333") {
		t.Fatalf("table:\n%s", out)
	}
}
