package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pushpull/internal/chaos"
	"pushpull/internal/shard"
	"pushpull/internal/wal"
)

// The sequencer bench: the same cross-shard-heavy workload driven
// through both commit paths — the mutex coordinator (which holds
// commitMu across the forced decision record AND every branch CMT) and
// the deterministic sequencer (one forced batch record per epoch,
// per-shard GSN-ordered release) — on otherwise identical engines with
// real on-disk WALs under SyncOnCommit, so the per-transaction fsync
// the sequencer amortizes is a real fsync. Both sides must pass the
// full certificate at shutdown (leak check, per-shard shadow machines,
// merged cross-shard commit order); an uncertified side's throughput
// is meaningless and the run fails instead.

// SeqBenchParams configures one side-by-side run.
type SeqBenchParams struct {
	Shards   int
	Keys     int
	Clients  int
	CrossPct int     // percent of transactions spanning two shards
	Skew     float64 // zipf exponent over the key space (>1)
	Seed     int64
	Duration time.Duration // total wall-clock per side, split across rounds
	// Rounds interleaves the two sides (mutex, seq, mutex, seq, ...)
	// in Duration/Rounds segments and aggregates each side across its
	// rounds, so slow environmental drift (disk latency, noisy
	// neighbours) is charged to both paths instead of whichever side
	// happened to run second.
	Rounds int
	// BatchInterval is the sequencer side's accumulation window
	// (0 = adaptive group commit).
	BatchInterval time.Duration
}

func (p SeqBenchParams) WithDefaults() SeqBenchParams {
	if p.Shards <= 0 {
		p.Shards = 4
	}
	if p.Keys <= 0 {
		p.Keys = 256
	}
	if p.Clients <= 0 {
		p.Clients = 32
	}
	if p.Keys < 2*p.Clients {
		p.Keys = 2 * p.Clients // every client needs a non-degenerate slice
	}
	if p.CrossPct <= 0 {
		p.CrossPct = 50
	}
	if p.Skew <= 1 {
		p.Skew = 1.2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Duration <= 0 {
		p.Duration = 2 * time.Second
	}
	if p.Rounds <= 0 {
		p.Rounds = 4
	}
	return p
}

// SeqSideResult is one commit path's certified measurement.
type SeqSideResult struct {
	Mode         string   `json:"mode"` // "mutex" | "seq"
	DurationMs   float64  `json:"duration_ms"`
	Commits      uint64   `json:"commits"` // client-observed committed txns
	Aborts       uint64   `json:"aborts"`  // client-observed aborts (incl. give-ups)
	CrossCommits uint64   `json:"cross_commits"`
	CrossAborts  uint64   `json:"cross_aborts"`
	SeqEpochs    uint64   `json:"seq_epochs,omitempty"`
	SeqBatched   uint64   `json:"seq_batched,omitempty"`
	SeqMaxBatch  int      `json:"seq_max_batch,omitempty"`
	Certified    bool     `json:"certified"`
	Perf         PerfJSON `json:"perf"`
}

// SeqBenchResult is the side-by-side comparison.
type SeqBenchResult struct {
	Params  SeqBenchParams
	Mutex   SeqSideResult
	Seq     SeqSideResult
	Speedup float64 // seq txn/s over mutex txn/s
}

// RunSeqBench runs the workload through both commit paths in
// interleaved rounds and reports both certified aggregate throughputs.
func RunSeqBench(p SeqBenchParams) (SeqBenchResult, error) {
	p = p.WithDefaults()
	out := SeqBenchResult{Params: p}
	out.Mutex.Mode, out.Seq.Mode = "mutex", "seq"
	out.Mutex.Certified, out.Seq.Certified = true, true
	per := p.Duration / time.Duration(p.Rounds)
	for r := 0; r < p.Rounds; r++ {
		rp := p
		rp.Duration = per
		rp.Seed = p.Seed + int64(r)*1_000_003
		for _, seqMode := range []bool{false, true} {
			side, err := runSeqSide(rp, seqMode)
			if err != nil {
				return out, fmt.Errorf("%s side round %d: %w", side.Mode, r, err)
			}
			acc := &out.Mutex
			if seqMode {
				acc = &out.Seq
			}
			acc.accumulate(side)
		}
	}
	out.Mutex.finalize()
	out.Seq.finalize()
	if out.Mutex.Perf.TxnPerSec > 0 {
		out.Speedup = out.Seq.Perf.TxnPerSec / out.Mutex.Perf.TxnPerSec
	}
	return out, nil
}

// accumulate folds one round's measurement into the side aggregate.
func (r *SeqSideResult) accumulate(round SeqSideResult) {
	r.DurationMs += round.DurationMs
	r.Commits += round.Commits
	r.Aborts += round.Aborts
	r.CrossCommits += round.CrossCommits
	r.CrossAborts += round.CrossAborts
	r.SeqEpochs += round.SeqEpochs
	r.SeqBatched += round.SeqBatched
	if round.SeqMaxBatch > r.SeqMaxBatch {
		r.SeqMaxBatch = round.SeqMaxBatch
	}
	r.Certified = r.Certified && round.Certified
}

// finalize computes the aggregate throughput over all rounds.
func (r *SeqSideResult) finalize() {
	if r.DurationMs > 0 {
		r.Perf = PerfJSON{TxnPerSec: float64(r.Commits) / (r.DurationMs / 1000)}
	}
}

func runSeqSide(p SeqBenchParams, seqMode bool) (SeqSideResult, error) {
	mode := "mutex"
	if seqMode {
		mode = "seq"
	}
	res := SeqSideResult{Mode: mode}
	dir, err := os.MkdirTemp("", "pushpull-seqbench-"+mode+"-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	eng, err := shard.New(shard.Options{
		Shards: p.Shards, Substrate: "tl2",
		Keys: p.Keys, Seed: p.Seed,
		WALDir: dir, SyncPolicy: wal.SyncOnCommit,
		Retry: chaos.Default(p.Seed),
		Seq:   seqMode, BatchInterval: p.BatchInterval,
	})
	if err != nil {
		return res, err
	}

	var commits, aborts atomic.Uint64
	var wg sync.WaitGroup
	errCh := make(chan error, p.Clients)
	start := time.Now()
	deadline := start.Add(p.Duration)
	for g := 0; g < p.Clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.Seed + int64(g)*7919))
			// Each client owns the disjoint slice {k : k % Clients == g},
			// zipf-skewed within it (the failover sweep's ownKey pattern):
			// the bench measures the commit paths, so substrate-level
			// write-write conflict retries — identical on both sides —
			// are designed out rather than letting their latency drown
			// the contrast. The slice is pre-bucketed by home shard so a
			// cross transaction can write one key on every shard it
			// covers — the widest (and fairest) coordinator stress.
			zipf := rand.NewZipf(rng, p.Skew, 1, uint64(p.Keys/p.Clients-1))
			ownKey := func() uint64 { return zipf.Uint64()*uint64(p.Clients) + uint64(g) }
			byShard := make([][]uint64, p.Shards)
			for d := 0; d < p.Keys/p.Clients; d++ {
				k := uint64(d*p.Clients + g)
				sid := eng.ShardOf(k)
				byShard[sid] = append(byShard[sid], k)
			}
			for i := 0; time.Now().Before(deadline); i++ {
				val := int64(g*1_000_000 + i)
				var ops []shard.Op
				if rng.Intn(100) < p.CrossPct {
					// One put per covered shard: a full-width cross-shard
					// transaction (hash may leave a thin slice off a shard;
					// two or more participants always remain in practice).
					sign := int64(1)
					for _, pool := range byShard {
						if len(pool) == 0 {
							continue
						}
						ops = append(ops, shard.Op{
							Kind: shard.OpPut,
							Key:  pool[rng.Intn(len(pool))],
							Val:  sign * val,
						})
						sign = -sign
					}
				} else {
					k1 := ownKey()
					ops = []shard.Op{
						{Kind: shard.OpGet, Key: k1},
						{Kind: shard.OpPut, Key: k1, Val: val},
					}
				}
				_, _, err := eng.Do(ops)
				switch {
				case err == nil:
					commits.Add(1)
				case errors.Is(err, chaos.ErrRetriesExhausted):
					aborts.Add(1)
				default:
					errCh <- fmt.Errorf("%s client %d txn %d: %w", mode, g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	if werr := <-errCh; werr != nil {
		_ = eng.Close()
		return res, werr
	}

	st := eng.Stats()
	res.DurationMs = float64(elapsed.Milliseconds())
	res.Commits = commits.Load()
	res.Aborts = aborts.Load()
	res.CrossCommits, res.CrossAborts = st.CrossCommits, st.CrossAborts
	res.SeqEpochs, res.SeqBatched = st.SeqEpochs, st.SeqBatched
	res.SeqMaxBatch = st.SeqMaxBatch
	res.Perf = PerfJSON{TxnPerSec: float64(res.Commits) / elapsed.Seconds()}

	// The certificate gates the number: leaks, per-shard shadow
	// machines, and the Kahn-merged global cross-shard commit order.
	if err := eng.LeakCheck(); err != nil {
		_ = eng.Close()
		return res, fmt.Errorf("leak check: %w", err)
	}
	if err := eng.FinalCheck(); err != nil {
		_ = eng.Close()
		return res, fmt.Errorf("certificate: %w", err)
	}
	res.Certified = true
	return res, eng.Close()
}
