package bench

import (
	"testing"

	"pushpull/internal/recovery"
)

// TestCrashSmoke is the tier-1 crash-recovery gate: a small seed sweep
// over every target, each run crashing the WAL mid-flight and
// certifying the recovered prefix. The full 50-seed campaign runs via
// `make crash-smoke` / cmd/pushpull-crash.
func TestCrashSmoke(t *testing.T) {
	p := ChaosParams{Seeds: 4, Threads: 4, OpsEach: 12}
	report, outcomes, err := CrashCampaign(p)
	if err != nil {
		t.Fatalf("%v\n%s", err, report)
	}
	crashed, recovered := 0, 0
	for _, o := range outcomes {
		if o.Crashed {
			crashed++
		}
		recovered += o.Recovered
	}
	if crashed == 0 {
		t.Fatalf("no run crashed — the sweep exercised nothing:\n%s", report)
	}
	if recovered == 0 {
		t.Fatalf("no transaction recovered across the sweep:\n%s", report)
	}
	t.Logf("\n%s", report)
}

// TestCrashPlanDeterminism: the same (target, seed) yields the same
// plan string — the printed plan really is the reproduction recipe.
func TestCrashPlanDeterminism(t *testing.T) {
	p := ChaosParams{}
	for _, target := range CrashTargets() {
		a := CrashPlanFor(target, 7, p).String()
		b := CrashPlanFor(target, 7, p).String()
		if a != b {
			t.Fatalf("%s: plan not deterministic: %q vs %q", target, a, b)
		}
		if CrashPlanFor(target, 8, p).String() == a {
			t.Fatalf("%s: different seeds produced identical plans", target)
		}
	}
}

// TestCrashRunReproducible: rerunning the cooperative-model target at
// one seed reproduces the same durable image byte for byte —
// determinism end to end through workload, scheduling, injection, and
// crash. (The goroutine substrates are deterministic per site visit
// but not per interleaving, so only the model admits this check.)
func TestCrashRunReproducible(t *testing.T) {
	p := ChaosParams{Threads: 2, OpsEach: 8}
	a := RunCrashOne("model", 5, p)
	b := RunCrashOne("model", 5, p)
	if a.Err() != nil || b.Err() != nil {
		t.Fatalf("model: %v / %v", a.Err(), b.Err())
	}
	if a.Crashed != b.Crashed || a.Recovered != b.Recovered || a.Discarded != b.Discarded {
		t.Fatalf("model: outcomes diverge: %+v vs %+v", a, b)
	}
	// Op IDs draw from a process-global counter, so images differ in
	// IDs across runs; everything else must match transaction for
	// transaction.
	ra := recovery.Recover(a.Segments)
	rb := recovery.Recover(b.Segments)
	if len(ra.State.Txns) != len(rb.State.Txns) {
		t.Fatalf("model: recovered %d vs %d txns", len(ra.State.Txns), len(rb.State.Txns))
	}
	for i := range ra.State.Txns {
		ta, tb := ra.State.Txns[i], rb.State.Txns[i]
		if ta.Name != tb.Name || ta.Stamp != tb.Stamp || len(ta.Ops) != len(tb.Ops) {
			t.Fatalf("model: txn %d diverges: %+v vs %+v", i, ta, tb)
		}
		for j := range ta.Ops {
			oa, ob := ta.Ops[j], tb.Ops[j]
			same := oa.Obj == ob.Obj && oa.Method == ob.Method && oa.Ret == ob.Ret &&
				len(oa.Args) == len(ob.Args)
			for k := 0; same && k < len(oa.Args); k++ {
				same = oa.Args[k] == ob.Args[k]
			}
			if !same {
				t.Fatalf("model: txn %d op %d diverges: %v vs %v", i, j, oa, ob)
			}
		}
	}
}
