// Package bench drives the reproduction's experiments: workload
// generators, model-level strategy sweeps, substrate throughput sweeps,
// and table formatting for EXPERIMENTS.md and the pushpull-bench CLI.
//
// Because the paper's evaluation is qualitative, the primary "shape"
// metrics here are scheduler-robust ones — commit/abort ratios,
// fallback and cascade counts, serializability verdicts — with
// wall-clock throughput reported alongside (hardware-dependent, shapes
// only).
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"pushpull/internal/adt"
	"pushpull/internal/core"
	"pushpull/internal/lang"
	"pushpull/internal/sched"
	"pushpull/internal/serial"
	"pushpull/internal/spec"
	"pushpull/internal/strategy"
)

// Registry returns the standard experiment object set.
func Registry() *spec.Registry {
	r := spec.NewRegistry()
	r.Register("mem", adt.Register{})
	r.Register("set", adt.Set{})
	r.Register("ht", adt.Map{})
	r.Register("ctr", adt.Counter{})
	return r
}

// ModelParams configures a model-level strategy run.
type ModelParams struct {
	Strategy  string // optimistic | partialabort | boosting | matveev | dependent | irrevocable-mix
	Threads   int
	TxnsEach  int
	Keys      int // key range; fewer keys = more contention
	ReadPct   int // percentage of read-only transactions
	Seed      int64
	OpsPerTxn int // operations per transaction (default 3)
}

// ModelResult reports a model-level run.
type ModelResult struct {
	Params       ModelParams
	Commits      int
	Aborts       int
	GaveUp       int
	Cascades     int
	Serializable bool
	Opaque       bool
	Duration     time.Duration
}

// AbortRatio is aborts per commit.
func (r ModelResult) AbortRatio() float64 {
	if r.Commits == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(r.Commits)
}

// genTxn generates one random transaction over the key range.
func genTxn(rng *rand.Rand, name string, p ModelParams) lang.Txn {
	ops := p.OpsPerTxn
	if ops <= 0 {
		ops = 3
	}
	readOnly := rng.Intn(100) < p.ReadPct
	var b strings.Builder
	fmt.Fprintf(&b, "tx %s { ", name)
	for i := 0; i < ops; i++ {
		k := rng.Intn(p.Keys)
		if readOnly {
			switch rng.Intn(3) {
			case 0:
				fmt.Fprintf(&b, "v%d := ht.get(%d); ", i, k)
			case 1:
				fmt.Fprintf(&b, "v%d := set.contains(%d); ", i, k)
			default:
				fmt.Fprintf(&b, "v%d := mem.read(%d); ", i, k)
			}
			continue
		}
		switch rng.Intn(5) {
		case 0:
			fmt.Fprintf(&b, "ht.put(%d, %d); ", k, rng.Intn(100)+1)
		case 1:
			fmt.Fprintf(&b, "set.add(%d); ", k)
		case 2:
			fmt.Fprintf(&b, "set.remove(%d); ", k)
		case 3:
			fmt.Fprintf(&b, "mem.write(%d, %d); ", k, rng.Intn(100))
		default:
			fmt.Fprintf(&b, "v%d := ht.get(%d); ", i, k)
		}
	}
	b.WriteString("}")
	return lang.MustParseTxn(b.String())
}

// NewDriver builds the named strategy driver.
func NewDriver(name string, t *core.Thread, txns []lang.Txn, cfg strategy.Config, env *strategy.Env) (strategy.Driver, error) {
	switch name {
	case "optimistic":
		return strategy.NewOptimistic(t.Name, t, txns, cfg, env), nil
	case "partialabort":
		d := strategy.NewOptimistic(t.Name, t, txns, cfg, env)
		d.PartialAbort = true
		return d, nil
	case "boosting":
		return strategy.NewBoosting(t.Name, t, txns, cfg, env), nil
	case "matveev":
		return strategy.NewMatveevShavit(t.Name, t, txns, cfg, env), nil
	case "dependent":
		return strategy.NewDependent(t.Name, t, txns, cfg, env), nil
	case "irrevocable":
		return strategy.NewIrrevocable(t.Name, t, txns, cfg, env), nil
	default:
		return nil, fmt.Errorf("bench: unknown strategy %q", name)
	}
}

// StrategyNames lists the sweepable model strategies.
func StrategyNames() []string {
	return []string{"optimistic", "partialabort", "boosting", "matveev", "dependent"}
}

// RunModel executes one model-level run and certifies the result.
func RunModel(p ModelParams) (ModelResult, error) {
	reg := Registry()
	m := core.NewMachine(reg, core.Options{Mode: spec.MoverHybrid, EnforceGray: true, RecordEvents: true})
	env := strategy.NewEnv()
	rng := rand.New(rand.NewSource(p.Seed))

	var drivers []strategy.Driver
	for i := 0; i < p.Threads; i++ {
		th := m.Spawn(fmt.Sprintf("%s%d", p.Strategy, i))
		var txns []lang.Txn
		for j := 0; j < p.TxnsEach; j++ {
			txns = append(txns, genTxn(rng, fmt.Sprintf("t%d_%d", i, j), p))
		}
		var d strategy.Driver
		var err error
		if p.Strategy == "irrevocable-mix" {
			if i == 0 {
				d, err = NewDriver("irrevocable", th, txns, strategy.Config{}, env)
			} else {
				d, err = NewDriver("optimistic", th, txns, strategy.Config{}, env)
			}
		} else {
			d, err = NewDriver(p.Strategy, th, txns, strategy.Config{}, env)
		}
		if err != nil {
			return ModelResult{}, err
		}
		drivers = append(drivers, d)
	}

	start := time.Now()
	if err := sched.RunRandom(m, drivers, p.Seed, 200_000*p.Threads); err != nil {
		return ModelResult{}, err
	}
	dur := time.Since(start)

	res := ModelResult{Params: p, Duration: dur}
	for _, d := range drivers {
		st := d.Stats()
		res.Commits += st.Commits
		res.Aborts += st.Aborts
		res.GaveUp += st.GaveUp
		res.Cascades += st.Cascades
	}
	rep := serial.CheckCommitOrder(m)
	res.Serializable = rep.Serializable
	res.Opaque = len(serial.CheckOpacity(m.Events())) == 0
	return res, nil
}

// Row is one formatted table row.
type Row []string

// Table renders rows with a header in aligned plain text.
func Table(header Row, rows []Row) string {
	all := append([]Row{header}, rows...)
	widths := make([]int, len(header))
	for _, r := range all {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range all {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
		if ri == 0 {
			for i := range header {
				b.WriteString(strings.Repeat("-", widths[i]) + "  ")
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// SweepModel runs every strategy across the given contention levels
// (key ranges) and renders the comparison table — experiment E4/E5/E7's
// model-level shape data.
func SweepModel(threads, txnsEach int, keyRanges []int, readPct int, seed int64) (string, []ModelResult, error) {
	var rows []Row
	var results []ModelResult
	for _, keys := range keyRanges {
		for _, s := range StrategyNames() {
			res, err := RunModel(ModelParams{
				Strategy: s, Threads: threads, TxnsEach: txnsEach,
				Keys: keys, ReadPct: readPct, Seed: seed,
			})
			if err != nil {
				return "", nil, fmt.Errorf("%s/keys=%d: %w", s, keys, err)
			}
			results = append(results, res)
			rows = append(rows, Row{
				s, fmt.Sprintf("%d", keys),
				fmt.Sprintf("%d", res.Commits), fmt.Sprintf("%d", res.Aborts),
				fmt.Sprintf("%.2f", res.AbortRatio()),
				fmt.Sprintf("%v", res.Serializable), fmt.Sprintf("%v", res.Opaque),
				res.Duration.Round(time.Millisecond).String(),
			})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i][1] < rows[j][1] })
	table := Table(Row{"strategy", "keys", "commits", "aborts", "aborts/commit", "serializable", "opaque", "time"}, rows)
	return table, results, nil
}
